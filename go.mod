module computecovid19

go 1.23
