// Package epi implements a two-strain SEIR compartment model used to
// regenerate the motivational Figure 2 of the paper: confirmed COVID-19
// cases per million over time, with a more-transmissible variant (the
// paper's B.1.617.2 example) introduced mid-epidemic and taking over,
// producing the fourth-wave upswing the figure shows for the UK.
package epi

import "math"

// Params configures a two-strain SEIR simulation.
type Params struct {
	// Population is the total population.
	Population float64
	// R0Base is the basic reproduction number of the original strain.
	R0Base float64
	// R0Variant is the variant's reproduction number.
	R0Variant float64
	// VariantDay is the day the variant is seeded.
	VariantDay int
	// IncubationDays is the mean latent period (1/σ).
	IncubationDays float64
	// InfectiousDays is the mean infectious period (1/γ).
	InfectiousDays float64
	// Days is the simulation horizon.
	Days int
	// Seeds is the initial number of infectious individuals.
	Seeds float64
	// InterventionR scales both strains' transmission after each wave
	// peak exceeds InterventionThreshold cases/day (lockdown response);
	// 1 disables interventions.
	InterventionR float64
	// InterventionThreshold is the daily-cases-per-million level that
	// triggers (and, at half, releases) the intervention.
	InterventionThreshold float64
	// DetectionRate is the fraction of infections that become confirmed
	// cases.
	DetectionRate float64
	// VaccinationStartDay begins a rollout moving susceptibles to the
	// recovered compartment; negative disables vaccination.
	VaccinationStartDay int
	// VaccinationPerDay is the fraction of the population vaccinated per
	// day once the rollout starts.
	VaccinationPerDay float64
	// ReopenDay disables interventions from that day on (the paper's
	// "partial easing of restrictions" that, together with the Delta
	// variant, started the UK's fourth wave).
	ReopenDay int
}

// UKLikeParams reproduces the qualitative UK trajectory of Figure 2:
// waves suppressed by interventions, then a Delta-like variant driving a
// fourth wave.
func UKLikeParams() Params {
	return Params{
		Population:            67e6,
		R0Base:                2.0,
		R0Variant:             6.0,
		VariantDay:            400,
		IncubationDays:        4,
		InfectiousDays:        5,
		Days:                  540,
		Seeds:                 200,
		InterventionR:         0.35,
		InterventionThreshold: 250,
		DetectionRate:         0.45,
		VaccinationStartDay:   280,
		VaccinationPerDay:     0.003,
		ReopenDay:             395,
	}
}

// Point is one simulated day.
type Point struct {
	Day int
	// NewCasesPerMillion is the confirmed-cases rate Figure 2 plots.
	NewCasesPerMillion float64
	// VariantShare is the fraction of new infections caused by the
	// variant strain.
	VariantShare float64
	// Intervention reports whether suppression measures are active.
	Intervention bool
}

// Simulate integrates the two-strain SEIR system with daily Euler steps
// (adequate for the rates involved) and returns the daily series.
func Simulate(p Params) []Point {
	sigma := 1 / p.IncubationDays
	gamma := 1 / p.InfectiousDays
	beta1 := p.R0Base * gamma
	beta2 := p.R0Variant * gamma

	s := p.Population - p.Seeds
	e1, i1 := 0.0, p.Seeds
	e2, i2 := 0.0, 0.0
	r := 0.0

	intervention := false
	out := make([]Point, 0, p.Days)
	for day := 0; day < p.Days; day++ {
		if day == p.VariantDay {
			// Imported variant cases (the UK's Delta introduction was
			// hundreds to thousands of travel-linked infections).
			seed := p.Seeds * 10
			i2 += seed
			s -= seed
		}
		if p.VaccinationStartDay >= 0 && day >= p.VaccinationStartDay && p.VaccinationPerDay > 0 {
			doses := p.VaccinationPerDay * p.Population
			if doses > s {
				doses = s
			}
			s -= doses
			r += doses
		}
		reopened := p.ReopenDay > 0 && day >= p.ReopenDay
		if reopened {
			intervention = false
		}
		mult := 1.0
		if intervention {
			mult = p.InterventionR
		}
		frac := s / p.Population
		newInf1 := mult * beta1 * i1 * frac
		newInf2 := mult * beta2 * i2 * frac
		newSym1 := sigma * e1
		newSym2 := sigma * e2

		s -= newInf1 + newInf2
		e1 += newInf1 - newSym1
		e2 += newInf2 - newSym2
		i1 += newSym1 - gamma*i1
		i2 += newSym2 - gamma*i2
		r += gamma * (i1 + i2)
		if s < 0 {
			s = 0
		}

		newCases := (newSym1 + newSym2) * p.DetectionRate
		perMillion := newCases / p.Population * 1e6
		share := 0.0
		if newSym1+newSym2 > 0 {
			share = newSym2 / (newSym1 + newSym2)
		}
		out = append(out, Point{
			Day:                day,
			NewCasesPerMillion: perMillion,
			VariantShare:       share,
			Intervention:       intervention,
		})

		// Hysteresis-based intervention switching (until reopening):
		// lockdowns engage above the threshold and are held until cases
		// fall well below it, producing the distinct, separated waves of
		// the real curves.
		if p.InterventionR < 1 && !reopened {
			if !intervention && perMillion > p.InterventionThreshold {
				intervention = true
			} else if intervention && perMillion < p.InterventionThreshold/8 {
				intervention = false
			}
		}
	}
	return out
}

// Waves counts the local maxima of the smoothed case curve that exceed
// minHeight cases per million — the "wave" count a reader would see in
// Figure 2.
func Waves(series []Point, minHeight float64) int {
	// 7-day smoothing first, as dashboards do.
	sm := make([]float64, len(series))
	for i := range series {
		lo := i - 3
		if lo < 0 {
			lo = 0
		}
		hi := i + 4
		if hi > len(series) {
			hi = len(series)
		}
		sum := 0.0
		for j := lo; j < hi; j++ {
			sum += series[j].NewCasesPerMillion
		}
		sm[i] = sum / float64(hi-lo)
	}
	// Hysteresis: a new wave is counted when the curve crosses above
	// minHeight after having fallen below minHeight/2 — so the sawtooth
	// that intervention on/off switching produces inside one epidemic
	// wave is not double counted.
	waves := 0
	armed := true
	for _, v := range sm {
		if armed && v > minHeight {
			waves++
			armed = false
		} else if !armed && v < minHeight/2 {
			armed = true
		}
	}
	return waves
}

// PeakDay returns the day with the highest case rate in [from, to).
func PeakDay(series []Point, from, to int) int {
	best, bestDay := math.Inf(-1), from
	for _, pt := range series {
		if pt.Day >= from && pt.Day < to && pt.NewCasesPerMillion > best {
			best = pt.NewCasesPerMillion
			bestDay = pt.Day
		}
	}
	return bestDay
}
