package epi

import (
	"testing"
)

func TestSimulateConservesPopulationApproximately(t *testing.T) {
	p := UKLikeParams()
	series := Simulate(p)
	if len(series) != p.Days {
		t.Fatalf("series length %d, want %d", len(series), p.Days)
	}
	for _, pt := range series {
		if pt.NewCasesPerMillion < 0 {
			t.Fatalf("negative case rate on day %d", pt.Day)
		}
	}
}

func TestVariantTakesOver(t *testing.T) {
	p := UKLikeParams()
	series := Simulate(p)
	// Before the variant is seeded its share is zero.
	if series[p.VariantDay-1].VariantShare != 0 {
		t.Fatal("variant share nonzero before introduction")
	}
	// The paper notes the Delta variant reached 98% of UK cases; our
	// higher-R0 strain must dominate by the end of the horizon.
	final := series[len(series)-1].VariantShare
	if final < 0.9 {
		t.Fatalf("variant share at end = %v, want > 0.9 (paper: 98%%)", final)
	}
}

func TestFourthWaveShape(t *testing.T) {
	p := UKLikeParams()
	series := Simulate(p)
	// A late wave must rise after the variant arrives: the peak in the
	// post-variant window exceeds the level just before it.
	preLevel := series[p.VariantDay-1].NewCasesPerMillion
	postPeakDay := PeakDay(series, p.VariantDay, p.Days)
	postPeak := series[postPeakDay].NewCasesPerMillion
	if postPeak < 4*preLevel {
		t.Fatalf("no variant-driven wave: pre %v, post peak %v", preLevel, postPeak)
	}
	// Multiple waves overall (the UK curve shows several).
	if w := Waves(series, 100); w < 2 {
		t.Fatalf("only %d waves detected, want >= 2", w)
	}
}

func TestNoVariantNoFourthWave(t *testing.T) {
	p := UKLikeParams()
	p.VariantDay = p.Days + 1 // never seeded
	series := Simulate(p)
	for _, pt := range series {
		if pt.VariantShare != 0 {
			t.Fatal("variant share nonzero despite no seeding")
		}
	}
	// The post-day-400 epidemic should be quiescent without the variant
	// (interventions + immunity suppressed the base strain).
	basePeak := series[PeakDay(series, 400, p.Days)].NewCasesPerMillion
	withVariant := Simulate(UKLikeParams())
	varPeak := withVariant[PeakDay(withVariant, 400, p.Days)].NewCasesPerMillion
	if varPeak < 2*basePeak {
		t.Fatalf("variant should drive a much larger late wave: base %v, variant %v",
			basePeak, varPeak)
	}
}

func TestInterventionSuppresses(t *testing.T) {
	free := UKLikeParams()
	free.InterventionR = 1 // no lockdowns
	freeSeries := Simulate(free)
	controlled := Simulate(UKLikeParams())
	freePeak := freeSeries[PeakDay(freeSeries, 0, 200)].NewCasesPerMillion
	ctrlPeak := controlled[PeakDay(controlled, 0, 200)].NewCasesPerMillion
	if ctrlPeak >= freePeak {
		t.Fatalf("interventions should flatten the first wave: free %v, controlled %v",
			freePeak, ctrlPeak)
	}
}

func TestWavesOnSyntheticSeries(t *testing.T) {
	mk := func(vals ...float64) []Point {
		pts := make([]Point, len(vals))
		for i, v := range vals {
			pts[i] = Point{Day: i, NewCasesPerMillion: v}
		}
		return pts
	}
	// Smoothing needs some width; build two clear bumps.
	var vals []float64
	for i := 0; i < 30; i++ {
		vals = append(vals, float64(100-(i-15)*(i-15)))
	}
	for i := 0; i < 30; i++ {
		vals = append(vals, float64(80-(i-15)*(i-15))/2)
	}
	series := mk(vals...)
	if w := Waves(series, 10); w != 2 {
		t.Fatalf("Waves = %d, want 2", w)
	}
}
