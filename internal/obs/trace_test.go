package obs_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"computecovid19/internal/obs"
)

func mkSpanContext() obs.SpanContext {
	var sc obs.SpanContext
	for i := range sc.Trace {
		sc.Trace[i] = byte(i + 1)
	}
	for i := range sc.Span {
		sc.Span[i] = byte(0xa0 + i)
	}
	return sc
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := mkSpanContext()
	tp := sc.Traceparent()
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("malformed traceparent: %q", tp)
	}
	got, ok := obs.ParseTraceparent(tp)
	if !ok || got != sc {
		t.Fatalf("round trip failed: %+v → %q → %+v (ok=%v)", sc, tp, got, ok)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := mkSpanContext().Traceparent()
	cases := map[string]string{
		"empty":          "",
		"truncated":      valid[:54],
		"trailing":       valid + "x",
		"bad dash":       strings.Replace(valid, "-", "_", 1),
		"version ff":     "ff" + valid[2:],
		"non-hex trace":  valid[:3] + "zz" + valid[5:],
		"non-hex span":   valid[:36] + "zz" + valid[38:],
		"non-hex flags":  valid[:53] + "zz",
		"zero trace id":  "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero span id":   "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"all whitespace": strings.Repeat(" ", 55),
	}
	for name, in := range cases {
		if _, ok := obs.ParseTraceparent(in); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted, want reject", name, in)
		}
	}
}

func TestParseTraceparentForwardCompatible(t *testing.T) {
	// Unknown future versions and cleared sample flags still parse, per
	// the W3C forward-compatibility rules.
	sc := mkSpanContext()
	for _, tp := range []string{
		"01" + sc.Traceparent()[2:],
		strings.TrimSuffix(sc.Traceparent(), "01") + "00",
	} {
		got, ok := obs.ParseTraceparent(tp)
		if !ok || got != sc {
			t.Errorf("ParseTraceparent(%q) = %+v, %v; want %+v, true", tp, got, ok, sc)
		}
	}
}

func TestIDTextMarshalRoundTrip(t *testing.T) {
	sc := mkSpanContext()
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Hex strings on the wire, not byte arrays.
	if !strings.Contains(string(data), sc.Trace.String()) ||
		!strings.Contains(string(data), sc.Span.String()) {
		t.Fatalf("JSON does not carry hex ids: %s", data)
	}
	var back obs.SpanContext
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != sc {
		t.Fatalf("JSON round trip: %+v != %+v", back, sc)
	}
}

func TestStartCtxContinuesRemoteTrace(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	obs.Enable()
	remote := mkSpanContext()
	ctx := obs.ContextWithRemote(context.Background(), remote)
	_, sp := obs.StartCtx(ctx, "serve/request")
	if sp.TraceID() != remote.Trace {
		t.Fatalf("span trace = %s, want inbound %s", sp.TraceID(), remote.Trace)
	}
	sp.End()
	recs, _ := obs.TraceRecords()
	if len(recs) != 1 || recs[0].Parent != remote.Span {
		t.Fatalf("continued span must parent the remote span: %+v", recs)
	}
}

func TestContextWithRemoteZeroIsNoop(t *testing.T) {
	ctx := context.Background()
	if got := obs.ContextWithRemote(ctx, obs.SpanContext{}); got != ctx {
		t.Fatal("zero remote identity must not derive a new context")
	}
}

func TestStartCtxRootsFreshDistinctTraces(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	obs.Enable()
	_, a := obs.StartCtx(context.Background(), "a")
	_, b := obs.StartCtx(context.Background(), "b")
	if a.TraceID().IsZero() || b.TraceID().IsZero() {
		t.Fatal("enabled root spans must carry trace ids")
	}
	if a.TraceID() == b.TraceID() || a.SpanID() == b.SpanID() {
		t.Fatal("independent roots must get distinct ids")
	}
	if tp := a.Traceparent(); tp != a.Context().Traceparent() {
		t.Fatalf("span traceparent mismatch: %q vs %q", tp, a.Context().Traceparent())
	}
	if sc, ok := obs.ParseTraceparent(a.Traceparent()); !ok || sc != a.Context() {
		t.Fatal("a span's traceparent must parse back to its own identity")
	}
	a.End()
	b.End()
}

func TestChildSharesTraceNewSpanID(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	obs.Enable()
	ctx, root := obs.StartCtx(context.Background(), "root")
	_, child := obs.StartCtx(ctx, "child")
	if child.TraceID() != root.TraceID() {
		t.Fatal("child must stay in the parent's trace")
	}
	if child.SpanID() == root.SpanID() {
		t.Fatal("child must get its own span id")
	}
	child.End()
	root.End()
	recs, _ := obs.TraceRecords()
	if recs[0].Parent != root.SpanID() {
		t.Fatalf("child record parent = %s, want %s", recs[0].Parent, root.SpanID())
	}
}

func TestDisabledCtxPathIsInert(t *testing.T) {
	obs.Disable()
	ctx := context.Background()
	ctx2, sp := obs.StartCtx(ctx, "off")
	if ctx2 != ctx || sp != nil {
		t.Fatal("disabled StartCtx must return the input context and a nil span")
	}
	if obs.FromContext(ctx2) != nil {
		t.Fatal("no active span expected")
	}
	// The nil sink's identity accessors read zero.
	if !sp.TraceID().IsZero() || !sp.SpanID().IsZero() || sp.Traceparent() != "" || !sp.Context().IsZero() {
		t.Fatal("nil span identity must be zero")
	}
	sp.Link(mkSpanContext()) // must not panic
	if got := obs.ContextWithSpan(ctx, nil); got != ctx {
		t.Fatal("ContextWithSpan(nil) must be a no-op")
	}
}
