package obs

import (
	"context"
	"io"
	"log/slog"
	"os"
	"sync/atomic"
)

// Structured logging with trace correlation. Log() returns the process
// *slog.Logger; its handler reads the emit call's context at record time
// (l.InfoContext(ctx, ...)) and attaches trace_id/span_id, so any log
// line emitted inside a traced request joins with its flight-recorder
// dump or Chrome trace on the trace id. Logger(ctx) pre-binds the span
// for call sites that emit without a context.

// traceHandler decorates an inner slog.Handler with span identity: the
// span bound at construction (Logger(ctx)), else the emit context's
// active span.
type traceHandler struct {
	inner slog.Handler
	sp    *Span // pre-bound span; nil → resolve from emit ctx
}

func (h traceHandler) Enabled(ctx context.Context, lv slog.Level) bool {
	return h.inner.Enabled(ctx, lv)
}

func (h traceHandler) Handle(ctx context.Context, rec slog.Record) error {
	sp := h.sp
	if sp == nil {
		sp = FromContext(ctx)
	}
	if sp != nil {
		rec.AddAttrs(
			slog.String("trace_id", sp.TraceID().String()),
			slog.String("span_id", sp.SpanID().String()),
		)
	}
	return h.inner.Handle(ctx, rec)
}

func (h traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return traceHandler{inner: h.inner.WithAttrs(attrs), sp: h.sp}
}

func (h traceHandler) WithGroup(name string) slog.Handler {
	return traceHandler{inner: h.inner.WithGroup(name), sp: h.sp}
}

// defaultLogger holds the process logger; replaced atomically by
// SetLogWriter so concurrent Log calls never race a reconfigure.
var defaultLogger atomic.Pointer[slog.Logger]

func init() {
	defaultLogger.Store(newLogger(os.Stderr, slog.LevelInfo))
}

func newLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(traceHandler{inner: slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})})
}

// SetLogWriter redirects the process logger to w at the given level —
// used by tests and by CLIs steering logs away from stderr. It returns
// the previous logger so callers can restore it.
func SetLogWriter(w io.Writer, level slog.Level) *slog.Logger {
	return defaultLogger.Swap(newLogger(w, level))
}

// SetLogger installs l as the process logger (restore hook for tests).
func SetLogger(l *slog.Logger) {
	if l != nil {
		defaultLogger.Store(l)
	}
}

// logger returns the process logger for package-internal use.
func logger() *slog.Logger { return defaultLogger.Load() }

// Log returns the process-wide trace-correlated logger. Use the Context
// emit variants (InfoContext, ErrorContext, ...) with the request
// context; correlation happens at record time, from that context.
func Log() *slog.Logger { return logger() }

// Logger returns the process logger pre-bound to ctx's active span, so
// plain l.Info(...) calls carry trace_id/span_id without threading ctx
// into every emit site. With no active span it is equivalent to Log().
func Logger(ctx context.Context) *slog.Logger {
	sp := FromContext(ctx)
	if sp == nil {
		return logger()
	}
	h, ok := logger().Handler().(traceHandler)
	if !ok {
		// A custom logger installed via SetLogger: fall back to attrs.
		return logger().With(
			slog.String("trace_id", sp.TraceID().String()),
			slog.String("span_id", sp.SpanID().String()),
		)
	}
	return slog.New(traceHandler{inner: h.inner, sp: sp})
}
