package obs_test

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"

	"computecovid19/internal/obs"
)

// captureLog redirects the process logger to a buffer for the test.
func captureLog(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	prev := obs.SetLogWriter(&buf, slog.LevelDebug)
	t.Cleanup(func() { obs.SetLogger(prev) })
	return &buf
}

func TestLogAttachesTraceFromEmitContext(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	obs.Enable()
	buf := captureLog(t)

	ctx, sp := obs.StartCtx(context.Background(), "request")
	obs.Log().InfoContext(ctx, "processing", "job", 7)
	sp.End()

	line := buf.String()
	for _, want := range []string{
		"msg=processing", "job=7",
		"trace_id=" + sp.TraceID().String(),
		"span_id=" + sp.SpanID().String(),
	} {
		if !strings.Contains(line, want) {
			t.Fatalf("log line missing %q:\n%s", want, line)
		}
	}
}

func TestLoggerPreBindsSpan(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	obs.Enable()
	buf := captureLog(t)

	ctx, sp := obs.StartCtx(context.Background(), "request")
	defer sp.End()
	// Plain Info (no context at the emit site) still correlates.
	obs.Logger(ctx).Info("bound emit")
	if line := buf.String(); !strings.Contains(line, "trace_id="+sp.TraceID().String()) {
		t.Fatalf("pre-bound logger missing trace id:\n%s", line)
	}
}

func TestLogWithoutSpanHasNoTraceFields(t *testing.T) {
	buf := captureLog(t)
	obs.Log().Info("startup")
	obs.Logger(context.Background()).Info("also unbound")
	if line := buf.String(); strings.Contains(line, "trace_id") {
		t.Fatalf("untraced lines must not invent trace ids:\n%s", line)
	}
}

func TestLoggerFallsBackForCustomLogger(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	obs.Enable()
	var buf bytes.Buffer
	prev := obs.SetLogWriter(&buf, slog.LevelInfo)
	t.Cleanup(func() { obs.SetLogger(prev) })
	// Install a plain logger with no traceHandler wrapper.
	obs.SetLogger(slog.New(slog.NewTextHandler(&buf, nil)))

	ctx, sp := obs.StartCtx(context.Background(), "request")
	defer sp.End()
	obs.Logger(ctx).Info("custom handler")
	if line := buf.String(); !strings.Contains(line, "trace_id="+sp.TraceID().String()) {
		t.Fatalf("custom-logger fallback lost correlation:\n%s", line)
	}
}

func TestLogDerivedLoggersKeepCorrelation(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	obs.Enable()
	buf := captureLog(t)

	ctx, sp := obs.StartCtx(context.Background(), "request")
	defer sp.End()
	// With / WithGroup derive new handlers; the trace decoration must
	// survive both.
	obs.Log().With("worker", 3).WithGroup("serve").InfoContext(ctx, "derived", "k", "v")
	line := buf.String()
	for _, want := range []string{"worker=3", "serve.k=v", "trace_id=" + sp.TraceID().String()} {
		if !strings.Contains(line, want) {
			t.Fatalf("derived logger missing %q:\n%s", want, line)
		}
	}
}
