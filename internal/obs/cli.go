package obs

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"strings"
)

// Setup wires the standard telemetry CLI flags shared by cmd/ccovid,
// cmd/cctrain, cmd/ccbench and cmd/ccserve:
//
//	-trace FILE    write a Chrome trace_event JSON file on exit
//	-metrics FILE  write metrics on exit (.json → JSON dump, else
//	               Prometheus text exposition format)
//	-pprof ADDR    serve net/http/pprof on ADDR for live profiling
//
// Empty strings disable the corresponding output. When either file is
// requested span collection is enabled; otherwise instrumentation stays
// on the nil-sink fast path. Both files are created eagerly so an
// unwritable path fails here, before the run, not at flush time. The
// returned flush writes the requested files (and a text summary to
// stderr) and returns the first write error — check it in main and exit
// non-zero, so a run whose telemetry was requested but lost is not
// reported as clean.
func Setup(tracePath, metricsPath, pprofAddr string) (flush func() error, err error) {
	for _, path := range []string{tracePath, metricsPath} {
		if path == "" {
			continue
		}
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		f.Close()
	}
	if tracePath != "" || metricsPath != "" {
		Enable()
	}
	if pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				logger().Error("pprof server failed", "addr", pprofAddr, "err", err)
			}
		}()
		logger().Info("serving net/http/pprof", "url", fmt.Sprintf("http://%s/debug/pprof", pprofAddr))
	}
	return func() error {
		var errs []error
		if tracePath != "" {
			if err := writeFile(tracePath, WriteChromeTrace); err != nil {
				logger().Error("writing trace failed", "path", tracePath, "err", err)
				errs = append(errs, fmt.Errorf("trace %s: %w", tracePath, err))
			} else {
				logger().Info("wrote Chrome trace (load in chrome://tracing or ui.perfetto.dev)", "path", tracePath)
			}
		}
		if metricsPath != "" {
			write := func(w io.Writer) error { return Default.WritePrometheus(w) }
			if strings.HasSuffix(metricsPath, ".json") {
				write = WriteJSON
			}
			if err := writeFile(metricsPath, write); err != nil {
				logger().Error("writing metrics failed", "path", metricsPath, "err", err)
				errs = append(errs, fmt.Errorf("metrics %s: %w", metricsPath, err))
			} else {
				logger().Info("wrote metrics", "path", metricsPath)
			}
			WriteText(os.Stderr)
		}
		return errors.Join(errs...)
	}, nil
}

func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
