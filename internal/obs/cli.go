package obs

import (
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"strings"
)

// Setup wires the standard telemetry CLI flags shared by cmd/ccovid,
// cmd/cctrain and cmd/ccbench:
//
//	-trace FILE    write a Chrome trace_event JSON file on exit
//	-metrics FILE  write metrics on exit (.json → JSON dump, else
//	               Prometheus text exposition format)
//	-pprof ADDR    serve net/http/pprof on ADDR for live profiling
//
// Empty strings disable the corresponding output. When either file is
// requested span collection is enabled; otherwise instrumentation stays
// on the nil-sink fast path. Both files are created eagerly so an
// unwritable path fails here, before the run, not at flush time. The
// returned flush writes the requested files (and a text summary to
// stderr) — defer it in main.
func Setup(tracePath, metricsPath, pprofAddr string) (flush func(), err error) {
	for _, path := range []string{tracePath, metricsPath} {
		if path == "" {
			continue
		}
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		f.Close()
	}
	if tracePath != "" || metricsPath != "" {
		Enable()
	}
	if pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "obs: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "obs: serving net/http/pprof on http://%s/debug/pprof\n", pprofAddr)
	}
	return func() {
		if tracePath != "" {
			if err := writeFile(tracePath, WriteChromeTrace); err != nil {
				fmt.Fprintln(os.Stderr, "obs: writing trace:", err)
			} else {
				fmt.Fprintf(os.Stderr, "obs: wrote Chrome trace to %s (load in chrome://tracing or ui.perfetto.dev)\n", tracePath)
			}
		}
		if metricsPath != "" {
			write := func(w io.Writer) error { return Default.WritePrometheus(w) }
			if strings.HasSuffix(metricsPath, ".json") {
				write = WriteJSON
			}
			if err := writeFile(metricsPath, write); err != nil {
				fmt.Fprintln(os.Stderr, "obs: writing metrics:", err)
			} else {
				fmt.Fprintln(os.Stderr, "obs: wrote metrics to", metricsPath)
			}
			WriteText(os.Stderr)
		}
	}, nil
}

func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
