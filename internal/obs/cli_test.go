package obs_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"computecovid19/internal/obs"
)

func TestSetupDisabledIsInert(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	flush, err := obs.Setup("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if sp := obs.Start("x"); sp != nil {
		t.Fatal("Setup without outputs must leave span collection disabled")
	}
	if err := flush(); err != nil {
		t.Fatalf("no-op flush returned %v", err)
	}
}

func TestSetupWritesTraceAndMetricsFiles(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	flush, err := obs.Setup(tracePath, metricsPath, "")
	if err != nil {
		t.Fatal(err)
	}
	// Requesting a trace file enables span collection.
	sp := obs.Start("work")
	if sp == nil {
		t.Fatal("Setup with a trace path must enable spans")
	}
	sp.End()
	obs.GetCounter("cli_test_total").Inc()
	if err := flush(); err != nil {
		t.Fatal(err)
	}

	var chromeTrace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &chromeTrace); err != nil {
		t.Fatal(err)
	}
	if len(chromeTrace.TraceEvents) == 0 {
		t.Fatal("trace file has no events")
	}
	var metrics map[string]any
	data, err = os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &metrics); err != nil {
		t.Fatal(err)
	}
}

func TestSetupMetricsPrometheusFormat(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	metricsPath := filepath.Join(t.TempDir(), "metrics.prom")
	flush, err := obs.Setup("", metricsPath, "")
	if err != nil {
		t.Fatal(err)
	}
	obs.GetCounter("cli_prom_total").Inc()
	if err := flush(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	if !strings.Contains(got, "# TYPE cli_prom_total counter") ||
		!strings.Contains(got, "cli_prom_total 1") {
		t.Fatalf("expected Prometheus text output, got: %q", got)
	}
}

func TestSetupRejectsUnwritablePathEagerly(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	bad := filepath.Join(t.TempDir(), "missing-dir", "trace.json")
	if _, err := obs.Setup(bad, "", ""); err == nil {
		t.Fatal("Setup must fail before the run when the trace path is unwritable")
	}
	if _, err := obs.Setup("", bad, ""); err == nil {
		t.Fatal("Setup must fail before the run when the metrics path is unwritable")
	}
}

func TestSetupFlushPropagatesWriteError(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	flush, err := obs.Setup(tracePath, "", "")
	if err != nil {
		t.Fatal(err)
	}
	// The path was writable at Setup but breaks before exit (disk gone,
	// file replaced by a directory, ...). flush must surface that instead
	// of letting the run exit clean with its telemetry silently lost.
	if err := os.Remove(tracePath); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(tracePath, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := flush(); err == nil {
		t.Fatal("flush must return the trace write error")
	}
}
