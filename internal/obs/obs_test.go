package obs_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"computecovid19/internal/obs"
	"computecovid19/internal/parallel"
)

// TestRegistryConcurrentExactTotals hammers one counter, gauge and
// histogram from parallel.For workers and asserts exact totals — the
// registry's atomics must lose no increments (run under -race via
// `make race`).
func TestRegistryConcurrentExactTotals(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("test_events_total")
	g := r.Gauge("test_accumulator")
	h := r.Histogram("test_latency_seconds", []float64{0.5, 1.5, 2.5})

	const n = 20000
	parallel.ForEach(n, 8, func(i int) {
		c.Inc()
		g.Add(1)
		h.Observe(float64(i % 3)) // 0, 1, 2 → buckets le=0.5, 1.5, 2.5
	})

	if got := c.Value(); got != n {
		t.Fatalf("counter = %d, want %d", got, n)
	}
	if got := g.Value(); got != n {
		t.Fatalf("gauge = %v, want %d", got, n)
	}
	if got := h.Count(); got != n {
		t.Fatalf("histogram count = %d, want %d", got, n)
	}
	// Serial reference for the sum and the per-bucket counts:
	// i%3 == 0 lands in le=0.5, == 1 in le=1.5, == 2 in le=2.5.
	var wantSum float64
	var perMod [3]uint64
	for i := 0; i < n; i++ {
		wantSum += float64(i % 3)
		perMod[i%3]++
	}
	if got := h.Sum(); got != wantSum {
		t.Fatalf("histogram sum = %v, want %v", got, wantSum)
	}
	cum := h.Cumulative()
	want := []uint64{perMod[0], perMod[0] + perMod[1], n, n} // +Inf bucket empty
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative bucket %d = %d, want %d (all: %v)", i, cum[i], w, cum)
		}
	}
}

func TestCounterFromDefaultRegistryIsShared(t *testing.T) {
	defer obs.Reset()
	a := obs.GetCounter("test_shared_total")
	b := obs.GetCounter("test_shared_total")
	a.Add(3)
	b.Add(4)
	if a.Value() != 7 || b.Value() != 7 {
		t.Fatalf("handles not shared: %d vs %d", a.Value(), b.Value())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("metric_x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering metric_x as a gauge")
		}
	}()
	r.Gauge("metric_x")
}

func TestNilSinkMethodsAreSafe(t *testing.T) {
	var sp *obs.Span
	sp.SetAttr("k", 1)
	sp.Child("child").End()
	sp.End()
	var c *obs.Counter
	c.Inc()
	var g *obs.Gauge
	g.Set(3)
	var h *obs.Histogram
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metric sinks must read zero")
	}
}

func TestSpansDisabledByDefaultAndRecordWhenEnabled(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	if sp := obs.Start("off"); sp != nil {
		t.Fatal("Start must return nil while disabled")
	}
	obs.Enable()
	sp := obs.Start("root")
	if sp == nil {
		t.Fatal("Start returned nil while enabled")
	}
	child := sp.Child("leaf")
	child.SetAttr("size", 32)
	child.End()
	sp.End()

	recs, dropped := obs.TraceRecords()
	if dropped != 0 {
		t.Fatalf("dropped = %d", dropped)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// Children end first; both live on the parent's track.
	if recs[0].Name != "leaf" || recs[1].Name != "root" {
		t.Fatalf("record order: %q, %q", recs[0].Name, recs[1].Name)
	}
	if recs[0].TID != recs[1].TID {
		t.Fatal("child must inherit the parent's track id")
	}
	stats := obs.SpanStats()
	if stats["root"].Count != 1 || stats["leaf"].Count != 1 {
		t.Fatalf("span stats wrong: %+v", stats)
	}
}

func TestStartCtxNestsThroughContext(t *testing.T) {
	defer obs.Reset()
	obs.Enable()
	ctx, root := obs.StartCtx(context.Background(), "pipeline")
	ctx2, stage := obs.StartCtx(ctx, "enhance")
	if obs.FromCtx(ctx2) != stage {
		t.Fatal("FromCtx must return the innermost span")
	}
	stage.End()
	root.End()
	recs, _ := obs.TraceRecords()
	if len(recs) != 2 || recs[0].TID != recs[1].TID {
		t.Fatalf("context nesting must share a track: %+v", recs)
	}
}

func TestExpBucketsShape(t *testing.T) {
	b := obs.ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if diff := b[i]/want[i] - 1; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestPrometheusOutputHasHistogramSeries(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram(`stage_seconds{stage="enhance"}`, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{stage="enhance",le="0.1"} 1`,
		`stage_seconds_bucket{stage="enhance",le="+Inf"} 2`,
		`stage_seconds_count{stage="enhance"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramQuantile checks the Prometheus-style interpolated
// quantile the straggler detector thresholds on.
func TestHistogramQuantile(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("q", []float64{1, 2, 4, 8})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// 100 observations uniform over (0, 4]: 25 per bucket up to 4.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	// Median falls in the (1,2] bucket, three quarters through it.
	if got := h.Quantile(0.5); math.Abs(got-2.0) > 0.5 {
		t.Fatalf("p50 = %v, want ≈ 2", got)
	}
	if p99, p50 := h.Quantile(0.99), h.Quantile(0.5); p99 <= p50 {
		t.Fatalf("p99 (%v) must exceed p50 (%v)", p99, p50)
	}
	// Observations past every finite bound land in +Inf; the quantile
	// degrades to the largest finite bound rather than inventing values.
	h2 := r.Histogram("q2", []float64{1})
	for i := 0; i < 10; i++ {
		h2.Observe(100)
	}
	if got := h2.Quantile(0.99); got != 1 {
		t.Fatalf("overflow-bucket quantile = %v, want largest finite bound 1", got)
	}
	// Clamped inputs.
	if h.Quantile(-1) > h.Quantile(2) {
		t.Fatal("quantile must be monotone after clamping q to [0,1]")
	}
	// A free-standing histogram (no registry) behaves identically.
	fs := obs.NewHistogram([]float64{1, 2})
	fs.Observe(1.5)
	if got := fs.Quantile(1); got <= 0 {
		t.Fatalf("free-standing histogram quantile = %v, want > 0", got)
	}
}
