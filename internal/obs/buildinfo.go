package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// BuildInfoData identifies the running binary: the Prometheus
// build_info idiom (a constant-1 gauge whose labels carry the identity)
// plus a JSON form for ccbench reports, so every benchmark number and
// every scrape can be traced back to a version, toolchain, and the set
// of kernel rungs compiled in.
type BuildInfoData struct {
	Version   string   `json:"version"`
	GoVersion string   `json:"go_version"`
	Rungs     []string `json:"rungs,omitempty"`
}

// NewBuildInfo resolves the binary's version (module version, else VCS
// revision, else "dev") and Go toolchain, carrying the given kernel
// rung names.
func NewBuildInfo(rungs []string) BuildInfoData {
	b := BuildInfoData{
		Version:   "dev",
		GoVersion: runtime.Version(),
		Rungs:     append([]string(nil), rungs...),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		if v := info.Main.Version; v != "" && v != "(devel)" {
			b.Version = v
		}
		var rev string
		var dirty bool
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if dirty {
				rev += "-dirty"
			}
			b.Version = rev
		}
	}
	return b
}

// Register publishes b as a constant-1 build_info gauge in the default
// registry and returns the gauge's full metric name.
func (b BuildInfoData) Register() string {
	name := fmt.Sprintf(`build_info{version=%q,go_version=%q,rungs=%q}`,
		b.Version, b.GoVersion, strings.Join(b.Rungs, ","))
	GetGauge(name).Set(1)
	return name
}
