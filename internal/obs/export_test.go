package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s does not match golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestChromeTraceGolden pins the trace_event JSON shape: an object with
// a traceEvents array of ph:"X" complete events carrying pid/tid/ts/dur
// in microseconds, attrs as args.
func TestChromeTraceGolden(t *testing.T) {
	recs := []SpanRecord{
		{Name: "core/diagnose", TID: 1, Start: 0, Dur: 1500 * time.Microsecond},
		{Name: "core/enhance", TID: 1, Start: 10 * time.Microsecond, Dur: 800 * time.Microsecond,
			Attrs: []Attr{{Key: "slices", Value: 8}}},
		{Name: "core/segment", TID: 1, Start: 820 * time.Microsecond, Dur: 400 * time.Microsecond},
		{Name: "kernels/ddnet_inference", TID: 2, Start: 5 * time.Microsecond, Dur: 2 * time.Millisecond,
			Attrs: []Attr{{Key: "variant", Value: "opt3"}, {Key: "size", Value: 64}}},
	}
	var buf bytes.Buffer
	if err := writeChromeTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome_trace.golden.json", buf.Bytes())
}

// TestPrometheusGolden pins the text exposition format across all three
// metric kinds, label handling, and histogram bucket expansion.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("distrib_allreduce_bytes_total").Add(98304)
	r.Counter(`parallel_chunks_spawned_total`).Add(64)
	r.Gauge("distrib_grad_norm").Set(0.125)
	h := r.Histogram(`pipeline_stage_seconds{stage="enhance"}`, []float64{0.01, 0.1, 1})
	h.Observe(0.004)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(3)
	h2 := r.Histogram(`pipeline_stage_seconds{stage="segment"}`, []float64{0.01, 0.1, 1})
	h2.Observe(0.02)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.golden.prom", buf.Bytes())
}

// TestJSONDumpRoundTrips sanity-checks the machine-readable dump shape
// against the same fixture (not golden-pinned: span timings are live).
func TestJSONDumpSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(2)
	h := r.Histogram("h_seconds", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	d := r.Snapshot()
	if d.Counters["c_total"] != 2 {
		t.Fatalf("counter snapshot = %v", d.Counters)
	}
	hd := d.Histograms["h_seconds"]
	if hd.Count != 2 || hd.Sum != 2.5 || len(hd.Buckets) != 2 {
		t.Fatalf("histogram snapshot = %+v", hd)
	}
	if hd.Buckets[0].Count != 1 || hd.Buckets[1].Count != 2 {
		t.Fatalf("cumulative buckets = %+v", hd.Buckets)
	}
}
