package obs_test

import (
	"context"
	"testing"

	"computecovid19/internal/obs"
)

// BenchmarkSpanDisabled measures the nil-sink fast path: the cost an
// instrumented call site pays when tracing is off. The ISSUE budget is
// ≤ ~5 ns/op; the expected cost is one atomic load plus two nil checks.
func BenchmarkSpanDisabled(b *testing.B) {
	obs.Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := obs.Start("bench")
		sp.End()
	}
}

// BenchmarkSpanDisabledWithAttr shows why hot loops should guard attr
// calls on span != nil: passing a non-constant value through SetAttr's
// `any` parameter boxes it at the call site, before the nil check.
func BenchmarkSpanDisabledWithAttr(b *testing.B) {
	obs.Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := obs.Start("bench")
		sp.SetAttr("k", i)
		sp.End()
	}
}

// BenchmarkSpanEnabledTraced is the comparison point with collection
// on. Since request-scoped tracing landed, an enabled span does real
// work the old interval-only span did not: it mints trace/span ids,
// resolves a stable per-goroutine Chrome-trace track (runtime.Stack,
// the dominant cost at a few µs), and commits the completed trace to
// the flight recorder. Single-digit µs per span is the budget — ~10-20
// spans on a ms-scale scan keeps enabled-tracing overhead well under
// 0.1% (see EXPERIMENTS.md); the disabled path above is what always-on
// call sites pay.
func BenchmarkSpanEnabledTraced(b *testing.B) {
	obs.Reset()
	obs.Enable()
	b.Cleanup(obs.Reset)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := obs.Start("bench")
		sp.End()
	}
}

// BenchmarkStartCtxDisabled measures the context-propagation fast path
// with tracing off: StartCtx must return the input context unchanged
// after one atomic load, costing no more than the plain Start nil-sink
// (the ≤ 2× budget is enforced by TestStartCtxDisabledOverhead and the
// CI benchcheck gate).
func BenchmarkStartCtxDisabled(b *testing.B) {
	obs.Disable()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := obs.StartCtx(ctx, "bench")
		sp.End()
	}
}

// BenchmarkStartCtxEnabled is the comparison point with collection on:
// one span allocation plus one context.WithValue per call.
func BenchmarkStartCtxEnabled(b *testing.B) {
	obs.Reset()
	obs.Enable()
	b.Cleanup(obs.Reset)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := obs.StartCtx(ctx, "bench")
		sp.End()
	}
}

// BenchmarkStartCtxEnabledNested measures the common mid-pipeline shape:
// starting a child under an already-active context span.
func BenchmarkStartCtxEnabledNested(b *testing.B) {
	obs.Reset()
	obs.Enable()
	b.Cleanup(obs.Reset)
	ctx, root := obs.StartCtx(context.Background(), "root")
	defer root.End()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := obs.StartCtx(ctx, "bench")
		sp.End()
	}
}

// TestStartCtxDisabledOverhead enforces the acceptance budget: with
// tracing off, StartCtx at an instrumented call site must cost no more
// than 2× the plain Start nil-sink path (both are one atomic load; the
// slack absorbs timer noise on loaded CI machines).
func TestStartCtxDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	obs.Disable()
	ctx := context.Background()
	span := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp := obs.Start("bench")
			sp.End()
		}
	})
	startCtx := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, sp := obs.StartCtx(ctx, "bench")
			sp.End()
		}
	})
	spanNs := float64(span.T.Nanoseconds()) / float64(span.N)
	ctxNs := float64(startCtx.T.Nanoseconds()) / float64(startCtx.N)
	t.Logf("disabled path: Start %.2f ns/op, StartCtx %.2f ns/op", spanNs, ctxNs)
	if ctxNs > 2*spanNs+10 {
		t.Fatalf("disabled StartCtx = %.2f ns/op, budget is 2× Start (%.2f ns/op) + 10ns slack", ctxNs, spanNs)
	}
	if allocs := startCtx.AllocsPerOp(); allocs != 0 {
		t.Fatalf("disabled StartCtx allocates %d objects/op, want 0", allocs)
	}
}

// BenchmarkCounterAdd measures the always-on metric hot path.
func BenchmarkCounterAdd(b *testing.B) {
	c := obs.NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve measures one latency observation.
func BenchmarkHistogramObserve(b *testing.B) {
	h := obs.NewRegistry().Histogram("bench_seconds", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}
