package obs_test

import (
	"testing"

	"computecovid19/internal/obs"
)

// BenchmarkSpanDisabled measures the nil-sink fast path: the cost an
// instrumented call site pays when tracing is off. The ISSUE budget is
// ≤ ~5 ns/op; the expected cost is one atomic load plus two nil checks.
func BenchmarkSpanDisabled(b *testing.B) {
	obs.Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := obs.Start("bench")
		sp.End()
	}
}

// BenchmarkSpanDisabledWithAttr shows why hot loops should guard attr
// calls on span != nil: passing a non-constant value through SetAttr's
// `any` parameter boxes it at the call site, before the nil check.
func BenchmarkSpanDisabledWithAttr(b *testing.B) {
	obs.Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := obs.Start("bench")
		sp.SetAttr("k", i)
		sp.End()
	}
}

// BenchmarkSpanEnabled is the comparison point with collection on.
func BenchmarkSpanEnabled(b *testing.B) {
	obs.Reset()
	obs.Enable()
	b.Cleanup(obs.Reset)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := obs.Start("bench")
		sp.End()
	}
}

// BenchmarkCounterAdd measures the always-on metric hot path.
func BenchmarkCounterAdd(b *testing.B) {
	c := obs.NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve measures one latency observation.
func BenchmarkHistogramObserve(b *testing.B) {
	h := obs.NewRegistry().Histogram("bench_seconds", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}
