package obs_test

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"computecovid19/internal/obs"
)

// fakeClock is an injectable SLO clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func gauge(name, slo string, extra ...string) *obs.Gauge {
	labels := fmt.Sprintf("slo=%q", slo)
	for _, e := range extra {
		labels += "," + e
	}
	return obs.GetGauge(name + "{" + labels + "}")
}

func approx(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
}

func TestSLODefaults(t *testing.T) {
	defer obs.Reset()
	cfg := obs.NewSLO(obs.SLOConfig{}).Config()
	if cfg.Name != "scan" || cfg.LatencyThreshold != 2*time.Second ||
		cfg.LatencyObjective != 0.95 || cfg.ErrorObjective != 0.999 || cfg.Window != time.Hour {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if len(cfg.BurnWindows) != 2 || cfg.BurnWindows[0] != 5*time.Minute || cfg.BurnWindows[1] != time.Hour {
		t.Fatalf("default burn windows wrong: %v", cfg.BurnWindows)
	}
	// An untouched budget is whole.
	approx(t, "fresh latency budget", gauge("slo_latency_budget_remaining", "scan").Value(), 1)
	approx(t, "fresh error budget", gauge("slo_error_budget_remaining", "scan").Value(), 1)
}

func TestSLOBudgetAndBurnMath(t *testing.T) {
	defer obs.Reset()
	clock := newFakeClock()
	s := obs.NewSLO(obs.SLOConfig{
		Name:             "t",
		LatencyThreshold: 100 * time.Millisecond,
		LatencyObjective: 0.8,
		ErrorObjective:   0.9,
		Window:           time.Minute,
		BurnWindows:      []time.Duration{10 * time.Second, time.Minute},
		Now:              clock.now,
	})

	// t0: one error and four good requests.
	s.Observe(10*time.Millisecond, true)
	for i := 0; i < 4; i++ {
		s.Observe(10*time.Millisecond, false)
	}
	// t0+30s: two slow and thirteen good requests.
	clock.advance(30 * time.Second)
	for i := 0; i < 2; i++ {
		s.Observe(500*time.Millisecond, false)
	}
	for i := 0; i < 13; i++ {
		s.Observe(10*time.Millisecond, false)
	}
	s.Export()

	// Full window: 20 requests, 2 slow, 1 error.
	// Latency budget over the 19 non-errors: allowed 19*0.2, spent 2.
	approx(t, "latency budget", gauge("slo_latency_budget_remaining", "t").Value(), 1-2/(19*0.2))
	// Error budget: allowed 20*0.1, spent 1.
	approx(t, "error budget", gauge("slo_error_budget_remaining", "t").Value(), 0.5)
	// Long-window burn rates.
	approx(t, "latency burn 1m", gauge("slo_latency_burn_rate", "t", `window="1m0s"`).Value(), (2.0/19)/0.2)
	approx(t, "error burn 1m", gauge("slo_error_burn_rate", "t", `window="1m0s"`).Value(), (1.0/20)/0.1)
	// Short window sees only the recent second: 15 requests, 2 slow, 0 errors.
	approx(t, "latency burn 10s", gauge("slo_latency_burn_rate", "t", `window="10s"`).Value(), (2.0/15)/0.2)
	approx(t, "error burn 10s", gauge("slo_error_burn_rate", "t", `window="10s"`).Value(), 0)

	if g, sl, e := obs.GetCounter(`slo_requests_good_total{slo="t"}`).Value(),
		obs.GetCounter(`slo_requests_slow_total{slo="t"}`).Value(),
		obs.GetCounter(`slo_requests_error_total{slo="t"}`).Value(); g != 17 || sl != 2 || e != 1 {
		t.Fatalf("outcome counters = good %d, slow %d, error %d", g, sl, e)
	}
}

func TestSLOBudgetExhaustsAndClamps(t *testing.T) {
	defer obs.Reset()
	clock := newFakeClock()
	s := obs.NewSLO(obs.SLOConfig{
		Name: "x", LatencyThreshold: time.Millisecond, LatencyObjective: 0.9,
		ErrorObjective: 0.9, Window: time.Minute, Now: clock.now,
	})
	for i := 0; i < 10; i++ {
		s.Observe(time.Second, i%2 == 0) // half errors, the rest slow
	}
	s.Export()
	// Overspent budgets clamp at zero instead of going negative.
	approx(t, "latency budget", gauge("slo_latency_budget_remaining", "x").Value(), 0)
	approx(t, "error budget", gauge("slo_error_budget_remaining", "x").Value(), 0)
}

func TestSLOWindowExpires(t *testing.T) {
	defer obs.Reset()
	clock := newFakeClock()
	s := obs.NewSLO(obs.SLOConfig{
		Name: "w", LatencyThreshold: time.Millisecond, LatencyObjective: 0.9,
		ErrorObjective: 0.9, Window: 30 * time.Second, Now: clock.now,
	})
	s.Observe(time.Second, true)
	s.Export()
	if gauge("slo_error_budget_remaining", "w").Value() != 0 {
		t.Fatal("single error against a tiny window must drain the budget")
	}
	// Once the bad second leaves the window the budget recovers fully.
	clock.advance(2 * time.Minute)
	s.Export()
	approx(t, "recovered error budget", gauge("slo_error_budget_remaining", "w").Value(), 1)
	approx(t, "recovered burn", gauge("slo_error_burn_rate", "w", `window="30s"`).Value(), 0)
}

func TestSLOGaugesReachPrometheusOutput(t *testing.T) {
	defer obs.Reset()
	clock := newFakeClock()
	s := obs.NewSLO(obs.SLOConfig{Name: "p", Now: clock.now})
	s.Observe(10*time.Millisecond, false)
	s.Export()
	var sb strings.Builder
	if err := obs.Default.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`slo_latency_budget_remaining{slo="p"} 1`,
		`slo_error_budget_remaining{slo="p"} 1`,
		`slo_requests_good_total{slo="p"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
