package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// The flight recorder keeps a bounded ring of recent *complete* traces —
// every span of a request, across goroutines — so slow-request exemplars
// survive without retaining the whole span buffer. A trace is complete
// when every span opened in it has ended (the request root span ends
// last, after the worker finishes). Dump triggers: SIGQUIT (see
// DumpFlightOnSignal), a request that exceeded its deadline, and 5xx
// responses (internal/serve wires the latter two through DumpFlightTrace).

// FlightTrace is one complete trace as retained by the flight recorder.
type FlightTrace struct {
	Trace TraceID `json:"trace_id"`
	// Root is the name of the trace's root span (zero Parent).
	Root string `json:"root"`
	// Start is the root span's start relative to the trace epoch.
	Start time.Duration `json:"start_ns"`
	// Dur is the root span's duration — the end-to-end request time.
	Dur time.Duration `json:"dur_ns"`
	// Spans is every span of the trace, in completion order.
	Spans []SpanRecord `json:"spans"`
}

// maxActiveFlights bounds the in-progress trace map; traces beyond the
// cap are not tracked (counted in FlightStats instead). A leaked span
// that never Ends can pin at most its own trace entry.
const maxActiveFlights = 4096

// defaultFlightCapacity is the completed-trace ring size.
const defaultFlightCapacity = 64

type flightRecorder struct {
	mu      sync.Mutex
	active  map[TraceID]*activeFlight
	ring    []FlightTrace // circular, cap = capacity
	next    int           // ring write cursor
	cap     int
	total   uint64 // completed traces ever recorded
	dropped uint64 // traces not tracked (active map full)
}

type activeFlight struct {
	open  int
	spans []SpanRecord
}

var flight = &flightRecorder{active: map[TraceID]*activeFlight{}, cap: defaultFlightCapacity}

func (f *flightRecorder) open(trace TraceID) {
	if trace.IsZero() {
		return
	}
	f.mu.Lock()
	a := f.active[trace]
	if a == nil {
		if len(f.active) >= maxActiveFlights {
			f.dropped++
			f.mu.Unlock()
			return
		}
		a = &activeFlight{}
		f.active[trace] = a
	}
	a.open++
	f.mu.Unlock()
}

func (f *flightRecorder) close(r SpanRecord) {
	f.mu.Lock()
	defer f.mu.Unlock()
	a := f.active[r.Trace]
	if a == nil {
		return // untracked (cap overflow) or reset mid-trace
	}
	a.spans = append(a.spans, r)
	a.open--
	if a.open > 0 {
		return
	}
	delete(f.active, r.Trace)
	ft := FlightTrace{Trace: r.Trace, Spans: a.spans}
	// The root span (zero Parent) names and bounds the trace; fall back
	// to the last-completed span for degenerate traces.
	root := a.spans[len(a.spans)-1]
	for _, s := range a.spans {
		if s.Parent.IsZero() {
			root = s
			break
		}
	}
	ft.Root, ft.Start, ft.Dur = root.Name, root.Start, root.Dur
	f.total++
	if len(f.ring) < f.cap {
		f.ring = append(f.ring, ft)
		f.next = len(f.ring) % f.cap
	} else {
		f.ring[f.next] = ft
		f.next = (f.next + 1) % f.cap
	}
}

// snapshot returns the retained traces, oldest first.
func (f *flightRecorder) snapshot() []FlightTrace {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightTrace, 0, len(f.ring))
	if len(f.ring) < f.cap {
		out = append(out, f.ring...)
	} else {
		out = append(out, f.ring[f.next:]...)
		out = append(out, f.ring[:f.next]...)
	}
	return out
}

func (f *flightRecorder) reset() {
	f.mu.Lock()
	f.active = map[TraceID]*activeFlight{}
	f.ring = nil
	f.next = 0
	f.cap = defaultFlightCapacity
	f.total = 0
	f.dropped = 0
	f.mu.Unlock()
}

// SetFlightCapacity resizes the completed-trace ring (existing retained
// traces are kept up to the new capacity, newest first).
func SetFlightCapacity(n int) {
	if n < 1 {
		n = 1
	}
	traces := flight.snapshot()
	flight.mu.Lock()
	flight.cap = n
	if len(traces) > n {
		traces = traces[len(traces)-n:]
	}
	flight.ring = traces
	flight.next = len(traces) % n
	flight.mu.Unlock()
}

// FlightTraces returns the flight recorder's retained complete traces,
// oldest first.
func FlightTraces() []FlightTrace { return flight.snapshot() }

// FlightTraceByID returns the retained trace with the given id, if any.
func FlightTraceByID(id TraceID) (FlightTrace, bool) {
	for _, t := range flight.snapshot() {
		if t.Trace == id {
			return t, true
		}
	}
	return FlightTrace{}, false
}

// FlightStats reports how many traces completed and how many were never
// tracked because the in-progress map was full.
func FlightStats() (completed, dropped uint64) {
	flight.mu.Lock()
	defer flight.mu.Unlock()
	return flight.total, flight.dropped
}

// flightDump is the on-disk schema of a flight-recorder dump.
type flightDump struct {
	Reason    string        `json:"reason"`
	WrittenAt time.Time     `json:"written_at"`
	Traces    []FlightTrace `json:"traces"`
}

// WriteFlight writes the retained traces (slowest first) as indented
// JSON.
func WriteFlight(w io.Writer, reason string) error {
	traces := flight.snapshot()
	sort.SliceStable(traces, func(i, j int) bool { return traces[i].Dur > traces[j].Dur })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(flightDump{Reason: reason, WrittenAt: time.Now(), Traces: traces})
}

// flightSeq distinguishes dump files written within one process.
var flightSeq atomic.Uint64

// DumpFlight writes every retained trace to a new file in dir and
// returns its path. The directory is created if needed.
func DumpFlight(dir, reason string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("flight-%d-%04d.json", os.Getpid(), flightSeq.Add(1)))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := WriteFlight(f, reason); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// DumpFlightTrace writes the single retained trace with the given id to
// dir (named after the trace id, so repeated triggers for one request
// overwrite rather than accumulate). It is a no-op returning "" when the
// trace is not retained — the recorder only dumps what it has.
func DumpFlightTrace(dir string, id TraceID, reason string) (string, error) {
	ft, ok := FlightTraceByID(id)
	if !ok {
		return "", nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "flight-"+id.String()+".json")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(flightDump{Reason: reason, WrittenAt: time.Now(), Traces: []FlightTrace{ft}}); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// DumpFlightOnSignal installs a SIGQUIT handler that dumps the flight
// recorder to dir — the live-triage hook: kill -QUIT a stuck server and
// read the recent request traces without restarting it. The returned
// stop function uninstalls the handler.
func DumpFlightOnSignal(dir string) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				if path, err := DumpFlight(dir, "SIGQUIT"); err != nil {
					logger().Error("flight dump failed", "err", err)
				} else {
					logger().Info("flight recorder dumped", "path", path)
				}
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
