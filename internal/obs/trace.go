package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"runtime"
	"sync/atomic"
)

// TraceID identifies one request-scoped trace: every span recorded on
// behalf of the same request shares it, across goroutines and (via the
// traceparent header) across processes. The zero value means "no trace".
type TraceID [16]byte

// IsZero reports whether t is the absent trace id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as 32 lowercase hex digits (the W3C
// trace-context wire form).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// MarshalText implements encoding.TextMarshaler, so trace ids render as
// hex strings in JSON flight-recorder dumps.
func (t TraceID) MarshalText() ([]byte, error) {
	out := make([]byte, 32)
	hex.Encode(out, t[:])
	return out, nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (t *TraceID) UnmarshalText(b []byte) error {
	_, err := hex.Decode(t[:], b)
	return err
}

// SpanID identifies one span within a trace. The zero value means "no
// span" (a root span's Parent).
type SpanID [8]byte

// IsZero reports whether s is the absent span id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// MarshalText implements encoding.TextMarshaler.
func (s SpanID) MarshalText() ([]byte, error) {
	out := make([]byte, 16)
	hex.Encode(out, s[:])
	return out, nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *SpanID) UnmarshalText(b []byte) error {
	_, err := hex.Decode(s[:], b)
	return err
}

// SpanContext is the propagatable identity of a span: enough to continue
// its trace in another goroutine or process, or to link it from a span
// in a different trace (the micro-batcher links the request spans each
// batch serves).
type SpanContext struct {
	Trace TraceID `json:"trace_id"`
	Span  SpanID  `json:"span_id"`
}

// IsZero reports whether sc carries no identity (disabled tracing).
func (sc SpanContext) IsZero() bool { return sc.Trace.IsZero() }

// Traceparent renders sc as a W3C trace-context traceparent header
// value: version 00, sampled flag set.
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.Trace.String() + "-" + sc.Span.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent header value
// ("00-<32 hex>-<16 hex>-<2 hex>"). It accepts any version byte and
// ignores the flags, per the spec's forward-compatibility rules, and
// rejects all-zero trace or span ids.
func ParseTraceparent(s string) (SpanContext, bool) {
	var sc SpanContext
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, false
	}
	var version [1]byte
	if _, err := hex.Decode(version[:], []byte(s[0:2])); err != nil || version[0] == 0xff {
		return sc, false
	}
	if _, err := hex.Decode(sc.Trace[:], []byte(s[3:35])); err != nil {
		return sc, false
	}
	if _, err := hex.Decode(sc.Span[:], []byte(s[36:52])); err != nil {
		return sc, false
	}
	if _, err := hex.Decode(version[:], []byte(s[53:55])); err != nil {
		return sc, false
	}
	if sc.Trace.IsZero() || sc.Span.IsZero() {
		return sc, false
	}
	return sc, true
}

// remoteKey keys an inbound SpanContext (parsed from a traceparent
// header) in a context.Context; StartCtx continues that trace instead of
// opening a new one.
type remoteKey struct{}

// ContextWithRemote returns a context carrying an inbound span identity.
// The next StartCtx on it starts a span in sc's trace with sc as parent.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if sc.IsZero() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, sc)
}

// ID generation: a per-process random base (crypto-seeded once) mixed
// with an atomic counter through splitmix64 — collision-free within a
// process, unpredictable across processes, and lock-free per span.
var (
	idBase    uint64
	idCounter atomic.Uint64
)

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		idBase = binary.LittleEndian.Uint64(b[:])
	} else {
		idBase = 0x9e3779b97f4a7c15 // fixed fallback: ids stay unique in-process
	}
}

// splitmix64 is the SplitMix64 output function: a bijective mixer whose
// outputs over sequential inputs are statistically random.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func nextIDWord() uint64 {
	for {
		if v := splitmix64(idBase + idCounter.Add(1)); v != 0 {
			return v
		}
	}
}

func newTraceID() TraceID {
	var t TraceID
	binary.LittleEndian.PutUint64(t[0:8], nextIDWord())
	binary.LittleEndian.PutUint64(t[8:16], nextIDWord())
	return t
}

func newSpanID() SpanID {
	var s SpanID
	binary.LittleEndian.PutUint64(s[:], nextIDWord())
	return s
}

// goroutineID parses the current goroutine's id from its stack header
// ("goroutine N [running]:"). It costs a few hundred nanoseconds, so it
// is computed only when span collection is enabled; the id gives every
// goroutine a stable Chrome-trace track, so concurrent spans (worker
// pool, DDP ranks, the batcher) render side by side instead of stacking
// on one synthetic track.
func goroutineID() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	// Skip "goroutine " (10 bytes) and read digits.
	var id int64
	for _, c := range buf[10:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}
