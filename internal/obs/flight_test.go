package obs_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"computecovid19/internal/obs"
)

// completeTrace records one root+child trace and returns its id.
func completeTrace(t *testing.T, name string) obs.TraceID {
	t.Helper()
	root := obs.Start(name)
	if root == nil {
		t.Fatal("tracing must be enabled")
	}
	child := root.Child(name + "/child")
	child.End()
	root.End()
	return root.TraceID()
}

func TestFlightRetainsOnlyCompleteTraces(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	obs.Enable()

	// An open trace (child ended, root still running) is not retained.
	root := obs.Start("pending")
	root.Child("step").End()
	if got := obs.FlightTraces(); len(got) != 0 {
		t.Fatalf("incomplete trace retained: %+v", got)
	}
	root.End()

	id := completeTrace(t, "request")
	traces := obs.FlightTraces()
	if len(traces) != 2 {
		t.Fatalf("got %d retained traces, want 2", len(traces))
	}
	ft, ok := obs.FlightTraceByID(id)
	if !ok {
		t.Fatalf("trace %s not retained", id)
	}
	if ft.Root != "request" || len(ft.Spans) != 2 {
		t.Fatalf("retained trace wrong: root=%q spans=%d", ft.Root, len(ft.Spans))
	}
	// The root span bounds the trace even though it completes last.
	if ft.Dur < ft.Spans[0].Dur {
		t.Fatalf("trace duration %v shorter than child %v", ft.Dur, ft.Spans[0].Dur)
	}
	if _, ok := obs.FlightTraceByID(obs.TraceID{1}); ok {
		t.Fatal("unknown id must not resolve")
	}
}

func TestFlightRingEvictsOldestFirst(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	obs.Enable()
	obs.SetFlightCapacity(3)

	var ids []obs.TraceID
	for _, name := range []string{"t0", "t1", "t2", "t3", "t4"} {
		ids = append(ids, completeTrace(t, name))
	}
	traces := obs.FlightTraces()
	if len(traces) != 3 {
		t.Fatalf("ring holds %d traces, want capacity 3", len(traces))
	}
	for i, ft := range traces {
		if want := ids[i+2]; ft.Trace != want {
			t.Fatalf("slot %d = %s, want %s (oldest-first, newest retained)", i, ft.Trace, want)
		}
	}
	completed, dropped := obs.FlightStats()
	if completed != 5 || dropped != 0 {
		t.Fatalf("stats = (%d completed, %d dropped), want (5, 0)", completed, dropped)
	}
}

// flightDumpFile mirrors the on-disk dump schema.
type flightDumpFile struct {
	Reason    string            `json:"reason"`
	WrittenAt time.Time         `json:"written_at"`
	Traces    []obs.FlightTrace `json:"traces"`
}

func TestWriteFlightSlowestFirst(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	obs.Enable()

	fast := obs.Start("fast")
	fast.End()
	slow := obs.Start("slow")
	time.Sleep(5 * time.Millisecond)
	slow.End()

	var buf bytes.Buffer
	if err := obs.WriteFlight(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	var dump flightDumpFile
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Reason != "test" || len(dump.Traces) != 2 {
		t.Fatalf("dump = reason %q, %d traces", dump.Reason, len(dump.Traces))
	}
	if dump.Traces[0].Root != "slow" || dump.Traces[1].Root != "fast" {
		t.Fatalf("order = %q, %q; want slowest first", dump.Traces[0].Root, dump.Traces[1].Root)
	}
}

func TestDumpFlightWritesFile(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	obs.Enable()
	completeTrace(t, "request")

	dir := filepath.Join(t.TempDir(), "nested") // exercises MkdirAll
	path, err := obs.DumpFlight(dir, "SIGQUIT")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(filepath.Base(path), "flight-") {
		t.Fatalf("unexpected dump name: %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump flightDumpFile
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Reason != "SIGQUIT" || len(dump.Traces) != 1 || dump.Traces[0].Root != "request" {
		t.Fatalf("dump content wrong: %+v", dump)
	}
}

func TestDumpFlightTraceSelectsOneTrace(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	obs.Enable()
	completeTrace(t, "other")
	id := completeTrace(t, "failed")

	dir := t.TempDir()
	path, err := obs.DumpFlightTrace(dir, id, "deadline")
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "flight-"+id.String()+".json"); path != want {
		t.Fatalf("path = %s, want %s", path, want)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump flightDumpFile
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Traces) != 1 || dump.Traces[0].Trace != id || dump.Reason != "deadline" {
		t.Fatalf("dump must carry exactly the requested trace: %+v", dump)
	}

	// A trace the ring no longer holds dumps nothing — and is not an error.
	path, err = obs.DumpFlightTrace(dir, obs.TraceID{7}, "deadline")
	if err != nil || path != "" {
		t.Fatalf("unretained trace: path=%q err=%v, want no-op", path, err)
	}
}

func TestSetFlightCapacityKeepsNewest(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	obs.Enable()
	var ids []obs.TraceID
	for i := 0; i < 4; i++ {
		ids = append(ids, completeTrace(t, "t"))
	}
	obs.SetFlightCapacity(2)
	traces := obs.FlightTraces()
	if len(traces) != 2 || traces[0].Trace != ids[2] || traces[1].Trace != ids[3] {
		t.Fatalf("shrink must keep the newest traces: %+v", traces)
	}
	// The shrunk ring still cycles correctly.
	id := completeTrace(t, "t")
	traces = obs.FlightTraces()
	if len(traces) != 2 || traces[1].Trace != id {
		t.Fatalf("post-shrink insert wrong: %+v", traces)
	}
}
