package obs

import (
	"context"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values should be small
// scalars or short strings; they are carried verbatim into the Chrome
// trace "args" object.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Span is one timed region of execution inside a trace. A nil *Span is
// the disabled sink: every method no-ops, so call sites need no enabled
// checks.
type Span struct {
	name   string
	start  time.Time
	tid    int64 // goroutine id at creation — the Chrome-trace track
	trace  TraceID
	id     SpanID
	parent SpanID
	attrs  []Attr
	links  []SpanContext
}

// Start begins a root span in a fresh trace. It returns nil when span
// collection is disabled — the nil-sink fast path, one atomic load.
func Start(name string) *Span {
	if !enabled.Load() {
		return nil
	}
	return newSpan(name, newTraceID(), SpanID{})
}

func newSpan(name string, trace TraceID, parent SpanID) *Span {
	sp := &Span{
		name:   name,
		start:  time.Now(),
		tid:    goroutineID(),
		trace:  trace,
		id:     newSpanID(),
		parent: parent,
	}
	flight.open(trace)
	return sp
}

// Child begins a span nested under s, in the same trace. On a nil
// receiver it returns nil, propagating the disabled sink down the call
// tree.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return newSpan(name, s.trace, s.id)
}

// ctxKey keys the active span in a context.Context.
type ctxKey struct{}

// StartCtx begins a span nested under the context's active span — or
// continuing an inbound identity installed by ContextWithRemote, or as
// the root of a fresh trace — and returns a derived context carrying it.
// When collection is disabled the input context is returned unchanged.
func StartCtx(ctx context.Context, name string) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	var sp *Span
	if parent, ok := ctx.Value(ctxKey{}).(*Span); ok && parent != nil {
		sp = parent.Child(name)
	} else if remote, ok := ctx.Value(remoteKey{}).(SpanContext); ok {
		sp = newSpan(name, remote.Trace, remote.Span)
	} else {
		sp = newSpan(name, newTraceID(), SpanID{})
	}
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// FromContext returns the context's active span, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// FromCtx is an alias of FromContext, kept for existing call sites.
func FromCtx(ctx context.Context) *Span { return FromContext(ctx) }

// ContextWithSpan returns a context carrying sp as the active span —
// the detach primitive for work that outlives its originating request
// context (a queued job keeps its trace without inheriting the HTTP
// request's cancellation).
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// Context returns the span's propagatable identity (zero when s is the
// disabled sink).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.trace, Span: s.id}
}

// TraceID returns the span's trace id (zero when disabled).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// SpanID returns the span's own id (zero when disabled).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Traceparent renders the span's identity as a traceparent header value,
// or "" when disabled.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return s.Context().Traceparent()
}

// SetAttr attaches a key/value annotation.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Link records a causal reference to a span in another trace — the
// batch span links every request span it serves, and the Chrome
// exporter renders the links as flow arrows.
func (s *Span) Link(sc SpanContext) {
	if s == nil || sc.IsZero() {
		return
	}
	s.links = append(s.links, sc)
}

// End closes the span and commits it to the trace buffer and the flight
// recorder.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	r := SpanRecord{
		Name:   s.name,
		TID:    s.tid,
		Trace:  s.trace,
		ID:     s.id,
		Parent: s.parent,
		Start:  s.start.Sub(traceEpoch()),
		Dur:    now.Sub(s.start),
		Attrs:  s.attrs,
		Links:  s.links,
	}
	addRecord(r)
	flight.close(r)
}

// SpanRecord is one completed span as retained by the trace buffer.
// Start is relative to the trace epoch (the first Enable call). Parent
// is zero for root spans; TID is the goroutine the span started on.
type SpanRecord struct {
	Name   string        `json:"name"`
	TID    int64         `json:"tid"`
	Trace  TraceID       `json:"trace_id"`
	ID     SpanID        `json:"span_id"`
	Parent SpanID        `json:"parent_id"`
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
	Attrs  []Attr        `json:"attrs,omitempty"`
	Links  []SpanContext `json:"links,omitempty"`
}

// maxTraceRecords bounds trace-buffer memory; ~256k spans ≈ tens of MB.
// Overflowing spans are counted, not retained.
const maxTraceRecords = 1 << 18

var trace struct {
	mu      sync.Mutex
	recs    []SpanRecord
	dropped uint64
}

func addRecord(r SpanRecord) {
	trace.mu.Lock()
	if len(trace.recs) >= maxTraceRecords {
		trace.dropped++
	} else {
		trace.recs = append(trace.recs, r)
	}
	trace.mu.Unlock()
}

func resetTrace() {
	trace.mu.Lock()
	trace.recs = nil
	trace.dropped = 0
	trace.mu.Unlock()
}

// TraceRecords returns a snapshot of the completed spans and the count
// of spans dropped to the buffer cap.
func TraceRecords() ([]SpanRecord, uint64) {
	trace.mu.Lock()
	defer trace.mu.Unlock()
	return append([]SpanRecord(nil), trace.recs...), trace.dropped
}

// SpanStat aggregates the completed spans of one name.
type SpanStat struct {
	Count        int     `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MinSeconds   float64 `json:"min_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
}

// SpanStats folds the trace buffer into per-name statistics — the
// digest the text and JSON exporters print.
func SpanStats() map[string]SpanStat {
	recs, _ := TraceRecords()
	stats := make(map[string]SpanStat)
	for _, r := range recs {
		s := stats[r.Name]
		sec := r.Dur.Seconds()
		if s.Count == 0 || sec < s.MinSeconds {
			s.MinSeconds = sec
		}
		if sec > s.MaxSeconds {
			s.MaxSeconds = sec
		}
		s.Count++
		s.TotalSeconds += sec
		stats[r.Name] = s
	}
	return stats
}
