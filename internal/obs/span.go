package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values should be small
// scalars or short strings; they are carried verbatim into the Chrome
// trace "args" object.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed region of execution. A nil *Span is the disabled
// sink: every method no-ops, so call sites need no enabled checks.
type Span struct {
	name  string
	start time.Time
	tid   int64
	attrs []Attr
}

// nextTID hands out Chrome-trace track ids: each top-level span opens a
// new track, children inherit their parent's, so nested spans stack in
// the viewer.
var nextTID atomic.Int64

// Start begins a top-level span. It returns nil when span collection is
// disabled — the nil-sink fast path, one atomic load.
func Start(name string) *Span {
	if !enabled.Load() {
		return nil
	}
	return &Span{name: name, start: time.Now(), tid: nextTID.Add(1)}
}

// Child begins a span nested under s, on the same trace track. On a nil
// receiver it returns nil, propagating the disabled sink down the call
// tree.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{name: name, start: time.Now(), tid: s.tid}
}

// ctxKey keys the active span in a context.Context.
type ctxKey struct{}

// StartCtx begins a span nested under the context's active span (or a
// new top-level span) and returns a derived context carrying it. When
// collection is disabled the input context is returned unchanged.
func StartCtx(ctx context.Context, name string) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	var sp *Span
	if parent, ok := ctx.Value(ctxKey{}).(*Span); ok {
		sp = parent.Child(name)
	} else {
		sp = Start(name)
	}
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// FromCtx returns the context's active span, or nil.
func FromCtx(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// SetAttr attaches a key/value annotation.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span and commits it to the trace buffer.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	addRecord(SpanRecord{
		Name:  s.name,
		TID:   s.tid,
		Start: s.start.Sub(traceEpoch()),
		Dur:   now.Sub(s.start),
		Attrs: s.attrs,
	})
}

// SpanRecord is one completed span as retained by the trace buffer.
// Start is relative to the trace epoch (the first Enable call).
type SpanRecord struct {
	Name  string
	TID   int64
	Start time.Duration
	Dur   time.Duration
	Attrs []Attr
}

// maxTraceRecords bounds trace-buffer memory; ~256k spans ≈ tens of MB.
// Overflowing spans are counted, not retained.
const maxTraceRecords = 1 << 18

var trace struct {
	mu      sync.Mutex
	recs    []SpanRecord
	dropped uint64
}

func addRecord(r SpanRecord) {
	trace.mu.Lock()
	if len(trace.recs) >= maxTraceRecords {
		trace.dropped++
	} else {
		trace.recs = append(trace.recs, r)
	}
	trace.mu.Unlock()
}

func resetTrace() {
	trace.mu.Lock()
	trace.recs = nil
	trace.dropped = 0
	trace.mu.Unlock()
}

// TraceRecords returns a snapshot of the completed spans and the count
// of spans dropped to the buffer cap.
func TraceRecords() ([]SpanRecord, uint64) {
	trace.mu.Lock()
	defer trace.mu.Unlock()
	return append([]SpanRecord(nil), trace.recs...), trace.dropped
}

// SpanStat aggregates the completed spans of one name.
type SpanStat struct {
	Count        int     `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MinSeconds   float64 `json:"min_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
}

// SpanStats folds the trace buffer into per-name statistics — the
// digest the text and JSON exporters print.
func SpanStats() map[string]SpanStat {
	recs, _ := TraceRecords()
	stats := make(map[string]SpanStat)
	for _, r := range recs {
		s := stats[r.Name]
		sec := r.Dur.Seconds()
		if s.Count == 0 || sec < s.MinSeconds {
			s.MinSeconds = sec
		}
		if sec > s.MaxSeconds {
			s.MaxSeconds = sec
		}
		s.Count++
		s.TotalSeconds += sec
		stats[r.Name] = s
	}
	return stats
}
