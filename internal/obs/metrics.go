package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. The zero value is
// usable; a nil *Counter is the disabled sink.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down (last-write-wins
// Set plus an atomic Add). A nil *Gauge is the disabled sink.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds v to the gauge.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: bounds are inclusive upper edges, with an implicit +Inf bucket.
// Observation is lock-free (one binary search + two atomic adds + one
// CAS loop for the sum). A nil *Histogram is the disabled sink.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Bounds returns the bucket upper edges (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// Cumulative returns the cumulative per-bucket counts, one per bound
// plus the +Inf bucket (so the last entry equals Count at snapshot
// time).
func (h *Histogram) Cumulative() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.buckets))
	var run uint64
	for i := range h.buckets {
		run += h.buckets[i].Load()
		out[i] = run
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket
// counts, interpolating linearly inside the bucket that contains the
// target rank — the same estimate Prometheus's histogram_quantile
// computes. Samples in the +Inf overflow bucket are reported as the
// largest finite bound (a conservative under-estimate). Returns 0 when
// the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := q * float64(total)
	cum := h.Cumulative()
	for i, c := range cum {
		if float64(c) < target {
			continue
		}
		if i >= len(h.bounds) {
			// Overflow bucket: no finite upper edge to interpolate to.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		prev := 0.0
		if i > 0 {
			prev = float64(cum[i-1])
		}
		inBucket := float64(c) - prev
		if inBucket <= 0 {
			return hi
		}
		return lo + (hi-lo)*(target-prev)/inBucket
	}
	return h.bounds[len(h.bounds)-1]
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and growing by factor — the shape latency distributions want.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// TimeBuckets are the default latency bounds: 100 µs to ~1.6 h in
// half-decade steps, covering kernel times through simulated workflow
// turnarounds.
func TimeBuckets() []float64 { return ExpBuckets(1e-4, math.Sqrt(10), 16) }

// Registry is a named set of metrics. Lookup is get-or-create, so
// instrumented packages can grab handles at init without coordination.
// Metric names may carry Prometheus-style labels inline:
//
//	pipeline_stage_seconds{stage="enhance"}
//
// The exporters split the label block off the base name (histograms
// need it to splice in the "le" label).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// Default is the process-wide registry all package-level helpers use.
var Default = NewRegistry()

func (r *Registry) lookup(name string, create func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := create()
	r.metrics[name] = m
	return m
}

// Counter returns the counter registered under name, creating it if
// needed. It panics if name is already registered as another kind.
func (r *Registry) Counter(name string) *Counter {
	m := r.lookup(name, func() any { return new(Counter) })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	m := r.lookup(name, func() any { return new(Gauge) })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds if needed. Bounds must be sorted
// ascending; they are ignored when the histogram already exists.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	m := r.lookup(name, func() any {
		if len(bounds) == 0 {
			bounds = TimeBuckets()
		}
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("obs: histogram %q bounds not sorted", name))
		}
		return &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Uint64, len(bounds)+1),
		}
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
	}
	return h
}

// NewHistogram returns a free-standing histogram that is not attached
// to any registry — for instance-scoped statistics (e.g. one trainer's
// timing baseline) that must not pool across instances. Empty bounds
// select TimeBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = TimeBuckets()
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds not sorted")
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// reset zeroes every registered metric in place, keeping handles valid.
func (r *Registry) reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.metrics {
		switch m := m.(type) {
		case *Counter:
			m.v.Store(0)
		case *Gauge:
			m.bits.Store(0)
		case *Histogram:
			for i := range m.buckets {
				m.buckets[i].Store(0)
			}
			m.count.Store(0)
			m.sumBits.Store(0)
		}
	}
}

// names returns the registered metric names, sorted.
func (r *Registry) names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// get returns the metric registered under name, or nil.
func (r *Registry) get(name string) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metrics[name]
}

// GetCounter / GetGauge / GetHistogram return the package-default
// registry's metric handles, creating them on first use.

// GetCounter returns Default.Counter(name).
func GetCounter(name string) *Counter { return Default.Counter(name) }

// GetGauge returns Default.Gauge(name).
func GetGauge(name string) *Gauge { return Default.Gauge(name) }

// GetHistogram returns Default.Histogram(name, bounds). Empty bounds
// select TimeBuckets.
func GetHistogram(name string, bounds []float64) *Histogram {
	return Default.Histogram(name, bounds)
}
