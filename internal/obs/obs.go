// Package obs is the repository's telemetry subsystem: hierarchical
// wall-time spans, a process-wide registry of counters / gauges /
// histograms, and exporters for humans (text summary), machines (JSON,
// the source for BENCH_*.json trajectories), Prometheus scrapes (text
// exposition format), and chrome://tracing / Perfetto (trace_event
// JSON).
//
// The paper's claims are throughput claims — Table 3's DDP scaling,
// Table 6's per-kernel load/store/flop ladder, the §1 "days to minutes"
// turnaround — so every layer of this reproduction reports into obs:
// internal/core records per-stage and per-scan latencies, internal/ddnet
// per-layer forward times, internal/kernels measured kernel time next to
// its static traffic model (a live roofline), internal/distrib per-step
// loss, gradient norms and all-reduce bytes, and internal/workflow
// queue-wait and service times.
//
// Cost model: metric handles are lock-free atomics, cheap enough to stay
// always-on. Span collection is gated by Enable/Disable; a disabled
// Start returns a nil *Span whose methods are no-op on the nil receiver,
// so an instrumented call site costs one atomic load (~1-2 ns, see
// BenchmarkSpanDisabled) when tracing is off.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates span collection (the expensive part: time.Now calls and
// record retention). Metrics are always live.
var enabled atomic.Bool

// epoch is the zero point of exported trace timestamps. Written before
// enabled flips true; read only by span sites that observed true.
var epoch struct {
	mu sync.Mutex
	t  time.Time
}

// Enable turns span collection on. The first call (or the first after
// Reset) pins the trace epoch, so exported timestamps count from it.
func Enable() {
	epoch.mu.Lock()
	if epoch.t.IsZero() {
		epoch.t = time.Now()
	}
	epoch.mu.Unlock()
	enabled.Store(true)
}

// Disable turns span collection off. Already-started spans still record
// on End; new Start calls return nil.
func Disable() { enabled.Store(false) }

// Enabled reports whether span collection is on. Instrumented code may
// also consult it to skip derived computations (e.g. gradient norms)
// whose only purpose is telemetry.
func Enabled() bool { return enabled.Load() }

// traceEpoch returns the pinned epoch (zero time if Enable never ran).
func traceEpoch() time.Time {
	epoch.mu.Lock()
	defer epoch.mu.Unlock()
	return epoch.t
}

// Reset clears all telemetry state — every metric in the default
// registry is zeroed in place (handles stay valid and registered), the
// span buffer, flight recorder and trace epoch are dropped, and span
// collection is disabled. It is meant for tests.
func Reset() {
	enabled.Store(false)
	epoch.mu.Lock()
	epoch.t = time.Time{}
	epoch.mu.Unlock()
	resetTrace()
	flight.reset()
	Default.reset()
}
