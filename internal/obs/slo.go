package obs

import (
	"fmt"
	"sync"
	"time"
)

// SLO tracking in the multi-window burn-rate style: each request is
// judged good or bad against a latency threshold and an error objective,
// counted into per-second ring buckets, and folded on demand into
// budget-remaining and burn-rate gauges. A burn rate of 1.0 means the
// error budget is being consumed exactly as fast as the objective
// allows; alerting practice pages on a short window burning fast AND a
// long window confirming it.

// SLOConfig declares the objectives for one endpoint.
type SLOConfig struct {
	// Name labels the exported gauges (slo="<name>").
	Name string
	// LatencyThreshold is the "good request" latency bound.
	LatencyThreshold time.Duration
	// LatencyObjective is the target fraction of requests under the
	// threshold (e.g. 0.95 → 5% slow budget).
	LatencyObjective float64
	// ErrorObjective is the target success fraction (e.g. 0.999).
	ErrorObjective float64
	// Window is the error-budget accounting window.
	Window time.Duration
	// BurnWindows are the burn-rate measurement windows (each must be
	// ≤ Window); defaults to {Window/12, Window}.
	BurnWindows []time.Duration
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// sloBucket accumulates one second of outcomes.
type sloBucket struct {
	sec   int64 // unix second this bucket covers; 0 = empty
	total uint64
	slow  uint64
	errs  uint64
}

// SLO tracks outcomes for one endpoint against its objectives.
type SLO struct {
	cfg SLOConfig
	now func() time.Time

	mu      sync.Mutex
	buckets []sloBucket // ring indexed by unix-second % len

	budgetLatency *Gauge
	budgetErrors  *Gauge
	burnLatency   []*Gauge
	burnErrors    []*Gauge
	good          *Counter
	slow          *Counter
	errs          *Counter
}

// NewSLO builds an SLO tracker and registers its gauges in the default
// registry. Zero-valued config fields get serving defaults: 2s / 95%
// latency, 99.9% availability, 1h window.
func NewSLO(cfg SLOConfig) *SLO {
	if cfg.Name == "" {
		cfg.Name = "scan"
	}
	if cfg.LatencyThreshold <= 0 {
		cfg.LatencyThreshold = 2 * time.Second
	}
	if cfg.LatencyObjective <= 0 || cfg.LatencyObjective >= 1 {
		cfg.LatencyObjective = 0.95
	}
	if cfg.ErrorObjective <= 0 || cfg.ErrorObjective >= 1 {
		cfg.ErrorObjective = 0.999
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Hour
	}
	if len(cfg.BurnWindows) == 0 {
		short := cfg.Window / 12
		if short < time.Second {
			short = time.Second
		}
		cfg.BurnWindows = []time.Duration{short, cfg.Window}
	}
	for i, w := range cfg.BurnWindows {
		if w <= 0 || w > cfg.Window {
			cfg.BurnWindows[i] = cfg.Window
		}
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	s := &SLO{
		cfg:     cfg,
		now:     now,
		buckets: make([]sloBucket, int(cfg.Window/time.Second)+1),

		budgetLatency: GetGauge(fmt.Sprintf(`slo_latency_budget_remaining{slo=%q}`, cfg.Name)),
		budgetErrors:  GetGauge(fmt.Sprintf(`slo_error_budget_remaining{slo=%q}`, cfg.Name)),
		good:          GetCounter(fmt.Sprintf(`slo_requests_good_total{slo=%q}`, cfg.Name)),
		slow:          GetCounter(fmt.Sprintf(`slo_requests_slow_total{slo=%q}`, cfg.Name)),
		errs:          GetCounter(fmt.Sprintf(`slo_requests_error_total{slo=%q}`, cfg.Name)),
	}
	for _, w := range cfg.BurnWindows {
		s.burnLatency = append(s.burnLatency, GetGauge(fmt.Sprintf(`slo_latency_burn_rate{slo=%q,window=%q}`, cfg.Name, w)))
		s.burnErrors = append(s.burnErrors, GetGauge(fmt.Sprintf(`slo_error_burn_rate{slo=%q,window=%q}`, cfg.Name, w)))
	}
	// A fresh tracker has consumed nothing.
	s.budgetLatency.Set(1)
	s.budgetErrors.Set(1)
	return s
}

// Observe records one finished request: its latency and whether it
// failed. Errors count against the availability objective only; the
// latency objective is judged on non-error requests.
func (s *SLO) Observe(latency time.Duration, isError bool) {
	sec := s.now().Unix()
	s.mu.Lock()
	b := &s.buckets[int(sec%int64(len(s.buckets)))]
	if b.sec != sec {
		*b = sloBucket{sec: sec}
	}
	b.total++
	switch {
	case isError:
		b.errs++
		s.errs.Inc()
	case latency > s.cfg.LatencyThreshold:
		b.slow++
		s.slow.Inc()
	default:
		s.good.Inc()
	}
	s.mu.Unlock()
}

// windowSums folds the ring over the trailing window ending at sec.
func (s *SLO) windowSums(sec int64, w time.Duration) (total, slow, errs uint64) {
	lo := sec - int64(w/time.Second) + 1
	if span := int64(len(s.buckets)); sec-lo+1 > span {
		lo = sec - span + 1
	}
	for t := lo; t <= sec; t++ {
		if b := &s.buckets[int(t%int64(len(s.buckets)))]; b.sec == t {
			total += b.total
			slow += b.slow
			errs += b.errs
		}
	}
	return
}

// burnRate converts a bad fraction into budget-consumption speed.
func burnRate(bad, total uint64, objective float64) float64 {
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - objective)
}

// budgetRemaining is the unconsumed fraction of the window's error
// budget (clamped at 0; an untouched budget is 1).
func budgetRemaining(bad, total uint64, objective float64) float64 {
	if total == 0 {
		return 1
	}
	allowed := float64(total) * (1 - objective)
	rem := 1 - float64(bad)/allowed
	if rem < 0 {
		return 0
	}
	return rem
}

// Export recomputes and publishes the budget and burn-rate gauges. The
// serve /metrics handler calls it before rendering, so the registry
// stays passive between scrapes.
func (s *SLO) Export() {
	sec := s.now().Unix()
	s.mu.Lock()
	defer s.mu.Unlock()
	total, slow, errs := s.windowSums(sec, s.cfg.Window)
	// Latency objective judged over non-error requests.
	s.budgetLatency.Set(budgetRemaining(slow, total-errs, s.cfg.LatencyObjective))
	s.budgetErrors.Set(budgetRemaining(errs, total, s.cfg.ErrorObjective))
	for i, w := range s.cfg.BurnWindows {
		wt, ws, we := s.windowSums(sec, w)
		s.burnLatency[i].Set(burnRate(ws, wt-we, s.cfg.LatencyObjective))
		s.burnErrors[i].Set(burnRate(we, wt, s.cfg.ErrorObjective))
	}
}

// Config returns the resolved configuration (defaults applied).
func (s *SLO) Config() SLOConfig { return s.cfg }
