package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// splitName separates an inline label block from a metric name:
// `foo{a="b"}` → base "foo", labels `a="b"`. Names without a label
// block return labels "".
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// joinLabels renders a label block from the inline labels plus extra
// pairs (already escaped), for the histogram "le" splice.
func joinLabels(labels string, extra ...string) string {
	parts := make([]string, 0, 1+len(extra))
	if labels != "" {
		parts = append(parts, labels)
	}
	parts = append(parts, extra...)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one # TYPE line per metric family,
// histograms expanded into _bucket/_sum/_count series with cumulative
// "le" buckets. Output is sorted by name, so it is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	names := r.names()
	// One TYPE line per metric family (base name), even when several
	// label sets share it; sort by (base, full name) so families are
	// contiguous.
	typed := make(map[string]bool)
	sort.Slice(names, func(i, j int) bool {
		bi, _ := splitName(names[i])
		bj, _ := splitName(names[j])
		if bi != bj {
			return bi < bj
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		base, labels := splitName(name)
		switch m := r.get(name).(type) {
		case *Counter:
			if !typed[base] {
				if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", base); err != nil {
					return err
				}
				typed[base] = true
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", base, joinLabels(labels), m.Value()); err != nil {
				return err
			}
		case *Gauge:
			if !typed[base] {
				if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", base); err != nil {
					return err
				}
				typed[base] = true
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", base, joinLabels(labels), formatFloat(m.Value())); err != nil {
				return err
			}
		case *Histogram:
			if !typed[base] {
				if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", base); err != nil {
					return err
				}
				typed[base] = true
			}
			bounds := m.Bounds()
			cum := m.Cumulative()
			for i, c := range cum {
				le := "+Inf"
				if i < len(bounds) {
					le = formatFloat(bounds[i])
				}
				lb := joinLabels(labels, `le="`+le+`"`)
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, lb, c); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, joinLabels(labels), formatFloat(m.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, joinLabels(labels), m.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

// HistogramDump is a histogram's JSON form.
type HistogramDump struct {
	Count   uint64       `json:"count"`
	Sum     float64      `json:"sum"`
	Buckets []BucketDump `json:"buckets"`
}

// BucketDump is one cumulative bucket; LE is math.Inf(1) for the last
// bucket and marshals as the string "+Inf".
type BucketDump struct {
	LE    jsonFloat `json:"le"`
	Count uint64    `json:"count"`
}

// jsonFloat marshals like a float64 but renders ±Inf as strings, which
// encoding/json otherwise rejects.
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return json.Marshal(formatFloat(v))
	}
	return json.Marshal(v)
}

// Dump is the machine-readable snapshot WriteJSON emits — the source
// format for BENCH_*.json trajectories.
type Dump struct {
	Counters     map[string]uint64        `json:"counters,omitempty"`
	Gauges       map[string]float64       `json:"gauges,omitempty"`
	Histograms   map[string]HistogramDump `json:"histograms,omitempty"`
	Spans        map[string]SpanStat      `json:"spans,omitempty"`
	DroppedSpans uint64                   `json:"dropped_spans,omitempty"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Dump {
	d := Dump{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramDump{},
	}
	for _, name := range r.names() {
		switch m := r.get(name).(type) {
		case *Counter:
			d.Counters[name] = m.Value()
		case *Gauge:
			d.Gauges[name] = m.Value()
		case *Histogram:
			hd := HistogramDump{Count: m.Count(), Sum: m.Sum()}
			bounds := m.Bounds()
			for i, c := range m.Cumulative() {
				le := math.Inf(1)
				if i < len(bounds) {
					le = bounds[i]
				}
				hd.Buckets = append(hd.Buckets, BucketDump{LE: jsonFloat(le), Count: c})
			}
			d.Histograms[name] = hd
		}
	}
	return d
}

// WriteJSON dumps the default registry plus span statistics as indented
// JSON.
func WriteJSON(w io.Writer) error {
	d := Default.Snapshot()
	d.Spans = SpanStats()
	_, d.DroppedSpans = TraceRecords()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteText renders a human-readable summary of the default registry
// and span statistics.
func WriteText(w io.Writer) error {
	d := Default.Snapshot()
	stats := SpanStats()
	if len(d.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, name := range sortedKeys(d.Counters) {
			fmt.Fprintf(w, "  %-56s %d\n", name, d.Counters[name])
		}
	}
	if len(d.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, name := range sortedKeys(d.Gauges) {
			fmt.Fprintf(w, "  %-56s %s\n", name, formatFloat(d.Gauges[name]))
		}
	}
	if len(d.Histograms) > 0 {
		fmt.Fprintln(w, "histograms:                                                 count      mean")
		for _, name := range sortedKeys(d.Histograms) {
			h := d.Histograms[name]
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Fprintf(w, "  %-56s %6d  %8.4gs\n", name, h.Count, mean)
		}
	}
	if len(stats) > 0 {
		fmt.Fprintln(w, "spans:                                                      count     total       min       max")
		for _, name := range sortedKeys(stats) {
			s := stats[name]
			fmt.Fprintf(w, "  %-56s %6d  %8.4gs %8.4gs %8.4gs\n",
				name, s.Count, s.TotalSeconds, s.MinSeconds, s.MaxSeconds)
		}
	}
	if _, dropped := TraceRecords(); dropped > 0 {
		fmt.Fprintf(w, "dropped spans: %d (trace buffer full)\n", dropped)
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// chromeEvent is one trace_event in the Chrome/Perfetto JSON format:
// complete events (ph "X") with microsecond timestamps, plus flow
// events (ph "s"/"f") rendering cross-trace span links as arrows.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	ID   string         `json:"id,omitempty"` // flow binding id
	BP   string         `json:"bp,omitempty"` // flow binding point
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// writeChromeTrace renders records in the trace_event JSON object
// format ({"traceEvents": [...]}), loadable in chrome://tracing and
// Perfetto. TIDs are goroutine ids, so concurrent work renders on its
// own track; span links (batch → request fan-in) become flow arrows
// when the linked span is present in the buffer.
func writeChromeTrace(w io.Writer, recs []SpanRecord) error {
	// Where each span lives in the viewer, for flow-arrow endpoints.
	type spanPos struct {
		ts  float64
		tid int64
	}
	index := make(map[SpanID]spanPos)
	for _, r := range recs {
		if !r.ID.IsZero() {
			index[r.ID] = spanPos{ts: float64(r.Start.Nanoseconds()) / 1e3, tid: r.TID}
		}
	}
	events := make([]chromeEvent, 0, len(recs))
	flowID := 0
	for _, r := range recs {
		ev := chromeEvent{
			Name: r.Name,
			Ph:   "X",
			PID:  1,
			TID:  r.TID,
			Ts:   float64(r.Start.Nanoseconds()) / 1e3,
			Dur:  float64(r.Dur.Nanoseconds()) / 1e3,
		}
		if len(r.Attrs) > 0 || !r.Trace.IsZero() {
			ev.Args = make(map[string]any, len(r.Attrs)+2)
			for _, a := range r.Attrs {
				ev.Args[a.Key] = a.Value
			}
			if !r.Trace.IsZero() {
				ev.Args["trace_id"] = r.Trace.String()
				ev.Args["span_id"] = r.ID.String()
			}
		}
		events = append(events, ev)
		for _, link := range r.Links {
			src, ok := index[link.Span]
			if !ok {
				continue // linked span not in the buffer; nothing to draw
			}
			flowID++
			id := strconv.Itoa(flowID)
			events = append(events,
				chromeEvent{Name: "link", Cat: "link", Ph: "s", ID: id, PID: 1, TID: src.tid, Ts: src.ts},
				chromeEvent{Name: "link", Cat: "link", Ph: "f", ID: id, BP: "e", PID: 1, TID: r.TID, Ts: ev.Ts})
		}
	}
	// Stable viewer-friendly order: by start time, then track.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Ts != events[j].Ts {
			return events[i].Ts < events[j].Ts
		}
		return events[i].TID < events[j].TID
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}

// WriteChromeTrace writes every collected span as a Chrome trace_event
// JSON file.
func WriteChromeTrace(w io.Writer) error {
	recs, _ := TraceRecords()
	return writeChromeTrace(w, recs)
}
