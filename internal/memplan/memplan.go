// Package memplan provides size-bucketed, pooled tensor memory for the
// inference hot path. The paper's speedups come from making DDnet's
// conv/deconv kernels do nothing but arithmetic (§4.2); on the serving
// side the same discipline means the GC must not compete with the GEMM
// rung for cores, so activation buffers are planned and reused across
// requests instead of reallocated per layer.
//
// An Arena hands out float32 storage in power-of-two buckets (64 floats
// to 64 Mi floats). Freed buffers go to a small per-arena free list
// first — deterministic reuse, so a warm pipeline's steady state is
// measurable with testing.AllocsPerRun — and overflow into a global
// sync.Pool shared by all arenas, which the GC may trim under pressure.
// Scopes group allocations by lifetime: everything a Scope hands out is
// released when it closes, with Free for tighter per-layer lifetimes.
//
// With CC_MEMDEBUG=1 (tensor.SetMemDebug) released buffers are filled
// with NaN poison; double releases and use-after-release writes panic.
package memplan

import (
	"fmt"
	"math/bits"
	"sync"

	"computecovid19/internal/obs"
	"computecovid19/internal/tensor"
)

const (
	// Bucket b holds slices of capacity 1<<(b+minBits) floats: 64
	// floats (256 B) up to 64 Mi floats (256 MB).
	minBits = 6
	maxBits = 26

	// NumBuckets is the number of size classes an Arena manages.
	NumBuckets = maxBits - minBits + 1

	// bucketKeep caps each arena-local free list; beyond it, freed
	// buffers overflow into the shared sync.Pool.
	bucketKeep = 64
)

// BucketSize returns the capacity in float32s of size class b.
func BucketSize(b int) int { return 1 << (b + minBits) }

// bucketFor returns the smallest size class whose capacity is >= n
// elements, or -1 when n exceeds the largest bucket (callers fall back
// to plain heap allocation).
func bucketFor(n int) int {
	if n <= 1 {
		return 0
	}
	b := bits.Len(uint(n - 1))
	if b < minBits {
		b = minBits
	}
	if b > maxBits {
		return -1
	}
	return b - minBits
}

// bucketForCap returns the largest size class whose capacity is <= c —
// the class a slice of capacity c can safely serve — or -1 when c is
// below the smallest bucket (the slice is dropped to the GC). Foreign
// slices (plain make, non-power-of-two caps) pool safely this way.
func bucketForCap(c int) int {
	b := bits.Len(uint(c)) - 1
	if b < minBits {
		return -1
	}
	if b > maxBits {
		b = maxBits
	}
	return b - minBits
}

// sharedPool is the overflow tier behind every arena's local free
// lists: per-bucket sync.Pools of *tensor.Tensor whose Data holds a
// full-capacity bucket slice. The GC may clear it between cycles, which
// is why it is the second tier — steady-state reuse comes from the
// deterministic per-arena lists.
var sharedPool [NumBuckets]sync.Pool

// Per-bucket pool traffic counters, exported as mem_pool_hits_total /
// mem_pool_misses_total with a bucket="<floats>" label.
var (
	hitCounters  [NumBuckets]*obs.Counter
	missCounters [NumBuckets]*obs.Counter
)

func init() {
	for b := 0; b < NumBuckets; b++ {
		hitCounters[b] = obs.GetCounter(fmt.Sprintf(`mem_pool_hits_total{bucket="%d"}`, BucketSize(b)))
		missCounters[b] = obs.GetCounter(fmt.Sprintf(`mem_pool_misses_total{bucket="%d"}`, BucketSize(b)))
	}
}

// Arena is a size-bucketed allocator for tensor storage. Get/Release
// and the raw GetFloats/PutFloats are safe for concurrent use; each
// serve worker typically owns one arena so scans recycle buffers across
// requests without cross-worker contention.
//
// An Arena implements tensor.Allocator.
type Arena struct {
	mu      sync.Mutex
	floats  [NumBuckets][]*tensor.Tensor // local free lists (header + full-cap storage)
	bools   [NumBuckets][][]bool
	headers []*tensor.Tensor // spare headers (Data == nil) for GetFloats/View
	scopes  []*Scope
	live    [NumBuckets]int
	peak    [NumBuckets]int
	hits    uint64
	misses  uint64
}

// New returns an empty arena.
func New() *Arena { return &Arena{} }

// global serves code that has no arena handle — notably the kernels
// package's GEMM tile staging, whose Impl signature predates pooling.
var global = New()

// Global returns the process-wide fallback arena.
func Global() *Arena { return global }

// GetFloats hands out an n-float scratch slice from the global arena.
func GetFloats(n int) []float32 { return global.GetFloats(n) }

// PutFloats returns a scratch slice to the global arena.
func PutFloats(s []float32) { global.PutFloats(s) }

// take pops a pooled tensor (full-capacity Data) for bucket b, trying
// the local list then the shared pool. Caller holds a.mu.
func (a *Arena) take(b int) *tensor.Tensor {
	if l := a.floats[b]; len(l) > 0 {
		t := l[len(l)-1]
		l[len(l)-1] = nil
		a.floats[b] = l[:len(l)-1]
		return t
	}
	if v := sharedPool[b].Get(); v != nil {
		return v.(*tensor.Tensor)
	}
	return nil
}

// keep stores a pooled tensor (full-capacity Data) under bucket b.
// Caller holds a.mu.
func (a *Arena) keep(b int, t *tensor.Tensor) {
	if len(a.floats[b]) < bucketKeep {
		a.floats[b] = append(a.floats[b], t)
		return
	}
	sharedPool[b].Put(t)
}

func (a *Arena) bumpLive(b int) {
	a.live[b]++
	if a.live[b] > a.peak[b] {
		a.peak[b] = a.live[b]
	}
}

func setShape(t *tensor.Tensor, shape []int) {
	if cap(t.Shape) >= len(shape) {
		t.Shape = t.Shape[:len(shape)]
	} else {
		c := len(shape)
		if c < 8 {
			c = 8 // rank headroom so one header serves any shape
		}
		t.Shape = make([]int, len(shape), c)
	}
	copy(t.Shape, shape)
}

// Get returns a zeroed tensor of the given shape, reusing pooled
// storage when a large-enough bucket is free. Oversize requests fall
// back to tensor.New. The returned tensor must go back via Release
// (directly or through a Scope); its Data must not be retained after.
func (a *Arena) Get(shape ...int) *tensor.Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("memplan: negative dimension")
		}
		n *= d
	}
	b := bucketFor(n)
	if b < 0 {
		// Oversize: plain heap allocation (built inline — handing shape
		// to tensor.New would make the variadic escape on every call).
		t := &tensor.Tensor{Data: make([]float32, n)}
		setShape(t, shape)
		return t
	}
	a.mu.Lock()
	t := a.take(b)
	if t != nil {
		a.hits++
	} else {
		a.misses++
	}
	a.bumpLive(b)
	a.mu.Unlock()
	if t == nil {
		missCounters[b].Inc()
		t = &tensor.Tensor{Data: make([]float32, BucketSize(b))}
	} else {
		hitCounters[b].Inc()
		debugTake(t.Data)
	}
	t.Data = t.Data[:n]
	clear(t.Data)
	setShape(t, shape)
	return t
}

// Release returns a tensor's storage to the arena. The tensor header
// itself is recycled as the pooled wrapper, so neither it nor its Data
// may be used afterwards (CC_MEMDEBUG catches violations). Foreign
// tensors (plain tensor.New) are adopted at the largest bucket their
// capacity serves; undersized ones are dropped to the GC. nil is a
// no-op.
func (a *Arena) Release(t *tensor.Tensor) {
	if t == nil {
		return
	}
	data := t.Data
	t.Data = nil
	t.Shape = t.Shape[:0]
	b := bucketForCap(cap(data))
	if b < 0 {
		a.putHeader(t)
		return
	}
	data = data[:BucketSize(b)]
	debugPut(data)
	t.Data = data
	a.mu.Lock()
	if a.live[b] > 0 {
		a.live[b]--
	}
	a.keep(b, t)
	a.mu.Unlock()
}

// GetFloats returns an n-float scratch slice with bucket-sized
// capacity. Unlike Get the contents are NOT zeroed — callers must fully
// write the region they read (under CC_MEMDEBUG a reused slice arrives
// NaN-poisoned, so a read-before-write surfaces as NaN propagation).
func (a *Arena) GetFloats(n int) []float32 {
	b := bucketFor(n)
	if b < 0 {
		return make([]float32, n)
	}
	a.mu.Lock()
	t := a.take(b)
	if t != nil {
		a.hits++
	} else {
		a.misses++
	}
	a.bumpLive(b)
	var data []float32
	if t != nil {
		data = t.Data
		t.Data = nil
		if len(a.headers) < bucketKeep {
			a.headers = append(a.headers, t)
		}
	}
	a.mu.Unlock()
	if data == nil {
		missCounters[b].Inc()
		return make([]float32, n, BucketSize(b))
	}
	hitCounters[b].Inc()
	debugTake(data)
	return data[:n]
}

// PutFloats returns a scratch slice to the arena. Slices below the
// smallest bucket are dropped.
func (a *Arena) PutFloats(data []float32) {
	b := bucketForCap(cap(data))
	if b < 0 {
		return
	}
	data = data[:BucketSize(b)]
	debugPut(data)
	a.mu.Lock()
	if a.live[b] > 0 {
		a.live[b]--
	}
	t := a.takeHeaderLocked()
	if t == nil {
		t = new(tensor.Tensor)
	}
	t.Data = data
	a.keep(b, t)
	a.mu.Unlock()
}

// GetBools returns a zeroed n-bool scratch slice (segmentation masks).
func (a *Arena) GetBools(n int) []bool {
	b := bucketFor(n)
	if b < 0 {
		return make([]bool, n)
	}
	a.mu.Lock()
	var data []bool
	if l := a.bools[b]; len(l) > 0 {
		data = l[len(l)-1]
		l[len(l)-1] = nil
		a.bools[b] = l[:len(l)-1]
		a.hits++
	} else {
		a.misses++
	}
	a.mu.Unlock()
	if data == nil {
		missCounters[b].Inc()
		return make([]bool, n, BucketSize(b))
	}
	hitCounters[b].Inc()
	debugTakeBools(data)
	data = data[:n]
	clear(data)
	return data
}

// PutBools returns a bool scratch slice to the arena.
func (a *Arena) PutBools(data []bool) {
	b := bucketForCap(cap(data))
	if b < 0 {
		return
	}
	data = data[:BucketSize(b)]
	debugPutBools(data)
	a.mu.Lock()
	if len(a.bools[b]) < bucketKeep {
		a.bools[b] = append(a.bools[b], data)
	}
	a.mu.Unlock()
}

func (a *Arena) takeHeaderLocked() *tensor.Tensor {
	if n := len(a.headers); n > 0 {
		t := a.headers[n-1]
		a.headers[n-1] = nil
		a.headers = a.headers[:n-1]
		return t
	}
	return nil
}

func (a *Arena) header() *tensor.Tensor {
	a.mu.Lock()
	t := a.takeHeaderLocked()
	a.mu.Unlock()
	if t == nil {
		t = new(tensor.Tensor)
	}
	return t
}

func (a *Arena) putHeader(t *tensor.Tensor) {
	t.Data = nil
	a.mu.Lock()
	if len(a.headers) < bucketKeep {
		a.headers = append(a.headers, t)
	}
	a.mu.Unlock()
}

// Stats is a point-in-time pool traffic summary.
type Stats struct {
	Hits   uint64 // pooled reuses
	Misses uint64 // heap allocations
}

// Stats returns the arena's cumulative hit/miss counts.
func (a *Arena) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Stats{Hits: a.hits, Misses: a.misses}
}

// HitRate returns hits/(hits+misses), or 0 before any traffic.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Plan records the peak number of simultaneously-live buffers per size
// class over a captured run — the activation footprint of one pipeline
// pass, used to prewarm fresh arenas so even the first scan after
// startup runs pool-hot.
type Plan struct {
	Count [NumBuckets]int
}

// Capture resets the arena's peak-live tracking, runs fn, and returns
// the per-bucket peak as a Plan.
func (a *Arena) Capture(fn func()) Plan {
	a.mu.Lock()
	a.peak = a.live
	a.mu.Unlock()
	fn()
	var p Plan
	a.mu.Lock()
	p.Count = a.peak
	a.mu.Unlock()
	return p
}

// Prewarm fills the arena's local free lists up to the plan's
// per-bucket counts (clamped to the local-list cap), allocating eagerly
// so the planned working set never misses.
func (a *Arena) Prewarm(p Plan) {
	for b := range p.Count {
		want := p.Count[b]
		if want > bucketKeep {
			want = bucketKeep
		}
		for {
			a.mu.Lock()
			have := len(a.floats[b])
			a.mu.Unlock()
			if have >= want {
				break
			}
			t := &tensor.Tensor{Data: make([]float32, BucketSize(b))}
			debugPut(t.Data)
			a.mu.Lock()
			a.floats[b] = append(a.floats[b], t)
			a.mu.Unlock()
		}
	}
}

// Scope groups arena allocations by lifetime: Get appends to the
// scope's owned set, Free releases one early (inner layer temporaries),
// Close releases everything left. View wraps caller-owned storage in a
// pooled header that Close reclaims without touching the storage.
// A Scope is single-goroutine; the arena behind it is not.
type Scope struct {
	a     *Arena
	owned []*tensor.Tensor
	views []*tensor.Tensor
}

// NewScope returns a (recycled) empty scope backed by the arena.
func (a *Arena) NewScope() *Scope {
	a.mu.Lock()
	var sc *Scope
	if n := len(a.scopes); n > 0 {
		sc = a.scopes[n-1]
		a.scopes[n-1] = nil
		a.scopes = a.scopes[:n-1]
	}
	a.mu.Unlock()
	if sc == nil {
		sc = &Scope{
			owned: make([]*tensor.Tensor, 0, 32),
			views: make([]*tensor.Tensor, 0, 8),
		}
	}
	sc.a = a
	return sc
}

// Arena returns the arena backing the scope.
func (sc *Scope) Arena() *Arena { return sc.a }

// Get allocates a zeroed tensor owned by the scope.
func (sc *Scope) Get(shape ...int) *tensor.Tensor {
	t := sc.a.Get(shape...)
	sc.owned = append(sc.owned, t)
	return t
}

// Free releases one scope-owned tensor early. Panics if the tensor is
// not (or no longer) owned by the scope — freeing through the wrong
// scope is a lifetime bug, not a recoverable condition.
func (sc *Scope) Free(t *tensor.Tensor) {
	for i := len(sc.owned) - 1; i >= 0; i-- {
		if sc.owned[i] == t {
			last := len(sc.owned) - 1
			sc.owned[i] = sc.owned[last]
			sc.owned[last] = nil
			sc.owned = sc.owned[:last]
			sc.a.Release(t)
			return
		}
	}
	panic("memplan: Scope.Free of tensor not owned by this scope")
}

// View wraps caller-owned storage as a tensor without copying. The
// header is pooled and reclaimed on Close; the storage is untouched.
func (sc *Scope) View(data []float32, shape ...int) *tensor.Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic("memplan: Scope.View data/shape size mismatch")
	}
	t := sc.a.header()
	t.Data = data
	setShape(t, shape)
	sc.views = append(sc.views, t)
	return t
}

// Close releases all remaining owned tensors, reclaims view headers,
// and recycles the scope itself.
func (sc *Scope) Close() {
	a := sc.a
	for i, t := range sc.owned {
		a.Release(t)
		sc.owned[i] = nil
	}
	sc.owned = sc.owned[:0]
	for i, t := range sc.views {
		a.putHeader(t)
		sc.views[i] = nil
	}
	sc.views = sc.views[:0]
	sc.a = nil
	a.mu.Lock()
	if len(a.scopes) < bucketKeep {
		a.scopes = append(a.scopes, sc)
	}
	a.mu.Unlock()
}
