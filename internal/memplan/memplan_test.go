package memplan

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"computecovid19/internal/tensor"
)

func TestBucketFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 0}, {63, 0}, {64, 0},
		{65, 1}, {128, 1}, {129, 2},
		{4096, 6}, {4097, 7},
		{1 << 26, NumBuckets - 1},
		{1<<26 + 1, -1},
	}
	for _, c := range cases {
		if got := bucketFor(c.n); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	for _, c := range []struct{ cap, want int }{
		{63, -1}, {64, 0}, {100, 0}, {127, 0}, {128, 1},
		{4096, 6}, {1 << 26, NumBuckets - 1}, {1<<27 + 3, NumBuckets - 1},
	} {
		if got := bucketForCap(c.cap); got != c.want {
			t.Errorf("bucketForCap(%d) = %d, want %d", c.cap, got, c.want)
		}
	}
	for b := 0; b < NumBuckets; b++ {
		n := BucketSize(b)
		if bucketFor(n) != b {
			t.Errorf("bucketFor(BucketSize(%d)) = %d", b, bucketFor(n))
		}
		if bucketForCap(n) != b {
			t.Errorf("bucketForCap(BucketSize(%d)) = %d", b, bucketForCap(n))
		}
	}
}

func TestGetReleaseReuses(t *testing.T) {
	a := New()
	x := a.Get(16, 16)
	if len(x.Data) != 256 || x.Shape[0] != 16 || x.Shape[1] != 16 {
		t.Fatalf("bad tensor: len=%d shape=%v", len(x.Data), x.Shape)
	}
	x.Data[0] = 42
	p := &x.Data[0]
	a.Release(x)
	y := a.Get(200) // same bucket (256)
	if &y.Data[0] != p {
		t.Fatalf("expected pooled storage to be reused")
	}
	if y.Data[0] != 0 {
		t.Fatalf("reused tensor not zeroed: %v", y.Data[0])
	}
	if len(y.Data) != 200 || len(y.Shape) != 1 || y.Shape[0] != 200 {
		t.Fatalf("bad reused tensor: len=%d shape=%v", len(y.Data), y.Shape)
	}
	s := a.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", s)
	}
}

func TestForeignTensorAdopted(t *testing.T) {
	a := New()
	x := tensor.New(100) // cap 100 -> floor bucket 64
	p := &x.Data[0]
	a.Release(x)
	s := a.GetFloats(64)
	if &s[0] != p {
		t.Fatalf("foreign storage not adopted at floor bucket")
	}
	a.PutFloats(s)
}

func TestGetFloatsPutFloatsRoundTrip(t *testing.T) {
	a := New()
	s := a.GetFloats(1000)
	if len(s) != 1000 || cap(s) != 1024 {
		t.Fatalf("len=%d cap=%d", len(s), cap(s))
	}
	p := &s[0]
	a.PutFloats(s)
	s2 := a.GetFloats(600) // same bucket (1024)
	if &s2[0] != p {
		t.Fatalf("expected float scratch reuse")
	}
}

func TestBoolsRoundTrip(t *testing.T) {
	a := New()
	m := a.GetBools(300)
	if len(m) != 300 {
		t.Fatalf("len=%d", len(m))
	}
	m[7] = true
	p := &m[0]
	a.PutBools(m)
	m2 := a.GetBools(400) // same bucket (512)
	if &m2[0] != p {
		t.Fatalf("expected bool scratch reuse")
	}
	if m2[7] {
		t.Fatalf("reused bool scratch not cleared")
	}
}

func TestScopeLifetimes(t *testing.T) {
	a := New()
	sc := a.NewScope()
	x := sc.Get(64)
	y := sc.Get(64)
	sc.Free(x)
	ext := make([]float32, 6)
	v := sc.View(ext, 2, 3)
	if &v.Data[0] != &ext[0] || v.Shape[0] != 2 || v.Shape[1] != 3 {
		t.Fatalf("view does not alias caller storage")
	}
	sc.Close()
	_ = y
	// Both owned tensors are back: two consecutive gets reuse both.
	g1, g2 := a.Get(64), a.Get(64)
	s := a.Stats()
	if s.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (everything after the first two gets pooled)", s.Misses)
	}
	a.Release(g1)
	a.Release(g2)
	// ext untouched by Close.
	for i := range ext {
		if ext[i] != 0 {
			t.Fatalf("view Close touched caller storage")
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatalf("Free of unowned tensor did not panic")
		}
	}()
	sc2 := a.NewScope()
	defer sc2.Close()
	sc2.Free(tensor.New(4))
}

func TestCapturePrewarm(t *testing.T) {
	a := New()
	plan := a.Capture(func() {
		x := a.Get(256)
		y := a.Get(256)
		z := a.Get(1024)
		a.Release(x)
		a.Release(y)
		a.Release(z)
	})
	if plan.Count[bucketFor(256)] != 2 || plan.Count[bucketFor(1024)] != 1 {
		t.Fatalf("plan = %v", plan.Count)
	}
	fresh := New()
	fresh.Prewarm(plan)
	x := fresh.Get(256)
	y := fresh.Get(256)
	z := fresh.Get(1024)
	s := fresh.Stats()
	if s.Misses != 0 || s.Hits != 3 {
		t.Fatalf("prewarmed arena stats = %+v", s)
	}
	fresh.Release(x)
	fresh.Release(y)
	fresh.Release(z)
}

func withMemDebug(t *testing.T, on bool) {
	t.Helper()
	prev := tensor.SetMemDebug(on)
	t.Cleanup(func() { tensor.SetMemDebug(prev) })
}

func TestDebugPoisonFill(t *testing.T) {
	withMemDebug(t, true)
	a := New()
	x := a.Get(64)
	data := x.Data
	a.Release(x)
	for i := range data {
		if math.Float32bits(data[i]) != tensor.PoisonBits {
			t.Fatalf("word %d not poisoned: %x", i, math.Float32bits(data[i]))
		}
	}
	y := a.Get(64) // verifies + unpoisons
	if y.Data[0] != 0 {
		t.Fatalf("reused tensor not zeroed")
	}
	a.Release(y)
}

func TestDebugDoubleReleasePanics(t *testing.T) {
	withMemDebug(t, true)
	a := New()
	x := a.Get(64)
	save := *x // Release nils the header; keep a copy to re-release
	a.Release(x)
	defer func() {
		if recover() == nil {
			t.Fatalf("double release did not panic")
		}
		// drain the poisoned buffer so other tests see clean state
		z := a.Get(64)
		a.Release(z)
	}()
	resurrect := save
	a.Release(&resurrect)
}

func TestDebugUseAfterReleasePanics(t *testing.T) {
	withMemDebug(t, true)
	a := New()
	x := a.Get(64)
	data := x.Data
	a.Release(x)
	data[3] = 1 // stale write through a retained reference
	defer func() {
		if recover() == nil {
			t.Fatalf("use-after-release write did not panic on reuse")
		}
	}()
	a.Get(64)
}

func TestDebugBoolDoubleReleasePanics(t *testing.T) {
	withMemDebug(t, true)
	a := New()
	m := a.GetBools(64)
	a.PutBools(m)
	defer func() {
		if recover() == nil {
			t.Fatalf("bool double release did not panic")
		}
		m2 := a.GetBools(64)
		a.PutBools(m2)
	}()
	a.PutBools(m[:cap(m)])
}

// TestConcurrentGetRelease stresses one arena from many goroutines —
// the serve worker-pool shape — and runs under -race in make race.
func TestConcurrentGetRelease(t *testing.T) {
	a := New()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				switch rng.Intn(3) {
				case 0:
					x := a.Get(1 + rng.Intn(5000))
					for j := range x.Data {
						x.Data[j] = float32(j)
					}
					a.Release(x)
				case 1:
					s := a.GetFloats(1 + rng.Intn(5000))
					for j := range s {
						s[j] = 1
					}
					a.PutFloats(s)
				default:
					sc := a.NewScope()
					u := sc.Get(128)
					v := sc.Get(1 + rng.Intn(100))
					u.Data[0] = v.Data[0]
					sc.Close()
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

// TestAllocsWarmGetRelease pins the tentpole property at the arena
// level: a warm Get/Release cycle performs zero heap allocations.
func TestAllocsWarmGetRelease(t *testing.T) {
	a := New()
	warm := func() {
		x := a.Get(64, 64)
		s := a.GetFloats(1 << 12)
		a.PutFloats(s)
		a.Release(x)
	}
	warm()
	if n := testing.AllocsPerRun(100, warm); n != 0 {
		t.Fatalf("warm Get/Release allocates %v allocs/op, want 0", n)
	}
	scoped := func() {
		sc := a.NewScope()
		x := sc.Get(256)
		y := sc.Get(256)
		x.Data[0] = y.Data[0]
		sc.Close()
	}
	scoped()
	if n := testing.AllocsPerRun(100, scoped); n != 0 {
		t.Fatalf("warm scoped Get allocates %v allocs/op, want 0", n)
	}
}

func TestUndersizedReleaseDropsStorage(t *testing.T) {
	a := New()
	x := tensor.New(10) // cap below the smallest bucket
	a.Release(x)
	y := a.Get(10) // still bucket 0 (64 floats): must be a miss
	s := a.Stats()
	if s.Hits != 0 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want the dropped storage not to be pooled", s)
	}
	a.Release(y)
}
