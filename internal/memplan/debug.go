package memplan

import (
	"math"
	"sync"
	"sync/atomic"

	"computecovid19/internal/tensor"
)

// Debug mode (tensor.SetMemDebug / CC_MEMDEBUG=1): every buffer
// entering a free list is NaN-poisoned and tracked in a free-set keyed
// by its backing array; a second release of the same storage panics
// immediately, and the next reuse verifies the poison is intact so a
// use-after-release *write* panics at the point of reuse. Reads of
// released memory surface as NaN propagation in results.
//
// Tracking is keyed on the full-capacity slice's first element, which
// is stable across the reslicing Get/Release performs. Buffers released
// while debug was off are simply not tracked — toggling mid-run never
// false-positives.

var (
	poison = math.Float32frombits(tensor.PoisonBits)

	debugMu      sync.Mutex
	debugFloats  = map[*float32]int{} // free-set: poisoned length
	debugBools   = map[*bool]struct{}{}
	debugTracked atomic.Int64 // len(debugFloats), checked lock-free on take
	trackedBools atomic.Int64
)

// debugPut marks a full-capacity slice as released: panics on double
// release, then poison-fills it. No-op unless debug mode is on.
func debugPut(data []float32) {
	if !tensor.MemDebug() || len(data) == 0 {
		return
	}
	key := &data[0]
	debugMu.Lock()
	if _, dup := debugFloats[key]; dup {
		debugMu.Unlock()
		panic("memplan: double release of pooled buffer (CC_MEMDEBUG)")
	}
	debugFloats[key] = len(data)
	debugMu.Unlock()
	debugTracked.Add(1)
	for i := range data {
		data[i] = poison
	}
}

// debugTake verifies and untracks a slice leaving the free lists. A
// buffer that was poisoned on release must still be all-poison now;
// anything else means someone wrote through a stale reference.
func debugTake(data []float32) {
	if debugTracked.Load() == 0 || len(data) == 0 {
		return
	}
	key := &data[0]
	debugMu.Lock()
	n, ok := debugFloats[key]
	if ok {
		delete(debugFloats, key)
	}
	debugMu.Unlock()
	if !ok {
		return
	}
	debugTracked.Add(-1)
	if n > len(data) {
		n = len(data)
	}
	for _, v := range data[:n] {
		if math.Float32bits(v) != tensor.PoisonBits {
			panic("memplan: use-after-release write detected on pooled buffer (CC_MEMDEBUG)")
		}
	}
}

func debugPutBools(data []bool) {
	if !tensor.MemDebug() || len(data) == 0 {
		return
	}
	key := &data[0]
	debugMu.Lock()
	if _, dup := debugBools[key]; dup {
		debugMu.Unlock()
		panic("memplan: double release of pooled bool buffer (CC_MEMDEBUG)")
	}
	debugBools[key] = struct{}{}
	debugMu.Unlock()
	trackedBools.Add(1)
}

func debugTakeBools(data []bool) {
	if trackedBools.Load() == 0 || len(data) == 0 {
		return
	}
	key := &data[0]
	debugMu.Lock()
	if _, ok := debugBools[key]; ok {
		delete(debugBools, key)
		debugMu.Unlock()
		trackedBools.Add(-1)
		return
	}
	debugMu.Unlock()
}
