package memplan

import (
	"math"
	"runtime"
	"sync"

	"computecovid19/internal/obs"
)

// Runtime memory gauges, refreshed by SampleRuntime — serve's /metrics
// handler calls it per scrape so heap pressure and GC pauses under load
// land next to the serve_* and pool-traffic series.
var (
	heapInuseGauge = obs.GetGauge("mem_heap_inuse_bytes")
	heapAllocGauge = obs.GetGauge("mem_heap_alloc_bytes")
	gcCyclesGauge  = obs.GetGauge("mem_gc_cycles_total")
	// 1 µs .. ~3 s stop-the-world pause buckets.
	gcPauseHist = obs.GetHistogram("mem_gc_pause_seconds", obs.ExpBuckets(1e-6, math.Sqrt(10), 14))

	sampleMu  sync.Mutex
	lastNumGC uint32
)

// SampleRuntime reads runtime.MemStats into the mem_* gauges and feeds
// every GC pause since the previous sample into the pause histogram
// (clamped to the runtime's 256-entry pause ring). Safe for concurrent
// use; successive calls never double-count a pause.
func SampleRuntime() {
	sampleMu.Lock()
	defer sampleMu.Unlock()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heapInuseGauge.Set(float64(ms.HeapInuse))
	heapAllocGauge.Set(float64(ms.HeapAlloc))
	gcCyclesGauge.Set(float64(ms.NumGC))
	if ms.NumGC > lastNumGC {
		from := lastNumGC
		if ms.NumGC-from > 256 {
			from = ms.NumGC - 256
		}
		for k := from + 1; k <= ms.NumGC; k++ {
			// Pause of cycle k lives at PauseNs[(k+255)%256].
			gcPauseHist.Observe(float64(ms.PauseNs[(k+255)%256]) / 1e9)
		}
		lastNumGC = ms.NumGC
	}
}
