package classify

import (
	"math"
	"math/rand"
	"testing"

	"computecovid19/internal/ag"
	"computecovid19/internal/nn"
	"computecovid19/internal/tensor"
	"computecovid19/internal/volume"
)

// gradedVolume builds a toy volume whose blob count/size encodes the
// grade.
func gradedVolume(rng *rand.Rand, g Grade) *tensor.Tensor {
	v := tensor.New(1, 1, 8, 16, 16)
	for i := range v.Data {
		v.Data[i] = 0.15 + 0.04*float32(rng.NormFloat64())
	}
	blobs := 0
	switch g {
	case GradeMild:
		blobs = 1
	case GradeSevere:
		blobs = 4
	}
	for b := 0; b < blobs; b++ {
		cz, cy, cx := 1+rng.Intn(6), 3+rng.Intn(10), 3+rng.Intn(10)
		for z := 0; z < 8; z++ {
			for y := 0; y < 16; y++ {
				for x := 0; x < 16; x++ {
					d := math.Pow(float64(z-cz), 2)/3 + math.Pow(float64(y-cy), 2)/8 +
						math.Pow(float64(x-cx), 2)/8
					if d < 1.5 {
						v.Data[(z*16+y)*16+x] += float32(0.5 * math.Exp(-d))
					}
				}
			}
		}
	}
	return v
}

func TestSeverityGraderShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewSeverityGrader(rng, SmallConfig(), NumGrades)
	if s.NumClasses() != 3 {
		t.Fatalf("NumClasses = %d", s.NumClasses())
	}
	x := ag.Const(tensor.New(2, 1, 8, 16, 16).RandU(rng, 0, 1))
	y := s.Forward(x)
	if y.T.Shape[0] != 2 || y.T.Shape[1] != 3 {
		t.Fatalf("logit shape %v, want (2, 3)", y.T.Shape)
	}
}

func TestSeverityGraderLearnsOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewSeverityGrader(rng, SmallConfig(), NumGrades)
	opt := nn.NewAdam(s.Params(), 5e-3)
	s.SetTraining(true)
	for step := 0; step < 60; step++ {
		grades := []Grade{GradeNone, GradeMild, GradeSevere}
		batch := tensor.New(3, 1, 8, 16, 16)
		for i, g := range grades {
			v := gradedVolume(rng, g)
			copy(batch.Data[i*8*16*16:(i+1)*8*16*16], v.Data)
		}
		opt.ZeroGrad()
		loss := s.Loss(s.Forward(ag.Const(batch)), grades)
		loss.Backward()
		opt.Step()
	}
	s.SetTraining(false)
	correct := 0
	total := 0
	for trial := 0; trial < 10; trial++ {
		for _, g := range []Grade{GradeNone, GradeMild, GradeSevere} {
			vol := gradedVolume(rng, g)
			v := &volume.Volume{D: 8, H: 16, W: 16, Data: vol.Data}
			pred, probs := s.PredictGrade(v)
			if len(probs) != 3 {
				t.Fatalf("probs length %d", len(probs))
			}
			sum := 0.0
			for _, p := range probs {
				sum += p
			}
			if math.Abs(sum-1) > 1e-4 {
				t.Fatalf("probabilities sum to %v", sum)
			}
			if pred == g {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.55 { // chance is 1/3
		t.Fatalf("severity accuracy = %v, want > 0.55", acc)
	}
}

func TestSeverityGradeStrings(t *testing.T) {
	if GradeNone.String() == "" || GradeMild.String() != "mild" || GradeSevere.String() != "severe" {
		t.Fatal("grade names wrong")
	}
	if Grade(9).String() != "unknown" {
		t.Fatal("unknown grade should say so")
	}
}

func TestSeverityGraderRejectsOneClass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for < 2 classes")
		}
	}()
	NewSeverityGrader(rand.New(rand.NewSource(3)), SmallConfig(), 1)
}

func TestSeverityParamsExcludeBinaryHead(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := NewSeverityGrader(rng, SmallConfig(), NumGrades)
	for _, p := range s.Params() {
		if p == s.trunk.fc.W || p == s.trunk.fc.B {
			t.Fatal("severity params must not include the unused binary head")
		}
	}
}
