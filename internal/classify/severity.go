package classify

import (
	"math/rand"

	"computecovid19/internal/ag"
	"computecovid19/internal/nn"
	"computecovid19/internal/tensor"
	"computecovid19/internal/volume"
)

// Severity grading extends binary COVID classification toward the
// *monitoring* use case in the paper's title: instead of
// positive/negative, the network grades the scan into disease-extent
// classes. The trunk is the same 3D DenseNet; only the head widens to C
// classes with a softmax cross-entropy objective.

// Grade is a disease-extent class.
type Grade int

// Severity grades.
const (
	GradeNone Grade = iota
	GradeMild
	GradeSevere
	// NumGrades is the class count of the default grading scheme.
	NumGrades = 3
)

// String names the grade.
func (g Grade) String() string {
	switch g {
	case GradeNone:
		return "no findings"
	case GradeMild:
		return "mild"
	case GradeSevere:
		return "severe"
	default:
		return "unknown"
	}
}

// SeverityGrader is a 3D DenseNet with a multi-class head.
type SeverityGrader struct {
	trunk *Classifier // reuses the binary classifier's feature trunk
	fc    *nn.Linear  // replaces the binary head
	num   int
}

// NewSeverityGrader builds a grader over the given trunk configuration
// and class count.
func NewSeverityGrader(rng *rand.Rand, cfg Config, numClasses int) *SeverityGrader {
	if numClasses < 2 {
		panic("classify: severity grading needs at least two classes")
	}
	t := New(rng, cfg)
	// The trunk's fc maps features → 1; mirror its input width for the
	// multi-class head.
	width := t.fc.W.T.Shape[1]
	return &SeverityGrader{
		trunk: t,
		fc:    nn.NewLinear(rng, width, numClasses, cfg.InitStd),
		num:   numClasses,
	}
}

// NumClasses reports the head width.
func (s *SeverityGrader) NumClasses() int { return s.num }

// Forward maps (N, 1, D, H, W) volumes to (N, C) class logits.
func (s *SeverityGrader) Forward(x *ag.Value) *ag.Value {
	feats := s.trunk.features(x)
	return s.fc.Forward(feats)
}

// Params returns the trainable parameters (trunk minus the unused
// binary head, plus the multi-class head).
func (s *SeverityGrader) Params() []*ag.Value {
	ps := s.trunk.trunkParams()
	return append(ps, s.fc.Params()...)
}

// SetTraining toggles batch-norm behaviour.
func (s *SeverityGrader) SetTraining(train bool) { s.trunk.SetTraining(train) }

// StateTensors exposes batch-norm statistics for serialization.
func (s *SeverityGrader) StateTensors() []*tensor.Tensor { return s.trunk.StateTensors() }

// Loss is softmax cross-entropy over integer grades.
func (s *SeverityGrader) Loss(logits *ag.Value, grades []Grade) *ag.Value {
	labels := make([]int, len(grades))
	for i, g := range grades {
		labels[i] = int(g)
	}
	return ag.CrossEntropyLoss(logits, labels)
}

// PredictGrade grades one volume (values in the training convention)
// and returns the argmax grade with the class probabilities.
func (s *SeverityGrader) PredictGrade(v *volume.Volume) (Grade, []float64) {
	s.SetTraining(false)
	x := ag.Const(tensor.FromSlice(v.Data, 1, 1, v.D, v.H, v.W))
	probsV := ag.Softmax(s.Forward(x))
	probs := make([]float64, s.num)
	best, bi := -1.0, 0
	for i := range probs {
		probs[i] = float64(probsV.T.Data[i])
		if probs[i] > best {
			best, bi = probs[i], i
		}
	}
	return Grade(bi), probs
}

// features runs the classifier trunk up to (but not including) the
// binary head, returning the pooled (N, C) feature vector.
func (c *Classifier) features(x *ag.Value) *ag.Value {
	h := ag.ReLU(c.stemBN.Forward(c.stem.Forward(x)))
	h = ag.MaxPool3D(h, ag.Pool2DConfig{Kernel: 2, Stride: 2})
	for bi := range c.blocks {
		h = c.blocks[bi].Forward(h)
		if bi < len(c.transC) {
			h = ag.ReLU(c.transB[bi].Forward(c.transC[bi].Forward(h)))
			h = ag.MaxPool3D(h, ag.Pool2DConfig{Kernel: 2, Stride: 2})
		}
	}
	h = ag.ReLU(c.headBN.Forward(h))
	return ag.GlobalAvgPool3D(h)
}

// trunkParams returns the classifier's parameters without the binary fc
// head.
func (c *Classifier) trunkParams() []*ag.Value {
	ps := c.stem.Params()
	ps = append(ps, c.stemBN.Params()...)
	for bi := range c.blocks {
		ps = append(ps, c.blocks[bi].Params()...)
		if bi < len(c.transC) {
			ps = append(ps, c.transC[bi].Params()...)
			ps = append(ps, c.transB[bi].Params()...)
		}
	}
	return append(ps, c.headBN.Params()...)
}
