package classify

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"computecovid19/internal/ag"
	"computecovid19/internal/metrics"
	"computecovid19/internal/nn"
	"computecovid19/internal/tensor"
	"computecovid19/internal/volume"
)

func TestForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := New(rng, SmallConfig())
	x := ag.Const(tensor.New(2, 1, 8, 16, 16).RandU(rng, 0, 1))
	y := c.Forward(x)
	if y.T.Shape[0] != 2 || y.T.Shape[1] != 1 {
		t.Fatalf("logits shape %v, want (2, 1)", y.T.Shape)
	}
}

func TestDenseNet121ConfigShape(t *testing.T) {
	cfg := DenseNet121Config()
	if cfg.InitChannels != 64 || cfg.Growth != 32 {
		t.Fatalf("121 config stem/growth = %d/%d, want 64/32", cfg.InitChannels, cfg.Growth)
	}
	want := []int{6, 12, 24, 16}
	for i, b := range want {
		if cfg.BlockLayers[i] != b {
			t.Fatalf("121 blocks = %v, want %v", cfg.BlockLayers, want)
		}
	}
}

func TestPredictProbabilityRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := New(rng, SmallConfig())
	v := volume.New(8, 16, 16)
	for i := range v.Data {
		v.Data[i] = rng.Float32()
	}
	p := c.Predict(v)
	if p < 0 || p > 1 || math.IsNaN(p) {
		t.Fatalf("Predict = %v, want probability", p)
	}
}

// mkVolume builds a toy volume: positives carry a bright blob, negatives
// are smooth background.
func mkVolume(rng *rand.Rand, positive bool) *tensor.Tensor {
	v := tensor.New(1, 1, 8, 16, 16)
	for i := range v.Data {
		v.Data[i] = 0.2 + 0.05*float32(rng.NormFloat64())
	}
	if positive {
		cz, cy, cx := 2+rng.Intn(4), 4+rng.Intn(8), 4+rng.Intn(8)
		for z := 0; z < 8; z++ {
			for y := 0; y < 16; y++ {
				for x := 0; x < 16; x++ {
					d := math.Pow(float64(z-cz), 2)/4 + math.Pow(float64(y-cy), 2)/9 +
						math.Pow(float64(x-cx), 2)/9
					if d < 1.5 {
						idx := (z*16+y)*16 + x
						v.Data[idx] += float32(0.5 * math.Exp(-d))
					}
				}
			}
		}
	}
	return v
}

func TestTrainingSeparatesClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := New(rng, SmallConfig())
	opt := nn.NewAdam(c.Params(), 5e-3)
	c.SetTraining(true)
	for step := 0; step < 50; step++ {
		// Balanced batch of 4: batch norm needs more than one sample to
		// estimate useful statistics.
		batch := tensor.New(4, 1, 8, 16, 16)
		labels := tensor.New(4, 1)
		for b := 0; b < 4; b++ {
			pos := b%2 == 0
			v := mkVolume(rng, pos)
			copy(batch.Data[b*8*16*16:(b+1)*8*16*16], v.Data)
			if pos {
				labels.Data[b] = 1
			}
		}
		opt.ZeroGrad()
		loss := Loss(c.Forward(ag.Const(batch)), ag.Const(labels))
		loss.Backward()
		opt.Step()
	}
	c.SetTraining(false)
	var probs []float64
	var labels []bool
	for trial := 0; trial < 20; trial++ {
		pos := trial%2 == 0
		x := ag.Const(mkVolume(rng, pos))
		p := float64(ag.Sigmoid(c.Forward(x)).Scalar())
		probs = append(probs, p)
		labels = append(labels, pos)
	}
	if auc := metrics.AUC(probs, labels); auc < 0.8 {
		t.Fatalf("classifier AUC after training = %v, want > 0.8", auc)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := New(rng, SmallConfig())
	src.SetTraining(true)
	x := ag.Const(tensor.New(1, 1, 8, 16, 16).RandU(rng, 0, 1))
	src.Forward(x)

	var buf bytes.Buffer
	if err := nn.SaveModule(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := New(rand.New(rand.NewSource(5)), SmallConfig())
	if err := nn.LoadModule(&buf, dst); err != nil {
		t.Fatal(err)
	}
	src.SetTraining(false)
	dst.SetTraining(false)
	if !src.Forward(x).T.AllClose(dst.Forward(x).T, 1e-6) {
		t.Fatal("save/load changed classifier output")
	}
}

func TestAugmentPerturbsButPreservesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	v := tensor.New(1, 1, 4, 8, 8).Fill(0.5)
	a := Augment(rng, v)
	if !a.SameShape(v) {
		t.Fatal("Augment changed shape")
	}
	if a.AllClose(v, 1e-9) {
		t.Fatal("Augment should perturb the volume (with these RNG draws)")
	}
	// Original must be untouched.
	if v.Data[0] != 0.5 {
		t.Fatal("Augment mutated its input")
	}
}

func TestGradientsReachAllParams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := New(rng, SmallConfig())
	c.SetTraining(true)
	x := ag.Const(tensor.New(1, 1, 8, 16, 16).RandU(rng, 0, 1))
	label := ag.Const(tensor.FromSlice([]float32{1}, 1, 1))
	Loss(c.Forward(x), label).Backward()
	for i, p := range c.Params() {
		if p.Grad == nil {
			t.Fatalf("param %d has no gradient", i)
		}
	}
}
