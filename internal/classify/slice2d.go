package classify

import (
	"math/rand"

	"computecovid19/internal/ag"
	"computecovid19/internal/nn"
	"computecovid19/internal/tensor"
	"computecovid19/internal/volume"
)

// Slice2D is the 2D-CNN baseline the paper's related work builds on
// (§6.2.1: He et al., M-inception, DRE-Net all classify individual 2D
// slices). A volume is scored by aggregating per-slice probabilities.
// The paper's Table 10 contrasts these 2D pipelines — which need manual
// slice selection — with its own 3D approach; this type exists to run
// that comparison on equal data.
type Slice2D struct {
	net *nn.Sequential
	fc  *nn.Linear
}

// NewSlice2D builds a small 2D CNN (conv-BN-ReLU-pool ×3, GAP-style
// collapse, linear head). Input slices are (H, W) normalized to [0, 1];
// H and W must be divisible by 8.
func NewSlice2D(rng *rand.Rand, channels int, std float64) *Slice2D {
	if channels <= 0 {
		channels = 8
	}
	if std <= 0 {
		std = 0.05
	}
	net := nn.NewSequential(
		nn.NewConv2D(rng, 1, channels, 3, 1, 1, false, std),
		nn.NewBatchNorm(channels),
		nn.ReLU(),
		nn.MaxPool2D(2, 2, 0),
		nn.NewConv2D(rng, channels, 2*channels, 3, 1, 1, false, std),
		nn.NewBatchNorm(2*channels),
		nn.ReLU(),
		nn.MaxPool2D(2, 2, 0),
		nn.NewConv2D(rng, 2*channels, 2*channels, 3, 1, 1, false, std),
		nn.NewBatchNorm(2*channels),
		nn.ReLU(),
		nn.MaxPool2D(2, 2, 0),
	)
	return &Slice2D{net: net, fc: nn.NewLinear(rng, 2*channels, 1, std)}
}

// Forward maps (N, 1, H, W) slices to (N, 1) logits.
func (s *Slice2D) Forward(x *ag.Value) *ag.Value {
	h := s.net.Forward(x)
	// Global average pool over the remaining spatial extent.
	n, c, hh, ww := h.T.Shape[0], h.T.Shape[1], h.T.Shape[2], h.T.Shape[3]
	h = ag.Reshape(h, n, c, 1, hh, ww)
	h = ag.GlobalAvgPool3D(h)
	return s.fc.Forward(h)
}

// Params returns the trainable parameters.
func (s *Slice2D) Params() []*ag.Value {
	return append(s.net.Params(), s.fc.Params()...)
}

// SetTraining toggles batch-norm behaviour.
func (s *Slice2D) SetTraining(train bool) { s.net.SetTraining(train) }

// TrainWeaklyLabelled fits the 2D baseline on volumes whose only label
// is scan-level (the weak-label regime that §6.2.1's systems avoid by
// manually selecting lesion slices): every slice inherits its volume's
// label. Volumes must be normalized to [0, 1]. Returns per-epoch loss.
func (s *Slice2D) TrainWeaklyLabelled(vols []*volume.Volume, labels []bool,
	epochs, batch int, lr float64, seed int64) []float64 {

	rng := rand.New(rand.NewSource(seed))
	opt := nn.NewAdam(s.Params(), lr)
	s.SetTraining(true)

	type sample struct {
		vol, z int
	}
	var samples []sample
	for vi, v := range vols {
		for z := 0; z < v.D; z++ {
			samples = append(samples, sample{vol: vi, z: z})
		}
	}
	h, w := vols[0].H, vols[0].W

	var curve []float64
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
		total, steps := 0.0, 0
		for start := 0; start < len(samples); start += batch {
			end := start + batch
			if end > len(samples) {
				end = len(samples)
			}
			b := end - start
			x := tensor.New(b, 1, h, w)
			y := tensor.New(b, 1)
			for bi, sm := range samples[start:end] {
				copy(x.Data[bi*h*w:(bi+1)*h*w], vols[sm.vol].Slice(sm.z))
				if labels[sm.vol] {
					y.Data[bi] = 1
				}
			}
			opt.ZeroGrad()
			loss := Loss(s.Forward(ag.Const(x)), ag.Const(y))
			loss.Backward()
			opt.Step()
			total += float64(loss.Scalar())
			steps++
		}
		curve = append(curve, total/float64(steps))
	}
	// Batch-norm recalibration.
	for pass := 0; pass < 4; pass++ {
		for start := 0; start < len(samples); start += batch {
			end := start + batch
			if end > len(samples) {
				end = len(samples)
			}
			b := end - start
			x := tensor.New(b, 1, h, w)
			for bi, sm := range samples[start:end] {
				copy(x.Data[bi*h*w:(bi+1)*h*w], vols[sm.vol].Slice(sm.z))
			}
			s.Forward(ag.Const(x))
		}
	}
	s.SetTraining(false)
	return curve
}

// PredictVolume scores a normalized volume as the maximum per-slice
// probability (a lesion anywhere makes the scan positive).
func (s *Slice2D) PredictVolume(v *volume.Volume) float64 {
	s.SetTraining(false)
	x := tensor.FromSlice(v.Data, v.D, 1, v.H, v.W)
	probs := ag.Sigmoid(s.Forward(ag.Const(x)))
	best := 0.0
	for _, p := range probs.T.Data {
		if float64(p) > best {
			best = float64(p)
		}
	}
	return best
}
