package classify

import (
	"math"
	"math/rand"
	"testing"

	"computecovid19/internal/metrics"
	"computecovid19/internal/volume"
)

// blobVolume2D builds a normalized toy volume; positives have a bright
// blob on a couple of slices only (the weak-label difficulty).
func blobVolume2D(rng *rand.Rand, positive bool) *volume.Volume {
	v := volume.New(8, 16, 16)
	for i := range v.Data {
		v.Data[i] = 0.2 + 0.04*rng.Float32()
	}
	if positive {
		z0 := rng.Intn(6)
		for dz := 0; dz < 2; dz++ {
			cy, cx := 4+rng.Intn(8), 4+rng.Intn(8)
			for y := 0; y < 16; y++ {
				for x := 0; x < 16; x++ {
					d := math.Pow(float64(y-cy), 2)/8 + math.Pow(float64(x-cx), 2)/8
					if d < 1.5 {
						v.Data[((z0+dz)*16+y)*16+x] += float32(0.5 * math.Exp(-d))
					}
				}
			}
		}
	}
	return v
}

func TestSlice2DLearnsWeakLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var vols []*volume.Volume
	var labels []bool
	for i := 0; i < 12; i++ {
		pos := i%2 == 0
		vols = append(vols, blobVolume2D(rng, pos))
		labels = append(labels, pos)
	}
	s := NewSlice2D(rand.New(rand.NewSource(2)), 8, 0.05)
	curve := s.TrainWeaklyLabelled(vols, labels, 6, 8, 3e-3, 3)
	if curve[len(curve)-1] >= curve[0] {
		t.Fatalf("2D baseline loss did not decrease: %v", curve)
	}

	var probs []float64
	var truth []bool
	for i := 0; i < 12; i++ {
		pos := i%2 == 0
		probs = append(probs, s.PredictVolume(blobVolume2D(rng, pos)))
		truth = append(truth, pos)
	}
	if auc := metrics.AUC(probs, truth); auc < 0.7 {
		t.Fatalf("2D baseline AUC = %v, want > 0.7 on easy blobs", auc)
	}
}

func TestSlice2DPredictRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := NewSlice2D(rng, 4, 0.05)
	p := s.PredictVolume(blobVolume2D(rng, true))
	if p < 0 || p > 1 {
		t.Fatalf("probability %v out of range", p)
	}
}

func TestSlice2DDefaults(t *testing.T) {
	s := NewSlice2D(rand.New(rand.NewSource(5)), 0, 0)
	if len(s.Params()) == 0 {
		t.Fatal("default-configured baseline has no parameters")
	}
}
