// Package classify implements Classification AI (§2.3.2): a DenseNet
// adapted for 3D volume classification, emitting the probability that a
// chest CT volume shows COVID-19 findings. The paper uses DenseNet-121
// through NVIDIA's Clara pipeline with binary cross-entropy loss and
// Adam (§3.3.1); this package builds the same architecture family from
// our own layers, with a configurable size so tests and demos run on a
// CPU.
package classify

import (
	"math/rand"

	"computecovid19/internal/ag"
	"computecovid19/internal/nn"
	"computecovid19/internal/tensor"
	"computecovid19/internal/volume"
)

// Config selects the DenseNet-3D architecture.
type Config struct {
	// InitChannels is the stem width (DenseNet-121: 64).
	InitChannels int
	// Growth is the dense-block growth rate (DenseNet-121: 32).
	Growth int
	// BlockLayers lists the number of dense layers per block
	// (DenseNet-121: 6, 12, 24, 16).
	BlockLayers []int
	// Kernel is the growth-convolution kernel (3 in DenseNet).
	Kernel int
	// InitStd is the Gaussian initialization std.
	InitStd float64
}

// DenseNet121Config returns the paper's classification architecture
// adapted to 3D. Note: at full 512×512×n input this is far beyond
// laptop-CPU inference; it exists for fidelity and parameter-count
// reporting, while SmallConfig is the runnable default.
func DenseNet121Config() Config {
	return Config{InitChannels: 64, Growth: 32, BlockLayers: []int{6, 12, 24, 16}, Kernel: 3, InitStd: 0.01}
}

// SmallConfig returns a 3D DenseNet that trains in seconds on small
// synthetic volumes while keeping the 121 topology (stem, four dense
// blocks with transitions, global pooling, linear head).
func SmallConfig() Config {
	return Config{InitChannels: 8, Growth: 6, BlockLayers: []int{2, 2, 2}, Kernel: 3, InitStd: 0.05}
}

// Classifier is the 3D DenseNet COVID classifier.
type Classifier struct {
	Cfg Config

	stem   *nn.Conv3D
	stemBN *nn.BatchNorm

	blocks []*nn.DenseBlock3D
	transC []*nn.Conv3D
	transB []*nn.BatchNorm

	headBN *nn.BatchNorm
	fc     *nn.Linear
}

// New constructs a classifier with Gaussian-initialized weights.
func New(rng *rand.Rand, cfg Config) *Classifier {
	c := &Classifier{Cfg: cfg}
	ch := cfg.InitChannels
	c.stem = nn.NewConv3D(rng, 1, ch, 3, 1, 1, false, cfg.InitStd)
	c.stemBN = nn.NewBatchNorm(ch)

	for bi, layers := range cfg.BlockLayers {
		c.blocks = append(c.blocks, nn.NewDenseBlock3D(rng, ch, cfg.Growth, layers, cfg.Kernel, cfg.InitStd))
		out := ch + layers*cfg.Growth
		if bi < len(cfg.BlockLayers)-1 {
			// Transition halves the channels (DenseNet compression 0.5).
			next := out / 2
			c.transC = append(c.transC, nn.NewConv3D(rng, out, next, 1, 1, 0, false, cfg.InitStd))
			c.transB = append(c.transB, nn.NewBatchNorm(next))
			ch = next
		} else {
			ch = out
		}
	}
	c.headBN = nn.NewBatchNorm(ch)
	c.fc = nn.NewLinear(rng, ch, 1, cfg.InitStd)
	return c
}

// Forward maps (N, 1, D, H, W) volumes to (N, 1) logits. D, H, W must be
// divisible by 2^(len(BlockLayers)-1) plus the stem pool (2× more).
func (c *Classifier) Forward(x *ag.Value) *ag.Value {
	h := ag.ReLU(c.stemBN.Forward(c.stem.Forward(x)))
	h = ag.MaxPool3D(h, ag.Pool2DConfig{Kernel: 2, Stride: 2})
	for bi := range c.blocks {
		h = c.blocks[bi].Forward(h)
		if bi < len(c.transC) {
			h = ag.ReLU(c.transB[bi].Forward(c.transC[bi].Forward(h)))
			h = ag.MaxPool3D(h, ag.Pool2DConfig{Kernel: 2, Stride: 2})
		}
	}
	h = ag.ReLU(c.headBN.Forward(h))
	h = ag.GlobalAvgPool3D(h)
	return c.fc.Forward(h)
}

// Params returns every trainable parameter.
func (c *Classifier) Params() []*ag.Value {
	ps := c.stem.Params()
	ps = append(ps, c.stemBN.Params()...)
	for bi := range c.blocks {
		ps = append(ps, c.blocks[bi].Params()...)
		if bi < len(c.transC) {
			ps = append(ps, c.transC[bi].Params()...)
			ps = append(ps, c.transB[bi].Params()...)
		}
	}
	ps = append(ps, c.headBN.Params()...)
	ps = append(ps, c.fc.Params()...)
	return ps
}

// SetTraining toggles batch-norm behaviour network-wide.
func (c *Classifier) SetTraining(train bool) {
	c.stemBN.SetTraining(train)
	for bi := range c.blocks {
		c.blocks[bi].SetTraining(train)
		if bi < len(c.transB) {
			c.transB[bi].SetTraining(train)
		}
	}
	c.headBN.SetTraining(train)
}

// StateTensors exposes batch-norm running statistics for serialization.
func (c *Classifier) StateTensors() []*tensor.Tensor {
	var ts []*tensor.Tensor
	add := func(b *nn.BatchNorm) { ts = append(ts, b.RunningMean, b.RunningVar) }
	add(c.stemBN)
	for bi := range c.blocks {
		for _, l := range c.blocks[bi].Layers {
			add(l.BN1)
			add(l.BN2)
		}
		if bi < len(c.transB) {
			add(c.transB[bi])
		}
	}
	add(c.headBN)
	return ts
}

// Predict runs the classifier in eval mode on one volume (values already
// normalized / in HU per the training convention) and returns the
// COVID-positive probability.
func (c *Classifier) Predict(v *volume.Volume) float64 {
	c.SetTraining(false)
	x := ag.Const(tensor.FromSlice(v.Data, 1, 1, v.D, v.H, v.W))
	logit := c.Forward(x)
	return float64(ag.Sigmoid(logit).Scalar())
}

// Loss is the paper's classification objective: binary cross-entropy
// (Equation 2), computed in the fused logits form for stability.
func Loss(logits, labels *ag.Value) *ag.Value {
	return ag.BCEWithLogitsLoss(logits, labels)
}

// Augment applies the paper's §3.3.1 training augmentations in place on
// a [0,1]-normalized volume copy and returns it: Gaussian noise with
// probability 0.75, contrast adjustment with probability 0.5, and
// intensity scaling. The perturbation magnitudes are scaled down from
// the paper's HU-domain values to our [0,1] range so augmentation
// regularizes without drowning the lesion contrast.
func Augment(rng *rand.Rand, v *tensor.Tensor) *tensor.Tensor {
	out := v.Clone()
	if rng.Float64() < 0.75 {
		std := 0.02
		for i := range out.Data {
			out.Data[i] += float32(rng.NormFloat64() * std)
		}
	}
	if rng.Float64() < 0.5 {
		// Contrast: pivot around the mean.
		mean := float32(out.Mean())
		gamma := float32(0.9 + 0.2*rng.Float64())
		for i := range out.Data {
			out.Data[i] = mean + (out.Data[i]-mean)*gamma
		}
	}
	scale := float32(1 + (rng.Float64()-0.5)*0.1) // magnitude 0.05
	out.ScaleInPlace(scale)
	return out
}
