package classify

import (
	"math/rand"
	"testing"

	"computecovid19/internal/memplan"
	"computecovid19/internal/tensor"
	"computecovid19/internal/volume"
)

func evalTestVolume(rng *rand.Rand, d, h, w int) *volume.Volume {
	v := volume.New(d, h, w)
	for i := range v.Data {
		v.Data[i] = rng.Float32()
	}
	return v
}

// TestPredictPooledBitIdentical pins the pooled classifier forward to
// the graph path: identical probability bits, cold and warm, and with
// release poisoning enabled.
func TestPredictPooledBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := New(rng, SmallConfig())
	v := evalTestVolume(rng, 16, 16, 16)
	want := c.Predict(v)

	mem := memplan.New()
	if got := c.PredictPooled(mem, v); got != want {
		t.Fatalf("cold arena: %v != %v", got, want)
	}
	if got := c.PredictPooled(mem, v); got != want {
		t.Fatalf("warm arena: %v != %v", got, want)
	}

	prev := tensor.SetMemDebug(true)
	defer tensor.SetMemDebug(prev)
	if got := c.PredictPooled(memplan.New(), v); got != want {
		t.Fatalf("memdebug arena: %v != %v", got, want)
	}
}

// TestAllocsWarmPredict pins zero steady-state heap allocations for a
// warm pooled classification.
func TestAllocsWarmPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := New(rng, SmallConfig())
	v := evalTestVolume(rng, 16, 16, 16)
	mem := memplan.New()
	warm := func() { c.PredictPooled(mem, v) }
	warm()
	if n := testing.AllocsPerRun(10, warm); n != 0 {
		t.Fatalf("warm PredictPooled allocates %v allocs/op, want 0", n)
	}
}
