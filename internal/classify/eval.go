package classify

import (
	"computecovid19/internal/ag"
	"computecovid19/internal/memplan"
	"computecovid19/internal/volume"
)

// PredictPooled is Predict on the pooled, tape-free eval path: every
// activation comes from mem, so a warm arena makes classification a
// zero-steady-state-allocation operation. The volume's storage is
// aliased read-only (never pooled). Bit identity with Predict is
// pinned by TestPredictPooledBitIdentical.
func (c *Classifier) PredictPooled(mem *memplan.Arena, v *volume.Volume) float64 {
	c.SetTraining(false)
	sc := mem.NewScope()
	x := sc.View(v.Data, 1, 1, v.D, v.H, v.W)

	s1 := c.stem.Infer(sc, x)
	s2 := c.stemBN.Infer(sc, s1)
	sc.Free(s1)
	ag.EvalLeakyReLUInPlace(s2, 0) // ReLU, matching ag.ReLU bit for bit
	h := ag.EvalMaxPool3D(sc, s2, ag.Pool2DConfig{Kernel: 2, Stride: 2})
	sc.Free(s2)

	for bi := range c.blocks {
		hb := c.blocks[bi].Infer(sc, h)
		sc.Free(h)
		h = hb
		if bi < len(c.transC) {
			tc := c.transC[bi].Infer(sc, h)
			sc.Free(h)
			tb := c.transB[bi].Infer(sc, tc)
			sc.Free(tc)
			ag.EvalLeakyReLUInPlace(tb, 0)
			h = ag.EvalMaxPool3D(sc, tb, ag.Pool2DConfig{Kernel: 2, Stride: 2})
			sc.Free(tb)
		}
	}

	hb := c.headBN.Infer(sc, h)
	sc.Free(h)
	ag.EvalLeakyReLUInPlace(hb, 0)
	gap := ag.EvalGlobalAvgPool3D(sc, hb)
	sc.Free(hb)
	logit := c.fc.Infer(sc, gap)
	p := float64(ag.EvalSigmoid(logit.Data[0]))
	sc.Close()
	return p
}
