package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestForNestedDoesNotDeadlock pins the pool's work-conserving design:
// a loop body issuing its own For must finish even when every pool
// worker is occupied by the outer loop, because callers always claim
// chunks themselves instead of waiting on pool availability.
func TestForNestedDoesNotDeadlock(t *testing.T) {
	var sum int64
	For(8, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(8, 4, func(ilo, ihi int) {
				for k := ilo; k < ihi; k++ {
					atomic.AddInt64(&sum, 1)
				}
			})
		}
	})
	if sum != 64 {
		t.Fatalf("nested For covered %d inner indices, want 64", sum)
	}
}

// TestForConcurrentCallers hammers job recycling: many goroutines
// issuing overlapping For calls, each verifying exactly-once coverage
// of its own range. Under -race this is the regression test for reuse
// of pooled forJob state (a stale dispatch must never observe another
// caller's job parameters).
func TestForConcurrentCallers(t *testing.T) {
	const (
		goroutines = 8
		iters      = 200
		n          = 64
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				var hits [n]int32
				For(n, 4, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i := range hits {
					if hits[i] != 1 {
						t.Errorf("index %d visited %d times", i, hits[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestForMoreChunksThanWorkers checks ranges that produce far more
// chunks than the pool has goroutines: the shared cursor must still
// cover every chunk exactly once.
func TestForMoreChunksThanWorkers(t *testing.T) {
	const n = 1 << 12
	hits := make([]int32, n)
	For(n, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}
