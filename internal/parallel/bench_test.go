package parallel

import (
	"fmt"
	"sync"
	"testing"
)

// forkJoinFor is the pre-pool dispatch strategy — one fresh goroutine
// per chunk, joined with a WaitGroup — kept here as the reference the
// pooled dispatch benchmarks are measured against.
func forkJoinFor(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// benchDispatch measures pure dispatch overhead: nchunks chunks of one
// index each, with an empty body, so the entire cost is distribution +
// join. chunks=1 exercises the inline fast path of both strategies.
func benchDispatch(b *testing.B, nchunks int, impl func(n, workers int, fn func(lo, hi int))) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		impl(nchunks, nchunks, func(lo, hi int) {})
	}
}

func BenchmarkDispatchForkJoin(b *testing.B) {
	for _, c := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("chunks=%d", c), func(b *testing.B) {
			benchDispatch(b, c, forkJoinFor)
		})
	}
}

func BenchmarkDispatchPooled(b *testing.B) {
	for _, c := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("chunks=%d", c), func(b *testing.B) {
			benchDispatch(b, c, For)
		})
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		For(1024, 4, func(lo, hi int) {
			s := 0
			for j := lo; j < hi; j++ {
				s += j
			}
			_ = s
		})
	}
}
