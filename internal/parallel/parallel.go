// Package parallel provides the work-distribution primitives used by every
// compute-heavy loop in the repository: a bounded worker pool and
// grain-controlled parallel-for helpers.
//
// The package mirrors the role the OpenCL runtime plays in the paper's
// inference stack: callers express data-parallel iteration spaces and the
// pool maps them onto OS threads. Workers default to GOMAXPROCS but can be
// overridden per call, which the benchmark harness uses to emulate
// platforms with different core counts.
package parallel

import (
	"runtime"
	"sync"

	"computecovid19/internal/obs"
)

// chunksSpawned counts goroutine chunks launched by For/Reduce — the
// inline (workers == 1) fast path spawns none and is not counted, which
// the regression tests pin.
var chunksSpawned = obs.GetCounter("parallel_chunks_spawned_total")

// ChunksSpawned reports the lifetime count of spawned chunks.
func ChunksSpawned() uint64 { return chunksSpawned.Value() }

// DefaultWorkers reports the worker count used when a caller passes
// workers <= 0: the current GOMAXPROCS setting.
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// For splits the half-open index range [0, n) into contiguous chunks and
// runs fn on each chunk from its own goroutine. fn receives the chunk
// bounds [lo, hi). When workers <= 0 the pool uses DefaultWorkers.
// For n == 0 it returns immediately; when only one worker is useful the
// call runs inline with no goroutine overhead.
func For(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	spawned := uint64(0)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		spawned++
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	chunksSpawned.Add(spawned)
	wg.Wait()
}

// ForTimed is For wrapped in an obs span named "parallel/<name>" with
// the iteration space and worker count attached — the telemetry-aware
// entry point for coarse-grained loops (per-slice enhancement, cohort
// scoring). Fine-grained kernel loops should keep calling For: the span
// is only worth its ~300 ns when the body runs long enough to see on a
// trace.
func ForTimed(name string, n, workers int, fn func(lo, hi int)) {
	var sp *obs.Span
	if obs.Enabled() { // keep the name concat off the disabled path
		sp = obs.Start("parallel/" + name)
		sp.SetAttr("n", n)
		sp.SetAttr("workers", workers)
	}
	For(n, workers, fn)
	sp.End()
}

// ForEach runs fn once per index in [0, n), distributing indices across
// the pool in contiguous chunks. It is a convenience wrapper over For for
// loop bodies that do not benefit from seeing their chunk bounds.
func ForEach(n, workers int, fn func(i int)) {
	For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Map applies fn to every index in [0, n) and collects the results in
// order. It allocates the result slice once and lets workers write
// disjoint regions, so no locking is required.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = fn(i)
		}
	})
	return out
}

// Reduce computes a parallel reduction over [0, n). Each worker folds its
// chunk with fold starting from zero, and the per-chunk partials are
// combined serially with merge. fold and merge must be associative for
// the result to be deterministic; for float32/float64 sums the result can
// differ from a serial loop only by rounding.
func Reduce[T any](n, workers int, zero T, fold func(acc T, i int) T, merge func(a, b T) T) T {
	if n <= 0 {
		return zero
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		acc := zero
		for i := 0; i < n; i++ {
			acc = fold(acc, i)
		}
		return acc
	}
	chunk := (n + workers - 1) / workers
	nchunks := (n + chunk - 1) / chunk
	chunksSpawned.Add(uint64(nchunks))
	partial := make([]T, nchunks)
	var wg sync.WaitGroup
	for c := 0; c < nchunks; c++ {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			acc := zero
			for i := lo; i < hi; i++ {
				acc = fold(acc, i)
			}
			partial[c] = acc
		}(c, lo, hi)
	}
	wg.Wait()
	acc := partial[0]
	for _, p := range partial[1:] {
		acc = merge(acc, p)
	}
	return acc
}
