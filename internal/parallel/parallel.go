// Package parallel provides the work-distribution primitives used by every
// compute-heavy loop in the repository: a persistent worker pool and
// grain-controlled parallel-for helpers.
//
// The package mirrors the role the OpenCL runtime plays in the paper's
// inference stack: callers express data-parallel iteration spaces and the
// pool maps them onto OS threads. Workers default to GOMAXPROCS but can be
// overridden per call, which the benchmark harness uses to emulate
// platforms with different core counts.
//
// Dispatch goes through a pool of persistent goroutines rather than a
// per-call fork/join: a 45-layer DDnet forward issues one For per layer,
// and spawning + joining fresh goroutines for each paid a scheduler
// round-trip per layer per slice. Workers created once at first use spin
// briefly after finishing a job — catching the next layer's dispatch
// while still running — and then park on a channel receive. The caller
// always participates in its own job (claiming chunks from the same
// atomic cursor as the workers), so a For never deadlocks even when
// every pool worker is busy or the loop body issues a nested For.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"computecovid19/internal/obs"
)

// chunksSpawned counts chunks dispatched by For/Reduce — the inline
// (workers == 1) fast path dispatches none and is not counted, which
// the regression tests pin. The name predates the persistent pool
// (chunks used to each get their own goroutine); the metric's meaning —
// parallel dispatch events — is unchanged.
var chunksSpawned = obs.GetCounter("parallel_chunks_spawned_total")

// ChunksSpawned reports the lifetime count of dispatched chunks.
func ChunksSpawned() uint64 { return chunksSpawned.Value() }

// DefaultWorkers reports the worker count used when a caller passes
// workers <= 0: the current GOMAXPROCS setting.
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// forJob is one For call's shared state. Workers and the caller claim
// chunk c = next.Add(1)-1 until the range is exhausted; wg tracks chunk
// completions (the caller waits on it) and refs counts live references
// (the caller, plus one per pointer sitting in the dispatch channel) so
// the job is recycled only when nobody — not even a parked send — can
// still reach it. All parameter fields are written before the job is
// published via channel send, which gives every receiver a
// happens-before edge; a worker that drains a stale pointer after the
// range is exhausted sees next past the end, claims nothing, and just
// drops its reference.
type forJob struct {
	fn    func(lo, hi int)
	n     int
	chunk int
	next  atomic.Int64
	refs  atomic.Int32
	wg    sync.WaitGroup
}

// run claims and executes chunks until the range is exhausted.
func (j *forJob) run() {
	for {
		c := int(j.next.Add(1)) - 1
		lo := c * j.chunk
		if lo >= j.n {
			return
		}
		hi := lo + j.chunk
		if hi > j.n {
			hi = j.n
		}
		j.fn(lo, hi)
		j.wg.Done()
	}
}

// release drops one reference and recycles the job when it was the
// last. sync.Pool's Put/Get pair synchronizes with the next owner's
// plain-field writes, so reuse is race-free.
func (j *forJob) release() {
	if j.refs.Add(-1) == 0 {
		j.fn = nil // do not pin the closure while pooled
		jobPool.Put(j)
	}
}

var jobPool = sync.Pool{New: func() any { return new(forJob) }}

// dispatchSpin bounds the post-job spin: a worker that just finished a
// job yields this many times looking for the next dispatch before
// parking on a blocking receive. Back-to-back layer dispatches (the
// DDnet forward) land in the spin window; an idle pool costs nothing.
const dispatchSpin = 64

var (
	poolOnce sync.Once
	jobs     chan *forJob
)

func startPool() {
	nw := runtime.GOMAXPROCS(0)
	if nw < 1 {
		nw = 1
	}
	cap := 8 * nw
	if cap < 64 {
		cap = 64
	}
	jobs = make(chan *forJob, cap)
	for i := 0; i < nw; i++ {
		go poolWorker()
	}
}

// poolWorker is one persistent pool goroutine: park on the dispatch
// channel, help with the job, spin briefly for the next one, park again.
func poolWorker() {
	for {
		j := <-jobs
		for j != nil {
			j.run()
			j.release()
			j = nil
			for i := 0; i < dispatchSpin && j == nil; i++ {
				select {
				case j = <-jobs:
				default:
					runtime.Gosched()
				}
			}
		}
	}
}

// For splits the half-open index range [0, n) into contiguous chunks and
// runs fn on each chunk. fn receives the chunk bounds [lo, hi). When
// workers <= 0 the pool uses DefaultWorkers. For n == 0 it returns
// immediately; when only one worker is useful the call runs inline with
// no dispatch overhead. Otherwise up to workers-1 pool workers are woken
// with non-blocking sends — a full channel means every worker is already
// busy — and the caller works the same chunk cursor itself, so progress
// never depends on pool availability.
func For(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	poolOnce.Do(startPool)
	chunk := (n + workers - 1) / workers
	nchunks := (n + chunk - 1) / chunk
	j := jobPool.Get().(*forJob)
	j.fn, j.n, j.chunk = fn, n, chunk
	j.next.Store(0)
	j.refs.Store(1)
	j.wg.Add(nchunks)
	chunksSpawned.Add(uint64(nchunks))
	for i := 1; i < workers; i++ {
		j.refs.Add(1)
		sent := false
		select {
		case jobs <- j:
			sent = true
		default:
		}
		if !sent {
			j.refs.Add(-1)
			break
		}
	}
	j.run()
	j.wg.Wait()
	j.release()
}

// ForTimed is For wrapped in an obs span named "parallel/<name>" with
// the iteration space and worker count attached — the telemetry-aware
// entry point for coarse-grained loops (per-slice enhancement, cohort
// scoring). Fine-grained kernel loops should keep calling For: the span
// is only worth its ~300 ns when the body runs long enough to see on a
// trace.
func ForTimed(name string, n, workers int, fn func(lo, hi int)) {
	var sp *obs.Span
	if obs.Enabled() { // keep the name concat off the disabled path
		sp = obs.Start("parallel/" + name)
		sp.SetAttr("n", n)
		sp.SetAttr("workers", workers)
	}
	For(n, workers, fn)
	sp.End()
}

// ForEach runs fn once per index in [0, n), distributing indices across
// the pool in contiguous chunks. It is a convenience wrapper over For for
// loop bodies that do not benefit from seeing their chunk bounds.
func ForEach(n, workers int, fn func(i int)) {
	For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Map applies fn to every index in [0, n) and collects the results in
// order. It allocates the result slice once and lets workers write
// disjoint regions, so no locking is required.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = fn(i)
		}
	})
	return out
}

// Reduce computes a parallel reduction over [0, n). Each chunk is folded
// with fold starting from zero, and the per-chunk partials are combined
// serially with merge, in chunk order. fold and merge must be
// associative for the result to be deterministic; for float32/float64
// sums the result can differ from a serial loop only by rounding.
func Reduce[T any](n, workers int, zero T, fold func(acc T, i int) T, merge func(a, b T) T) T {
	if n <= 0 {
		return zero
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		acc := zero
		for i := 0; i < n; i++ {
			acc = fold(acc, i)
		}
		return acc
	}
	// For with the same clamped worker count uses the same chunk size,
	// so lo/chunk below is the chunk's index into the partials.
	chunk := (n + workers - 1) / workers
	nchunks := (n + chunk - 1) / chunk
	partial := make([]T, nchunks)
	For(n, workers, func(lo, hi int) {
		acc := zero
		for i := lo; i < hi; i++ {
			acc = fold(acc, i)
		}
		partial[lo/chunk] = acc
	})
	acc := partial[0]
	for _, p := range partial[1:] {
		acc = merge(acc, p)
	}
	return acc
}
