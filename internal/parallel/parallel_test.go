package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// TestForClampsWorkersToN pins the workers > n clamp: no more than one
// chunk per index, each of size exactly one, and the spawned-chunk
// counter advances by exactly n.
func TestForClampsWorkersToN(t *testing.T) {
	const n = 3
	before := ChunksSpawned()
	var mu sync.Mutex
	var chunks [][2]int
	For(n, 64, func(lo, hi int) {
		mu.Lock()
		chunks = append(chunks, [2]int{lo, hi})
		mu.Unlock()
	})
	if len(chunks) != n {
		t.Fatalf("workers=64 over n=3 produced %d chunks, want %d (clamp broken)", len(chunks), n)
	}
	for _, c := range chunks {
		if c[1]-c[0] != 1 {
			t.Fatalf("chunk %v has size %d, want 1", c, c[1]-c[0])
		}
	}
	if got := ChunksSpawned() - before; got != n {
		t.Fatalf("spawned-chunk counter advanced by %d, want %d", got, n)
	}
}

// TestForSingleWorkerRunsInline pins the workers == 1 fast path: one
// call covering [0, n) and zero spawned chunks (no goroutine overhead).
func TestForSingleWorkerRunsInline(t *testing.T) {
	before := ChunksSpawned()
	calls := 0
	For(100, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("inline path got chunk [%d,%d), want [0,100)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("inline path made %d calls, want 1", calls)
	}
	if got := ChunksSpawned() - before; got != 0 {
		t.Fatalf("inline path spawned %d chunks, want 0", got)
	}
	// n == 1 clamps any worker count onto the same inline path.
	before = ChunksSpawned()
	For(1, 8, func(lo, hi int) {})
	if got := ChunksSpawned() - before; got != 0 {
		t.Fatalf("n=1 spawned %d chunks, want 0", got)
	}
}

// TestForTimedCoversRange checks the telemetry wrapper delegates
// faithfully.
func TestForTimedCoversRange(t *testing.T) {
	var sum int64
	ForTimed("test", 100, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt64(&sum, int64(i))
		}
	})
	if sum != 4950 {
		t.Fatalf("ForTimed sum = %d, want 4950", sum)
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1023} {
		for _, w := range []int{0, 1, 2, 5, 64} {
			hits := make([]int32, n)
			For(n, w, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, h)
				}
			}
		}
	}
}

func TestForEachCoversRange(t *testing.T) {
	var sum int64
	ForEach(100, 4, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 4, func(lo, hi int) { called = true })
	For(-5, 4, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestMapOrdered(t *testing.T) {
	out := Map(50, 7, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestReduceSum(t *testing.T) {
	got := Reduce(1000, 8, 0, func(acc, i int) int { return acc + i },
		func(a, b int) int { return a + b })
	if got != 499500 {
		t.Fatalf("Reduce = %d, want 499500", got)
	}
}

func TestReduceEmpty(t *testing.T) {
	got := Reduce(0, 8, 42, func(acc, i int) int { return acc + i },
		func(a, b int) int { return a + b })
	if got != 42 {
		t.Fatalf("Reduce on empty range = %d, want zero value 42", got)
	}
}

// Property: parallel sum equals serial sum for any worker count.
func TestReduceMatchesSerialProperty(t *testing.T) {
	f := func(vals []int16, workers uint8) bool {
		w := int(workers%16) + 1
		want := 0
		for _, v := range vals {
			want += int(v)
		}
		got := Reduce(len(vals), w, 0,
			func(acc, i int) int { return acc + int(vals[i]) },
			func(a, b int) int { return a + b })
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Map output is index-deterministic regardless of worker count.
func TestMapDeterministicProperty(t *testing.T) {
	f := func(n uint8, workers uint8) bool {
		size := int(n)
		w := int(workers%8) + 1
		a := Map(size, 1, func(i int) int { return 3*i + 1 })
		b := Map(size, w, func(i int) int { return 3*i + 1 })
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
