package kernels

import "computecovid19/internal/parallel"

// Deconv computes a stride-1 "same" deconvolution (transposed
// convolution) on CHW buffers. Weights are laid out (InC, OutC, K, K).
// The Baseline variant is the scatter formulation the paper profiles at
// 299.86 s serial on the Xeon (§5.1.3); REF and above use the gather
// refactoring of §4.2.1 (Figure 9).
func Deconv(v Variant, x, w, out []float32, s ConvShape, workers int) {
	ByVariant(v).Deconv(x, w, out, s, workers)
}

// deconvScatter is Figure 9(a): every input element multiplies the whole
// filter and the partial sums are added into the output buffer — a
// read-modify-write of global memory per tap, plus per-tap index
// arithmetic with the integer divisions the paper blames for the
// deconvolution's cost. Parallelism is over output channels so scatter
// writes stay disjoint.
func deconvScatter(x, w, out []float32, s ConvShape, workers int) {
	pad := s.K / 2
	parallel.ForEach(s.OutC, workers, func(co int) {
		// Clear this output plane, then accumulate partial sums into it.
		for i := co * s.H * s.W; i < (co+1)*s.H*s.W; i++ {
			out[i] = 0
		}
		for ci := 0; ci < s.InC; ci++ {
			for iy := 0; iy < s.H; iy++ {
				for ix := 0; ix < s.W; ix++ {
					// Recurring global load of the input element, plus
					// flat-index decode with divisions, as the naive
					// OpenCL kernel does.
					idx := (ci*s.H+iy)*s.W + ix
					yy := idx / s.W % s.H
					xx := idx % s.W
					v := x[idx]
					for ky := 0; ky < s.K; ky++ {
						oy := yy - pad + ky
						if oy < 0 || oy >= s.H {
							continue
						}
						for kx := 0; kx < s.K; kx++ {
							ox := xx - pad + kx
							if ox < 0 || ox >= s.W {
								continue
							}
							// Global read-modify-write per partial sum.
							out[(co*s.H+oy)*s.W+ox] += v * w[((ci*s.OutC+co)*s.K+ky)*s.K+kx]
						}
					}
				}
			}
		}
	})
}

// deconvGather is Figure 9(b): each output element determines which
// input elements affect it and accumulates the products in a register
// before a single store. For stride 1, output (oy,ox) receives input
// (oy+pad-ky, ox+pad-kx).
func deconvGather(x, w, out []float32, s ConvShape, workers int) {
	pad := s.K / 2
	parallel.ForEach(s.OutC, workers, func(co int) {
		for oy := 0; oy < s.H; oy++ {
			for ox := 0; ox < s.W; ox++ {
				var acc float32
				for ci := 0; ci < s.InC; ci++ {
					for ky := 0; ky < s.K; ky++ {
						iy := oy + pad - ky
						if iy < 0 || iy >= s.H {
							continue
						}
						for kx := 0; kx < s.K; kx++ {
							ix := ox + pad - kx
							if ix < 0 || ix >= s.W {
								continue
							}
							acc += x[(ci*s.H+iy)*s.W+ix] *
								w[((ci*s.OutC+co)*s.K+ky)*s.K+kx]
						}
					}
				}
				out[(co*s.H+oy)*s.W+ox] = acc
			}
		}
	})
}

// deconvGatherPrefetch adds the §4.2.2 prefetching: per-(ci,co) filter
// taps staged into a stack buffer, bounds hoisted into locals.
func deconvGatherPrefetch(x, w, out []float32, s ConvShape, workers int) {
	h, wd, k, inC, outC := s.H, s.W, s.K, s.InC, s.OutC
	pad := k / 2
	parallel.ForEach(outC, workers, func(co int) {
		obase := co * h * wd
		var taps [49]float32
		for ci := 0; ci < inC; ci++ {
			wbase := (ci*outC + co) * k * k
			copy(taps[:k*k], w[wbase:wbase+k*k])
			xbase := ci * h * wd
			first := ci == 0
			for oy := 0; oy < h; oy++ {
				for ox := 0; ox < wd; ox++ {
					var acc float32
					for ky := 0; ky < k; ky++ {
						iy := oy + pad - ky
						if iy < 0 || iy >= h {
							continue
						}
						xrow := xbase + iy*wd
						trow := ky * k
						for kx := 0; kx < k; kx++ {
							ix := ox + pad - kx
							if ix < 0 || ix >= wd {
								continue
							}
							acc += x[xrow+ix] * taps[trow+kx]
						}
					}
					if first {
						out[obase+oy*wd+ox] = acc
					} else {
						out[obase+oy*wd+ox] += acc
					}
				}
			}
		}
	})
}

// deconvGatherUnrolled fully unrolls the kx multiply-add loop for
// k ∈ {1, 3, 5} (the paper's factor-5 unroll) on interior pixels.
func deconvGatherUnrolled(x, w, out []float32, s ConvShape, workers int) {
	h, wd, k, inC, outC := s.H, s.W, s.K, s.InC, s.OutC
	pad := k / 2
	if k != 1 && k != 3 && k != 5 {
		deconvGatherPrefetch(x, w, out, s, workers)
		return
	}
	parallel.ForEach(outC, workers, func(co int) {
		obase := co * h * wd
		var taps [25]float32
		for ci := 0; ci < inC; ci++ {
			wbase := (ci*outC + co) * k * k
			// Gather with a reversed kernel equals correlation with the
			// flipped taps; flip once here so the hot loop is a pure
			// multiply-add sweep.
			for i := 0; i < k*k; i++ {
				taps[i] = w[wbase+k*k-1-i]
			}
			xbase := ci * h * wd
			first := ci == 0
			for oy := 0; oy < h; oy++ {
				interiorY := oy-pad >= 0 && oy+pad < h
				for ox := 0; ox < wd; ox++ {
					var acc float32
					if interiorY && ox-pad >= 0 && ox+pad < wd {
						switch k {
						case 1:
							acc = x[xbase+oy*wd+ox] * taps[0]
						case 3:
							r0 := xbase + (oy-1)*wd + ox - 1
							r1 := r0 + wd
							r2 := r1 + wd
							acc = x[r0]*taps[0] + x[r0+1]*taps[1] + x[r0+2]*taps[2] +
								x[r1]*taps[3] + x[r1+1]*taps[4] + x[r1+2]*taps[5] +
								x[r2]*taps[6] + x[r2+1]*taps[7] + x[r2+2]*taps[8]
						case 5:
							for ky := 0; ky < 5; ky++ {
								r := xbase + (oy-2+ky)*wd + ox - 2
								t := ky * 5
								acc += x[r]*taps[t] + x[r+1]*taps[t+1] + x[r+2]*taps[t+2] +
									x[r+3]*taps[t+3] + x[r+4]*taps[t+4]
							}
						}
					} else {
						for ky := 0; ky < k; ky++ {
							iy := oy + pad - ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < k; kx++ {
								ix := ox + pad - kx
								if ix < 0 || ix >= wd {
									continue
								}
								// taps are flipped: index (k-1-ky, k-1-kx).
								acc += x[xbase+iy*wd+ix] * taps[(k-1-ky)*k+(k-1-kx)]
							}
						}
					}
					if first {
						out[obase+oy*wd+ox] = acc
					} else {
						out[obase+oy*wd+ox] += acc
					}
				}
			}
		}
	})
}
