package kernels

import (
	"computecovid19/internal/memplan"
	"computecovid19/internal/parallel"
)

// The gemm rung restructures convolution the way cuDNN-class CPU/GPU
// backends do: im2col turns each output pixel's receptive field into a
// column of a patch matrix, and the convolution becomes one dense
// matrix multiply (weights-as-rows × patches-as-columns). Three of the
// paper's optimization ideas appear here in their cache-hierarchy form:
//
//   - cache blocking: output pixels are processed in column tiles sized
//     so the staged patch panel stays L2-resident per worker;
//   - PF analogue (§4.2.2): each tile's input loads are staged into the
//     contiguous panel *before* the multiply sweep, so the hot loop
//     streams linear memory and never touches scattered input addresses
//     (tile-level software pipelining of the loads);
//   - LU analogue (§4.2.2): the micro-kernel unrolls the reduction
//     (channel × filter-tap) dimension by four while keeping a single
//     in-order accumulator per output element, so the summation order
//     matches the naive kernels' and results stay within the oracle
//     tolerance (zero-padding taps contribute exact float32 zeros).
//
// Work is distributed over column tiles, not output channels, so the
// rung parallelizes cleanly even for the decoder's single-channel
// final layer.

// gemmPanelFloats caps the staged panel at 256 Ki float32s (1 MiB), a
// comfortable fit in a per-core L2 alongside the weight rows.
const gemmPanelFloats = 1 << 18

// convGEMM computes a stride-1 "same" convolution with weights in
// (OutC, InC, K, K) layout via tiled im2col + GEMM.
func convGEMM(x, w, out []float32, s ConvShape, workers int) {
	r := s.InC * s.K * s.K
	cols := s.H * s.W
	tile := gemmPanelFloats / r
	if tile > cols {
		tile = cols
	}
	if tile < 64 {
		tile = 64
	}
	nTiles := (cols + tile - 1) / tile
	// Resolve the worker count with parallel.For's own rules so the
	// single-worker case runs inline without materializing a closure —
	// on one proc (testing.AllocsPerRun) the hot path stays
	// allocation-free; the staged panels come from the memory pool
	// either way.
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	if workers > nTiles {
		workers = nTiles
	}
	if workers == 1 {
		gemmTiles(x, w, out, s, r, cols, tile, 0, nTiles)
		return
	}
	parallel.For(nTiles, workers, func(lo, hi int) {
		gemmTiles(x, w, out, s, r, cols, tile, lo, hi)
	})
}

// gemmTiles stages and multiplies the column tiles [lo, hi), with the
// per-worker panel drawn from the global memory pool. The panel is not
// zeroed on loan: stagePatchTile fully writes [0, n) of every row it
// stages and gemmRow reads exactly that range, so no stale element is
// ever read.
func gemmTiles(x, w, out []float32, s ConvShape, r, cols, tile, lo, hi int) {
	panel := memplan.GetFloats(r * tile)
	for t := lo; t < hi; t++ {
		c0 := t * tile
		n := cols - c0
		if n > tile {
			n = tile
		}
		stagePatchTile(x, panel, s, c0, n, tile)
		for co := 0; co < s.OutC; co++ {
			gemmRow(w[co*r:(co+1)*r], panel, out[co*cols+c0:co*cols+c0+n], tile, 0)
		}
	}
	memplan.PutFloats(panel)
}

// deconvGEMM computes a stride-1 "same" transposed convolution with
// weights in (InC, OutC, K, K) layout. For stride 1 a transposed
// convolution is exactly a convolution with the spatially flipped
// filter, so the weights are transformed into the (OutC, InC, K, K)
// flipped layout and the tiled GEMM path does the rest. This is the
// cold-path fallback: it pays the flip on every call into pooled
// scratch. Warm inference goes through the fused execution plan, which
// runs FlipDeconvWeights once at plan-compile time and feeds the cached
// panel to ConvFused instead.
func deconvGEMM(x, w, out []float32, s ConvShape, workers int) {
	// Pooled scratch; FlipDeconvWeights writes every element.
	wc := memplan.GetFloats(s.OutC * s.InC * s.K * s.K)
	FlipDeconvWeights(w, wc, s)
	convGEMM(x, wc, out, s, workers)
	memplan.PutFloats(wc)
}

// stagePatchTile writes the im2col panel for output pixels
// [c0, c0+n): row (ci·K+ky)·K+kx of the panel holds, for each output
// pixel, the input element that filter tap (ci, ky, kx) reads, with
// zero padding materialized. Interior segments are bulk copy()s; only
// the borders go element-wise (through zeroFill).
func stagePatchTile(x, panel []float32, s ConvShape, c0, n, pstride int) {
	h, wd, k := s.H, s.W, s.K
	pad := k / 2
	row := 0
	for ci := 0; ci < s.InC; ci++ {
		xbase := ci * h * wd
		for ky := 0; ky < k; ky++ {
			dy := ky - pad
			for kx := 0; kx < k; kx++ {
				dx := kx - pad
				dst := panel[row*pstride : row*pstride+n]
				row++
				j := 0
				for j < n {
					col := c0 + j
					oy, ox := col/wd, col%wd
					run := wd - ox // output pixels left on this image row
					if run > n-j {
						run = n - j
					}
					iy := oy + dy
					if iy < 0 || iy >= h {
						zeroFill(dst[j : j+run])
						j += run
						continue
					}
					// Valid input columns: 0 ≤ ox′+dx < wd for
					// ox′ ∈ [ox, ox+run); zero the clipped edges.
					lo, hi := ox, ox+run
					if -dx > lo {
						lo = -dx
					}
					if wd-dx < hi {
						hi = wd - dx
					}
					if hi <= lo {
						// Fully clipped run: all padding. (Skipping the copy
						// matters — even an empty src[lo+dx:hi+dx] would be
						// out of bounds on the image's last row.)
						zeroFill(dst[j : j+run])
						j += run
						continue
					}
					src := x[xbase+iy*wd:]
					zeroFill(dst[j : j+lo-ox])
					copy(dst[j+lo-ox:j+hi-ox], src[lo+dx:hi+dx])
					zeroFill(dst[j+hi-ox : j+run])
					j += run
				}
			}
		}
	}
}

func zeroFill(s []float32) {
	for i := range s {
		s[i] = 0
	}
}

// gemmRow computes dst = bias + wrow · panel for one output channel
// over one column tile: dst[j] = bias + Σ_r wrow[r]·panel[r][j]. The
// reduction is unrolled ×4 (the LU rung, applied along the channel ×
// tap dimension); each output element keeps a single accumulator
// updated in ascending-r order, matching the naive kernels' summation
// order. The plain gemm rung passes bias 0, which seeds the
// accumulator with the same exact zero as before; the fused rung seeds
// it with the folded bias, saving the separate bias pass.
func gemmRow(wrow, panel, dst []float32, pstride int, bias float32) {
	for j := range dst {
		dst[j] = bias
	}
	n := len(dst)
	r := len(wrow)
	ri := 0
	for ; ri+4 <= r; ri += 4 {
		a0, a1, a2, a3 := wrow[ri], wrow[ri+1], wrow[ri+2], wrow[ri+3]
		p0 := panel[ri*pstride : ri*pstride+n]
		p1 := panel[(ri+1)*pstride : (ri+1)*pstride+n]
		p2 := panel[(ri+2)*pstride : (ri+2)*pstride+n]
		p3 := panel[(ri+3)*pstride : (ri+3)*pstride+n]
		for j := 0; j < n; j++ {
			acc := dst[j] + a0*p0[j]
			acc += a1 * p1[j]
			acc += a2 * p2[j]
			acc += a3 * p3[j]
			dst[j] = acc
		}
	}
	for ; ri < r; ri++ {
		a := wrow[ri]
		p := panel[ri*pstride : ri*pstride+n]
		for j := 0; j < n; j++ {
			dst[j] += a * p[j]
		}
	}
}
