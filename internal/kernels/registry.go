package kernels

import (
	"fmt"
	"sync"
)

// Impl is one rung of the optimization ladder: a matched pair of
// convolution and deconvolution kernels over flat CHW buffers. Rungs
// are registered in ladder order, selectable by name, and every rung
// must agree with the "naive" rung to within the accumulation-order
// tolerance pinned by TestRegistryRungsMatchNaiveOracle.
type Impl struct {
	// Name selects the rung (Select); ladder order is Names() order.
	Name string
	// Desc is a one-line description for benchmark reports.
	Desc string
	// Variant is the closest Table 7 ladder point, used where a rung
	// must be mapped onto the paper's projection model (device.Project
	// only distinguishes the four paper columns).
	Variant Variant
	// Conv computes a stride-1 "same" convolution (weights OutC,InC,K,K).
	Conv func(x, w, out []float32, s ConvShape, workers int)
	// Deconv computes a stride-1 "same" transposed convolution
	// (weights InC,OutC,K,K).
	Deconv func(x, w, out []float32, s ConvShape, workers int)
	// ConvEp, when non-nil, computes Conv with a fused per-output-
	// channel epilogue (bias + optional LeakyReLU applied tile-locally).
	// Only epilogue-capable rungs set it; the fused execution plan
	// (ddnet plan compilation, the bench runner's fused walk) uses it
	// for BN-folded layers and falls back to Conv + separate passes on
	// rungs without it. Transposed convolutions go through ConvEp too,
	// with weights pre-flipped once at plan-compile time
	// (FlipDeconvWeights).
	ConvEp func(x, w, out []float32, s ConvShape, workers int, ep Epilogue)
}

var (
	regMu    sync.RWMutex
	registry = map[string]*Impl{}
	ladder   []string // registration order = ladder order
	defName  string
)

func register(im *Impl) {
	if _, dup := registry[im.Name]; dup {
		panic("kernels: duplicate rung " + im.Name)
	}
	registry[im.Name] = im
	ladder = append(ladder, im.Name)
}

func init() {
	register(&Impl{
		Name:    "naive",
		Desc:    "direct loops; scatter deconvolution with per-tap index decode",
		Variant: Baseline,
		Conv:    convBaseline,
		Deconv:  deconvScatter,
	})
	register(&Impl{
		Name:    "ref",
		Desc:    "§4.2.1 refactoring: gather deconvolution, register accumulation",
		Variant: REF,
		Conv:    convBaseline,
		Deconv:  deconvGather,
	})
	register(&Impl{
		Name:    "ref+pf",
		Desc:    "§4.2.2 prefetching: filter taps staged, bounds hoisted",
		Variant: REFPF,
		Conv:    convPrefetch,
		Deconv:  deconvGatherPrefetch,
	})
	register(&Impl{
		Name:    "ref+pf+lu",
		Desc:    "§4.2.2 loop unrolling: branch-free unrolled interior sweep",
		Variant: REFPFLU,
		Conv:    convUnrolled,
		Deconv:  deconvGatherUnrolled,
	})
	register(&Impl{
		Name:    "gemm",
		Desc:    "im2col + cache-blocked GEMM; tile-staged loads, channel-unrolled micro-kernel",
		Variant: REFPFLU,
		Conv:    convGEMM,
		Deconv:  deconvGEMM,
	})
	register(&Impl{
		Name:    "fused",
		Desc:    "gemm + fused bias/BN/LeakyReLU epilogue; warm-time weight packing, persistent worker pool",
		Variant: REFPFLU,
		Conv:    convGEMM,
		Deconv:  deconvGEMM,
		ConvEp:  ConvFused,
	})
	defName = "fused"
}

// Select returns the named rung.
func Select(name string) (*Impl, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	im, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("kernels: unknown rung %q (have %v)", name, ladder)
	}
	return im, nil
}

// MustSelect is Select for statically known names.
func MustSelect(name string) *Impl {
	im, err := Select(name)
	if err != nil {
		panic(err)
	}
	return im
}

// Names returns the rung names in ladder order (naive first, the
// default fast path last).
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), ladder...)
}

// Default returns the rung used by the autograd fast paths (and so by
// nn/ddnet inference). The naive rung stays available as the
// bit-accuracy oracle.
func Default() *Impl {
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[defName]
}

// SetDefault switches the rung used by the fast paths; it returns an
// error for unknown names. Intended for benchmarks and A/B tests; not
// safe to call concurrently with running inference.
func SetDefault(name string) error {
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[name]; !ok {
		return fmt.Errorf("kernels: unknown rung %q (have %v)", name, ladder)
	}
	defName = name
	return nil
}

// ByVariant maps a Table 7 ladder point to its registry rung. The gemm
// rung sits beyond the paper's ladder and is reachable only by name.
func ByVariant(v Variant) *Impl {
	switch v {
	case Baseline:
		return MustSelect("naive")
	case REF:
		return MustSelect("ref")
	case REFPF:
		return MustSelect("ref+pf")
	default:
		return MustSelect("ref+pf+lu")
	}
}

// BenchShape names one representative DDnet layer shape for the kernel
// benchmarks.
type BenchShape struct {
	Name   string
	Shape  ConvShape
	Deconv bool
}

// Table2Shapes returns representative DDnet layer shapes from the
// paper's Table 2 at the given trunk resolution (512 for the paper;
// benchmarks shrink it). One shape per layer family: the 7×7 stem, the
// dense-block 1×1 bottleneck and 5×5 growth convolutions, the 1×1
// transition, and the decoder's 5×5 and 1×1 deconvolutions.
func Table2Shapes(size int) []BenchShape {
	a := PaperArch()
	f, g := a.BaseChannels, a.Growth
	blockOut := f + a.DenseLayers*g
	h := size / 2 // first encoder / last decoder stage resolution
	return []BenchShape{
		{"stem 7x7", ConvShape{InC: 1, H: size, W: size, OutC: f, K: 7}, false},
		{"bottleneck 1x1", ConvShape{InC: blockOut - g, H: h, W: h, OutC: 4 * g, K: 1}, false},
		{"growth 5x5", ConvShape{InC: 4 * g, H: h, W: h, OutC: g, K: a.Kernel}, false},
		{"transition 1x1", ConvShape{InC: blockOut, H: h, W: h, OutC: f, K: 1}, false},
		{"deconv 5x5", ConvShape{InC: f + blockOut, H: h, W: h, OutC: 2 * f, K: a.Kernel}, true},
		{"deconv 1x1", ConvShape{InC: 2 * f, H: h, W: h, OutC: f, K: 1}, true},
	}
}
