package kernels_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	. "computecovid19/internal/kernels"
)

// refEpilogue applies the epilogue the unfused way: a full bias pass
// then a full activation pass over the finished convolution output.
func refEpilogue(out []float32, s ConvShape, ep Epilogue) {
	cols := s.H * s.W
	if ep.Bias != nil {
		for co := 0; co < s.OutC; co++ {
			b := ep.Bias[co]
			for i := co * cols; i < (co+1)*cols; i++ {
				out[i] += b
			}
		}
	}
	if ep.Act {
		for i, v := range out {
			if v < 0 {
				out[i] = ep.Slope * v
			}
		}
	}
}

// TestConvFusedMatchesSeparatePasses is the fused rung's accuracy
// contract: ConvFused with a bias+LeakyReLU epilogue agrees with the
// same convolution followed by separate bias and activation passes to
// within the ladder's documented ULP budget. The only reassociation is
// the bias seeding the accumulator instead of being added to the
// finished sum, which perturbs each element by at most a few ULPs.
func TestConvFusedMatchesSeparatePasses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		s := ConvShape{
			InC:  1 + rng.Intn(6),
			H:    4 + rng.Intn(28),
			W:    4 + rng.Intn(28),
			OutC: 1 + rng.Intn(6),
			K:    1 + 2*rng.Intn(4),
		}
		x := randSlice(rng, s.InLen())
		w := randSlice(rng, s.WeightLen())
		ep := Epilogue{Bias: randSlice(rng, s.OutC), Act: true, Slope: 0.01}

		want := make([]float32, s.OutLen())
		MustSelect("fused").Conv(x, w, want, s, 1)
		refEpilogue(want, s, ep)

		got := make([]float32, s.OutLen())
		ConvFused(x, w, got, s, 1, ep)
		if u := maxUlps(got, want, cancelFloor(want)); u > oracleBudgetULPs {
			t.Fatalf("trial %d %+v: fused epilogue drifted %d ULPs from separate passes",
				trial, s, u)
		}
	}
}

// TestConvFusedZeroEpilogueBitIdenticalToGEMM pins that an empty
// epilogue degenerates to exactly the gemm rung: same tiling, same
// micro-kernel, accumulator seeded with the same zero.
func TestConvFusedZeroEpilogueBitIdenticalToGEMM(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := ConvShape{InC: 3, H: 23, W: 19, OutC: 4, K: 5}
	x := randSlice(rng, s.InLen())
	w := randSlice(rng, s.WeightLen())
	want := make([]float32, s.OutLen())
	MustSelect("gemm").Conv(x, w, want, s, 1)
	got := make([]float32, s.OutLen())
	ConvFused(x, w, got, s, 1, Epilogue{})
	for i := range want {
		if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
			t.Fatalf("element %d: fused %x != gemm %x",
				i, math.Float32bits(got[i]), math.Float32bits(want[i]))
		}
	}
}

// TestConvFusedPreFlippedBitIdenticalToDeconv pins the warm-time weight
// packing: FlipDeconvWeights once + ConvFused must produce exactly what
// deconvGEMM produces with its per-call flip — the satellite fix that
// hoists the flip out of the hot path must not change a single bit.
func TestConvFusedPreFlippedBitIdenticalToDeconv(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := ConvShape{InC: 5, H: 17, W: 29, OutC: 3, K: 5}
	x := randSlice(rng, s.InLen())
	w := randSlice(rng, s.InC*s.OutC*s.K*s.K)

	want := make([]float32, s.OutLen())
	MustSelect("gemm").Deconv(x, w, want, s, 1)

	wf := make([]float32, len(w))
	FlipDeconvWeights(w, wf, s)
	got := make([]float32, s.OutLen())
	ConvFused(x, wf, got, s, 1, Epilogue{})
	for i := range want {
		if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
			t.Fatalf("element %d: pre-flipped %x != per-call flip %x",
				i, math.Float32bits(got[i]), math.Float32bits(want[i]))
		}
	}
}

// TestConvFusedDeterministicAcrossWorkers extends the ladder's
// bit-determinism property to the epilogue path: the worker count
// changes only which tile runs where, never a single output bit.
func TestConvFusedDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s := ConvShape{InC: 4, H: 31, W: 37, OutC: 5, K: 3}
	x := randSlice(rng, s.InLen())
	w := randSlice(rng, s.WeightLen())
	ep := Epilogue{Bias: randSlice(rng, s.OutC), Act: true, Slope: 0.01}

	want := make([]float32, s.OutLen())
	ConvFused(x, w, want, s, 1, ep)
	for _, workers := range []int{2, 4, 8} {
		got := make([]float32, s.OutLen())
		ConvFused(x, w, got, s, workers, ep)
		for i := range want {
			if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
				t.Fatalf("workers=%d element %d: %x != %x (worker count changed bits)",
					workers, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
			}
		}
	}
}

// TestBNActInferMatchesTwoPass checks the single-pass folded
// BatchNorm+LeakyReLU against the two-pass BatchNormInfer + LeakyReLU
// composition, with the scale/shift folded in float64 the way plan
// compilation does.
func TestBNActInferMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const c, hw = 6, 37 * 41
	x := randSlice(rng, c*hw)
	gamma := randSlice(rng, c)
	beta := randSlice(rng, c)
	mean := randSlice(rng, c)
	variance := make([]float32, c)
	for i := range variance {
		variance[i] = 1 + rng.Float32()
	}
	const eps = 1e-5

	want := append([]float32(nil), x...)
	BatchNormInfer(want, c, 37, 41, gamma, beta, mean, variance, eps, 1)
	LeakyReLU(want, 0.01, 1)

	scale := make([]float32, c)
	shift := make([]float32, c)
	for ci := 0; ci < c; ci++ {
		is := 1 / math.Sqrt(float64(variance[ci])+eps)
		scale[ci] = float32(float64(gamma[ci]) * is)
		shift[ci] = float32(float64(beta[ci]) - float64(mean[ci])*float64(gamma[ci])*is)
	}
	got := make([]float32, len(x))
	BNActInfer(x, got, c, hw, scale, shift, 0.01, 1)
	if u := maxUlps(got, want, cancelFloor(want)); u > oracleBudgetULPs {
		t.Fatalf("single-pass BN+act drifted %d ULPs from the two-pass composition", u)
	}
}

// TestConvFusedTilingRace runs concurrent fused convolutions — each
// internally parallel through the persistent worker pool, each drawing
// im2col panels from the shared memory pool — under the race detector
// (make race covers internal/kernels). Disjoint outputs from shared
// inputs/weights must not race however chunks land on pool workers.
func TestConvFusedTilingRace(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := ConvShape{InC: 6, H: 37, W: 41, OutC: 5, K: 5}
	x := randSlice(rng, s.InLen())
	w := randSlice(rng, s.WeightLen())
	ep := Epilogue{Bias: randSlice(rng, s.OutC), Act: true, Slope: 0.01}
	want := make([]float32, s.OutLen())
	ConvFused(x, w, want, s, 1, ep)

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float32, s.OutLen())
			ConvFused(x, w, out, s, 4, ep)
			for j := range want {
				if math.Float32bits(out[j]) != math.Float32bits(want[j]) {
					t.Errorf("concurrent fused conv diverged at element %d", j)
					return
				}
			}
		}()
	}
	wg.Wait()
}
