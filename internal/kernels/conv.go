package kernels

import "computecovid19/internal/parallel"

// Conv computes a stride-1 "same" convolution out = w ⊛ x on CHW
// buffers. Weights are laid out (OutC, InC, K, K). The work is
// distributed across workers (<=0 means GOMAXPROCS), mirroring the
// OpenCL NDRange mapping. The Variant selects a Table 7 ladder point;
// rungs beyond the paper's ladder (the gemm path) are reachable via
// Select.
func Conv(v Variant, x, w, out []float32, s ConvShape, workers int) {
	ByVariant(v).Conv(x, w, out, s, workers)
}

// convBaseline recomputes every offset in the innermost loops and reads
// the shape struct each iteration — the straight port of the naive
// OpenCL kernel.
func convBaseline(x, w, out []float32, s ConvShape, workers int) {
	pad := s.K / 2
	parallel.ForEach(s.OutC, workers, func(co int) {
		for oy := 0; oy < s.H; oy++ {
			for ox := 0; ox < s.W; ox++ {
				var acc float32
				for ci := 0; ci < s.InC; ci++ {
					for ky := 0; ky < s.K; ky++ {
						for kx := 0; kx < s.K; kx++ {
							iy := oy - pad + ky
							ix := ox - pad + kx
							if iy < 0 || iy >= s.H || ix < 0 || ix >= s.W {
								continue
							}
							acc += x[(ci*s.H+iy)*s.W+ix] *
								w[((co*s.InC+ci)*s.K+ky)*s.K+kx]
						}
					}
				}
				out[(co*s.H+oy)*s.W+ox] = acc
			}
		}
	})
}

// convPrefetch hoists loop bounds into locals and prefetches the filter
// taps of the current (co, ci) pair into a stack buffer before sweeping
// the image (§4.2.2 "memory prefetching").
func convPrefetch(x, w, out []float32, s ConvShape, workers int) {
	h, wd, k, inC := s.H, s.W, s.K, s.InC
	pad := k / 2
	parallel.ForEach(s.OutC, workers, func(co int) {
		obase := co * h * wd
		var taps [49]float32 // k <= 7
		for ci := 0; ci < inC; ci++ {
			wbase := (co*inC + ci) * k * k
			copy(taps[:k*k], w[wbase:wbase+k*k])
			xbase := ci * h * wd
			first := ci == 0
			for oy := 0; oy < h; oy++ {
				for ox := 0; ox < wd; ox++ {
					var acc float32
					for ky := 0; ky < k; ky++ {
						iy := oy - pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						xrow := xbase + iy*wd
						trow := ky * k
						for kx := 0; kx < k; kx++ {
							ix := ox - pad + kx
							if ix < 0 || ix >= wd {
								continue
							}
							acc += x[xrow+ix] * taps[trow+kx]
						}
					}
					if first {
						out[obase+oy*wd+ox] = acc
					} else {
						out[obase+oy*wd+ox] += acc
					}
				}
			}
		}
	})
}

// convUnrolled adds full unrolling of the kx multiply-add loop for the
// DDnet kernel sizes (1, 3, 5), the paper's factor-5 unroll (§4.2.2).
// Interior pixels take the branch-free fast path; borders fall back.
func convUnrolled(x, w, out []float32, s ConvShape, workers int) {
	h, wd, k, inC := s.H, s.W, s.K, s.InC
	pad := k / 2
	if k != 1 && k != 3 && k != 5 {
		convPrefetch(x, w, out, s, workers)
		return
	}
	parallel.ForEach(s.OutC, workers, func(co int) {
		obase := co * h * wd
		var taps [25]float32
		for ci := 0; ci < inC; ci++ {
			wbase := (co*inC + ci) * k * k
			copy(taps[:k*k], w[wbase:wbase+k*k])
			xbase := ci * h * wd
			first := ci == 0
			for oy := 0; oy < h; oy++ {
				interiorY := oy-pad >= 0 && oy+pad < h
				for ox := 0; ox < wd; ox++ {
					var acc float32
					if interiorY && ox-pad >= 0 && ox+pad < wd {
						switch k {
						case 1:
							acc = x[xbase+oy*wd+ox] * taps[0]
						case 3:
							r0 := xbase + (oy-1)*wd + ox - 1
							r1 := r0 + wd
							r2 := r1 + wd
							acc = x[r0]*taps[0] + x[r0+1]*taps[1] + x[r0+2]*taps[2] +
								x[r1]*taps[3] + x[r1+1]*taps[4] + x[r1+2]*taps[5] +
								x[r2]*taps[6] + x[r2+1]*taps[7] + x[r2+2]*taps[8]
						case 5:
							for ky := 0; ky < 5; ky++ {
								r := xbase + (oy-2+ky)*wd + ox - 2
								t := ky * 5
								acc += x[r]*taps[t] + x[r+1]*taps[t+1] + x[r+2]*taps[t+2] +
									x[r+3]*taps[t+3] + x[r+4]*taps[t+4]
							}
						}
					} else {
						for ky := 0; ky < k; ky++ {
							iy := oy - pad + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < k; kx++ {
								ix := ox - pad + kx
								if ix < 0 || ix >= wd {
									continue
								}
								acc += x[xbase+iy*wd+ix] * taps[ky*k+kx]
							}
						}
					}
					if first {
						out[obase+oy*wd+ox] = acc
					} else {
						out[obase+oy*wd+ox] += acc
					}
				}
			}
		}
	})
}
