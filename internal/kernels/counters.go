package kernels

// Counters tallies the global memory traffic and floating-point work of
// a kernel, with the accounting conventions of the paper's Table 6:
// every filter tap contributes two loads (input element and weight) and
// two flops (multiply and add); comparisons are not flops; each output
// element is one store.
type Counters struct {
	Loads  uint64
	Stores uint64
	Flops  uint64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.Flops += o.Flops
}

// Bytes returns the total global memory traffic in bytes (float32
// elements).
func (c Counters) Bytes() uint64 { return 4 * (c.Loads + c.Stores) }

// ConvCounters returns the Table 6 accounting for a stride-1 "same"
// convolution.
func ConvCounters(s ConvShape) Counters {
	taps := uint64(s.InC) * uint64(s.K) * uint64(s.K)
	outs := uint64(s.OutC) * uint64(s.H) * uint64(s.W)
	return Counters{
		Loads:  outs * taps * 2,
		Stores: outs,
		Flops:  outs * taps * 2,
	}
}

// DeconvCounters returns the Table 6 accounting for a stride-1 "same"
// deconvolution (identical totals to the convolution of the same shape;
// the performance difference is access regularity, not volume).
func DeconvCounters(s ConvShape) Counters { return ConvCounters(s) }

// PoolCounters returns the Table 6 accounting for 3×3/s2 max pooling of
// a C×H×W input: nine loads per output, no flops (comparisons are not
// counted).
func PoolCounters(c, h, w int) Counters {
	outs := uint64(c) * uint64(h/2) * uint64(w/2)
	return Counters{Loads: outs * 9, Stores: outs, Flops: 0}
}

// UnpoolCounters returns the Table 6 accounting for 2× bilinear
// un-pooling of a C×H×W input: four loads and fourteen flops per output.
func UnpoolCounters(c, h, w int) Counters {
	outs := uint64(c) * uint64(2*h) * uint64(2*w)
	return Counters{Loads: outs * 4, Stores: outs, Flops: outs * 14}
}

// LeakyReLUCounters returns one load, one store, one flop per element.
func LeakyReLUCounters(n int) Counters {
	return Counters{Loads: uint64(n), Stores: uint64(n), Flops: uint64(n)}
}

// BatchNormCounters returns five loads (x, γ, β, μ, σ²) and five flops
// per element, one store.
func BatchNormCounters(n int) Counters {
	return Counters{Loads: uint64(n) * 5, Stores: uint64(n), Flops: uint64(n) * 5}
}

// ClassCounts groups DDnet's operation counts the way Tables 4, 5 and 7
// report runtimes: the convolution kernel, the deconvolution kernel, and
// everything else (pooling, un-pooling, batch norm, activation).
type ClassCounts struct {
	Conv, Deconv, Other Counters
}

// Total returns the sum over classes.
func (c ClassCounts) Total() Counters {
	t := c.Conv
	t.Add(c.Deconv)
	t.Add(c.Other)
	return t
}

// DDnetCounts walks a DDnet architecture at the given input size and
// accumulates the analytic operation counts per kernel class. Every
// convolution and deconvolution is followed by batch normalization and
// leaky ReLU (counted under Other), matching the network definition.
func DDnetCounts(cfg Arch, size int) ClassCounts {
	var cc ClassCounts
	addBNAct := func(c, h, w int) {
		n := c * h * w
		cc.Other.Add(BatchNormCounters(n))
		cc.Other.Add(LeakyReLUCounters(n))
	}
	f := cfg.BaseChannels
	g := cfg.Growth
	blockOut := f + cfg.DenseLayers*g
	h := size

	// Stem: 7×7 conv, BN, act.
	cc.Conv.Add(ConvCounters(ConvShape{InC: 1, H: h, W: h, OutC: f, K: 7}))
	addBNAct(f, h, h)

	for s := 0; s < cfg.Stages; s++ {
		// Pool halves the resolution.
		cc.Other.Add(PoolCounters(f, h, h))
		h /= 2
		// Dense block: per layer, BN+act+1×1 bottleneck then BN+act+K×K.
		ch := f
		for l := 0; l < cfg.DenseLayers; l++ {
			addBNAct(ch, h, h)
			cc.Conv.Add(ConvCounters(ConvShape{InC: ch, H: h, W: h, OutC: 4 * g, K: 1}))
			addBNAct(4*g, h, h)
			cc.Conv.Add(ConvCounters(ConvShape{InC: 4 * g, H: h, W: h, OutC: g, K: cfg.Kernel}))
			ch += g
		}
		// Transition 1×1 conv + BN + act.
		cc.Conv.Add(ConvCounters(ConvShape{InC: blockOut, H: h, W: h, OutC: f, K: 1}))
		addBNAct(f, h, h)
	}

	for s := 0; s < cfg.Stages; s++ {
		cc.Other.Add(UnpoolCounters(f, h, h))
		h *= 2
		skipCh := blockOut
		if s == cfg.Stages-1 {
			skipCh = f
		}
		cc.Deconv.Add(DeconvCounters(ConvShape{InC: f + skipCh, H: h, W: h, OutC: 2 * f, K: cfg.Kernel}))
		addBNAct(2*f, h, h)
		outCh := f
		if s == cfg.Stages-1 {
			outCh = 1
		}
		cc.Deconv.Add(DeconvCounters(ConvShape{InC: 2 * f, H: h, W: h, OutC: outCh, K: 1}))
		if s != cfg.Stages-1 {
			addBNAct(outCh, h, h)
		}
	}
	return cc
}
