// Package kernels reimplements the paper's OpenCL inference kernels
// (§4.2) as plain Go functions over flat CHW float32 buffers: the six
// operations DDnet inference needs — convolution, deconvolution, max
// pooling, bilinear un-pooling, batch normalization, and leaky ReLU —
// each in the optimization variants of Table 7:
//
//	Baseline   naive loops; the deconvolution uses the scatter
//	           formulation with per-tap integer divisions and recurring
//	           global read-modify-writes
//	REF        the §4.2.1 refactoring: deconvolution gathers input
//	           contributions per output element (inverse coefficient
//	           mapping), accumulating in a register
//	PF         §4.2.2 memory prefetching: loop bounds and filter taps
//	           hoisted into locals before the hot loop
//	LU         §4.2.2 loop unrolling: the multiply-add loop unrolled by
//	           the filter width (fully unrolled for k ≤ 5)
//
// The package also provides the analytic operation counters behind
// Table 6 (global loads, stores, floating-point operations), validated
// against instrumented kernels in the tests.
package kernels

// Variant is an optimization level from Table 7.
type Variant int

// Optimization ladder (cumulative, matching the Table 7 columns).
const (
	Baseline Variant = iota
	REF
	REFPF
	REFPFLU
)

// String names the variant as Table 7 does.
func (v Variant) String() string {
	switch v {
	case Baseline:
		return "Baseline"
	case REF:
		return "Baseline + REF"
	case REFPF:
		return "Baseline + REF + PF"
	case REFPFLU:
		return "Baseline + REF + PF + LU"
	default:
		return "Unknown"
	}
}

// Arch is the subset of the DDnet architecture the kernel-level
// walkers (RunDDnetInference, DDnetCounts) need: a dependency-free
// mirror of ddnet.Config's shape fields. Keeping it here lets the
// autograd fast paths that feed nn/ddnet depend on kernels without an
// import cycle; ddnet.Config.Arch converts.
type Arch struct {
	// BaseChannels is the trunk width F (paper: 16).
	BaseChannels int
	// Growth is the dense-block growth rate (paper: 16).
	Growth int
	// DenseLayers is the number of densely connected layers per block.
	DenseLayers int
	// Kernel is the spatial kernel of growth convolutions and k×k
	// deconvolutions (paper: 5).
	Kernel int
	// Stages is the number of pooling levels / dense blocks.
	Stages int
}

// PaperArch returns the Table 2 architecture (ddnet.PaperConfig's
// shape).
func PaperArch() Arch {
	return Arch{BaseChannels: 16, Growth: 16, DenseLayers: 4, Kernel: 5, Stages: 4}
}

// TinyArch returns the reduced test architecture (ddnet.TinyConfig's
// shape).
func TinyArch() Arch {
	return Arch{BaseChannels: 8, Growth: 8, DenseLayers: 2, Kernel: 3, Stages: 2}
}

// ConvShape describes a stride-1 "same" convolution or deconvolution
// layer on a CHW buffer: InC input channels of H×W, OutC outputs, odd
// square kernel K with padding K/2.
type ConvShape struct {
	InC, H, W, OutC, K int
}

// InLen returns the input buffer length.
func (s ConvShape) InLen() int { return s.InC * s.H * s.W }

// OutLen returns the output buffer length.
func (s ConvShape) OutLen() int { return s.OutC * s.H * s.W }

// WeightLen returns the weight buffer length (OutC·InC·K·K).
func (s ConvShape) WeightLen() int { return s.OutC * s.InC * s.K * s.K }
