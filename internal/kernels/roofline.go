package kernels

import (
	"fmt"
	"math/rand"
	"sync"

	"computecovid19/internal/obs"
)

// Measured joins one DDnet inference's *measured* wall time with the
// *static* Table 6 traffic model, so achieved GFLOP/s and GB/s — a live
// roofline for the Go kernels — fall out per kernel class. The paper
// derives its FPGA/GPU projections from exactly this pairing; here both
// sides come from the same process, so the ratio is honest.
type Measured struct {
	Timing Timing
	Counts ClassCounts
}

// Achieved is one kernel class's measured operating point.
type Achieved struct {
	Seconds float64
	GFLOPS  float64
	GBps    float64
}

func achieved(c Counters, seconds float64) Achieved {
	if seconds <= 0 {
		return Achieved{}
	}
	return Achieved{
		Seconds: seconds,
		GFLOPS:  float64(c.Flops) / seconds / 1e9,
		GBps:    float64(c.Bytes()) / seconds / 1e9,
	}
}

// Conv returns the convolution class's achieved rates.
func (m Measured) Conv() Achieved { return achieved(m.Counts.Conv, m.Timing.Conv.Seconds()) }

// Deconv returns the deconvolution class's achieved rates.
func (m Measured) Deconv() Achieved { return achieved(m.Counts.Deconv, m.Timing.Deconv.Seconds()) }

// Other returns the pool/unpool/BN/activation class's achieved rates.
func (m Measured) Other() Achieved { return achieved(m.Counts.Other, m.Timing.Other.Seconds()) }

// Total returns the whole-inference achieved rates.
func (m Measured) Total() Achieved {
	return achieved(m.Counts.Total(), m.Timing.Total().Seconds())
}

// Telemetry handles for the measured roofline. The gauges hold the
// most recent measurement per (class, rung) pair — one roofline point
// per optimization-ladder rung — and the counters accumulate lifetime
// work, mirroring what a hardware counter would report. Gauges are
// created lazily because the rung set is open (registry).
var (
	kernelFlopsTotal = obs.GetCounter("kernels_flops_total")
	kernelBytesTotal = obs.GetCounter("kernels_bytes_total")
	kernelSeconds    = obs.GetHistogram("kernels_inference_seconds", nil)

	gaugeMu     sync.Mutex
	gflopsByKey = map[string]*obs.Gauge{}
	gbpsByKey   = map[string]*obs.Gauge{}
)

func rooflineGauges(class, rung string) (gflops, gbps *obs.Gauge) {
	gaugeMu.Lock()
	defer gaugeMu.Unlock()
	key := class + "|" + rung
	gflops, ok := gflopsByKey[key]
	if !ok {
		gflops = obs.GetGauge(fmt.Sprintf(`kernels_achieved_gflops{class=%q,rung=%q}`, class, rung))
		gflopsByKey[key] = gflops
	}
	gbps, ok = gbpsByKey[key]
	if !ok {
		gbps = obs.GetGauge(fmt.Sprintf(`kernels_achieved_gbps{class=%q,rung=%q}`, class, rung))
		gbpsByKey[key] = gbps
	}
	return gflops, gbps
}

// MeasureDDnet runs one full DDnet inference with the given Table 7
// optimization variant; see MeasureDDnetImpl.
func MeasureDDnet(cfg Arch, size int, v Variant, workers int, rng *rand.Rand) Measured {
	return MeasureDDnetImpl(cfg, size, ByVariant(v), workers, rng)
}

// MeasureDDnetImpl runs one full DDnet inference with the given
// registry rung, pairs the measured per-class wall time with the
// static counter model, publishes the operating point to obs (span
// "kernels/ddnet_inference", flop/byte counters, per-class-and-rung
// achieved GFLOP/s and GB/s gauges), and returns the pairing.
func MeasureDDnetImpl(cfg Arch, size int, im *Impl, workers int, rng *rand.Rand) Measured {
	sp := obs.Start("kernels/ddnet_inference")
	if sp != nil {
		sp.SetAttr("rung", im.Name)
		sp.SetAttr("variant", im.Variant.String())
		sp.SetAttr("size", size)
		sp.SetAttr("workers", workers)
	}
	t := RunDDnetImpl(cfg, size, im, workers, rng)
	sp.End()

	m := Measured{Timing: t, Counts: DDnetCounts(cfg, size)}
	total := m.Counts.Total()
	kernelFlopsTotal.Add(total.Flops)
	kernelBytesTotal.Add(total.Bytes())
	kernelSeconds.Observe(t.Total().Seconds())
	for _, cl := range []struct {
		name string
		a    Achieved
	}{{"conv", m.Conv()}, {"deconv", m.Deconv()}, {"other", m.Other()}} {
		gflops, gbps := rooflineGauges(cl.name, im.Name)
		gflops.Set(cl.a.GFLOPS)
		gbps.Set(cl.a.GBps)
	}
	return m
}

// String renders the operating point the way a roofline plot reads:
// seconds, then achieved compute and bandwidth per class.
func (m Measured) String() string {
	row := func(name string, a Achieved) string {
		return fmt.Sprintf("%-7s %9.2fms %8.2f GFLOP/s %8.2f GB/s\n",
			name, a.Seconds*1e3, a.GFLOPS, a.GBps)
	}
	return row("conv", m.Conv()) + row("deconv", m.Deconv()) +
		row("other", m.Other()) + row("total", m.Total())
}
