package kernels

import (
	"computecovid19/internal/memplan"
	"computecovid19/internal/parallel"
)

// The fused rung keeps the gemm rung's tiled im2col multiply and adds a
// per-output-channel epilogue — bias add plus optional LeakyReLU —
// applied to each output tile in the same loop that writes it, while
// the tile is still cache-hot. On the unfused path every layer pays two
// extra full feature-map passes (BatchNorm read+write, activation
// read+write) after the convolution; with inference-mode BatchNorm
// folded into the weights at plan-compile time (nn.FoldConvBN), the
// whole conv→BN→LeakyReLU sequence becomes one ConvFused call that
// touches the output exactly once. Transposed convolutions additionally
// stop re-flipping their weights per call: FlipDeconvWeights runs once
// at warm time and the flipped panel is cached in the plan.

// Epilogue is the fused per-output-channel post-processing of ConvFused:
// out[c][·] = act(Σ + Bias[c]), with act = LeakyReLU(Slope) when Act is
// set. A nil Bias adds nothing; the zero Epilogue makes ConvFused
// exactly convGEMM.
type Epilogue struct {
	// Bias is added per output channel, seeding the accumulator (bias
	// and partial products commute bit-exactly only when the bias seeds
	// the sum, which is the order the fused numerics tests document).
	Bias []float32
	// Act applies LeakyReLU with Slope to the biased sum.
	Act bool
	// Slope is the LeakyReLU negative slope.
	Slope float32
}

// ConvFused computes a stride-1 "same" convolution (weights OutC, InC,
// K, K) via the tiled GEMM path with ep applied tile-locally. For
// transposed convolutions pass weights pre-flipped with
// FlipDeconvWeights — a stride-1 deconvolution is exactly a convolution
// with the spatially flipped filter.
func ConvFused(x, w, out []float32, s ConvShape, workers int, ep Epilogue) {
	r := s.InC * s.K * s.K
	cols := s.H * s.W
	tile := gemmPanelFloats / r
	if tile > cols {
		tile = cols
	}
	if tile < 64 {
		tile = 64
	}
	nTiles := (cols + tile - 1) / tile
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	if workers > nTiles {
		workers = nTiles
	}
	if workers == 1 {
		gemmTilesEp(x, w, out, s, r, cols, tile, 0, nTiles, ep)
		return
	}
	parallel.For(nTiles, workers, func(lo, hi int) {
		gemmTilesEp(x, w, out, s, r, cols, tile, lo, hi, ep)
	})
}

// gemmTilesEp is gemmTiles with the epilogue fused into the tile sweep:
// the bias seeds each output element's accumulator (one write saved per
// element) and the activation reruns over the freshly written — still
// L1-resident — tile row instead of a whole-tensor pass later.
func gemmTilesEp(x, w, out []float32, s ConvShape, r, cols, tile, lo, hi int, ep Epilogue) {
	panel := memplan.GetFloats(r * tile)
	for t := lo; t < hi; t++ {
		c0 := t * tile
		n := cols - c0
		if n > tile {
			n = tile
		}
		stagePatchTile(x, panel, s, c0, n, tile)
		for co := 0; co < s.OutC; co++ {
			var bias float32
			if ep.Bias != nil {
				bias = ep.Bias[co]
			}
			dst := out[co*cols+c0 : co*cols+c0+n]
			gemmRow(w[co*r:(co+1)*r], panel, dst, tile, bias)
			if ep.Act {
				slope := ep.Slope
				for j, v := range dst {
					if v < 0 {
						dst[j] = slope * v
					}
				}
			}
		}
	}
	memplan.PutFloats(panel)
}

// FlipDeconvWeights rewrites stride-1 transposed-convolution weights
// from their (InC, OutC, K, K) layout into the spatially flipped
// (OutC, InC, K, K) layout the convolution paths consume. dst must hold
// s.OutC·s.InC·s.K·s.K values (only the channel counts and K of s are
// read). deconvGEMM performs this transform per call into pooled
// scratch; the fused plan runs it once at warm time and caches the
// result.
func FlipDeconvWeights(w, dst []float32, s ConvShape) {
	kk := s.K * s.K
	for ci := 0; ci < s.InC; ci++ {
		for co := 0; co < s.OutC; co++ {
			src := w[(ci*s.OutC+co)*kk : (ci*s.OutC+co+1)*kk]
			d := dst[(co*s.InC+ci)*kk : (co*s.InC+ci+1)*kk]
			for i := 0; i < kk; i++ {
				d[i] = src[kk-1-i]
			}
		}
	}
}

// BNActInfer applies a pre-folded inference BatchNorm and LeakyReLU in
// one pass: out[c][i] = lrelu(scale[c]·x[c][i] + shift[c]). x and out
// may alias (pure elementwise map); hw is the per-channel plane size.
// The unfused path pays two full passes here (BatchNormInfer, then the
// activation); positions where a BatchNorm cannot be folded into a
// neighbouring convolution (DDnet's dense-layer BN1, whose input is a
// concat consumed by other readers) use this instead.
func BNActInfer(x, out []float32, c, hw int, scale, shift []float32, slope float32, workers int) {
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	if workers > c {
		workers = c
	}
	if workers == 1 {
		// Serial fast path before any closure literal: the fused warm
		// forward must stay at 0 allocs/op even though For would run the
		// body inline anyway.
		bnActChannels(x, out, 0, c, hw, scale, shift, slope)
		return
	}
	parallel.For(c, workers, func(lo, hi int) {
		bnActChannels(x, out, lo, hi, hw, scale, shift, slope)
	})
}

func bnActChannels(x, out []float32, lo, hi, hw int, scale, shift []float32, slope float32) {
	for ci := lo; ci < hi; ci++ {
		s, t := scale[ci], shift[ci]
		base := ci * hw
		for i := base; i < base+hw; i++ {
			v := s*x[i] + t
			if v < 0 {
				v = slope * v
			}
			out[i] = v
		}
	}
}
