package kernels

import (
	"math"

	"computecovid19/internal/parallel"
)

// MaxPool applies 3×3/stride-2/pad-1 max pooling per channel (DDnet's
// pooling layer), halving H and W. out must hold C·(H/2)·(W/2) values.
func MaxPool(x, out []float32, c, h, w, workers int) {
	oh, ow := h/2, w/2
	parallel.ForEach(c, workers, func(ci int) {
		xbase := ci * h * w
		obase := ci * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := float32(math.Inf(-1))
				for ky := 0; ky < 3; ky++ {
					iy := oy*2 - 1 + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < 3; kx++ {
						ix := ox*2 - 1 + kx
						if ix < 0 || ix >= w {
							continue
						}
						if v := x[xbase+iy*w+ix]; v > best {
							best = v
						}
					}
				}
				out[obase+oy*ow+ox] = best
			}
		}
	})
}

// Unpool applies 2× bilinear up-sampling per channel (DDnet's
// un-pooling). out must hold C·2H·2W values.
func Unpool(x, out []float32, c, h, w, workers int) {
	oh, ow := 2*h, 2*w
	parallel.ForEach(c, workers, func(ci int) {
		xbase := ci * h * w
		obase := ci * oh * ow
		for oy := 0; oy < oh; oy++ {
			sy := (float32(oy)+0.5)/2 - 0.5
			if sy < 0 {
				sy = 0
			}
			y0 := int(sy)
			if y0 > h-1 {
				y0 = h - 1
			}
			y1 := y0 + 1
			if y1 > h-1 {
				y1 = h - 1
			}
			fy := sy - float32(y0)
			for ox := 0; ox < ow; ox++ {
				sx := (float32(ox)+0.5)/2 - 0.5
				if sx < 0 {
					sx = 0
				}
				x0 := int(sx)
				if x0 > w-1 {
					x0 = w - 1
				}
				x1 := x0 + 1
				if x1 > w-1 {
					x1 = w - 1
				}
				fx := sx - float32(x0)
				v00 := x[xbase+y0*w+x0]
				v01 := x[xbase+y0*w+x1]
				v10 := x[xbase+y1*w+x0]
				v11 := x[xbase+y1*w+x1]
				top := v00 + fx*(v01-v00)
				bot := v10 + fx*(v11-v10)
				out[obase+oy*ow+ox] = top + fy*(bot-top)
			}
		}
	})
}

// LeakyReLU applies max(x, slope·x) in place.
func LeakyReLU(x []float32, slope float32, workers int) {
	parallel.For(len(x), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if x[i] < 0 {
				x[i] *= slope
			}
		}
	})
}

// BatchNormInfer applies the inference-time affine normalization
// y = γ·(x−μ)/√(σ²+ε) + β per channel, in place.
func BatchNormInfer(x []float32, c, h, w int, gamma, beta, mean, variance []float32, eps float32, workers int) {
	parallel.ForEach(c, workers, func(ci int) {
		inv := 1 / float32(math.Sqrt(float64(variance[ci]+eps)))
		g, b, m := gamma[ci], beta[ci], mean[ci]
		base := ci * h * w
		for i := base; i < base+h*w; i++ {
			x[i] = g*(x[i]-m)*inv + b
		}
	})
}

// Concat copies a then b into out (channel concatenation of CHW
// buffers).
func Concat(a, b, out []float32) {
	copy(out, a)
	copy(out[len(a):], b)
}
