// External test package: ag (used for the autograd reference) imports
// kernels for its inference fast path, so an in-package test would
// create an import cycle.
package kernels_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"computecovid19/internal/ag"
	. "computecovid19/internal/kernels"
	"computecovid19/internal/tensor"
)

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32() - 0.5
	}
	return s
}

func maxDiff(a, b []float32) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(float64(a[i] - b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestConvMatchesAutogradReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 3, 5, 7} {
		s := ConvShape{InC: 3, H: 9, W: 11, OutC: 4, K: k}
		x := randSlice(rng, s.InLen())
		w := randSlice(rng, s.WeightLen())
		ref := ag.Conv2D(
			ag.Const(tensor.FromSlice(x, 1, s.InC, s.H, s.W)),
			ag.Const(tensor.FromSlice(w, s.OutC, s.InC, s.K, s.K)),
			nil, ag.Conv2DConfig{Stride: 1, Padding: k / 2})
		for _, v := range []Variant{Baseline, REF, REFPF, REFPFLU} {
			out := make([]float32, s.OutLen())
			Conv(v, x, w, out, s, 1)
			if d := maxDiff(out, ref.T.Data); d > 1e-4 {
				t.Fatalf("k=%d variant %v differs from reference by %v", k, v, d)
			}
		}
	}
}

func TestDeconvVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{1, 3, 5} {
		s := ConvShape{InC: 3, H: 8, W: 10, OutC: 4, K: k}
		x := randSlice(rng, s.InLen())
		w := randSlice(rng, s.InC*s.OutC*s.K*s.K)
		base := make([]float32, s.OutLen())
		Deconv(Baseline, x, w, base, s, 1)
		for _, v := range []Variant{REF, REFPF, REFPFLU} {
			out := make([]float32, s.OutLen())
			Deconv(v, x, w, out, s, 1)
			if d := maxDiff(out, base); d > 1e-4 {
				t.Fatalf("k=%d variant %v differs from scatter baseline by %v", k, v, d)
			}
		}
	}
}

func TestDeconvMatchesAutogradReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := ConvShape{InC: 2, H: 7, W: 7, OutC: 3, K: 5}
	x := randSlice(rng, s.InLen())
	w := randSlice(rng, s.InC*s.OutC*s.K*s.K)
	ref := ag.ConvTranspose2D(
		ag.Const(tensor.FromSlice(x, 1, s.InC, s.H, s.W)),
		ag.Const(tensor.FromSlice(w, s.InC, s.OutC, s.K, s.K)),
		nil, ag.Conv2DConfig{Stride: 1, Padding: 2})
	out := make([]float32, s.OutLen())
	Deconv(Baseline, x, w, out, s, 1)
	if d := maxDiff(out, ref.T.Data); d > 1e-4 {
		t.Fatalf("scatter deconv differs from autograd ConvTranspose2D by %v", d)
	}
}

func TestKernelsParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := ConvShape{InC: 4, H: 12, W: 12, OutC: 6, K: 3}
	x := randSlice(rng, s.InLen())
	w := randSlice(rng, s.WeightLen())
	serial := make([]float32, s.OutLen())
	Conv(REFPFLU, x, w, serial, s, 1)
	par := make([]float32, s.OutLen())
	Conv(REFPFLU, x, w, par, s, 4)
	if d := maxDiff(serial, par); d != 0 {
		t.Fatalf("parallel conv differs from serial by %v", d)
	}
	wd := randSlice(rng, s.InC*s.OutC*s.K*s.K)
	ds := make([]float32, s.OutLen())
	Deconv(Baseline, x, wd, ds, s, 1)
	dp := make([]float32, s.OutLen())
	Deconv(Baseline, x, wd, dp, s, 4)
	if d := maxDiff(ds, dp); d != 0 {
		t.Fatalf("parallel scatter deconv differs from serial by %v", d)
	}
}

func TestMaxPoolMatchesAutograd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, h, w := 3, 12, 16
	x := randSlice(rng, c*h*w)
	out := make([]float32, c*(h/2)*(w/2))
	MaxPool(x, out, c, h, w, 1)
	ref := ag.MaxPool2D(
		ag.Const(tensor.FromSlice(x, 1, c, h, w)),
		ag.Pool2DConfig{Kernel: 3, Stride: 2, Padding: 1})
	if d := maxDiff(out, ref.T.Data); d > 1e-6 {
		t.Fatalf("MaxPool differs from reference by %v", d)
	}
}

func TestUnpoolMatchesAutograd(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c, h, w := 2, 6, 8
	x := randSlice(rng, c*h*w)
	out := make([]float32, c*2*h*2*w)
	Unpool(x, out, c, h, w, 1)
	ref := ag.UpsampleBilinear2D(ag.Const(tensor.FromSlice(x, 1, c, h, w)), 2)
	if d := maxDiff(out, ref.T.Data); d > 1e-5 {
		t.Fatalf("Unpool differs from reference by %v", d)
	}
}

func TestLeakyReLUAndBatchNorm(t *testing.T) {
	x := []float32{-2, -0.5, 0, 1, 3}
	LeakyReLU(x, 0.1, 1)
	want := []float32{-0.2, -0.05, 0, 1, 3}
	if d := maxDiff(x, want); d > 1e-6 {
		t.Fatalf("LeakyReLU = %v", x)
	}
	// BN with γ=2, β=1, μ=1, σ²=4 → y = 2·(x−1)/2 + 1 = x.
	y := []float32{1, 3, 5, 7}
	BatchNormInfer(y, 1, 2, 2, []float32{2}, []float32{1}, []float32{1}, []float32{4}, 0, 1)
	want = []float32{1, 3, 5, 7}
	if d := maxDiff(y, want); d > 1e-5 {
		t.Fatalf("BatchNormInfer = %v, want identity here", y)
	}
}

// Table 6 of the paper: a 512×512×32 feature map with 32 output channels
// and a 5×5 filter.
func TestTable6Counts(t *testing.T) {
	s := ConvShape{InC: 32, H: 512, W: 512, OutC: 32, K: 5}
	conv := ConvCounters(s)
	// Paper: 13421.7×10⁶ loads and flops, 8.4×10⁶ stores.
	if got := float64(conv.Loads) / 1e6; math.Abs(got-13421.7) > 1 {
		t.Fatalf("conv loads = %.1fM, paper says 13421.7M", got)
	}
	if got := float64(conv.Flops) / 1e6; math.Abs(got-13421.7) > 1 {
		t.Fatalf("conv flops = %.1fM, paper says 13421.7M", got)
	}
	if got := float64(conv.Stores) / 1e6; math.Abs(got-8.4) > 0.1 {
		t.Fatalf("conv stores = %.1fM, paper says 8.4M", got)
	}
	if DeconvCounters(s) != conv {
		t.Fatal("deconv counters must equal conv counters (Table 6)")
	}

	pool := PoolCounters(32, 512, 512)
	if got := float64(pool.Loads) / 1e6; math.Abs(got-18.9) > 0.1 {
		t.Fatalf("pool loads = %.1fM, paper says 18.9M", got)
	}
	if got := float64(pool.Stores) / 1e6; math.Abs(got-2.1) > 0.1 {
		t.Fatalf("pool stores = %.1fM, paper says 2.1M", got)
	}
	if pool.Flops != 0 {
		t.Fatal("pooling has no flops in the paper's accounting")
	}

	unpool := UnpoolCounters(32, 512, 512)
	if got := float64(unpool.Loads) / 1e6; math.Abs(got-134.3) > 0.3 {
		t.Fatalf("unpool loads = %.1fM, paper says 134.3M", got)
	}
	if got := float64(unpool.Stores) / 1e6; math.Abs(got-33.5) > 0.1 {
		t.Fatalf("unpool stores = %.1fM, paper says 33.5M", got)
	}
	if got := float64(unpool.Flops) / 1e6; math.Abs(got-469.7) > 1 {
		t.Fatalf("unpool flops = %.1fM, paper says 469.7M", got)
	}

	lr := LeakyReLUCounters(32 * 512 * 512)
	if got := float64(lr.Loads) / 1e6; math.Abs(got-8.4) > 0.1 {
		t.Fatalf("leaky-relu loads = %.1fM, paper says 8.4M", got)
	}

	bn := BatchNormCounters(32 * 512 * 512)
	if got := float64(bn.Loads) / 1e6; math.Abs(got-41.9) > 0.1 {
		t.Fatalf("batchnorm loads = %.1fM, paper says 41.9M", got)
	}
	if got := float64(bn.Stores) / 1e6; math.Abs(got-8.4) > 0.1 {
		t.Fatalf("batchnorm stores = %.1fM, paper says 8.4M", got)
	}
}

// Property: analytic conv counters scale linearly in channels.
func TestCountersLinearity(t *testing.T) {
	f := func(c uint8) bool {
		ci := int(c%8) + 1
		a := ConvCounters(ConvShape{InC: ci, H: 16, W: 16, OutC: 4, K: 3})
		b := ConvCounters(ConvShape{InC: 2 * ci, H: 16, W: 16, OutC: 4, K: 3})
		return b.Loads == 2*a.Loads && b.Flops == 2*a.Flops && b.Stores == a.Stores
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The paper states convolution does ≈1.87× the flops of deconvolution
// in DDnet (37 conv vs 8 deconv layers). With the global shortcuts'
// concatenated channels counted as deconvolution input (as our faithful
// decoder wiring implies) the ratio comes out lower; counting the
// decoder without skip channels reproduces the paper's ≈1.87. Both
// accountings keep conv and deconv within the same order of magnitude,
// which is what Tables 4–7 depend on; EXPERIMENTS.md records the
// difference.
func TestDDnetConvDeconvFlopRatio(t *testing.T) {
	cc := DDnetCounts(PaperArch(), 512)
	ratio := float64(cc.Conv.Flops) / float64(cc.Deconv.Flops)
	if ratio < 0.5 || ratio > 2.6 {
		t.Fatalf("conv/deconv flop ratio = %.2f, expected same order of magnitude", ratio)
	}
	// Both kernel classes are individually in the multi-GFLOP range at
	// 512²; neither may degenerate.
	if cc.Conv.Flops < 1e9 || cc.Deconv.Flops < 1e9 {
		t.Fatalf("implausibly small counts: %+v", cc)
	}
}

// Instrumented micro-kernel: count actual loop iterations and compare
// with the analytic counters for small shapes.
func TestAnalyticCountsMatchInstrumentedConv(t *testing.T) {
	s := ConvShape{InC: 2, H: 6, W: 6, OutC: 3, K: 3}
	var loads, stores, flops uint64
	pad := s.K / 2
	for co := 0; co < s.OutC; co++ {
		for oy := 0; oy < s.H; oy++ {
			for ox := 0; ox < s.W; ox++ {
				for ci := 0; ci < s.InC; ci++ {
					for ky := 0; ky < s.K; ky++ {
						for kx := 0; kx < s.K; kx++ {
							// Table 6 convention: every tap counts, with
							// zero padding materialized.
							_ = pad
							loads += 2
							flops += 2
						}
					}
				}
				stores++
			}
		}
	}
	got := ConvCounters(s)
	if got.Loads != loads || got.Stores != stores || got.Flops != flops {
		t.Fatalf("analytic %+v vs instrumented loads=%d stores=%d flops=%d",
			got, loads, stores, flops)
	}
}

func TestRunDDnetInferenceProducesTimings(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := TinyArch()
	tm := RunDDnetInference(cfg, 32, REFPFLU, 1, rng)
	if tm.Conv <= 0 || tm.Deconv <= 0 || tm.Other <= 0 {
		t.Fatalf("timings must be positive: %+v", tm)
	}
	if tm.Total() != tm.Conv+tm.Deconv+tm.Other {
		t.Fatal("Total must be the sum of the classes")
	}
}

func TestScatterSlowerThanGather(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	rng := rand.New(rand.NewSource(8))
	cfg := TinyArch()
	// One warmup, then compare. The scatter deconvolution's recurring
	// global read-modify-writes must cost more than the gather version.
	RunDDnetInference(cfg, 64, REF, 1, rng)
	base := RunDDnetInference(cfg, 64, Baseline, 1, rng)
	ref := RunDDnetInference(cfg, 64, REF, 1, rng)
	if base.Deconv <= ref.Deconv {
		t.Logf("warning: scatter (%v) not slower than gather (%v) at this size",
			base.Deconv, ref.Deconv)
	}
}

func TestVariantStrings(t *testing.T) {
	for _, v := range []Variant{Baseline, REF, REFPF, REFPFLU} {
		if v.String() == "Unknown" || v.String() == "" {
			t.Fatalf("variant %d has no name", v)
		}
	}
}

// The rung benchmarks drive every registry entry on a DDnet-like 5×5
// shape; scripts/benchcheck.sh diffs their ns/op against a baseline
// checkout, so keep the names stable.
func BenchmarkConvRungs(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	s := ConvShape{InC: 8, H: 64, W: 64, OutC: 8, K: 5}
	x := randSlice(rng, s.InLen())
	w := randSlice(rng, s.WeightLen())
	out := make([]float32, s.OutLen())
	for _, name := range Names() {
		im := MustSelect(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				im.Conv(x, w, out, s, 1)
			}
		})
	}
}

func BenchmarkDeconvRungs(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	s := ConvShape{InC: 8, H: 64, W: 64, OutC: 8, K: 5}
	x := randSlice(rng, s.InLen())
	w := randSlice(rng, s.InC*s.OutC*s.K*s.K)
	out := make([]float32, s.OutLen())
	for _, name := range Names() {
		im := MustSelect(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				im.Deconv(x, w, out, s, 1)
			}
		})
	}
}
