package kernels_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	. "computecovid19/internal/kernels"
)

// ulpOrder maps a float32 onto the integer line so that adjacent
// representable values differ by 1 (the standard sign-magnitude →
// two's-complement trick).
func ulpOrder(f float32) int64 {
	u := math.Float32bits(f)
	if u&0x80000000 != 0 {
		return -int64(u & 0x7fffffff)
	}
	return int64(u)
}

func ulpDiff(a, b float32) int64 {
	d := ulpOrder(a) - ulpOrder(b)
	if d < 0 {
		d = -d
	}
	return d
}

// maxUlps returns the worst per-element ULP distance between two
// buffers, ignoring elements within absFloor of each other (outputs
// near zero carry no relative-accuracy guarantee after cancellation).
func maxUlps(a, b []float32, absFloor float32) int64 {
	var worst int64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d <= absFloor {
			continue
		}
		if u := ulpDiff(a[i], b[i]); u > worst {
			worst = u
		}
	}
	return worst
}

// cancelFloor is the absolute-error floor used alongside the ULP
// budget: 1e-5 × ‖ref‖∞ (at least 1e-6). Outputs that nearly cancel
// sit many ULPs from the oracle while being absolutely tiny; scaling
// the floor to the buffer's dynamic range forgives exactly that case,
// while a dropped tap or flipped index perturbs an element by O(‖ref‖∞)
// — four-plus orders of magnitude above the floor.
func cancelFloor(ref []float32) float32 {
	var m float32
	for _, v := range ref {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	f := 1e-5 * m
	if f < 1e-6 {
		f = 1e-6
	}
	return f
}

// oracleBudgetULPs is the documented accuracy contract of the ladder:
// every rung must agree with the "naive" rung to within this many
// float32 ULPs per element (with cancelFloor's magnitude-scaled
// absolute floor). Bit-identity is impossible in general — the PF rung sums
// per-input-channel partials before combining, the LU and GEMM rungs
// unroll the reduction — and each reassociation legally perturbs the
// result by a few ULPs. 512 ULPs (≈6e-5 relative) is orders of
// magnitude above reassociation noise and orders of magnitude below
// what a dropped tap, flipped index, or off-by-one pad would cause.
const oracleBudgetULPs = 512

// TestRegistryRungsMatchNaiveOracle is the bit-accuracy oracle test:
// every registry rung, conv and deconv, serial and parallel, across
// randomized shapes covering DDnet's Table 2 kernel sizes (1, 3, 5 —
// plus the 7×7 stem) and the stride-1 "same" pad edge cases (images
// as small as the kernel itself, channel counts straddling the ×4
// reduction-unroll boundary).
func TestRegistryRungsMatchNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	naive := MustSelect("naive")
	for iter := 0; iter < 30; iter++ {
		k := []int{1, 3, 5, 7}[rng.Intn(4)]
		s := ConvShape{
			InC:  1 + rng.Intn(9),
			OutC: 1 + rng.Intn(9),
			H:    k + rng.Intn(14),
			W:    k + rng.Intn(14),
			K:    k,
		}
		x := randSlice(rng, s.InLen())
		cw := randSlice(rng, s.WeightLen())
		dw := randSlice(rng, s.InC*s.OutC*s.K*s.K)

		convRef := make([]float32, s.OutLen())
		naive.Conv(x, cw, convRef, s, 1)
		deconvRef := make([]float32, s.OutLen())
		naive.Deconv(x, dw, deconvRef, s, 1)

		for _, name := range Names() {
			im := MustSelect(name)
			for _, workers := range []int{1, 4} {
				out := make([]float32, s.OutLen())
				im.Conv(x, cw, out, s, workers)
				if u := maxUlps(out, convRef, cancelFloor(convRef)); u > oracleBudgetULPs {
					t.Fatalf("shape %+v: conv rung %q (workers=%d) is %d ULPs from naive (budget %d)",
						s, name, workers, u, oracleBudgetULPs)
				}
				out = make([]float32, s.OutLen())
				im.Deconv(x, dw, out, s, workers)
				if u := maxUlps(out, deconvRef, cancelFloor(deconvRef)); u > oracleBudgetULPs {
					t.Fatalf("shape %+v: deconv rung %q (workers=%d) is %d ULPs from naive (budget %d)",
						s, name, workers, u, oracleBudgetULPs)
				}
			}
		}
	}
}

// TestRungsMatchNaiveOnTable2Shapes runs the oracle over the real
// benchmark shapes. These are big enough that the GEMM rung splits
// column tiles mid-row (the small randomized shapes above never do),
// which is exactly the regime where a staging-edge-case bug hides.
func TestRungsMatchNaiveOnTable2Shapes(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	naive := MustSelect("naive")
	for _, bs := range Table2Shapes(64) {
		s := bs.Shape
		x := randSlice(rng, s.InLen())
		var w []float32
		if bs.Deconv {
			w = randSlice(rng, s.InC*s.OutC*s.K*s.K)
		} else {
			w = randSlice(rng, s.WeightLen())
		}
		ref := make([]float32, s.OutLen())
		if bs.Deconv {
			naive.Deconv(x, w, ref, s, 1)
		} else {
			naive.Conv(x, w, ref, s, 1)
		}
		for _, name := range Names() {
			im := MustSelect(name)
			out := make([]float32, s.OutLen())
			if bs.Deconv {
				im.Deconv(x, w, out, s, 4)
			} else {
				im.Conv(x, w, out, s, 4)
			}
			if u := maxUlps(out, ref, cancelFloor(ref)); u > oracleBudgetULPs {
				t.Fatalf("%s: rung %q is %d ULPs from naive (budget %d)",
					bs.Name, name, u, oracleBudgetULPs)
			}
		}
	}
}

// TestRungsDeterministicAcrossWorkers pins a stronger property than the
// oracle budget: within one rung, the worker count must not change a
// single bit (tiles and channel rows partition the output, and each
// output element's accumulation order is fixed). This is what lets
// serve micro-batch on warm weights without result drift.
func TestRungsDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	s := ConvShape{InC: 5, H: 23, W: 29, OutC: 7, K: 5}
	x := randSlice(rng, s.InLen())
	cw := randSlice(rng, s.WeightLen())
	dw := randSlice(rng, s.InC*s.OutC*s.K*s.K)
	for _, name := range Names() {
		im := MustSelect(name)
		c1 := make([]float32, s.OutLen())
		im.Conv(x, cw, c1, s, 1)
		c8 := make([]float32, s.OutLen())
		im.Conv(x, cw, c8, s, 8)
		if d := maxDiff(c1, c8); d != 0 {
			t.Fatalf("rung %q conv: workers=8 differs from serial by %v", name, d)
		}
		d1 := make([]float32, s.OutLen())
		im.Deconv(x, dw, d1, s, 1)
		d8 := make([]float32, s.OutLen())
		im.Deconv(x, dw, d8, s, 8)
		if d := maxDiff(d1, d8); d != 0 {
			t.Fatalf("rung %q deconv: workers=8 differs from serial by %v", name, d)
		}
	}
}

// TestGatherDeconvTilingRace exercises the gather/GEMM deconvolution
// tiling under the race detector (make race covers internal/kernels):
// concurrent inferences on shared inputs/weights with disjoint outputs,
// each internally parallel, must not race — the property that makes
// the REF refactoring parallelize over output tiles with no scatter
// conflicts.
func TestGatherDeconvTilingRace(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	s := ConvShape{InC: 6, H: 37, W: 41, OutC: 5, K: 5}
	x := randSlice(rng, s.InLen())
	w := randSlice(rng, s.InC*s.OutC*s.K*s.K)
	want := make([]float32, s.OutLen())
	MustSelect("ref").Deconv(x, w, want, s, 1)

	var wg sync.WaitGroup
	for _, name := range []string{"ref", "ref+pf", "ref+pf+lu", "gemm", "fused"} {
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				out := make([]float32, s.OutLen())
				MustSelect(name).Deconv(x, w, out, s, 4)
				if u := maxUlps(out, want, cancelFloor(want)); u > oracleBudgetULPs {
					t.Errorf("concurrent %q deconv drifted %d ULPs from gather reference", name, u)
				}
			}(name)
		}
	}
	wg.Wait()
}

func TestRegistrySelection(t *testing.T) {
	if _, err := Select("no-such-rung"); err == nil {
		t.Fatal("Select must reject unknown rungs")
	}
	names := Names()
	if len(names) < 5 || names[0] != "naive" {
		t.Fatalf("ladder order wrong: %v", names)
	}
	for _, n := range names {
		im := MustSelect(n)
		if im.Name != n || im.Conv == nil || im.Deconv == nil || im.Desc == "" {
			t.Fatalf("rung %q incomplete: %+v", n, im)
		}
	}
	old := Default().Name
	defer func() {
		if err := SetDefault(old); err != nil {
			t.Fatal(err)
		}
	}()
	if err := SetDefault("naive"); err != nil {
		t.Fatal(err)
	}
	if Default().Name != "naive" {
		t.Fatal("SetDefault did not take effect")
	}
	if err := SetDefault("no-such-rung"); err == nil {
		t.Fatal("SetDefault must reject unknown rungs")
	}
	if ByVariant(Baseline).Name != "naive" || ByVariant(REFPFLU).Name != "ref+pf+lu" {
		t.Fatal("ByVariant mapping wrong")
	}
}

func TestTable2Shapes(t *testing.T) {
	shapes := Table2Shapes(512)
	if len(shapes) != 6 {
		t.Fatalf("want 6 representative shapes, got %d", len(shapes))
	}
	var grow, deconv bool
	for _, bs := range shapes {
		if bs.Shape.K%2 != 1 || bs.Shape.InLen() <= 0 || bs.Shape.OutLen() <= 0 {
			t.Fatalf("degenerate shape %+v", bs)
		}
		if bs.Name == "growth 5x5" && bs.Shape.K == 5 && bs.Shape.InC == 64 && bs.Shape.OutC == 16 {
			grow = true
		}
		deconv = deconv || bs.Deconv
	}
	if !grow || !deconv {
		t.Fatalf("Table2Shapes missing the 5x5 growth conv or any deconv: %+v", shapes)
	}
}
