package kernels

import (
	"math/rand"
	"time"
)

// Timing is the per-kernel-class wall time of one DDnet inference, the
// split Table 5 reports.
type Timing struct {
	Conv, Deconv, Other time.Duration
}

// Total returns the end-to-end inference time.
func (t Timing) Total() time.Duration { return t.Conv + t.Deconv + t.Other }

// Add accumulates o into t.
func (t *Timing) Add(o Timing) {
	t.Conv += o.Conv
	t.Deconv += o.Deconv
	t.Other += o.Other
}

// Scale multiplies every component by f.
func (t Timing) Scale(f float64) Timing {
	return Timing{
		Conv:   time.Duration(float64(t.Conv) * f),
		Deconv: time.Duration(float64(t.Deconv) * f),
		Other:  time.Duration(float64(t.Other) * f),
	}
}

// RunDDnetInference executes the full DDnet inference kernel sequence
// on a size×size image using the given Table 7 optimization variant.
// Rungs beyond the paper's ladder run through RunDDnetImpl.
func RunDDnetInference(cfg Arch, size int, v Variant, workers int, rng *rand.Rand) Timing {
	return RunDDnetImpl(cfg, size, ByVariant(v), workers, rng)
}

// RunDDnetImpl executes the full DDnet inference kernel sequence
// (stem, dense blocks with transitions and pools, un-pooling decoder
// with global shortcuts) on a size×size image using the given registry
// rung, and returns the measured per-class wall time. This is the CPU
// "OpenCL runtime" measurement feeding Tables 4, 5 and 7; weights are
// random, as only the data movement and arithmetic are being measured.
//
// Epilogue-capable rungs (im.ConvEp != nil) are measured the way the
// fused execution plan actually runs them: each conv/deconv→BN→act
// triple becomes one ConvEp call (the BN fold and the deconv weight
// flip happen at plan-compile time, i.e. outside the timed region —
// random weights stand in for folded ones since only data movement and
// arithmetic are measured), and the unfoldable dense-layer BN1
// positions run the single-pass BNActInfer instead of BatchNorm +
// activation passes.
func RunDDnetImpl(cfg Arch, size int, im *Impl, workers int, rng *rand.Rand) Timing {
	var t Timing
	f := cfg.BaseChannels
	g := cfg.Growth
	blockOut := f + cfg.DenseLayers*g
	h := size
	fused := im.ConvEp != nil

	randBuf := func(n int) []float32 {
		b := make([]float32, n)
		for i := range b {
			b[i] = rng.Float32() - 0.5
		}
		return b
	}
	timeIt := func(class *time.Duration, fn func()) {
		start := time.Now()
		fn()
		*class += time.Since(start)
	}
	bnAct := func(x []float32, c, hh int) {
		if fused {
			// The fused plan folds this BatchNorm into the preceding
			// convolution's epilogue; conv/deconvEp below timed it.
			panic("kernels: bnAct reached on the fused path")
		}
		gamma := randBuf(c)
		beta := randBuf(c)
		mean := randBuf(c)
		variance := make([]float32, c)
		for i := range variance {
			variance[i] = 1 + rng.Float32()
		}
		timeIt(&t.Other, func() {
			BatchNormInfer(x, c, hh, hh, gamma, beta, mean, variance, 1e-5, workers)
			LeakyReLU(x, 0.01, workers)
		})
	}
	// convBN is one conv→BN→act position: one epilogue call on the
	// fused path, conv plus two separate full passes otherwise.
	convBN := func(x, w, out []float32, s ConvShape, hh int) {
		if fused {
			b := randBuf(s.OutC) // stands in for the plan's folded bias
			timeIt(&t.Conv, func() {
				im.ConvEp(x, w, out, s, workers, Epilogue{Bias: b, Act: true, Slope: 0.01})
			})
			return
		}
		timeIt(&t.Conv, func() { im.Conv(x, w, out, s, workers) })
		bnAct(out, s.OutC, hh)
	}
	// deconvBN is one deconv(→BN→act) position. The fused path consumes
	// the plan's pre-flipped weight panel (flip outside the timed
	// region), the unfused path pays the rung's own per-call handling.
	deconvBN := func(x, w, out []float32, s ConvShape, hh int, withBN bool) {
		if fused {
			wf := make([]float32, len(w))
			FlipDeconvWeights(w, wf, s)
			ep := Epilogue{}
			if withBN {
				ep = Epilogue{Bias: randBuf(s.OutC), Act: true, Slope: 0.01}
			}
			timeIt(&t.Deconv, func() { im.ConvEp(x, wf, out, s, workers, ep) })
			return
		}
		timeIt(&t.Deconv, func() { im.Deconv(x, w, out, s, workers) })
		if withBN {
			bnAct(out, s.OutC, hh)
		}
	}

	// Stem.
	x := randBuf(size * size)
	cur := make([]float32, f*h*h)
	{
		s := ConvShape{InC: 1, H: h, W: h, OutC: f, K: 7}
		w := randBuf(s.WeightLen())
		convBN(x, w, cur, s, h)
	}

	skips := [][]float32{append([]float32(nil), cur...)} // stem skip
	skipCh := []int{f}
	skipH := []int{h}

	for st := 0; st < cfg.Stages; st++ {
		pooled := make([]float32, f*(h/2)*(h/2))
		timeIt(&t.Other, func() { MaxPool(cur, pooled, f, h, h, workers) })
		h /= 2

		// Dense block: features grow from f to blockOut channels.
		features := make([]float32, blockOut*h*h)
		copy(features, pooled)
		ch := f
		for l := 0; l < cfg.DenseLayers; l++ {
			in := append([]float32(nil), features[:ch*h*h]...)
			if fused {
				// BN1 cannot fold into a neighbouring convolution (its
				// input is the concat, read by other consumers): the
				// plan runs the single-pass folded BN + activation.
				scale := randBuf(ch)
				shift := randBuf(ch)
				timeIt(&t.Other, func() {
					BNActInfer(in, in, ch, h*h, scale, shift, 0.01, workers)
				})
			} else {
				bnAct(in, ch, h)
			}
			s1 := ConvShape{InC: ch, H: h, W: h, OutC: 4 * g, K: 1}
			mid := make([]float32, s1.OutLen())
			w1 := randBuf(s1.WeightLen())
			convBN(in, w1, mid, s1, h)
			s2 := ConvShape{InC: 4 * g, H: h, W: h, OutC: g, K: cfg.Kernel}
			grow := features[ch*h*h : (ch+g)*h*h]
			w2 := randBuf(s2.WeightLen())
			// The growth conv has no BN/act of its own (its output joins
			// the dense concat raw) — plain conv on every rung.
			timeIt(&t.Conv, func() { im.Conv(mid, w2, grow, s2, workers) })
			ch += g
		}
		if st < cfg.Stages-1 {
			skips = append(skips, append([]float32(nil), features...))
			skipCh = append(skipCh, blockOut)
			skipH = append(skipH, h)
		}

		// Transition 1×1.
		s := ConvShape{InC: blockOut, H: h, W: h, OutC: f, K: 1}
		cur = make([]float32, s.OutLen())
		w := randBuf(s.WeightLen())
		convBN(features, w, cur, s, h)
	}

	for st := 0; st < cfg.Stages; st++ {
		up := make([]float32, f*(2*h)*(2*h))
		timeIt(&t.Other, func() { Unpool(cur, up, f, h, h, workers) })
		h *= 2

		skip := skips[len(skips)-1-st]
		sc := skipCh[len(skipCh)-1-st]
		if skipH[len(skipH)-1-st] != h {
			panic("kernels: decoder/skip resolution mismatch")
		}
		cat := make([]float32, (f+sc)*h*h)
		timeIt(&t.Other, func() { Concat(up, skip, cat) })

		sA := ConvShape{InC: f + sc, H: h, W: h, OutC: 2 * f, K: cfg.Kernel}
		bufA := make([]float32, sA.OutLen())
		wA := randBuf(sA.WeightLen())
		deconvBN(cat, wA, bufA, sA, h, true)

		outCh := f
		if st == cfg.Stages-1 {
			outCh = 1
		}
		sB := ConvShape{InC: 2 * f, H: h, W: h, OutC: outCh, K: 1}
		cur = make([]float32, sB.OutLen())
		wB := randBuf(sB.WeightLen())
		deconvBN(bufA, wB, cur, sB, h, st != cfg.Stages-1)
	}
	return t
}
