package kernels_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	. "computecovid19/internal/kernels"
	"computecovid19/internal/obs"
)

// TestMeasureDDnet checks the live-roofline wrapper: achieved rates
// must be finite and positive, consistent with Counters/wall-time
// division, and published as gauges in the default registry.
func TestMeasureDDnet(t *testing.T) {
	m := MeasureDDnet(TinyArch(), 32, REFPFLU, 1, rand.New(rand.NewSource(1)))

	tot := m.Total()
	if tot.Seconds <= 0 {
		t.Fatalf("total seconds = %v, want > 0", tot.Seconds)
	}
	if tot.GFLOPS <= 0 || tot.GBps <= 0 {
		t.Fatalf("achieved rates GFLOPS=%v GBps=%v, want both > 0", tot.GFLOPS, tot.GBps)
	}
	conv := m.Conv()
	wantGFLOPS := float64(m.Counts.Conv.Flops) / conv.Seconds / 1e9
	if diff := conv.GFLOPS - wantGFLOPS; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("conv GFLOPS = %v, want flops/seconds = %v", conv.GFLOPS, wantGFLOPS)
	}

	var buf bytes.Buffer
	if err := obs.Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`kernels_achieved_gflops{class="conv",rung="ref+pf+lu"}`,
		`kernels_achieved_gbps{class="deconv",rung="ref+pf+lu"}`,
		"kernels_flops_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Prometheus export missing %q:\n%s", want, out)
		}
	}

	if s := m.String(); !strings.Contains(s, "conv") || !strings.Contains(s, "GFLOP") {
		t.Fatalf("Measured.String() = %q, want a per-class roofline table", s)
	}
}
