package experiments

import (
	"fmt"
	"math/rand"

	"computecovid19/internal/classify"
	"computecovid19/internal/core"
	"computecovid19/internal/ctsim"
	"computecovid19/internal/dataset"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/metrics"
	"computecovid19/internal/phantom"
	"computecovid19/internal/tensor"
	"computecovid19/internal/volume"
)

// DenoisingAblation compares the three low-dose strategies the paper's
// related-work section frames against each other (§6.3): plain FBP,
// regularized iterative reconstruction (SART), and FBP followed by
// DDnet enhancement — all on the same noisy acquisitions.
type DenoisingAblation struct {
	// Per-method mean image quality against the clean phantoms.
	FBPMSE, SARTMSE, DDnetMSE    float64
	FBPSSIM, SARTSSIM, DDnetSSIM float64
	Images                       int
}

// RunDenoisingAblation trains a small DDnet at the given dose and then
// scores the three methods on held-out acquisitions.
func RunDenoisingAblation(cfg Config) DenoisingAblation {
	size := 32
	trainN, testN := 12, 5
	epochs := 10
	if cfg.Quick {
		trainN, testN, epochs = 8, 3, 6
	}
	const photons = 300.0

	// Train DDnet on FBP reconstructions at this dose.
	ecfg := dataset.EnhancementConfig{
		Size: size, Count: trainN, Views: 120, Detectors: 64,
		PhotonsPerRay: 1e6, DoseDivisor: 1e6 / photons,
		LesionFraction: 0.5, Seed: cfg.Seed + 40,
	}
	net := ddnet.New(rand.New(rand.NewSource(cfg.Seed+41)), ddnet.TinyConfig())
	tc := core.DefaultEnhancerTraining()
	tc.Epochs = epochs
	tc.Seed = cfg.Seed + 42
	core.TrainEnhancer(net, dataset.BuildEnhancement(ecfg), tc)

	// Held-out acquisitions, evaluated with all three methods.
	rng := rand.New(rand.NewSource(cfg.Seed + 43))
	grid := ctsim.Grid{Size: size, PixelSize: 360.0 / float64(size)}
	fan := ctsim.PaperFanGeometry(grid.FOV())
	fan.NumViews, fan.NumDetectors = 120, 64
	fan.DetectorSpacing = grid.FOV() * 1.5 * (fan.SDD / fan.SOD) / float64(fan.NumDetectors)

	var out DenoisingAblation
	out.Images = testN
	for i := 0; i < testN; i++ {
		chest := phantom.NewChest(rng, size, 1)
		if i%2 == 0 {
			chest.AddRandomLesions(rng, 2, 0.8)
		}
		hu := chest.SliceHU(0)
		clean := normalizeHUSlice(hu, size)

		mu := ctsim.HUImageToMu(hu)
		sino := ctsim.ForwardProjectFan(grid, mu, fan)
		noisy := ctsim.ApplyPoissonNoise(sino, photons, rng)

		fbpMu := ctsim.ReconstructFan(noisy, grid, fan, ctsim.RamLak)
		fbp := normalizeHUSlice(ctsim.MuImageToHU(fbpMu), size)

		sartOpt := ctsim.DefaultSART()
		sartOpt.Smooth = 0.2
		sartMu := ctsim.ReconstructSARTFan(noisy, grid, fan, sartOpt)
		sart := normalizeHUSlice(ctsim.MuImageToHU(sartMu), size)

		enhanced := net.Enhance(fbp)

		n := float64(testN)
		out.FBPMSE += metrics.MSE(clean, fbp) / n
		out.SARTMSE += metrics.MSE(clean, sart) / n
		out.DDnetMSE += metrics.MSE(clean, enhanced) / n
		out.FBPSSIM += metrics.SSIM(clean, fbp) / n
		out.SARTSSIM += metrics.SSIM(clean, sart) / n
		out.DDnetSSIM += metrics.SSIM(clean, enhanced) / n
	}
	return out
}

func normalizeHUSlice(hu []float32, size int) *tensor.Tensor {
	t := tensor.New(size, size)
	for i, v := range hu {
		t.Data[i] = float32(ctsim.NormalizeHU(float64(v), ctsim.FullWindowLo, ctsim.FullWindowHi))
	}
	return t
}

// Ablation renders the denoising comparison table.
func Ablation(cfg Config) string {
	a := RunDenoisingAblation(cfg)
	t := &table{header: []string{"Method", "MSE", "SSIM"}}
	t.add("FBP (Ram-Lak)", fmt.Sprintf("%.5f", a.FBPMSE), fmt.Sprintf("%.4f", a.FBPSSIM))
	t.add("Regularized SART", fmt.Sprintf("%.5f", a.SARTMSE), fmt.Sprintf("%.4f", a.SARTSSIM))
	t.add("FBP + DDnet (this work)", fmt.Sprintf("%.5f", a.DDnetMSE), fmt.Sprintf("%.4f", a.DDnetSSIM))
	return fmt.Sprintf("Ablation: low-dose strategies at 300 photons/ray, %d held-out images\n%s",
		a.Images, t.String())
}

// DimensionalityResult compares the 2D slice-based baseline (§6.2.1's
// family, trained with weak scan-level labels) against the paper's 3D
// classifier on the same cohort.
type DimensionalityResult struct {
	AUC2D, AUC3D float64
	TestCases    int
}

// RunDimensionality trains both classifiers on one synthetic cohort and
// scores them on a held-out split.
func RunDimensionality(cfg Config) DimensionalityResult {
	count, epochs := 36, 18
	if cfg.Quick {
		count, epochs = 24, 16
	}
	ccfg := dataset.DefaultCohortConfig()
	ccfg.Count = count
	ccfg.Size, ccfg.Depth = 32, 8
	ccfg.Severity = 1.0
	ccfg.Seed = cfg.Seed + 50
	cohort := dataset.BuildCohort(ccfg)
	trainCases, _, testCases := dataset.Split(cohort, 0.6, 0)

	// 3D: the paper's pipeline classifier.
	cls3 := classify.New(rand.New(rand.NewSource(cfg.Seed+51)), classify.SmallConfig())
	tc := core.DefaultClassifierTraining()
	tc.Epochs = epochs
	tc.LR = 5e-3
	tc.Augment = false
	tc.Seed = cfg.Seed + 52
	core.TrainClassifier(cls3, trainCases, tc)
	pipe := core.NewPipeline(nil, cls3)
	probs3, labels := pipe.Score(testCases)

	// 2D: weakly-labelled slice classifier on the same masked inputs.
	var vols []*volume.Volume
	var trainLabels []bool
	for _, c := range trainCases {
		in := core.PrepareClassifierInput(nil, c.Volume)
		vols = append(vols, volume.FromTensor(in.Reshape(c.Volume.D, c.Volume.H, c.Volume.W)))
		trainLabels = append(trainLabels, c.Label)
	}
	cls2 := classify.NewSlice2D(rand.New(rand.NewSource(cfg.Seed+53)), 8, 0.05)
	cls2.TrainWeaklyLabelled(vols, trainLabels, epochs, 8, 3e-3, cfg.Seed+54)
	var probs2 []float64
	for _, c := range testCases {
		in := core.PrepareClassifierInput(nil, c.Volume)
		probs2 = append(probs2, cls2.PredictVolume(volume.FromTensor(in.Reshape(c.Volume.D, c.Volume.H, c.Volume.W))))
	}

	return DimensionalityResult{
		AUC2D:     metrics.AUC(probs2, labels),
		AUC3D:     metrics.AUC(probs3, labels),
		TestCases: len(testCases),
	}
}

// Dimensionality renders the 2D-vs-3D comparison (paper §6.2 / Table 10
// context).
func Dimensionality(cfg Config) string {
	r := RunDimensionality(cfg)
	t := &table{header: []string{"Classifier", "AUC-ROC"}}
	t.add("2D slice CNN, weak labels (cf. §6.2.1 systems)", fmt.Sprintf("%.3f", r.AUC2D))
	t.add("3D DenseNet (this work)", fmt.Sprintf("%.3f", r.AUC3D))
	return fmt.Sprintf("Ablation: 2D vs 3D classification on %d held-out scans (no manual slice selection for either)\n%s",
		r.TestCases, t.String())
}
