package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"computecovid19/internal/classify"
	"computecovid19/internal/core"
	"computecovid19/internal/dataset"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/serve"
	"computecovid19/internal/tensor"
	"computecovid19/internal/volume"
	"computecovid19/internal/workflow"
)

// ServeBench measures the batched inference server end to end: it
// builds a demo-scale pipeline, profiles the per-stage service times,
// derives the workflow simulator's predicted throughput from them, and
// then hammers the real HTTP server with closed-loop clients to compare
// measurement against prediction. When outPath is non-empty the
// machine-readable report is written there (the BENCH_serve.json
// format).
func ServeBench(cfg Config, outPath string) string {
	rng := rand.New(rand.NewSource(cfg.Seed))
	enh := ddnet.New(rng, ddnet.TinyConfig())
	cls := classify.New(rng, classify.SmallConfig())
	p := core.NewPipeline(enh, cls)

	cohortCfg := dataset.DefaultCohortConfig()
	cohortCfg.Count = 4
	cohortCfg.Seed = cfg.Seed + 1
	cases := dataset.BuildCohort(cohortCfg)

	workers := 4
	batch := cohortCfg.Depth
	requests, concurrency := 96, 16
	if cfg.Quick {
		requests, concurrency = 24, 8
	}

	// Profile the two worker-side stages and the amortized batched slice
	// forward, then predict throughput with the discrete-event serving
	// model before measuring it.
	enhSlice, segClsScan := profileStages(p, cases[0], batch)
	model := workflow.ServeModel{
		Workers: workers, BatchSize: batch, BatchTimeout: 2 * time.Millisecond,
		SlicesPerScan: cohortCfg.Depth, EnhanceSlice: enhSlice,
		Segment: segClsScan, // measured jointly; Classify stays 0
	}
	predicted := model.PredictedThroughput()

	s, err := serve.New(serve.Config{
		Pipeline: p, Workers: workers, QueueDepth: 2 * requests,
		BatchSize: batch, BatchTimeout: 2 * time.Millisecond,
		CacheSize: -1, // unique volumes; measure the pipeline, not the cache
	})
	if err != nil {
		return "serve bench: " + err.Error()
	}
	s.Start()
	vols := make([]*volume.Volume, len(cases))
	for i, c := range cases {
		vols[i] = c.Volume
	}
	opts := serve.LoadOptions{
		Requests:    requests,
		Concurrency: concurrency,
		Volumes:     vols,
		Perturb:     true,
		Seed:        cfg.Seed + 2,
	}
	rep, err := serve.RunLoad(s, opts)
	if err != nil {
		return "serve bench: " + err.Error()
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	drainErr := s.Drain(drainCtx)
	cancel()

	if outPath != "" {
		if err := rep.WriteBenchJSON(outPath); err != nil {
			return "serve bench: " + err.Error()
		}
	}

	t := &table{header: []string{"metric", "value"}}
	t.add("requests", fmt.Sprintf("%d (%d clients)", rep.Requests, rep.Concurrency))
	t.add("completed / rejected(429) / failed",
		fmt.Sprintf("%d / %d / %d", rep.Completed, rep.Rejected, rep.Failed))
	t.add("throughput", fmt.Sprintf("%.2f scans/s", rep.RPS))
	t.add("latency p50 / p95 / p99",
		fmt.Sprintf("%.1f / %.1f / %.1f ms", rep.P50MS, rep.P95MS, rep.P99MS))
	t.add("mean micro-batch", fmt.Sprintf("%.2f slices", rep.MeanBatch))
	t.add("profiled enhance/slice", fmt.Sprintf("%.2f ms", enhSlice.Seconds()*1e3))
	t.add("profiled segment+classify/scan", fmt.Sprintf("%.2f ms", segClsScan.Seconds()*1e3))
	t.add("simulator predicted throughput", fmt.Sprintf("%.2f scans/s", predicted))
	if predicted > 0 {
		t.add("measured / predicted", fmt.Sprintf("%.2f", rep.RPS/predicted))
	}

	var b strings.Builder
	b.WriteString("Serving benchmark — internal/serve (batched inference server)\n")
	fmt.Fprintf(&b, "Demo-scale pipeline: %d workers, micro-batch %d, %d×%d×%d volumes.\n\n",
		workers, batch, cohortCfg.Depth, cohortCfg.Size, cohortCfg.Size)
	b.WriteString(t.String())
	if drainErr != nil {
		fmt.Fprintf(&b, "drain error: %v\n", drainErr)
	}
	if outPath != "" {
		fmt.Fprintf(&b, "\nwrote %s\n", outPath)
	}
	return b.String()
}

// profileStages times one amortized batched slice forward and the
// worker-side segment+classify tail, averaged over a few repetitions
// after a warm-up pass.
func profileStages(p *core.Pipeline, c dataset.Case, batch int) (enhSlice, segClsScan time.Duration) {
	const reps = 3
	v := c.Volume

	// Amortized per-slice forward inside a full batch.
	imgs := make([]*tensor.Tensor, batch)
	for i := range imgs {
		img := tensor.New(v.H, v.W)
		copy(img.Data, v.Slice(i%v.D))
		imgs[i] = img
	}
	p.Enhancer.EnhanceBatch(imgs) // warm-up
	start := time.Now()
	for r := 0; r < reps; r++ {
		p.Enhancer.EnhanceBatch(imgs)
	}
	enhSlice = time.Since(start) / time.Duration(reps*batch)

	// Segment+classify on an (already enhanced) volume.
	p.Classify(v) // warm-up
	start = time.Now()
	for r := 0; r < reps; r++ {
		p.Classify(v)
	}
	segClsScan = time.Since(start) / reps
	return enhSlice, segClsScan
}
