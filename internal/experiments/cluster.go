package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"time"

	"computecovid19/internal/classify"
	"computecovid19/internal/cluster"
	"computecovid19/internal/core"
	"computecovid19/internal/dataset"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/obs"
	"computecovid19/internal/serve"
	"computecovid19/internal/volume"
	"computecovid19/internal/workflow"
)

// ClusterBench measures the multi-replica data plane end to end: it
// starts three in-process ccserve replicas behind a cluster gateway,
// derives workflow.ClusterModel's predicted throughput from profiled
// stage times, and hammers the gateway with closed-loop clients to
// compare measurement against prediction. When outPath is non-empty the
// machine-readable report is written there (the BENCH_cluster.json
// format, serve_* and cluster_* counters included).
func ClusterBench(cfg Config, outPath string) string {
	rng := rand.New(rand.NewSource(cfg.Seed))
	enh := ddnet.New(rng, ddnet.TinyConfig())
	cls := classify.New(rng, classify.SmallConfig())
	p := core.NewPipeline(enh, cls)

	cohortCfg := dataset.DefaultCohortConfig()
	cohortCfg.Count = 4
	cohortCfg.Seed = cfg.Seed + 1
	cases := dataset.BuildCohort(cohortCfg)

	const replicas = 3
	workers := 2
	batch := cohortCfg.Depth
	requests, concurrency := 120, 24
	if cfg.Quick {
		requests, concurrency = 36, 12
	}

	enhSlice, segClsScan := profileStages(p, cases[0], batch)
	model := workflow.ClusterModel{
		Replicas: replicas,
		Replica: workflow.ServeModel{
			Workers: workers, BatchSize: batch, BatchTimeout: 2 * time.Millisecond,
			SlicesPerScan: cohortCfg.Depth, EnhanceSlice: enhSlice,
			Segment: segClsScan, // measured jointly; Classify stays 0
		},
	}
	predicted := model.PredictedThroughput()

	// Three real replicas on loopback listeners, one shared (stateless)
	// pipeline.
	var (
		servers []*serve.Server
		urls    []string
	)
	for i := 0; i < replicas; i++ {
		s, err := serve.New(serve.Config{
			Pipeline: p, Workers: workers, QueueDepth: 2 * requests,
			BatchSize: batch, BatchTimeout: 2 * time.Millisecond,
			CacheSize: -1, // unique volumes; measure the data plane, not the cache
		})
		if err != nil {
			return "cluster bench: " + err.Error()
		}
		s.Start()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		servers = append(servers, s)
		urls = append(urls, ts.URL)
	}

	g, err := cluster.New(cluster.Config{Replicas: urls, Seed: cfg.Seed})
	if err != nil {
		return "cluster bench: " + err.Error()
	}
	g.Start()
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	hedgesBefore := obs.GetCounter("cluster_hedges_total").Value()
	retriesBefore := obs.GetCounter("cluster_retries_total").Value()

	vols := make([]*volume.Volume, len(cases))
	for i, c := range cases {
		vols[i] = c.Volume
	}
	rep, err := serve.RunLoadURLs([]string{gw.URL}, serve.LoadOptions{
		Requests:    requests,
		Concurrency: concurrency,
		Volumes:     vols,
		Perturb:     true,
		Seed:        cfg.Seed + 2,
	})
	if err != nil {
		return "cluster bench: " + err.Error()
	}
	snapshot := g.Snapshot()

	drainCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	drainErr := g.Drain(drainCtx)
	for _, s := range servers {
		if err := s.Drain(drainCtx); drainErr == nil {
			drainErr = err
		}
	}
	cancel()

	if outPath != "" {
		if err := rep.WriteBenchJSON(outPath, "serve_", "cluster_"); err != nil {
			return "cluster bench: " + err.Error()
		}
	}

	t := &table{header: []string{"metric", "value"}}
	t.add("replicas", fmt.Sprintf("%d × %d workers", replicas, workers))
	t.add("requests", fmt.Sprintf("%d (%d clients)", rep.Requests, rep.Concurrency))
	t.add("completed / rejected(429) / failed",
		fmt.Sprintf("%d / %d / %d", rep.Completed, rep.Rejected, rep.Failed))
	t.add("throughput", fmt.Sprintf("%.2f scans/s", rep.RPS))
	t.add("latency p50 / p95 / p99",
		fmt.Sprintf("%.1f / %.1f / %.1f ms", rep.P50MS, rep.P95MS, rep.P99MS))
	t.add("hedges / retries", fmt.Sprintf("%d / %d",
		obs.GetCounter("cluster_hedges_total").Value()-hedgesBefore,
		obs.GetCounter("cluster_retries_total").Value()-retriesBefore))
	t.add("model predicted throughput", fmt.Sprintf("%.2f scans/s", predicted))
	if predicted > 0 {
		t.add("measured / predicted", fmt.Sprintf("%.2f", rep.RPS/predicted))
	}
	if lambda := 0.6 * predicted; lambda > 0 {
		t.add("model p99 @ 60% load", fmt.Sprintf("%.1f ms",
			model.PredictedP99(lambda).Seconds()*1e3))
	}
	for _, rs := range snapshot {
		t.add("replica "+rs.Name+" served", fmt.Sprintf("%d (%s)", rs.Served, rs.State))
	}

	var b strings.Builder
	b.WriteString("Cluster benchmark — internal/cluster (gateway over ccserve replicas)\n")
	fmt.Fprintf(&b, "Demo-scale pipeline behind a gateway: %d replicas, %d×%d×%d volumes.\n\n",
		replicas, cohortCfg.Depth, cohortCfg.Size, cohortCfg.Size)
	b.WriteString(t.String())
	if drainErr != nil {
		fmt.Fprintf(&b, "drain error: %v\n", drainErr)
	}
	if outPath != "" {
		fmt.Fprintf(&b, "\nwrote %s\n", outPath)
	}
	return b.String()
}
