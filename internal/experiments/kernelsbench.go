package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"computecovid19/internal/kernels"
	"computecovid19/internal/obs"
)

// KernelLayerResult is one (rung, layer-shape) cell of the kernel
// benchmark: best-of-reps wall time, achieved GFLOP/s under the Table 6
// operation model, and speedup over the naive rung on the same shape.
type KernelLayerResult struct {
	Layer          string  `json:"layer"`
	Kind           string  `json:"kind"` // "conv" or "deconv"
	Seconds        float64 `json:"seconds"`
	GFLOPS         float64 `json:"gflops"`
	SpeedupVsNaive float64 `json:"speedup_vs_naive"`
}

// KernelRungResult aggregates one ladder rung: its per-layer cells plus
// a whole-DDnet inference measured through the roofline instrumentation.
type KernelRungResult struct {
	Rung                string              `json:"rung"`
	Desc                string              `json:"desc"`
	Layers              []KernelLayerResult `json:"layers"`
	DDnetSeconds        float64             `json:"ddnet_seconds"`
	DDnetGFLOPS         float64             `json:"ddnet_gflops"`
	DDnetSpeedupVsNaive float64             `json:"ddnet_speedup_vs_naive"`
}

// KernelsReport is the BENCH_kernels.json schema consumed by CI (the
// benchcheck workflow uploads it as an artifact) and by EXPERIMENTS.md.
type KernelsReport struct {
	Bench     string             `json:"bench"` // "kernels"
	BuildInfo obs.BuildInfoData  `json:"build_info"`
	Size      int                `json:"size"` // Table 2 trunk resolution used
	DDnetSize int                `json:"ddnet_size"`
	Workers   int                `json:"workers"` // per-kernel worker count (1 = pure kernel quality)
	MaxProcs  int                `json:"maxprocs"`
	Rungs     []KernelRungResult `json:"rungs"`
}

// kernelTime returns the best-of-reps wall time of one kernel call
// (after one warm-up call), the standard way to suppress scheduler
// noise when the quantity of interest is the kernel's cost floor.
func kernelTime(reps int, f func()) float64 {
	f() // warm-up: page in buffers, spin up worker pool
	best := 0.0
	for r := 0; r < reps; r++ {
		start := time.Now()
		f()
		if s := time.Since(start).Seconds(); r == 0 || s < best {
			best = s
		}
	}
	return best
}

// KernelsBench measures the optimization ladder rung by rung: every
// registry rung on every representative Table 2 layer shape, plus one
// whole-DDnet inference per rung, all against the naive rung as the
// speedup baseline (the paper's Table 7 methodology, with the GEMM rung
// extending the ladder past the paper's last column). Per-layer kernels
// run single-threaded so the speedups isolate kernel quality from
// parallel scaling — Table 4/5 (experiments.Table4) covers scaling.
// When outPath is non-empty the machine-readable KernelsReport is
// written there (the BENCH_kernels.json format).
func KernelsBench(cfg Config, outPath string) string {
	size, ddnetSize, reps := 256, 96, 3
	if cfg.Quick {
		size, ddnetSize, reps = 64, 32, 2
	}
	shapes := kernels.Table2Shapes(size)
	names := kernels.Names()
	rng := rand.New(rand.NewSource(cfg.Seed))

	rep := KernelsReport{
		Bench: "kernels", BuildInfo: obs.NewBuildInfo(names),
		Size: size, DDnetSize: ddnetSize,
		Workers: 1, MaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, name := range names {
		im := kernels.MustSelect(name)
		rr := KernelRungResult{Rung: name, Desc: im.Desc}
		for _, bs := range shapes {
			s := bs.Shape
			x := randSlice32(rng, s.InLen())
			var w []float32
			var c kernels.Counters
			kind := "conv"
			if bs.Deconv {
				kind = "deconv"
				w = randSlice32(rng, s.InC*s.OutC*s.K*s.K)
				c = kernels.DeconvCounters(s)
			} else {
				w = randSlice32(rng, s.WeightLen())
				c = kernels.ConvCounters(s)
			}
			out := make([]float32, s.OutLen())
			var run func()
			if im.ConvEp != nil {
				// Epilogue-capable rungs are measured the way the fused
				// plan runs the layer: one ConvEp call doing conv + bias +
				// LeakyReLU (the unfused rungs' cells cover only the
				// convolution, so the fused speedup is conservative).
				// Deconv weights are pre-flipped outside the timed region,
				// exactly like plan compilation.
				ep := kernels.Epilogue{Bias: randSlice32(rng, s.OutC), Act: true, Slope: 0.01}
				cw := w
				if bs.Deconv {
					cw = make([]float32, len(w))
					kernels.FlipDeconvWeights(w, cw, s)
				}
				run = func() { im.ConvEp(x, cw, out, s, rep.Workers, ep) }
			} else if bs.Deconv {
				run = func() { im.Deconv(x, w, out, s, rep.Workers) }
			} else {
				run = func() { im.Conv(x, w, out, s, rep.Workers) }
			}
			secs := kernelTime(reps, run)
			rr.Layers = append(rr.Layers, KernelLayerResult{
				Layer: bs.Name, Kind: kind, Seconds: secs,
				GFLOPS: float64(c.Flops) / secs / 1e9,
			})
		}
		m := kernels.MeasureDDnetImpl(kernels.PaperArch(), ddnetSize, im, 0, rng)
		rr.DDnetSeconds = m.Timing.Total().Seconds()
		rr.DDnetGFLOPS = m.Total().GFLOPS
		rep.Rungs = append(rep.Rungs, rr)
	}

	// Speedups against the naive rung (ladder position 0).
	naive := rep.Rungs[0]
	for i := range rep.Rungs {
		rr := &rep.Rungs[i]
		for j := range rr.Layers {
			rr.Layers[j].SpeedupVsNaive = naive.Layers[j].Seconds / rr.Layers[j].Seconds
		}
		rr.DDnetSpeedupVsNaive = naive.DDnetSeconds / rr.DDnetSeconds
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Kernel optimization ladder — §4.2 rungs on Table 2 layer shapes (size %d, workers %d)\n",
		size, rep.Workers)
	b.WriteString("Speedups are vs the naive rung on the same shape; DDnet row is one full inference.\n\n")
	t := &table{header: append([]string{"layer"}, names...)}
	for j, bs := range shapes {
		row := []string{bs.Name}
		for i := range rep.Rungs {
			l := rep.Rungs[i].Layers[j]
			row = append(row, fmt.Sprintf("%6.2f GF/s %5.2fx", l.GFLOPS, l.SpeedupVsNaive))
		}
		t.add(row...)
	}
	row := []string{fmt.Sprintf("ddnet %d²", ddnetSize)}
	for i := range rep.Rungs {
		row = append(row, fmt.Sprintf("%6.1f ms %5.2fx",
			rep.Rungs[i].DDnetSeconds*1e3, rep.Rungs[i].DDnetSpeedupVsNaive))
	}
	t.add(row...)
	b.WriteString(t.String())
	b.WriteString("\nPaper Table 7 (OpenCL on Intel CPU): REF 1.9x, +PF 2.2x, +LU 2.7x end-to-end.\n")

	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return "kernels bench: " + err.Error()
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return "kernels bench: " + err.Error()
		}
		fmt.Fprintf(&b, "\nwrote %s\n", outPath)
	}
	return b.String()
}

func randSlice32(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32() - 0.5
	}
	return s
}
