package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"computecovid19/internal/classify"
	"computecovid19/internal/core"
	"computecovid19/internal/dataset"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/memplan"
	"computecovid19/internal/serve"
	"computecovid19/internal/volume"
)

// MemReport is the machine-readable memory benchmark (the
// BENCH_mem.json format): steady-state allocation rates of the two
// inference hot paths, pooled-memory traffic, and the GC behavior of
// the serving data plane under closed-loop load.
type MemReport struct {
	Schema string `json:"schema"`

	EnhanceAllocsPerOp  float64 `json:"enhance_allocs_per_op"`
	EnhanceBytesPerOp   float64 `json:"enhance_bytes_per_op"`
	ClassifyAllocsPerOp float64 `json:"classify_allocs_per_op"`
	ClassifyBytesPerOp  float64 `json:"classify_bytes_per_op"`

	PoolHits    uint64  `json:"pool_hits"`
	PoolMisses  uint64  `json:"pool_misses"`
	PoolHitRate float64 `json:"pool_hit_rate"`

	HeapInuseBytes uint64 `json:"heap_inuse_bytes"`

	LoadScansPerSec float64 `json:"load_scans_per_sec"`
	LoadGCCycles    uint32  `json:"load_gc_cycles"`
	GCPauseP50us    float64 `json:"gc_pause_p50_us"`
	GCPauseP99us    float64 `json:"gc_pause_p99_us"`
	GCPauseMaxus    float64 `json:"gc_pause_max_us"`
}

// MemBench measures the zero-allocation inference hot path end to end.
// The paper's performance claim is sustained high-throughput inference
// (§2.2, Table 4); on a managed-memory runtime the enemy of sustained
// throughput is the allocator — per-scan garbage recruits the GC into
// the latency tail. This benchmark pins the steady state: allocs/op and
// B/op of a warm whole-volume enhancement and a warm segment+classify
// pass (both 0 by construction, CI-gated via `make alloc` and the
// benchdiff -allocs gate), the memplan pool hit rate that makes them
// so, and the GC pause distribution while the batched inference server
// handles closed-loop load. When outPath is non-empty the
// machine-readable report is written there (BENCH_mem.json).
func MemBench(cfg Config, outPath string) string {
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := core.NewPipeline(ddnet.New(rng, ddnet.TinyConfig()), classify.New(rng, classify.SmallConfig()))
	p.Warm()

	cohortCfg := dataset.DefaultCohortConfig()
	cohortCfg.Count = 4
	cohortCfg.Seed = cfg.Seed + 1
	cases := dataset.BuildCohort(cohortCfg)
	v := cases[0].Volume

	rep := MemReport{Schema: "ccbench/mem/v1"}

	// Steady-state allocation rates of the two hot paths, measured the
	// same way the alloc-gate tests assert them.
	out := volume.New(v.D, v.H, v.W)
	ctx := context.Background()
	enhance := func() { p.EnhanceInto(ctx, v, out) }
	classifyOp := func() { p.RecycleResult(p.Classify(v)) }
	enhance()
	classifyOp()
	rep.EnhanceAllocsPerOp = testing.AllocsPerRun(10, enhance)
	rep.ClassifyAllocsPerOp = testing.AllocsPerRun(10, classifyOp)
	rep.EnhanceBytesPerOp = bytesPerOp(10, enhance)
	rep.ClassifyBytesPerOp = bytesPerOp(10, classifyOp)

	// Serving load: GC cycles and pause distribution while the batched
	// inference server handles closed-loop traffic.
	requests, concurrency := 64, 16
	if cfg.Quick {
		requests, concurrency = 24, 8
	}
	s, err := serve.New(serve.Config{
		Pipeline: p, Workers: 4, QueueDepth: 2 * requests,
		BatchSize: cohortCfg.Depth, BatchTimeout: 2 * time.Millisecond,
		CacheSize: -1, // unique volumes; measure the pipeline, not the cache
	})
	if err != nil {
		return "mem bench: " + err.Error()
	}
	s.Start()
	vols := make([]*volume.Volume, len(cases))
	for i, c := range cases {
		vols[i] = c.Volume
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	loadStart := time.Now()
	load, err := serve.RunLoad(s, serve.LoadOptions{
		Requests:    requests,
		Concurrency: concurrency,
		Volumes:     vols,
		Perturb:     true,
		Seed:        cfg.Seed + 2,
	})
	loadElapsed := time.Since(loadStart)
	drainCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	drainErr := s.Drain(drainCtx)
	cancel()
	if err != nil {
		return "mem bench: " + err.Error()
	}
	runtime.ReadMemStats(&after)
	rep.LoadScansPerSec = load.RPS
	rep.LoadGCCycles = after.NumGC - before.NumGC
	rep.GCPauseP50us, rep.GCPauseP99us, rep.GCPauseMaxus = pausePercentiles(&before, &after)

	st := p.Arena().Stats()
	rep.PoolHits, rep.PoolMisses, rep.PoolHitRate = st.Hits, st.Misses, st.HitRate()
	memplan.SampleRuntime() // refresh the mem_* gauges for -metrics dumps
	rep.HeapInuseBytes = after.HeapInuse

	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return "mem bench: " + err.Error()
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return "mem bench: " + err.Error()
		}
	}

	t := &table{header: []string{"metric", "value"}}
	t.add("warm EnhanceInto", fmt.Sprintf("%.0f allocs/op, %.0f B/op", rep.EnhanceAllocsPerOp, rep.EnhanceBytesPerOp))
	t.add("warm Classify+Recycle", fmt.Sprintf("%.0f allocs/op, %.0f B/op", rep.ClassifyAllocsPerOp, rep.ClassifyBytesPerOp))
	t.add("pool traffic", fmt.Sprintf("%d hits / %d misses (%.1f%% hit rate)",
		rep.PoolHits, rep.PoolMisses, 100*rep.PoolHitRate))
	t.add("heap in use", fmt.Sprintf("%.1f MiB", float64(rep.HeapInuseBytes)/(1<<20)))
	t.add("serving load", fmt.Sprintf("%d requests, %.2f scans/s over %.1fs",
		load.Requests, rep.LoadScansPerSec, loadElapsed.Seconds()))
	t.add("GC during load", fmt.Sprintf("%d cycles", rep.LoadGCCycles))
	t.add("GC pause p50 / p99 / max", fmt.Sprintf("%.0f / %.0f / %.0f µs",
		rep.GCPauseP50us, rep.GCPauseP99us, rep.GCPauseMaxus))

	var b strings.Builder
	b.WriteString("Memory benchmark — internal/memplan (pooled inference memory)\n")
	fmt.Fprintf(&b, "Demo-scale pipeline on %d×%d×%d volumes; allocation rates are warm steady state.\n\n",
		cohortCfg.Depth, cohortCfg.Size, cohortCfg.Size)
	b.WriteString(t.String())
	if drainErr != nil {
		fmt.Fprintf(&b, "drain error: %v\n", drainErr)
	}
	if outPath != "" {
		fmt.Fprintf(&b, "\nwrote %s\n", outPath)
	}
	return b.String()
}

// bytesPerOp measures mean heap bytes allocated per fn call via the
// monotonic TotalAlloc counter.
func bytesPerOp(runs int, fn func()) float64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.TotalAlloc-before.TotalAlloc) / float64(runs)
}

// pausePercentiles extracts the stop-the-world pauses of the GC cycles
// between two MemStats snapshots (clamped to the runtime's 256-entry
// ring) and returns p50/p99/max in microseconds.
func pausePercentiles(before, after *runtime.MemStats) (p50, p99, pmax float64) {
	from := before.NumGC
	if after.NumGC-from > 256 {
		from = after.NumGC - 256
	}
	var pauses []float64
	for k := from + 1; k <= after.NumGC; k++ {
		pauses = append(pauses, float64(after.PauseNs[(k+255)%256])/1e3)
	}
	if len(pauses) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(pauses)
	pct := func(q float64) float64 {
		i := int(q * float64(len(pauses)-1))
		return pauses[i]
	}
	return pct(0.50), pct(0.99), pauses[len(pauses)-1]
}
