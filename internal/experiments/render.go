// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) from this repository's substrates: measured where the
// experiment runs on the local CPU, projected through the
// internal/device roofline model where it required the authors' GPU/FPGA
// testbed, and trained at reduced scale where the original run took GPU
// hours. Each generator returns a rendered text artifact plus, where
// meaningful, structured data used by the test suite to check the
// result's *shape* against the paper.
package experiments

import (
	"fmt"
	"strings"
)

// Config controls experiment scale.
type Config struct {
	// Quick selects the reduced-scale configuration used by `go test`;
	// the full configuration is used by cmd/ccbench.
	Quick bool
	// Seed drives every stochastic component.
	Seed int64
}

// DefaultConfig returns the full-scale (minutes, not hours) setup.
func DefaultConfig() Config { return Config{Quick: false, Seed: 1} }

// QuickConfig returns the test-suite setup.
func QuickConfig() Config { return Config{Quick: true, Seed: 1} }

// table renders an aligned text table.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// sparkline renders a numeric series as a compact unicode plot.
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	// Downsample to width.
	if width <= 0 || width > len(vals) {
		width = len(vals)
	}
	ds := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := i * len(vals) / width
		hi := (i + 1) * len(vals) / width
		if hi <= lo {
			hi = lo + 1
		}
		s := 0.0
		for j := lo; j < hi; j++ {
			s += vals[j]
		}
		ds[i] = s / float64(hi-lo)
	}
	minV, maxV := ds[0], ds[0]
	for _, v := range ds {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	var b strings.Builder
	for _, v := range ds {
		idx := 0
		if maxV > minV {
			idx = int((v - minV) / (maxV - minV) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

func secs(s float64) string {
	return fmt.Sprintf("%.2f", s)
}

func hms(totalSeconds float64) string {
	s := int(totalSeconds + 0.5)
	return fmt.Sprintf("%d:%02d:%02d", s/3600, (s%3600)/60, s%60)
}
