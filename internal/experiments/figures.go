package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"computecovid19/internal/classify"
	"computecovid19/internal/core"
	"computecovid19/internal/ctsim"
	"computecovid19/internal/dataset"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/epi"
	"computecovid19/internal/metrics"
	"computecovid19/internal/phantom"
	"computecovid19/internal/segment"
	"computecovid19/internal/tensor"
	"computecovid19/internal/workflow"
)

// AccuracyResult bundles everything the paper's accuracy evaluation
// (§5.2) reports: Table 8, Table 9, Figures 11–13.
type AccuracyResult struct {
	// Table 8: MSE and MS-SSIM of target-vs-lowdose and
	// target-vs-enhanced, on the enhancement test split.
	MSEYX, MSSSIMYX, MSEYFX, MSSSIMYFX float64
	// Figure 11 loss curves.
	EnhancerCurve, ClassifierCurve []float64
	// Figure 13 / Table 9: classification without (Plain) and with
	// (Enhanced) Enhancement AI on the degraded test cohort.
	Plain, Enhanced core.Evaluation
	// MeanPositiveProbGain is §5.2.3's improvement of the mean predicted
	// probability on COVID-positive scans.
	MeanPositiveProbGain float64
	// Trained artifacts, reused by figure renderers and examples.
	Enhancer   *ddnet.DDnet
	Classifier *classify.Classifier
	TestPairs  []dataset.EnhancementPair
}

// RunAccuracy executes the end-to-end accuracy experiment at reduced
// scale: train DDnet on simulated low-dose pairs, train the 3D DenseNet
// classifier on clean scans, then diagnose a degraded test cohort with
// and without Enhancement AI in front of Segmentation + Classification.
func RunAccuracy(cfg Config) *AccuracyResult {
	size, depth := 32, 8
	pairCount, cohortCount := 24, 52
	enhEpochs, clsEpochs := 16, 20
	severity := 0.85
	if cfg.Quick {
		pairCount, cohortCount = 12, 24
		enhEpochs, clsEpochs = 10, 16
		severity = 1.0
	}
	const photons = 100 // dose level whose low-dose MS-SSIM matches the paper (≈95%)

	// 1. Enhancement AI: train on low-dose pairs from the same physics.
	ecfg := dataset.EnhancementConfig{
		Size: size, Count: pairCount, Views: 120, Detectors: 64,
		PhotonsPerRay: 1e6, DoseDivisor: 1e6 / photons,
		LesionFraction: 0.5, Seed: cfg.Seed,
	}
	pairs := dataset.BuildEnhancement(ecfg)
	trainPairs, _, testPairs := dataset.Split(pairs, 0.8, 0)

	enh := ddnet.New(rand.New(rand.NewSource(cfg.Seed+11)), ddnet.TinyConfig())
	etc := core.DefaultEnhancerTraining()
	etc.Epochs = enhEpochs
	etc.Seed = cfg.Seed + 12
	enhCurve := core.TrainEnhancer(enh, trainPairs, etc)

	res := &AccuracyResult{EnhancerCurve: enhCurve, Enhancer: enh, TestPairs: testPairs}
	res.MSEYX, res.MSSSIMYX, res.MSEYFX, res.MSSSIMYFX = core.EvaluateEnhancer(enh, testPairs)

	// 2. Cohort with paired clean/degraded volumes.
	ccfg := dataset.CohortConfig{
		Size: size, Depth: depth, Count: cohortCount, PositiveFraction: 0.5,
		Severity: severity, LowDose: true, Views: 120, Detectors: 64,
		PhotonsPerRay: photons, Seed: cfg.Seed + 13,
	}
	cohort := dataset.BuildCohort(ccfg)
	trainCases, _, testCases := dataset.Split(cohort, 0.6, 0)

	// 3. Classification AI: trained on clean scans (the paper's
	// classifier is trained on normal-quality clinical volumes).
	cleanTrain := make([]dataset.Case, len(trainCases))
	for i, c := range trainCases {
		cleanTrain[i] = c
		cleanTrain[i].Volume = c.Clean
	}
	cls := classify.New(rand.New(rand.NewSource(cfg.Seed+14)), classify.SmallConfig())
	ctc := core.DefaultClassifierTraining()
	ctc.Epochs = clsEpochs
	ctc.LR = 5e-3
	// The paper's augmentation regularizes a 305-scan corpus; at this
	// demo scale it delays convergence past the budget, so it stays off
	// here (it is exercised separately in the classify tests).
	ctc.Augment = false
	ctc.Seed = cfg.Seed + 15
	res.ClassifierCurve = core.TrainClassifier(cls, cleanTrain, ctc)
	res.Classifier = cls

	// 4. Diagnose the degraded test cohort with and without Enhancement
	// AI (Figure 4's workflow vs its grey-arrow ablation).
	plainPipe := core.NewPipeline(nil, cls)
	enhPipe := core.NewPipeline(enh, cls)
	res.Plain = core.EvaluateCohort(plainPipe, testCases)
	res.Enhanced = core.EvaluateCohort(enhPipe, testCases)

	// §5.2.3: mean predicted probability on positive scans.
	plainProbs, labels := plainPipe.Score(testCases)
	enhProbs, _ := enhPipe.Score(testCases)
	var gain float64
	var nPos int
	for i, l := range labels {
		if l {
			gain += enhProbs[i] - plainProbs[i]
			nPos++
		}
	}
	if nPos > 0 {
		res.MeanPositiveProbGain = gain / float64(nPos)
	}
	return res
}

// Table8 renders the enhancement accuracy table.
func Table8(r *AccuracyResult) string {
	t := &table{header: []string{"", "MSE", "MS-SSIM", "paper MSE", "paper MS-SSIM"}}
	t.add("Y-X", fmt.Sprintf("%.5f", r.MSEYX), fmt.Sprintf("%.1f %%", r.MSSSIMYX*100), "0.00715", "96.2 %")
	t.add("Y-f(X)", fmt.Sprintf("%.5f", r.MSEYFX), fmt.Sprintf("%.1f %%", r.MSSSIMYFX*100), "0.00091", "98.7 %")
	return "Table 8: Enhancement AI accuracy (Y: target, X: low-dose, f(X): enhanced)\n" + t.String()
}

// Table9 renders the confusion matrix of the enhanced pipeline at its
// optimal threshold.
func Table9(r *AccuracyResult) string {
	c := r.Enhanced.Confusion
	t := &table{header: []string{"", "Ground-truth positive", "Ground-truth negative"}}
	t.add("Predicted positive", fmt.Sprintf("TP = %d", c.TP), fmt.Sprintf("FP = %d", c.FP))
	t.add("Predicted negative", fmt.Sprintf("FN = %d", c.FN), fmt.Sprintf("TN = %d", c.TN))
	return fmt.Sprintf("Table 9: Confusion matrix at optimal threshold %.3f (paper threshold: 0.061)\n%s",
		r.Enhanced.Threshold, t.String())
}

// Figure11 renders the training loss curves.
func Figure11(r *AccuracyResult) string {
	out := "Figure 11: Training loss curves\n"
	out += fmt.Sprintf("  (a) Enhancement AI   %s  first %.4f → last %.4f\n",
		sparkline(r.EnhancerCurve, 40), r.EnhancerCurve[0], r.EnhancerCurve[len(r.EnhancerCurve)-1])
	out += fmt.Sprintf("  (b) Classification AI %s  first %.4f → last %.4f\n",
		sparkline(r.ClassifierCurve, 40), r.ClassifierCurve[0], r.ClassifierCurve[len(r.ClassifierCurve)-1])
	return out
}

// Figure12 reports per-image enhancement quality on the test pairs (the
// paper shows images; we report the quantitative underlay and leave
// PNG export to cmd/ctsim).
func Figure12(r *AccuracyResult) string {
	t := &table{header: []string{"Test image", "PSNR low-dose (dB)", "PSNR enhanced (dB)", "|diff| mean"}}
	for i, p := range r.TestPairs {
		enhImg := r.Enhancer.Enhance(p.LowDose)
		d := 0.0
		for j := range enhImg.Data {
			v := float64(enhImg.Data[j] - p.Clean.Data[j])
			if v < 0 {
				v = -v
			}
			d += v
		}
		d /= float64(enhImg.Numel())
		t.add(fmt.Sprint(i),
			fmt.Sprintf("%.2f", metrics.PSNR(p.Clean, p.LowDose, 1)),
			fmt.Sprintf("%.2f", metrics.PSNR(p.Clean, enhImg, 1)),
			fmt.Sprintf("%.4f", d))
	}
	return "Figure 12: Image enhancement quality (difference-map statistics)\n" + t.String()
}

// Figure13 renders the accuracy / ROC comparison.
func Figure13(r *AccuracyResult) string {
	t := &table{header: []string{"Pipeline", "Accuracy", "AUC-ROC", "paper Accuracy", "paper AUC"}}
	t.add("Segmentation+Classification (original scans)",
		fmt.Sprintf("%.2f%%", r.Plain.Accuracy*100), fmt.Sprintf("%.3f", r.Plain.AUC),
		"86.32%", "0.890")
	t.add("Enhancement+Segmentation+Classification",
		fmt.Sprintf("%.2f%%", r.Enhanced.Accuracy*100), fmt.Sprintf("%.3f", r.Enhanced.AUC),
		"90.53%", "0.942")
	out := "Figure 13: ComputeCOVID19+ evaluation (classification with vs without Enhancement AI)\n" + t.String()
	out += fmt.Sprintf("\nMean positive-scan probability gain from enhancement: %+.4f (paper: +0.1136)\n",
		r.MeanPositiveProbGain)
	out += "\nROC (enhanced pipeline):\n"
	rt := &table{header: []string{"threshold", "FPR", "TPR"}}
	for _, pt := range r.Enhanced.ROC {
		rt.add(fmt.Sprintf("%.3f", pt.Threshold), fmt.Sprintf("%.3f", pt.FPR), fmt.Sprintf("%.3f", pt.TPR))
	}
	return out + rt.String()
}

// Figure2 renders the epidemic simulation behind the paper's
// motivational figure.
func Figure2(cfg Config) string {
	p := epi.UKLikeParams()
	series := epi.Simulate(p)
	vals := make([]float64, len(series))
	for i, pt := range series {
		vals[i] = pt.NewCasesPerMillion
	}
	out := "Figure 2: Confirmed cases per million (two-strain SEIR simulation, UK-like parameters)\n"
	out += "  cases/M: " + sparkline(vals, 72) + "\n"
	out += fmt.Sprintf("  major waves (> 100 cases/M): %d; variant introduced day %d; final variant share %.1f%% (paper: 98%%)\n",
		epi.Waves(series, 100), p.VariantDay, series[len(series)-1].VariantShare*100)
	peak := epi.PeakDay(series, p.VariantDay, p.Days)
	out += fmt.Sprintf("  fourth-wave peak: day %d at %.0f cases/M\n", peak, series[peak].NewCasesPerMillion)
	return out
}

// Figure8Data holds the low-dose simulation metrics.
type Figure8Data struct {
	SinogramViews, SinogramDet int
	FullDosePSNR, LowDosePSNR  float64
}

// Figure8Run executes the §3.1.2 low-dose simulation: phantom → fan-beam
// Siddon projection (paper geometry) → Beer's-law Poisson noise → FBP.
func Figure8Run(cfg Config) Figure8Data {
	size := 128
	views, det := 360, 512
	if cfg.Quick {
		size, views, det = 64, 180, 256
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	chest := phantom.NewChest(rng, size, 1)
	chest.AddRandomLesions(rng, 2, 0.8)
	hu := chest.SliceHU(0)

	grid := ctsim.Grid{Size: size, PixelSize: 360.0 / float64(size)}
	fan := ctsim.PaperFanGeometry(grid.FOV())
	fan.NumViews = views
	fan.NumDetectors = det
	fan.DetectorSpacing = grid.FOV() * 1.5 * (fan.SDD / fan.SOD) / float64(det)

	mu := ctsim.HUImageToMu(hu)
	sino := ctsim.ForwardProjectFan(grid, mu, fan)

	rec := func(b float64) float64 {
		noisy := ctsim.ApplyPoissonNoise(sino, b, rng)
		r := ctsim.MuImageToHU(ctsim.ReconstructFan(noisy, grid, fan, ctsim.RamLak))
		// PSNR over the normalized window.
		ref := tensor.New(size, size)
		got := tensor.New(size, size)
		for i := range hu {
			ref.Data[i] = float32(ctsim.NormalizeHU(float64(hu[i]), ctsim.FullWindowLo, ctsim.FullWindowHi))
			got.Data[i] = float32(ctsim.NormalizeHU(float64(r[i]), ctsim.FullWindowLo, ctsim.FullWindowHi))
		}
		return metrics.PSNR(ref, got, 1)
	}
	return Figure8Data{
		SinogramViews: views, SinogramDet: det,
		FullDosePSNR: rec(1e6),
		LowDosePSNR:  rec(1e4),
	}
}

// Figure8 renders the low-dose simulation report.
func Figure8(cfg Config) string {
	d := Figure8Run(cfg)
	out := "Figure 8: Low X-ray dose CT simulation (fan beam, SOD 1000 mm, SDD 1500 mm, b=1e6 photons)\n"
	out += fmt.Sprintf("  sinogram: %d views x %d detectors\n", d.SinogramViews, d.SinogramDet)
	out += fmt.Sprintf("  FBP reconstruction PSNR: full dose %.2f dB, 1%%-dose %.2f dB\n",
		d.FullDosePSNR, d.LowDosePSNR)
	out += "  (use cmd/ctsim to export the phantom, sinogram, and FBP images as PNGs)\n"
	return out
}

// SectionTimings measures this machine's Segmentation AI and
// Classification AI inference at demo scale, next to the paper's §5.1.1
// RTX 3090 runtimes.
func SectionTimings(cfg Config) string {
	size, depth := 64, 16
	if cfg.Quick {
		size, depth = 32, 8
	}
	ccfg := dataset.DefaultCohortConfig()
	ccfg.Count = 1
	ccfg.Size = size
	ccfg.Depth = depth
	ccfg.Seed = cfg.Seed
	c := dataset.BuildCohort(ccfg)[0]

	start := time.Now()
	mask := segment.Lungs(c.Volume, segment.DefaultOptions())
	segTime := time.Since(start)
	_ = mask

	cls := classify.New(rand.New(rand.NewSource(cfg.Seed)), classify.SmallConfig())
	norm := c.Volume.Normalized(ctsim.FullWindowLo, ctsim.FullWindowHi)
	start = time.Now()
	cls.Predict(norm)
	clsTime := time.Since(start)

	out := "Section 5.1.1: Segmentation & Classification inference runtimes\n"
	out += fmt.Sprintf("  measured here (%d×%d×%d volume): segmentation %.3fs, classification %.3fs\n",
		depth, size, size, segTime.Seconds(), clsTime.Seconds())
	out += "  paper (RTX 3090, 512×512×n): segmentation 45.88s, classification 5.90s\n"
	return out
}

// Turnaround runs the discrete-event comparison behind the paper's
// headline claim (§1: days via RT-PCR vs minutes via ComputeCOVID19+).
func Turnaround(cfg Config) string {
	patients := 200
	if cfg.Quick {
		patients = 60
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ct := workflow.Run(workflow.CTPipeline(), patients, 12*time.Hour, rng)
	pcr := workflow.Run(workflow.RTPCRPipeline(), patients, 12*time.Hour, rand.New(rand.NewSource(cfg.Seed)))
	rd := func(d time.Duration) string { return d.Round(time.Minute).String() }
	t := &table{header: []string{"Pipeline", "Median", "Mean", "P90", "Max"}}
	t.add("ComputeCOVID19+ (CT)", rd(ct.Median), rd(ct.Mean), rd(ct.P90), rd(ct.Max))
	t.add("RT-PCR laboratory", rd(pcr.Median), rd(pcr.Mean), rd(pcr.P90), rd(pcr.Max))
	out := fmt.Sprintf("Turnaround-time simulation (%d patients over 12h)\n%s", patients, t.String())
	out += fmt.Sprintf("\nMedian speedup: %.0f× (paper: days → minutes)\n",
		float64(pcr.Median)/float64(ct.Median))
	return out
}
