package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestKernelsBenchReport checks the BENCH_kernels.json contract: one
// entry per registry rung in ladder order, naive normalized to 1.0x,
// and plausible positive timings throughout. It does not assert
// speedup magnitudes — CI machines are too noisy for that; the
// committed BENCH_kernels.json records a representative full run.
func TestKernelsBenchReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_kernels.json")
	rendered := KernelsBench(QuickConfig(), out)
	for _, want := range []string{"naive", "gemm", "growth 5x5", "ddnet"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("kernels bench output missing %q:\n%s", want, rendered)
		}
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep KernelsReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Bench != "kernels" || len(rep.Rungs) < 5 {
		t.Fatalf("report malformed: bench=%q rungs=%d", rep.Bench, len(rep.Rungs))
	}
	if rep.Rungs[0].Rung != "naive" {
		t.Fatalf("first rung = %q, want the naive baseline", rep.Rungs[0].Rung)
	}
	for _, rr := range rep.Rungs {
		if rr.DDnetSeconds <= 0 || rr.DDnetSpeedupVsNaive <= 0 {
			t.Fatalf("rung %q has non-positive DDnet numbers: %+v", rr.Rung, rr)
		}
		if len(rr.Layers) != len(rep.Rungs[0].Layers) {
			t.Fatalf("rung %q layer count mismatch", rr.Rung)
		}
		for _, l := range rr.Layers {
			if l.Seconds <= 0 || l.GFLOPS <= 0 || l.SpeedupVsNaive <= 0 {
				t.Fatalf("rung %q layer %q has non-positive numbers: %+v", rr.Rung, l.Layer, l)
			}
		}
	}
	for _, l := range rep.Rungs[0].Layers {
		if l.SpeedupVsNaive != 1 {
			t.Fatalf("naive layer %q speedup = %v, want exactly 1", l.Layer, l.SpeedupVsNaive)
		}
	}
}

func TestTable1Renders(t *testing.T) {
	out := Table1(QuickConfig())
	for _, want := range []string{"Mayo Clinic", "BIMCV", "MIDRC", "LIDC"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2MatchesPaperShapes(t *testing.T) {
	out := Table2(QuickConfig())
	// Spot-check the paper's Table 2 rows.
	for _, want := range []string{
		"37 conv + 8 deconv",
		"512x512x16", // Convolution 1 output
		"256x256x80", // Dense Block 1 output
		"32x32x16",   // bottleneck
		"512x512x1",  // final output
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3ShapeHolds(t *testing.T) {
	rows := Table3Data(QuickConfig())
	if len(rows) != 8 {
		t.Fatalf("Table 3 has %d rows, want 8", len(rows))
	}
	// Projected runtimes within 2x of the paper's measurements, and the
	// single-node row is the slowest.
	for _, r := range rows {
		ratio := r.ProjectedRuntimeSec / r.PaperRuntimeSec
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("nodes=%d batch=%d: projection %.0fs vs paper %.0fs (ratio %.2f)",
				r.Nodes, r.Batch, r.ProjectedRuntimeSec, r.PaperRuntimeSec, ratio)
		}
		if r.MeasuredMSSSIM <= 0 || r.MeasuredMSSSIM > 1 {
			t.Errorf("measured MS-SSIM out of range: %v", r.MeasuredMSSSIM)
		}
	}
	if rows[0].ProjectedRuntimeSec < rows[7].ProjectedRuntimeSec {
		t.Error("single-node batch-1 must be the slowest configuration")
	}
	// Paper shape: batch 64 trains faster than batch 8 on 8 nodes but
	// with worse MS-SSIM. At our reduced scale the 8-vs-64 quality gap
	// can be within run-to-run noise, so the hard assertion contrasts
	// the extremes (batch 1 vs batch 64); 8 vs 64 gets a tolerance.
	var b1, b8, b64 Table3Row
	for _, r := range rows {
		if r.Nodes == 1 && r.Batch == 1 {
			b1 = r
		}
		if r.Nodes == 8 && r.Batch == 8 && r.Epochs == 50 {
			b8 = r
		}
		if r.Nodes == 8 && r.Batch == 64 {
			b64 = r
		}
	}
	if b64.ProjectedRuntimeSec >= b8.ProjectedRuntimeSec {
		t.Error("batch 64 should be faster than batch 8 at 8 nodes")
	}
	if b64.MeasuredMSSSIM >= b1.MeasuredMSSSIM {
		t.Errorf("batch 64 should lose quality vs batch 1: %.4f vs %.4f",
			b64.MeasuredMSSSIM, b1.MeasuredMSSSIM)
	}
	if b64.MeasuredMSSSIM > b8.MeasuredMSSSIM+0.01 {
		t.Errorf("batch 64 should not beat batch 8 by a margin: %.4f vs %.4f",
			b64.MeasuredMSSSIM, b8.MeasuredMSSSIM)
	}
}

func TestTable4Shape(t *testing.T) {
	rows := Table4Data()
	if len(rows) != 6 {
		t.Fatalf("Table 4 has %d rows", len(rows))
	}
	// V100 fastest OpenCL; FPGA slowest; PyTorch slower than OpenCL
	// everywhere it exists.
	if !(rows[0].OpenCLSec < rows[1].OpenCLSec && rows[0].OpenCLSec < rows[4].OpenCLSec) {
		t.Error("V100 must be the fastest OpenCL platform")
	}
	if rows[5].OpenCLSec < rows[4].OpenCLSec {
		t.Error("FPGA must be slower than the CPU")
	}
	for _, r := range rows {
		if r.HasPyTorch && r.PyTorchSec <= r.OpenCLSec {
			t.Errorf("%s: PyTorch (%.2f) must be slower than OpenCL (%.2f)",
				r.Platform.Name, r.PyTorchSec, r.OpenCLSec)
		}
	}
}

func TestTable6Exact(t *testing.T) {
	out := Table6(QuickConfig())
	for _, want := range []string{"13421.8", "8.4", "18.9", "469.8", "41.9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 6 missing %q:\n%s", want, out)
		}
	}
}

func TestTable7LadderShape(t *testing.T) {
	proj := Table7Data()
	for name, row := range proj {
		if !(row[0] > row[1] && row[1] >= row[2] && row[2] >= row[3]) {
			t.Errorf("%s ladder not monotone: %v", name, row)
		}
	}
	v100 := proj["Nvidia V100 GPU"]
	if v100[0]/v100[1] < 100 {
		t.Errorf("V100 baseline/REF = %.0f, paper shows ~640x", v100[0]/v100[1])
	}
}

func TestTable10Renders(t *testing.T) {
	out := Table10(QuickConfig())
	if !strings.Contains(out, "ComputeCOVID19+") || !strings.Contains(out, "FPGA") {
		t.Fatalf("Table 10 malformed:\n%s", out)
	}
}

func TestFigure2Shape(t *testing.T) {
	out := Figure2(QuickConfig())
	if !strings.Contains(out, "variant") {
		t.Fatalf("Figure 2 malformed:\n%s", out)
	}
}

func TestFigure8DoseOrdering(t *testing.T) {
	d := Figure8Run(QuickConfig())
	if d.FullDosePSNR <= d.LowDosePSNR {
		t.Fatalf("full dose (%.2f dB) must beat 1%%-dose (%.2f dB)",
			d.FullDosePSNR, d.LowDosePSNR)
	}
	if d.FullDosePSNR < 15 {
		t.Fatalf("full-dose FBP PSNR %.2f dB implausibly low", d.FullDosePSNR)
	}
}

// The paper's headline accuracy experiment: prepending Enhancement AI
// improves classification of degraded scans.
func TestAccuracyExperimentShape(t *testing.T) {
	r := RunAccuracy(QuickConfig())

	// Table 8 shape: enhancement reduces MSE and raises MS-SSIM.
	if r.MSEYFX >= r.MSEYX {
		t.Errorf("Table 8: enhancement did not reduce MSE (%.5f vs %.5f)", r.MSEYFX, r.MSEYX)
	}
	if r.MSSSIMYFX <= r.MSSSIMYX {
		t.Errorf("Table 8: enhancement did not raise MS-SSIM (%.4f vs %.4f)",
			r.MSSSIMYFX, r.MSSSIMYX)
	}

	// Figure 13 shape: the enhanced pipeline is at least as good, and
	// better on at least one of accuracy / AUC.
	if r.Enhanced.AUC < r.Plain.AUC && r.Enhanced.Accuracy < r.Plain.Accuracy {
		t.Errorf("Figure 13: enhancement helped neither accuracy (%.3f vs %.3f) nor AUC (%.3f vs %.3f)",
			r.Enhanced.Accuracy, r.Plain.Accuracy, r.Enhanced.AUC, r.Plain.AUC)
	}

	// Figure 11: both loss curves decrease.
	ec, cc := r.EnhancerCurve, r.ClassifierCurve
	if ec[len(ec)-1] >= ec[0] {
		t.Errorf("enhancer loss curve did not decrease: %v", ec)
	}
	if cc[len(cc)-1] >= cc[0] {
		t.Errorf("classifier loss curve did not decrease: %v", cc)
	}

	// Renderers must not panic and must mention their paper anchors.
	for name, s := range map[string]string{
		"Table8":   Table8(r),
		"Table9":   Table9(r),
		"Figure11": Figure11(r),
		"Figure12": Figure12(r),
		"Figure13": Figure13(r),
	} {
		if len(s) < 40 {
			t.Errorf("%s renders too little:\n%s", name, s)
		}
	}
}

func TestSectionTimingsRenders(t *testing.T) {
	out := SectionTimings(QuickConfig())
	if !strings.Contains(out, "segmentation") || !strings.Contains(out, "45.88") {
		t.Fatalf("timings malformed:\n%s", out)
	}
}

func TestTurnaroundSpeedup(t *testing.T) {
	out := Turnaround(QuickConfig())
	if !strings.Contains(out, "speedup") {
		t.Fatalf("turnaround malformed:\n%s", out)
	}
}

func TestDenoisingAblationShape(t *testing.T) {
	a := RunDenoisingAblation(QuickConfig())
	// Both advanced methods must beat plain FBP at this dose.
	if a.SARTMSE >= a.FBPMSE {
		t.Errorf("SART MSE %.5f should beat FBP %.5f", a.SARTMSE, a.FBPMSE)
	}
	if a.DDnetMSE >= a.FBPMSE {
		t.Errorf("DDnet MSE %.5f should beat FBP %.5f", a.DDnetMSE, a.FBPMSE)
	}
	if out := Ablation(QuickConfig()); !strings.Contains(out, "SART") {
		t.Fatalf("ablation table malformed:\n%s", out)
	}
}

func TestDimensionalityComparison(t *testing.T) {
	r := RunDimensionality(QuickConfig())
	if r.AUC2D < 0 || r.AUC2D > 1 || r.AUC3D < 0 || r.AUC3D > 1 {
		t.Fatalf("AUCs out of range: %+v", r)
	}
	// At this cohort size neither ordering is guaranteed — the 2D
	// baseline sees D× more (weakly labelled) training samples, which at
	// demo scale can outweigh the 3D context the paper's 305-scan corpus
	// exploits — so the test asserts only that at least one of the two
	// is a working detector. EXPERIMENTS.md discusses the scale effect.
	if r.AUC2D < 0.6 && r.AUC3D < 0.6 {
		t.Fatalf("both classifiers near chance: %+v", r)
	}
	if out := Dimensionality(QuickConfig()); !strings.Contains(out, "3D DenseNet") {
		t.Fatalf("dimensionality table malformed:\n%s", out)
	}
}
