package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"computecovid19/internal/classify"
	"computecovid19/internal/cluster"
	"computecovid19/internal/core"
	"computecovid19/internal/dataset"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/obs"
	"computecovid19/internal/serve"
	"computecovid19/internal/volume"
	"computecovid19/internal/workflow"
)

// shardPoint is one row of the BENCH_shard.json trajectory: measured
// single-scan latency at a replica count, with the workflow model's
// prediction alongside.
type shardPoint struct {
	Replicas         int     `json:"replicas"`
	Sharded          bool    `json:"sharded"`
	P50MS            float64 `json:"p50_ms"`
	P95MS            float64 `json:"p95_ms"`
	Chunks           uint64  `json:"chunks"`
	Redispatches     uint64  `json:"redispatches"`
	MeasuredSpeedup  float64 `json:"measured_speedup"`
	PredictedMS      float64 `json:"predicted_ms"`
	PredictedSpeedup float64 `json:"predicted_speedup"`
}

type shardReport struct {
	Slices         int          `json:"slices"`
	EnhanceSliceUS float64      `json:"enhance_slice_us"`
	Points         []shardPoint `json:"points"`
}

// ShardBench measures the headline property of scatter/gather slice
// sharding: single-scan latency drops as replicas are added, because
// one scan's enhancement fans out across the cluster instead of
// serializing on one replica. It runs the same closed-loop single
// client against 1 (unsharded baseline), 2, and 3 replicas, chunk size
// chosen by the workflow model from the profiled per-slice cost, and
// writes the measured-vs-predicted trajectory to outPath
// (BENCH_shard.json).
//
// The replicas are in-process, so they share this host's CPU — real
// network compute cannot speed up with replica count here the way the
// paper's per-node GPUs do. The replica enhancement stage is therefore
// a calibrated service time (the per-slice cost profiled from the real
// demo network, slept instead of computed), which parallelizes across
// replicas the way independent devices would, while everything the
// sharding layer itself does — chunk planning, HTTP fan-out, JSON
// round trips, routing, gather and reassembly, the classify leg — runs
// for real and is charged against the measured latency.
func ShardBench(cfg Config, outPath string) string {
	rng := rand.New(rand.NewSource(cfg.Seed))
	// A heavier-than-Tiny enhancer: sharding targets the regime where
	// per-slice network compute dominates the chunk round trip (the
	// paper's full-scale DDnet), so the demo network must be expensive
	// enough per slice for the scatter to have something to win.
	enhCfg := ddnet.TinyConfig()
	enhCfg.BaseChannels, enhCfg.Growth, enhCfg.DenseLayers = 16, 16, 3
	enh := ddnet.New(rng, enhCfg)
	cls := classify.New(rng, classify.SmallConfig())
	p := core.NewPipeline(enh, cls)

	cohortCfg := dataset.DefaultCohortConfig()
	cohortCfg.Count = 4
	cohortCfg.Depth = 24 // deep scans are what sharding exists for
	cohortCfg.Seed = cfg.Seed + 1
	cases := dataset.BuildCohort(cohortCfg)
	vols := make([]*volume.Volume, len(cases))
	for i, c := range cases {
		vols[i] = c.Volume
	}

	requests := 24
	if cfg.Quick {
		requests = 10
	}
	batch := 8

	enhSlice, segClsScan := profileStages(p, cases[0], batch)

	report := shardReport{
		Slices:         cohortCfg.Depth,
		EnhanceSliceUS: float64(enhSlice.Microseconds()),
	}
	var baselineP50 float64
	for _, replicas := range []int{1, 2, 3} {
		model := workflow.ClusterModel{
			Replicas: replicas,
			Replica: workflow.ServeModel{
				Workers: 2, BatchSize: batch, BatchTimeout: 2 * time.Millisecond,
				SlicesPerScan: cohortCfg.Depth, EnhanceSlice: enhSlice,
				Segment: segClsScan,
			},
			ChunkOverhead: 2 * time.Millisecond,
		}

		pt, err := runShardPoint(p, model, vols, requests, cfg.Seed, batch, enhSlice)
		if err != nil {
			return "shard bench: " + err.Error()
		}
		pt.PredictedMS = model.PredictedShardedLatency(cohortCfg.Depth).Seconds() * 1e3
		pt.PredictedSpeedup = model.PredictedShardedSpeedup(cohortCfg.Depth)
		if replicas == 1 {
			baselineP50 = pt.P50MS
			pt.MeasuredSpeedup = 1
			pt.PredictedSpeedup = 1
		} else if pt.P50MS > 0 {
			pt.MeasuredSpeedup = baselineP50 / pt.P50MS
		}
		report.Points = append(report.Points, pt)
	}

	if outPath != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(outPath, append(b, '\n'), 0o644)
		}
		if err != nil {
			return "shard bench: " + err.Error()
		}
	}

	t := &table{header: []string{"replicas", "sharded", "p50", "p95", "chunks", "speedup", "model p50", "model speedup"}}
	for _, pt := range report.Points {
		t.add(fmt.Sprintf("%d", pt.Replicas),
			fmt.Sprintf("%v", pt.Sharded),
			fmt.Sprintf("%.1f ms", pt.P50MS),
			fmt.Sprintf("%.1f ms", pt.P95MS),
			fmt.Sprintf("%d", pt.Chunks),
			fmt.Sprintf("%.2f×", pt.MeasuredSpeedup),
			fmt.Sprintf("%.1f ms", pt.PredictedMS),
			fmt.Sprintf("%.2f×", pt.PredictedSpeedup))
	}

	var b strings.Builder
	b.WriteString("Shard benchmark — internal/cluster scatter/gather slice sharding\n")
	fmt.Fprintf(&b, "Single closed-loop client, %d×%d×%d volumes, chunk size from the workflow model.\n\n",
		cohortCfg.Depth, cohortCfg.Size, cohortCfg.Size)
	b.WriteString(t.String())
	if outPath != "" {
		fmt.Fprintf(&b, "\nwrote %s\n", outPath)
	}
	return b.String()
}

// runShardPoint measures single-scan latency through a gateway over n
// real replicas whose enhancement stage is the calibrated perSlice
// service time (segment+classify runs the real pipeline). With one
// replica the sharded path never engages (nothing to scatter across),
// so that point is the unsharded baseline.
func runShardPoint(p *core.Pipeline, model workflow.ClusterModel, vols []*volume.Volume, requests int, seed int64, batch int, perSlice time.Duration) (shardPoint, error) {
	var (
		servers []*serve.Server
		urls    []string
		closers []func()
	)
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	for i := 0; i < model.Replicas; i++ {
		s, err := serve.New(serve.Config{
			Pipeline: p, Workers: 2, QueueDepth: 64,
			BatchSize: batch, BatchTimeout: 2 * time.Millisecond,
			CacheSize: -1, // unique volumes; measure the data plane
			Enhance: func(v *volume.Volume) *volume.Volume {
				time.Sleep(time.Duration(v.D) * perSlice)
				return v
			},
		})
		if err != nil {
			return shardPoint{}, err
		}
		s.Start()
		ts := httptest.NewServer(s.Handler())
		closers = append(closers, ts.Close)
		servers = append(servers, s)
		urls = append(urls, ts.URL)
	}

	g, err := cluster.New(cluster.Config{
		Replicas:    urls,
		Seed:        seed,
		ShardSlices: 2, // shard every scan that can be split
		ShardModel:  model,
	})
	if err != nil {
		return shardPoint{}, err
	}
	g.Start()
	gw := httptest.NewServer(g.Handler())
	closers = append(closers, gw.Close)

	chunksBefore := obs.GetCounter("cluster_shard_chunks_total").Value()
	redispatchBefore := obs.GetCounter("cluster_shard_redispatch_total").Value()

	rep, err := serve.RunLoadURLs([]string{gw.URL}, serve.LoadOptions{
		Requests:    requests,
		Concurrency: 1, // single-scan latency is the quantity under test
		Volumes:     vols,
		Perturb:     true,
		Seed:        seed + 2,
	})
	if err != nil {
		return shardPoint{}, err
	}
	if rep.Failed > 0 {
		return shardPoint{}, fmt.Errorf("%d of %d scans failed", rep.Failed, requests)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := g.Drain(drainCtx); err != nil {
		return shardPoint{}, err
	}
	for _, s := range servers {
		if err := s.Drain(drainCtx); err != nil {
			return shardPoint{}, err
		}
	}

	return shardPoint{
		Replicas:     model.Replicas,
		Sharded:      model.Replicas >= 2,
		P50MS:        rep.P50MS,
		P95MS:        rep.P95MS,
		Chunks:       obs.GetCounter("cluster_shard_chunks_total").Value() - chunksBefore,
		Redispatches: obs.GetCounter("cluster_shard_redispatch_total").Value() - redispatchBefore,
	}, nil
}
