package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"computecovid19/internal/ag"
	"computecovid19/internal/dataset"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/device"
	"computecovid19/internal/distrib"
	"computecovid19/internal/kernels"
	"computecovid19/internal/metrics"
	"computecovid19/internal/tensor"
)

// Table1 renders the data-source inventory (paper Table 1) together with
// the synthetic substitute used for each source.
func Table1(cfg Config) string {
	t := &table{header: []string{"Data Source", "Contents", "This reproduction"}}
	for _, s := range dataset.PaperSources() {
		t.add(s.Name, s.Contents, s.Substitute)
	}
	return "Table 1: Description of data sources\n" + t.String()
}

// Table2 renders the DDnet layer trace for a 512×512 input — the paper's
// Table 2.
func Table2(cfg Config) string {
	m := ddnet.New(rand.New(rand.NewSource(cfg.Seed)), ddnet.PaperConfig())
	t := &table{header: []string{"Layers", "Output Size", "Details"}}
	for _, l := range m.LayerShapes(512) {
		t.add(l.Name, fmt.Sprintf("%dx%dx%d", l.OutH, l.OutW, l.OutC), l.Details())
	}
	return fmt.Sprintf("Table 2: DDnet layer shapes (%d conv + %d deconv layers)\n%s",
		m.NumConvLayers(), m.NumDeconvLayers(), t.String())
}

// Table3Row is one row of the distributed-training table.
type Table3Row struct {
	Nodes, Batch, Epochs int
	PaperRuntimeSec      float64
	ProjectedRuntimeSec  float64
	MeasuredMSSSIM       float64 // from the reduced-scale real training run
}

// Table3Data runs the Table 3 experiment: the runtime column is
// projected through the fitted T4-cluster model, and the quality column
// is *measured* by genuinely training DDnet with the distrib package's
// synchronous data-parallel trainer at reduced scale — real goroutine
// nodes, real ring all-reduce — so the batch-size/quality trend is an
// actual training result, not a model.
func Table3Data(cfg Config) []Table3Row {
	rows := []Table3Row{
		{Nodes: 1, Batch: 1, Epochs: 50, PaperRuntimeSec: 54886},
		{Nodes: 4, Batch: 8, Epochs: 50, PaperRuntimeSec: 8869},
		{Nodes: 4, Batch: 8, Epochs: 100, PaperRuntimeSec: 17932},
		{Nodes: 4, Batch: 16, Epochs: 50, PaperRuntimeSec: 7678},
		{Nodes: 8, Batch: 8, Epochs: 50, PaperRuntimeSec: 8509},
		{Nodes: 8, Batch: 8, Epochs: 100, PaperRuntimeSec: 17006},
		{Nodes: 8, Batch: 32, Epochs: 50, PaperRuntimeSec: 4645},
		{Nodes: 8, Batch: 64, Epochs: 50, PaperRuntimeSec: 4344},
	}
	cluster := distrib.PaperCluster()
	for i := range rows {
		rows[i].ProjectedRuntimeSec = cluster.TrainingSeconds(rows[i].Nodes, rows[i].Batch, rows[i].Epochs)
	}

	// Reduced-scale measured quality: train on synthetic pairs with the
	// real data-parallel trainer and score MS-SSIM on held-out pairs.
	size, pairsN, epochs := 32, 24, 6
	if cfg.Quick {
		size, pairsN, epochs = 32, 16, 4
	}
	dcfg := dataset.DefaultEnhancementConfig()
	dcfg.Size = size
	dcfg.Count = pairsN + 6
	dcfg.Views = 90
	dcfg.Detectors = 64
	dcfg.DoseDivisor = 1e4 // ≈100 photons/ray: clearly visible noise
	dcfg.Seed = cfg.Seed
	pairs := dataset.BuildEnhancement(dcfg)
	train, test := pairs[:pairsN], pairs[pairsN:]

	for i := range rows {
		if rows[i].Epochs != 50 && !cfg.Quick {
			// 100-epoch rows reuse the 50-epoch measured quality (the
			// paper's own pairs differ by < 0.5 points).
		}
		rows[i].MeasuredMSSSIM = measureDDPQuality(cfg.Seed, train, test, rows[i].Nodes, rows[i].Batch, epochs*rows[i].Epochs/50)
	}
	return rows
}

// measureDDPQuality trains a tiny DDnet with the distributed trainer and
// returns the mean MS-SSIM between enhanced and clean test images.
func measureDDPQuality(seed int64, train, test []dataset.EnhancementPair, nodes, batch, epochs int) float64 {
	if epochs < 1 {
		epochs = 1
	}
	factory := func() distrib.Model {
		return ddnet.New(rand.New(rand.NewSource(seed+100)), ddnet.TinyConfig())
	}
	tr := distrib.NewTrainer(factory, nodes, 3e-3, ddnetShardLoss)

	size := train[0].Clean.Shape[0]
	rng := rand.New(rand.NewSource(seed + 200))
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += batch {
			end := start + batch
			if end > len(order) {
				end = len(order)
			}
			var xs, ys []*tensor.Tensor
			for _, idx := range order[start:end] {
				xs = append(xs, train[idx].LowDose.Reshape(1, 1, size, size))
				ys = append(ys, train[idx].Clean.Reshape(1, 1, size, size))
			}
			tr.Step(xs, ys)
		}
	}

	m := tr.Master().(*ddnet.DDnet)
	m.SetTraining(false)
	total := 0.0
	for _, p := range test {
		enh := m.Enhance(p.LowDose)
		total += metrics.MSSSIM(p.Clean, enh)
	}
	return total / float64(len(test))
}

// ddnetShardLoss stacks a shard of (1,1,H,W) pairs into one batch and
// applies DDnet's composite loss.
func ddnetShardLoss(m distrib.Model, xs, ys []*tensor.Tensor) *ag.Value {
	net := m.(*ddnet.DDnet)
	h, w := xs[0].Shape[2], xs[0].Shape[3]
	b := len(xs)
	x := tensor.New(b, 1, h, w)
	y := tensor.New(b, 1, h, w)
	for i := range xs {
		copy(x.Data[i*h*w:(i+1)*h*w], xs[i].Data)
		copy(y.Data[i*h*w:(i+1)*h*w], ys[i].Data)
	}
	return ddnet.Loss(net.Forward(ag.Const(x)), ag.Const(y))
}

// Table3 renders the distributed-training table.
func Table3(cfg Config) string {
	rows := Table3Data(cfg)
	t := &table{header: []string{"# Nodes", "Batch", "Epochs",
		"Paper runtime", "Projected runtime", "Measured MS-SSIM (reduced scale)"}}
	for _, r := range rows {
		t.add(fmt.Sprint(r.Nodes), fmt.Sprint(r.Batch), fmt.Sprint(r.Epochs),
			hms(r.PaperRuntimeSec), hms(r.ProjectedRuntimeSec),
			fmt.Sprintf("%.2f%%", r.MeasuredMSSSIM*100))
	}
	return "Table 3: Enhancement AI training (runtimes projected on the paper's T4 cluster;\n" +
		"quality measured by real data-parallel training at reduced scale)\n" + t.String()
}

// Table4Row is one platform row of the inference table.
type Table4Row struct {
	Platform        device.Platform
	PyTorchSec      float64
	HasPyTorch      bool
	OpenCLSec       float64
	PaperPyTorchSec float64 // 0 where the paper shows "–"
	PaperOpenCLSec  float64
}

// Table4Data projects Table 4 for the paper DDnet at 512².
func Table4Data() []Table4Row {
	cc := kernels.DDnetCounts(ddnet.PaperConfig().Arch(), 512)
	paperPT := map[string]float64{
		"Nvidia V100 GPU": 0.22, "Nvidia P100 GPU": 0.73,
		"Nvidia T4 GPU": 1.29, "Intel Xeon Gold 6128 CPU": 5.52,
	}
	paperCL := map[string]float64{
		"Nvidia V100 GPU": 0.10, "Nvidia P100 GPU": 0.25,
		"AMD Radeon Vega Frontier GPU": 0.25, "Nvidia T4 GPU": 0.29,
		"Intel Xeon Gold 6128 CPU": 1.64, "Intel Arria 10 GX 1150 FPGA": 16.74,
	}
	var rows []Table4Row
	for _, p := range device.Catalog() {
		pt, ok := p.PyTorchSeconds(cc)
		rows = append(rows, Table4Row{
			Platform:        p,
			PyTorchSec:      pt,
			HasPyTorch:      ok,
			OpenCLSec:       p.Project(cc, kernels.REFPFLU, p.Kind == device.FPGA).Total(),
			PaperPyTorchSec: paperPT[p.Name],
			PaperOpenCLSec:  paperCL[p.Name],
		})
	}
	return rows
}

// Table4 renders the heterogeneous-inference table, including a measured
// row from this machine's Go kernels (scaled-down image, see note).
func Table4(cfg Config) string {
	t := &table{header: []string{"Platform", "Cores", "BW (GB/s)", "MHz",
		"PyTorch (s)", "OpenCL (s)", "paper PyTorch", "paper OpenCL"}}
	for _, r := range Table4Data() {
		pt, ppt := "–", "–"
		if r.HasPyTorch {
			pt = secs(r.PyTorchSec)
		}
		if r.PaperPyTorchSec > 0 {
			ppt = secs(r.PaperPyTorchSec)
		}
		t.add(r.Platform.Name,
			fmt.Sprintf("%d (%s)", r.Platform.Cores, r.Platform.CoreLabel),
			fmt.Sprintf("%.0f", r.Platform.BandwidthGBs),
			fmt.Sprint(r.Platform.FreqMHz),
			pt, secs(r.OpenCLSec), ppt, secs(r.PaperOpenCLSec))
	}
	body := "Table 4: Inference runtime for Enhancement AI (projected via the roofline model)\n" + t.String()
	body += "\n" + measuredInferenceNote(cfg)
	return body
}

// measuredInferenceNote times this machine's actual Go kernels at a
// reduced size and reports them alongside the projections.
func measuredInferenceNote(cfg Config) string {
	size := 128
	if cfg.Quick {
		size = 64
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tm := kernels.RunDDnetInference(ddnet.PaperConfig().Arch(), size, kernels.REFPFLU, 0, rng)
	return fmt.Sprintf("Measured on this machine (Go kernels, paper DDnet at %d×%d): conv %.3fs deconv %.3fs other %.3fs total %.3fs\n",
		size, size, tm.Conv.Seconds(), tm.Deconv.Seconds(), tm.Other.Seconds(), tm.Total().Seconds())
}

// Table5 renders the per-kernel event times (paper Table 5).
func Table5(cfg Config) string {
	cc := kernels.DDnetCounts(ddnet.PaperConfig().Arch(), 512)
	type paperRow struct{ conv, deconv, other float64 }
	paper := map[string]paperRow{
		"Nvidia V100 GPU":              {0.036, 0.059, 0.004},
		"Nvidia P100 GPU":              {0.075, 0.169, 0.005},
		"AMD Radeon Vega Frontier GPU": {0.082, 0.170, 0.005},
		"Nvidia T4 GPU":                {0.123, 0.153, 0.016},
		"Intel Xeon Gold 6128 CPU":     {0.495, 1.078, 0.057},
		"Intel Arria 10 GX 1150 FPGA":  {9.819, 2.839, 3.991},
	}
	t := &table{header: []string{"Platform", "Conv (s)", "Deconv (s)", "Other (s)",
		"paper Conv", "paper Deconv", "paper Other"}}
	for _, p := range device.Catalog() {
		got := p.Project(cc, kernels.REF, p.Kind == device.FPGA)
		if p.Kind != device.FPGA {
			got = p.Project(cc, kernels.REFPFLU, false)
		}
		pr := paper[p.Name]
		t.add(p.Name, secs(got.Conv), secs(got.Deconv), secs(got.Other),
			secs(pr.conv), secs(pr.deconv), secs(pr.other))
	}
	return "Table 5: Event-based kernel times for Enhancement AI inference (projected)\n" + t.String()
}

// Table6 renders the operation counts (paper Table 6), which this
// reproduction computes exactly.
func Table6(cfg Config) string {
	s := kernels.ConvShape{InC: 32, H: 512, W: 512, OutC: 32, K: 5}
	rows := []struct {
		name string
		c    kernels.Counters
	}{
		{"Convolution", kernels.ConvCounters(s)},
		{"Deconvolution", kernels.DeconvCounters(s)},
		{"Pooling", kernels.PoolCounters(32, 512, 512)},
		{"Un-pooling", kernels.UnpoolCounters(32, 512, 512)},
		{"Leaky-ReLU", kernels.LeakyReLUCounters(32 * 512 * 512)},
		{"Batch Normalization", kernels.BatchNormCounters(32 * 512 * 512)},
	}
	t := &table{header: []string{"Kernel", "Loads (10^6)", "Stores (10^6)", "Flops (10^6)"}}
	for _, r := range rows {
		t.add(r.name,
			fmt.Sprintf("%.1f", float64(r.c.Loads)/1e6),
			fmt.Sprintf("%.1f", float64(r.c.Stores)/1e6),
			fmt.Sprintf("%.1f", float64(r.c.Flops)/1e6))
	}
	return "Table 6: Global memory and floating-point operation counts, 512×512×32 input, 5×5 filters (exact)\n" + t.String()
}

// Table7Data projects the optimization ladder for every platform.
func Table7Data() map[string][4]float64 {
	cc := kernels.DDnetCounts(ddnet.PaperConfig().Arch(), 512)
	out := map[string][4]float64{}
	for _, p := range device.Catalog() {
		var row [4]float64
		for i, v := range []kernels.Variant{kernels.Baseline, kernels.REF, kernels.REFPF, kernels.REFPFLU} {
			row[i] = p.Project(cc, v, false).Total()
		}
		out[p.Name] = row
	}
	return out
}

// Table7 renders the optimization ladder (paper Table 7), adding a
// measured ladder from this machine's Go kernels.
func Table7(cfg Config) string {
	paper := map[string][4]float64{
		"Nvidia V100 GPU":              {63.82, 0.10, 0.10, 0.10},
		"Nvidia P100 GPU":              {152.08, 0.29, 0.26, 0.25},
		"AMD Radeon Vega Frontier GPU": {219.60, 0.25, 0.25, 0.25},
		"Nvidia T4 GPU":                {59.30, 0.32, 0.31, 0.29},
		"Intel Xeon Gold 6128 CPU":     {6.51, 1.95, 1.69, 1.64},
		"Intel Arria 10 GX 1150 FPGA":  {278.53, 130.62, 127.72, 65.83},
	}
	proj := Table7Data()
	t := &table{header: []string{"Platform", "Baseline", "+REF", "+REF+PF", "+REF+PF+LU",
		"paper: Baseline", "REF", "PF", "LU"}}
	for _, p := range device.Catalog() {
		pr := paper[p.Name]
		pj := proj[p.Name]
		t.add(p.Name, secs(pj[0]), secs(pj[1]), secs(pj[2]), secs(pj[3]),
			secs(pr[0]), secs(pr[1]), secs(pr[2]), secs(pr[3]))
	}

	// Measured ladder at reduced size on this machine.
	size := 96
	if cfg.Quick {
		size = 48
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var measured [4]time.Duration
	for i, v := range []kernels.Variant{kernels.Baseline, kernels.REF, kernels.REFPF, kernels.REFPFLU} {
		measured[i] = kernels.RunDDnetInference(ddnet.PaperConfig().Arch(), size, v, 0, rng).Total()
	}
	note := fmt.Sprintf("Measured on this machine (Go kernels, %d×%d): Baseline %.3fs, +REF %.3fs, +PF %.3fs, +LU %.3fs\n",
		size, size, measured[0].Seconds(), measured[1].Seconds(), measured[2].Seconds(), measured[3].Seconds())
	return "Table 7: DDnet execution time by optimization (projected) — REF: refactoring, PF: prefetching, LU: loop unrolling\n" +
		t.String() + "\n" + note
}

// Table10 renders the qualitative framework comparison (paper Table 10).
func Table10(cfg Config) string {
	t := &table{header: []string{"Framework", "Image enhancement", "Image segmentation",
		"2D/3D", "Data labeling", "CPU", "GPU", "FPGA"}}
	t.add("ComputeCOVID19+", "yes", "yes", "3D", "not required", "yes", "yes", "yes")
	t.add("He et al. [15]", "no", "no", "2D", "manual", "yes", "yes", "no")
	t.add("M-inception [41]", "no", "yes", "2D", "manual", "?", "?", "no")
	t.add("DRE-Net [40]", "no", "yes", "2D", "manual", "?", "?", "no")
	t.add("Li et al. [25]", "no", "yes", "2D", "manual", "?", "yes", "no")
	t.add("DeCoVNet [46]", "no", "yes", "3D", "not required", "?", "yes", "no")
	t.add("Harmon et al. [13]", "no", "yes", "3D", "not required", "no", "yes", "no")
	t.add("Serte et al. [38]", "no", "no", "2D/3D", "not required", "?", "yes", "no")
	return "Table 10: Comparison with existing similar work\n" + t.String()
}

// trim returns s without trailing blank lines.
func trim(s string) string { return strings.TrimRight(s, "\n") + "\n" }
