package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"computecovid19/internal/tensor"
)

func TestMSEAndPSNR(t *testing.T) {
	a := tensor.FromSlice([]float32{0, 0, 0, 0}, 4)
	b := tensor.FromSlice([]float32{0.1, 0.1, 0.1, 0.1}, 4)
	if got := MSE(a, b); math.Abs(got-0.01) > 1e-9 {
		t.Fatalf("MSE = %v, want 0.01", got)
	}
	if got := PSNR(a, b, 1); math.Abs(got-20) > 1e-6 {
		t.Fatalf("PSNR = %v, want 20 dB", got)
	}
	if !math.IsInf(PSNR(a, a, 1), 1) {
		t.Fatal("PSNR of identical images should be +Inf")
	}
}

func TestSSIMIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	img := tensor.New(16, 16).RandU(rng, 0, 1)
	if got := SSIM(img, img); math.Abs(got-1) > 1e-4 {
		t.Fatalf("SSIM(x,x) = %v, want 1", got)
	}
}

func TestMSSSIMOrdersByDegradation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	clean := tensor.New(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			clean.Set(float32(x+y)/128, y, x)
		}
	}
	little := clean.Clone().AddInPlace(tensor.New(64, 64).RandN(rng, 0, 0.02))
	lots := clean.Clone().AddInPlace(tensor.New(64, 64).RandN(rng, 0, 0.2))
	sLittle := MSSSIM(clean, little)
	sLots := MSSSIM(clean, lots)
	if !(sLittle > sLots) {
		t.Fatalf("MS-SSIM should order degradations: little=%v lots=%v", sLittle, sLots)
	}
	if math.IsNaN(sLittle) || sLittle > 1.0001 {
		t.Fatalf("MS-SSIM out of range: %v", sLittle)
	}
}

func TestMSSSIMTinyImageNaN(t *testing.T) {
	a := tensor.New(4, 4)
	if !math.IsNaN(MSSSIM(a, a)) {
		t.Fatal("MS-SSIM on image smaller than window should be NaN")
	}
}

func TestConfusionCounts(t *testing.T) {
	probs := []float64{0.9, 0.8, 0.3, 0.2, 0.6, 0.1}
	labels := []bool{true, true, true, false, false, false}
	c := Confuse(probs, labels, 0.5)
	if c.TP != 2 || c.FN != 1 || c.FP != 1 || c.TN != 2 {
		t.Fatalf("confusion = %+v", c)
	}
	if math.Abs(c.Accuracy()-4.0/6.0) > 1e-9 {
		t.Fatalf("accuracy = %v", c.Accuracy())
	}
	if math.Abs(c.TPR()-2.0/3.0) > 1e-9 {
		t.Fatalf("TPR = %v", c.TPR())
	}
	if math.Abs(c.FPR()-1.0/3.0) > 1e-9 {
		t.Fatalf("FPR = %v", c.FPR())
	}
	if math.Abs(c.Precision()-2.0/3.0) > 1e-9 {
		t.Fatalf("precision = %v", c.Precision())
	}
	if c.F1() <= 0 || c.F1() > 1 {
		t.Fatalf("F1 = %v", c.F1())
	}
}

func TestConfusionEmptyDenominators(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.TPR() != 0 || c.FPR() != 0 || c.Precision() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion matrix should report zeros, not NaN")
	}
}

func TestAUCPerfectClassifier(t *testing.T) {
	probs := []float64{0.9, 0.8, 0.7, 0.3, 0.2, 0.1}
	labels := []bool{true, true, true, false, false, false}
	if got := AUC(probs, labels); math.Abs(got-1) > 1e-9 {
		t.Fatalf("AUC of perfect classifier = %v, want 1", got)
	}
}

func TestAUCWorstClassifier(t *testing.T) {
	probs := []float64{0.1, 0.2, 0.9, 0.8}
	labels := []bool{true, true, false, false}
	if got := AUC(probs, labels); math.Abs(got) > 1e-9 {
		t.Fatalf("AUC of inverted classifier = %v, want 0", got)
	}
}

func TestAUCRandomIsHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 4000
	probs := make([]float64, n)
	labels := make([]bool, n)
	for i := range probs {
		probs[i] = rng.Float64()
		labels[i] = rng.Intn(2) == 0
	}
	if got := AUC(probs, labels); math.Abs(got-0.5) > 0.03 {
		t.Fatalf("AUC of random scores = %v, want ~0.5", got)
	}
}

func TestAUCHandlesTies(t *testing.T) {
	probs := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, false, true, false}
	if got := AUC(probs, labels); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("AUC with all ties = %v, want 0.5", got)
	}
}

func TestROCEndpoints(t *testing.T) {
	probs := []float64{0.9, 0.1}
	labels := []bool{true, false}
	curve := ROC(probs, labels)
	first, last := curve[0], curve[len(curve)-1]
	if first.FPR != 0 || first.TPR != 0 {
		t.Fatalf("ROC should start at origin, got %+v", first)
	}
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("ROC should end at (1,1), got %+v", last)
	}
}

func TestROCMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	probs := make([]float64, 200)
	labels := make([]bool, 200)
	for i := range probs {
		probs[i] = rng.Float64()
		labels[i] = rng.Intn(2) == 0
	}
	curve := ROC(probs, labels)
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Fatalf("ROC not monotone at %d: %+v -> %+v", i, curve[i-1], curve[i])
		}
	}
}

func TestBestThresholdSeparable(t *testing.T) {
	probs := []float64{0.9, 0.85, 0.8, 0.2, 0.15, 0.1}
	labels := []bool{true, true, true, false, false, false}
	th := BestThreshold(probs, labels)
	c := Confuse(probs, labels, th)
	if c.Accuracy() != 1 {
		t.Fatalf("best threshold %v gives accuracy %v, want 1", th, c.Accuracy())
	}
}

// Property: AUC is invariant to any strictly monotone transform of the
// scores.
func TestAUCMonotoneInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50
		probs := make([]float64, n)
		labels := make([]bool, n)
		for i := range probs {
			probs[i] = rng.Float64()
			labels[i] = rng.Intn(2) == 0
		}
		squashed := make([]float64, n)
		for i, p := range probs {
			squashed[i] = 1 / (1 + math.Exp(-5*(p-0.5)))
		}
		return math.Abs(AUC(probs, labels)-AUC(squashed, labels)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: accuracy + error rate = 1 for any threshold.
func TestAccuracyComplementProperty(t *testing.T) {
	f := func(seed int64, thRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		th := float64(thRaw) / 255
		n := 30
		probs := make([]float64, n)
		labels := make([]bool, n)
		for i := range probs {
			probs[i] = rng.Float64()
			labels[i] = rng.Intn(2) == 0
		}
		c := Confuse(probs, labels, th)
		errRate := float64(c.FP+c.FN) / float64(n)
		return math.Abs(c.Accuracy()+errRate-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
