// Package metrics implements the evaluation measures used throughout the
// paper: image-quality metrics (MSE, PSNR, SSIM, MS-SSIM — §5.2.1,
// Table 8) and classification metrics (accuracy, TPR/FPR, ROC curves,
// AUC, confusion matrices — §5.2.2, Equations 3–5, Figure 13, Table 9).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"computecovid19/internal/ag"
	"computecovid19/internal/tensor"
)

// MSE returns the mean squared error between two equally shaped tensors.
func MSE(a, b *tensor.Tensor) float64 {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("metrics: MSE shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	s := 0.0
	for i, v := range a.Data {
		d := float64(v) - float64(b.Data[i])
		s += d * d
	}
	return s / float64(len(a.Data))
}

// PSNR returns the peak signal-to-noise ratio in dB for images with the
// given dynamic range (1.0 for [0,1] data). Identical images yield +Inf.
func PSNR(a, b *tensor.Tensor, peak float64) float64 {
	mse := MSE(a, b)
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(peak*peak/mse)
}

// image4D views an image tensor as NCHW for the SSIM ops: 2D (H, W)
// becomes (1,1,H,W); 3D (C,H,W) becomes (1,C,H,W); 4D passes through.
func image4D(t *tensor.Tensor) *tensor.Tensor {
	switch t.Rank() {
	case 2:
		return t.Reshape(1, 1, t.Shape[0], t.Shape[1])
	case 3:
		return t.Reshape(1, t.Shape[0], t.Shape[1], t.Shape[2])
	case 4:
		return t
	default:
		panic(fmt.Sprintf("metrics: cannot view rank-%d tensor as image", t.Rank()))
	}
}

// SSIM returns the structural similarity index between two images
// (rank 2, 3, or 4), using the canonical 11×11 σ=1.5 Gaussian window.
func SSIM(a, b *tensor.Tensor) float64 {
	cfg := ag.DefaultSSIM()
	return float64(ag.SSIM(ag.Const(image4D(a)), ag.Const(image4D(b)), cfg).Scalar())
}

// MSSSIM returns the multi-scale structural similarity index, using as
// many of the five canonical scales as the image size permits. Images
// smaller than the window return NaN.
func MSSSIM(a, b *tensor.Tensor) float64 {
	cfg := ag.DefaultSSIM()
	a4, b4 := image4D(a), image4D(b)
	scales := ag.MaxMSSSIMScales(a4.Shape[2], a4.Shape[3], cfg.WindowSize)
	if scales == 0 {
		return math.NaN()
	}
	return float64(ag.MSSSIM(ag.Const(a4), ag.Const(b4), cfg, scales).Scalar())
}

// Confusion is a binary confusion matrix (paper Table 9).
type Confusion struct {
	TP, FP, FN, TN int
}

// Confuse tallies predictions (probability ≥ threshold ⇒ positive)
// against binary labels.
func Confuse(probs []float64, labels []bool, threshold float64) Confusion {
	if len(probs) != len(labels) {
		panic("metrics: probs and labels length mismatch")
	}
	var c Confusion
	for i, p := range probs {
		pred := p >= threshold
		switch {
		case pred && labels[i]:
			c.TP++
		case pred && !labels[i]:
			c.FP++
		case !pred && labels[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Accuracy is (TP+TN)/(TP+FP+FN+TN) — Equation 3.
func (c Confusion) Accuracy() float64 {
	n := c.TP + c.FP + c.FN + c.TN
	if n == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(n)
}

// TPR is the true-positive rate (sensitivity/recall) — Equation 4.
func (c Confusion) TPR() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FPR is the false-positive rate — Equation 5.
func (c Confusion) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// Specificity is the true-negative rate.
func (c Confusion) Specificity() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.TN) / float64(c.FP+c.TN)
}

// Precision is TP/(TP+FP).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.TPR()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// ROCPoint is one operating point of a receiver operating characteristic
// curve.
type ROCPoint struct {
	Threshold float64
	FPR, TPR  float64
}

// ROC returns the ROC curve swept over every distinct score threshold,
// ordered by increasing FPR (from the (0,0) corner to (1,1)).
func ROC(probs []float64, labels []bool) []ROCPoint {
	if len(probs) != len(labels) {
		panic("metrics: probs and labels length mismatch")
	}
	type scored struct {
		p   float64
		pos bool
	}
	s := make([]scored, len(probs))
	nPos, nNeg := 0, 0
	for i := range probs {
		s[i] = scored{probs[i], labels[i]}
		if labels[i] {
			nPos++
		} else {
			nNeg++
		}
	}
	sort.Slice(s, func(i, j int) bool { return s[i].p > s[j].p })

	curve := []ROCPoint{{Threshold: math.Inf(1), FPR: 0, TPR: 0}}
	tp, fp := 0, 0
	i := 0
	for i < len(s) {
		// Consume ties together so the curve is well defined.
		j := i
		for j < len(s) && s[j].p == s[i].p {
			if s[j].pos {
				tp++
			} else {
				fp++
			}
			j++
		}
		pt := ROCPoint{Threshold: s[i].p}
		if nPos > 0 {
			pt.TPR = float64(tp) / float64(nPos)
		}
		if nNeg > 0 {
			pt.FPR = float64(fp) / float64(nNeg)
		}
		curve = append(curve, pt)
		i = j
	}
	return curve
}

// AUC returns the area under the ROC curve via the trapezoid rule.
// Equivalently it is the probability that a random positive scores above
// a random negative (the Mann–Whitney U statistic).
func AUC(probs []float64, labels []bool) float64 {
	curve := ROC(probs, labels)
	area := 0.0
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}

// BestThreshold returns the threshold maximizing Youden's J statistic
// (TPR − FPR), the standard "optimal threshold" choice for a confusion
// matrix like the paper's Table 9 (threshold 0.061).
func BestThreshold(probs []float64, labels []bool) float64 {
	curve := ROC(probs, labels)
	best, bestJ := 0.5, math.Inf(-1)
	for _, pt := range curve[1:] {
		if j := pt.TPR - pt.FPR; j > bestJ {
			bestJ = j
			best = pt.Threshold
		}
	}
	return best
}
