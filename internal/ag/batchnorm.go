package ag

import (
	"fmt"
	"math"

	"computecovid19/internal/tensor"
)

// BatchNorm normalizes x per channel. It is rank-generic: x is treated
// as (N, C, spatial...) so the same op serves BatchNorm2d (DDnet) and
// BatchNorm3d (the classifier). gamma and beta are (C) parameters.
//
// In training mode the batch statistics are used and runningMean /
// runningVar (plain tensors, not tape nodes) are updated in place with
// the given momentum, matching PyTorch semantics:
//
//	running = (1-momentum)*running + momentum*batch
//
// In eval mode the running statistics are used and the op reduces to an
// affine transform.
func BatchNorm(x, gamma, beta *Value, runningMean, runningVar *tensor.Tensor,
	training bool, momentum, eps float32) *Value {

	if x.T.Rank() < 2 {
		panic(fmt.Sprintf("ag: BatchNorm wants rank >= 2, got %v", x.T.Shape))
	}
	n := x.T.Shape[0]
	c := x.T.Shape[1]
	spatial := 1
	for _, d := range x.T.Shape[2:] {
		spatial *= d
	}
	if gamma.T.Numel() != c || beta.T.Numel() != c {
		panic(fmt.Sprintf("ag: BatchNorm gamma/beta must have %d elements", c))
	}
	m := n * spatial // elements per channel

	mean := make([]float64, c)
	varr := make([]float64, c)
	if training {
		for ni := 0; ni < n; ni++ {
			for ci := 0; ci < c; ci++ {
				base := (ni*c + ci) * spatial
				for i := 0; i < spatial; i++ {
					mean[ci] += float64(x.T.Data[base+i])
				}
			}
		}
		for ci := range mean {
			mean[ci] /= float64(m)
		}
		for ni := 0; ni < n; ni++ {
			for ci := 0; ci < c; ci++ {
				base := (ni*c + ci) * spatial
				for i := 0; i < spatial; i++ {
					d := float64(x.T.Data[base+i]) - mean[ci]
					varr[ci] += d * d
				}
			}
		}
		for ci := range varr {
			varr[ci] /= float64(m) // biased variance, as used for normalization
		}
		if runningMean != nil && runningVar != nil {
			for ci := 0; ci < c; ci++ {
				runningMean.Data[ci] = (1-momentum)*runningMean.Data[ci] + momentum*float32(mean[ci])
				// PyTorch stores the unbiased variance in running_var.
				unbiased := varr[ci]
				if m > 1 {
					unbiased = varr[ci] * float64(m) / float64(m-1)
				}
				runningVar.Data[ci] = (1-momentum)*runningVar.Data[ci] + momentum*float32(unbiased)
			}
		}
	} else {
		if runningMean == nil || runningVar == nil {
			panic("ag: BatchNorm eval mode requires running statistics")
		}
		for ci := 0; ci < c; ci++ {
			mean[ci] = float64(runningMean.Data[ci])
			varr[ci] = float64(runningVar.Data[ci])
		}
	}

	invStd := make([]float32, c)
	for ci := 0; ci < c; ci++ {
		invStd[ci] = float32(1.0 / math.Sqrt(varr[ci]+float64(eps)))
	}

	out := tensor.New(x.T.Shape...)
	// xhat is retained for the backward pass, but only the training
	// branch needs it materialized: in eval mode the statistics are
	// constants, so the gamma gradient can recompute x̂ on the fly and
	// the forward stays allocation-lean (it runs on every serving scan).
	var xhat []float32
	if training {
		xhat = make([]float32, len(x.T.Data))
	}
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * spatial
			g := gamma.T.Data[ci]
			b := beta.T.Data[ci]
			mu := float32(mean[ci])
			is := invStd[ci]
			if xhat != nil {
				for i := 0; i < spatial; i++ {
					xh := (x.T.Data[base+i] - mu) * is
					xhat[base+i] = xh
					out.Data[base+i] = g*xh + b
				}
			} else {
				for i := 0; i < spatial; i++ {
					xh := (x.T.Data[base+i] - mu) * is
					out.Data[base+i] = g*xh + b
				}
			}
		}
	}

	var node *Value
	node = newNode("batchnorm", out, func() {
		gy := node.Grad.Data
		if gamma.needGrad {
			gg := gamma.ensureGrad().Data
			for ni := 0; ni < n; ni++ {
				for ci := 0; ci < c; ci++ {
					base := (ni*c + ci) * spatial
					mu := float32(mean[ci])
					is := invStd[ci]
					var acc float32
					if xhat != nil {
						for i := 0; i < spatial; i++ {
							acc += gy[base+i] * xhat[base+i]
						}
					} else {
						for i := 0; i < spatial; i++ {
							acc += gy[base+i] * ((x.T.Data[base+i] - mu) * is)
						}
					}
					gg[ci] += acc
				}
			}
		}
		if beta.needGrad {
			gb := beta.ensureGrad().Data
			for ni := 0; ni < n; ni++ {
				for ci := 0; ci < c; ci++ {
					base := (ni*c + ci) * spatial
					var acc float32
					for i := 0; i < spatial; i++ {
						acc += gy[base+i]
					}
					gb[ci] += acc
				}
			}
		}
		if x.needGrad {
			gx := x.ensureGrad().Data
			if training {
				// Full batch-norm backward: the batch statistics depend
				// on x, so gradients flow through mean and variance too.
				for ci := 0; ci < c; ci++ {
					var sumDy, sumDyXhat float64
					for ni := 0; ni < n; ni++ {
						base := (ni*c + ci) * spatial
						for i := 0; i < spatial; i++ {
							sumDy += float64(gy[base+i])
							sumDyXhat += float64(gy[base+i]) * float64(xhat[base+i])
						}
					}
					g := float64(gamma.T.Data[ci])
					is := float64(invStd[ci])
					mf := float64(m)
					for ni := 0; ni < n; ni++ {
						base := (ni*c + ci) * spatial
						for i := 0; i < spatial; i++ {
							dy := float64(gy[base+i])
							xh := float64(xhat[base+i])
							gx[base+i] += float32(g * is / mf * (mf*dy - sumDy - xh*sumDyXhat))
						}
					}
				}
			} else {
				// Eval mode: statistics are constants.
				for ni := 0; ni < n; ni++ {
					for ci := 0; ci < c; ci++ {
						base := (ni*c + ci) * spatial
						scale := gamma.T.Data[ci] * invStd[ci]
						for i := 0; i < spatial; i++ {
							gx[base+i] += gy[base+i] * scale
						}
					}
				}
			}
		}
	}, x, gamma, beta)
	return node
}
