package ag

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"computecovid19/internal/tensor"
)

func TestBackwardRequiresScalar(t *testing.T) {
	x := Param(tensor.New(2, 2))
	y := Square(x)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar Backward")
		}
	}()
	y.Backward()
}

func TestConstStopsGradient(t *testing.T) {
	x := Const(tensor.FromSlice([]float32{1, 2}, 2))
	y := Mean(Square(x))
	if y.NeedGrad() {
		t.Fatal("graph of constants should not need grad")
	}
	y.Backward() // must be a no-op, not a panic
	if x.Grad != nil {
		t.Fatal("const leaf received a gradient")
	}
}

func TestGradAccumulatesAcrossFanOut(t *testing.T) {
	// y = mean(x + x) → dy/dx = 2/n per element.
	x := Param(tensor.FromSlice([]float32{1, 2, 3, 4}, 4))
	Mean(Add(x, x)).Backward()
	for i, g := range x.Grad.Data {
		if math.Abs(float64(g)-0.5) > 1e-6 {
			t.Fatalf("grad[%d] = %v, want 0.5", i, g)
		}
	}
}

func TestZeroGradBetweenSteps(t *testing.T) {
	x := Param(tensor.FromSlice([]float32{3}, 1))
	Sum(x).Backward()
	Sum(x).Backward()
	if x.Grad.Data[0] != 2 {
		t.Fatalf("grad accumulated = %v, want 2 (two backward passes)", x.Grad.Data[0])
	}
	x.ZeroGrad()
	if x.Grad.Data[0] != 0 {
		t.Fatal("ZeroGrad did not clear")
	}
}

func TestDetachCutsTape(t *testing.T) {
	x := Param(tensor.FromSlice([]float32{2}, 1))
	y := Square(x).Detach()
	z := Sum(Square(y))
	if z.NeedGrad() {
		t.Fatal("detached graph should not need grad")
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 3x3 input, 2x2 kernel of ones, no pad, stride 1 → each output is
	// the sum of a 2x2 block.
	x := Const(tensor.FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3))
	w := Const(tensor.FromSlice([]float32{1, 1, 1, 1}, 1, 1, 2, 2))
	y := Conv2D(x, w, nil, Conv2DConfig{Stride: 1})
	want := []float32{12, 16, 24, 28}
	for i, v := range want {
		if y.T.Data[i] != v {
			t.Fatalf("conv out[%d] = %v, want %v", i, y.T.Data[i], v)
		}
	}
}

func TestConv2DOutputShape(t *testing.T) {
	x := Const(tensor.New(2, 3, 16, 16))
	w := Const(tensor.New(8, 3, 7, 7))
	y := Conv2D(x, w, nil, Conv2DConfig{Stride: 1, Padding: 3})
	wantShape := []int{2, 8, 16, 16}
	for i, d := range wantShape {
		if y.T.Shape[i] != d {
			t.Fatalf("shape = %v, want %v", y.T.Shape, wantShape)
		}
	}
}

func TestConvTranspose2DUpsamples(t *testing.T) {
	x := Const(tensor.New(1, 1, 4, 4).Fill(1))
	w := Const(tensor.New(1, 1, 2, 2).Fill(1))
	y := ConvTranspose2D(x, w, nil, Conv2DConfig{Stride: 2})
	if y.T.Shape[2] != 8 || y.T.Shape[3] != 8 {
		t.Fatalf("convT shape = %v, want 8x8 spatial", y.T.Shape)
	}
	// Stride-2 scatter of a 2x2 ones kernel tiles without overlap: all 1s.
	for i, v := range y.T.Data {
		if v != 1 {
			t.Fatalf("convT out[%d] = %v, want 1", i, v)
		}
	}
}

func TestMaxPoolKnownValues(t *testing.T) {
	x := Const(tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4))
	y := MaxPool2D(x, Pool2DConfig{Kernel: 2, Stride: 2})
	want := []float32{6, 8, 14, 16}
	for i, v := range want {
		if y.T.Data[i] != v {
			t.Fatalf("maxpool out[%d] = %v, want %v", i, y.T.Data[i], v)
		}
	}
}

func TestMaxPoolDDnetHalvesSize(t *testing.T) {
	// Paper Table 2: pooling with 3x3 filter, stride 2 halves 512→256.
	x := Const(tensor.New(1, 16, 32, 32))
	y := MaxPool2D(x, Pool2DConfig{Kernel: 3, Stride: 2, Padding: 1})
	if y.T.Shape[2] != 16 || y.T.Shape[3] != 16 {
		t.Fatalf("pool shape = %v, want spatial 16x16", y.T.Shape)
	}
}

func TestUpsampleBilinearValues(t *testing.T) {
	x := Const(tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2))
	y := UpsampleBilinear2D(x, 2)
	if y.T.Shape[2] != 4 || y.T.Shape[3] != 4 {
		t.Fatalf("upsample shape = %v", y.T.Shape)
	}
	// Corners replicate the corner values under half-pixel mapping.
	if y.T.At(0, 0, 0, 0) != 1 || y.T.At(0, 0, 3, 3) != 4 {
		t.Fatalf("upsample corners = %v, %v; want 1, 4",
			y.T.At(0, 0, 0, 0), y.T.At(0, 0, 3, 3))
	}
	// The mean must be preserved by bilinear interpolation of this ramp.
	if math.Abs(y.T.Mean()-2.5) > 1e-6 {
		t.Fatalf("upsample mean = %v, want 2.5", y.T.Mean())
	}
}

func TestUpsampleThenPoolRoundTrip(t *testing.T) {
	// avgpool(upsample(x)) == x for factor 2 on smooth (constant) input.
	x := Const(tensor.New(1, 1, 4, 4).Fill(3.5))
	up := UpsampleBilinear2D(x, 2)
	down := AvgPool2D(up, Pool2DConfig{Kernel: 2, Stride: 2})
	if !down.T.AllClose(x.T, 1e-6) {
		t.Fatal("upsample→avgpool does not round-trip a constant image")
	}
}

func TestConcatValues(t *testing.T) {
	a := Const(tensor.FromSlice([]float32{1, 2}, 1, 1, 1, 2))
	b := Const(tensor.FromSlice([]float32{3, 4, 5, 6}, 1, 2, 1, 2))
	y := Concat(1, a, b)
	if y.T.Shape[1] != 3 {
		t.Fatalf("concat channels = %d, want 3", y.T.Shape[1])
	}
	want := []float32{1, 2, 3, 4, 5, 6}
	for i, v := range want {
		if y.T.Data[i] != v {
			t.Fatalf("concat out[%d] = %v, want %v", i, y.T.Data[i], v)
		}
	}
}

func TestBatchNormNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x := Const(tensor.New(4, 2, 3, 3).RandN(rng, 5, 3))
	gamma := Const(tensor.New(2).Fill(1))
	beta := Const(tensor.New(2))
	rm := tensor.New(2)
	rv := tensor.New(2).Fill(1)
	y := BatchNorm(x, gamma, beta, rm, rv, true, 0.1, 1e-5)
	if math.Abs(y.T.Mean()) > 1e-4 {
		t.Fatalf("batchnorm output mean = %v, want ~0", y.T.Mean())
	}
	if math.Abs(y.T.Std()-1) > 1e-3 {
		t.Fatalf("batchnorm output std = %v, want ~1", y.T.Std())
	}
	// Running stats must have moved toward the batch stats.
	if rm.Data[0] == 0 || rv.Data[0] == 1 {
		t.Fatal("running statistics not updated in training mode")
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	x := Const(tensor.FromSlice([]float32{10, 10, 10, 10}, 1, 1, 2, 2))
	gamma := Const(tensor.New(1).Fill(2))
	beta := Const(tensor.New(1).Fill(1))
	rm := tensor.New(1).Fill(10)
	rv := tensor.New(1).Fill(4)
	y := BatchNorm(x, gamma, beta, rm, rv, false, 0.1, 0)
	// (10-10)/2*2+1 = 1 everywhere.
	for _, v := range y.T.Data {
		if math.Abs(float64(v)-1) > 1e-5 {
			t.Fatalf("eval batchnorm = %v, want 1", v)
		}
	}
}

func TestSigmoidRange(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		x := Const(tensor.FromSlice(append([]float32(nil), vals...), len(vals)))
		y := Sigmoid(x)
		for _, v := range y.T.Data {
			if !(v >= 0 && v <= 1) && !math.IsNaN(float64(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSSIMIdentityIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := Const(tensor.New(1, 1, 16, 16).RandU(rng, 0, 1))
	got := float64(SSIM(x, x, DefaultSSIM()).Scalar())
	if math.Abs(got-1) > 1e-4 {
		t.Fatalf("SSIM(x,x) = %v, want 1", got)
	}
}

func TestSSIMDecreasesWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := tensor.New(1, 1, 32, 32)
	for i := range x.Data {
		x.Data[i] = float32(i%32) / 32
	}
	noisy := x.Clone()
	noise := tensor.New(1, 1, 32, 32).RandN(rng, 0, 0.1)
	noisy.AddInPlace(noise)
	s := float64(SSIM(Const(x), Const(noisy), DefaultSSIM()).Scalar())
	if s >= 0.999 || s <= 0 {
		t.Fatalf("SSIM(x, x+noise) = %v, want in (0, 0.999)", s)
	}
}

func TestMSSSIMIdentityIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := Const(tensor.New(1, 1, 48, 48).RandU(rng, 0, 1))
	cfg := SSIMConfig{WindowSize: 7, Sigma: 1.5, L: 1, K1: 0.01, K2: 0.03}
	got := float64(MSSSIM(x, x, cfg, MaxMSSSIMScales(48, 48, 7)).Scalar())
	if math.Abs(got-1) > 1e-3 {
		t.Fatalf("MSSSIM(x,x) = %v, want 1", got)
	}
}

func TestMaxMSSSIMScales(t *testing.T) {
	if got := MaxMSSSIMScales(512, 512, 11); got != 5 {
		t.Fatalf("512px supports %d scales, want 5", got)
	}
	if got := MaxMSSSIMScales(16, 16, 11); got != 1 {
		t.Fatalf("16px supports %d scales, want 1", got)
	}
	if got := MaxMSSSIMScales(8, 8, 11); got != 0 {
		t.Fatalf("8px supports %d scales, want 0", got)
	}
}

func TestGaussianWindowNormalized(t *testing.T) {
	w := GaussianWindow(11, 1.5)
	if math.Abs(w.Sum()-1) > 1e-5 {
		t.Fatalf("window sum = %v, want 1", w.Sum())
	}
	// Symmetry.
	if w.At(0, 0) != w.At(10, 10) || w.At(0, 10) != w.At(10, 0) {
		t.Fatal("window not symmetric")
	}
	// Peak at center.
	if w.ArgMax() != 5*11+5 {
		t.Fatalf("window peak at %d, want center", w.ArgMax())
	}
}

func TestBCELossKnownValue(t *testing.T) {
	p := Const(tensor.FromSlice([]float32{0.5, 0.5}, 2))
	y := Const(tensor.FromSlice([]float32{1, 0}, 2))
	got := float64(BCELoss(p, y).Scalar())
	want := math.Log(2)
	if math.Abs(got-want) > 1e-5 {
		t.Fatalf("BCE = %v, want ln2 = %v", got, want)
	}
}

func TestBCEWithLogitsMatchesBCE(t *testing.T) {
	logits := Const(tensor.FromSlice([]float32{-2, -0.5, 0.5, 2}, 4))
	y := Const(tensor.FromSlice([]float32{0, 1, 0, 1}, 4))
	direct := float64(BCEWithLogitsLoss(logits, y).Scalar())
	viaSigmoid := float64(BCELoss(Sigmoid(logits), y).Scalar())
	if math.Abs(direct-viaSigmoid) > 1e-5 {
		t.Fatalf("BCEWithLogits = %v, BCE∘sigmoid = %v", direct, viaSigmoid)
	}
}

func TestLinearKnownValues(t *testing.T) {
	x := Const(tensor.FromSlice([]float32{1, 2}, 1, 2))
	w := Const(tensor.FromSlice([]float32{3, 4, 5, 6}, 2, 2))
	b := Const(tensor.FromSlice([]float32{10, 20}, 2))
	y := Linear(x, w, b)
	if y.T.Data[0] != 21 || y.T.Data[1] != 37 {
		t.Fatalf("linear = %v, want [21 37]", y.T.Data)
	}
}

func TestConv3DShapeAndGAP(t *testing.T) {
	x := Const(tensor.New(1, 2, 8, 8, 8))
	w := Const(tensor.New(4, 2, 3, 3, 3))
	y := Conv3D(x, w, nil, Conv3DConfig{Stride: 2, Padding: 1})
	want := []int{1, 4, 4, 4, 4}
	for i, d := range want {
		if y.T.Shape[i] != d {
			t.Fatalf("conv3d shape = %v, want %v", y.T.Shape, want)
		}
	}
	g := GlobalAvgPool3D(y)
	if g.T.Shape[0] != 1 || g.T.Shape[1] != 4 {
		t.Fatalf("gap shape = %v, want (1,4)", g.T.Shape)
	}
}

// Property: conv2d with a 1x1 identity kernel is the identity map.
func TestConvIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := tensor.New(1, 1, 4, 4).RandN(rng, 0, 1)
		w := tensor.FromSlice([]float32{1}, 1, 1, 1, 1)
		y := Conv2D(Const(x), Const(w), nil, Conv2DConfig{Stride: 1})
		return y.T.AllClose(x, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: SSIM is symmetric in its arguments.
func TestSSIMSymmetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Const(tensor.New(1, 1, 16, 16).RandU(rng, 0, 1))
		b := Const(tensor.New(1, 1, 16, 16).RandU(rng, 0, 1))
		s1 := SSIM(a, b, DefaultSSIM()).Scalar()
		s2 := SSIM(b, a, DefaultSSIM()).Scalar()
		return math.Abs(float64(s1-s2)) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
