package ag

// MSELoss returns mean((pred - target)²), the first term of DDnet's
// composite loss (Equation 1 of the paper).
func MSELoss(pred, target *Value) *Value {
	d := Sub(pred, target)
	return Mean(Square(d))
}

// L1Loss returns mean(|pred - target|).
func L1Loss(pred, target *Value) *Value {
	return Mean(Abs(Sub(pred, target)))
}

// BCELoss returns the binary cross-entropy between predicted
// probabilities p ∈ (0,1) and targets y ∈ {0,1} (Equation 2 of the
// paper). Probabilities are clamped to [eps, 1-eps] for numerical
// stability, as deep-learning frameworks do.
func BCELoss(prob, target *Value) *Value {
	const eps = 1e-7
	p := Clamp(prob, eps, 1-eps)
	// -(y·log p + (1-y)·log(1-p)), averaged.
	term1 := Mul(target, Log(p))
	oneMinusY := AddConst(Neg(target), 1)
	oneMinusP := AddConst(Neg(p), 1)
	term2 := Mul(oneMinusY, Log(oneMinusP))
	return MulConst(Mean(Add(term1, term2)), -1)
}

// BCEWithLogitsLoss fuses Sigmoid and BCELoss for better conditioning:
// loss = mean(max(z,0) - z·y + log(1 + e^{-|z|})).
func BCEWithLogitsLoss(logits, target *Value) *Value {
	zy := Mul(logits, target)
	relu := ReLU(logits)
	// log(1 + exp(-|z|)) computed via the stable softplus form.
	negAbs := Neg(Abs(logits))
	softplus := Log(AddConst(Exp(negAbs), 1))
	return Mean(Add(Sub(relu, zy), softplus))
}
