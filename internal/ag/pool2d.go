package ag

import (
	"fmt"
	"math"

	"computecovid19/internal/parallel"
	"computecovid19/internal/tensor"
)

// Pool2DConfig holds the hyper-parameters of a 2D pooling layer.
type Pool2DConfig struct {
	Kernel  int
	Stride  int
	Padding int
}

// MaxPool2D applies max pooling over each (H, W) plane of a
// (N, C, H, W) tensor. DDnet uses kernel 3, stride 2, padding 1, which
// halves the spatial dimensions. Padded cells act as -inf (ignored); the
// backward pass routes each output gradient to its argmax input.
func MaxPool2D(x *Value, cfg Pool2DConfig) *Value {
	if x.T.Rank() != 4 {
		panic(fmt.Sprintf("ag: MaxPool2D wants rank-4 input, got %v", x.T.Shape))
	}
	n, c, h, w := x.T.Shape[0], x.T.Shape[1], x.T.Shape[2], x.T.Shape[3]
	k, s, p := cfg.Kernel, cfg.Stride, cfg.Padding
	oh, ow := convOutDim(h, k, s, p), convOutDim(w, k, s, p)
	if oh <= 0 || ow <= 0 {
		panic("ag: MaxPool2D output would be empty")
	}
	out := tensor.New(n, c, oh, ow)
	argmax := make([]int32, n*c*oh*ow)

	xd, od := x.T.Data, out.Data
	parallel.ForEach(n*c, 0, func(plane int) {
		xbase := plane * h * w
		obase := plane * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := float32(math.Inf(-1))
				bi := int32(-1)
				for ky := 0; ky < k; ky++ {
					iy := oy*s - p + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < k; kx++ {
						ix := ox*s - p + kx
						if ix < 0 || ix >= w {
							continue
						}
						v := xd[xbase+iy*w+ix]
						if v > best {
							best = v
							bi = int32(xbase + iy*w + ix)
						}
					}
				}
				od[obase+oy*ow+ox] = best
				argmax[obase+oy*ow+ox] = bi
			}
		}
	})

	var node *Value
	node = newNode("maxpool2d", out, func() {
		if x.needGrad {
			gx := x.ensureGrad().Data
			gy := node.Grad.Data
			// Scatter by argmax; parallel over planes keeps writers on
			// disjoint regions because argmax indices stay in-plane.
			parallel.ForEach(n*c, 0, func(plane int) {
				obase := plane * oh * ow
				for i := 0; i < oh*ow; i++ {
					if idx := argmax[obase+i]; idx >= 0 {
						gx[idx] += gy[obase+i]
					}
				}
			})
		}
	}, x)
	return node
}

// AvgPool2D applies average pooling (used between MS-SSIM scales).
// Padded cells are excluded from the average (count_include_pad=false).
func AvgPool2D(x *Value, cfg Pool2DConfig) *Value {
	if x.T.Rank() != 4 {
		panic(fmt.Sprintf("ag: AvgPool2D wants rank-4 input, got %v", x.T.Shape))
	}
	n, c, h, w := x.T.Shape[0], x.T.Shape[1], x.T.Shape[2], x.T.Shape[3]
	k, s, p := cfg.Kernel, cfg.Stride, cfg.Padding
	oh, ow := convOutDim(h, k, s, p), convOutDim(w, k, s, p)
	if oh <= 0 || ow <= 0 {
		panic("ag: AvgPool2D output would be empty")
	}
	out := tensor.New(n, c, oh, ow)
	xd, od := x.T.Data, out.Data
	parallel.ForEach(n*c, 0, func(plane int) {
		xbase := plane * h * w
		obase := plane * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var acc float32
				cnt := 0
				for ky := 0; ky < k; ky++ {
					iy := oy*s - p + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < k; kx++ {
						ix := ox*s - p + kx
						if ix < 0 || ix >= w {
							continue
						}
						acc += xd[xbase+iy*w+ix]
						cnt++
					}
				}
				if cnt > 0 {
					od[obase+oy*ow+ox] = acc / float32(cnt)
				}
			}
		}
	})

	var node *Value
	node = newNode("avgpool2d", out, func() {
		if x.needGrad {
			gx := x.ensureGrad().Data
			gy := node.Grad.Data
			parallel.ForEach(n*c, 0, func(plane int) {
				xbase := plane * h * w
				obase := plane * oh * ow
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						cnt := 0
						for ky := 0; ky < k; ky++ {
							iy := oy*s - p + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < k; kx++ {
								ix := ox*s - p + kx
								if ix >= 0 && ix < w {
									cnt++
								}
							}
						}
						if cnt == 0 {
							continue
						}
						d := gy[obase+oy*ow+ox] / float32(cnt)
						for ky := 0; ky < k; ky++ {
							iy := oy*s - p + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < k; kx++ {
								ix := ox*s - p + kx
								if ix < 0 || ix >= w {
									continue
								}
								gx[xbase+iy*w+ix] += d
							}
						}
					}
				}
			})
		}
	}, x)
	return node
}

// UpsampleBilinear2D scales each (H, W) plane by an integer factor using
// bilinear interpolation — DDnet's un-pooling operation (§2.2.2). It uses
// the half-pixel (align_corners=false) convention: the source coordinate
// for destination pixel d is (d+0.5)/scale - 0.5.
func UpsampleBilinear2D(x *Value, scale int) *Value {
	if x.T.Rank() != 4 {
		panic(fmt.Sprintf("ag: UpsampleBilinear2D wants rank-4 input, got %v", x.T.Shape))
	}
	if scale < 1 {
		panic("ag: UpsampleBilinear2D scale must be >= 1")
	}
	n, c, h, w := x.T.Shape[0], x.T.Shape[1], x.T.Shape[2], x.T.Shape[3]
	oh, ow := h*scale, w*scale
	out := tensor.New(n, c, oh, ow)

	// Precompute per-axis source indices and interpolation weights.
	iy0s, iy1s, wys := bilinearAxis(h, oh)
	ix0s, ix1s, wxs := bilinearAxis(w, ow)

	xd, od := x.T.Data, out.Data
	parallel.ForEach(n*c, 0, func(plane int) {
		xbase := plane * h * w
		obase := plane * oh * ow
		for oy := 0; oy < oh; oy++ {
			y0, y1, wy := iy0s[oy], iy1s[oy], wys[oy]
			for ox := 0; ox < ow; ox++ {
				x0, x1, wx := ix0s[ox], ix1s[ox], wxs[ox]
				v00 := xd[xbase+y0*w+x0]
				v01 := xd[xbase+y0*w+x1]
				v10 := xd[xbase+y1*w+x0]
				v11 := xd[xbase+y1*w+x1]
				top := v00 + wx*(v01-v00)
				bot := v10 + wx*(v11-v10)
				od[obase+oy*ow+ox] = top + wy*(bot-top)
			}
		}
	})

	var node *Value
	node = newNode("upsample2d", out, func() {
		if x.needGrad {
			gx := x.ensureGrad().Data
			gy := node.Grad.Data
			parallel.ForEach(n*c, 0, func(plane int) {
				xbase := plane * h * w
				obase := plane * oh * ow
				for oy := 0; oy < oh; oy++ {
					y0, y1, wy := iy0s[oy], iy1s[oy], wys[oy]
					for ox := 0; ox < ow; ox++ {
						x0, x1, wx := ix0s[ox], ix1s[ox], wxs[ox]
						d := gy[obase+oy*ow+ox]
						gx[xbase+y0*w+x0] += d * (1 - wy) * (1 - wx)
						gx[xbase+y0*w+x1] += d * (1 - wy) * wx
						gx[xbase+y1*w+x0] += d * wy * (1 - wx)
						gx[xbase+y1*w+x1] += d * wy * wx
					}
				}
			})
		}
	}, x)
	return node
}

// bilinearAxis precomputes, for each destination index along one axis,
// the two source indices and the fractional weight of the second one.
// Note x0 == x1 at the clamped borders, where the two weights collapse
// onto the same source cell.
func bilinearAxis(in, out int) (lo, hi []int, frac []float32) {
	lo = make([]int, out)
	hi = make([]int, out)
	frac = make([]float32, out)
	scale := float64(in) / float64(out)
	for d := 0; d < out; d++ {
		src := (float64(d)+0.5)*scale - 0.5
		if src < 0 {
			src = 0
		}
		i0 := int(math.Floor(src))
		if i0 > in-1 {
			i0 = in - 1
		}
		i1 := i0 + 1
		if i1 > in-1 {
			i1 = in - 1
		}
		lo[d], hi[d] = i0, i1
		frac[d] = float32(src - float64(i0))
	}
	return lo, hi, frac
}
