package ag

import (
	"math"
	"math/rand"
	"testing"

	"computecovid19/internal/tensor"
)

// gradCheck verifies the analytic gradient of a scalar-valued function
// against central finite differences for every listed leaf.
//
// build must construct the graph from the leaves and return the scalar
// output; it is re-invoked for each probe so the forward pass sees the
// perturbed data.
func gradCheck(t *testing.T, name string, leaves []*Value, build func() *Value, tol float64) {
	t.Helper()

	out := build()
	for _, l := range leaves {
		l.ZeroGrad()
	}
	out.Backward()

	analytic := make([][]float32, len(leaves))
	for i, l := range leaves {
		if l.Grad == nil {
			t.Fatalf("%s: leaf %d has nil grad after backward", name, i)
		}
		analytic[i] = append([]float32(nil), l.Grad.Data...)
	}

	const h = 1e-3
	for li, l := range leaves {
		for ei := range l.T.Data {
			orig := l.T.Data[ei]
			l.T.Data[ei] = orig + h
			fp := float64(build().Scalar())
			l.T.Data[ei] = orig - h
			fm := float64(build().Scalar())
			l.T.Data[ei] = orig
			numeric := (fp - fm) / (2 * h)
			got := float64(analytic[li][ei])
			diff := math.Abs(got - numeric)
			scale := math.Max(1, math.Max(math.Abs(got), math.Abs(numeric)))
			if diff/scale > tol {
				t.Errorf("%s: leaf %d elem %d: analytic %.6g vs numeric %.6g (rel %.3g)",
					name, li, ei, got, numeric, diff/scale)
				if diff/scale > 10*tol {
					t.FailNow()
				}
			}
		}
	}
}

func randParam(rng *rand.Rand, shape ...int) *Value {
	return Param(tensor.New(shape...).RandN(rng, 0, 1))
}

func randPosParam(rng *rand.Rand, shape ...int) *Value {
	return Param(tensor.New(shape...).RandU(rng, 0.5, 2.0))
}

func TestGradElementwiseBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randParam(rng, 2, 3)
	b := randPosParam(rng, 2, 3)
	gradCheck(t, "add", []*Value{a, b}, func() *Value { return Mean(Add(a, b)) }, 1e-3)
	gradCheck(t, "sub", []*Value{a, b}, func() *Value { return Mean(Square(Sub(a, b))) }, 1e-2)
	gradCheck(t, "mul", []*Value{a, b}, func() *Value { return Mean(Mul(a, b)) }, 1e-3)
	gradCheck(t, "div", []*Value{a, b}, func() *Value { return Mean(Div(a, b)) }, 1e-2)
}

func TestGradElementwiseUnary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randPosParam(rng, 3, 2)
	gradCheck(t, "square", []*Value{a}, func() *Value { return Mean(Square(a)) }, 1e-2)
	gradCheck(t, "sqrt", []*Value{a}, func() *Value { return Mean(Sqrt(a)) }, 1e-2)
	gradCheck(t, "pow1.5", []*Value{a}, func() *Value { return Mean(PowConst(a, 1.5)) }, 1e-2)
	gradCheck(t, "exp", []*Value{a}, func() *Value { return Mean(Exp(a)) }, 1e-2)
	gradCheck(t, "log", []*Value{a}, func() *Value { return Mean(Log(a)) }, 1e-2)
	gradCheck(t, "sigmoid", []*Value{a}, func() *Value { return Mean(Sigmoid(a)) }, 1e-2)
	gradCheck(t, "tanh", []*Value{a}, func() *Value { return Mean(Tanh(a)) }, 1e-2)
	gradCheck(t, "addconst", []*Value{a}, func() *Value { return Mean(AddConst(a, 3)) }, 1e-3)
	gradCheck(t, "mulconst", []*Value{a}, func() *Value { return Mean(MulConst(a, -2)) }, 1e-3)
	gradCheck(t, "sum", []*Value{a}, func() *Value { return Sum(a) }, 1e-3)
}

func TestGradActivationsAwayFromKinks(t *testing.T) {
	// Keep inputs away from 0 so finite differences don't straddle the
	// ReLU/abs kinks.
	data := []float32{-2, -1, 0.5, 1.5, -0.7, 2.2}
	a := Param(tensor.FromSlice(append([]float32(nil), data...), 2, 3))
	gradCheck(t, "leakyrelu", []*Value{a}, func() *Value { return Mean(LeakyReLU(a, 0.01)) }, 1e-2)
	gradCheck(t, "relu", []*Value{a}, func() *Value { return Mean(ReLU(a)) }, 1e-2)
	gradCheck(t, "abs", []*Value{a}, func() *Value { return Mean(Abs(a)) }, 1e-2)
	b := Param(tensor.FromSlice([]float32{-3, -0.5, 0.2, 0.8, 1.5, 3}, 6))
	gradCheck(t, "clamp", []*Value{b}, func() *Value { return Mean(Clamp(b, -1, 1)) }, 1e-2)
}

func TestGradConcatReshape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randParam(rng, 1, 2, 2, 2)
	b := randParam(rng, 1, 3, 2, 2)
	gradCheck(t, "concat", []*Value{a, b}, func() *Value {
		return Mean(Square(Concat(1, a, b)))
	}, 1e-2)
	gradCheck(t, "reshape", []*Value{a}, func() *Value {
		return Mean(Square(Reshape(a, 2, 4)))
	}, 1e-2)
}

func TestGradConv2D(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randParam(rng, 2, 2, 5, 5)
	w := randParam(rng, 3, 2, 3, 3)
	b := randParam(rng, 3)
	gradCheck(t, "conv2d_s1p1", []*Value{x, w, b}, func() *Value {
		return Mean(Square(Conv2D(x, w, b, Conv2DConfig{Stride: 1, Padding: 1})))
	}, 2e-2)
	gradCheck(t, "conv2d_s2p0", []*Value{x, w, b}, func() *Value {
		return Mean(Square(Conv2D(x, w, b, Conv2DConfig{Stride: 2, Padding: 0})))
	}, 2e-2)
	gradCheck(t, "conv2d_nobias", []*Value{x, w}, func() *Value {
		return Mean(Square(Conv2D(x, w, nil, Conv2DConfig{Stride: 1, Padding: 0})))
	}, 2e-2)
}

func TestGradConvTranspose2D(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randParam(rng, 1, 2, 4, 4)
	w := randParam(rng, 2, 3, 3, 3) // (Cin, Cout, KH, KW)
	b := randParam(rng, 3)
	gradCheck(t, "convT_s1p1", []*Value{x, w, b}, func() *Value {
		return Mean(Square(ConvTranspose2D(x, w, b, Conv2DConfig{Stride: 1, Padding: 1})))
	}, 2e-2)
	gradCheck(t, "convT_s2p0", []*Value{x, w, b}, func() *Value {
		return Mean(Square(ConvTranspose2D(x, w, b, Conv2DConfig{Stride: 2, Padding: 0})))
	}, 2e-2)
}

func TestConvTranspose2DAdjointOfConv(t *testing.T) {
	// <conv(x), y> must equal <x, convT(y)> when they share weights:
	// transposed convolution is by definition the adjoint map.
	// 7x7 with k=3, s=2, p=1 gives a 4x4 output whose transpose maps
	// back to exactly 7x7, so the inner products are comparable.
	rng := rand.New(rand.NewSource(6))
	x := tensor.New(1, 2, 7, 7).RandN(rng, 0, 1)
	w := tensor.New(3, 2, 3, 3).RandN(rng, 0, 1)
	cfg := Conv2DConfig{Stride: 2, Padding: 1}
	cx := Conv2D(Const(x), Const(w), nil, cfg)
	y := tensor.New(cx.T.Shape...).RandN(rng, 0, 1)

	// w viewed as (Cin=3 → 2) for the transpose direction requires the
	// (Cin, Cout, KH, KW) layout; build it by permuting.
	wt := tensor.New(3, 2, 3, 3)
	copy(wt.Data, w.Data)
	ty := ConvTranspose2D(Const(y.Reshape(y.Shape...)), Const(wt), nil, cfg)

	lhs := cx.T.Dot(y)
	rhs := x.Dot(ty.T)
	if math.Abs(lhs-rhs) > 1e-2*math.Max(1, math.Abs(lhs)) {
		t.Fatalf("adjoint identity violated: <conv x, y>=%.6f, <x, convT y>=%.6f", lhs, rhs)
	}
}

func TestGradPooling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randParam(rng, 1, 2, 6, 6)
	gradCheck(t, "maxpool_k3s2p1", []*Value{x}, func() *Value {
		return Mean(Square(MaxPool2D(x, Pool2DConfig{Kernel: 3, Stride: 2, Padding: 1})))
	}, 2e-2)
	gradCheck(t, "avgpool_k2s2", []*Value{x}, func() *Value {
		return Mean(Square(AvgPool2D(x, Pool2DConfig{Kernel: 2, Stride: 2})))
	}, 2e-2)
	gradCheck(t, "upsample2", []*Value{x}, func() *Value {
		return Mean(Square(UpsampleBilinear2D(x, 2)))
	}, 2e-2)
}

func TestGradBlur2D(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randParam(rng, 1, 1, 5, 5)
	win := GaussianWindow(3, 1.0)
	gradCheck(t, "blur_valid", []*Value{x}, func() *Value {
		return Mean(Square(Blur2D(x, win, 0)))
	}, 2e-2)
	gradCheck(t, "blur_same", []*Value{x}, func() *Value {
		return Mean(Square(Blur2D(x, win, 1)))
	}, 2e-2)
}

func TestGradBatchNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := randParam(rng, 2, 3, 2, 2)
	gamma := randPosParam(rng, 3)
	beta := randParam(rng, 3)
	// Fresh running stats each build call so updates don't accumulate.
	gradCheck(t, "batchnorm_train", []*Value{x, gamma, beta}, func() *Value {
		rm := tensor.New(3)
		rv := tensor.New(3).Fill(1)
		return Mean(Square(BatchNorm(x, gamma, beta, rm, rv, true, 0.1, 1e-5)))
	}, 3e-2)
	rm := tensor.New(3).RandN(rng, 0, 0.5)
	rv := tensor.New(3).RandU(rng, 0.5, 2)
	gradCheck(t, "batchnorm_eval", []*Value{x, gamma, beta}, func() *Value {
		return Mean(Square(BatchNorm(x, gamma, beta, rm, rv, false, 0.1, 1e-5)))
	}, 2e-2)
}

func TestGradLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := randParam(rng, 3, 4)
	w := randParam(rng, 2, 4)
	b := randParam(rng, 2)
	gradCheck(t, "linear", []*Value{x, w, b}, func() *Value {
		return Mean(Square(Linear(x, w, b)))
	}, 2e-2)
}

func TestGradConv3D(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randParam(rng, 1, 2, 3, 4, 4)
	w := randParam(rng, 2, 2, 3, 3, 3)
	b := randParam(rng, 2)
	gradCheck(t, "conv3d_s1p1", []*Value{x, w, b}, func() *Value {
		return Mean(Square(Conv3D(x, w, b, Conv3DConfig{Stride: 1, Padding: 1})))
	}, 2e-2)
	gradCheck(t, "conv3d_s2p1", []*Value{x, w, b}, func() *Value {
		return Mean(Square(Conv3D(x, w, b, Conv3DConfig{Stride: 2, Padding: 1})))
	}, 2e-2)
}

func TestGradPool3D(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := randParam(rng, 1, 2, 4, 4, 4)
	gradCheck(t, "maxpool3d", []*Value{x}, func() *Value {
		return Mean(Square(MaxPool3D(x, Pool2DConfig{Kernel: 2, Stride: 2})))
	}, 2e-2)
	gradCheck(t, "gap3d", []*Value{x}, func() *Value {
		return Mean(Square(GlobalAvgPool3D(x)))
	}, 2e-2)
}

func TestGradLosses(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pred := randParam(rng, 2, 4)
	target := Const(tensor.New(2, 4).RandN(rng, 0, 1))
	gradCheck(t, "mse", []*Value{pred}, func() *Value { return MSELoss(pred, target) }, 1e-2)

	probs := Param(tensor.FromSlice([]float32{0.2, 0.7, 0.4, 0.9}, 4))
	labels := Const(tensor.FromSlice([]float32{0, 1, 1, 1}, 4))
	gradCheck(t, "bce", []*Value{probs}, func() *Value { return BCELoss(probs, labels) }, 1e-2)

	logits := Param(tensor.FromSlice([]float32{-1.5, 0.3, 2.0, -0.4}, 4))
	gradCheck(t, "bce_logits", []*Value{logits}, func() *Value {
		return BCEWithLogitsLoss(logits, labels)
	}, 1e-2)
}

func TestGradSSIM(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x := Param(tensor.New(1, 1, 13, 13).RandU(rng, 0.2, 0.8))
	y := Param(tensor.New(1, 1, 13, 13).RandU(rng, 0.2, 0.8))
	cfg := DefaultSSIM()
	gradCheck(t, "ssim", []*Value{x, y}, func() *Value { return SSIM(x, y, cfg) }, 5e-2)
}

func TestGradMSSSIMSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	cfg := SSIMConfig{WindowSize: 3, Sigma: 1.0, L: 1, K1: 0.01, K2: 0.03}
	x := Param(tensor.New(1, 1, 8, 8).RandU(rng, 0.2, 0.8))
	y := Param(tensor.New(1, 1, 8, 8).RandU(rng, 0.2, 0.8))
	gradCheck(t, "msssim2", []*Value{x, y}, func() *Value { return MSSSIM(x, y, cfg, 2) }, 5e-2)
}

func TestGradCompositeLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	cfg := SSIMConfig{WindowSize: 3, Sigma: 1.0, L: 1, K1: 0.01, K2: 0.03}
	pred := Param(tensor.New(1, 1, 8, 8).RandU(rng, 0.2, 0.8))
	target := Const(tensor.New(1, 1, 8, 8).RandU(rng, 0.2, 0.8))
	gradCheck(t, "composite", []*Value{pred}, func() *Value {
		return CompositeEnhancementLoss(pred, target, cfg)
	}, 5e-2)
}
