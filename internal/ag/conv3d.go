package ag

import (
	"fmt"
	"math"

	"computecovid19/internal/parallel"
	"computecovid19/internal/tensor"
)

// Conv3DConfig holds the hyper-parameters of a 3D convolution or pool.
type Conv3DConfig struct {
	Stride  int
	Padding int
}

// Conv3D performs a 3D cross-correlation over (N, C, D, H, W) volumes,
// the building block of the 3D DenseNet classifier (§2.3.2).
//
//	x: (N, Cin, D, H, W)   w: (Cout, Cin, KD, KH, KW)   b: (Cout) or nil
func Conv3D(x, w, b *Value, cfg Conv3DConfig) *Value {
	if x.T.Rank() != 5 || w.T.Rank() != 5 {
		panic(fmt.Sprintf("ag: Conv3D wants rank-5 x and w, got %v and %v", x.T.Shape, w.T.Shape))
	}
	n, cin, dd, h, wd := x.T.Shape[0], x.T.Shape[1], x.T.Shape[2], x.T.Shape[3], x.T.Shape[4]
	cout, wcin, kd, kh, kw := w.T.Shape[0], w.T.Shape[1], w.T.Shape[2], w.T.Shape[3], w.T.Shape[4]
	if cin != wcin {
		panic(fmt.Sprintf("ag: Conv3D channel mismatch: x has %d, w expects %d", cin, wcin))
	}
	s, p := cfg.Stride, cfg.Padding
	od0 := convOutDim(dd, kd, s, p)
	oh := convOutDim(h, kh, s, p)
	ow := convOutDim(wd, kw, s, p)
	if od0 <= 0 || oh <= 0 || ow <= 0 {
		panic("ag: Conv3D output would be empty")
	}
	out := tensor.New(n, cout, od0, oh, ow)

	xd, wdta, odt := x.T.Data, w.T.Data, out.Data
	planeIn := dd * h * wd
	planeOut := od0 * oh * ow
	parallel.ForEach(n*cout, 0, func(idx int) {
		ni, co := idx/cout, idx%cout
		var bias float32
		if b != nil {
			bias = b.T.Data[co]
		}
		obase := (ni*cout + co) * planeOut
		for oz := 0; oz < od0; oz++ {
			iz0 := oz*s - p
			for oy := 0; oy < oh; oy++ {
				iy0 := oy*s - p
				for ox := 0; ox < ow; ox++ {
					ix0 := ox*s - p
					acc := bias
					for ci := 0; ci < cin; ci++ {
						xbase := (ni*cin + ci) * planeIn
						wbase := (co*cin + ci) * kd * kh * kw
						for kz := 0; kz < kd; kz++ {
							iz := iz0 + kz
							if iz < 0 || iz >= dd {
								continue
							}
							for ky := 0; ky < kh; ky++ {
								iy := iy0 + ky
								if iy < 0 || iy >= h {
									continue
								}
								xrow := xbase + (iz*h+iy)*wd
								wrow := wbase + (kz*kh+ky)*kw
								for kx := 0; kx < kw; kx++ {
									ix := ix0 + kx
									if ix < 0 || ix >= wd {
										continue
									}
									acc += xd[xrow+ix] * wdta[wrow+kx]
								}
							}
						}
					}
					odt[obase+(oz*oh+oy)*ow+ox] = acc
				}
			}
		}
	})

	parents := []*Value{x, w}
	if b != nil {
		parents = append(parents, b)
	}
	var node *Value
	node = newNode("conv3d", out, func() {
		gy := node.Grad.Data
		if x.needGrad {
			gx := x.ensureGrad().Data
			parallel.ForEach(n*cin, 0, func(idx int) {
				ni, ci := idx/cin, idx%cin
				xbase := (ni*cin + ci) * planeIn
				for iz := 0; iz < dd; iz++ {
					for iy := 0; iy < h; iy++ {
						for ix := 0; ix < wd; ix++ {
							var acc float32
							for kz := 0; kz < kd; kz++ {
								ozNum := iz + p - kz
								if ozNum < 0 || ozNum%s != 0 {
									continue
								}
								oz := ozNum / s
								if oz >= od0 {
									continue
								}
								for ky := 0; ky < kh; ky++ {
									oyNum := iy + p - ky
									if oyNum < 0 || oyNum%s != 0 {
										continue
									}
									oy := oyNum / s
									if oy >= oh {
										continue
									}
									for kx := 0; kx < kw; kx++ {
										oxNum := ix + p - kx
										if oxNum < 0 || oxNum%s != 0 {
											continue
										}
										ox := oxNum / s
										if ox >= ow {
											continue
										}
										for co := 0; co < cout; co++ {
											acc += gy[(ni*cout+co)*planeOut+(oz*oh+oy)*ow+ox] *
												wdta[((co*cin+ci)*kd+kz)*kh*kw+ky*kw+kx]
										}
									}
								}
							}
							gx[xbase+(iz*h+iy)*wd+ix] += acc
						}
					}
				}
			})
		}
		if w.needGrad {
			gw := w.ensureGrad().Data
			parallel.ForEach(cout*cin, 0, func(idx int) {
				co, ci := idx/cin, idx%cin
				wbase := (co*cin + ci) * kd * kh * kw
				for kz := 0; kz < kd; kz++ {
					for ky := 0; ky < kh; ky++ {
						for kx := 0; kx < kw; kx++ {
							var acc float32
							for ni := 0; ni < n; ni++ {
								xbase := (ni*cin + ci) * planeIn
								ybase := (ni*cout + co) * planeOut
								for oz := 0; oz < od0; oz++ {
									iz := oz*s - p + kz
									if iz < 0 || iz >= dd {
										continue
									}
									for oy := 0; oy < oh; oy++ {
										iy := oy*s - p + ky
										if iy < 0 || iy >= h {
											continue
										}
										for ox := 0; ox < ow; ox++ {
											ix := ox*s - p + kx
											if ix < 0 || ix >= wd {
												continue
											}
											acc += xd[xbase+(iz*h+iy)*wd+ix] *
												gy[ybase+(oz*oh+oy)*ow+ox]
										}
									}
								}
							}
							gw[wbase+(kz*kh+ky)*kw+kx] += acc
						}
					}
				}
			})
		}
		if b != nil && b.needGrad {
			gb := b.ensureGrad().Data
			for ni := 0; ni < n; ni++ {
				for co := 0; co < cout; co++ {
					base := (ni*cout + co) * planeOut
					var acc float32
					for i := 0; i < planeOut; i++ {
						acc += gy[base+i]
					}
					gb[co] += acc
				}
			}
		}
	}, parents...)
	return node
}

// MaxPool3D applies max pooling over (D, H, W) with a cubic kernel.
func MaxPool3D(x *Value, cfg Pool2DConfig) *Value {
	if x.T.Rank() != 5 {
		panic(fmt.Sprintf("ag: MaxPool3D wants rank-5 input, got %v", x.T.Shape))
	}
	n, c, dd, h, w := x.T.Shape[0], x.T.Shape[1], x.T.Shape[2], x.T.Shape[3], x.T.Shape[4]
	k, s, p := cfg.Kernel, cfg.Stride, cfg.Padding
	od0 := convOutDim(dd, k, s, p)
	oh := convOutDim(h, k, s, p)
	ow := convOutDim(w, k, s, p)
	if od0 <= 0 || oh <= 0 || ow <= 0 {
		panic("ag: MaxPool3D output would be empty")
	}
	out := tensor.New(n, c, od0, oh, ow)
	planeIn := dd * h * w
	planeOut := od0 * oh * ow
	argmax := make([]int32, n*c*planeOut)

	xd, odt := x.T.Data, out.Data
	parallel.ForEach(n*c, 0, func(plane int) {
		xbase := plane * planeIn
		obase := plane * planeOut
		for oz := 0; oz < od0; oz++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(math.Inf(-1))
					bi := int32(-1)
					for kz := 0; kz < k; kz++ {
						iz := oz*s - p + kz
						if iz < 0 || iz >= dd {
							continue
						}
						for ky := 0; ky < k; ky++ {
							iy := oy*s - p + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < k; kx++ {
								ix := ox*s - p + kx
								if ix < 0 || ix >= w {
									continue
								}
								v := xd[xbase+(iz*h+iy)*w+ix]
								if v > best {
									best = v
									bi = int32(xbase + (iz*h+iy)*w + ix)
								}
							}
						}
					}
					odt[obase+(oz*oh+oy)*ow+ox] = best
					argmax[obase+(oz*oh+oy)*ow+ox] = bi
				}
			}
		}
	})

	var node *Value
	node = newNode("maxpool3d", out, func() {
		if x.needGrad {
			gx := x.ensureGrad().Data
			gy := node.Grad.Data
			parallel.ForEach(n*c, 0, func(plane int) {
				obase := plane * planeOut
				for i := 0; i < planeOut; i++ {
					if idx := argmax[obase+i]; idx >= 0 {
						gx[idx] += gy[obase+i]
					}
				}
			})
		}
	}, x)
	return node
}

// GlobalAvgPool3D averages each channel's (D, H, W) volume down to a
// single value, producing (N, C). It feeds the classifier's fully
// connected head.
func GlobalAvgPool3D(x *Value) *Value {
	if x.T.Rank() != 5 {
		panic(fmt.Sprintf("ag: GlobalAvgPool3D wants rank-5 input, got %v", x.T.Shape))
	}
	n, c := x.T.Shape[0], x.T.Shape[1]
	spatial := x.T.Shape[2] * x.T.Shape[3] * x.T.Shape[4]
	out := tensor.New(n, c)
	for plane := 0; plane < n*c; plane++ {
		var acc float64
		base := plane * spatial
		for i := 0; i < spatial; i++ {
			acc += float64(x.T.Data[base+i])
		}
		out.Data[plane] = float32(acc / float64(spatial))
	}
	var node *Value
	node = newNode("gap3d", out, func() {
		if x.needGrad {
			gx := x.ensureGrad().Data
			gy := node.Grad.Data
			inv := 1 / float32(spatial)
			for plane := 0; plane < n*c; plane++ {
				d := gy[plane] * inv
				base := plane * spatial
				for i := 0; i < spatial; i++ {
					gx[base+i] += d
				}
			}
		}
	}, x)
	return node
}
