package ag

import (
	"computecovid19/internal/tensor"
)

// Sum reduces a to a scalar by summing every element.
func Sum(a *Value) *Value {
	out := tensor.Scalar(float32(a.T.Sum()))
	var node *Value
	node = newNode("sum", out, func() {
		if a.needGrad {
			d := node.Grad.Data[0]
			g := a.ensureGrad()
			for i := range g.Data {
				g.Data[i] += d
			}
		}
	}, a)
	return node
}

// Mean reduces a to a scalar by averaging every element.
func Mean(a *Value) *Value {
	out := tensor.Scalar(float32(a.T.Mean()))
	var node *Value
	node = newNode("mean", out, func() {
		if a.needGrad {
			d := node.Grad.Data[0] / float32(a.T.Numel())
			g := a.ensureGrad()
			for i := range g.Data {
				g.Data[i] += d
			}
		}
	}, a)
	return node
}

// Reshape returns a view of a with a new shape (same element count).
// Gradients are reshaped back transparently.
func Reshape(a *Value, shape ...int) *Value {
	out := a.T.Reshape(shape...)
	var node *Value
	node = newNode("reshape", out, func() {
		if a.needGrad {
			a.ensureGrad().AddInPlace(node.Grad.Reshape(a.T.Shape...))
		}
	}, a)
	return node
}

// Concat joins the inputs along the given axis. All other dimensions
// must match. This is the op behind DenseNet's dense connections and
// DDnet's global shortcuts.
func Concat(axis int, vs ...*Value) *Value {
	if len(vs) == 0 {
		panic("ag: Concat of zero tensors")
	}
	if len(vs) == 1 {
		return vs[0]
	}
	rank := vs[0].T.Rank()
	outShape := make([]int, rank)
	copy(outShape, vs[0].T.Shape)
	outShape[axis] = 0
	for _, v := range vs {
		if v.T.Rank() != rank {
			panic("ag: Concat rank mismatch")
		}
		for d := 0; d < rank; d++ {
			if d != axis && v.T.Shape[d] != vs[0].T.Shape[d] {
				panic("ag: Concat non-axis dimension mismatch")
			}
		}
		outShape[axis] += v.T.Shape[axis]
	}
	out := tensor.New(outShape...)

	// outer: product of dims before axis; inner: product of dims after.
	outer, inner := 1, 1
	for d := 0; d < axis; d++ {
		outer *= outShape[d]
	}
	for d := axis + 1; d < rank; d++ {
		inner *= outShape[d]
	}
	outAxis := outShape[axis]

	// Copy each input block into its slot along the axis.
	offset := 0
	for _, v := range vs {
		ax := v.T.Shape[axis]
		for o := 0; o < outer; o++ {
			src := v.T.Data[o*ax*inner : (o+1)*ax*inner]
			dst := out.Data[(o*outAxis+offset)*inner : (o*outAxis+offset)*inner+ax*inner]
			copy(dst, src)
		}
		offset += ax
	}

	parents := make([]*Value, len(vs))
	copy(parents, vs)
	var node *Value
	node = newNode("concat", out, func() {
		offset := 0
		for _, v := range parents {
			ax := v.T.Shape[axis]
			if v.needGrad {
				g := v.ensureGrad()
				for o := 0; o < outer; o++ {
					src := node.Grad.Data[(o*outAxis+offset)*inner : (o*outAxis+offset)*inner+ax*inner]
					dst := g.Data[o*ax*inner : (o+1)*ax*inner]
					for i, d := range src {
						dst[i] += d
					}
				}
			}
			offset += ax
		}
	}, parents...)
	return node
}
