package ag

import (
	"fmt"
	"math"
	"math/rand"

	"computecovid19/internal/tensor"
)

// Softmax applies a row-wise softmax to a (N, C) tensor, with the usual
// max-subtraction for numerical stability. It backs the multi-class
// severity-grading extension of the classifier.
func Softmax(a *Value) *Value {
	if a.T.Rank() != 2 {
		panic(fmt.Sprintf("ag: Softmax wants a rank-2 (N, C) tensor, got %v", a.T.Shape))
	}
	n, c := a.T.Shape[0], a.T.Shape[1]
	out := tensor.New(n, c)
	for i := 0; i < n; i++ {
		row := a.T.Data[i*c : (i+1)*c]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		o := out.Data[i*c : (i+1)*c]
		for j, v := range row {
			e := math.Exp(float64(v - maxV))
			o[j] = float32(e)
			sum += e
		}
		for j := range o {
			o[j] /= float32(sum)
		}
	}
	var node *Value
	node = newNode("softmax", out, func() {
		if a.needGrad {
			g := a.ensureGrad().Data
			gy := node.Grad.Data
			// dL/dx_j = y_j·(dL/dy_j − Σ_k dL/dy_k·y_k)
			for i := 0; i < n; i++ {
				y := out.Data[i*c : (i+1)*c]
				d := gy[i*c : (i+1)*c]
				var dot float32
				for k := range y {
					dot += d[k] * y[k]
				}
				for j := range y {
					g[i*c+j] += y[j] * (d[j] - dot)
				}
			}
		}
	}, a)
	return node
}

// CrossEntropyLoss computes the mean negative log-likelihood of integer
// class labels under row-wise softmax of (N, C) logits, fused for
// stability (log-sum-exp form).
func CrossEntropyLoss(logits *Value, labels []int) *Value {
	if logits.T.Rank() != 2 {
		panic(fmt.Sprintf("ag: CrossEntropyLoss wants rank-2 logits, got %v", logits.T.Shape))
	}
	n, c := logits.T.Shape[0], logits.T.Shape[1]
	if len(labels) != n {
		panic(fmt.Sprintf("ag: CrossEntropyLoss got %d labels for %d rows", len(labels), n))
	}
	for _, l := range labels {
		if l < 0 || l >= c {
			panic(fmt.Sprintf("ag: label %d out of range [0, %d)", l, c))
		}
	}

	// Forward: mean over rows of (logsumexp(row) − row[label]).
	probs := make([]float32, n*c) // softmax retained for backward
	total := 0.0
	for i := 0; i < n; i++ {
		row := logits.T.Data[i*c : (i+1)*c]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(float64(v - maxV))
		}
		lse := float64(maxV) + math.Log(sum)
		total += lse - float64(row[labels[i]])
		for j, v := range row {
			probs[i*c+j] = float32(math.Exp(float64(v-maxV)) / sum)
		}
	}
	out := tensor.Scalar(float32(total / float64(n)))

	var node *Value
	node = newNode("crossentropy", out, func() {
		if logits.needGrad {
			g := logits.ensureGrad().Data
			d := node.Grad.Data[0] / float32(n)
			for i := 0; i < n; i++ {
				for j := 0; j < c; j++ {
					grad := probs[i*c+j]
					if j == labels[i] {
						grad -= 1
					}
					g[i*c+j] += d * grad
				}
			}
		}
	}, logits)
	return node
}

// Dropout zeroes each element with probability p during training and
// scales survivors by 1/(1−p) (inverted dropout); in eval mode it is the
// identity. The rng must be supplied by the caller so training remains
// reproducible.
func Dropout(a *Value, p float64, training bool, rng *rand.Rand) *Value {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("ag: Dropout probability %v out of [0, 1)", p))
	}
	if !training || p == 0 {
		return a
	}
	keep := make([]bool, a.T.Numel())
	scale := float32(1 / (1 - p))
	out := tensor.New(a.T.Shape...)
	for i, v := range a.T.Data {
		if rng.Float64() >= p {
			keep[i] = true
			out.Data[i] = v * scale
		}
	}
	var node *Value
	node = newNode("dropout", out, func() {
		if a.needGrad {
			g := a.ensureGrad().Data
			for i, d := range node.Grad.Data {
				if keep[i] {
					g[i] += d * scale
				}
			}
		}
	}, a)
	return node
}
