package ag

import (
	"math"

	"computecovid19/internal/kernels"
	"computecovid19/internal/memplan"
	"computecovid19/internal/parallel"
	"computecovid19/internal/tensor"
)

// Raw eval-mode ops for the pooled inference hot path. Each Eval*
// function computes exactly the forward arithmetic of its autograd
// twin — same loop nesting, same accumulation order, same float32/64
// conversions — on plain tensors drawn from a memplan.Scope, building
// no tape. Bit-identity with the graph ops is pinned by tests in ddnet
// and classify.
//
// Parallel ops go through forPlanes: the closure handed to
// parallel.ForEach is only created on the multi-worker branch, so a
// single-proc run (testing.AllocsPerRun pins GOMAXPROCS=1) takes the
// serial branch and allocates nothing. Per-plane work is independent,
// so both branches produce identical bits.

// forPlanes runs f(arg, plane) for plane in [0, n), in parallel when
// more than one worker is available.
func forPlanes[T any](n int, arg T, f func(T, int)) {
	if parallel.DefaultWorkers() > 1 {
		forPlanesParallel(n, arg, f)
		return
	}
	for i := 0; i < n; i++ {
		f(arg, i)
	}
}

// forPlanesParallel holds forPlanes's only closure literal. It must
// stay out of forPlanes itself: for args structs over the compiler's
// by-value capture limit (conv3DArgs) the captured variable is moved
// to the heap at function entry, which would tax the serial branch
// with an allocation it never uses. noinline keeps the literal from
// being inlined back.
//
//go:noinline
func forPlanesParallel[T any](n int, arg T, f func(T, int)) {
	parallel.ForEach(n, 0, func(i int) { f(arg, i) })
}

// EvalConv2D is the eval twin of Conv2DFast's kernel-registry path:
// stride-1 "same" odd-square-kernel convolutions (all of DDnet)
// dispatched to the default rung, batch elements in series.
// Weights (OutC, InC, K, K); b may be nil.
func EvalConv2D(sc *memplan.Scope, x, w, b *tensor.Tensor, cfg Conv2DConfig) *tensor.Tensor {
	n, cin, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	cout, kh, kw := w.Shape[0], w.Shape[2], w.Shape[3]
	if !sameConvShape(kh, kw, cfg.Stride, cfg.Padding) {
		panic("ag: EvalConv2D requires a stride-1 same-shape convolution")
	}
	im := kernels.Default()
	out := sc.Get(n, cout, h, wd)
	ks := kernels.ConvShape{InC: cin, H: h, W: wd, OutC: cout, K: kh}
	plane := cin * h * wd
	oplane := cout * h * wd
	for ni := 0; ni < n; ni++ {
		im.Conv(x.Data[ni*plane:(ni+1)*plane], w.Data,
			out.Data[ni*oplane:(ni+1)*oplane], ks, 0)
	}
	evalAddBias(out.Data, b, n, cout, h*wd)
	return out
}

// EvalConvTranspose2D is the eval twin of ConvTranspose2DFast.
// Weights (InC, OutC, K, K); b may be nil.
func EvalConvTranspose2D(sc *memplan.Scope, x, w, b *tensor.Tensor, cfg Conv2DConfig) *tensor.Tensor {
	n, cin, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	cout, kh, kw := w.Shape[1], w.Shape[2], w.Shape[3]
	if !sameConvShape(kh, kw, cfg.Stride, cfg.Padding) {
		panic("ag: EvalConvTranspose2D requires a stride-1 same-shape deconvolution")
	}
	im := kernels.Default()
	out := sc.Get(n, cout, h, wd)
	ks := kernels.ConvShape{InC: cin, H: h, W: wd, OutC: cout, K: kh}
	plane := cin * h * wd
	oplane := cout * h * wd
	for ni := 0; ni < n; ni++ {
		im.Deconv(x.Data[ni*plane:(ni+1)*plane], w.Data,
			out.Data[ni*oplane:(ni+1)*oplane], ks, 0)
	}
	evalAddBias(out.Data, b, n, cout, h*wd)
	return out
}

func evalAddBias(out []float32, b *tensor.Tensor, n, cout, cols int) {
	if b == nil {
		return
	}
	for ni := 0; ni < n; ni++ {
		for co := 0; co < cout; co++ {
			base := (ni*cout + co) * cols
			bias := b.Data[co]
			for i := 0; i < cols; i++ {
				out[base+i] += bias
			}
		}
	}
}

// EvalLeakyReLUInPlace applies LeakyReLU's elementwise map in place.
// Safe only on freshly produced tensors (the graph op is out-of-place).
// Slope 0 is ReLU, including its 0·v = -0.0 treatment of negatives.
func EvalLeakyReLUInPlace(t *tensor.Tensor, slope float32) {
	d := t.Data
	for i, v := range d {
		if v < 0 {
			d[i] = slope * v
		}
	}
}

// EvalAddInPlace accumulates b into a (the eval twin of Add where the
// left operand is a fresh tensor).
func EvalAddInPlace(a, b *tensor.Tensor) {
	ad, bd := a.Data, b.Data
	if len(ad) != len(bd) {
		panic("ag: EvalAddInPlace shape mismatch")
	}
	for i := range ad {
		ad[i] += bd[i]
	}
}

// EvalClampInPlace applies tensor.Clamp's elementwise map in place.
func EvalClampInPlace(t *tensor.Tensor, lo, hi float32) {
	d := t.Data
	for i, v := range d {
		if v < lo {
			d[i] = lo
		} else if v > hi {
			d[i] = hi
		}
	}
}

type maxPool2DArgs struct {
	xd, od       []float32
	h, w, oh, ow int
	k, s, p      int
}

func maxPool2DPlane(a maxPool2DArgs, plane int) {
	xbase := plane * a.h * a.w
	obase := plane * a.oh * a.ow
	for oy := 0; oy < a.oh; oy++ {
		for ox := 0; ox < a.ow; ox++ {
			best := float32(math.Inf(-1))
			for ky := 0; ky < a.k; ky++ {
				iy := oy*a.s - a.p + ky
				if iy < 0 || iy >= a.h {
					continue
				}
				for kx := 0; kx < a.k; kx++ {
					ix := ox*a.s - a.p + kx
					if ix < 0 || ix >= a.w {
						continue
					}
					if v := a.xd[xbase+iy*a.w+ix]; v > best {
						best = v
					}
				}
			}
			a.od[obase+oy*a.ow+ox] = best
		}
	}
}

// EvalMaxPool2D is the eval twin of MaxPool2D (no argmax bookkeeping).
func EvalMaxPool2D(sc *memplan.Scope, x *tensor.Tensor, cfg Pool2DConfig) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	k, s, p := cfg.Kernel, cfg.Stride, cfg.Padding
	oh, ow := convOutDim(h, k, s, p), convOutDim(w, k, s, p)
	if oh <= 0 || ow <= 0 {
		panic("ag: EvalMaxPool2D output would be empty")
	}
	out := sc.Get(n, c, oh, ow)
	forPlanes(n*c, maxPool2DArgs{
		xd: x.Data, od: out.Data,
		h: h, w: w, oh: oh, ow: ow, k: k, s: s, p: p,
	}, maxPool2DPlane)
	return out
}

// BilinearTable caches UpsampleBilinear2D's per-axis source indices and
// weights for one (in, out) axis pair, so a warm decoder recomputes
// nothing per forward.
type BilinearTable struct {
	Lo, Hi []int
	Frac   []float32
}

// NewBilinearTable precomputes the table with bilinearAxis's exact
// half-pixel arithmetic.
func NewBilinearTable(in, out int) *BilinearTable {
	lo, hi, frac := bilinearAxis(in, out)
	return &BilinearTable{Lo: lo, Hi: hi, Frac: frac}
}

type upsampleArgs struct {
	xd, od       []float32
	h, w, oh, ow int
	ty, tx       *BilinearTable
}

func upsamplePlane(a upsampleArgs, plane int) {
	xbase := plane * a.h * a.w
	obase := plane * a.oh * a.ow
	for oy := 0; oy < a.oh; oy++ {
		y0, y1, wy := a.ty.Lo[oy], a.ty.Hi[oy], a.ty.Frac[oy]
		for ox := 0; ox < a.ow; ox++ {
			x0, x1, wx := a.tx.Lo[ox], a.tx.Hi[ox], a.tx.Frac[ox]
			v00 := a.xd[xbase+y0*a.w+x0]
			v01 := a.xd[xbase+y0*a.w+x1]
			v10 := a.xd[xbase+y1*a.w+x0]
			v11 := a.xd[xbase+y1*a.w+x1]
			top := v00 + wx*(v01-v00)
			bot := v10 + wx*(v11-v10)
			a.od[obase+oy*a.ow+ox] = top + wy*(bot-top)
		}
	}
}

// EvalUpsampleBilinear2D is the eval twin of UpsampleBilinear2D, with
// the axis tables supplied by the caller (cached per shape).
func EvalUpsampleBilinear2D(sc *memplan.Scope, x *tensor.Tensor, scale int, ty, tx *BilinearTable) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := h*scale, w*scale
	if len(ty.Lo) != oh || len(tx.Lo) != ow {
		panic("ag: EvalUpsampleBilinear2D table size mismatch")
	}
	out := sc.Get(n, c, oh, ow)
	forPlanes(n*c, upsampleArgs{
		xd: x.Data, od: out.Data,
		h: h, w: w, oh: oh, ow: ow, ty: ty, tx: tx,
	}, upsamplePlane)
	return out
}

// EvalConcat is the eval twin of Concat. Like the graph op it returns
// the input itself (not a copy) when vs has one element; the result is
// scope-owned only when it is fresh.
func EvalConcat(sc *memplan.Scope, axis int, vs []*tensor.Tensor) *tensor.Tensor {
	if len(vs) == 0 {
		panic("ag: EvalConcat of zero tensors")
	}
	if len(vs) == 1 {
		return vs[0]
	}
	rank := vs[0].Rank()
	var shapeArr [8]int
	outShape := shapeArr[:rank]
	copy(outShape, vs[0].Shape)
	outShape[axis] = 0
	for _, v := range vs {
		if v.Rank() != rank {
			panic("ag: EvalConcat rank mismatch")
		}
		for d := 0; d < rank; d++ {
			if d != axis && v.Shape[d] != vs[0].Shape[d] {
				panic("ag: EvalConcat non-axis dimension mismatch")
			}
		}
		outShape[axis] += v.Shape[axis]
	}
	out := sc.Get(outShape...)
	outer, inner := 1, 1
	for d := 0; d < axis; d++ {
		outer *= outShape[d]
	}
	for d := axis + 1; d < rank; d++ {
		inner *= outShape[d]
	}
	outAxis := outShape[axis]
	offset := 0
	for _, v := range vs {
		ax := v.Shape[axis]
		for o := 0; o < outer; o++ {
			src := v.Data[o*ax*inner : (o+1)*ax*inner]
			dst := out.Data[(o*outAxis+offset)*inner : (o*outAxis+offset)*inner+ax*inner]
			copy(dst, src)
		}
		offset += ax
	}
	return out
}

type conv3DArgs struct {
	xd, wd, od, bd    []float32 // bd nil when the layer has no bias
	cin, cout         int
	dd, h, w          int
	od0, oh, ow       int
	kd, kh, kw        int
	s, p              int
	planeIn, planeOut int
}

func conv3DPlane(a conv3DArgs, idx int) {
	ni, co := idx/a.cout, idx%a.cout
	var bias float32
	if a.bd != nil {
		bias = a.bd[co]
	}
	obase := (ni*a.cout + co) * a.planeOut
	for oz := 0; oz < a.od0; oz++ {
		iz0 := oz*a.s - a.p
		for oy := 0; oy < a.oh; oy++ {
			iy0 := oy*a.s - a.p
			for ox := 0; ox < a.ow; ox++ {
				ix0 := ox*a.s - a.p
				acc := bias
				for ci := 0; ci < a.cin; ci++ {
					xbase := (ni*a.cin + ci) * a.planeIn
					wbase := (co*a.cin + ci) * a.kd * a.kh * a.kw
					for kz := 0; kz < a.kd; kz++ {
						iz := iz0 + kz
						if iz < 0 || iz >= a.dd {
							continue
						}
						for ky := 0; ky < a.kh; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= a.h {
								continue
							}
							xrow := xbase + (iz*a.h+iy)*a.w
							wrow := wbase + (kz*a.kh+ky)*a.kw
							for kx := 0; kx < a.kw; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= a.w {
									continue
								}
								acc += a.xd[xrow+ix] * a.wd[wrow+kx]
							}
						}
					}
				}
				a.od[obase+(oz*a.oh+oy)*a.ow+ox] = acc
			}
		}
	}
}

// EvalConv3D is the eval twin of Conv3D. Weights (Cout, Cin, KD, KH,
// KW); b may be nil.
func EvalConv3D(sc *memplan.Scope, x, w, b *tensor.Tensor, cfg Conv3DConfig) *tensor.Tensor {
	n, cin, dd, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3], x.Shape[4]
	cout, kd, kh, kw := w.Shape[0], w.Shape[2], w.Shape[3], w.Shape[4]
	s, p := cfg.Stride, cfg.Padding
	od0 := convOutDim(dd, kd, s, p)
	oh := convOutDim(h, kh, s, p)
	ow := convOutDim(wd, kw, s, p)
	if od0 <= 0 || oh <= 0 || ow <= 0 {
		panic("ag: EvalConv3D output would be empty")
	}
	out := sc.Get(n, cout, od0, oh, ow)
	var bd []float32
	if b != nil {
		bd = b.Data
	}
	forPlanes(n*cout, conv3DArgs{
		xd: x.Data, wd: w.Data, od: out.Data, bd: bd,
		cin: cin, cout: cout, dd: dd, h: h, w: wd,
		od0: od0, oh: oh, ow: ow, kd: kd, kh: kh, kw: kw,
		s: s, p: p, planeIn: dd * h * wd, planeOut: od0 * oh * ow,
	}, conv3DPlane)
	return out
}

type maxPool3DArgs struct {
	xd, od            []float32
	dd, h, w          int
	od0, oh, ow       int
	k, s, p           int
	planeIn, planeOut int
}

func maxPool3DPlane(a maxPool3DArgs, plane int) {
	xbase := plane * a.planeIn
	obase := plane * a.planeOut
	for oz := 0; oz < a.od0; oz++ {
		for oy := 0; oy < a.oh; oy++ {
			for ox := 0; ox < a.ow; ox++ {
				best := float32(math.Inf(-1))
				for kz := 0; kz < a.k; kz++ {
					iz := oz*a.s - a.p + kz
					if iz < 0 || iz >= a.dd {
						continue
					}
					for ky := 0; ky < a.k; ky++ {
						iy := oy*a.s - a.p + ky
						if iy < 0 || iy >= a.h {
							continue
						}
						for kx := 0; kx < a.k; kx++ {
							ix := ox*a.s - a.p + kx
							if ix < 0 || ix >= a.w {
								continue
							}
							if v := a.xd[xbase+(iz*a.h+iy)*a.w+ix]; v > best {
								best = v
							}
						}
					}
				}
				a.od[obase+(oz*a.oh+oy)*a.ow+ox] = best
			}
		}
	}
}

// EvalMaxPool3D is the eval twin of MaxPool3D (no argmax bookkeeping).
func EvalMaxPool3D(sc *memplan.Scope, x *tensor.Tensor, cfg Pool2DConfig) *tensor.Tensor {
	n, c, dd, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3], x.Shape[4]
	k, s, p := cfg.Kernel, cfg.Stride, cfg.Padding
	od0 := convOutDim(dd, k, s, p)
	oh := convOutDim(h, k, s, p)
	ow := convOutDim(w, k, s, p)
	if od0 <= 0 || oh <= 0 || ow <= 0 {
		panic("ag: EvalMaxPool3D output would be empty")
	}
	out := sc.Get(n, c, od0, oh, ow)
	forPlanes(n*c, maxPool3DArgs{
		xd: x.Data, od: out.Data,
		dd: dd, h: h, w: w, od0: od0, oh: oh, ow: ow, k: k, s: s, p: p,
		planeIn: dd * h * w, planeOut: od0 * oh * ow,
	}, maxPool3DPlane)
	return out
}

// EvalGlobalAvgPool3D is the eval twin of GlobalAvgPool3D.
func EvalGlobalAvgPool3D(sc *memplan.Scope, x *tensor.Tensor) *tensor.Tensor {
	n, c := x.Shape[0], x.Shape[1]
	spatial := x.Shape[2] * x.Shape[3] * x.Shape[4]
	out := sc.Get(n, c)
	for plane := 0; plane < n*c; plane++ {
		var acc float64
		base := plane * spatial
		for i := 0; i < spatial; i++ {
			acc += float64(x.Data[base+i])
		}
		out.Data[plane] = float32(acc / float64(spatial))
	}
	return out
}

// EvalLinear is the eval twin of Linear. b may be nil.
func EvalLinear(sc *memplan.Scope, x, w, b *tensor.Tensor) *tensor.Tensor {
	n, in := x.Shape[0], x.Shape[1]
	outF := w.Shape[0]
	out := sc.Get(n, outF)
	xd, wd, od := x.Data, w.Data, out.Data
	for ni := 0; ni < n; ni++ {
		for o := 0; o < outF; o++ {
			var acc float32
			if b != nil {
				acc = b.Data[o]
			}
			xrow := ni * in
			wrow := o * in
			for i := 0; i < in; i++ {
				acc += xd[xrow+i] * wd[wrow+i]
			}
			od[ni*outF+o] = acc
		}
	}
	return out
}

// EvalSigmoid computes Sigmoid's elementwise map on one value.
func EvalSigmoid(v float32) float32 {
	return float32(1.0 / (1.0 + math.Exp(-float64(v))))
}
