package ag

import (
	"fmt"

	"computecovid19/internal/parallel"
	"computecovid19/internal/tensor"
)

// Conv2DConfig holds the hyper-parameters of a 2D convolution.
type Conv2DConfig struct {
	Stride  int
	Padding int
}

func convOutDim(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

// Conv2D performs a 2D cross-correlation (the deep-learning convention)
// of x with weights w and optional bias b.
//
//	x: (N, Cin, H, W)    w: (Cout, Cin, KH, KW)    b: (Cout) or nil
//	out: (N, Cout, OH, OW) with OH = (H + 2*pad - KH)/stride + 1
//
// The forward pass is parallelized over (batch, output-channel) pairs.
func Conv2D(x, w, b *Value, cfg Conv2DConfig) *Value {
	if x.T.Rank() != 4 || w.T.Rank() != 4 {
		panic(fmt.Sprintf("ag: Conv2D wants rank-4 x and w, got %v and %v", x.T.Shape, w.T.Shape))
	}
	n, cin, h, wd := x.T.Shape[0], x.T.Shape[1], x.T.Shape[2], x.T.Shape[3]
	cout, wcin, kh, kw := w.T.Shape[0], w.T.Shape[1], w.T.Shape[2], w.T.Shape[3]
	if cin != wcin {
		panic(fmt.Sprintf("ag: Conv2D channel mismatch: x has %d, w expects %d", cin, wcin))
	}
	if b != nil && (b.T.Rank() != 1 || b.T.Shape[0] != cout) {
		panic(fmt.Sprintf("ag: Conv2D bias shape %v, want (%d)", b.T.Shape, cout))
	}
	s, p := cfg.Stride, cfg.Padding
	if s <= 0 {
		panic("ag: Conv2D stride must be positive")
	}
	oh, ow := convOutDim(h, kh, s, p), convOutDim(wd, kw, s, p)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("ag: Conv2D output would be %dx%d for input %dx%d k=%dx%d s=%d p=%d",
			oh, ow, h, wd, kh, kw, s, p))
	}
	out := tensor.New(n, cout, oh, ow)

	xd, od := x.T.Data, out.Data
	wdta := w.T.Data
	parallel.ForEach(n*cout, 0, func(idx int) {
		ni, co := idx/cout, idx%cout
		var bias float32
		if b != nil {
			bias = b.T.Data[co]
		}
		obase := (ni*cout + co) * oh * ow
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*s - p
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*s - p
				acc := bias
				for ci := 0; ci < cin; ci++ {
					xbase := (ni*cin + ci) * h * wd
					wbase := ((co*cin + ci) * kh) * kw
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						xrow := xbase + iy*wd
						wrow := wbase + ky*kw
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= wd {
								continue
							}
							acc += xd[xrow+ix] * wdta[wrow+kx]
						}
					}
				}
				od[obase+oy*ow+ox] = acc
			}
		}
	})

	return newConv2DNode(x, w, b, cfg, out)
}

// newConv2DNode wraps a precomputed convolution output in a tape node
// whose backward closures implement the standard conv gradients. The
// closures read only the inputs and the output *gradient*, so any
// forward algorithm (direct loops, im2col) can share them.
func newConv2DNode(x, w, b *Value, cfg Conv2DConfig, out *tensor.Tensor) *Value {
	n, cin, h, wd := x.T.Shape[0], x.T.Shape[1], x.T.Shape[2], x.T.Shape[3]
	cout, _, kh, kw := w.T.Shape[0], w.T.Shape[1], w.T.Shape[2], w.T.Shape[3]
	s, p := cfg.Stride, cfg.Padding
	oh, ow := out.Shape[2], out.Shape[3]
	xd, wdta := x.T.Data, w.T.Data

	var node *Value
	parents := []*Value{x, w}
	if b != nil {
		parents = append(parents, b)
	}
	node = newNode("conv2d", out, func() {
		gy := node.Grad.Data
		if x.needGrad {
			gx := x.ensureGrad().Data
			// Gather formulation: each input cell sums the output cells
			// it contributed to, so workers write disjoint (n, ci) planes.
			parallel.ForEach(n*cin, 0, func(idx int) {
				ni, ci := idx/cin, idx%cin
				xbase := (ni*cin + ci) * h * wd
				for iy := 0; iy < h; iy++ {
					for ix := 0; ix < wd; ix++ {
						var acc float32
						for ky := 0; ky < kh; ky++ {
							oyNum := iy + p - ky
							if oyNum < 0 || oyNum%s != 0 {
								continue
							}
							oy := oyNum / s
							if oy >= oh {
								continue
							}
							for kx := 0; kx < kw; kx++ {
								oxNum := ix + p - kx
								if oxNum < 0 || oxNum%s != 0 {
									continue
								}
								ox := oxNum / s
								if ox >= ow {
									continue
								}
								for co := 0; co < cout; co++ {
									acc += gy[((ni*cout+co)*oh+oy)*ow+ox] *
										wdta[((co*cin+ci)*kh+ky)*kw+kx]
								}
							}
						}
						gx[xbase+iy*wd+ix] += acc
					}
				}
			})
		}
		if w.needGrad {
			gw := w.ensureGrad().Data
			parallel.ForEach(cout*cin, 0, func(idx int) {
				co, ci := idx/cin, idx%cin
				for ky := 0; ky < kh; ky++ {
					for kx := 0; kx < kw; kx++ {
						var acc float32
						for ni := 0; ni < n; ni++ {
							xbase := (ni*cin + ci) * h * wd
							ybase := (ni*cout + co) * oh * ow
							for oy := 0; oy < oh; oy++ {
								iy := oy*s - p + ky
								if iy < 0 || iy >= h {
									continue
								}
								for ox := 0; ox < ow; ox++ {
									ix := ox*s - p + kx
									if ix < 0 || ix >= wd {
										continue
									}
									acc += xd[xbase+iy*wd+ix] * gy[ybase+oy*ow+ox]
								}
							}
						}
						gw[((co*cin+ci)*kh+ky)*kw+kx] += acc
					}
				}
			})
		}
		if b != nil && b.needGrad {
			gb := b.ensureGrad().Data
			for ni := 0; ni < n; ni++ {
				for co := 0; co < cout; co++ {
					base := (ni*cout + co) * oh * ow
					var acc float32
					for i := 0; i < oh*ow; i++ {
						acc += gy[base+i]
					}
					gb[co] += acc
				}
			}
		}
	}, parents...)
	return node
}
