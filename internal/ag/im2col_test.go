package ag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"computecovid19/internal/tensor"
)

func TestConv2DFastMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		n, cin, h, w, cout, k, stride, pad int
	}{
		{1, 1, 8, 8, 4, 3, 1, 1},
		{2, 3, 10, 12, 5, 5, 1, 2},
		{1, 2, 9, 9, 3, 3, 2, 1},
		{1, 4, 6, 6, 2, 1, 1, 0},
		{1, 2, 7, 7, 3, 7, 1, 3},
	}
	for _, c := range cases {
		x := Const(tensor.New(c.n, c.cin, c.h, c.w).RandN(rng, 0, 1))
		w := Const(tensor.New(c.cout, c.cin, c.k, c.k).RandN(rng, 0, 1))
		b := Const(tensor.New(c.cout).RandN(rng, 0, 1))
		cfg := Conv2DConfig{Stride: c.stride, Padding: c.pad}
		direct := Conv2D(x, w, b, cfg)
		fast := Conv2DFast(x, w, b, cfg)
		if !direct.T.SameShape(fast.T) {
			t.Fatalf("%+v: shape mismatch %v vs %v", c, direct.T.Shape, fast.T.Shape)
		}
		if d := direct.T.MaxAbsDiff(fast.T); d > 1e-4 {
			t.Fatalf("%+v: im2col differs from direct by %v", c, d)
		}
	}
}

func TestConv2DFastGradientsFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randParam(rng, 1, 2, 6, 6)
	w := randParam(rng, 3, 2, 3, 3)
	b := randParam(rng, 3)
	gradCheck(t, "conv2dfast", []*Value{x, w, b}, func() *Value {
		return Mean(Square(Conv2DFast(x, w, b, Conv2DConfig{Stride: 1, Padding: 1})))
	}, 2e-2)
}

func TestConv2DFastNoBias(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := Const(tensor.New(1, 2, 5, 5).RandN(rng, 0, 1))
	w := Const(tensor.New(2, 2, 3, 3).RandN(rng, 0, 1))
	cfg := Conv2DConfig{Stride: 1, Padding: 1}
	if d := Conv2D(x, w, nil, cfg).T.MaxAbsDiff(Conv2DFast(x, w, nil, cfg).T); d > 1e-4 {
		t.Fatalf("no-bias mismatch %v", d)
	}
}

// Property: fast and direct agree for random small shapes.
func TestConv2DFastEquivalenceProperty(t *testing.T) {
	f := func(seed int64, kRaw, cRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := []int{1, 3, 5}[int(kRaw)%3]
		cin := int(cRaw)%3 + 1
		x := Const(tensor.New(1, cin, 8, 8).RandN(rng, 0, 1))
		w := Const(tensor.New(2, cin, k, k).RandN(rng, 0, 1))
		cfg := Conv2DConfig{Stride: 1, Padding: k / 2}
		return Conv2D(x, w, nil, cfg).T.MaxAbsDiff(Conv2DFast(x, w, nil, cfg).T) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkConv2DDirectVsIm2col(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := Const(tensor.New(1, 16, 64, 64).RandN(rng, 0, 1))
	w := Const(tensor.New(16, 16, 5, 5).RandN(rng, 0, 1))
	cfg := Conv2DConfig{Stride: 1, Padding: 2}
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Conv2D(x, w, nil, cfg)
		}
	})
	b.Run("im2col", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Conv2DFast(x, w, nil, cfg)
		}
	})
}
