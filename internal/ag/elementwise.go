package ag

import (
	"fmt"
	"math"

	"computecovid19/internal/tensor"
)

func mustSameShape(op string, a, b *Value) {
	if !a.T.SameShape(b.T) {
		panic(fmt.Sprintf("ag: %s shape mismatch %v vs %v", op, a.T.Shape, b.T.Shape))
	}
}

// Add returns a + b elementwise.
func Add(a, b *Value) *Value {
	mustSameShape("Add", a, b)
	out := a.T.Add(b.T)
	var node *Value
	node = newNode("add", out, func() {
		if a.needGrad {
			a.ensureGrad().AddInPlace(node.Grad)
		}
		if b.needGrad {
			b.ensureGrad().AddInPlace(node.Grad)
		}
	}, a, b)
	return node
}

// Sub returns a - b elementwise.
func Sub(a, b *Value) *Value {
	mustSameShape("Sub", a, b)
	out := a.T.Sub(b.T)
	var node *Value
	node = newNode("sub", out, func() {
		if a.needGrad {
			a.ensureGrad().AddInPlace(node.Grad)
		}
		if b.needGrad {
			b.ensureGrad().SubInPlace(node.Grad)
		}
	}, a, b)
	return node
}

// Mul returns the elementwise (Hadamard) product a * b.
func Mul(a, b *Value) *Value {
	mustSameShape("Mul", a, b)
	out := a.T.Mul(b.T)
	var node *Value
	node = newNode("mul", out, func() {
		if a.needGrad {
			g := a.ensureGrad()
			for i, d := range node.Grad.Data {
				g.Data[i] += d * b.T.Data[i]
			}
		}
		if b.needGrad {
			g := b.ensureGrad()
			for i, d := range node.Grad.Data {
				g.Data[i] += d * a.T.Data[i]
			}
		}
	}, a, b)
	return node
}

// Div returns a / b elementwise. The caller is responsible for keeping b
// away from zero (the SSIM formulas add stabilizing constants).
func Div(a, b *Value) *Value {
	mustSameShape("Div", a, b)
	out := tensor.New(a.T.Shape...)
	for i := range out.Data {
		out.Data[i] = a.T.Data[i] / b.T.Data[i]
	}
	var node *Value
	node = newNode("div", out, func() {
		if a.needGrad {
			g := a.ensureGrad()
			for i, d := range node.Grad.Data {
				g.Data[i] += d / b.T.Data[i]
			}
		}
		if b.needGrad {
			g := b.ensureGrad()
			for i, d := range node.Grad.Data {
				bv := b.T.Data[i]
				g.Data[i] -= d * a.T.Data[i] / (bv * bv)
			}
		}
	}, a, b)
	return node
}

// Neg returns -a.
func Neg(a *Value) *Value { return MulConst(a, -1) }

// AddConst returns a + c elementwise.
func AddConst(a *Value, c float32) *Value {
	out := a.T.Clone()
	for i := range out.Data {
		out.Data[i] += c
	}
	var node *Value
	node = newNode("addconst", out, func() {
		if a.needGrad {
			a.ensureGrad().AddInPlace(node.Grad)
		}
	}, a)
	return node
}

// MulConst returns c * a elementwise.
func MulConst(a *Value, c float32) *Value {
	out := a.T.Scale(c)
	var node *Value
	node = newNode("mulconst", out, func() {
		if a.needGrad {
			a.ensureGrad().AxpyInPlace(c, node.Grad)
		}
	}, a)
	return node
}

// Square returns a² elementwise.
func Square(a *Value) *Value {
	out := a.T.Mul(a.T)
	var node *Value
	node = newNode("square", out, func() {
		if a.needGrad {
			g := a.ensureGrad()
			for i, d := range node.Grad.Data {
				g.Data[i] += 2 * d * a.T.Data[i]
			}
		}
	}, a)
	return node
}

// Sqrt returns √a elementwise. Inputs must be non-negative.
func Sqrt(a *Value) *Value {
	out := a.T.Clone().Apply(func(v float32) float32 {
		return float32(math.Sqrt(float64(v)))
	})
	var node *Value
	node = newNode("sqrt", out, func() {
		if a.needGrad {
			g := a.ensureGrad()
			for i, d := range node.Grad.Data {
				g.Data[i] += d * 0.5 / out.Data[i]
			}
		}
	}, a)
	return node
}

// PowConst returns a^p elementwise for a constant exponent (used by the
// MS-SSIM per-scale weights). Inputs should be positive when p is
// non-integer.
func PowConst(a *Value, p float32) *Value {
	out := a.T.Clone().Apply(func(v float32) float32 {
		return float32(math.Pow(float64(v), float64(p)))
	})
	var node *Value
	node = newNode("powconst", out, func() {
		if a.needGrad {
			g := a.ensureGrad()
			for i, d := range node.Grad.Data {
				g.Data[i] += d * p * float32(math.Pow(float64(a.T.Data[i]), float64(p-1)))
			}
		}
	}, a)
	return node
}

// Exp returns e^a elementwise.
func Exp(a *Value) *Value {
	out := a.T.Clone().Apply(func(v float32) float32 {
		return float32(math.Exp(float64(v)))
	})
	var node *Value
	node = newNode("exp", out, func() {
		if a.needGrad {
			g := a.ensureGrad()
			for i, d := range node.Grad.Data {
				g.Data[i] += d * out.Data[i]
			}
		}
	}, a)
	return node
}

// Log returns the natural logarithm elementwise. Inputs must be positive.
func Log(a *Value) *Value {
	out := a.T.Clone().Apply(func(v float32) float32 {
		return float32(math.Log(float64(v)))
	})
	var node *Value
	node = newNode("log", out, func() {
		if a.needGrad {
			g := a.ensureGrad()
			for i, d := range node.Grad.Data {
				g.Data[i] += d / a.T.Data[i]
			}
		}
	}, a)
	return node
}

// Abs returns |a| elementwise. The gradient at zero is taken as zero.
func Abs(a *Value) *Value {
	out := a.T.Clone().Apply(func(v float32) float32 {
		if v < 0 {
			return -v
		}
		return v
	})
	var node *Value
	node = newNode("abs", out, func() {
		if a.needGrad {
			g := a.ensureGrad()
			for i, d := range node.Grad.Data {
				switch {
				case a.T.Data[i] > 0:
					g.Data[i] += d
				case a.T.Data[i] < 0:
					g.Data[i] -= d
				}
			}
		}
	}, a)
	return node
}

// LeakyReLU applies max(x, slope*x) elementwise. DDnet uses slope 0.01.
func LeakyReLU(a *Value, slope float32) *Value {
	out := a.T.Clone().Apply(func(v float32) float32 {
		if v < 0 {
			return slope * v
		}
		return v
	})
	var node *Value
	node = newNode("leakyrelu", out, func() {
		if a.needGrad {
			g := a.ensureGrad()
			for i, d := range node.Grad.Data {
				if a.T.Data[i] < 0 {
					g.Data[i] += d * slope
				} else {
					g.Data[i] += d
				}
			}
		}
	}, a)
	return node
}

// ReLU applies max(x, 0) elementwise.
func ReLU(a *Value) *Value { return LeakyReLU(a, 0) }

// Sigmoid applies the logistic function elementwise.
func Sigmoid(a *Value) *Value {
	out := a.T.Clone().Apply(func(v float32) float32 {
		return float32(1.0 / (1.0 + math.Exp(-float64(v))))
	})
	var node *Value
	node = newNode("sigmoid", out, func() {
		if a.needGrad {
			g := a.ensureGrad()
			for i, d := range node.Grad.Data {
				y := out.Data[i]
				g.Data[i] += d * y * (1 - y)
			}
		}
	}, a)
	return node
}

// Tanh applies the hyperbolic tangent elementwise.
func Tanh(a *Value) *Value {
	out := a.T.Clone().Apply(func(v float32) float32 {
		return float32(math.Tanh(float64(v)))
	})
	var node *Value
	node = newNode("tanh", out, func() {
		if a.needGrad {
			g := a.ensureGrad()
			for i, d := range node.Grad.Data {
				y := out.Data[i]
				g.Data[i] += d * (1 - y*y)
			}
		}
	}, a)
	return node
}

// Clamp limits a to [lo, hi]; gradients pass only where the input is
// strictly inside the interval.
func Clamp(a *Value, lo, hi float32) *Value {
	out := a.T.Clone().Clamp(lo, hi)
	var node *Value
	node = newNode("clamp", out, func() {
		if a.needGrad {
			g := a.ensureGrad()
			for i, d := range node.Grad.Data {
				v := a.T.Data[i]
				if v > lo && v < hi {
					g.Data[i] += d
				}
			}
		}
	}, a)
	return node
}
