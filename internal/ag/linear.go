package ag

import (
	"fmt"

	"computecovid19/internal/parallel"
	"computecovid19/internal/tensor"
)

// Linear computes the affine map x·wᵀ + b used by the classifier head.
//
//	x: (N, In)   w: (Out, In)   b: (Out) or nil   out: (N, Out)
func Linear(x, w, b *Value) *Value {
	if x.T.Rank() != 2 || w.T.Rank() != 2 {
		panic(fmt.Sprintf("ag: Linear wants rank-2 x and w, got %v and %v", x.T.Shape, w.T.Shape))
	}
	n, in := x.T.Shape[0], x.T.Shape[1]
	outF, win := w.T.Shape[0], w.T.Shape[1]
	if in != win {
		panic(fmt.Sprintf("ag: Linear feature mismatch: x has %d, w expects %d", in, win))
	}
	if b != nil && b.T.Numel() != outF {
		panic(fmt.Sprintf("ag: Linear bias shape %v, want (%d)", b.T.Shape, outF))
	}
	out := tensor.New(n, outF)
	xd, wd, od := x.T.Data, w.T.Data, out.Data
	parallel.ForEach(n, 0, func(ni int) {
		for o := 0; o < outF; o++ {
			var acc float32
			if b != nil {
				acc = b.T.Data[o]
			}
			xrow := ni * in
			wrow := o * in
			for i := 0; i < in; i++ {
				acc += xd[xrow+i] * wd[wrow+i]
			}
			od[ni*outF+o] = acc
		}
	})

	parents := []*Value{x, w}
	if b != nil {
		parents = append(parents, b)
	}
	var node *Value
	node = newNode("linear", out, func() {
		gy := node.Grad.Data
		if x.needGrad {
			gx := x.ensureGrad().Data
			for ni := 0; ni < n; ni++ {
				for i := 0; i < in; i++ {
					var acc float32
					for o := 0; o < outF; o++ {
						acc += gy[ni*outF+o] * wd[o*in+i]
					}
					gx[ni*in+i] += acc
				}
			}
		}
		if w.needGrad {
			gw := w.ensureGrad().Data
			for o := 0; o < outF; o++ {
				for i := 0; i < in; i++ {
					var acc float32
					for ni := 0; ni < n; ni++ {
						acc += gy[ni*outF+o] * xd[ni*in+i]
					}
					gw[o*in+i] += acc
				}
			}
		}
		if b != nil && b.needGrad {
			gb := b.ensureGrad().Data
			for ni := 0; ni < n; ni++ {
				for o := 0; o < outF; o++ {
					gb[o] += gy[ni*outF+o]
				}
			}
		}
	}, parents...)
	return node
}

// Blur2D convolves every channel of x with the same fixed 2D kernel
// (zero padding, stride 1, "same" output when the kernel is odd and
// pad = k/2). The kernel is a plain tensor, not a tape node: gradients
// flow to x only. This is the workhorse of the differentiable SSIM /
// MS-SSIM implementation, which blurs with a fixed Gaussian window.
func Blur2D(x *Value, kernel *tensor.Tensor, pad int) *Value {
	if x.T.Rank() != 4 || kernel.Rank() != 2 {
		panic(fmt.Sprintf("ag: Blur2D wants rank-4 x and rank-2 kernel, got %v and %v",
			x.T.Shape, kernel.Shape))
	}
	n, c, h, w := x.T.Shape[0], x.T.Shape[1], x.T.Shape[2], x.T.Shape[3]
	kh, kw := kernel.Shape[0], kernel.Shape[1]
	oh, ow := convOutDim(h, kh, 1, pad), convOutDim(w, kw, 1, pad)
	if oh <= 0 || ow <= 0 {
		panic("ag: Blur2D output would be empty")
	}
	out := tensor.New(n, c, oh, ow)
	xd, kd, od := x.T.Data, kernel.Data, out.Data
	parallel.ForEach(n*c, 0, func(plane int) {
		xbase := plane * h * w
		obase := plane * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var acc float32
				for ky := 0; ky < kh; ky++ {
					iy := oy - pad + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < kw; kx++ {
						ix := ox - pad + kx
						if ix < 0 || ix >= w {
							continue
						}
						acc += xd[xbase+iy*w+ix] * kd[ky*kw+kx]
					}
				}
				od[obase+oy*ow+ox] = acc
			}
		}
	})

	var node *Value
	node = newNode("blur2d", out, func() {
		if x.needGrad {
			gx := x.ensureGrad().Data
			gy := node.Grad.Data
			parallel.ForEach(n*c, 0, func(plane int) {
				xbase := plane * h * w
				obase := plane * oh * ow
				for iy := 0; iy < h; iy++ {
					for ix := 0; ix < w; ix++ {
						var acc float32
						for ky := 0; ky < kh; ky++ {
							oy := iy + pad - ky
							if oy < 0 || oy >= oh {
								continue
							}
							for kx := 0; kx < kw; kx++ {
								ox := ix + pad - kx
								if ox < 0 || ox >= ow {
									continue
								}
								acc += gy[obase+oy*ow+ox] * kd[ky*kw+kx]
							}
						}
						gx[xbase+iy*w+ix] += acc
					}
				}
			})
		}
	}, x)
	return node
}
