// Package ag implements the reverse-mode automatic differentiation engine
// that stands in for PyTorch in this reproduction. Every operator the
// paper's three networks need — 2D/3D convolution, transposed
// convolution, pooling, bilinear un-pooling, batch normalization, dense
// concatenation, and the MSE / MS-SSIM / BCE losses — is provided as a
// differentiable op on Value nodes.
//
// The engine is a tape: each op returns a new Value whose back closure
// knows how to push gradients to its parents. Calling Backward on a
// scalar output topologically sorts the tape and runs the closures in
// reverse. All gradient formulas are validated against central finite
// differences in the package tests.
package ag

import (
	"fmt"

	"computecovid19/internal/tensor"
)

// Value is one node in the autograd tape: a tensor plus (optionally) its
// gradient and the recipe for back-propagating through the op that
// produced it.
type Value struct {
	// T holds the forward data.
	T *tensor.Tensor
	// Grad accumulates dLoss/dT. It is nil until the first backward pass
	// touches this node.
	Grad *tensor.Tensor

	needGrad bool
	parents  []*Value
	back     func()
	op       string
}

// Param wraps t as a trainable leaf: gradients will be accumulated into
// it during Backward.
func Param(t *tensor.Tensor) *Value {
	return &Value{T: t, needGrad: true, op: "param"}
}

// Const wraps t as a non-trainable leaf: no gradient is computed for it
// and the tape stops there.
func Const(t *tensor.Tensor) *Value {
	return &Value{T: t, op: "const"}
}

// NeedGrad reports whether this node participates in gradient
// computation.
func (v *Value) NeedGrad() bool { return v.needGrad }

// Op returns the name of the operation that produced this node (or
// "param"/"const" for leaves). Useful in error messages and tests.
func (v *Value) Op() string { return v.op }

// Shape returns the shape of the forward tensor.
func (v *Value) Shape() []int { return v.T.Shape }

// Detach returns a constant leaf sharing v's data, cutting the tape.
func (v *Value) Detach() *Value { return Const(v.T) }

// Scalar returns the single element of a one-element Value.
func (v *Value) Scalar() float32 {
	if v.T.Numel() != 1 {
		panic(fmt.Sprintf("ag: Scalar on tensor with %d elements", v.T.Numel()))
	}
	return v.T.Data[0]
}

// newNode builds an interior tape node. needGrad is inherited from the
// parents; back is only retained when a gradient can flow.
func newNode(op string, t *tensor.Tensor, back func(), parents ...*Value) *Value {
	need := false
	for _, p := range parents {
		if p != nil && p.needGrad {
			need = true
			break
		}
	}
	v := &Value{T: t, needGrad: need, op: op}
	if need {
		v.parents = parents
		v.back = back
	}
	return v
}

// ensureGrad allocates (zeroed) storage for v.Grad if absent and returns
// it. Ops call this before accumulating into a parent's gradient.
func (v *Value) ensureGrad() *tensor.Tensor {
	if v.Grad == nil {
		v.Grad = tensor.New(v.T.Shape...)
	}
	return v.Grad
}

// ZeroGrad clears the accumulated gradient, keeping the allocation.
func (v *Value) ZeroGrad() {
	if v.Grad != nil {
		v.Grad.Zero()
	}
}

// Backward runs reverse-mode differentiation from v, which must hold a
// single element (a scalar loss). Gradients are accumulated into the
// Grad field of every reachable node that needs one; call ZeroGrad on
// parameters between steps.
func (v *Value) Backward() {
	if v.T.Numel() != 1 {
		panic(fmt.Sprintf("ag: Backward requires a scalar output, got shape %v", v.T.Shape))
	}
	if !v.needGrad {
		return
	}
	order := topoSort(v)
	v.ensureGrad().Fill(1)
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.back != nil && n.Grad != nil {
			n.back()
		}
	}
}

// topoSort returns the reachable needGrad subgraph in topological order
// (parents before children). Iterative DFS: network depth (DDnet is ~50
// layers, DenseNet-121 over 120) would be fine for recursion, but the
// tape for a long training loop is cheap to walk iteratively and immune
// to stack limits.
func topoSort(root *Value) []*Value {
	type frame struct {
		node *Value
		next int
	}
	var order []*Value
	visited := map[*Value]bool{root: true}
	stack := []frame{{node: root}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.node.parents) {
			p := f.node.parents[f.next]
			f.next++
			if p != nil && p.needGrad && !visited[p] {
				visited[p] = true
				stack = append(stack, frame{node: p})
			}
			continue
		}
		order = append(order, f.node)
		stack = stack[:len(stack)-1]
	}
	return order
}
