package ag

import (
	"computecovid19/internal/kernels"
	"computecovid19/internal/parallel"
	"computecovid19/internal/tensor"
)

// im2col-based convolution: the classical HPC restructuring that turns
// convolution into one large matrix multiply (the route cuDNN and most
// CPU BLAS backends take). The forward result is bit-identical in
// structure to Conv2D's direct loops but trades memory (the unrolled
// patch matrix) for locality: the inner loop becomes a dense dot product
// over contiguous rows.
//
// Conv2DFast is used by DDnet's forward pass at larger images where the
// patch matrix pays for itself; the direct kernels remain the reference
// implementation and the backward path (weight/input gradients reuse the
// direct formulation, which is memory-lean).

// im2col unrolls x (C, H, W view into a batch element) into a matrix of
// shape (C·K·K, OH·OW), column j holding the receptive field of output
// pixel j.
func im2col(x []float32, c, h, w, k, stride, pad, oh, ow int, out []float32) {
	cols := oh * ow
	for ci := 0; ci < c; ci++ {
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := ((ci*k + ky) * k) + kx
				dst := out[row*cols : (row+1)*cols]
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							dst[oy*ow+ox] = 0
						}
						continue
					}
					srcRow := (ci*h + iy) * w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx
						if ix < 0 || ix >= w {
							dst[oy*ow+ox] = 0
						} else {
							dst[oy*ow+ox] = x[srcRow+ix]
						}
					}
				}
			}
		}
	}
}

// matmulNT computes C = A·B for A (m×kk) and B (kk×n), all row-major,
// parallelized over rows of A with a blocked inner loop.
func matmulNT(a, b, c []float32, m, kk, n, workers int) {
	parallel.ForEach(m, workers, func(i int) {
		ci := c[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
		ai := a[i*kk : (i+1)*kk]
		for l := 0; l < kk; l++ {
			alv := ai[l]
			if alv == 0 {
				continue
			}
			bl := b[l*n : (l+1)*n]
			for j := 0; j < n; j++ {
				ci[j] += alv * bl[j]
			}
		}
	})
}

// sameConvShape reports whether the layer is a stride-1 "same"
// convolution with an odd square kernel — the family internal/kernels'
// optimization-ladder rungs cover (every DDnet layer qualifies).
func sameConvShape(kh, kw, stride, pad int) bool {
	return kh == kw && kh%2 == 1 && stride == 1 && pad == kh/2
}

// Conv2DFast is a drop-in replacement for Conv2D whose forward pass
// dispatches to the selected internal/kernels optimization-ladder rung
// (kernels.Default, normally the im2col + cache-blocked GEMM path) for
// stride-1 "same" odd-square-kernel layers, and otherwise uses the
// package-local im2col + matrix multiplication. Gradients are computed
// with the same formulas as Conv2D (the backward pass does not
// materialize the patch matrix).
func Conv2DFast(x, w, b *Value, cfg Conv2DConfig) *Value {
	n, cin, h, wd := x.T.Shape[0], x.T.Shape[1], x.T.Shape[2], x.T.Shape[3]
	cout, _, kh, kw := w.T.Shape[0], w.T.Shape[1], w.T.Shape[2], w.T.Shape[3]
	if kh != kw {
		// Rectangular kernels fall back to the direct implementation.
		return Conv2D(x, w, b, cfg)
	}
	s, p := cfg.Stride, cfg.Padding
	oh, ow := convOutDim(h, kh, s, p), convOutDim(wd, kw, s, p)
	if oh <= 0 || ow <= 0 {
		return Conv2D(x, w, b, cfg)
	}

	if sameConvShape(kh, kw, s, p) {
		im := kernels.Default()
		out := tensor.New(n, cout, oh, ow)
		ks := kernels.ConvShape{InC: cin, H: h, W: wd, OutC: cout, K: kh}
		plane := cin * h * wd
		oplane := cout * oh * ow
		for ni := 0; ni < n; ni++ {
			im.Conv(x.T.Data[ni*plane:(ni+1)*plane], w.T.Data,
				out.Data[ni*oplane:(ni+1)*oplane], ks, 0)
		}
		addBias(out.Data, b, n, cout, oh*ow)
		return newConv2DNode(x, w, b, cfg, out)
	}

	out := tensor.New(n, cout, oh, ow)
	patchRows := cin * kh * kw
	cols := oh * ow
	patch := make([]float32, patchRows*cols)
	for ni := 0; ni < n; ni++ {
		im2col(x.T.Data[ni*cin*h*wd:(ni+1)*cin*h*wd], cin, h, wd, kh, s, p, oh, ow, patch)
		// (cout × patchRows) · (patchRows × cols) → (cout × cols)
		matmulNT(w.T.Data, patch, out.Data[ni*cout*cols:(ni+1)*cout*cols],
			cout, patchRows, cols, 0)
	}
	addBias(out.Data, b, n, cout, cols)

	return newConv2DNode(x, w, b, cfg, out)
}

// addBias adds the per-channel bias to an (N, C, spatial) buffer after
// the matrix multiply (a no-op for nil bias).
func addBias(out []float32, b *Value, n, cout, cols int) {
	if b == nil {
		return
	}
	for ni := 0; ni < n; ni++ {
		for co := 0; co < cout; co++ {
			base := (ni*cout + co) * cols
			bias := b.T.Data[co]
			for i := 0; i < cols; i++ {
				out[base+i] += bias
			}
		}
	}
}

// ConvTranspose2DFast is a drop-in replacement for ConvTranspose2D
// whose forward pass dispatches stride-1 "same" odd-square-kernel
// layers — all of DDnet's deconvolutions — to the selected
// internal/kernels rung (kernels.Default, normally the gather + GEMM
// formulation from §4.2.1, which has no scatter races and so
// parallelizes over output tiles). Other shapes fall back to the
// direct gather loops. Gradients are identical to ConvTranspose2D's.
func ConvTranspose2DFast(x, w, b *Value, cfg Conv2DConfig) *Value {
	n, cin, h, wd := x.T.Shape[0], x.T.Shape[1], x.T.Shape[2], x.T.Shape[3]
	cout, kh, kw := w.T.Shape[1], w.T.Shape[2], w.T.Shape[3]
	s, p := cfg.Stride, cfg.Padding
	if !sameConvShape(kh, kw, s, p) {
		return ConvTranspose2D(x, w, b, cfg)
	}
	// Stride-1 "same" transposed convolution preserves the spatial size.
	out := tensor.New(n, cout, h, wd)
	im := kernels.Default()
	ks := kernels.ConvShape{InC: cin, H: h, W: wd, OutC: cout, K: kh}
	plane := cin * h * wd
	oplane := cout * h * wd
	for ni := 0; ni < n; ni++ {
		im.Deconv(x.T.Data[ni*plane:(ni+1)*plane], w.T.Data,
			out.Data[ni*oplane:(ni+1)*oplane], ks, 0)
	}
	addBias(out.Data, b, n, cout, h*wd)
	return newConvTranspose2DNode(x, w, b, cfg, out)
}
