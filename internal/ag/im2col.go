package ag

import (
	"computecovid19/internal/parallel"
	"computecovid19/internal/tensor"
)

// im2col-based convolution: the classical HPC restructuring that turns
// convolution into one large matrix multiply (the route cuDNN and most
// CPU BLAS backends take). The forward result is bit-identical in
// structure to Conv2D's direct loops but trades memory (the unrolled
// patch matrix) for locality: the inner loop becomes a dense dot product
// over contiguous rows.
//
// Conv2DFast is used by DDnet's forward pass at larger images where the
// patch matrix pays for itself; the direct kernels remain the reference
// implementation and the backward path (weight/input gradients reuse the
// direct formulation, which is memory-lean).

// im2col unrolls x (C, H, W view into a batch element) into a matrix of
// shape (C·K·K, OH·OW), column j holding the receptive field of output
// pixel j.
func im2col(x []float32, c, h, w, k, stride, pad, oh, ow int, out []float32) {
	cols := oh * ow
	for ci := 0; ci < c; ci++ {
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := ((ci*k + ky) * k) + kx
				dst := out[row*cols : (row+1)*cols]
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							dst[oy*ow+ox] = 0
						}
						continue
					}
					srcRow := (ci*h + iy) * w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx
						if ix < 0 || ix >= w {
							dst[oy*ow+ox] = 0
						} else {
							dst[oy*ow+ox] = x[srcRow+ix]
						}
					}
				}
			}
		}
	}
}

// matmulNT computes C = A·B for A (m×kk) and B (kk×n), all row-major,
// parallelized over rows of A with a blocked inner loop.
func matmulNT(a, b, c []float32, m, kk, n, workers int) {
	parallel.ForEach(m, workers, func(i int) {
		ci := c[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
		ai := a[i*kk : (i+1)*kk]
		for l := 0; l < kk; l++ {
			alv := ai[l]
			if alv == 0 {
				continue
			}
			bl := b[l*n : (l+1)*n]
			for j := 0; j < n; j++ {
				ci[j] += alv * bl[j]
			}
		}
	})
}

// Conv2DFast is a drop-in replacement for Conv2D whose forward pass uses
// im2col + matrix multiplication. Gradients are computed with the same
// formulas as Conv2D (the backward pass does not materialize the patch
// matrix).
func Conv2DFast(x, w, b *Value, cfg Conv2DConfig) *Value {
	n, cin, h, wd := x.T.Shape[0], x.T.Shape[1], x.T.Shape[2], x.T.Shape[3]
	cout, _, kh, kw := w.T.Shape[0], w.T.Shape[1], w.T.Shape[2], w.T.Shape[3]
	if kh != kw {
		// Rectangular kernels fall back to the direct implementation.
		return Conv2D(x, w, b, cfg)
	}
	s, p := cfg.Stride, cfg.Padding
	oh, ow := convOutDim(h, kh, s, p), convOutDim(wd, kw, s, p)
	if oh <= 0 || ow <= 0 {
		return Conv2D(x, w, b, cfg)
	}

	out := tensor.New(n, cout, oh, ow)
	patchRows := cin * kh * kw
	cols := oh * ow
	patch := make([]float32, patchRows*cols)
	for ni := 0; ni < n; ni++ {
		im2col(x.T.Data[ni*cin*h*wd:(ni+1)*cin*h*wd], cin, h, wd, kh, s, p, oh, ow, patch)
		// (cout × patchRows) · (patchRows × cols) → (cout × cols)
		matmulNT(w.T.Data, patch, out.Data[ni*cout*cols:(ni+1)*cout*cols],
			cout, patchRows, cols, 0)
	}
	if b != nil {
		for ni := 0; ni < n; ni++ {
			for co := 0; co < cout; co++ {
				base := (ni*cout + co) * cols
				bias := b.T.Data[co]
				for i := 0; i < cols; i++ {
					out.Data[base+i] += bias
				}
			}
		}
	}

	return newConv2DNode(x, w, b, cfg, out)
}
