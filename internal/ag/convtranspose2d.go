package ag

import (
	"fmt"

	"computecovid19/internal/parallel"
	"computecovid19/internal/tensor"
)

// ConvTranspose2D performs a 2D transposed convolution (deconvolution),
// the core operation of DDnet's reconstruction half.
//
//	x: (N, Cin, H, W)   w: (Cin, Cout, KH, KW)   b: (Cout) or nil
//	out: (N, Cout, OH, OW) with OH = (H-1)*stride - 2*pad + KH
//
// The forward pass uses the gather ("refactored") formulation from §4.2.1
// of the paper: each output element collects the input elements that map
// onto it, so there are no write conflicts and the loop parallelizes over
// (batch, output-channel) pairs. The scatter ("baseline") formulation
// lives in internal/kernels for the Table 7 ablation.
func ConvTranspose2D(x, w, b *Value, cfg Conv2DConfig) *Value {
	if x.T.Rank() != 4 || w.T.Rank() != 4 {
		panic(fmt.Sprintf("ag: ConvTranspose2D wants rank-4 x and w, got %v and %v", x.T.Shape, w.T.Shape))
	}
	n, cin, h, wd := x.T.Shape[0], x.T.Shape[1], x.T.Shape[2], x.T.Shape[3]
	wcin, cout, kh, kw := w.T.Shape[0], w.T.Shape[1], w.T.Shape[2], w.T.Shape[3]
	if cin != wcin {
		panic(fmt.Sprintf("ag: ConvTranspose2D channel mismatch: x has %d, w expects %d", cin, wcin))
	}
	if b != nil && (b.T.Rank() != 1 || b.T.Shape[0] != cout) {
		panic(fmt.Sprintf("ag: ConvTranspose2D bias shape %v, want (%d)", b.T.Shape, cout))
	}
	s, p := cfg.Stride, cfg.Padding
	if s <= 0 {
		panic("ag: ConvTranspose2D stride must be positive")
	}
	oh := (h-1)*s - 2*p + kh
	ow := (wd-1)*s - 2*p + kw
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("ag: ConvTranspose2D output would be %dx%d", oh, ow))
	}
	out := tensor.New(n, cout, oh, ow)

	xd, wdta, od := x.T.Data, w.T.Data, out.Data
	parallel.ForEach(n*cout, 0, func(idx int) {
		ni, co := idx/cout, idx%cout
		var bias float32
		if b != nil {
			bias = b.T.Data[co]
		}
		obase := (ni*cout + co) * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				acc := bias
				// Output (oy,ox) receives x[iy,ix]*w[ky,kx] whenever
				// oy = iy*s - p + ky, i.e. iy = (oy + p - ky)/s exactly.
				for ky := 0; ky < kh; ky++ {
					iyNum := oy + p - ky
					if iyNum < 0 || iyNum%s != 0 {
						continue
					}
					iy := iyNum / s
					if iy >= h {
						continue
					}
					for kx := 0; kx < kw; kx++ {
						ixNum := ox + p - kx
						if ixNum < 0 || ixNum%s != 0 {
							continue
						}
						ix := ixNum / s
						if ix >= wd {
							continue
						}
						for ci := 0; ci < cin; ci++ {
							acc += xd[((ni*cin+ci)*h+iy)*wd+ix] *
								wdta[((ci*cout+co)*kh+ky)*kw+kx]
						}
					}
				}
				od[obase+oy*ow+ox] = acc
			}
		}
	})

	return newConvTranspose2DNode(x, w, b, cfg, out)
}

// newConvTranspose2DNode wraps a precomputed transposed-convolution
// output in a tape node whose backward closures implement the standard
// gradients. The closures read only the inputs and the output
// gradient, so any forward algorithm (direct gather loops, the
// internal/kernels registry rungs) can share them.
func newConvTranspose2DNode(x, w, b *Value, cfg Conv2DConfig, out *tensor.Tensor) *Value {
	n, cin, h, wd := x.T.Shape[0], x.T.Shape[1], x.T.Shape[2], x.T.Shape[3]
	cout, kh, kw := w.T.Shape[1], w.T.Shape[2], w.T.Shape[3]
	s, p := cfg.Stride, cfg.Padding
	oh, ow := out.Shape[2], out.Shape[3]
	xd, wdta := x.T.Data, w.T.Data

	parents := []*Value{x, w}
	if b != nil {
		parents = append(parents, b)
	}
	var node *Value
	node = newNode("convtranspose2d", out, func() {
		gy := node.Grad.Data
		if x.needGrad {
			// dX is a strided cross-correlation of dY with w: input cell
			// (iy,ix) contributed to outputs (iy*s - p + ky, ...).
			gx := x.ensureGrad().Data
			parallel.ForEach(n*cin, 0, func(idx int) {
				ni, ci := idx/cin, idx%cin
				xbase := (ni*cin + ci) * h * wd
				for iy := 0; iy < h; iy++ {
					for ix := 0; ix < wd; ix++ {
						var acc float32
						for ky := 0; ky < kh; ky++ {
							oy := iy*s - p + ky
							if oy < 0 || oy >= oh {
								continue
							}
							for kx := 0; kx < kw; kx++ {
								ox := ix*s - p + kx
								if ox < 0 || ox >= ow {
									continue
								}
								for co := 0; co < cout; co++ {
									acc += gy[((ni*cout+co)*oh+oy)*ow+ox] *
										wdta[((ci*cout+co)*kh+ky)*kw+kx]
								}
							}
						}
						gx[xbase+iy*wd+ix] += acc
					}
				}
			})
		}
		if w.needGrad {
			gw := w.ensureGrad().Data
			parallel.ForEach(cin*cout, 0, func(idx int) {
				ci, co := idx/cout, idx%cout
				for ky := 0; ky < kh; ky++ {
					for kx := 0; kx < kw; kx++ {
						var acc float32
						for ni := 0; ni < n; ni++ {
							xbase := (ni*cin + ci) * h * wd
							ybase := (ni*cout + co) * oh * ow
							for iy := 0; iy < h; iy++ {
								oy := iy*s - p + ky
								if oy < 0 || oy >= oh {
									continue
								}
								for ix := 0; ix < wd; ix++ {
									ox := ix*s - p + kx
									if ox < 0 || ox >= ow {
										continue
									}
									acc += xd[xbase+iy*wd+ix] * gy[ybase+oy*ow+ox]
								}
							}
						}
						gw[((ci*cout+co)*kh+ky)*kw+kx] += acc
					}
				}
			})
		}
		if b != nil && b.needGrad {
			gb := b.ensureGrad().Data
			for ni := 0; ni < n; ni++ {
				for co := 0; co < cout; co++ {
					base := (ni*cout + co) * oh * ow
					var acc float32
					for i := 0; i < oh*ow; i++ {
						acc += gy[base+i]
					}
					gb[co] += acc
				}
			}
		}
	}, parents...)
	return node
}
