package ag

import (
	"fmt"
	"math"

	"computecovid19/internal/tensor"
)

// SSIMConfig parameterizes the structural-similarity computation.
type SSIMConfig struct {
	// WindowSize is the side of the Gaussian window (odd; default 11).
	WindowSize int
	// Sigma is the Gaussian window's standard deviation (default 1.5).
	Sigma float64
	// L is the dynamic range of the images (1 for [0,1] data, as DDnet
	// uses after HU normalization).
	L float64
	// K1, K2 are the standard SSIM stabilization constants.
	K1, K2 float64
}

// DefaultSSIM returns the canonical Wang et al. configuration for images
// normalized to [0, 1].
func DefaultSSIM() SSIMConfig {
	return SSIMConfig{WindowSize: 11, Sigma: 1.5, L: 1, K1: 0.01, K2: 0.03}
}

// MSSSIMWeights are the canonical five per-scale exponents from
// Wang, Simoncelli & Bovik (2003), cited by the paper as [42].
var MSSSIMWeights = []float64{0.0448, 0.2856, 0.3001, 0.2363, 0.1333}

// GaussianWindow returns a normalized 2D Gaussian kernel.
func GaussianWindow(size int, sigma float64) *tensor.Tensor {
	if size < 1 || size%2 == 0 {
		panic(fmt.Sprintf("ag: Gaussian window size must be odd and positive, got %d", size))
	}
	k := tensor.New(size, size)
	c := float64(size / 2)
	sum := 0.0
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			dy, dx := float64(y)-c, float64(x)-c
			v := math.Exp(-(dx*dx + dy*dy) / (2 * sigma * sigma))
			k.Data[y*size+x] = float32(v)
			sum += v
		}
	}
	k.ScaleInPlace(float32(1 / sum))
	return k
}

// ssimComponents computes the mean luminance term and the mean
// contrast-structure term of SSIM between x and y (both rank-4 NCHW).
// Both returned Values are scalars on the tape, so gradients flow to x
// and y.
func ssimComponents(x, y *Value, win *tensor.Tensor, cfg SSIMConfig) (lum, cs *Value) {
	c1 := float32(cfg.K1 * cfg.L * cfg.K1 * cfg.L)
	c2 := float32(cfg.K2 * cfg.L * cfg.K2 * cfg.L)

	// Valid (unpadded) windows, as in the reference SSIM implementation.
	muX := Blur2D(x, win, 0)
	muY := Blur2D(y, win, 0)
	muXX := Mul(muX, muX)
	muYY := Mul(muY, muY)
	muXY := Mul(muX, muY)

	sigXX := Sub(Blur2D(Mul(x, x), win, 0), muXX)
	sigYY := Sub(Blur2D(Mul(y, y), win, 0), muYY)
	sigXY := Sub(Blur2D(Mul(x, y), win, 0), muXY)

	lumMap := Div(AddConst(MulConst(muXY, 2), c1), AddConst(Add(muXX, muYY), c1))
	csMap := Div(AddConst(MulConst(sigXY, 2), c2), AddConst(Add(sigXX, sigYY), c2))
	return Mean(lumMap), Mean(csMap)
}

// SSIM returns the mean structural similarity index between x and y as a
// differentiable scalar in [-1, 1] (≈1 for identical images).
func SSIM(x, y *Value, cfg SSIMConfig) *Value {
	win := GaussianWindow(cfg.WindowSize, cfg.Sigma)
	lum, cs := ssimComponents(x, y, win, cfg)
	return Mul(lum, cs)
}

// MaxMSSSIMScales reports how many MS-SSIM scales fit an H×W image with
// the given window size: each scale halves the spatial dimensions and
// the window must still fit.
func MaxMSSSIMScales(h, w, window int) int {
	scales := 0
	for h >= window && w >= window && scales < len(MSSSIMWeights) {
		scales++
		h /= 2
		w /= 2
	}
	return scales
}

// MSSSIM returns the multi-scale structural similarity index
// (Wang et al. 2003) between x and y as a differentiable scalar:
//
//	MS-SSIM = lum_M^{w_M} · Π_{j=1..M} cs_j^{w_j}
//
// with avg-pool ×2 between scales. scales must be between 1 and 5; use
// MaxMSSSIMScales to respect small images. Per-scale contrast terms are
// clamped to a tiny positive floor before exponentiation so fractional
// powers stay defined early in training.
func MSSSIM(x, y *Value, cfg SSIMConfig, scales int) *Value {
	if scales < 1 || scales > len(MSSSIMWeights) {
		panic(fmt.Sprintf("ag: MSSSIM scales must be in [1, %d], got %d", len(MSSSIMWeights), scales))
	}
	win := GaussianWindow(cfg.WindowSize, cfg.Sigma)

	// Renormalize the weights when using fewer than 5 scales so the
	// exponents still sum to 1.
	wsum := 0.0
	for _, w := range MSSSIMWeights[:scales] {
		wsum += w
	}

	var result *Value
	cx, cy := x, y
	for s := 0; s < scales; s++ {
		lum, cs := ssimComponents(cx, cy, win, cfg)
		var term *Value
		if s == scales-1 {
			term = Mul(Clamp(lum, 1e-6, 2), Clamp(cs, 1e-6, 2))
		} else {
			term = Clamp(cs, 1e-6, 2)
		}
		term = PowConst(term, float32(MSSSIMWeights[s]/wsum))
		if result == nil {
			result = term
		} else {
			result = Mul(result, term)
		}
		if s != scales-1 {
			cx = AvgPool2D(cx, Pool2DConfig{Kernel: 2, Stride: 2})
			cy = AvgPool2D(cy, Pool2DConfig{Kernel: 2, Stride: 2})
		}
	}
	return result
}

// CompositeEnhancementLoss is DDnet's training objective (Equation 1):
//
//	L = MSE(y, f(x)) + 0.1 · (1 − MS-SSIM(y, f(x)))
//
// scales is clamped to what the image size supports.
func CompositeEnhancementLoss(pred, target *Value, cfg SSIMConfig) *Value {
	h, w := pred.T.Shape[2], pred.T.Shape[3]
	scales := MaxMSSSIMScales(h, w, cfg.WindowSize)
	if scales < 1 {
		// Image smaller than the SSIM window: fall back to pure MSE.
		return MSELoss(pred, target)
	}
	mse := MSELoss(pred, target)
	ms := MSSSIM(pred, target, cfg, scales)
	return Add(mse, MulConst(AddConst(Neg(ms), 1), 0.1))
}
