package ag

import (
	"math"
	"math/rand"
	"testing"

	"computecovid19/internal/tensor"
)

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := Const(tensor.New(3, 5).RandN(rng, 0, 3))
	y := Softmax(x)
	for i := 0; i < 3; i++ {
		sum := 0.0
		for j := 0; j < 5; j++ {
			v := float64(y.T.At(i, j))
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxStableWithLargeLogits(t *testing.T) {
	x := Const(tensor.FromSlice([]float32{1000, 1001, 999}, 1, 3))
	y := Softmax(x)
	for _, v := range y.T.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax overflowed: %v", y.T.Data)
		}
	}
	if !(y.T.Data[1] > y.T.Data[0] && y.T.Data[0] > y.T.Data[2]) {
		t.Fatalf("softmax ordering wrong: %v", y.T.Data)
	}
}

func TestGradSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randParam(rng, 2, 4)
	gradCheck(t, "softmax", []*Value{x}, func() *Value {
		return Mean(Square(Softmax(x)))
	}, 2e-2)
}

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over C classes → loss = ln C.
	logits := Const(tensor.New(2, 4))
	loss := CrossEntropyLoss(logits, []int{0, 3})
	if math.Abs(float64(loss.Scalar())-math.Log(4)) > 1e-5 {
		t.Fatalf("CE = %v, want ln4", loss.Scalar())
	}
}

func TestCrossEntropyMatchesManualComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(3, 4).RandN(rng, 0, 2)
	labels := []int{1, 0, 3}
	fused := CrossEntropyLoss(Const(x), labels)
	// Manual: −mean(log softmax[label]).
	sm := Softmax(Const(x))
	manual := 0.0
	for i, l := range labels {
		manual -= math.Log(float64(sm.T.At(i, l)))
	}
	manual /= 3
	if math.Abs(float64(fused.Scalar())-manual) > 1e-5 {
		t.Fatalf("fused CE %v vs manual %v", fused.Scalar(), manual)
	}
}

func TestGradCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randParam(rng, 3, 4)
	labels := []int{2, 0, 1}
	gradCheck(t, "crossentropy", []*Value{x}, func() *Value {
		return CrossEntropyLoss(x, labels)
	}, 2e-2)
}

func TestCrossEntropyLabelValidation(t *testing.T) {
	logits := Const(tensor.New(1, 3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range label")
		}
	}()
	CrossEntropyLoss(logits, []int{3})
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := Const(tensor.New(10).RandN(rng, 0, 1))
	y := Dropout(x, 0.5, false, rng)
	if y != x {
		t.Fatal("eval-mode dropout should return the input node")
	}
}

func TestDropoutTrainStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 20000
	x := Const(tensor.New(n).Fill(1))
	y := Dropout(x, 0.25, true, rng)
	zeros := 0
	for _, v := range y.T.Data {
		if v == 0 {
			zeros++
		} else if math.Abs(float64(v)-1/0.75) > 1e-5 {
			t.Fatalf("survivor not scaled by 1/(1-p): %v", v)
		}
	}
	frac := float64(zeros) / float64(n)
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("dropped fraction = %v, want ~0.25", frac)
	}
	// Expectation preserved.
	if math.Abs(y.T.Mean()-1) > 0.02 {
		t.Fatalf("dropout mean = %v, want ~1", y.T.Mean())
	}
}

func TestGradDropout(t *testing.T) {
	// With a fixed rng the mask is deterministic per call, so use one
	// forward pass and check gradient routing manually.
	rng := rand.New(rand.NewSource(7))
	x := Param(tensor.New(8).Fill(2))
	y := Dropout(x, 0.5, true, rng)
	Sum(y).Backward()
	for i, v := range y.T.Data {
		want := float32(0)
		if v != 0 {
			want = 2 // 1/(1-0.5)
		}
		if x.Grad.Data[i] != want {
			t.Fatalf("grad[%d] = %v, want %v", i, x.Grad.Data[i], want)
		}
	}
}
