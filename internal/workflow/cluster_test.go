package workflow

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func testClusterModel(replicas int) ClusterModel {
	return ClusterModel{
		Replicas: replicas,
		Replica: ServeModel{
			Workers: 4, BatchSize: 16, BatchTimeout: 2 * time.Millisecond,
			SlicesPerScan: 8, EnhanceSlice: 2 * time.Millisecond,
			Segment: 90 * time.Millisecond, Classify: 30 * time.Millisecond,
		},
		GatewayOverhead: 2 * time.Millisecond,
	}
}

func TestClusterThroughputScalesLinearly(t *testing.T) {
	single := testClusterModel(1).PredictedThroughput()
	if want := testClusterModel(1).Replica.PredictedThroughput(); math.Abs(single-want) > 1e-9 {
		t.Fatalf("1-replica cluster %v scans/s, want the replica's own %v", single, want)
	}
	for _, n := range []int{2, 3, 8} {
		got := testClusterModel(n).PredictedThroughput()
		if want := float64(n) * single; math.Abs(got-want) > 1e-9 {
			t.Fatalf("%d-replica throughput %v, want %v", n, got, want)
		}
	}
}

// TestClusterPipelineMatchesPrediction is the simulator cross-check:
// a saturated burst through ClusterPipeline must drain at roughly the
// analytic rate, for more than one replica count.
func TestClusterPipelineMatchesPrediction(t *testing.T) {
	for _, n := range []int{1, 3} {
		m := testClusterModel(n)
		const patients = 600
		rng := rand.New(rand.NewSource(1))
		res := Run(m.ClusterPipeline(), patients, 0, rng)
		simulated := float64(patients) / res.Max.Seconds()
		predicted := m.PredictedThroughput()
		if ratio := simulated / predicted; ratio < 0.8 || ratio > 1.2 {
			t.Fatalf("replicas=%d: simulated %.2f scans/s vs predicted %.2f (ratio %.3f)",
				n, simulated, predicted, ratio)
		}
	}
}

func TestClusterPredictedQuantileShape(t *testing.T) {
	m := testClusterModel(3)
	cap := m.PredictedThroughput()

	// An idle cluster answers in one service time.
	if got, want := m.PredictedP99(0), m.serviceTime(); got != want {
		t.Fatalf("idle p99 %v, want service time %v", got, want)
	}
	// Tail latency must grow with load...
	low, high := m.PredictedP99(0.3*cap), m.PredictedP99(0.9*cap)
	if high <= low {
		t.Fatalf("p99 did not grow with load: %v at 30%% vs %v at 90%%", low, high)
	}
	// ...explode at capacity...
	if got := m.PredictedP99(cap); got != time.Duration(math.MaxInt64) {
		t.Fatalf("p99 at capacity = %v, want unbounded", got)
	}
	// ...and shrink when replicas are added at fixed admission rate.
	if wider := testClusterModel(6).PredictedP99(0.9 * cap); wider >= high {
		t.Fatalf("doubling replicas did not cut p99: %v vs %v", wider, high)
	}
}

// TestShardChunkSlicesPicksMakespanOptimum pins the chunk-size search
// on a hand-checkable case: 12 slices across 3 replicas at 10 ms/slice.
// With no per-chunk overhead the 40 ms makespan is achievable at k = 1,
// 2, or 4, and ties break toward the larger chunk (fewer round trips);
// a 5 ms overhead makes the one-wave even split strictly best.
func TestShardChunkSlicesPicksMakespanOptimum(t *testing.T) {
	m := testClusterModel(3)
	m.Replica.EnhanceSlice = 10 * time.Millisecond

	m.ChunkOverhead = 0
	if got := m.ShardChunkSlices(12); got != 4 {
		t.Fatalf("overhead-free chunk size %d, want 4 (largest makespan tie)", got)
	}
	m.ChunkOverhead = 5 * time.Millisecond
	if got := m.ShardChunkSlices(12); got != 4 {
		t.Fatalf("chunk size %d with overhead, want 4", got)
	}

	// No per-slice model: degrade to one even wave across the replicas.
	m.Replica.EnhanceSlice = 0
	if got := m.ShardChunkSlices(10); got != 4 {
		t.Fatalf("model-free chunk size %d, want ceil(10/3)=4", got)
	}
}

// TestShardedLatencyModelMatchesSimulation is the simulator cross-check
// for the sharded-latency model: mapping one scan's chunk fan-out onto
// the discrete-event simulator (each chunk a job, Replicas parallel
// servers, uniform chunk duration) must reproduce the analytic makespan
// exactly — both sides model the same list schedule.
func TestShardedLatencyModelMatchesSimulation(t *testing.T) {
	for _, tc := range []struct{ slices, replicas, chunk int }{
		{8, 2, 1}, {8, 2, 3}, {12, 3, 4}, {512, 7, 16}, {9, 3, 9},
	} {
		m := testClusterModel(tc.replicas)
		m.ChunkOverhead = time.Millisecond
		p, nchunks := m.ShardedEnhancePipeline(tc.slices, tc.chunk)
		rng := rand.New(rand.NewSource(1))
		res := Run(p, nchunks, 0, rng)
		if want := m.shardedEnhanceSpan(tc.slices, tc.chunk); res.Max != want {
			t.Fatalf("slices=%d replicas=%d chunk=%d: simulated makespan %v, analytic %v",
				tc.slices, tc.replicas, tc.chunk, res.Max, want)
		}
	}
}

// TestShardedSpeedupScalesWithReplicas checks the headline property the
// sharded data plane exists for: predicted single-scan latency drops as
// replicas are added, and the predicted speedup over the unsharded path
// clears 1 once there is anything to scatter across.
func TestShardedSpeedupScalesWithReplicas(t *testing.T) {
	const slices = 64
	prev := time.Duration(math.MaxInt64)
	for _, n := range []int{2, 4, 8} {
		m := testClusterModel(n)
		m.ChunkOverhead = time.Millisecond
		lat := m.PredictedShardedLatency(slices)
		if lat >= prev {
			t.Fatalf("latency did not drop at %d replicas: %v (prev %v)", n, lat, prev)
		}
		prev = lat
		if sp := m.PredictedShardedSpeedup(slices); sp <= 1 {
			t.Fatalf("predicted speedup %.2f at %d replicas, want > 1", sp, n)
		}
	}
}

// TestClusterP99MatchesSimulation validates the Erlang-C tail against
// the discrete-event simulation at moderate load. The simulator's
// arrivals are uniform over the window (Poisson-like for large n) and
// its pipeline has structure the single-queue model abstracts away, so
// the band is loose — the model must get the order of magnitude and the
// load trend right, not the third digit.
func TestClusterP99MatchesSimulation(t *testing.T) {
	m := testClusterModel(3)
	lambda := 0.6 * m.PredictedThroughput()
	const patients = 3000
	window := time.Duration(float64(patients) / lambda * float64(time.Second))
	rng := rand.New(rand.NewSource(1))
	res := Run(m.ClusterPipeline(), patients, window, rng)
	predicted := m.PredictedP99(lambda)
	if ratio := res.P99.Seconds() / predicted.Seconds(); ratio < 0.33 || ratio > 3 {
		t.Fatalf("simulated p99 %v vs predicted %v (ratio %.3f)", res.P99, predicted, ratio)
	}
}
