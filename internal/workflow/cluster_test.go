package workflow

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func testClusterModel(replicas int) ClusterModel {
	return ClusterModel{
		Replicas: replicas,
		Replica: ServeModel{
			Workers: 4, BatchSize: 16, BatchTimeout: 2 * time.Millisecond,
			SlicesPerScan: 8, EnhanceSlice: 2 * time.Millisecond,
			Segment: 90 * time.Millisecond, Classify: 30 * time.Millisecond,
		},
		GatewayOverhead: 2 * time.Millisecond,
	}
}

func TestClusterThroughputScalesLinearly(t *testing.T) {
	single := testClusterModel(1).PredictedThroughput()
	if want := testClusterModel(1).Replica.PredictedThroughput(); math.Abs(single-want) > 1e-9 {
		t.Fatalf("1-replica cluster %v scans/s, want the replica's own %v", single, want)
	}
	for _, n := range []int{2, 3, 8} {
		got := testClusterModel(n).PredictedThroughput()
		if want := float64(n) * single; math.Abs(got-want) > 1e-9 {
			t.Fatalf("%d-replica throughput %v, want %v", n, got, want)
		}
	}
}

// TestClusterPipelineMatchesPrediction is the simulator cross-check:
// a saturated burst through ClusterPipeline must drain at roughly the
// analytic rate, for more than one replica count.
func TestClusterPipelineMatchesPrediction(t *testing.T) {
	for _, n := range []int{1, 3} {
		m := testClusterModel(n)
		const patients = 600
		rng := rand.New(rand.NewSource(1))
		res := Run(m.ClusterPipeline(), patients, 0, rng)
		simulated := float64(patients) / res.Max.Seconds()
		predicted := m.PredictedThroughput()
		if ratio := simulated / predicted; ratio < 0.8 || ratio > 1.2 {
			t.Fatalf("replicas=%d: simulated %.2f scans/s vs predicted %.2f (ratio %.3f)",
				n, simulated, predicted, ratio)
		}
	}
}

func TestClusterPredictedQuantileShape(t *testing.T) {
	m := testClusterModel(3)
	cap := m.PredictedThroughput()

	// An idle cluster answers in one service time.
	if got, want := m.PredictedP99(0), m.serviceTime(); got != want {
		t.Fatalf("idle p99 %v, want service time %v", got, want)
	}
	// Tail latency must grow with load...
	low, high := m.PredictedP99(0.3*cap), m.PredictedP99(0.9*cap)
	if high <= low {
		t.Fatalf("p99 did not grow with load: %v at 30%% vs %v at 90%%", low, high)
	}
	// ...explode at capacity...
	if got := m.PredictedP99(cap); got != time.Duration(math.MaxInt64) {
		t.Fatalf("p99 at capacity = %v, want unbounded", got)
	}
	// ...and shrink when replicas are added at fixed admission rate.
	if wider := testClusterModel(6).PredictedP99(0.9 * cap); wider >= high {
		t.Fatalf("doubling replicas did not cut p99: %v vs %v", wider, high)
	}
}

// TestClusterP99MatchesSimulation validates the Erlang-C tail against
// the discrete-event simulation at moderate load. The simulator's
// arrivals are uniform over the window (Poisson-like for large n) and
// its pipeline has structure the single-queue model abstracts away, so
// the band is loose — the model must get the order of magnitude and the
// load trend right, not the third digit.
func TestClusterP99MatchesSimulation(t *testing.T) {
	m := testClusterModel(3)
	lambda := 0.6 * m.PredictedThroughput()
	const patients = 3000
	window := time.Duration(float64(patients) / lambda * float64(time.Second))
	rng := rand.New(rand.NewSource(1))
	res := Run(m.ClusterPipeline(), patients, window, rng)
	predicted := m.PredictedP99(lambda)
	if ratio := res.P99.Seconds() / predicted.Seconds(); ratio < 0.33 || ratio > 3 {
		t.Fatalf("simulated p99 %v vs predicted %v (ratio %.3f)", res.P99, predicted, ratio)
	}
}
