// Package workflow is a discrete-event simulator of the two diagnostic
// pipelines the paper compares in §1: the RT-PCR laboratory workflow
// (sample collection → packaging/transport → batched lab runs →
// reporting, hours of processing and days of turnaround) and the
// ComputeCOVID19+ workflow (CT scan → enhancement → segmentation →
// classification, minutes end to end). It substantiates the paper's
// headline "days to minutes" turnaround claim from the stage latencies
// the paper itself states.
package workflow

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"computecovid19/internal/obs"
)

// workflowBuckets spans seconds to multiple days — the range between
// the CT pipeline's AI stages and RT-PCR courier batching.
func workflowBuckets() []float64 { return obs.ExpBuckets(1, 4, 12) }

// stageHists returns the queue-wait and service-time histograms for one
// (pipeline, stage) pair. Durations are *simulated* time, recorded so
// the discrete-event runs export per-stage distributions instead of
// only end-to-end turnaround percentiles.
func stageHists(pipeline, stage string) (wait, service *obs.Histogram) {
	wait = obs.GetHistogram(
		fmt.Sprintf("workflow_queue_wait_seconds{pipeline=%q,stage=%q}", pipeline, stage),
		workflowBuckets())
	service = obs.GetHistogram(
		fmt.Sprintf("workflow_service_seconds{pipeline=%q,stage=%q}", pipeline, stage),
		workflowBuckets())
	return wait, service
}

// Stage is one step of a diagnostic pipeline.
type Stage struct {
	Name string
	// Duration samples the stage's service time.
	Duration func(rng *rand.Rand) time.Duration
	// Servers is the number of parallel servers (0 = unlimited).
	Servers int
	// BatchSize > 1 means the stage processes jobs in batches that must
	// fill (or wait for BatchTimeout) before starting — RT-PCR
	// thermocycler plates, courier runs.
	BatchSize    int
	BatchTimeout time.Duration
}

// Pipeline is an ordered list of stages.
type Pipeline struct {
	Name   string
	Stages []Stage
}

// Fixed returns a duration sampler with no variance.
func Fixed(d time.Duration) func(*rand.Rand) time.Duration {
	return func(*rand.Rand) time.Duration { return d }
}

// Uniform returns a duration sampler uniform on [lo, hi].
func Uniform(lo, hi time.Duration) func(*rand.Rand) time.Duration {
	return func(rng *rand.Rand) time.Duration {
		return lo + time.Duration(rng.Int63n(int64(hi-lo)+1))
	}
}

// RTPCRPipeline models the laboratory workflow with the paper's numbers:
// the test itself takes ≈4 hours and the turnaround is multi-day because
// samples are couriered and batched.
func RTPCRPipeline() Pipeline {
	return Pipeline{
		Name: "RT-PCR laboratory",
		Stages: []Stage{
			{Name: "collection", Duration: Uniform(10*time.Minute, 30*time.Minute), Servers: 4},
			{Name: "packaging+courier", Duration: Uniform(4*time.Hour, 12*time.Hour),
				BatchSize: 32, BatchTimeout: 8 * time.Hour},
			{Name: "accessioning", Duration: Uniform(30*time.Minute, 2*time.Hour), Servers: 2},
			{Name: "rt-pcr run", Duration: Uniform(3*time.Hour+30*time.Minute, 4*time.Hour+30*time.Minute),
				Servers: 2, BatchSize: 96, BatchTimeout: 12 * time.Hour},
			{Name: "review+report", Duration: Uniform(1*time.Hour, 4*time.Hour),
				Servers: 2, BatchSize: 96, BatchTimeout: 4 * time.Hour},
		},
	}
}

// CTPipeline models ComputeCOVID19+ on a hospital scanner: scan ≈15 min,
// then the three AI stages with the §5.1.1 runtimes (enhancement < 1 s
// per slice stack, segmentation 45.88 s, classification 5.90 s).
func CTPipeline() Pipeline {
	return Pipeline{
		Name: "ComputeCOVID19+ (CT)",
		Stages: []Stage{
			{Name: "ct scan", Duration: Uniform(10*time.Minute, 20*time.Minute), Servers: 4},
			{Name: "enhancement ai", Duration: Fixed(1 * time.Second), Servers: 1},
			{Name: "segmentation ai", Duration: Fixed(46 * time.Second), Servers: 1},
			{Name: "classification ai", Duration: Fixed(6 * time.Second), Servers: 1},
		},
	}
}

// Result summarizes simulated turnaround times.
type Result struct {
	Patients                         int
	Mean, Median, P90, P99, Min, Max time.Duration
}

// Run pushes `patients` arrivals (Poisson-ish uniform jitter over the
// arrival window) through the pipeline and reports turnaround
// statistics. The simulation is event-driven per stage: jobs queue for
// servers in arrival order, and batched stages wait for a full batch or
// their timeout.
func Run(p Pipeline, patients int, arrivalWindow time.Duration, rng *rand.Rand) Result {
	arrivals := make([]time.Duration, patients)
	for i := range arrivals {
		arrivals[i] = time.Duration(rng.Int63n(int64(arrivalWindow) + 1))
	}
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i] < arrivals[j] })

	sp := obs.Start("workflow/run")
	if sp != nil {
		sp.SetAttr("pipeline", p.Name)
		sp.SetAttr("patients", patients)
	}
	defer sp.End()

	ready := arrivals // time each job becomes available to the next stage
	for _, st := range p.Stages {
		ready = runStage(p.Name, st, ready, rng)
	}

	turnaround := make([]time.Duration, patients)
	for i := range turnaround {
		turnaround[i] = ready[i] - arrivals[i]
	}
	sort.Slice(turnaround, func(i, j int) bool { return turnaround[i] < turnaround[j] })

	var sum time.Duration
	for _, d := range turnaround {
		sum += d
	}
	return Result{
		Patients: patients,
		Mean:     sum / time.Duration(patients),
		Median:   turnaround[patients/2],
		P90:      turnaround[patients*9/10],
		P99:      turnaround[patients*99/100],
		Min:      turnaround[0],
		Max:      turnaround[patients-1],
	}
}

// runStage pushes jobs with the given ready times through one stage and
// returns their completion times (in input order). Per-job queue wait
// (batch formation + server contention) and per-batch service times are
// recorded into the stage's obs histograms in simulated seconds.
func runStage(pipeline string, st Stage, ready []time.Duration, rng *rand.Rand) []time.Duration {
	waitH, serviceH := stageHists(pipeline, st.Name)
	n := len(ready)
	out := make([]time.Duration, n)

	// Jobs are served in ready order; remember the permutation.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ready[order[a]] < ready[order[b]] })

	// Batch formation: group consecutive jobs; a batch departs when full
	// or when its oldest member has waited BatchTimeout.
	type batch struct {
		jobs  []int
		start time.Duration
	}
	var batches []batch
	if st.BatchSize > 1 {
		for i := 0; i < n; {
			j := i
			first := ready[order[i]]
			depart := first + st.BatchTimeout
			for j < n && j-i < st.BatchSize {
				r := ready[order[j]]
				if r > depart {
					break
				}
				j++
			}
			last := ready[order[j-1]]
			start := last
			if j-i < st.BatchSize && depart > last {
				start = depart // waited for the timeout
			}
			batches = append(batches, batch{jobs: order[i:j], start: start})
			i = j
		}
	} else {
		for _, idx := range order {
			batches = append(batches, batch{jobs: []int{idx}, start: ready[idx]})
		}
	}

	// Server assignment: earliest-free server runs the next batch.
	servers := st.Servers
	if servers <= 0 {
		servers = n // effectively unlimited
	}
	free := make([]time.Duration, servers)
	for _, b := range batches {
		// Pick the server that frees up first.
		best := 0
		for s := 1; s < servers; s++ {
			if free[s] < free[best] {
				best = s
			}
		}
		start := b.start
		if free[best] > start {
			start = free[best]
		}
		dur := st.Duration(rng)
		end := start + dur
		free[best] = end
		serviceH.Observe(dur.Seconds())
		for _, idx := range b.jobs {
			out[idx] = end
			waitH.Observe((start - ready[idx]).Seconds())
		}
	}
	return out
}
