package workflow

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestPredictedThroughputBottleneck(t *testing.T) {
	// Worker pool is the bottleneck: 4 workers at 100 ms per scan = 40
	// scans/s; the batcher does 8 slices at 1 ms = 125 scans/s.
	m := ServeModel{
		Workers: 4, BatchSize: 8, BatchTimeout: 2 * time.Millisecond,
		SlicesPerScan: 8, EnhanceSlice: time.Millisecond,
		Segment: 80 * time.Millisecond, Classify: 20 * time.Millisecond,
	}
	if got, want := m.PredictedThroughput(), 40.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("pool-bound throughput %v, want %v", got, want)
	}
	// Make the single batcher the bottleneck: 8 slices at 10 ms = 12.5
	// scans/s versus the pool's 40.
	m.EnhanceSlice = 10 * time.Millisecond
	if got, want := m.PredictedThroughput(), 12.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("batcher-bound throughput %v, want %v", got, want)
	}
	// No enhancer: rate is just the pool's.
	m.EnhanceSlice = 0
	if got, want := m.PredictedThroughput(), 40.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("enhancerless throughput %v, want %v", got, want)
	}
}

// TestServingPipelineMatchesPrediction cross-checks the analytic
// bottleneck rate against the discrete-event simulation of the same
// model: a saturated arrival burst through ServingPipeline must drain at
// roughly PredictedThroughput.
func TestServingPipelineMatchesPrediction(t *testing.T) {
	m := ServeModel{
		Workers: 4, BatchSize: 16, BatchTimeout: 2 * time.Millisecond,
		SlicesPerScan: 8, EnhanceSlice: 2 * time.Millisecond,
		Segment: 90 * time.Millisecond, Classify: 30 * time.Millisecond,
	}
	const patients = 400
	rng := rand.New(rand.NewSource(1))
	// Arrival window 0: every scan is queued at t=0, so the makespan is
	// the saturated drain time and patients/makespan is the sustained
	// rate.
	res := Run(m.ServingPipeline(), patients, 0, rng)
	simulated := float64(patients) / res.Max.Seconds()
	predicted := m.PredictedThroughput()
	if ratio := simulated / predicted; ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("simulated %.2f scans/s vs predicted %.2f (ratio %.3f)",
			simulated, predicted, ratio)
	}
}
