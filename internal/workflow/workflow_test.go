package workflow

import (
	"math/rand"
	"testing"
	"time"
)

func TestCTTurnaroundIsMinutes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	res := Run(CTPipeline(), 50, 8*time.Hour, rng)
	// The paper claims ≈5 minutes of processing after the scan; with the
	// scan itself and queueing, the median stays well under 2 hours.
	if res.Median > 2*time.Hour {
		t.Fatalf("CT median turnaround = %v, want well under 2h", res.Median)
	}
	if res.Min < 10*time.Minute {
		t.Fatalf("CT minimum %v implausibly fast (scan alone takes ≥10m)", res.Min)
	}
}

func TestRTPCRTurnaroundIsDays(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	res := Run(RTPCRPipeline(), 200, 24*time.Hour, rng)
	if res.Median < 12*time.Hour {
		t.Fatalf("RT-PCR median turnaround = %v, want many hours to days", res.Median)
	}
	if res.Max < 24*time.Hour {
		t.Fatalf("RT-PCR worst case = %v, want multi-day tail", res.Max)
	}
}

func TestHeadlineSpeedupDaysToMinutes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ct := Run(CTPipeline(), 100, 12*time.Hour, rng)
	pcr := Run(RTPCRPipeline(), 100, 12*time.Hour, rng)
	speedup := float64(pcr.Median) / float64(ct.Median)
	if speedup < 10 {
		t.Fatalf("median speedup = %.1f×, paper's claim needs at least an order of magnitude", speedup)
	}
}

func TestStatisticsOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	res := Run(RTPCRPipeline(), 100, 24*time.Hour, rng)
	if !(res.Min <= res.Median && res.Median <= res.P90 && res.P90 <= res.Max) {
		t.Fatalf("order statistics inconsistent: %+v", res)
	}
	if res.Mean <= 0 {
		t.Fatalf("mean = %v", res.Mean)
	}
	if res.Patients != 100 {
		t.Fatalf("patients = %d", res.Patients)
	}
}

func TestBatchingDelaysSmallCohorts(t *testing.T) {
	// A single patient in a batched pipeline waits for the batch timeout;
	// many patients fill batches faster, so the *queue-free* single
	// patient is not faster than the median of a busy day.
	rng := rand.New(rand.NewSource(5))
	single := Run(RTPCRPipeline(), 1, time.Hour, rng)
	if single.Median < 12*time.Hour {
		t.Fatalf("lone RT-PCR sample turned around in %v; batching should delay it", single.Median)
	}
}

func TestServerContentionIncreasesTurnaround(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	narrow := Pipeline{Name: "1 scanner", Stages: []Stage{
		{Name: "scan", Duration: Fixed(15 * time.Minute), Servers: 1},
	}}
	wide := Pipeline{Name: "8 scanners", Stages: []Stage{
		{Name: "scan", Duration: Fixed(15 * time.Minute), Servers: 8},
	}}
	// 60 patients in one hour on one scanner must queue.
	n := Run(narrow, 60, time.Hour, rng)
	w := Run(wide, 60, time.Hour, rand.New(rand.NewSource(6)))
	if n.Max <= w.Max {
		t.Fatalf("contention should increase worst-case turnaround: 1-server %v vs 8-server %v",
			n.Max, w.Max)
	}
}

func TestFixedAndUniformSamplers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if Fixed(time.Minute)(rng) != time.Minute {
		t.Fatal("Fixed sampler wrong")
	}
	for i := 0; i < 100; i++ {
		d := Uniform(time.Minute, 2*time.Minute)(rng)
		if d < time.Minute || d > 2*time.Minute {
			t.Fatalf("Uniform sample %v out of range", d)
		}
	}
}
