package workflow

import (
	"math"
	"testing"

	"computecovid19/internal/distrib"
)

func demoRecoveryModel() RecoveryModel {
	return RecoveryModel{
		Cluster:           distrib.PaperCluster(),
		Nodes:             8,
		GlobalBatch:       32,
		CheckpointEvery:   50,
		CheckpointSeconds: 2.0,
		DetectSeconds:     6.0, // 2s timeout × 3 retries
		RestoreSeconds:    1.0,
	}
}

func TestRecoveryModelExpectedStepsLost(t *testing.T) {
	r := demoRecoveryModel()
	if got := r.ExpectedStepsLost(); got != 25 {
		t.Fatalf("expected steps lost = %v, want 25 (half the checkpoint period)", got)
	}
}

func TestRecoveryModelRecoverySeconds(t *testing.T) {
	r := demoRecoveryModel()
	got := r.ExpectedRecoverySeconds()
	replay := 25 * r.Cluster.StepSeconds(7, 32)
	want := 6.0 + 1.0 + replay
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("recovery seconds = %v, want %v", got, want)
	}
	// Recovery must always cost at least detection + restore.
	if got <= r.DetectSeconds+r.RestoreSeconds {
		t.Fatal("recovery cannot be cheaper than detection plus restore")
	}
}

func TestRecoveryModelRunSecondsMonotonic(t *testing.T) {
	r := demoRecoveryModel()
	const epochs = 10
	base := r.Cluster.TrainingSeconds(r.Nodes, r.GlobalBatch, epochs)
	noFail := r.ExpectedRunSeconds(epochs, 0)
	if noFail <= base {
		t.Fatal("checkpoint overhead must cost something")
	}
	flaky := r.ExpectedRunSeconds(epochs, 3600)
	stable := r.ExpectedRunSeconds(epochs, 7*24*3600)
	if !(flaky > stable && stable > noFail) {
		t.Fatalf("run time must grow as MTBF shrinks: flaky=%v stable=%v noFail=%v",
			flaky, stable, noFail)
	}
}

func TestRecoveryModelYoungInterval(t *testing.T) {
	r := demoRecoveryModel()
	// Young's formula: interval seconds = sqrt(2 · δ · MTBF).
	mtbf := 24 * 3600.0
	steps := r.OptimalCheckpointIntervalSteps(mtbf)
	wantSeconds := math.Sqrt(2 * r.CheckpointSeconds * mtbf)
	gotSeconds := float64(steps) * r.Cluster.StepSeconds(r.Nodes, r.GlobalBatch)
	if math.Abs(gotSeconds-wantSeconds) > r.Cluster.StepSeconds(r.Nodes, r.GlobalBatch) {
		t.Fatalf("interval %v s, want ≈ %v s", gotSeconds, wantSeconds)
	}
	// A flakier cluster should checkpoint more often.
	if r.OptimalCheckpointIntervalSteps(3600) >= steps {
		t.Fatal("shorter MTBF must shorten the optimal checkpoint interval")
	}
	// Degenerate inputs clamp to 1 step.
	if r.OptimalCheckpointIntervalSteps(0) != 1 {
		t.Fatal("zero MTBF must clamp to 1")
	}
}
