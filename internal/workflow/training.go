package workflow

import (
	"math"

	"computecovid19/internal/distrib"
)

// Training-side cost model for the fault-tolerant DDP runs: given the
// Table-3 cluster projection (distrib.ClusterModel) plus checkpointing
// and failure parameters, project checkpoint overhead, expected
// time-to-recover after a rank failure, and the end-to-end wall time of
// a run that suffers failures at a given MTBF. This is the planning
// companion of internal/distrib's runtime machinery: the runtime
// recovers from faults, this model prices them.

// RecoveryModel parameterizes fault-tolerance cost projections on top
// of a ClusterModel.
type RecoveryModel struct {
	// Cluster is the per-step cost model (paper Table 3 fit).
	Cluster distrib.ClusterModel
	// Nodes and GlobalBatch fix the run geometry.
	Nodes, GlobalBatch int
	// CheckpointEvery is the snapshot period in steps.
	CheckpointEvery int
	// CheckpointSeconds is the cost of cutting one snapshot (serialize +
	// fsync + rename).
	CheckpointSeconds float64
	// DetectSeconds is the failure-detection latency: the collective
	// timeout budget (timeout × retries with backoff) before a rank is
	// confirmed dead.
	DetectSeconds float64
	// RestoreSeconds is the cost of loading and applying a snapshot.
	RestoreSeconds float64
}

// stepSeconds is the projected step time at the current geometry.
func (r RecoveryModel) stepSeconds(nodes int) float64 {
	return r.Cluster.StepSeconds(nodes, r.GlobalBatch)
}

// ExpectedStepsLost is the mean number of optimizer steps rolled back
// by a failure: with snapshots every E steps and failures uniform over
// the interval, E/2.
func (r RecoveryModel) ExpectedStepsLost() float64 {
	return float64(r.CheckpointEvery) / 2
}

// ExpectedRecoverySeconds is the mean wall time from a rank failure to
// the run being back where it was: detection, group re-formation plus
// restore, and replaying the lost steps at the survivors' step rate.
func (r RecoveryModel) ExpectedRecoverySeconds() float64 {
	survivors := r.Nodes - 1
	if survivors < 1 {
		survivors = 1
	}
	replay := r.ExpectedStepsLost() * r.stepSeconds(survivors)
	return r.DetectSeconds + r.RestoreSeconds + replay
}

// CheckpointOverheadSeconds is the total time spent cutting snapshots
// over a run of the given epochs.
func (r RecoveryModel) CheckpointOverheadSeconds(epochs int) float64 {
	if r.CheckpointEvery <= 0 {
		return 0
	}
	steps := float64(epochs) * float64(r.Cluster.SamplesPerEpoch) / float64(r.GlobalBatch)
	return steps / float64(r.CheckpointEvery) * r.CheckpointSeconds
}

// ExpectedFailures is the expected failure count over a fault-free run
// of the given epochs with mean time between failures mtbfSeconds
// (0 = no failures).
func (r RecoveryModel) ExpectedFailures(epochs int, mtbfSeconds float64) float64 {
	if mtbfSeconds <= 0 {
		return 0
	}
	base := r.Cluster.TrainingSeconds(r.Nodes, r.GlobalBatch, epochs)
	return base / mtbfSeconds
}

// ExpectedRunSeconds projects the end-to-end wall time of a run of the
// given epochs under failures at mtbfSeconds: the fault-free time plus
// checkpoint overhead plus the expected failure count times the
// expected recovery cost. (First-order model: failures are rare enough
// not to compound, and the group is restored to full strength between
// failures — matching elastic recovery followed by rank replacement.)
func (r RecoveryModel) ExpectedRunSeconds(epochs int, mtbfSeconds float64) float64 {
	base := r.Cluster.TrainingSeconds(r.Nodes, r.GlobalBatch, epochs)
	return base +
		r.CheckpointOverheadSeconds(epochs) +
		r.ExpectedFailures(epochs, mtbfSeconds)*r.ExpectedRecoverySeconds()
}

// OptimalCheckpointIntervalSteps is Young's approximation for the
// checkpoint period minimizing total expected overhead: the interval
// (in seconds) is sqrt(2 · checkpointCost · MTBF), converted to steps
// at the current step rate. Returns at least 1.
func (r RecoveryModel) OptimalCheckpointIntervalSteps(mtbfSeconds float64) int {
	if mtbfSeconds <= 0 || r.CheckpointSeconds <= 0 {
		return 1
	}
	seconds := math.Sqrt(2 * r.CheckpointSeconds * mtbfSeconds)
	steps := seconds / r.stepSeconds(r.Nodes)
	if steps < 1 {
		return 1
	}
	return int(steps)
}
