package workflow

import (
	"time"
)

// ServeModel is the discrete-event model of internal/serve: a
// micro-batching enhancement stage owned by a single batcher goroutine
// feeding a pool of Workers that each run segmentation +
// classification. It lets the simulator predict the throughput ccserve
// should sustain from per-stage service times measured offline, so the
// measured BENCH_serve.json numbers have an analytic baseline to be
// compared against (see EXPERIMENTS.md).
type ServeModel struct {
	// Workers is the segment+classify worker-pool size (serve.Config.Workers).
	Workers int
	// BatchSize and BatchTimeout mirror the micro-batcher configuration.
	BatchSize    int
	BatchTimeout time.Duration
	// SlicesPerScan is D, the axial slice count per submitted volume.
	SlicesPerScan int
	// EnhanceSlice is the amortized per-slice DDnet forward time inside a
	// full batch. Zero models a server running without an enhancer.
	EnhanceSlice time.Duration
	// Segment and Classify are the per-scan service times of the two
	// worker-side stages.
	Segment  time.Duration
	Classify time.Duration
}

// enhancePerScan is the enhancement service time for one whole scan on
// the single batcher server: all D slices are submitted up front, so a
// scan occupies the batcher for D amortized slice-forwards.
func (m ServeModel) enhancePerScan() time.Duration {
	if m.SlicesPerScan <= 0 || m.EnhanceSlice <= 0 {
		return 0
	}
	return time.Duration(m.SlicesPerScan) * m.EnhanceSlice
}

// scanBatch is the micro-batch size in scans. A scan's slices are
// submitted together, so when D >= BatchSize one scan fills batches by
// itself and cross-scan batching only happens for shallower volumes.
func (m ServeModel) scanBatch() int {
	if m.SlicesPerScan <= 0 || m.BatchSize <= m.SlicesPerScan {
		return 1
	}
	return m.BatchSize / m.SlicesPerScan
}

// ServingPipeline maps the serving architecture onto the simulator's
// stage machinery: a single-server batched enhancement stage followed by
// a Workers-wide segment+classify stage.
func (m ServeModel) ServingPipeline() Pipeline {
	workers := m.Workers
	if workers <= 0 {
		workers = 1
	}
	stages := []Stage{}
	if enh := m.enhancePerScan(); enh > 0 {
		stages = append(stages, Stage{
			Name:         "enhance (micro-batched)",
			Duration:     Fixed(enh),
			Servers:      1,
			BatchSize:    m.scanBatch(),
			BatchTimeout: m.BatchTimeout,
		})
	}
	stages = append(stages, Stage{
		Name:     "segment+classify",
		Duration: Fixed(m.Segment + m.Classify),
		Servers:  workers,
	})
	return Pipeline{Name: "ccserve", Stages: stages}
}

// PredictedThroughput returns the saturated steady-state scan rate in
// scans/second: the stage rates are 1/enhancePerScan (one batcher) and
// Workers/(Segment+Classify) (the pool), and the pipeline runs at the
// slower of the two.
func (m ServeModel) PredictedThroughput() float64 {
	workers := m.Workers
	if workers <= 0 {
		workers = 1
	}
	rate := float64(workers) / (m.Segment + m.Classify).Seconds()
	if enh := m.enhancePerScan(); enh > 0 {
		if enhRate := 1 / enh.Seconds(); enhRate < rate {
			rate = enhRate
		}
	}
	return rate
}
