package workflow

import (
	"math"
	"time"
)

// ClusterModel is the discrete-event model of internal/cluster: a
// gateway load-balancing scans across Replicas identical ccserve
// instances. It predicts how cluster throughput and tail latency move
// with the replica count, so capacity planning ("how many replicas for
// this admission rate at this p99?") has an analytic answer that the
// simulator — and the measured BENCH_cluster.json numbers — can be
// checked against.
type ClusterModel struct {
	// Replicas is the ccserve instance count behind the gateway.
	Replicas int
	// Replica describes one instance (workers, batching, stage times).
	Replica ServeModel
	// GatewayOverhead is the per-scan routing + result-poll cost added by
	// the gateway. It adds latency but no capacity limit: the gateway is
	// I/O-bound and effectively unlimited next to scan service times.
	GatewayOverhead time.Duration
	// ChunkOverhead is the fixed per-chunk cost of sharded scatter/gather
	// dispatch — one /v1/enhance round trip's JSON encode/decode plus the
	// HTTP exchange. It is what stops the optimal chunk size from being 1:
	// smaller chunks spread load better but pay this toll more often.
	ChunkOverhead time.Duration
}

// shardedWaves is the wave count of a sharded enhancement: nchunks jobs
// over Replicas parallel servers, list-scheduled.
func shardedWaves(nchunks, replicas int) int {
	return (nchunks + replicas - 1) / replicas
}

// ShardChunkSlices picks the chunk size (in slices) for a sharded scan of
// the given depth: the size minimizing the predicted enhancement
// makespan under the uniform-chunk idealization — ceil(D/k) chunks of
// duration k·EnhanceSlice + ChunkOverhead, executed in ceil(chunks/R)
// waves across R replicas. Ties break toward larger chunks (fewer round
// trips, same makespan). With no per-slice model the toll-free optimum
// degenerates to k = 1, so an even split into one wave per replica is
// returned instead.
func (m ClusterModel) ShardChunkSlices(slices int) int {
	replicas := m.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	if slices <= 1 {
		return 1
	}
	if m.Replica.EnhanceSlice <= 0 {
		return (slices + replicas - 1) / replicas
	}
	best, bestSpan := 1, time.Duration(math.MaxInt64)
	for k := 1; k <= slices; k++ {
		if span := m.shardedEnhanceSpan(slices, k); span <= bestSpan {
			best, bestSpan = k, span
		}
	}
	return best
}

// shardedEnhanceSpan is the predicted enhancement makespan of a sharded
// scan at chunk size k: every chunk modeled at the full-chunk duration
// (the uniform-chunk idealization the simulator validation shares).
func (m ClusterModel) shardedEnhanceSpan(slices, k int) time.Duration {
	replicas := m.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	nchunks := (slices + k - 1) / k
	chunkDur := time.Duration(k)*m.Replica.EnhanceSlice + m.ChunkOverhead
	return time.Duration(shardedWaves(nchunks, replicas)) * chunkDur
}

// PredictedShardedLatency is one scan's end-to-end latency through an
// idle sharded cluster: gateway overhead, the scatter/gather enhancement
// makespan at the ShardChunkSlices-chosen chunk size, then the
// segment+classify leg on a single replica.
func (m ClusterModel) PredictedShardedLatency(slices int) time.Duration {
	return m.GatewayOverhead + m.shardedEnhanceSpan(slices, m.ShardChunkSlices(slices)) +
		m.Replica.Segment + m.Replica.Classify
}

// PredictedShardedSpeedup is the predicted single-scan latency ratio of
// the unsharded path (whole scan on one replica) over the sharded path —
// the number BENCH_shard.json measures.
func (m ClusterModel) PredictedShardedSpeedup(slices int) float64 {
	single := m.GatewayOverhead + time.Duration(slices)*m.Replica.EnhanceSlice +
		m.Replica.Segment + m.Replica.Classify
	sharded := m.PredictedShardedLatency(slices)
	if sharded <= 0 {
		return 0
	}
	return float64(single) / float64(sharded)
}

// ShardedEnhancePipeline maps one sharded scan's chunk fan-out onto the
// simulator: each "patient" is a chunk, the single stage has Replicas
// parallel servers, and every chunk takes the uniform full-chunk
// duration. Run with an arrival window of 0 (all chunks scattered at
// once); the Result's Max is the enhancement makespan, which the
// analytic shardedEnhanceSpan must reproduce exactly.
func (m ClusterModel) ShardedEnhancePipeline(slices, chunkSlices int) (Pipeline, int) {
	replicas := m.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	nchunks := (slices + chunkSlices - 1) / chunkSlices
	chunkDur := time.Duration(chunkSlices)*m.Replica.EnhanceSlice + m.ChunkOverhead
	p := Pipeline{
		Name: "sharded enhancement",
		Stages: []Stage{{
			Name:     "enhance (sharded)",
			Duration: Fixed(chunkDur),
			Servers:  replicas,
		}},
	}
	return p, nchunks
}

// ClusterPipeline maps the cluster onto the simulator's stage
// machinery. Perfect load balancing is assumed, so N replicas appear as
// wider stages: N micro-batchers and N×Workers segment+classify
// servers. That is the same idealization PredictedThroughput makes,
// which is exactly why the two are comparable — and why both sit above
// the measured numbers when routing is imperfect.
func (m ClusterModel) ClusterPipeline() Pipeline {
	replicas := m.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	workers := m.Replica.Workers
	if workers <= 0 {
		workers = 1
	}
	stages := []Stage{}
	if m.GatewayOverhead > 0 {
		stages = append(stages, Stage{
			Name:     "gateway",
			Duration: Fixed(m.GatewayOverhead),
			Servers:  0, // unlimited
		})
	}
	if enh := m.Replica.enhancePerScan(); enh > 0 {
		stages = append(stages, Stage{
			Name:         "enhance (micro-batched)",
			Duration:     Fixed(enh),
			Servers:      replicas,
			BatchSize:    m.Replica.scanBatch(),
			BatchTimeout: m.Replica.BatchTimeout,
		})
	}
	stages = append(stages, Stage{
		Name:     "segment+classify",
		Duration: Fixed(m.Replica.Segment + m.Replica.Classify),
		Servers:  replicas * workers,
	})
	return Pipeline{Name: "ccgate cluster", Stages: stages}
}

// PredictedThroughput is the saturated cluster scan rate in scans/s:
// replicas run independently, so capacity scales linearly until
// something off-model (the gateway host, the network) saturates.
func (m ClusterModel) PredictedThroughput() float64 {
	replicas := m.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	return float64(replicas) * m.Replica.PredictedThroughput()
}

// serviceTime is one scan's end-to-end service time through an idle
// cluster: gateway overhead plus every replica-side stage in sequence.
func (m ClusterModel) serviceTime() time.Duration {
	return m.GatewayOverhead + m.Replica.enhancePerScan() +
		m.Replica.Segment + m.Replica.Classify
}

// bottleneckServers returns the parallel server count and per-scan
// service time of the cluster's bottleneck stage — the queue that
// governs waiting under load.
func (m ClusterModel) bottleneckServers() (int, time.Duration) {
	replicas := m.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	workers := m.Replica.Workers
	if workers <= 0 {
		workers = 1
	}
	poolService := m.Replica.Segment + m.Replica.Classify
	c, svc := replicas*workers, poolService
	if enh := m.Replica.enhancePerScan(); enh > 0 {
		// The batcher tier is one server per replica; if its rate is the
		// lower one, it is the queue that backs up.
		if 1/enh.Seconds() < float64(workers)/poolService.Seconds() {
			c, svc = replicas, enh
		}
	}
	return c, svc
}

// PredictedQuantile predicts the response-time quantile q (e.g. 0.99)
// at a Poisson admission rate of lambda scans/s, by treating the
// bottleneck stage as an M/M/c queue: Erlang-C gives the probability an
// arriving scan waits, the conditional wait is exponential with rate
// cμ−λ, and the service time through the rest of the pipeline rides on
// top. At or beyond capacity the wait is unbounded and the prediction
// is +Inf (returned as math.MaxInt64 ns).
func (m ClusterModel) PredictedQuantile(q, lambda float64) time.Duration {
	c, svc := m.bottleneckServers()
	mu := 1 / svc.Seconds()
	if lambda >= float64(c)*mu {
		return time.Duration(math.MaxInt64)
	}
	if lambda <= 0 {
		return m.serviceTime()
	}
	pw := erlangC(c, lambda/mu)
	wait := 0.0
	if pw > 1-q {
		// P(Wq > t) = Pw·e^{−(cμ−λ)t}; solve for the q-quantile.
		wait = math.Log(pw/(1-q)) / (float64(c)*mu - lambda)
	}
	return m.serviceTime() + time.Duration(wait*float64(time.Second))
}

// PredictedP99 is PredictedQuantile at q = 0.99.
func (m ClusterModel) PredictedP99(lambda float64) time.Duration {
	return m.PredictedQuantile(0.99, lambda)
}

// erlangC is the Erlang-C delay probability for an M/M/c queue with
// offered load a = λ/μ erlangs. Computed with the stable recurrence on
// the Erlang-B blocking probability (no factorials).
func erlangC(c int, a float64) float64 {
	b := 1.0 // Erlang-B with 0 servers
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho*(1-b))
}
