// Package tensor implements the dense float32 N-dimensional array that
// every numeric component in this repository is built on: the autograd
// engine (internal/ag), the neural-network layers (internal/nn), the CT
// simulator (internal/ctsim) and the standalone inference kernels
// (internal/kernels).
//
// Tensors are row-major and store their elements in one flat slice, the
// same layout the paper's OpenCL kernels use, so the kernel packages can
// operate on Tensor.Data directly without copies.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Tensor is a dense row-major float32 array of arbitrary rank.
// The zero value is an empty scalar-less tensor; use New or FromSlice.
type Tensor struct {
	// Data holds the elements in row-major order. Kernels may alias it.
	Data []float32
	// Shape holds the extent of each dimension. It must not be mutated
	// after construction; use Reshape to obtain a different view.
	Shape []int
}

// New returns a zero-filled tensor with the given shape. A call with no
// dimensions returns a rank-0 tensor holding a single element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Data: make([]float32, n), Shape: s}
}

// FromSlice wraps data in a tensor of the given shape without copying.
// It panics if the element count does not match the shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Data: data, Shape: s}
}

// Scalar returns a rank-0 tensor holding v.
func Scalar(v float32) *Tensor {
	return &Tensor{Data: []float32{v}, Shape: nil}
}

// Numel reports the total number of elements.
func (t *Tensor) Numel() int { return len(t.Data) }

// Rank reports the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i, d := range t.Shape {
		if o.Shape[i] != d {
			return false
		}
	}
	return true
}

// Index converts multi-dimensional coordinates to a flat offset.
func (t *Tensor) Index(idx ...int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: got %d indices for rank-%d tensor", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", x, i, t.Shape[i]))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// At returns the element at the given coordinates.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.Index(idx...)] }

// Set stores v at the given coordinates.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.Index(idx...)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view sharing t's data with a new shape of equal
// element count.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			t.Shape, len(t.Data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Data: t.Data, Shape: s}
}

// Fill sets every element to v and returns t.
func (t *Tensor) Fill(v float32) *Tensor {
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Zero sets every element to zero and returns t.
func (t *Tensor) Zero() *Tensor {
	clear(t.Data)
	return t
}

// Apply replaces each element x with f(x) and returns t.
func (t *Tensor) Apply(f func(float32) float32) *Tensor {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
	return t
}

// AddInPlace accumulates o into t elementwise and returns t.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	t.mustMatch(o, "AddInPlace")
	for i, v := range o.Data {
		t.Data[i] += v
	}
	return t
}

// SubInPlace subtracts o from t elementwise and returns t.
func (t *Tensor) SubInPlace(o *Tensor) *Tensor {
	t.mustMatch(o, "SubInPlace")
	for i, v := range o.Data {
		t.Data[i] -= v
	}
	return t
}

// MulInPlace multiplies t by o elementwise and returns t.
func (t *Tensor) MulInPlace(o *Tensor) *Tensor {
	t.mustMatch(o, "MulInPlace")
	for i, v := range o.Data {
		t.Data[i] *= v
	}
	return t
}

// ScaleInPlace multiplies every element by s and returns t.
func (t *Tensor) ScaleInPlace(s float32) *Tensor {
	for i := range t.Data {
		t.Data[i] *= s
	}
	return t
}

// AxpyInPlace computes t += alpha*o elementwise and returns t.
func (t *Tensor) AxpyInPlace(alpha float32, o *Tensor) *Tensor {
	t.mustMatch(o, "AxpyInPlace")
	for i, v := range o.Data {
		t.Data[i] += alpha * v
	}
	return t
}

// Add returns t + o as a new tensor.
func (t *Tensor) Add(o *Tensor) *Tensor { return t.Clone().AddInPlace(o) }

// Sub returns t - o as a new tensor.
func (t *Tensor) Sub(o *Tensor) *Tensor { return t.Clone().SubInPlace(o) }

// Mul returns the elementwise product t * o as a new tensor.
func (t *Tensor) Mul(o *Tensor) *Tensor { return t.Clone().MulInPlace(o) }

// Scale returns alpha*t as a new tensor.
func (t *Tensor) Scale(alpha float32) *Tensor { return t.Clone().ScaleInPlace(alpha) }

func (t *Tensor) mustMatch(o *Tensor, op string) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.Shape, o.Shape))
	}
}

// Sum returns the sum of all elements in float64 precision.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements, or 0 for an empty
// tensor.
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Min returns the smallest element. It panics on an empty tensor.
func (t *Tensor) Min() float32 {
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest element. It panics on an empty tensor.
func (t *Tensor) Max() float32 {
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the largest element (first occurrence).
func (t *Tensor) ArgMax() int {
	best, bi := t.Data[0], 0
	for i, v := range t.Data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Std returns the population standard deviation of the elements.
func (t *Tensor) Std() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	mu := t.Mean()
	s := 0.0
	for _, v := range t.Data {
		d := float64(v) - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(t.Data)))
}

// Dot returns the inner product of t and o in float64 precision.
func (t *Tensor) Dot(o *Tensor) float64 {
	t.mustMatch(o, "Dot")
	s := 0.0
	for i, v := range t.Data {
		s += float64(v) * float64(o.Data[i])
	}
	return s
}

// Clamp limits every element to [lo, hi] and returns t.
func (t *Tensor) Clamp(lo, hi float32) *Tensor {
	for i, v := range t.Data {
		if v < lo {
			t.Data[i] = lo
		} else if v > hi {
			t.Data[i] = hi
		}
	}
	return t
}

// RandN fills t with samples from N(mean, std²) drawn from rng and
// returns t. It is used for the paper's Gaussian(0, 0.01) filter init.
func (t *Tensor) RandN(rng *rand.Rand, mean, std float64) *Tensor {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64()*std + mean)
	}
	return t
}

// RandU fills t with uniform samples from [lo, hi) drawn from rng and
// returns t.
func (t *Tensor) RandU(rng *rand.Rand, lo, hi float64) *Tensor {
	for i := range t.Data {
		t.Data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
	return t
}

// AllClose reports whether every element of t is within tol of the
// corresponding element of o.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i, v := range t.Data {
		if math.Abs(float64(v)-float64(o.Data[i])) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// t and o.
func (t *Tensor) MaxAbsDiff(o *Tensor) float64 {
	t.mustMatch(o, "MaxAbsDiff")
	m := 0.0
	for i, v := range t.Data {
		d := math.Abs(float64(v) - float64(o.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// String renders a compact description (shape plus a few leading
// elements) for debugging.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.Shape)
	n := len(t.Data)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4g", t.Data[i])
	}
	if len(t.Data) > 8 {
		b.WriteString(", ...")
	}
	b.WriteString("]")
	return b.String()
}
