package tensor

import (
	"os"
	"sync/atomic"
)

// Allocator supplies tensor storage with explicit lifetime: Get returns
// a zeroed tensor of the given shape, Release returns its storage for
// reuse. internal/memplan provides the pooled implementation; nn/ddnet
// inference paths accept one so a warm pipeline stops touching the GC.
type Allocator interface {
	Get(shape ...int) *Tensor
	Release(t *Tensor)
}

// NewIn allocates a zeroed tensor from alloc, or from the heap when
// alloc is nil — the pooled twin of New.
func NewIn(alloc Allocator, shape ...int) *Tensor {
	if alloc == nil {
		return New(shape...)
	}
	return alloc.Get(shape...)
}

// PoisonBits is the float32 bit pattern pooled allocators fill released
// buffers with when memory debugging is on: a quiet NaN with a
// recognizable payload, so any use-after-release read propagates NaNs
// and any write is detected on the next pooled Get.
const PoisonBits uint32 = 0x7fc0dead

// memDebug gates release-poisoning and use-after-release checks in
// pooled allocators. Initialized from CC_MEMDEBUG=1 (CI race and chaos
// jobs set it); toggleable at runtime for tests.
var memDebug atomic.Bool

func init() {
	if os.Getenv("CC_MEMDEBUG") == "1" {
		memDebug.Store(true)
	}
}

// MemDebug reports whether pooled-memory debugging is enabled.
func MemDebug() bool { return memDebug.Load() }

// SetMemDebug enables or disables pooled-memory debugging and returns
// the previous setting (for test save/restore).
func SetMemDebug(on bool) bool { return memDebug.Swap(on) }
