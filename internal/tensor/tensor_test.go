package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Numel() != 24 || x.Rank() != 3 {
		t.Fatalf("Numel=%d Rank=%d, want 24, 3", x.Numel(), x.Rank())
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New tensor not zero-filled")
		}
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromSliceAndIndexing(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := x.At(1, 2); got != 6 {
		t.Fatalf("At(1,2) = %v, want 6", got)
	}
	x.Set(42, 0, 1)
	if got := x.At(0, 1); got != 42 {
		t.Fatalf("Set/At round trip = %v, want 42", got)
	}
	if x.Index(1, 0) != 3 {
		t.Fatalf("Index(1,0) = %d, want 3 (row-major)", x.Index(1, 0))
	}
}

func TestFromSliceShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape/data mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestIndexOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	x.At(0, 2)
}

func TestScalar(t *testing.T) {
	s := Scalar(3.5)
	if s.Rank() != 0 || s.Numel() != 1 || s.Data[0] != 3.5 {
		t.Fatalf("Scalar wrong: %v", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 99
	if x.Data[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 4)
	y := x.Reshape(2, 2)
	y.Set(9, 1, 1)
	if x.Data[3] != 9 {
		t.Fatal("Reshape does not share data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad reshape")
		}
	}()
	x.Reshape(3)
}

func TestArithmetic(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	if got := a.Add(b); got.Data[0] != 5 || got.Data[2] != 9 {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); got.Data[0] != 3 || got.Data[2] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Mul(b); got.Data[1] != 10 {
		t.Fatalf("Mul = %v", got)
	}
	if got := a.Scale(2); got.Data[2] != 6 {
		t.Fatalf("Scale = %v", got)
	}
	a.AxpyInPlace(10, b)
	if a.Data[0] != 41 {
		t.Fatalf("Axpy = %v", a)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a, b := New(2), New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	a.AddInPlace(b)
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float32{1, -2, 3, 0}, 4)
	if x.Sum() != 2 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 0.5 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.Min() != -2 || x.Max() != 3 {
		t.Fatalf("Min/Max = %v/%v", x.Min(), x.Max())
	}
	if x.ArgMax() != 2 {
		t.Fatalf("ArgMax = %d", x.ArgMax())
	}
	if math.Abs(x.Std()-math.Sqrt(3.25)) > 1e-9 {
		t.Fatalf("Std = %v", x.Std())
	}
	y := FromSlice([]float32{1, 1, 1, 1}, 4)
	if x.Dot(y) != 2 {
		t.Fatalf("Dot = %v", x.Dot(y))
	}
}

func TestMeanEmpty(t *testing.T) {
	x := New(0)
	if x.Mean() != 0 || x.Std() != 0 {
		t.Fatal("Mean/Std of empty tensor should be 0")
	}
}

func TestClamp(t *testing.T) {
	x := FromSlice([]float32{-5, 0.5, 5}, 3)
	x.Clamp(0, 1)
	if x.Data[0] != 0 || x.Data[1] != 0.5 || x.Data[2] != 1 {
		t.Fatalf("Clamp = %v", x.Data)
	}
}

func TestApply(t *testing.T) {
	x := FromSlice([]float32{1, 4, 9}, 3)
	x.Apply(func(v float32) float32 { return float32(math.Sqrt(float64(v))) })
	if x.Data[2] != 3 {
		t.Fatalf("Apply = %v", x.Data)
	}
}

func TestRandNStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := New(10000).RandN(rng, 2.0, 0.5)
	if math.Abs(x.Mean()-2.0) > 0.05 {
		t.Fatalf("RandN mean = %v, want ~2.0", x.Mean())
	}
	if math.Abs(x.Std()-0.5) > 0.05 {
		t.Fatalf("RandN std = %v, want ~0.5", x.Std())
	}
}

func TestRandURange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := New(1000).RandU(rng, -1, 1)
	if x.Min() < -1 || x.Max() >= 1 {
		t.Fatalf("RandU out of range: [%v, %v]", x.Min(), x.Max())
	}
}

func TestAllCloseAndMaxAbsDiff(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{1.001, 2}, 2)
	if !a.AllClose(b, 0.01) {
		t.Fatal("AllClose(0.01) should hold")
	}
	if a.AllClose(b, 1e-6) {
		t.Fatal("AllClose(1e-6) should fail")
	}
	if d := a.MaxAbsDiff(b); math.Abs(d-0.001) > 1e-6 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
	if a.AllClose(New(3), 1) {
		t.Fatal("AllClose across shapes should fail")
	}
}

func TestStringTruncates(t *testing.T) {
	s := New(100).String()
	if len(s) == 0 || len(s) > 200 {
		t.Fatalf("String() unexpected length: %q", s)
	}
}

// Property: Add is commutative.
func TestAddCommutativeProperty(t *testing.T) {
	f := func(a, b []float32) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		x := FromSlice(append([]float32(nil), a[:n]...), n)
		y := FromSlice(append([]float32(nil), b[:n]...), n)
		return x.Add(y).AllClose(y.Add(x), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Index and At agree with manual row-major arithmetic.
func TestRowMajorProperty(t *testing.T) {
	f := func(i, j, k uint8) bool {
		d0, d1, d2 := int(i%4)+1, int(j%4)+1, int(k%4)+1
		x := New(d0, d1, d2)
		for a := 0; a < d0; a++ {
			for b := 0; b < d1; b++ {
				for c := 0; c < d2; c++ {
					if x.Index(a, b, c) != (a*d1+b)*d2+c {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
