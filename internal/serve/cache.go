package serve

import (
	"container/list"
	"sync"
)

// resultCache is a thread-safe LRU of scan results, content-addressed by
// volume hash + model version (see Server.cacheKey). A nil *resultCache
// is the disabled cache: get always misses, put is a no-op.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key string
	res ScanResult
}

// newResultCache returns a cache holding up to capacity entries, or nil
// (disabled) when capacity < 0.
func newResultCache(capacity int) *resultCache {
	if capacity < 0 {
		return nil
	}
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

func (c *resultCache) get(key string) (ScanResult, bool) {
	if c == nil {
		return ScanResult{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return ScanResult{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *resultCache) put(key string, res ScanResult) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
