package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"computecovid19/internal/obs"
	"computecovid19/internal/volume"
)

// State is a job's lifecycle position.
type State string

// Job states, in lifecycle order. Failed covers both pipeline errors and
// deadline expiry (the error message distinguishes them).
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// job is one accepted scan request. All mutable fields are guarded by
// the owning store's mutex. The trace fields are written once in
// handleSubmit before the job is enqueued and read by the worker: ctx
// detaches the request's trace from the HTTP request context (so
// processing survives client disconnects), span is the request root
// (ended last, completing the trace in the flight recorder), qspan
// covers the admission-queue wait.
type job struct {
	id        string
	vol       *volume.Volume
	key       string
	submitted time.Time
	deadline  time.Time
	// preEnhanced marks a volume that already went through Enhancement
	// AI (sharded gateway reassembly); the worker skips that stage.
	// Written once in handleSubmit before enqueue, read by the worker.
	preEnhanced bool

	ctx   context.Context
	span  *obs.Span
	qspan *obs.Span

	state    State
	cached   bool
	result   *ScanResult
	err      string
	finished time.Time
}

// JobView is the client-facing JSON rendering of a job.
type JobView struct {
	ID        string      `json:"id"`
	State     State       `json:"state"`
	Cached    bool        `json:"cached,omitempty"`
	Result    *ScanResult `json:"result,omitempty"`
	Error     string      `json:"error,omitempty"`
	ElapsedMS float64     `json:"elapsed_ms"`
}

// store tracks every job the server has accepted, by id.
type store struct {
	mu   sync.Mutex
	seq  uint64
	jobs map[string]*job
}

func newStore() *store {
	return &store{jobs: make(map[string]*job)}
}

func (st *store) newJob(vol *volume.Volume, key string, deadline time.Time) *job {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	j := &job{
		id:        fmt.Sprintf("scan-%06d", st.seq),
		vol:       vol,
		key:       key,
		submitted: time.Now(),
		deadline:  deadline,
		state:     StateQueued,
	}
	st.jobs[j.id] = j
	return j
}

// drop removes a job that was never admitted (queue full, draining).
func (st *store) drop(j *job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.jobs, j.id)
}

func (st *store) setRunning(j *job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j.state = StateRunning
}

func (st *store) finish(j *job, res ScanResult) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j.state = StateDone
	j.result = &res
	j.finished = time.Now()
}

// finishCached completes a job from a cache hit, before it ever queued.
func (st *store) finishCached(j *job, res ScanResult) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j.state = StateDone
	j.cached = true
	j.result = &res
	j.finished = time.Now()
}

func (st *store) fail(j *job, msg string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j.state = StateFailed
	j.err = msg
	j.finished = time.Now()
}

func (st *store) view(j *job) JobView {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.viewLocked(j)
}

func (st *store) viewByID(id string) (JobView, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return st.viewLocked(j), true
}

func (st *store) viewLocked(j *job) JobView {
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	return JobView{
		ID:        j.id,
		State:     j.state,
		Cached:    j.cached,
		Result:    j.result,
		Error:     j.err,
		ElapsedMS: end.Sub(j.submitted).Seconds() * 1e3,
	}
}

// counts tallies jobs by state — the drain test's bookkeeping.
func (st *store) counts() map[State]int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[State]int)
	for _, j := range st.jobs {
		out[j.state]++
	}
	return out
}
