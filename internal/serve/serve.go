// Package serve is the batched inference server that puts the
// ComputeCOVID19+ pipeline behind an HTTP/JSON API. The paper's headline
// claim is workflow acceleration — days of RT-PCR turnaround replaced by
// a minutes-long CT pipeline (§1, Figure 4) — and ROADMAP's north star
// is a production-scale system serving heavy traffic, so this package
// multiplexes many concurrent scans onto the warm pipeline that
// cmd/ccovid only reaches one scan at a time:
//
//   - a bounded admission queue with backpressure (429 + Retry-After
//     when full), per-request deadlines, and graceful drain on shutdown;
//   - a worker pool sharing one warm core.Pipeline (weights are
//     read-only after Pipeline.Warm, so replicas share storage);
//   - a micro-batching scheduler that groups enhancement slices from
//     concurrent scans into batched DDnet forward passes — the same
//     fill-or-timeout batching model internal/workflow uses for RT-PCR
//     thermocycler plates, now applied to the GPU-style batch economics
//     of the enhancement network;
//   - a content-addressed LRU result cache keyed by volume hash + model
//     version, so re-submitted scans return in O(1).
//
// Every queue, batch, and cache decision reports into internal/obs
// (queue-depth gauge, admission/rejection counters, batch-size and
// end-to-end latency histograms), and internal/workflow carries a
// serving-pipeline model (ServeModel) so the discrete-event simulator
// can predict the throughput this server measures.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"computecovid19/internal/core"
	"computecovid19/internal/kernels"
	"computecovid19/internal/memplan"
	"computecovid19/internal/obs"
	"computecovid19/internal/volume"
)

// Config assembles a Server. The zero value of every tuning field picks
// a sensible default (see New).
type Config struct {
	// Pipeline is the warm diagnostic pipeline. New calls Warm on it, so
	// the worker pool can share its weights without racing.
	Pipeline *core.Pipeline
	// Workers is the number of concurrent segment+classify workers.
	Workers int
	// QueueDepth bounds the admission queue; submissions beyond it get
	// 429 + Retry-After.
	QueueDepth int
	// BatchSize is the micro-batch fill target for DDnet enhancement
	// slices; BatchTimeout fires a partial batch so a lone scan is never
	// stuck waiting for traffic.
	BatchSize    int
	BatchTimeout time.Duration
	// CacheSize is the result-cache capacity in entries; negative
	// disables caching.
	CacheSize int
	// ModelVersion is folded into cache keys so a redeploy with new
	// weights never serves stale results.
	ModelVersion string
	// DefaultDeadline bounds jobs that do not carry their own
	// deadline_ms; zero means no default deadline.
	DefaultDeadline time.Duration
	// MaxVoxels rejects oversized volumes at admission (413).
	MaxVoxels int
	// Process overrides the pipeline backend — the seam load tests and
	// custom models plug into. When set, Pipeline may be nil and
	// micro-batching is bypassed.
	Process func(v *volume.Volume) core.Result
	// Enhance overrides the enhancement stage everywhere it runs — the
	// chunk-range endpoint (POST /v1/enhance) and the scan path's
	// pre-process enhancement — the seam chaos tests and calibrated
	// benches plug into, parallel to Process for segment+classify. When
	// nil, enhancement uses the pipeline (micro-batched when enabled),
	// or passes the input through when no enhancer exists.
	Enhance func(v *volume.Volume) *volume.Volume
	// EnhanceConcurrency bounds concurrent chunk-range enhancements;
	// excess requests get 429 + Retry-After so the gateway re-dispatches
	// the chunk elsewhere. Defaults to 4× Workers.
	EnhanceConcurrency int
	// SLO configures the /v1/scan latency and availability objectives
	// (zero fields pick obs.NewSLO's serving defaults). Budget-remaining
	// and burn-rate gauges are recomputed on every /metrics scrape.
	SLO obs.SLOConfig
	// FlightDir, when set, receives flight-recorder dumps for
	// deadline-exceeded requests and 5xx responses; empty disables dumps.
	FlightDir string
}

// ScanResult is the diagnostic outcome returned to clients and stored
// in the result cache.
type ScanResult struct {
	Probability float64 `json:"probability"`
	Positive    bool    `json:"positive"`
}

// Server is a running (or startable) inference server.
type Server struct {
	cfg     Config
	store   *store
	cache   *resultCache
	batcher *batcher
	slo     *obs.SLO

	// Chunk-range enhancement state: a free list of per-request arenas
	// (the batcher path stages slices from one) and the inflight count
	// behind the EnhanceConcurrency admission bound.
	enhArenas   sync.Pool
	enhInflight atomic.Int64

	queue chan *job
	gate  sync.RWMutex // guards queue close vs. admission sends
	shut  bool

	wg       sync.WaitGroup
	draining bool
	drainMu  sync.Mutex
}

// New builds a Server from cfg, applying defaults, warming the pipeline,
// and validating that a backend exists. Call Start to launch the worker
// pool.
func New(cfg Config) (*Server, error) {
	if cfg.Pipeline == nil && cfg.Process == nil {
		return nil, fmt.Errorf("serve: Config needs a Pipeline or a Process backend")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 128
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.BatchTimeout <= 0 {
		cfg.BatchTimeout = 2 * time.Millisecond
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 256
	}
	if cfg.ModelVersion == "" {
		cfg.ModelVersion = "v0"
	}
	if cfg.MaxVoxels <= 0 {
		cfg.MaxVoxels = 1 << 26
	}
	if cfg.EnhanceConcurrency <= 0 {
		cfg.EnhanceConcurrency = 4 * cfg.Workers
	}
	s := &Server{
		cfg:   cfg,
		store: newStore(),
		cache: newResultCache(cfg.CacheSize),
		queue: make(chan *job, cfg.QueueDepth),
		slo:   obs.NewSLO(cfg.SLO),
	}
	s.enhArenas.New = func() any { return memplan.New() }
	obs.NewBuildInfo(kernels.Names()).Register()
	if cfg.Pipeline != nil {
		cfg.Pipeline.Warm()
		if cfg.Process == nil && cfg.Pipeline.Enhancer != nil {
			s.batcher = newBatcher(cfg.Pipeline.Enhancer, cfg.BatchSize, cfg.BatchTimeout)
		}
	}
	return s, nil
}

// Start launches the worker pool and (when enhancement is enabled) the
// micro-batching scheduler.
func (s *Server) Start() {
	if s.batcher != nil {
		go s.batcher.run()
	}
	s.wg.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}
}

// Drain stops admission, lets every accepted job finish, and shuts the
// batcher down. It returns ctx.Err when the context expires first; the
// workers keep finishing in the background in that case.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()

	s.gate.Lock()
	if !s.shut {
		s.shut = true
		close(s.queue)
	}
	s.gate.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		if s.batcher != nil {
			s.batcher.stop()
		}
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has begun (readiness turns false).
func (s *Server) Draining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// ScanRequest is the POST /v1/scan body: a D×H×W volume in Hounsfield
// units, row-major slice by slice, plus an optional per-request deadline.
// PreEnhanced marks a volume that already went through Enhancement AI
// (the gateway's sharded scatter/gather path submits these after
// reassembly); the worker skips the enhancement stage and runs
// segment+classify directly. The flag is part of the cache identity, so
// a raw volume and the byte-identical pre-enhanced one never collide.
type ScanRequest struct {
	D           int       `json:"d"`
	H           int       `json:"h"`
	W           int       `json:"w"`
	Data        []float32 `json:"data"`
	DeadlineMS  int       `json:"deadline_ms,omitempty"`
	PreEnhanced bool      `json:"pre_enhanced,omitempty"`
}

// Handler returns the HTTP API:
//
//	POST /v1/scan      submit a volume; 202 + job id (200 on cache hit)
//	GET  /v1/scan/{id} poll a job
//	GET  /healthz      liveness
//	GET  /readyz       readiness (503 while draining)
//	GET  /metrics      Prometheus exposition of the obs registry
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scan", s.handleSubmit)
	mux.HandleFunc("POST /v1/enhance", s.handleEnhance)
	mux.HandleFunc("GET /v1/scan/{id}", s.handleGet)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		s.slo.Export()
		memplan.SampleRuntime() // refresh mem_* gauges at scrape time
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obs.Default.WritePrometheus(w)
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The request root span ("serve/request") covers the scan end to
	// end — it outlives this handler and is ended by the worker at the
	// job's terminal state. The "serve/http" child covers only the
	// submit round-trip. An inbound traceparent header continues the
	// caller's trace; the response header carries ours either way.
	ctx := r.Context()
	if sc, ok := obs.ParseTraceparent(r.Header.Get("Traceparent")); ok {
		ctx = obs.ContextWithRemote(ctx, sc)
	}
	ctx, reqSp := obs.StartCtx(ctx, "serve/request")
	if tp := reqSp.Traceparent(); tp != "" {
		w.Header().Set("Traceparent", tp)
	}
	_, hsp := obs.StartCtx(ctx, "serve/http")
	start := time.Now()
	// endHere terminates the trace at the HTTP layer (non-admitted
	// outcomes); 5xx responses dump the just-completed trace.
	endHere := func(code int) {
		hsp.End()
		reqSp.End()
		if code >= 500 {
			s.slo.Observe(time.Since(start), true)
			if s.cfg.FlightDir != "" {
				obs.DumpFlightTrace(s.cfg.FlightDir, reqSp.TraceID(), fmt.Sprintf("http %d", code))
			}
		}
	}

	if s.Draining() {
		http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
		endHere(http.StatusServiceUnavailable)
		return
	}
	var req ScanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: %v", err)
		endHere(http.StatusBadRequest)
		return
	}
	if req.D <= 0 || req.H <= 0 || req.W <= 0 {
		httpError(w, http.StatusBadRequest, "dimensions must be positive, got %dx%dx%d", req.D, req.H, req.W)
		endHere(http.StatusBadRequest)
		return
	}
	voxels := req.D * req.H * req.W
	if voxels > s.cfg.MaxVoxels {
		httpError(w, http.StatusRequestEntityTooLarge, "volume has %d voxels, limit %d", voxels, s.cfg.MaxVoxels)
		endHere(http.StatusRequestEntityTooLarge)
		return
	}
	if len(req.Data) != voxels {
		httpError(w, http.StatusBadRequest, "data has %d values, want %d", len(req.Data), voxels)
		endHere(http.StatusBadRequest)
		return
	}

	vol := &volume.Volume{D: req.D, H: req.H, W: req.W, Data: req.Data}
	key := s.cacheKey(vol, req.PreEnhanced)
	if res, ok := s.cache.get(key); ok {
		cacheHits.Inc()
		j := s.store.newJob(vol, key, time.Time{})
		s.store.finishCached(j, res)
		w.Header().Set("X-Cache", "hit")
		writeJSON(w, http.StatusOK, s.store.view(j))
		endHere(http.StatusOK)
		s.slo.Observe(time.Since(start), false)
		return
	}
	cacheMisses.Inc()

	var deadline time.Time
	switch {
	case req.DeadlineMS > 0:
		deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	case s.cfg.DefaultDeadline > 0:
		deadline = time.Now().Add(s.cfg.DefaultDeadline)
	}
	j := s.store.newJob(vol, key, deadline)
	j.preEnhanced = req.PreEnhanced
	// Detach the trace from the HTTP context: processing must survive
	// the client hanging up on the 202. The queue span is opened before
	// the enqueue so the worker can never dequeue a job without one.
	j.ctx = obs.ContextWithSpan(context.Background(), reqSp)
	j.span = reqSp
	_, j.qspan = obs.StartCtx(j.ctx, "serve/queue")

	s.gate.RLock()
	if s.shut {
		s.gate.RUnlock()
		s.store.drop(j)
		http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
		j.qspan.End()
		endHere(http.StatusServiceUnavailable)
		return
	}
	admitted := false
	select {
	case s.queue <- j:
		admitted = true
	default:
	}
	s.gate.RUnlock()

	if !admitted {
		s.store.drop(j)
		rejectedTotal.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "admission queue full (%d deep)", s.cfg.QueueDepth)
		j.qspan.End()
		endHere(http.StatusTooManyRequests)
		return
	}
	admittedTotal.Inc()
	queueDepth.Add(1)
	// The gateway's cache-affine router measures its end-to-end affinity
	// hit rate off this header, so the miss case is announced too.
	w.Header().Set("X-Cache", "miss")
	writeJSON(w, http.StatusAccepted, s.store.view(j))
	hsp.End()
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	view, ok := s.store.viewByID(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown scan %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// cacheKey is the content address of a volume under the current model:
// SHA-256 over model version, dimensions, the pre-enhanced flag, and the
// raw voxel bits. The flag keeps a raw volume whose bytes happen to
// equal an enhanced one (identity enhancers, no-op windows) from
// aliasing its cached result.
func (s *Server) cacheKey(v *volume.Volume, preEnhanced bool) string {
	h := sha256.New()
	h.Write([]byte(s.cfg.ModelVersion))
	var dims [13]byte
	binary.LittleEndian.PutUint32(dims[0:], uint32(v.D))
	binary.LittleEndian.PutUint32(dims[4:], uint32(v.H))
	binary.LittleEndian.PutUint32(dims[8:], uint32(v.W))
	if preEnhanced {
		dims[12] = 1
	}
	h.Write(dims[:])
	buf := make([]byte, 4*len(v.Data))
	for i, x := range v.Data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(x))
	}
	h.Write(buf)
	return hex.EncodeToString(h.Sum(nil))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
