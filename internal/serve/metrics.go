package serve

import "computecovid19/internal/obs"

// Serving telemetry. Each admission, queue, batch, and cache decision
// reports here; /metrics exposes the registry in Prometheus format and
// cmd/ccbench folds the same counters into BENCH_serve.json.
var (
	admittedTotal  = obs.GetCounter("serve_admitted_total")
	rejectedTotal  = obs.GetCounter("serve_rejected_total")
	deadlinesTotal = obs.GetCounter("serve_deadline_exceeded_total")
	cacheHits      = obs.GetCounter("serve_cache_hits_total")
	cacheMisses    = obs.GetCounter("serve_cache_misses_total")
	queueDepth     = obs.GetGauge("serve_queue_depth")

	// Batch sizes span 1..128 slices in doubling buckets.
	batchSizeHist = obs.GetHistogram("serve_batch_size", obs.ExpBuckets(1, 2, 8))
	// End-to-end latency from admission to completion, and the pure
	// batched-forward cost per micro-batch.
	requestSeconds      = obs.GetHistogram("serve_request_seconds", nil)
	enhanceBatchSeconds = obs.GetHistogram("serve_enhance_batch_seconds", nil)

	// Chunk-range enhancement endpoint (the gateway's scatter/gather
	// unit): completions, concurrency-bound rejections, and the
	// synchronous per-chunk service time.
	enhanceChunksTotal   = obs.GetCounter("serve_enhance_chunks_total")
	enhanceChunkRejected = obs.GetCounter("serve_enhance_chunk_rejected_total")
	enhanceChunkSeconds  = obs.GetHistogram("serve_enhance_chunk_seconds", nil)
)
