package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"computecovid19/internal/memplan"
	"computecovid19/internal/obs"
	"computecovid19/internal/volume"
)

// EnhanceResponse is the POST /v1/enhance reply: the enhanced chunk in
// the same row-major layout as the request. Go encodes float32 values in
// shortest-form decimal, so a volume round-trips the wire bit-exactly —
// the property the gateway's bit-identical sharding guarantee rests on.
type EnhanceResponse struct {
	D    int       `json:"d"`
	H    int       `json:"h"`
	W    int       `json:"w"`
	Data []float32 `json:"data"`
}

// handleEnhance is the chunk-range enhancement endpoint — the replica
// side of the gateway's scatter/gather sharding. It synchronously runs
// Enhancement AI over the posted sub-volume (a contiguous slice range of
// some larger scan) and returns the enhanced chunk. Per-slice forwards
// are independent, so enhancing a chunk in isolation is bit-identical to
// enhancing the same slices inside the whole scan.
//
// The endpoint deliberately bypasses the scan queue: chunks are small,
// latency-critical, and retried/hedged by the gateway, so admission is a
// simple concurrency bound (429 + Retry-After when EnhanceConcurrency
// chunks are already in flight) and drain is an immediate 503.
func (s *Server) handleEnhance(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if sc, ok := obs.ParseTraceparent(r.Header.Get("Traceparent")); ok {
		ctx = obs.ContextWithRemote(ctx, sc)
	}
	ctx, sp := obs.StartCtx(ctx, "serve/enhance-chunk")
	defer sp.End()
	if tp := sp.Traceparent(); tp != "" {
		w.Header().Set("Traceparent", tp)
	}

	if s.Draining() {
		http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
		return
	}
	var req ScanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	if req.D <= 0 || req.H <= 0 || req.W <= 0 {
		httpError(w, http.StatusBadRequest, "dimensions must be positive, got %dx%dx%d", req.D, req.H, req.W)
		return
	}
	voxels := req.D * req.H * req.W
	if voxels > s.cfg.MaxVoxels {
		httpError(w, http.StatusRequestEntityTooLarge, "chunk has %d voxels, limit %d", voxels, s.cfg.MaxVoxels)
		return
	}
	if len(req.Data) != voxels {
		httpError(w, http.StatusBadRequest, "data has %d values, want %d", len(req.Data), voxels)
		return
	}

	if n := s.enhInflight.Add(1); n > int64(s.cfg.EnhanceConcurrency) {
		s.enhInflight.Add(-1)
		enhanceChunkRejected.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "chunk concurrency limit reached (%d)", s.cfg.EnhanceConcurrency)
		return
	}
	defer s.enhInflight.Add(-1)
	defer func() {
		if rec := recover(); rec != nil {
			httpError(w, http.StatusInternalServerError, "enhance panic: %v", rec)
		}
	}()

	start := time.Now()
	sp.SetAttr("slices", req.D)
	in := &volume.Volume{D: req.D, H: req.H, W: req.W, Data: req.Data}
	out, recycle := s.enhanceChunk(ctx, in)

	enhanceChunkSeconds.Observe(time.Since(start).Seconds())
	enhanceChunksTotal.Inc()
	writeJSON(w, http.StatusOK, EnhanceResponse{D: out.D, H: out.H, W: out.W, Data: out.Data})
	if recycle {
		s.cfg.Pipeline.RecycleVolume(out)
	}
}

// enhanceChunk picks the enhancement backend for one chunk, in the same
// precedence order the scan path uses: the Enhance test seam, the
// micro-batcher (chunks from concurrent scatters share batches exactly
// like concurrent scans do), the pooled EnhanceInto path, or — with no
// pipeline at all (Process-stub replicas) — an identity echo. recycle
// reports whether out came from the pipeline's volume pool and must be
// recycled after the response is written.
func (s *Server) enhanceChunk(ctx context.Context, in *volume.Volume) (out *volume.Volume, recycle bool) {
	switch {
	case s.cfg.Enhance != nil:
		return s.cfg.Enhance(in), false
	case s.batcher != nil:
		mem := s.enhArenas.Get().(*memplan.Arena)
		out = s.enhanceVolume(ctx, mem, in)
		s.enhArenas.Put(mem)
		return out, out != in
	case s.cfg.Pipeline != nil:
		out = s.cfg.Pipeline.GetVolume(in.D, in.H, in.W)
		s.cfg.Pipeline.EnhanceInto(ctx, in, out)
		return out, true
	default:
		return in, false
	}
}
