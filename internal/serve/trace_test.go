package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"computecovid19/internal/core"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/obs"
	"computecovid19/internal/tensor"
	"computecovid19/internal/volume"
)

// inboundSpanContext is a fixed remote identity playing the upstream
// caller (a gateway or test harness that already opened a trace).
func inboundSpanContext() obs.SpanContext {
	var sc obs.SpanContext
	for i := range sc.Trace {
		sc.Trace[i] = byte(0x10 + i)
	}
	for i := range sc.Span {
		sc.Span[i] = byte(0xb0 + i)
	}
	return sc
}

// recordsByID indexes a span snapshot for parent-chain walking.
func recordsByID(recs []obs.SpanRecord) map[obs.SpanID]obs.SpanRecord {
	m := make(map[obs.SpanID]obs.SpanRecord, len(recs))
	for _, r := range recs {
		m[r.ID] = r
	}
	return m
}

// TestRequestTraceEndToEnd is the golden-path trace test: one scan
// through the real pipeline must produce a single request trace —
// continued from the inbound traceparent — whose span tree runs
// handler → queue → worker → enhance, with the enhance span linked from
// a batch trace that descends through ddnet/forward into the selected
// kernel rung.
func TestRequestTraceEndToEnd(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	obs.Enable()

	p := testPipeline(t, true, 21)
	cases := testCohort(t, 1, 23)
	s, ts := startServer(t, Config{
		Pipeline: p, Workers: 1, QueueDepth: 8, BatchSize: 4,
		BatchTimeout: time.Millisecond, CacheSize: -1,
	})

	inbound := inboundSpanContext()
	body := scanBody(t, cases[0].Volume)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/scan", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Traceparent", inbound.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	decodeBody(t, resp, &view)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	// The response announces our span in the caller's trace.
	echoed, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok {
		t.Fatalf("response traceparent unparseable: %q", resp.Header.Get("Traceparent"))
	}
	if echoed.Trace != inbound.Trace {
		t.Fatalf("server opened trace %s instead of continuing inbound %s", echoed.Trace, inbound.Trace)
	}
	if echoed.Span == inbound.Span {
		t.Fatal("server must mint its own span id, not echo the caller's")
	}

	if got := poll(t, ts, view.ID, 30*time.Second); got.State != StateDone {
		t.Fatalf("scan did not complete: %+v", got)
	}
	if err := s.Drain(drainCtx(t, 10*time.Second)); err != nil {
		t.Fatal(err)
	}

	recs, dropped := obs.TraceRecords()
	if dropped != 0 {
		t.Fatalf("span buffer dropped %d records", dropped)
	}
	byID := recordsByID(recs)

	// Golden span tree of the request trace: every edge the scan must
	// traverse, as child←parent pairs — from the HTTP handler through
	// queue and worker down into the diagnostic pipeline stages.
	wantEdges := []string{
		"core/classify<-core/diagnose",
		"core/diagnose<-serve/process",
		"core/segment<-core/diagnose",
		"serve/enhance<-serve/process",
		"serve/http<-serve/request",
		"serve/process<-serve/request",
		"serve/queue<-serve/request",
		"serve/request<-inbound",
	}
	var gotEdges []string
	var enhance, request obs.SpanRecord
	for _, r := range recs {
		if r.Trace != inbound.Trace {
			continue
		}
		parent := "inbound"
		if r.Parent != inbound.Span {
			parent = byID[r.Parent].Name
		}
		gotEdges = append(gotEdges, r.Name+"<-"+parent)
		switch r.Name {
		case "serve/enhance":
			enhance = r
		case "serve/request":
			request = r
		}
	}
	sort.Strings(gotEdges)
	if strings.Join(gotEdges, "\n") != strings.Join(wantEdges, "\n") {
		t.Fatalf("request trace tree:\n%s\nwant:\n%s",
			strings.Join(gotEdges, "\n"), strings.Join(wantEdges, "\n"))
	}
	if request.ID != echoed.Span {
		t.Fatal("response traceparent must name the serve/request span")
	}

	// The flight recorder retained the complete request trace.
	ft, ok := obs.FlightTraceByID(inbound.Trace)
	if !ok {
		t.Fatal("request trace missing from flight recorder")
	}
	if ft.Root != "serve/request" || len(ft.Spans) != len(wantEdges) {
		t.Fatalf("flight trace root=%q spans=%d, want serve/request with %d spans",
			ft.Root, len(ft.Spans), len(wantEdges))
	}

	// Follow the batch link: some enhance batch must link our enhance
	// span, and its own trace must descend through the DDnet forward
	// into the selected kernel rung.
	linked := false
	for _, r := range recs {
		if r.Name != "serve/enhance_batch" {
			continue
		}
		for _, l := range r.Links {
			if l.Trace == inbound.Trace && l.Span == enhance.ID {
				linked = true
			}
		}
		if !linked {
			continue
		}
		forward, rung := obs.SpanRecord{}, obs.SpanRecord{}
		for _, br := range recs {
			if br.Trace != r.Trace {
				continue
			}
			switch br.Name {
			case "ddnet/forward":
				if br.Parent == r.ID {
					forward = br
				}
			case "kernels/rung":
				rung = br
			}
		}
		if forward.ID.IsZero() {
			t.Fatal("batch trace missing ddnet/forward under the batch span")
		}
		if rung.Parent != forward.ID {
			t.Fatal("batch trace missing kernels/rung under ddnet/forward")
		}
		hasRungAttr := false
		for _, a := range rung.Attrs {
			if a.Key == "rung" {
				hasRungAttr = true
			}
		}
		if !hasRungAttr {
			t.Fatal("kernels/rung span must carry the selected rung name")
		}
		break
	}
	if !linked {
		t.Fatal("no enhance batch links the request's enhance span")
	}
}

// TestBatcherLinksManyRequestTraces drives the micro-batcher directly:
// slices from N distinct request traces filling one batch must produce
// one batch span carrying N links, one per request trace.
func TestBatcherLinksManyRequestTraces(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	obs.Enable()

	const n = 4
	rng := rand.New(rand.NewSource(31))
	b := newBatcher(ddnet.New(rng, ddnet.TinyConfig()), n, time.Second)
	go b.run()

	spans := make([]*obs.Span, n)
	outs := make([]chan *tensor.Tensor, n)
	for i := range spans {
		spans[i] = obs.Start(fmt.Sprintf("request-%d", i))
		img := tensor.New(32, 32)
		for j := range img.Data {
			img.Data[j] = rng.Float32()
		}
		outs[i] = b.submit(img, spans[i].Context())
	}
	for i, out := range outs {
		if enh := <-out; enh == nil {
			t.Fatalf("slice %d lost", i)
		}
		spans[i].End()
	}
	b.stop()

	recs, _ := obs.TraceRecords()
	var batch obs.SpanRecord
	batches := 0
	for _, r := range recs {
		if r.Name == "serve/enhance_batch" {
			batch = r
			batches++
		}
	}
	if batches != 1 {
		t.Fatalf("got %d batch spans, want 1 (size %d fill)", batches, n)
	}
	if len(batch.Links) != n {
		t.Fatalf("batch links %d traces, want %d", len(batch.Links), n)
	}
	want := make(map[obs.SpanContext]bool, n)
	for _, sp := range spans {
		want[sp.Context()] = true
	}
	for _, l := range batch.Links {
		if !want[l] {
			t.Fatalf("batch links unknown span %+v", l)
		}
		delete(want, l)
	}
	for _, sp := range spans {
		if sp.TraceID() == batch.Trace {
			t.Fatal("the batch span must root its own trace, not join a request's")
		}
	}
}

// TestDeadlineExceededDumpsFlightTrace is the flight-recorder
// integration test: a request failing on its deadline must leave a
// dump file named after its trace id, holding the complete trace.
func TestDeadlineExceededDumpsFlightTrace(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	obs.Enable()
	// The deadline failure logs at ERROR by design; keep test output clean.
	prev := obs.SetLogWriter(io.Discard, slog.LevelError+4)
	defer obs.SetLogger(prev)

	flightDir := t.TempDir()
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s, ts := startServer(t, Config{
		Workers: 1, QueueDepth: 4, CacheSize: -1, FlightDir: flightDir,
		Process: func(v *volume.Volume) core.Result {
			started <- struct{}{}
			<-release
			return core.Result{Probability: 0.5}
		},
	})
	vols := uniqueVolumes(2)

	_, viewA := submit(t, ts, vols[0], 0)
	<-started
	respB, viewB := submit(t, ts, vols[1], 1) // 1 ms deadline, stuck in queue
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("deadline submit: %d", respB.StatusCode)
	}
	traceB, ok := obs.ParseTraceparent(respB.Header.Get("Traceparent"))
	if !ok {
		t.Fatalf("submit response traceparent unparseable: %q", respB.Header.Get("Traceparent"))
	}
	time.Sleep(10 * time.Millisecond)
	close(release)

	if got := poll(t, ts, viewB.ID, 5*time.Second); got.State != StateFailed {
		t.Fatalf("deadlined job: %+v", got)
	}
	if got := poll(t, ts, viewA.ID, 5*time.Second); got.State != StateDone {
		t.Fatalf("unbounded job: %+v", got)
	}

	// The dump is written right after the job reaches its terminal
	// state; give the worker a moment to finish it.
	dumpPath := filepath.Join(flightDir, "flight-"+traceB.Trace.String()+".json")
	var data []byte
	for wait := time.Now().Add(5 * time.Second); ; {
		var err error
		if data, err = os.ReadFile(dumpPath); err == nil {
			break
		}
		if time.Now().After(wait) {
			entries, _ := os.ReadDir(flightDir)
			t.Fatalf("no flight dump at %s (dir has %d entries)", dumpPath, len(entries))
		}
		time.Sleep(2 * time.Millisecond)
	}
	dump := string(data)
	if !strings.Contains(dump, `"reason": "deadline"`) {
		t.Fatalf("dump reason wrong:\n%s", dump)
	}
	for _, want := range []string{traceB.Trace.String(), "serve/request", "serve/queue", "serve/process"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("flight dump missing %q:\n%s", want, dump)
		}
	}
	// The healthy job must not have been dumped.
	entries, err := os.ReadDir(flightDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("flight dir has %d dumps, want only the deadlined request", len(entries))
	}

	if err := s.Drain(drainCtx(t, 5*time.Second)); err != nil {
		t.Fatal(err)
	}
}

// TestDisabledTracingEmitsNoTraceparent pins the opt-in contract: with
// span collection off, responses carry no trace headers and nothing is
// recorded.
func TestDisabledTracingEmitsNoTraceparent(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	s, ts := startServer(t, Config{
		Workers: 1, QueueDepth: 2, CacheSize: -1,
		Process: func(v *volume.Volume) core.Result { return core.Result{Probability: 0.5} },
	})
	resp, view := submit(t, ts, uniqueVolumes(1)[0], 0)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if tp := resp.Header.Get("Traceparent"); tp != "" {
		t.Fatalf("disabled tracing must not emit traceparent, got %q", tp)
	}
	poll(t, ts, view.ID, 5*time.Second)
	if recs, _ := obs.TraceRecords(); len(recs) != 0 {
		t.Fatalf("disabled tracing recorded %d spans", len(recs))
	}
	if err := s.Drain(drainCtx(t, 5*time.Second)); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsExposeBuildInfoAndSLO pins the /metrics additions: the
// constant build_info gauge with identity labels and the SLO budget
// gauges recomputed per scrape.
func TestMetricsExposeBuildInfoAndSLO(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	s, ts := startServer(t, Config{
		Workers: 1, QueueDepth: 2, CacheSize: -1,
		Process: func(v *volume.Volume) core.Result { return core.Result{Probability: 0.5} },
	})
	_, view := submit(t, ts, uniqueVolumes(1)[0], 0)
	poll(t, ts, view.ID, 5*time.Second)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	out := buf.String()
	for _, want := range []string{
		`build_info{`, `go_version="go`, `rungs="`,
		`slo_latency_budget_remaining{slo="scan"} 1`,
		`slo_error_budget_remaining{slo="scan"} 1`,
		`slo_requests_good_total{slo="scan"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
	if err := s.Drain(drainCtx(t, 5*time.Second)); err != nil {
		t.Fatal(err)
	}
}

// scanBody marshals a volume into the POST /v1/scan JSON body.
func scanBody(t *testing.T, v *volume.Volume) string {
	t.Helper()
	body, err := json.Marshal(ScanRequest{D: v.D, H: v.H, W: v.W, Data: v.Data})
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// decodeBody decodes and closes an HTTP response body.
func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
