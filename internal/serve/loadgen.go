package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"computecovid19/internal/obs"
	"computecovid19/internal/volume"
)

// LoadOptions drives RunLoad, the closed-loop load generator behind
// cmd/ccbench's BENCH_serve.json.
type LoadOptions struct {
	// Requests is the total number of scans to submit.
	Requests int
	// Concurrency is the number of closed-loop clients.
	Concurrency int
	// Volumes are the request bodies, cycled through by the clients.
	Volumes []*volume.Volume
	// Perturb adds one ±1 HU voxel of client-local noise per request so
	// every submission is unique and the run measures the pipeline, not
	// the result cache. Each client perturbs with its own injected
	// *rand.Rand — no shared source, no lock contention.
	Perturb bool
	// Seed derives the per-client RNGs.
	Seed int64
	// PollInterval is the result-poll period (default 2 ms).
	PollInterval time.Duration
}

// LoadReport is the machine-readable outcome of a load run — the
// requests/sec and latency-percentile trajectory ccbench tracks across
// PRs, plus the batch-size distribution the micro-batcher achieved.
type LoadReport struct {
	Requests    int     `json:"requests"`
	Completed   int     `json:"completed"`
	Rejected    int     `json:"rejected"`
	Failed      int     `json:"failed"`
	Concurrency int     `json:"concurrency"`
	Seconds     float64 `json:"seconds"`
	RPS         float64 `json:"rps"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	// MeanBatch is the average micro-batch size over the run; Batches is
	// the per-bucket (≤ upper edge) count distribution.
	MeanBatch float64           `json:"mean_batch"`
	Batches   map[string]uint64 `json:"batch_size_buckets,omitempty"`
}

// RunLoad hammers a started Server through its real HTTP handler with
// Concurrency closed-loop clients and reports throughput, latency
// percentiles, and the observed batch-size distribution. Rejected (429)
// submissions are retried after the advertised backoff, so every request
// eventually lands unless it fails outright.
func RunLoad(s *Server, opt LoadOptions) (LoadReport, error) {
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	return RunLoadURLs([]string{ts.URL}, opt)
}

// RunLoadURLs is RunLoad against already-listening targets: each
// closed-loop client is pinned round-robin to one of the base URLs and
// submits + polls there, so the generator can drive a single server, a
// gateway, or the replicas of a cluster directly (the BENCH_cluster.json
// path).
func RunLoadURLs(urls []string, opt LoadOptions) (LoadReport, error) {
	if len(urls) == 0 {
		return LoadReport{}, fmt.Errorf("serve: RunLoadURLs needs at least one target URL")
	}
	if len(opt.Volumes) == 0 {
		return LoadReport{}, fmt.Errorf("serve: RunLoad needs at least one volume")
	}
	if opt.Requests <= 0 {
		opt.Requests = 64
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = 8
	}
	if opt.PollInterval <= 0 {
		opt.PollInterval = 2 * time.Millisecond
	}

	batchCountBefore, batchSumBefore := batchSizeHist.Count(), batchSizeHist.Sum()
	batchCumBefore := batchSizeHist.Cumulative()

	var (
		mu        sync.Mutex
		latencies []float64
		rejected  int
		failed    int
	)
	next := make(chan int)
	go func() {
		for i := 0; i < opt.Requests; i++ {
			next <- i
		}
		close(next)
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < opt.Concurrency; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opt.Seed + int64(client)))
			httpc := &http.Client{}
			baseURL := urls[client%len(urls)]
			for i := range next {
				lat, retries, err := submitAndWait(httpc, baseURL, opt, rng, i)
				mu.Lock()
				rejected += retries
				if err != nil {
					failed++
				} else {
					latencies = append(latencies, lat.Seconds()*1e3)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := LoadReport{
		Requests:    opt.Requests,
		Completed:   len(latencies),
		Rejected:    rejected,
		Failed:      failed,
		Concurrency: opt.Concurrency,
		Seconds:     elapsed,
		RPS:         float64(len(latencies)) / elapsed,
		P50MS:       percentile(latencies, 0.50),
		P95MS:       percentile(latencies, 0.95),
		P99MS:       percentile(latencies, 0.99),
	}
	if n := batchSizeHist.Count() - batchCountBefore; n > 0 {
		rep.MeanBatch = (batchSizeHist.Sum() - batchSumBefore) / float64(n)
		rep.Batches = batchDelta(batchSizeHist.Bounds(), batchCumBefore, batchSizeHist.Cumulative())
	}
	return rep, nil
}

// submitAndWait posts one scan and polls until it completes, retrying
// 429s after the advertised Retry-After-style backoff (scaled down for
// in-process runs). It returns the end-to-end latency and how many 429s
// were absorbed along the way.
func submitAndWait(httpc *http.Client, baseURL string, opt LoadOptions, rng *rand.Rand, i int) (time.Duration, int, error) {
	v := opt.Volumes[i%len(opt.Volumes)]
	req := ScanRequest{D: v.D, H: v.H, W: v.W, Data: v.Data}
	if opt.Perturb {
		data := append([]float32(nil), v.Data...)
		data[rng.Intn(len(data))] += float32(rng.Float64()*2 - 1)
		req.Data = data
	}
	body, _ := json.Marshal(req)

	start := time.Now()
	retries := 0
	var view JobView
	for {
		resp, err := httpc.Post(baseURL+"/v1/scan", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, retries, err
		}
		if resp.StatusCode == http.StatusTooManyRequests ||
			(resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "") {
			resp.Body.Close()
			retries++
			time.Sleep(opt.PollInterval)
			continue
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return 0, retries, fmt.Errorf("submit: status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			resp.Body.Close()
			return 0, retries, err
		}
		resp.Body.Close()
		break
	}
	for view.State != StateDone && view.State != StateFailed {
		time.Sleep(opt.PollInterval)
		resp, err := httpc.Get(baseURL + "/v1/scan/" + view.ID)
		if err != nil {
			return 0, retries, err
		}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			resp.Body.Close()
			return 0, retries, err
		}
		resp.Body.Close()
	}
	if view.State == StateFailed {
		return 0, retries, fmt.Errorf("scan %s failed: %s", view.ID, view.Error)
	}
	return time.Since(start), retries, nil
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	vals := append([]float64(nil), sorted...)
	sort.Float64s(vals)
	idx := int(math.Ceil(p*float64(len(vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}

// batchDelta converts two cumulative histogram snapshots into the
// per-bucket counts observed between them, keyed by upper bucket edge.
func batchDelta(bounds []float64, before, after []uint64) map[string]uint64 {
	out := make(map[string]uint64)
	prevB, prevA := uint64(0), uint64(0)
	for i := range after {
		le := "+Inf"
		if i < len(bounds) {
			le = fmt.Sprintf("%g", bounds[i])
		}
		b, a := uint64(0), uint64(0)
		if i < len(before) {
			b = before[i]
		}
		a = after[i]
		if d := (a - prevA) - (b - prevB); d > 0 {
			out["le_"+le] = d
		}
		prevB, prevA = b, a
	}
	return out
}

// WriteBenchJSON writes the report as indented JSON plus the counters
// matching the given name prefixes — the BENCH_serve.json /
// BENCH_cluster.json format. With no prefixes it keeps the serving
// counters only.
func (r LoadReport) WriteBenchJSON(path string, prefixes ...string) error {
	type benchFile struct {
		LoadReport
		Counters map[string]uint64 `json:"counters"`
	}
	if len(prefixes) == 0 {
		prefixes = []string{"serve_"}
	}
	dump := obs.Default.Snapshot()
	counters := make(map[string]uint64)
	for name, v := range dump.Counters {
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				counters[name] = v
				break
			}
		}
	}
	data, err := json.MarshalIndent(benchFile{LoadReport: r, Counters: counters}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
