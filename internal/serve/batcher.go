package serve

import (
	"context"
	"time"

	"computecovid19/internal/ddnet"
	"computecovid19/internal/memplan"
	"computecovid19/internal/obs"
	"computecovid19/internal/tensor"
)

// batcher is the micro-batching scheduler for Enhancement AI. Workers
// submit normalized slices from the scans they are processing; the
// batcher groups them — across scans — into one (N, 1, H, W) DDnet
// forward pass per batch. A batch departs when it fills to size or when
// its oldest slice has waited timeout, mirroring the fill-or-timeout
// batching the workflow simulator models for RT-PCR thermocycler plates.
//
// The batcher goroutine is the only code that touches the enhancement
// network, so the shared weights need no locking; EnhanceBatch is
// bit-identical to the single-slice path, so batching never changes
// results.
type batcher struct {
	net     *ddnet.DDnet
	mem     *memplan.Arena // activations, output slices, and retired inputs
	size    int
	timeout time.Duration
	reqs    chan enhReq
	done    chan struct{}
}

// enhReq is one slice awaiting enhancement. out is buffered (capacity
// one), so the batcher never blocks delivering a result. sc is the
// submitting scan's enhance-span identity (zero when tracing is off);
// the batch span links it, tying the batch trace back to the request
// traces it serves.
type enhReq struct {
	img *tensor.Tensor
	out chan *tensor.Tensor
	sc  obs.SpanContext
}

func newBatcher(net *ddnet.DDnet, size int, timeout time.Duration) *batcher {
	return &batcher{
		net:     net,
		mem:     memplan.New(),
		size:    size,
		timeout: timeout,
		// Room for several in-flight scans' worth of slices before
		// submitters block; the batcher drains continuously either way.
		reqs: make(chan enhReq, 8*size),
		done: make(chan struct{}),
	}
}

// submit queues one normalized (H, W) slice and returns the channel its
// enhanced slice will arrive on. Callers submit all their slices before
// receiving any result, so slices from one scan can fill a batch.
func (b *batcher) submit(img *tensor.Tensor, sc obs.SpanContext) chan *tensor.Tensor {
	out := make(chan *tensor.Tensor, 1)
	b.reqs <- enhReq{img: img, out: out, sc: sc}
	return out
}

// stop closes the intake and waits for the final flush.
func (b *batcher) stop() {
	close(b.reqs)
	<-b.done
}

func (b *batcher) run() {
	defer close(b.done)
	var pending []enhReq
	var oldest time.Time
	flush := func() {
		if len(pending) == 0 {
			return
		}
		// The batch span roots its own trace — it serves many requests,
		// so it belongs to none of their traces. Each distinct request
		// trace is attached as a link instead (rendered as a flow arrow
		// in the Chrome exporter).
		sp := obs.Start("serve/enhance_batch")
		sp.SetAttr("batch", len(pending))
		if sp != nil {
			seen := make(map[obs.SpanContext]bool, len(pending))
			for _, r := range pending {
				if !r.sc.IsZero() && !seen[r.sc] {
					seen[r.sc] = true
					sp.Link(r.sc)
				}
			}
			sp.SetAttr("scans", len(seen))
		}
		start := time.Now()
		h, w := pending[0].img.Shape[0], pending[0].img.Shape[1]
		imgs := make([]*tensor.Tensor, len(pending))
		outs := make([]*tensor.Tensor, len(pending))
		for i, r := range pending {
			imgs[i] = r.img
			outs[i] = b.mem.Get(h, w)
		}
		// The forward pass and the output slices draw on the batcher
		// arena; the submitted inputs retire into it afterwards (workers
		// hand ownership over at submit). The receiving worker releases
		// each output slice into its own arena once copied out.
		b.net.EnhanceBatchInto(obs.ContextWithSpan(context.Background(), sp), b.mem, imgs, outs)
		for _, r := range pending {
			b.mem.Release(r.img)
		}
		enhanceBatchSeconds.Observe(time.Since(start).Seconds())
		batchSizeHist.Observe(float64(len(pending)))
		for i, r := range pending {
			r.out <- outs[i]
		}
		pending = pending[:0]
		sp.End()
	}
	for {
		var expiry <-chan time.Time
		if len(pending) > 0 {
			expiry = time.After(time.Until(oldest.Add(b.timeout)))
		}
		select {
		case r, ok := <-b.reqs:
			if !ok {
				flush()
				return
			}
			// Mixed slice geometries cannot share a forward pass; flush
			// the current batch on a shape change.
			if len(pending) > 0 && !sameShape(r.img, pending[0].img) {
				flush()
			}
			if len(pending) == 0 {
				oldest = time.Now()
			}
			pending = append(pending, r)
			if len(pending) >= b.size {
				flush()
			}
		case <-expiry:
			flush()
		}
	}
}

func sameShape(a, b *tensor.Tensor) bool {
	return a.Shape[0] == b.Shape[0] && a.Shape[1] == b.Shape[1]
}
