package serve

import (
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"computecovid19/internal/core"
	"computecovid19/internal/volume"
)

// TestRunLoadURLsRoundRobin pins the multi-target contract: clients are
// assigned to base URLs round-robin, so with two targets and an even
// client count both servers carry traffic and every request completes.
func TestRunLoadURLsRoundRobin(t *testing.T) {
	const targets = 2
	var servers [targets]*Server
	var counts [targets]atomic.Int64
	urls := make([]string, targets)
	for i := 0; i < targets; i++ {
		i := i
		s, err := New(Config{
			Workers: 2, QueueDepth: 32, CacheSize: -1,
			Process: func(v *volume.Volume) core.Result {
				counts[i].Add(1)
				return core.Result{Probability: 0.5}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		servers[i] = s
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}

	rep, err := RunLoadURLs(urls, LoadOptions{
		Requests:    24,
		Concurrency: 4,
		Volumes:     uniqueVolumes(3),
		Perturb:     true,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || rep.Completed != rep.Requests {
		t.Fatalf("completed %d / failed %d of %d", rep.Completed, rep.Failed, rep.Requests)
	}
	for i := range counts {
		if counts[i].Load() == 0 {
			t.Fatalf("target %d received no traffic (counts %d / %d)",
				i, counts[0].Load(), counts[1].Load())
		}
	}
	if got := counts[0].Load() + counts[1].Load(); got != int64(rep.Requests) {
		t.Fatalf("targets processed %d scans, want %d", got, rep.Requests)
	}
	for _, s := range servers {
		if err := s.Drain(drainCtx(t, 10*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
}
