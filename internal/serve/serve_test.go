package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"computecovid19/internal/classify"
	"computecovid19/internal/core"
	"computecovid19/internal/dataset"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/volume"
)

// testCohort builds tiny phantom volumes sized for SmallConfig.
func testCohort(t *testing.T, count int, seed int64) []dataset.Case {
	t.Helper()
	cfg := dataset.DefaultCohortConfig()
	cfg.Count = count
	cfg.Size = 32
	cfg.Depth = 8
	cfg.Seed = seed
	return dataset.BuildCohort(cfg)
}

func testPipeline(t *testing.T, withEnhancer bool, seed int64) *core.Pipeline {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var enh *ddnet.DDnet
	if withEnhancer {
		enh = ddnet.New(rng, ddnet.TinyConfig())
	}
	return core.NewPipeline(enh, classify.New(rng, classify.SmallConfig()))
}

func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, v *volume.Volume, deadlineMS int) (*http.Response, JobView) {
	t.Helper()
	body, err := json.Marshal(ScanRequest{D: v.D, H: v.H, W: v.W, Data: v.Data, DeadlineMS: deadlineMS})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/scan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
	}
	return resp, view
}

func poll(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(ts.URL + "/v1/scan/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var view JobView
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			resp.Body.Close()
			t.Fatal(err)
		}
		resp.Body.Close()
		if view.State == StateDone || view.State == StateFailed {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("scan %s still %s after %v", id, view.State, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestEndToEnd runs the real pipeline — batched DDnet enhancement,
// segmentation, classification — behind the HTTP API on tiny phantom
// volumes: submit, poll, and check the diagnosis agrees with calling the
// pipeline directly.
func TestEndToEnd(t *testing.T) {
	p := testPipeline(t, true, 1)
	cases := testCohort(t, 2, 3)
	s, ts := startServer(t, Config{
		Pipeline: p, Workers: 2, QueueDepth: 8, BatchSize: 4,
		BatchTimeout: time.Millisecond, CacheSize: -1,
	})

	for i, c := range cases {
		resp, view := submit(t, ts, c.Volume, 0)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("case %d: submit status %d", i, resp.StatusCode)
		}
		got := poll(t, ts, view.ID, 30*time.Second)
		if got.State != StateDone || got.Result == nil {
			t.Fatalf("case %d: %+v", i, got)
		}
		if got.Result.Probability < 0 || got.Result.Probability > 1 {
			t.Fatalf("case %d: probability %v", i, got.Result.Probability)
		}
		if got.Result.Positive != (got.Result.Probability >= p.Threshold) {
			t.Fatalf("case %d: positive flag inconsistent", i)
		}
		// The served result must match the offline pipeline exactly: the
		// micro-batched enhancement path is bit-identical to Diagnose.
		want := p.Diagnose(c.Volume)
		if got.Result.Probability != want.Probability {
			t.Fatalf("case %d: served %v != offline %v", i, got.Result.Probability, want.Probability)
		}
	}
	if err := s.Drain(drainCtx(t, 10*time.Second)); err != nil {
		t.Fatal(err)
	}
}

func drainCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// TestQueueFullBackpressure pins the 429 path: one blocked worker, a
// queue of one, and a third submission must be rejected with
// Retry-After.
func TestQueueFullBackpressure(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s, ts := startServer(t, Config{
		Workers: 1, QueueDepth: 1, CacheSize: -1,
		Process: func(v *volume.Volume) core.Result {
			started <- struct{}{}
			<-release
			return core.Result{Probability: 0.5}
		},
	})
	vols := uniqueVolumes(3)

	respA, viewA := submit(t, ts, vols[0], 0)
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", respA.StatusCode)
	}
	<-started // worker now busy with A
	respB, viewB := submit(t, ts, vols[1], 0)
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit should queue: %d", respB.StatusCode)
	}
	respC, _ := submit(t, ts, vols[2], 0)
	if respC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit should be rejected, got %d", respC.StatusCode)
	}
	if respC.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}

	close(release)
	for _, id := range []string{viewA.ID, viewB.ID} {
		if got := poll(t, ts, id, 5*time.Second); got.State != StateDone {
			t.Fatalf("job %s: %+v", id, got)
		}
	}
	if err := s.Drain(drainCtx(t, 5*time.Second)); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlineExceeded pins the deadline path: a job whose deadline
// expires while it waits behind a blocked worker fails instead of
// wasting pipeline time.
func TestDeadlineExceeded(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s, ts := startServer(t, Config{
		Workers: 1, QueueDepth: 4, CacheSize: -1,
		Process: func(v *volume.Volume) core.Result {
			started <- struct{}{}
			<-release
			return core.Result{Probability: 0.5}
		},
	})
	vols := uniqueVolumes(2)

	_, viewA := submit(t, ts, vols[0], 0)
	<-started
	respB, viewB := submit(t, ts, vols[1], 1) // 1 ms deadline, stuck in queue
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("deadline submit: %d", respB.StatusCode)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)

	if got := poll(t, ts, viewB.ID, 5*time.Second); got.State != StateFailed ||
		!strings.Contains(got.Error, "deadline exceeded") {
		t.Fatalf("deadlined job: %+v", got)
	}
	if got := poll(t, ts, viewA.ID, 5*time.Second); got.State != StateDone {
		t.Fatalf("unbounded job: %+v", got)
	}
	if err := s.Drain(drainCtx(t, 5*time.Second)); err != nil {
		t.Fatal(err)
	}
}

// TestCacheHit pins the O(1) re-submission path: the second submission
// of an identical volume completes synchronously from the cache.
func TestCacheHit(t *testing.T) {
	p := testPipeline(t, false, 5)
	cases := testCohort(t, 1, 7)
	s, ts := startServer(t, Config{Pipeline: p, Workers: 1, QueueDepth: 4, CacheSize: 8})

	_, first := submit(t, ts, cases[0].Volume, 0)
	done := poll(t, ts, first.ID, 30*time.Second)
	if done.State != StateDone {
		t.Fatalf("first submission: %+v", done)
	}

	resp, second := submit(t, ts, cases[0].Volume, 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache hit should answer 200, got %d", resp.StatusCode)
	}
	if !second.Cached || second.State != StateDone || second.Result == nil {
		t.Fatalf("cache hit view: %+v", second)
	}
	if second.Result.Probability != done.Result.Probability {
		t.Fatalf("cached %v != computed %v", second.Result.Probability, done.Result.Probability)
	}
	if err := s.Drain(drainCtx(t, 10*time.Second)); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentLoadAndDrain is the acceptance hammer: 64+ in-flight
// scans from 32 goroutines against the real pipeline (micro-batched
// enhancement included), zero dropped completions, and a clean drain —
// run under -race by make ci.
func TestConcurrentLoadAndDrain(t *testing.T) {
	p := testPipeline(t, true, 9)
	base := testCohort(t, 2, 11)
	const (
		clients  = 32
		requests = 64
	)
	s, ts := startServer(t, Config{
		Pipeline: p, Workers: 8, QueueDepth: requests, BatchSize: 8,
		BatchTimeout: time.Millisecond, CacheSize: -1,
	})

	ids := make([]string, requests)
	var wg sync.WaitGroup
	var mu sync.Mutex
	rejected := 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + int64(client)))
			for i := client; i < requests; i += clients {
				v := base[i%len(base)].Volume.Clone()
				v.Data[rng.Intn(len(v.Data))] += float32(rng.Float64()) // unique per request
				for {
					resp, view := submit(t, ts, v, 0)
					if resp.StatusCode == http.StatusTooManyRequests {
						mu.Lock()
						rejected++
						mu.Unlock()
						time.Sleep(5 * time.Millisecond)
						continue
					}
					if resp.StatusCode != http.StatusAccepted {
						t.Errorf("request %d: status %d", i, resp.StatusCode)
						return
					}
					ids[i] = view.ID
					break
				}
			}
		}(c)
	}
	wg.Wait()

	// Drain with everything still in flight: every accepted job must
	// finish.
	if err := s.Drain(drainCtx(t, 120*time.Second)); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i, id := range ids {
		if id == "" {
			t.Fatalf("request %d was never admitted", i)
		}
		view, ok := s.store.viewByID(id)
		if !ok {
			t.Fatalf("job %s dropped from store", id)
		}
		if view.State != StateDone || view.Result == nil {
			t.Fatalf("job %s did not complete: %+v", id, view)
		}
	}
	counts := s.store.counts()
	if counts[StateDone] != requests {
		t.Fatalf("done=%d want %d (counts %v, rejected %d)", counts[StateDone], requests, counts, rejected)
	}

	// After drain: readiness off, new submissions refused.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %d", resp.StatusCode)
	}
	late, _ := submit(t, ts, base[0].Volume, 0)
	if late.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: %d", late.StatusCode)
	}
}

// TestHTTPValidationAndMetrics covers the 400/404/413 edges and the
// /metrics + /healthz endpoints.
func TestHTTPValidationAndMetrics(t *testing.T) {
	s, ts := startServer(t, Config{
		Workers: 1, QueueDepth: 2, MaxVoxels: 64, CacheSize: -1,
		Process: func(v *volume.Volume) core.Result { return core.Result{Probability: 0.1} },
	})

	for name, body := range map[string]string{
		"bad json":    "{",
		"zero dims":   `{"d":0,"h":4,"w":4,"data":[]}`,
		"length skew": `{"d":1,"h":2,"w":2,"data":[1,2,3]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/scan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d", name, resp.StatusCode)
		}
	}
	big := volume.New(2, 8, 8) // 128 voxels > MaxVoxels 64
	resp, _ := submit(t, ts, big, 0)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized volume: %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/scan/scan-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: %d", resp.StatusCode)
	}
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(buf.String(), "serve_admitted_total") {
		t.Fatal("metrics exposition missing serve_admitted_total")
	}
	if err := s.Drain(drainCtx(t, 5*time.Second)); err != nil {
		t.Fatal(err)
	}
}

// TestXCacheHeader pins the X-Cache response header the cluster gateway
// keys its affinity accounting on: a first submission announces "miss",
// an identical re-submission announces "hit".
func TestXCacheHeader(t *testing.T) {
	p := testPipeline(t, false, 13)
	cases := testCohort(t, 1, 17)
	s, ts := startServer(t, Config{Pipeline: p, Workers: 1, QueueDepth: 4, CacheSize: 8})

	resp, first := submit(t, ts, cases[0].Volume, 0)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first submission X-Cache = %q, want miss", got)
	}
	if done := poll(t, ts, first.ID, 30*time.Second); done.State != StateDone {
		t.Fatalf("first submission: %+v", done)
	}

	resp, _ = submit(t, ts, cases[0].Volume, 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-submission: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("re-submission X-Cache = %q, want hit", got)
	}
	if err := s.Drain(drainCtx(t, 10*time.Second)); err != nil {
		t.Fatal(err)
	}
}

// TestReadyzDuringDrain pins the drain-state contract the gateway's
// health ejection relies on: /readyz flips to 503 the moment Drain
// begins — while accepted scans are still finishing — not only after
// the drain completes, so a draining replica stops receiving traffic
// before it stops answering.
func TestReadyzDuringDrain(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s, ts := startServer(t, Config{
		Workers: 1, QueueDepth: 4, CacheSize: -1,
		Process: func(v *volume.Volume) core.Result {
			started <- struct{}{}
			<-release
			return core.Result{Probability: 0.5}
		},
	})

	_, view := submit(t, ts, uniqueVolumes(1)[0], 0)
	<-started // worker now mid-scan

	readyz := func() int {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := readyz(); got != http.StatusOK {
		t.Fatalf("readyz before drain: %d", got)
	}

	drainDone := make(chan error, 1)
	go func() { drainDone <- s.Drain(drainCtx(t, 10*time.Second)) }()
	// Draining turns true before Drain blocks on in-flight work; wait
	// for the flip, then confirm the server is mid-drain, not done.
	for wait := time.Now().Add(5 * time.Second); !s.Draining(); {
		if time.Now().After(wait) {
			t.Fatal("server never entered the draining state")
		}
		time.Sleep(time.Millisecond)
	}
	if got := readyz(); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", got)
	}
	select {
	case err := <-drainDone:
		t.Fatalf("drain finished with a scan still blocked (err %v)", err)
	default:
	}

	close(release)
	if err := <-drainDone; err != nil {
		t.Fatal(err)
	}
	if got := poll(t, ts, view.ID, 5*time.Second); got.State != StateDone {
		t.Fatalf("in-flight scan after drain: %+v", got)
	}
	if got := readyz(); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %d, want 503", got)
	}
}

// uniqueVolumes returns tiny distinct volumes (cache keys differ).
func uniqueVolumes(n int) []*volume.Volume {
	out := make([]*volume.Volume, n)
	for i := range out {
		v := volume.New(1, 2, 2)
		v.Data[0] = float32(i + 1)
		out[i] = v
	}
	return out
}
