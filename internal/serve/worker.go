package serve

import (
	"context"
	"fmt"
	"time"

	"computecovid19/internal/ctsim"
	"computecovid19/internal/memplan"
	"computecovid19/internal/obs"
	"computecovid19/internal/tensor"
	"computecovid19/internal/volume"
)

// worker is one replica loop: it pulls admitted jobs off the queue and
// runs the diagnostic pipeline on them. All workers share the warm
// pipeline's weights (read-only after Pipeline.Warm); enhancement routes
// through the micro-batcher, segmentation + classification run in the
// worker itself via core.Pipeline.ClassifyCtx.
func (s *Server) worker() {
	defer s.wg.Done()
	// Each worker stages its normalized slices from a private arena, so
	// workers never contend on pooled memory; steady-state scans of one
	// geometry circulate the same buffers between the worker and the
	// batcher without touching the heap.
	mem := memplan.New()
	for j := range s.queue {
		queueDepth.Add(-1)
		s.process(j, mem)
	}
}

func (s *Server) process(j *job, mem *memplan.Arena) {
	// The queue span ends at dequeue: its duration is the admission
	// wait. The process span covers this worker's share of the request.
	j.qspan.End()
	ctx := j.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sp := obs.StartCtx(ctx, "serve/process")
	s.store.setRunning(j)

	if !j.deadline.IsZero() && time.Now().After(j.deadline) {
		deadlinesTotal.Inc()
		s.failJob(ctx, j, sp, "deadline exceeded before processing began", "deadline")
		return
	}
	defer func() {
		if r := recover(); r != nil {
			s.failJob(ctx, j, sp, fmt.Sprintf("pipeline panic: %v", r), "panic")
		}
	}()

	var res ScanResult
	if s.cfg.Process != nil {
		r := s.cfg.Process(j.vol)
		res = ScanResult{Probability: r.Probability, Positive: r.Positive}
	} else {
		enhanced := j.vol
		if !j.preEnhanced {
			enhanced = s.enhanceVolume(ctx, mem, j.vol)
		}
		r := s.cfg.Pipeline.ClassifyCtx(ctx, enhanced)
		res = ScanResult{Probability: r.Probability, Positive: r.Positive}
		// The lung mask and (when enhancement ran) the enhanced volume
		// are this worker's to recycle. j.vol is the client's payload —
		// never pooled — so the no-enhancer and cache-hit paths stay
		// copy-safe.
		s.cfg.Pipeline.RecycleResult(r)
		if enhanced != j.vol {
			s.cfg.Pipeline.RecycleVolume(enhanced)
		}
	}

	if !j.deadline.IsZero() && time.Now().After(j.deadline) {
		deadlinesTotal.Inc()
		s.failJob(ctx, j, sp, "deadline exceeded during processing", "deadline")
		return
	}
	s.cache.put(j.key, res)
	s.store.finish(j, res)
	requestSeconds.Observe(time.Since(j.submitted).Seconds())
	s.endJobTrace(j, sp, false, "")
}

// failJob records a terminal failure: store state, a trace-correlated
// log line, the SLO error, and (for deadline/panic failures) a
// flight-recorder dump of the just-completed trace.
func (s *Server) failJob(ctx context.Context, j *job, sp *obs.Span, msg, reason string) {
	s.store.fail(j, msg)
	obs.Logger(ctx).Error("scan failed", "job", j.id, "reason", reason, "err", msg)
	s.endJobTrace(j, sp, true, reason)
}

// endJobTrace closes the request's remaining spans — the process span,
// then the request root LAST, so the flight recorder sees the trace
// complete exactly once — and feeds the SLO tracker.
func (s *Server) endJobTrace(j *job, sp *obs.Span, failed bool, reason string) {
	sp.End()
	j.span.End()
	s.slo.Observe(time.Since(j.submitted), failed)
	if failed && s.cfg.FlightDir != "" {
		obs.DumpFlightTrace(s.cfg.FlightDir, j.span.TraceID(), reason)
	}
}

// enhanceVolume runs Enhancement AI over an HU volume through the
// micro-batcher: all D slices are submitted up front (so one scan can
// fill a batch by itself) and collected in order. Every slice carries
// the scan's enhance-span identity, which the batch span links — the
// fan-in edge connecting N request traces to one batch trace. Input
// slices are staged from the worker arena (ownership moves to the
// batcher at submit), enhanced slices come back from the batcher arena
// and are released here after the copy-out, and the output volume comes
// from the pipeline's recycle pool. Without an enhancer the input
// volume passes through unchanged, matching core.Pipeline.Enhance
// semantics.
func (s *Server) enhanceVolume(ctx context.Context, mem *memplan.Arena, v *volume.Volume) *volume.Volume {
	if s.cfg.Enhance != nil {
		_, esp := obs.StartCtx(ctx, "serve/enhance")
		defer esp.End()
		esp.SetAttr("slices", v.D)
		return s.cfg.Enhance(v)
	}
	if s.batcher == nil {
		return v
	}
	_, esp := obs.StartCtx(ctx, "serve/enhance")
	defer esp.End()
	esp.SetAttr("slices", v.D)
	sc := esp.Context()
	p := s.cfg.Pipeline
	outs := make([]chan *tensor.Tensor, v.D)
	for z := 0; z < v.D; z++ {
		img := mem.Get(v.H, v.W)
		sl := v.Slice(z)
		for i, hu := range sl {
			img.Data[i] = float32(ctsim.NormalizeHU(float64(hu), p.WindowLo, p.WindowHi))
		}
		outs[z] = s.batcher.submit(img, sc)
	}
	out := p.GetVolume(v.D, v.H, v.W)
	for z := 0; z < v.D; z++ {
		enh := <-outs[z]
		dst := out.Slice(z)
		for i, val := range enh.Data {
			dst[i] = float32(ctsim.DenormalizeHU(float64(val), p.WindowLo, p.WindowHi))
		}
		mem.Release(enh)
	}
	return out
}
