package serve

import (
	"fmt"
	"time"

	"computecovid19/internal/ctsim"
	"computecovid19/internal/obs"
	"computecovid19/internal/tensor"
	"computecovid19/internal/volume"
)

// worker is one replica loop: it pulls admitted jobs off the queue and
// runs the diagnostic pipeline on them. All workers share the warm
// pipeline's weights (read-only after Pipeline.Warm); enhancement routes
// through the micro-batcher, segmentation + classification run in the
// worker itself via core.Pipeline.Classify.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		queueDepth.Add(-1)
		s.process(j)
	}
}

func (s *Server) process(j *job) {
	sp := obs.Start("serve/process")
	defer sp.End()
	s.store.setRunning(j)

	if !j.deadline.IsZero() && time.Now().After(j.deadline) {
		deadlinesTotal.Inc()
		s.store.fail(j, "deadline exceeded before processing began")
		return
	}
	defer func() {
		if r := recover(); r != nil {
			s.store.fail(j, fmt.Sprintf("pipeline panic: %v", r))
		}
	}()

	var res ScanResult
	if s.cfg.Process != nil {
		r := s.cfg.Process(j.vol)
		res = ScanResult{Probability: r.Probability, Positive: r.Positive}
	} else {
		enhanced := s.enhanceVolume(j.vol)
		r := s.cfg.Pipeline.Classify(enhanced)
		res = ScanResult{Probability: r.Probability, Positive: r.Positive}
	}

	if !j.deadline.IsZero() && time.Now().After(j.deadline) {
		deadlinesTotal.Inc()
		s.store.fail(j, "deadline exceeded during processing")
		return
	}
	s.cache.put(j.key, res)
	s.store.finish(j, res)
	requestSeconds.Observe(time.Since(j.submitted).Seconds())
}

// enhanceVolume runs Enhancement AI over an HU volume through the
// micro-batcher: all D slices are submitted up front (so one scan can
// fill a batch by itself) and collected in order. Without an enhancer
// the input volume passes through unchanged, matching
// core.Pipeline.Enhance semantics.
func (s *Server) enhanceVolume(v *volume.Volume) *volume.Volume {
	if s.batcher == nil {
		return v
	}
	p := s.cfg.Pipeline
	outs := make([]chan *tensor.Tensor, v.D)
	for z := 0; z < v.D; z++ {
		img := tensor.New(v.H, v.W)
		sl := v.Slice(z)
		for i, hu := range sl {
			img.Data[i] = float32(ctsim.NormalizeHU(float64(hu), p.WindowLo, p.WindowHi))
		}
		outs[z] = s.batcher.submit(img)
	}
	out := volume.New(v.D, v.H, v.W)
	for z := 0; z < v.D; z++ {
		enh := <-outs[z]
		dst := out.Slice(z)
		for i, val := range enh.Data {
			dst[i] = float32(ctsim.DenormalizeHU(float64(val), p.WindowLo, p.WindowHi))
		}
	}
	return out
}
