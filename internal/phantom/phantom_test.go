package phantom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChestSliceBasicAnatomy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewChest(rng, 64, 1)
	img := c.SliceHU(0)
	if len(img) != 64*64 {
		t.Fatalf("slice has %d pixels, want 4096", len(img))
	}
	// Corners are air.
	if img[0] != HUAir || img[63] != HUAir {
		t.Fatalf("corners = %v, %v; want air (%v)", img[0], img[63], HUAir)
	}
	// A pixel inside a lung should be strongly negative but above air.
	mask := c.LungMask(0)
	foundLung := false
	for i, inLung := range mask {
		if inLung {
			foundLung = true
			if img[i] < -950 || img[i] > -600 {
				t.Fatalf("lung pixel %d = %v HU, want ≈ %v", i, img[i], HULung)
			}
		}
	}
	if !foundLung {
		t.Fatal("no lung pixels in central slice")
	}
}

func TestChestDeterministicBySeed(t *testing.T) {
	a := NewChest(rand.New(rand.NewSource(7)), 32, 4)
	b := NewChest(rand.New(rand.NewSource(7)), 32, 4)
	va, vb := a.VolumeHU(), b.VolumeHU()
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("same seed produced different phantoms at %d", i)
		}
	}
	c := NewChest(rand.New(rand.NewSource(8)), 32, 4)
	diff := false
	vc := c.VolumeHU()
	for i := range va {
		if va[i] != vc[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical phantoms")
	}
}

func TestLesionsRaiseLungHU(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	healthy := NewChest(rng, 64, 8)
	sick := *healthy // same anatomy
	sick.Lesions = []Lesion{{
		Kind: GGO,
		CX:   healthy.lungR.cx, CY: healthy.lungR.cy, CZ: 0,
		RX: 25, RY: 25, RZ: 20,
	}}
	hImg := healthy.SliceHU(4)
	sImg := sick.SliceHU(4)
	var raised int
	for i := range hImg {
		if sImg[i] > hImg[i]+50 {
			raised++
		}
	}
	if raised < 10 {
		t.Fatalf("GGO lesion raised only %d pixels by > 50 HU", raised)
	}
	// Lesions must never push lung tissue above soft-tissue density.
	mask := sick.LungMask(4)
	for i, v := range sImg {
		if mask[i] && v > HUSoftTissue+3*textureAmplHU {
			t.Fatalf("lung pixel %d = %v HU exceeds soft tissue after lesion", i, v)
		}
	}
}

func TestConsolidationDenserThanGGO(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := NewChest(rng, 64, 4)
	mkMean := func(kind LesionKind) float64 {
		c := *base
		c.Lesions = []Lesion{{Kind: kind,
			CX: base.lungL.cx, CY: base.lungL.cy, CZ: 0, RX: 30, RY: 30, RZ: 30}}
		img := c.SliceHU(2)
		mask := c.LungMask(2)
		var s float64
		var n int
		for i, in := range mask {
			if in {
				s += float64(img[i])
				n++
			}
		}
		return s / float64(n)
	}
	if mkMean(Consolidation) <= mkMean(GGO) {
		t.Fatal("consolidation should be denser than GGO")
	}
}

func TestAddRandomLesionsInsideLungs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewChest(rng, 64, 8)
	c.AddRandomLesions(rng, 5, 0.8)
	if len(c.Lesions) != 5 {
		t.Fatalf("added %d lesions, want 5", len(c.Lesions))
	}
	if !c.HasLesions() {
		t.Fatal("HasLesions should be true")
	}
	for i, l := range c.Lesions {
		// Lesion centers must be roughly within the thorax.
		if math.Abs(l.CX) > 160 || math.Abs(l.CY) > 120 {
			t.Fatalf("lesion %d center (%v, %v) outside thorax", i, l.CX, l.CY)
		}
		if l.RX <= 0 || l.RY <= 0 || l.RZ <= 0 {
			t.Fatalf("lesion %d has non-positive radius", i)
		}
	}
}

func TestVolumeShape(t *testing.T) {
	c := NewChest(rand.New(rand.NewSource(5)), 32, 6)
	v := c.VolumeHU()
	if len(v) != 6*32*32 {
		t.Fatalf("volume has %d voxels, want %d", len(v), 6*32*32)
	}
}

func TestLungMaskMatchesAirDensity(t *testing.T) {
	c := NewChest(rand.New(rand.NewSource(6)), 64, 1)
	img := c.SliceHU(0)
	mask := c.LungMask(0)
	for i, in := range mask {
		if in && img[i] > -500 {
			t.Fatalf("masked lung pixel %d has HU %v (airway/lesion-free phantom)", i, img[i])
		}
	}
}

// Property: all HU values stay in the physically sensible range.
func TestHURangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewChest(rng, 32, 2)
		c.AddRandomLesions(rng, rng.Intn(4), 0.6)
		for _, v := range c.VolumeHU() {
			if v < -1001 || v > 1500 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the phantom is roughly left-right symmetric in lung
// placement — both lungs exist on opposite sides of the midline.
func TestTwoLungsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewChest(rng, 64, 1)
		mask := c.LungMask(0)
		left, right := 0, 0
		for row := 0; row < 64; row++ {
			for col := 0; col < 64; col++ {
				if mask[row*64+col] {
					if col < 32 {
						left++
					} else {
						right++
					}
				}
			}
		}
		return left > 50 && right > 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLesionKindString(t *testing.T) {
	if GGO.String() == "" || Consolidation.String() == "" || CrazyPaving.String() == "" {
		t.Fatal("lesion kinds must have names")
	}
	if LesionKind(99).String() != "unknown" {
		t.Fatal("unknown kind should say so")
	}
}
