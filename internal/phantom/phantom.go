// Package phantom generates procedural chest CT phantoms in Hounsfield
// units. It substitutes for the paper's clinical data sources (Mayo,
// BIMCV, MIDRC, LIDC — Table 1): anatomy is modelled with rotated
// ellipsoids (body, lungs, heart, spine, airway) plus smooth value-noise
// texture, and COVID-19 findings are injected as the radiological
// abnormalities Figure 1 of the paper illustrates — ground-glass
// opacities (GGO), consolidations, and crazy-paving-like texture.
//
// Everything is deterministic given the caller's *rand.Rand, so datasets
// are reproducible.
package phantom

import (
	"math"
	"math/rand"
)

// Tissue HU values used by the phantom (standard radiology numbers).
const (
	HUAir          = -1000.0
	HULung         = -820.0
	HUSoftTissue   = 40.0
	HUHeart        = 35.0
	HUBone         = 500.0
	HUAirway       = -990.0
	HUGGODelta     = 450.0 // raises lung toward ≈ -370 (ground-glass)
	HUConsolDelta  = 820.0 // raises lung toward ≈ 0 (consolidation)
	textureAmplHU  = 18.0
	textureCellPix = 7
)

// ellipsoid is a rotated (about z) solid with value painted over what is
// below it.
type ellipsoid struct {
	cx, cy, cz float64 // center, mm (cz relative to volume center)
	rx, ry, rz float64 // semi-axes, mm
	angle      float64 // rotation in the axial plane, radians
	hu         float64
}

func (e ellipsoid) contains(x, y, z float64) bool {
	ca, sa := math.Cos(e.angle), math.Sin(e.angle)
	xr := (x-e.cx)*ca + (y-e.cy)*sa
	yr := -(x-e.cx)*sa + (y-e.cy)*ca
	zr := z - e.cz
	return xr*xr/(e.rx*e.rx)+yr*yr/(e.ry*e.ry)+zr*zr/(e.rz*e.rz) <= 1
}

// LesionKind distinguishes the radiological abnormalities of Figure 1.
type LesionKind int

const (
	// GGO is a ground-glass opacity: hazy density increase.
	GGO LesionKind = iota
	// Consolidation is a dense opacity approaching soft-tissue HU.
	Consolidation
	// CrazyPaving is GGO with superimposed high-frequency septal
	// thickening texture.
	CrazyPaving
)

// String names the lesion kind.
func (k LesionKind) String() string {
	switch k {
	case GGO:
		return "ground-glass opacity"
	case Consolidation:
		return "consolidation"
	case CrazyPaving:
		return "crazy paving"
	default:
		return "unknown"
	}
}

// Lesion is one COVID-like finding placed inside a lung.
type Lesion struct {
	Kind       LesionKind
	CX, CY, CZ float64 // center, mm
	RX, RY, RZ float64 // semi-axes, mm
}

// deltaHU returns the peak HU elevation of the lesion.
func (l Lesion) deltaHU() float64 {
	switch l.Kind {
	case Consolidation:
		return HUConsolDelta
	default:
		return HUGGODelta
	}
}

// Chest is a procedural 3D chest phantom. Coordinates are millimetres
// with the isocenter at the volume center; the axial plane is x (right)
// × y (anterior), z runs along the patient axis.
type Chest struct {
	// Size is the axial resolution in pixels (Size × Size per slice).
	Size int
	// Depth is the number of axial slices.
	Depth int
	// FOV is the axial field of view in mm.
	FOV float64
	// SliceThickness is the z spacing in mm.
	SliceThickness float64
	// Lesions are the injected findings; empty means a healthy phantom.
	Lesions []Lesion

	body, lungL, lungR, heart, spine, airway ellipsoid
	noiseSeed                                int64
}

// NewChest builds a randomized but anatomically plausible chest phantom.
// Pass depth 1 for a single axial slice.
func NewChest(rng *rand.Rand, size, depth int) *Chest {
	c := &Chest{
		Size:           size,
		Depth:          depth,
		FOV:            360,
		SliceThickness: 2.5,
		noiseSeed:      rng.Int63(),
	}
	j := func(scale float64) float64 { return 1 + (rng.Float64()-0.5)*2*scale }

	zr := float64(depth) * c.SliceThickness // generous so mid slices are full
	lungRX := 62 * j(0.08)
	lungRY := 85 * j(0.08)
	sep := 72 * j(0.06)
	// The body is sized from the lung layout so the lungs always stay
	// enclosed in soft tissue, even at the outermost slices.
	c.body = ellipsoid{rx: (sep + lungRX) * 1.2, ry: (lungRY + 8) * 1.28, rz: zr * 2, hu: HUSoftTissue}
	c.lungL = ellipsoid{cx: -sep, cy: 5, rx: lungRX, ry: lungRY, rz: zr * 1.2,
		angle: 0.12 * j(1), hu: HULung}
	c.lungR = ellipsoid{cx: sep, cy: 5, rx: lungRX * 1.05, ry: lungRY, rz: zr * 1.2,
		angle: -0.12 * j(1), hu: HULung}
	c.heart = ellipsoid{cx: -14 * j(0.3), cy: -28, rx: 42 * j(0.1), ry: 36 * j(0.1),
		rz: zr, angle: 0.5, hu: HUHeart}
	c.spine = ellipsoid{cy: -88 * j(0.03), rx: 16, ry: 16, rz: zr * 2, hu: HUBone}
	c.airway = ellipsoid{cy: 30, rx: 8, ry: 8, rz: zr * 2, hu: HUAirway}
	return c
}

// AddRandomLesions places n random COVID-like lesions inside the lungs.
// severity in (0, 1] scales lesion size; typical values 0.3–1.0.
func (c *Chest) AddRandomLesions(rng *rand.Rand, n int, severity float64) {
	if severity <= 0 {
		severity = 0.5
	}
	for i := 0; i < n; i++ {
		lung := c.lungL
		if rng.Intn(2) == 1 {
			lung = c.lungR
		}
		// Peripheral and posterior predominance, as COVID-19 shows.
		r := 0.45 + 0.5*rng.Float64()
		theta := rng.Float64() * 2 * math.Pi
		l := Lesion{
			Kind: LesionKind(rng.Intn(3)),
			CX:   lung.cx + r*lung.rx*math.Cos(theta)*0.8,
			CY:   lung.cy + r*lung.ry*math.Sin(theta)*0.8 - 8,
			CZ:   (rng.Float64() - 0.5) * float64(c.Depth) * c.SliceThickness * 0.7,
			RX:   (10 + 22*rng.Float64()) * severity,
			RY:   (10 + 22*rng.Float64()) * severity,
			RZ:   (8 + 18*rng.Float64()) * severity,
		}
		c.Lesions = append(c.Lesions, l)
	}
}

// HasLesions reports whether the phantom is a COVID-positive case.
func (c *Chest) HasLesions() bool { return len(c.Lesions) > 0 }

// PixelSize returns the axial pixel pitch in mm.
func (c *Chest) PixelSize() float64 { return c.FOV / float64(c.Size) }

// zMM converts a slice index to a physical z coordinate.
func (c *Chest) zMM(z int) float64 {
	return (float64(z) + 0.5 - float64(c.Depth)/2) * c.SliceThickness
}

// SliceHU renders axial slice z as a Size×Size row-major HU image.
func (c *Chest) SliceHU(z int) []float32 {
	img := make([]float32, c.Size*c.Size)
	zmm := c.zMM(z)
	pix := c.PixelSize()
	half := float64(c.Size) / 2
	for row := 0; row < c.Size; row++ {
		y := (float64(row) + 0.5 - half) * pix
		for col := 0; col < c.Size; col++ {
			x := (float64(col) + 0.5 - half) * pix
			img[row*c.Size+col] = float32(c.huAt(x, y, zmm, row, col, z))
		}
	}
	return img
}

// VolumeHU renders the whole phantom as Depth row-major slices.
func (c *Chest) VolumeHU() []float32 {
	out := make([]float32, 0, c.Depth*c.Size*c.Size)
	for z := 0; z < c.Depth; z++ {
		out = append(out, c.SliceHU(z)...)
	}
	return out
}

// LungMask reports, for slice z, which pixels lie inside either lung
// (before lesions are painted) — the segmentation ground truth.
func (c *Chest) LungMask(z int) []bool {
	mask := make([]bool, c.Size*c.Size)
	zmm := c.zMM(z)
	pix := c.PixelSize()
	half := float64(c.Size) / 2
	for row := 0; row < c.Size; row++ {
		y := (float64(row) + 0.5 - half) * pix
		for col := 0; col < c.Size; col++ {
			x := (float64(col) + 0.5 - half) * pix
			mask[row*c.Size+col] = c.lungL.contains(x, y, zmm) || c.lungR.contains(x, y, zmm)
		}
	}
	return mask
}

func (c *Chest) huAt(x, y, z float64, row, col, slice int) float64 {
	hu := HUAir
	if !c.body.contains(x, y, z) {
		return hu
	}
	hu = c.body.hu + c.texture(row, col, slice)

	inLung := false
	if c.lungL.contains(x, y, z) || c.lungR.contains(x, y, z) {
		hu = HULung + c.texture(row, col, slice)*0.6
		inLung = true
	}
	if !inLung && c.heart.contains(x, y, z) {
		hu = c.heart.hu + c.texture(row, col, slice)*0.5
	}
	if c.spine.contains(x, y, z) {
		hu = c.spine.hu
	}
	if c.airway.contains(x, y, z) {
		hu = c.airway.hu
	}

	if inLung {
		for _, l := range c.Lesions {
			dx := (x - l.CX) / l.RX
			dy := (y - l.CY) / l.RY
			dz := (z - l.CZ) / l.RZ
			d2 := dx*dx + dy*dy + dz*dz
			if d2 < 4 {
				// Smooth Gaussian falloff toward the lesion border.
				w := math.Exp(-1.5 * d2)
				delta := l.deltaHU() * w
				if l.Kind == CrazyPaving {
					// Superimposed septal-thickening texture.
					delta *= 0.8 + 0.4*c.highFreqTexture(row, col, slice)
				}
				hu += delta
			}
		}
		if hu > HUSoftTissue {
			hu = HUSoftTissue // consolidation saturates at soft tissue
		}
	}
	return hu
}

// texture is smooth value noise: random values on a coarse lattice,
// bilinearly interpolated, amplitude ±textureAmplHU.
func (c *Chest) texture(row, col, slice int) float64 {
	cr, fr := row/textureCellPix, float64(row%textureCellPix)/textureCellPix
	cc, fc := col/textureCellPix, float64(col%textureCellPix)/textureCellPix
	v00 := c.lattice(cr, cc, slice)
	v01 := c.lattice(cr, cc+1, slice)
	v10 := c.lattice(cr+1, cc, slice)
	v11 := c.lattice(cr+1, cc+1, slice)
	top := v00 + fc*(v01-v00)
	bot := v10 + fc*(v11-v10)
	return (top + fr*(bot-top)) * textureAmplHU
}

// highFreqTexture is per-pixel hash noise in [0, 1) for crazy-paving
// septa.
func (c *Chest) highFreqTexture(row, col, slice int) float64 {
	return hashUnit(c.noiseSeed, int64(row)*73856093^int64(col)*19349663^int64(slice)*83492791)
}

// lattice returns a deterministic pseudo-random value in [-1, 1) for a
// coarse lattice point.
func (c *Chest) lattice(r, cc, slice int) float64 {
	return 2*hashUnit(c.noiseSeed, int64(r)*2654435761^int64(cc)*40503^int64(slice)*69069) - 1
}

// hashUnit maps (seed, key) to [0, 1) via a SplitMix64 round.
func hashUnit(seed, key int64) float64 {
	x := uint64(seed) ^ uint64(key)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
