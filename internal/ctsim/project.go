package ctsim

import (
	"math"

	"computecovid19/internal/parallel"
)

// ForwardProjectFan computes the fan-beam sinogram of a μ image
// (row-major, mm⁻¹) on grid g using Siddon ray tracing: one ray per
// (view, detector) pair from the point source to each detector cell
// center. Views cover 360° evenly. The work is parallelized over views.
func ForwardProjectFan(g Grid, mu []float32, fan FanGeometry) *Sinogram {
	if err := fan.Validate(); err != nil {
		panic(err)
	}
	sino := NewSinogram(fan.NumViews, fan.NumDetectors, fan.DetectorSpacing)
	parallel.ForEach(fan.NumViews, 0, func(v int) {
		beta := 2 * math.Pi * float64(v) / float64(fan.NumViews)
		cb, sb := math.Cos(beta), math.Sin(beta)
		// Source position and detector frame.
		sx, sy := fan.SOD*cb, fan.SOD*sb
		// Detector center sits SDD away from the source through the
		// isocenter; its axis e is perpendicular to the central ray.
		dcx, dcy := sx-fan.SDD*cb, sy-fan.SDD*sb
		ex, ey := -sb, cb
		row := sino.Row(v)
		for d := 0; d < fan.NumDetectors; d++ {
			u := (float64(d) - (float64(fan.NumDetectors)-1)/2) * fan.DetectorSpacing
			px, py := dcx+u*ex, dcy+u*ey
			row[d] = LineIntegral(g, mu, sx, sy, px, py)
		}
	})
	return sino
}

// ForwardProjectParallel computes the parallel-beam sinogram of a μ
// image with views spread evenly over 180°.
func ForwardProjectParallel(g Grid, mu []float32, pg ParallelGeometry) *Sinogram {
	sino := NewSinogram(pg.NumViews, pg.NumDetectors, pg.DetectorSpacing)
	// Rays must span the whole grid; half the FOV diagonal plus margin.
	reach := g.FOV()
	parallel.ForEach(pg.NumViews, 0, func(v int) {
		theta := math.Pi * float64(v) / float64(pg.NumViews)
		ct, st := math.Cos(theta), math.Sin(theta)
		row := sino.Row(v)
		for d := 0; d < pg.NumDetectors; d++ {
			t := (float64(d) - (float64(pg.NumDetectors)-1)/2) * pg.DetectorSpacing
			// Detector axis (ct, st); ray direction (-st, ct).
			cx, cy := t*ct, t*st
			row[d] = LineIntegral(g, mu, cx+reach*st, cy-reach*ct, cx-reach*st, cy+reach*ct)
		}
	})
	return sino
}
