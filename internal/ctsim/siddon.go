package ctsim

import "math"

// Siddon's algorithm (Siddon 1985, the paper's reference [39]) computes
// the exact radiological path of a ray through a pixel grid: the line
// integral of attenuation as the sum over traversed pixels of
// μ[pixel] × intersection length.

// RaySegment is one pixel traversal of a ray: the flat pixel index and
// the intersection length in millimetres.
type RaySegment struct {
	Index  int
	Length float64
}

// LineIntegral traces the ray from (x0,y0) to (x1,y1) (physical mm,
// isocenter origin) through the grid holding attenuation values mu
// (row-major, mm⁻¹) and returns ∫μ dl along the segment.
func LineIntegral(g Grid, mu []float32, x0, y0, x1, y1 float64) float64 {
	sum := 0.0
	traceRay(g, x0, y0, x1, y1, func(idx int, length float64) {
		sum += float64(mu[idx]) * length
	})
	return sum
}

// TraceRay returns the pixel segments the ray from (x0,y0) to (x1,y1)
// traverses, for testing and for building sparse system matrices.
func TraceRay(g Grid, x0, y0, x1, y1 float64) []RaySegment {
	var segs []RaySegment
	traceRay(g, x0, y0, x1, y1, func(idx int, length float64) {
		segs = append(segs, RaySegment{Index: idx, Length: length})
	})
	return segs
}

// traceRay walks the grid with an incremental Siddon/Amanatides-Woo
// traversal, invoking visit(pixelIndex, intersectionLength) for every
// pixel the ray crosses with positive length.
func traceRay(g Grid, x0, y0, x1, y1 float64, visit func(idx int, length float64)) {
	n := g.Size
	pix := g.PixelSize
	half := float64(n) / 2 * pix
	dx := x1 - x0
	dy := y1 - y0
	rayLen := math.Hypot(dx, dy)
	if rayLen == 0 {
		return
	}

	// Clip the parametric ray p(α) = p0 + α·d to the grid bounding box,
	// α in [0, 1].
	alphaMin, alphaMax := 0.0, 1.0
	clip := func(p0, d, lo, hi float64) bool {
		if d == 0 {
			return p0 >= lo && p0 <= hi
		}
		a1 := (lo - p0) / d
		a2 := (hi - p0) / d
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		if a1 > alphaMin {
			alphaMin = a1
		}
		if a2 < alphaMax {
			alphaMax = a2
		}
		return alphaMin <= alphaMax
	}
	if !clip(x0, dx, -half, half) || !clip(y0, dy, -half, half) {
		return
	}
	if alphaMax <= alphaMin {
		return
	}

	// Entry point and initial cell.
	ex := x0 + alphaMin*dx
	ey := y0 + alphaMin*dy
	col := int(math.Floor((ex + half) / pix))
	row := int(math.Floor((ey + half) / pix))
	clampCell := func(v int) int {
		if v < 0 {
			return 0
		}
		if v >= n {
			return n - 1
		}
		return v
	}
	col = clampCell(col)
	row = clampCell(row)

	// Parametric step to cross one cell in each axis, and the α of the
	// next crossing.
	var stepC, stepR int
	alphaX, alphaY := math.Inf(1), math.Inf(1)
	var dAlphaX, dAlphaY float64
	if dx > 0 {
		stepC = 1
		alphaX = ((float64(col+1))*pix - half - x0) / dx
		dAlphaX = pix / dx
	} else if dx < 0 {
		stepC = -1
		alphaX = ((float64(col))*pix - half - x0) / dx
		dAlphaX = -pix / dx
	}
	if dy > 0 {
		stepR = 1
		alphaY = ((float64(row+1))*pix - half - y0) / dy
		dAlphaY = pix / dy
	} else if dy < 0 {
		stepR = -1
		alphaY = ((float64(row))*pix - half - y0) / dy
		dAlphaY = -pix / dy
	}

	alpha := alphaMin
	for alpha < alphaMax-1e-12 {
		next := math.Min(math.Min(alphaX, alphaY), alphaMax)
		if length := (next - alpha) * rayLen; length > 0 {
			visit(row*n+col, length)
		}
		alpha = next
		if alpha >= alphaMax-1e-12 {
			break
		}
		// Advance across whichever plane we hit (both on a corner).
		if alphaX <= alphaY {
			col += stepC
			alphaX += dAlphaX
		} else {
			row += stepR
			alphaY += dAlphaY
		}
		if col < 0 || col >= n || row < 0 || row >= n {
			break
		}
	}
}
