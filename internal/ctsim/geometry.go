// Package ctsim implements the CT physics substrate the paper relies on
// to synthesize low-dose scans (§3.1.2): Siddon's ray-driven forward
// projection, Beer's-law transmission with Poisson noise, and filtered
// back projection (FBP) for both parallel-beam and the paper's fan-beam
// geometry (source–detector 1500 mm, source–isocenter 1000 mm, 720 views
// over 360°, 1024 detector pixels, monochromatic 60 keV source).
package ctsim

import "fmt"

// Grid describes the square reconstruction/phantom grid, centered on the
// isocenter.
type Grid struct {
	// Size is the number of pixels per side.
	Size int
	// PixelSize is the physical pixel pitch in millimetres.
	PixelSize float64
}

// FOV returns the physical field of view in millimetres.
func (g Grid) FOV() float64 { return float64(g.Size) * g.PixelSize }

// Center returns the physical coordinate of pixel center (row, col) with
// the grid centered at the origin; +x is to the right (columns), +y is
// up (rows counted upward).
func (g Grid) Center(row, col int) (x, y float64) {
	half := float64(g.Size) / 2
	return (float64(col) + 0.5 - half) * g.PixelSize,
		(float64(row) + 0.5 - half) * g.PixelSize
}

// FanGeometry describes a flat-panel fan-beam acquisition.
type FanGeometry struct {
	// SOD is the source-to-isocenter distance (mm).
	SOD float64
	// SDD is the source-to-detector distance (mm).
	SDD float64
	// NumDetectors is the number of detector pixels.
	NumDetectors int
	// DetectorSpacing is the detector pixel pitch (mm) on the physical
	// detector.
	DetectorSpacing float64
	// NumViews is the number of projections, spread evenly over 360°.
	NumViews int
}

// PaperFanGeometry returns the acquisition geometry from §3.1.2 of the
// paper, with the detector sized to cover a grid of the given field of
// view (mm).
func PaperFanGeometry(fov float64) FanGeometry {
	g := FanGeometry{
		SOD:          1000,
		SDD:          1500,
		NumDetectors: 1024,
		NumViews:     720,
	}
	// Magnification of the isocenter plane is SDD/SOD; cover the FOV
	// diagonal with a small margin.
	g.DetectorSpacing = fov * 1.5 * (g.SDD / g.SOD) / float64(g.NumDetectors)
	return g
}

// Validate reports whether the geometry is physically meaningful.
func (g FanGeometry) Validate() error {
	if g.SOD <= 0 || g.SDD <= g.SOD {
		return fmt.Errorf("ctsim: need 0 < SOD < SDD, got SOD=%g SDD=%g", g.SOD, g.SDD)
	}
	if g.NumDetectors <= 0 || g.NumViews <= 0 {
		return fmt.Errorf("ctsim: need positive detector and view counts")
	}
	if g.DetectorSpacing <= 0 {
		return fmt.Errorf("ctsim: need positive detector spacing")
	}
	return nil
}

// ParallelGeometry describes a parallel-beam acquisition with NumViews
// angles spread evenly over 180°.
type ParallelGeometry struct {
	NumDetectors    int
	DetectorSpacing float64
	NumViews        int
}

// DefaultParallelGeometry covers a grid of the given FOV with a small
// margin using the given detector and view counts.
func DefaultParallelGeometry(fov float64, detectors, views int) ParallelGeometry {
	return ParallelGeometry{
		NumDetectors:    detectors,
		DetectorSpacing: fov * 1.2 / float64(detectors),
		NumViews:        views,
	}
}

// Sinogram holds line-integral projection data: Views rows of Det
// detector samples.
type Sinogram struct {
	Views, Det int
	// Data is row-major: Data[view*Det + det], in units of integrated
	// attenuation (dimensionless).
	Data []float64
	// DetSpacing is the detector sample pitch in mm (physical detector
	// for fan data, isocenter plane for parallel data).
	DetSpacing float64
}

// NewSinogram allocates a zero sinogram.
func NewSinogram(views, det int, spacing float64) *Sinogram {
	return &Sinogram{Views: views, Det: det, Data: make([]float64, views*det), DetSpacing: spacing}
}

// At returns the sample for (view, det).
func (s *Sinogram) At(view, det int) float64 { return s.Data[view*s.Det+det] }

// Set stores a sample for (view, det).
func (s *Sinogram) Set(view, det int, v float64) { s.Data[view*s.Det+det] = v }

// Row returns the detector row for one view (a live slice).
func (s *Sinogram) Row(view int) []float64 { return s.Data[view*s.Det : (view+1)*s.Det] }

// Clone returns a deep copy.
func (s *Sinogram) Clone() *Sinogram {
	c := NewSinogram(s.Views, s.Det, s.DetSpacing)
	copy(c.Data, s.Data)
	return c
}
