package ctsim

import (
	"math"

	"computecovid19/internal/fft"
	"computecovid19/internal/parallel"
)

// FilterKind selects the reconstruction filter for FBP.
type FilterKind int

const (
	// RamLak is the ideal ramp filter (sharpest, noisiest).
	RamLak FilterKind = iota
	// SheppLogan is the ramp apodized by a sinc window (the usual
	// clinical default; the paper's reference [37] discusses both).
	SheppLogan
)

// rampKernel returns the discrete spatial filter kernel h[-n+1..n-1]
// (length 2n−1, center at index n−1) for detector spacing d.
func rampKernel(kind FilterKind, n int, d float64) []float64 {
	h := make([]float64, 2*n-1)
	c := n - 1
	switch kind {
	case RamLak:
		// Ramachandran–Lakshminarayanan: h[0]=1/(4d²), odd k: −1/(πkd)².
		h[c] = 1 / (4 * d * d)
		for k := 1; k < n; k++ {
			if k%2 == 1 {
				v := -1 / (math.Pi * math.Pi * float64(k) * float64(k) * d * d)
				h[c+k] = v
				h[c-k] = v
			}
		}
	case SheppLogan:
		// h[k] = −2 / (π²d²(4k²−1)).
		for k := -n + 1; k < n; k++ {
			h[c+k] = -2 / (math.Pi * math.Pi * d * d * (4*float64(k)*float64(k) - 1))
		}
	}
	return h
}

// filterBank precomputes the frequency response of the kernel for
// repeated row filtering via FFT.
type filterBank struct {
	n       int // detector count
	fftLen  int
	kernelF []complex128
	spacing float64
}

func newFilterBank(kind FilterKind, n int, spacing float64) *filterBank {
	kernel := rampKernel(kind, n, spacing)
	fftLen := fft.NextPow2(len(kernel) + n)
	kf := make([]complex128, fftLen)
	for i, v := range kernel {
		kf[i] = complex(v, 0)
	}
	fft.FFT(kf)
	return &filterBank{n: n, fftLen: fftLen, kernelF: kf, spacing: spacing}
}

// filterRow convolves one projection row with the ramp kernel and
// multiplies by the detector spacing (the dt of the filtering integral),
// writing the result in place.
func (fb *filterBank) filterRow(row []float64) {
	buf := make([]complex128, fb.fftLen)
	for i, v := range row {
		buf[i] = complex(v, 0)
	}
	fft.FFT(buf)
	for i := range buf {
		buf[i] *= fb.kernelF[i]
	}
	fft.IFFT(buf)
	// Linear convolution center: kernel center is at fb.n-1.
	for i := range row {
		row[i] = real(buf[i+fb.n-1]) * fb.spacing
	}
}

// FilterSinogram ramp-filters every view of s in place (parallel over
// views) with the given filter kind and the sinogram's own detector
// spacing.
func FilterSinogram(s *Sinogram, kind FilterKind) {
	fb := newFilterBank(kind, s.Det, s.DetSpacing)
	parallel.ForEach(s.Views, 0, func(v int) {
		fb.filterRow(s.Row(v))
	})
}

// interpRow linearly interpolates row at fractional detector index t.
func interpRow(row []float64, t float64) float64 {
	if t < 0 || t > float64(len(row)-1) {
		return 0
	}
	i := int(t)
	if i >= len(row)-1 {
		return row[len(row)-1]
	}
	f := t - float64(i)
	return row[i]*(1-f) + row[i+1]*f
}

// ReconstructParallel performs filtered back projection of a
// parallel-beam sinogram (views over 180°) onto grid g, returning a μ
// image (row-major, mm⁻¹).
func ReconstructParallel(s *Sinogram, g Grid, kind FilterKind) []float32 {
	filtered := s.Clone()
	FilterSinogram(filtered, kind)

	img := make([]float32, g.Size*g.Size)
	dTheta := math.Pi / float64(s.Views)
	center := (float64(s.Det) - 1) / 2

	// Precompute view angles.
	cs := make([]float64, s.Views)
	sn := make([]float64, s.Views)
	for v := 0; v < s.Views; v++ {
		theta := math.Pi * float64(v) / float64(s.Views)
		cs[v], sn[v] = math.Cos(theta), math.Sin(theta)
	}

	parallel.ForEach(g.Size, 0, func(row int) {
		for col := 0; col < g.Size; col++ {
			x, y := g.Center(row, col)
			acc := 0.0
			for v := 0; v < s.Views; v++ {
				t := x*cs[v] + y*sn[v]
				acc += interpRow(filtered.Row(v), t/s.DetSpacing+center)
			}
			img[row*g.Size+col] = float32(acc * dTheta)
		}
	})
	return img
}

// ReconstructFan performs flat-detector fan-beam FBP (Kak & Slaney
// §3.4.2) of a 360° fan sinogram onto grid g, returning a μ image.
//
// Steps: rebin detector coordinates to the virtual detector through the
// isocenter, apply the cosine pre-weight, ramp filter each view, then
// backproject with the 1/U² distance weight.
func ReconstructFan(s *Sinogram, g Grid, fan FanGeometry, kind FilterKind) []float32 {
	// Virtual detector spacing (detector scaled onto the isocenter plane).
	ds := s.DetSpacing * fan.SOD / fan.SDD
	center := (float64(s.Det) - 1) / 2

	weighted := s.Clone()
	weighted.DetSpacing = ds
	parallel.ForEach(s.Views, 0, func(v int) {
		row := weighted.Row(v)
		for d := range row {
			sCoord := (float64(d) - center) * ds
			row[d] *= fan.SOD / math.Hypot(fan.SOD, sCoord)
		}
	})
	FilterSinogram(weighted, kind)

	img := make([]float32, g.Size*g.Size)
	dBeta := 2 * math.Pi / float64(s.Views)
	cs := make([]float64, s.Views)
	sn := make([]float64, s.Views)
	for v := 0; v < s.Views; v++ {
		beta := 2 * math.Pi * float64(v) / float64(s.Views)
		cs[v], sn[v] = math.Cos(beta), math.Sin(beta)
	}

	parallel.ForEach(g.Size, 0, func(row int) {
		for col := 0; col < g.Size; col++ {
			x, y := g.Center(row, col)
			acc := 0.0
			for v := 0; v < s.Views; v++ {
				// Distance from the source plane along the central ray.
				dPerp := fan.SOD - (x*cs[v] + y*sn[v])
				if dPerp <= 0 {
					continue
				}
				// Position on the virtual detector and magnification.
				t := (-x*sn[v] + y*cs[v]) * fan.SOD / dPerp
				u := dPerp / fan.SOD
				acc += interpRow(weighted.Row(v), t/ds+center) / (u * u)
			}
			// The 360° scan measures every line twice; the ½ folds that
			// redundancy back into the parallel-beam normalization.
			img[row*g.Size+col] = float32(acc * dBeta / 2)
		}
	})
	return img
}

// MuImageToHU converts a reconstructed μ image to Hounsfield units.
func MuImageToHU(mu []float32) []float32 {
	out := make([]float32, len(mu))
	for i, v := range mu {
		out[i] = float32(MuToHU(float64(v)))
	}
	return out
}

// HUImageToMu converts an HU image to linear attenuation coefficients.
func HUImageToMu(hu []float32) []float32 {
	out := make([]float32, len(hu))
	for i, v := range hu {
		out[i] = float32(HUToMu(float64(v)))
	}
	return out
}
