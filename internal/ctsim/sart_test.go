package ctsim

import (
	"math"
	"math/rand"
	"testing"
)

func sartTestSetup(size int) (Grid, FanGeometry, []float32) {
	g := Grid{Size: size, PixelSize: 256.0 / float64(size)}
	fan := PaperFanGeometry(g.FOV())
	fan.NumDetectors = 2 * size
	fan.NumViews = 3 * size
	fan.DetectorSpacing = g.FOV() * 1.5 * (fan.SDD / fan.SOD) / float64(fan.NumDetectors)
	mu := diskPhantom(g, 70, 0.02)
	// Add an off-center feature so the test sees structure, not just DC.
	for r := 0; r < size; r++ {
		for c := 0; c < size; c++ {
			x, y := g.Center(r, c)
			if math.Hypot(x-30, y-10) < 20 {
				mu[r*size+c] = 0.028
			}
		}
	}
	return g, fan, mu
}

func interiorRMSE(g Grid, rec, truth []float32) float64 {
	var s float64
	var n int
	for r := 0; r < g.Size; r++ {
		for c := 0; c < g.Size; c++ {
			x, y := g.Center(r, c)
			if math.Hypot(x, y) < 60 {
				d := float64(rec[r*g.Size+c] - truth[r*g.Size+c])
				s += d * d
				n++
			}
		}
	}
	return math.Sqrt(s / float64(n))
}

func TestSARTReconstructsCleanData(t *testing.T) {
	g, fan, mu := sartTestSetup(32)
	sino := ForwardProjectFan(g, mu, fan)
	rec := ReconstructSARTFan(sino, g, fan, DefaultSART())
	if rmse := interiorRMSE(g, rec, mu); rmse > 0.002 {
		t.Fatalf("SART interior RMSE = %v, want < 0.002 (10%% of contrast)", rmse)
	}
}

func TestSARTConvergesWithIterations(t *testing.T) {
	g, fan, mu := sartTestSetup(32)
	sino := ForwardProjectFan(g, mu, fan)
	opt := DefaultSART()
	opt.Iterations = 1
	r1 := interiorRMSE(g, ReconstructSARTFan(sino, g, fan, opt), mu)
	opt.Iterations = 8
	r8 := interiorRMSE(g, ReconstructSARTFan(sino, g, fan, opt), mu)
	if r8 >= r1 {
		t.Fatalf("more iterations should reduce error: 1 iter %v, 8 iters %v", r1, r8)
	}
}

func TestSARTBeatsFBPAtLowDose(t *testing.T) {
	// The classical claim this module exists to demonstrate: at heavy
	// dose reduction, iterative reconstruction denoises better than
	// Ram-Lak FBP.
	g, fan, mu := sartTestSetup(32)
	sino := ForwardProjectFan(g, mu, fan)
	noisy := ApplyPoissonNoise(sino, 300, rand.New(rand.NewSource(1)))

	fbp := ReconstructFan(noisy, g, fan, RamLak)
	opt := DefaultSART()
	opt.Smooth = 0.35 // regularized iterative reconstruction
	sart := ReconstructSARTFan(noisy, g, fan, opt)

	fbpErr := interiorRMSE(g, fbp, mu)
	sartErr := interiorRMSE(g, sart, mu)
	if sartErr >= fbpErr {
		t.Fatalf("regularized SART (%v) should beat FBP (%v) at low dose", sartErr, fbpErr)
	}

	// Without the prior, SART converges toward the noisy least-squares
	// solution and loses — the regularization is load-bearing.
	pure := ReconstructSARTFan(noisy, g, fan, DefaultSART())
	if pureErr := interiorRMSE(g, pure, mu); pureErr <= sartErr {
		t.Fatalf("unregularized SART (%v) should be worse than regularized (%v) at low dose",
			pureErr, sartErr)
	}
}

func TestSARTWarmStartFromFBP(t *testing.T) {
	g, fan, mu := sartTestSetup(32)
	sino := ForwardProjectFan(g, mu, fan)
	fbp := ReconstructFan(sino, g, fan, RamLak)

	opt := DefaultSART()
	opt.Iterations = 2
	cold := interiorRMSE(g, ReconstructSARTFan(sino, g, fan, opt), mu)
	opt.Init = fbp
	warm := interiorRMSE(g, ReconstructSARTFan(sino, g, fan, opt), mu)
	if warm > cold {
		t.Fatalf("FBP warm start should not hurt after 2 iters: warm %v vs cold %v", warm, cold)
	}
}

func TestSARTNonNegativity(t *testing.T) {
	g, fan, mu := sartTestSetup(24)
	sino := ForwardProjectFan(g, mu, fan)
	noisy := ApplyPoissonNoise(sino, 1e3, rand.New(rand.NewSource(2)))
	rec := ReconstructSARTFan(noisy, g, fan, DefaultSART())
	for i, v := range rec {
		if v < 0 {
			t.Fatalf("pixel %d negative (%v) despite non-negativity constraint", i, v)
		}
	}
}

func TestSARTDefaultsApplied(t *testing.T) {
	g, fan, mu := sartTestSetup(16)
	sino := ForwardProjectFan(g, mu, fan)
	// Zero-valued options must fall back to defaults rather than loop
	// zero times.
	rec := ReconstructSARTFan(sino, g, fan, SARTOptions{})
	nonzero := false
	for _, v := range rec {
		if v != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("SART with zero options produced an empty image")
	}
}
