package ctsim

import (
	"math"

	"computecovid19/internal/parallel"
)

// SART implements the Simultaneous Algebraic Reconstruction Technique,
// the classical iterative alternative to FBP that the paper's related
// work (§6.3, reference [3]) positions against deep-learning
// enhancement. At reduced dose, SART's implicit regularization over
// many noisy rays typically beats plain Ram-Lak FBP, which makes it the
// natural classical baseline for DDnet's denoising ablation.
//
// The implementation is matched to ForwardProjectFan: rays are traced
// with the same Siddon kernel, so forward and back projections are exact
// transposes of one another.

// SARTOptions configures the iteration.
type SARTOptions struct {
	// Iterations is the number of full passes over all views.
	Iterations int
	// Relax is the relaxation factor λ (0 < λ ≤ 1); 0 defaults to 0.25.
	Relax float64
	// NonNegative clamps attenuation at zero after every update, a
	// physical constraint that accelerates convergence.
	NonNegative bool
	// Smooth blends each iterate with its 3×3 neighborhood mean
	// (0 = pure SART, 0.2–0.4 = regularized). Unregularized SART
	// converges toward the noisy least-squares solution, so at reduced
	// dose a smoothness prior — the "R" of clinical iterative
	// reconstruction — is what beats FBP.
	Smooth float64
	// Init is the starting image (nil = zeros). Passing the FBP result
	// gives "FBP-warm-started SART".
	Init []float32
}

// DefaultSART returns a configuration that converges well on chest-like
// images within ~10 iterations.
func DefaultSART() SARTOptions {
	return SARTOptions{Iterations: 10, Relax: 0.25, NonNegative: true}
}

// ReconstructSARTFan reconstructs a μ image from a fan-beam sinogram by
// SART: per view, the residual between measured and forward-projected
// line integrals is back-distributed along each ray, weighted by the
// intersection lengths and normalized per ray and per pixel.
func ReconstructSARTFan(s *Sinogram, g Grid, fan FanGeometry, opt SARTOptions) []float32 {
	if opt.Iterations <= 0 {
		opt.Iterations = DefaultSART().Iterations
	}
	if opt.Relax <= 0 {
		opt.Relax = DefaultSART().Relax
	}
	n := g.Size
	img := make([]float32, n*n)
	if opt.Init != nil {
		copy(img, opt.Init)
	}

	// Precompute the ray geometry per (view, detector): Siddon segments
	// are retraced on the fly (caching all segments for 720×1024 rays
	// would cost gigabytes), but endpoints are precomputed.
	type ray struct{ sx, sy, px, py float64 }
	rays := make([]ray, s.Views*s.Det)
	for v := 0; v < s.Views; v++ {
		beta := 2 * math.Pi * float64(v) / float64(s.Views)
		cb, sb := math.Cos(beta), math.Sin(beta)
		sx, sy := fan.SOD*cb, fan.SOD*sb
		dcx, dcy := sx-fan.SDD*cb, sy-fan.SDD*sb
		ex, ey := -sb, cb
		for d := 0; d < s.Det; d++ {
			u := (float64(d) - (float64(s.Det)-1)/2) * fan.DetectorSpacing
			rays[v*s.Det+d] = ray{sx: sx, sy: sy, px: dcx + u*ex, py: dcy + u*ey}
		}
	}

	// Per-pixel column sums Σ_i a_ij per view block are recomputed each
	// sweep; the per-view update is
	//
	//	x_j += λ · Σ_i a_ij (b_i − ⟨a_i, x⟩)/Σ_k a_ik  /  Σ_i a_ij
	numer := make([]float64, n*n)
	denom := make([]float64, n*n)

	for it := 0; it < opt.Iterations; it++ {
		for v := 0; v < s.Views; v++ {
			for j := range numer {
				numer[j] = 0
				denom[j] = 0
			}
			// Residuals of this view's rays, computed in parallel into
			// per-ray slots; the scatter accumulation below stays serial
			// per view to avoid write conflicts on the pixel grid.
			type contrib struct {
				segs  []RaySegment
				scale float64
			}
			contribs := make([]contrib, s.Det)
			parallel.ForEach(s.Det, 0, func(d int) {
				r := rays[v*s.Det+d]
				segs := TraceRay(g, r.sx, r.sy, r.px, r.py)
				if len(segs) == 0 {
					return
				}
				var proj, rowSum float64
				for _, seg := range segs {
					proj += float64(img[seg.Index]) * seg.Length
					rowSum += seg.Length
				}
				if rowSum == 0 {
					return
				}
				resid := (s.At(v, d) - proj) / rowSum
				contribs[d] = contrib{segs: segs, scale: resid}
			})
			for d := range contribs {
				for _, seg := range contribs[d].segs {
					numer[seg.Index] += seg.Length * contribs[d].scale
					denom[seg.Index] += seg.Length
				}
			}
			for j := range numer {
				if denom[j] > 0 {
					img[j] += float32(opt.Relax * numer[j] / denom[j])
					if opt.NonNegative && img[j] < 0 {
						img[j] = 0
					}
				}
			}
		}
		if opt.Smooth > 0 {
			smooth3x3(img, n, float32(opt.Smooth))
		}
	}
	return img
}

// smooth3x3 blends the image with its 3×3 neighborhood mean in place:
// x ← (1−s)·x + s·mean₃ₓ₃(x).
func smooth3x3(img []float32, n int, s float32) {
	src := append([]float32(nil), img...)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			var sum float32
			var cnt float32
			for dr := -1; dr <= 1; dr++ {
				rr := r + dr
				if rr < 0 || rr >= n {
					continue
				}
				for dc := -1; dc <= 1; dc++ {
					cc := c + dc
					if cc < 0 || cc >= n {
						continue
					}
					sum += src[rr*n+cc]
					cnt++
				}
			}
			img[r*n+c] = (1-s)*src[r*n+c] + s*sum/cnt
		}
	}
}
