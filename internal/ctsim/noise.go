package ctsim

import (
	"math"
	"math/rand"
)

// PoissonSample draws one sample from Poisson(lambda). Small rates use
// Knuth's product method; large rates use the Gaussian approximation,
// which is accurate for the photon counts involved here (b_i = 10⁶).
func PoissonSample(rng *rand.Rand, lambda float64) float64 {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return float64(k)
			}
			k++
		}
	}
	v := math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64())
	if v < 0 {
		return 0
	}
	return v
}

// ApplyPoissonNoise simulates photon-counting statistics on a sinogram
// of line integrals (§3.1.2 of the paper): each detector reading is
//
//	P_i ~ Poisson(b_i · e^{−l_i})
//
// with blank-scan factor b photons per ray, and the noisy line integral
// is recovered as l̂_i = ln(b / max(P_i, 1)). No electronic readout
// noise is added, matching the paper. Returns a new sinogram.
func ApplyPoissonNoise(s *Sinogram, b float64, rng *rand.Rand) *Sinogram {
	out := s.Clone()
	for i, l := range s.Data {
		transmitted := b * math.Exp(-l)
		p := PoissonSample(rng, transmitted)
		if p < 1 {
			p = 1 // photon starvation guard, standard practice
		}
		out.Data[i] = math.Log(b / p)
	}
	return out
}

// DoseFraction scales the blank-scan factor for a reduced-dose
// acquisition: quarter dose means b → b/4, raising relative noise by 2×.
func DoseFraction(fullDoseB float64, fraction float64) float64 {
	if fraction <= 0 {
		panic("ctsim: dose fraction must be positive")
	}
	return fullDoseB * fraction
}
