package ctsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: forward projection is linear in the attenuation image —
// sino(a + b) == sino(a) + sino(b). Line integrals are sums, so any
// violation means the ray tracer depends on image content.
func TestProjectionLinearityProperty(t *testing.T) {
	g := Grid{Size: 16, PixelSize: 8}
	fan := PaperFanGeometry(g.FOV())
	fan.NumViews, fan.NumDetectors = 12, 24
	fan.DetectorSpacing = g.FOV() * 1.5 * (fan.SDD / fan.SOD) / float64(fan.NumDetectors)

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float32, 256)
		b := make([]float32, 256)
		sum := make([]float32, 256)
		for i := range a {
			a[i] = rng.Float32() * 0.03
			b[i] = rng.Float32() * 0.03
			sum[i] = a[i] + b[i]
		}
		sa := ForwardProjectFan(g, a, fan)
		sb := ForwardProjectFan(g, b, fan)
		ss := ForwardProjectFan(g, sum, fan)
		for i := range ss.Data {
			if math.Abs(ss.Data[i]-(sa.Data[i]+sb.Data[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: a centered disk projects identically (up to discretization)
// in every view — rotational symmetry of the geometry.
func TestCenteredDiskViewInvariance(t *testing.T) {
	g := Grid{Size: 64, PixelSize: 4}
	mu := diskPhantom(g, 80, 0.02)
	fan := PaperFanGeometry(g.FOV())
	fan.NumViews, fan.NumDetectors = 24, 128
	fan.DetectorSpacing = g.FOV() * 1.5 * (fan.SDD / fan.SOD) / float64(fan.NumDetectors)
	sino := ForwardProjectFan(g, mu, fan)
	// Compare each view's total attenuation to the first view's.
	ref := 0.0
	for d := 0; d < sino.Det; d++ {
		ref += sino.At(0, d)
	}
	for v := 1; v < sino.Views; v++ {
		total := 0.0
		for d := 0; d < sino.Det; d++ {
			total += sino.At(v, d)
		}
		if math.Abs(total-ref)/ref > 0.02 {
			t.Fatalf("view %d total attenuation %.4f deviates from view 0 (%.4f)", v, total, ref)
		}
	}
}

// Property: scaling the dose down can only increase the expected
// reconstruction error (checked across two seeds to damp noise).
func TestDoseMonotonicityProperty(t *testing.T) {
	g := Grid{Size: 32, PixelSize: 8}
	mu := diskPhantom(g, 80, 0.02)
	pg := DefaultParallelGeometry(g.FOV(), 64, 30)
	sino := ForwardProjectParallel(g, mu, pg)
	errAt := func(b float64) float64 {
		total := 0.0
		for seed := int64(0); seed < 2; seed++ {
			noisy := ApplyPoissonNoise(sino, b, rand.New(rand.NewSource(seed)))
			rec := ReconstructParallel(noisy, g, RamLak)
			for i := range rec {
				d := float64(rec[i] - mu[i])
				total += d * d
			}
		}
		return total
	}
	e6 := errAt(1e6)
	e4 := errAt(1e4)
	e3 := errAt(1e3)
	if !(e6 < e4 && e4 < e3) {
		t.Fatalf("reconstruction error not monotone in dose: 1e6→%.4g 1e4→%.4g 1e3→%.4g", e6, e4, e3)
	}
}

// Property: the sinogram of an empty image is identically zero, and FBP
// of a zero sinogram is (numerically) zero.
func TestZeroImageZeroSinogram(t *testing.T) {
	g := Grid{Size: 16, PixelSize: 8}
	fan := PaperFanGeometry(g.FOV())
	fan.NumViews, fan.NumDetectors = 8, 16
	fan.DetectorSpacing = g.FOV() * 1.5 * (fan.SDD / fan.SOD) / float64(fan.NumDetectors)
	sino := ForwardProjectFan(g, make([]float32, 256), fan)
	for i, v := range sino.Data {
		if v != 0 {
			t.Fatalf("empty image produced nonzero line integral at %d: %v", i, v)
		}
	}
	rec := ReconstructFan(sino, g, fan, RamLak)
	for i, v := range rec {
		if math.Abs(float64(v)) > 1e-9 {
			t.Fatalf("zero sinogram reconstructed nonzero pixel %d: %v", i, v)
		}
	}
}
