package ctsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHUConversionsRoundTrip(t *testing.T) {
	for _, hu := range []float64{-1000, -800, -500, 0, 40, 400, 1000} {
		mu := HUToMu(hu)
		back := MuToHU(mu)
		if math.Abs(back-hu) > 1e-9 {
			t.Fatalf("HU %v -> mu %v -> HU %v", hu, mu, back)
		}
	}
	if HUToMu(0) != MuWater60keV {
		t.Fatal("water must map to MuWater60keV")
	}
	if HUToMu(-1000) != 0 {
		t.Fatal("air (-1000 HU) must map to zero attenuation")
	}
	if HUToMu(-2000) != 0 {
		t.Fatal("sub-air HU must clamp at zero attenuation")
	}
}

func TestNormalizeHU(t *testing.T) {
	if got := NormalizeHU(0, -1000, 1000); got != 0.5 {
		t.Fatalf("NormalizeHU(0) = %v, want 0.5", got)
	}
	if NormalizeHU(-5000, -1000, 1000) != 0 || NormalizeHU(5000, -1000, 1000) != 1 {
		t.Fatal("NormalizeHU must clamp")
	}
	// Round trip inside the window.
	f := func(raw uint16) bool {
		hu := float64(raw)/65535*2000 - 1000
		v := NormalizeHU(hu, -1000, 1000)
		return math.Abs(DenormalizeHU(v, -1000, 1000)-hu) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGridCenters(t *testing.T) {
	g := Grid{Size: 4, PixelSize: 2}
	x, y := g.Center(0, 0)
	if x != -3 || y != -3 {
		t.Fatalf("Center(0,0) = (%v,%v), want (-3,-3)", x, y)
	}
	x, y = g.Center(3, 3)
	if x != 3 || y != 3 {
		t.Fatalf("Center(3,3) = (%v,%v), want (3,3)", x, y)
	}
	if g.FOV() != 8 {
		t.Fatalf("FOV = %v, want 8", g.FOV())
	}
}

// Property (Siddon): the traversed lengths of a ray crossing the grid
// sum to the chord length of the ray inside the grid bounding box.
func TestSiddonChordLengthProperty(t *testing.T) {
	g := Grid{Size: 16, PixelSize: 1}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random ray through the interior.
		ang := rng.Float64() * 2 * math.Pi
		x0, y0 := 30*math.Cos(ang), 30*math.Sin(ang)
		x1, y1 := -x0+rng.NormFloat64()*3, -y0+rng.NormFloat64()*3
		segs := TraceRay(g, x0, y0, x1, y1)
		total := 0.0
		for _, s := range segs {
			if s.Index < 0 || s.Index >= 256 {
				return false
			}
			total += s.Length
		}
		// Compute the chord analytically by clipping to the box.
		chord := clipChord(8, x0, y0, x1, y1)
		return math.Abs(total-chord) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// clipChord returns the length of segment (x0,y0)-(x1,y1) inside the
// centered square [-half, half]².
func clipChord(half, x0, y0, x1, y1 float64) float64 {
	dx, dy := x1-x0, y1-y0
	aMin, aMax := 0.0, 1.0
	clip := func(p, d float64) bool {
		if d == 0 {
			return p >= -half && p <= half
		}
		a1, a2 := (-half-p)/d, (half-p)/d
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		aMin = math.Max(aMin, a1)
		aMax = math.Min(aMax, a2)
		return true
	}
	if !clip(x0, dx) || !clip(y0, dy) || aMax <= aMin {
		return 0
	}
	return (aMax - aMin) * math.Hypot(dx, dy)
}

func TestSiddonAxisAlignedRay(t *testing.T) {
	g := Grid{Size: 8, PixelSize: 1}
	mu := make([]float32, 64)
	for i := range mu {
		mu[i] = 1
	}
	// Horizontal ray through row 3 (y = -0.5).
	got := LineIntegral(g, mu, -10, -0.5, 10, -0.5)
	if math.Abs(got-8) > 1e-9 {
		t.Fatalf("horizontal line integral = %v, want 8", got)
	}
	// Diagonal corner-to-corner: length = 8√2.
	got = LineIntegral(g, mu, -5, -5, 5, 5)
	if math.Abs(got-8*math.Sqrt2) > 1e-6 {
		t.Fatalf("diagonal line integral = %v, want %v", got, 8*math.Sqrt2)
	}
}

func TestSiddonMissesGrid(t *testing.T) {
	g := Grid{Size: 8, PixelSize: 1}
	if segs := TraceRay(g, -10, 20, 10, 20); len(segs) != 0 {
		t.Fatalf("ray outside grid produced %d segments", len(segs))
	}
	if segs := TraceRay(g, 0, 0, 0, 0); len(segs) != 0 {
		t.Fatal("zero-length ray should produce no segments")
	}
}

func diskPhantom(g Grid, radius float64, value float32) []float32 {
	mu := make([]float32, g.Size*g.Size)
	for r := 0; r < g.Size; r++ {
		for c := 0; c < g.Size; c++ {
			x, y := g.Center(r, c)
			if math.Hypot(x, y) < radius {
				mu[r*g.Size+c] = value
			}
		}
	}
	return mu
}

func TestParallelProjectionOfDisk(t *testing.T) {
	g := Grid{Size: 64, PixelSize: 4}
	mu := diskPhantom(g, 80, 0.02)
	pg := DefaultParallelGeometry(g.FOV(), 128, 16)
	sino := ForwardProjectParallel(g, mu, pg)
	// Central ray passes through the disk diameter: ∫ = 2·R·μ = 3.2.
	center := sino.Det / 2
	for v := 0; v < sino.Views; v++ {
		got := (sino.At(v, center-1) + sino.At(v, center)) / 2
		if math.Abs(got-3.2) > 0.2 {
			t.Fatalf("view %d central ray integral = %v, want ~3.2", v, got)
		}
	}
}

func TestFBPParallelReconstructsDisk(t *testing.T) {
	g := Grid{Size: 64, PixelSize: 4}
	mu := diskPhantom(g, 80, 0.02)
	pg := DefaultParallelGeometry(g.FOV(), 128, 180)
	sino := ForwardProjectParallel(g, mu, pg)
	rec := ReconstructParallel(sino, g, RamLak)
	// Interior mean must match μ to ~2%.
	var sum float64
	var cnt int
	for r := 0; r < g.Size; r++ {
		for c := 0; c < g.Size; c++ {
			x, y := g.Center(r, c)
			if math.Hypot(x, y) < 60 {
				sum += float64(rec[r*g.Size+c])
				cnt++
			}
		}
	}
	mean := sum / float64(cnt)
	if math.Abs(mean-0.02) > 0.0004 {
		t.Fatalf("parallel FBP interior mean = %v, want 0.02 ±2%%", mean)
	}
}

func TestFBPFanReconstructsDisk(t *testing.T) {
	g := Grid{Size: 64, PixelSize: 4}
	mu := diskPhantom(g, 80, 0.02)
	fan := PaperFanGeometry(g.FOV())
	fan.NumDetectors = 256
	fan.NumViews = 360
	fan.DetectorSpacing = g.FOV() * 1.5 * (fan.SDD / fan.SOD) / float64(fan.NumDetectors)
	sino := ForwardProjectFan(g, mu, fan)
	rec := ReconstructFan(sino, g, fan, RamLak)
	var sum float64
	var cnt int
	for r := 0; r < g.Size; r++ {
		for c := 0; c < g.Size; c++ {
			x, y := g.Center(r, c)
			if math.Hypot(x, y) < 60 {
				sum += float64(rec[r*g.Size+c])
				cnt++
			}
		}
	}
	mean := sum / float64(cnt)
	if math.Abs(mean-0.02) > 0.0004 {
		t.Fatalf("fan FBP interior mean = %v, want 0.02 ±2%%", mean)
	}
	// Outside the disk must be near zero.
	if v := math.Abs(float64(rec[0])); v > 0.002 {
		t.Fatalf("fan FBP corner = %v, want ~0", v)
	}
}

func TestSheppLoganFilterSmoothsMore(t *testing.T) {
	g := Grid{Size: 32, PixelSize: 8}
	mu := diskPhantom(g, 80, 0.02)
	pg := DefaultParallelGeometry(g.FOV(), 64, 90)
	sino := ForwardProjectParallel(g, mu, pg)
	noisy := ApplyPoissonNoise(sino, 2e4, rand.New(rand.NewSource(1)))
	recRL := ReconstructParallel(noisy, g, RamLak)
	recSL := ReconstructParallel(noisy, g, SheppLogan)
	varOf := func(img []float32) float64 {
		// variance inside the disk
		var s, s2 float64
		var n int
		for r := 0; r < g.Size; r++ {
			for c := 0; c < g.Size; c++ {
				x, y := g.Center(r, c)
				if math.Hypot(x, y) < 60 {
					v := float64(img[r*g.Size+c])
					s += v
					s2 += v * v
					n++
				}
			}
		}
		m := s / float64(n)
		return s2/float64(n) - m*m
	}
	if varOf(recSL) >= varOf(recRL) {
		t.Fatalf("Shepp-Logan should be smoother: SL var %v, RamLak var %v",
			varOf(recSL), varOf(recRL))
	}
}

func TestPoissonSampleStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, lambda := range []float64{0.5, 4, 25, 100, 1e4} {
		n := 3000
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			v := PoissonSample(rng, lambda)
			sum += v
			sum2 += v * v
		}
		mean := sum / float64(n)
		variance := sum2/float64(n) - mean*mean
		if math.Abs(mean-lambda) > 5*math.Sqrt(lambda/float64(n))*3+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", lambda, mean)
		}
		if math.Abs(variance-lambda)/lambda > 0.25 {
			t.Fatalf("Poisson(%v) variance = %v", lambda, variance)
		}
	}
	if PoissonSample(rng, 0) != 0 || PoissonSample(rng, -1) != 0 {
		t.Fatal("non-positive rate should produce 0")
	}
}

func TestPoissonNoiseBiasSmallAtHighDose(t *testing.T) {
	g := Grid{Size: 32, PixelSize: 8}
	mu := diskPhantom(g, 80, 0.02)
	pg := DefaultParallelGeometry(g.FOV(), 64, 8)
	sino := ForwardProjectParallel(g, mu, pg)
	noisy := ApplyPoissonNoise(sino, 1e6, rand.New(rand.NewSource(3)))
	var maxDiff float64
	for i := range sino.Data {
		d := math.Abs(noisy.Data[i] - sino.Data[i])
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 0.05 {
		t.Fatalf("noise at b=1e6 perturbs line integrals by %v, want < 0.05", maxDiff)
	}
	if maxDiff == 0 {
		t.Fatal("noise should perturb the sinogram")
	}
}

func TestLowerDoseMeansMoreNoise(t *testing.T) {
	g := Grid{Size: 32, PixelSize: 8}
	mu := diskPhantom(g, 80, 0.02)
	pg := DefaultParallelGeometry(g.FOV(), 64, 8)
	sino := ForwardProjectParallel(g, mu, pg)
	noiseAt := func(b float64) float64 {
		noisy := ApplyPoissonNoise(sino, b, rand.New(rand.NewSource(4)))
		var s float64
		for i := range sino.Data {
			d := noisy.Data[i] - sino.Data[i]
			s += d * d
		}
		return s
	}
	full := noiseAt(1e6)
	quarter := noiseAt(DoseFraction(1e6, 0.25))
	if quarter <= full {
		t.Fatalf("quarter dose must be noisier: full %v, quarter %v", full, quarter)
	}
}

func TestPaperFanGeometryValues(t *testing.T) {
	fan := PaperFanGeometry(360)
	if fan.SOD != 1000 || fan.SDD != 1500 {
		t.Fatalf("paper geometry SOD/SDD = %v/%v, want 1000/1500", fan.SOD, fan.SDD)
	}
	if fan.NumDetectors != 1024 || fan.NumViews != 720 {
		t.Fatalf("paper geometry detectors/views = %d/%d, want 1024/720", fan.NumDetectors, fan.NumViews)
	}
	if err := fan.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := fan
	bad.SDD = 500
	if bad.Validate() == nil {
		t.Fatal("SDD < SOD should not validate")
	}
}

func TestSinogramAccessors(t *testing.T) {
	s := NewSinogram(3, 4, 1.5)
	s.Set(2, 3, 7)
	if s.At(2, 3) != 7 {
		t.Fatal("Set/At round trip failed")
	}
	row := s.Row(2)
	if row[3] != 7 {
		t.Fatal("Row does not alias storage")
	}
	c := s.Clone()
	c.Set(0, 0, 9)
	if s.At(0, 0) == 9 {
		t.Fatal("Clone shares storage")
	}
}
