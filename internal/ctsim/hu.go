package ctsim

// MuWater60keV is the linear attenuation coefficient of water at the
// paper's monochromatic 60 keV source energy, in mm⁻¹.
const MuWater60keV = 0.0206

// HUToMu converts a Hounsfield-unit value to a linear attenuation
// coefficient (mm⁻¹): HU = 1000·(μ − μ_water)/μ_water.
func HUToMu(hu float64) float64 {
	mu := MuWater60keV * (1 + hu/1000)
	if mu < 0 {
		return 0 // vacuum can't attenuate negatively
	}
	return mu
}

// MuToHU converts a linear attenuation coefficient (mm⁻¹) back to
// Hounsfield units.
func MuToHU(mu float64) float64 {
	return 1000 * (mu - MuWater60keV) / MuWater60keV
}

// NormalizeHU maps a Hounsfield value into [0, 1] over the window
// [lo, hi], clamping outside values — the paper's pre-network conversion
// "to floating-point data within the data range [0,1]" (§3.1.1).
func NormalizeHU(hu, lo, hi float64) float64 {
	v := (hu - lo) / (hi - lo)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// DenormalizeHU inverts NormalizeHU for values inside the window.
func DenormalizeHU(v, lo, hi float64) float64 {
	return lo + v*(hi-lo)
}

// Standard display windows for chest CT, in (lo, hi) Hounsfield units.
const (
	// LungWindowLo and LungWindowHi bound the standard lung window
	// (center −600, width 1500).
	LungWindowLo = -1350.0
	LungWindowHi = 150.0
	// FullWindowLo and FullWindowHi bound the full clinically relevant
	// HU range used for network normalization.
	FullWindowLo = -1000.0
	FullWindowHi = 1000.0
)
