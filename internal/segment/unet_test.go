package segment

import (
	"bytes"
	"math/rand"
	"testing"

	"computecovid19/internal/ctsim"
	"computecovid19/internal/nn"
	"computecovid19/internal/phantom"
	"computecovid19/internal/tensor"
)

// unetSamples renders phantom slices and lung masks for training.
func unetSamples(seed int64, n, size int) []UNetSample {
	rng := rand.New(rand.NewSource(seed))
	var out []UNetSample
	for i := 0; i < n; i++ {
		c := phantom.NewChest(rng, size, 1)
		if rng.Intn(2) == 0 {
			c.AddRandomLesions(rng, 1+rng.Intn(2), 0.8)
		}
		hu := c.SliceHU(0)
		img := tensor.New(size, size)
		for j, v := range hu {
			img.Data[j] = float32(ctsim.NormalizeHU(float64(v), ctsim.FullWindowLo, ctsim.FullWindowHi))
		}
		out = append(out, UNetSample{Image: img, Mask: c.LungMask(0)})
	}
	return out
}

func TestUNetForwardShape(t *testing.T) {
	u := NewUNet(rand.New(rand.NewSource(1)), DefaultUNet())
	samples := unetSamples(2, 1, 32)
	mask := u.SegmentSlice(samples[0].Image)
	if len(mask) != 32*32 {
		t.Fatalf("mask length %d", len(mask))
	}
}

func TestUNetLearnsLungs(t *testing.T) {
	train := unetSamples(3, 10, 32)
	test := unetSamples(4, 4, 32)
	u := NewUNet(rand.New(rand.NewSource(5)), DefaultUNet())
	curve := TrainUNet(u, train, 8, 3e-3, 6)
	if curve[len(curve)-1] >= curve[0] {
		t.Fatalf("U-Net loss did not decrease: %v", curve)
	}
	var dice float64
	for _, s := range test {
		pred := u.SegmentSlice(s.Image)
		dice += Dice(pred, s.Mask) / float64(len(test))
	}
	if dice < 0.75 {
		t.Fatalf("U-Net test Dice = %v, want > 0.75", dice)
	}
}

func TestUNetSegmentVolumeMatchesSliceWise(t *testing.T) {
	u := NewUNet(rand.New(rand.NewSource(7)), DefaultUNet())
	rng := rand.New(rand.NewSource(8))
	c := phantom.NewChest(rng, 32, 3)
	v, _ := phantomVolume(9, 32, 3, 0)
	norm := v.Normalized(ctsim.FullWindowLo, ctsim.FullWindowHi)
	_ = c
	mask := u.SegmentVolume(norm)
	if len(mask) != 3*32*32 {
		t.Fatalf("volume mask length %d", len(mask))
	}
	// Per-slice calls agree with the stacked call.
	slice0 := u.SegmentSlice(tensor.FromSlice(norm.Slice(0), 32, 32))
	for i := range slice0 {
		if slice0[i] != mask[i] {
			t.Fatal("SegmentVolume disagrees with SegmentSlice")
		}
	}
}

func TestUNetSaveLoad(t *testing.T) {
	src := NewUNet(rand.New(rand.NewSource(10)), DefaultUNet())
	samples := unetSamples(11, 2, 32)
	TrainUNet(src, samples, 1, 1e-3, 12)
	var buf bytes.Buffer
	if err := nn.SaveModule(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := NewUNet(rand.New(rand.NewSource(13)), DefaultUNet())
	if err := nn.LoadModule(&buf, dst); err != nil {
		t.Fatal(err)
	}
	m1 := src.SegmentSlice(samples[0].Image)
	m2 := dst.SegmentSlice(samples[0].Image)
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("save/load changed U-Net predictions")
		}
	}
}

func TestUNetVsClassicalSegmenter(t *testing.T) {
	// Both segmenters should be usable; on clean phantoms the classical
	// one is near-perfect and the trained U-Net close behind.
	train := unetSamples(14, 10, 32)
	u := NewUNet(rand.New(rand.NewSource(15)), DefaultUNet())
	TrainUNet(u, train, 8, 3e-3, 16)

	v, truth := phantomVolume(17, 32, 4, 0)
	classical := Lungs(v, DefaultOptions())
	norm := v.Normalized(ctsim.FullWindowLo, ctsim.FullWindowHi)
	learned := u.SegmentVolume(norm)

	dC := Dice(classical, truth)
	dL := Dice(learned, truth)
	if dC < 0.85 {
		t.Fatalf("classical Dice = %v", dC)
	}
	if dL < 0.70 {
		t.Fatalf("U-Net Dice = %v, want > 0.70", dL)
	}
}
