// Package segment implements Segmentation AI (§2.3.1, §3.2): pixel-wise
// lung segmentation of 3D chest CT volumes, producing the binary map
// that is multiplied into the scan before classification.
//
// The paper uses NVIDIA's pre-trained AH-Net model "as is"; no training
// was performed and no weights are published, so this reproduction
// substitutes a classical algorithmic segmenter with the same contract
// (volume in, binary lung map out): Hounsfield thresholding, removal of
// the outside-body air via boundary flood fill, 3D connected-component
// selection of the lung fields, morphological closing to re-include
// vessels and COVID lesions, and per-slice hole filling. On our phantoms
// it reaches Dice > 0.9 against the generative ground truth, which is
// the regime the paper's segmenter operates in on real scans.
package segment

import (
	"computecovid19/internal/volume"
)

// Options tunes the segmenter. The zero value is not valid; use
// DefaultOptions.
type Options struct {
	// AirThresholdHU marks voxels below this value as candidate lung/air.
	AirThresholdHU float64
	// MinComponentVoxels drops connected components smaller than this.
	MinComponentVoxels int
	// MaxComponents keeps at most this many largest components (the two
	// lungs, possibly merged into one component at the carina).
	MaxComponents int
	// ClosingRadius is the box radius (voxels) of the morphological
	// closing that re-captures dense lesions and vessels.
	ClosingRadius int
	// FillHoles enables per-slice hole filling after closing.
	FillHoles bool
}

// DefaultOptions returns settings that work for both clinical-range HU
// volumes and our phantoms.
func DefaultOptions() Options {
	return Options{
		AirThresholdHU:     -350,
		MinComponentVoxels: 40,
		MaxComponents:      2,
		ClosingRadius:      2,
		FillHoles:          true,
	}
}

// Lungs segments the lung fields of an HU volume and returns a D*H*W
// mask (true = lung). The pipeline: Hounsfield thresholding, clipping
// candidate air to the body hull (a boundary flood fill is the
// textbook method but leaks through chest walls thinner than one voxel
// on coarse grids), keeping the largest interior air components (the
// lungs), morphological closing, and per-slice hole filling. It runs
// on a throwaway Scratch; repeated callers should hold a Scratch and
// use LungsInto, which computes the identical mask from pooled memory.
func Lungs(v *volume.Volume, opt Options) []bool {
	mask := make([]bool, len(v.Data))
	NewScratch(nil).LungsInto(v, opt, mask)
	return mask
}

// Apply segments v and returns the masked volume (non-lung voxels
// zeroed), the operation Figure 3's Analysis AI performs before
// classification.
func Apply(v *volume.Volume, opt Options) (*volume.Volume, []bool) {
	mask := Lungs(v, opt)
	return v.ApplyMask(mask), mask
}

// Dice returns the Dice–Sørensen overlap of two masks: 2|A∩B|/(|A|+|B|).
// Two empty masks have Dice 1.
func Dice(a, b []bool) float64 {
	if len(a) != len(b) {
		panic("segment: Dice mask length mismatch")
	}
	inter, sum := 0, 0
	for i := range a {
		if a[i] && b[i] {
			inter++
		}
		if a[i] {
			sum++
		}
		if b[i] {
			sum++
		}
	}
	if sum == 0 {
		return 1
	}
	return 2 * float64(inter) / float64(sum)
}

func forNeighbors(d, h, w, idx int, visit func(n int)) {
	x := idx % w
	y := (idx / w) % h
	z := idx / (w * h)
	if x > 0 {
		visit(idx - 1)
	}
	if x < w-1 {
		visit(idx + 1)
	}
	if y > 0 {
		visit(idx - w)
	}
	if y < h-1 {
		visit(idx + w)
	}
	if z > 0 {
		visit(idx - w*h)
	}
	if z < d-1 {
		visit(idx + w*h)
	}
}

// Dilate3D grows mask by a box of the given radius (separable passes
// along x, y, z).
func Dilate3D(mask []bool, d, h, w, radius int) []bool {
	out := append([]bool(nil), mask...)
	for r := 0; r < radius; r++ {
		out = dilateOnce(out, d, h, w)
	}
	return out
}

// Erode3D shrinks mask by a box of the given radius.
func Erode3D(mask []bool, d, h, w, radius int) []bool {
	// Erosion is dilation of the complement.
	inv := make([]bool, len(mask))
	for i, m := range mask {
		inv[i] = !m
	}
	inv = Dilate3D(inv, d, h, w, radius)
	out := make([]bool, len(mask))
	for i, m := range inv {
		out[i] = !m
	}
	return out
}

// Close3D applies dilation followed by erosion, bridging small gaps
// (dense lesions inside lung).
func Close3D(mask []bool, d, h, w, radius int) []bool {
	return Erode3D(Dilate3D(mask, d, h, w, radius), d, h, w, radius)
}

func dilateOnce(mask []bool, d, h, w int) []bool {
	out := append([]bool(nil), mask...)
	for idx, m := range mask {
		if !m {
			continue
		}
		forNeighbors(d, h, w, idx, func(n int) { out[n] = true })
	}
	return out
}
