// Package segment implements Segmentation AI (§2.3.1, §3.2): pixel-wise
// lung segmentation of 3D chest CT volumes, producing the binary map
// that is multiplied into the scan before classification.
//
// The paper uses NVIDIA's pre-trained AH-Net model "as is"; no training
// was performed and no weights are published, so this reproduction
// substitutes a classical algorithmic segmenter with the same contract
// (volume in, binary lung map out): Hounsfield thresholding, removal of
// the outside-body air via boundary flood fill, 3D connected-component
// selection of the lung fields, morphological closing to re-include
// vessels and COVID lesions, and per-slice hole filling. On our phantoms
// it reaches Dice > 0.9 against the generative ground truth, which is
// the regime the paper's segmenter operates in on real scans.
package segment

import (
	"sort"

	"computecovid19/internal/volume"
)

// Options tunes the segmenter. The zero value is not valid; use
// DefaultOptions.
type Options struct {
	// AirThresholdHU marks voxels below this value as candidate lung/air.
	AirThresholdHU float64
	// MinComponentVoxels drops connected components smaller than this.
	MinComponentVoxels int
	// MaxComponents keeps at most this many largest components (the two
	// lungs, possibly merged into one component at the carina).
	MaxComponents int
	// ClosingRadius is the box radius (voxels) of the morphological
	// closing that re-captures dense lesions and vessels.
	ClosingRadius int
	// FillHoles enables per-slice hole filling after closing.
	FillHoles bool
}

// DefaultOptions returns settings that work for both clinical-range HU
// volumes and our phantoms.
func DefaultOptions() Options {
	return Options{
		AirThresholdHU:     -350,
		MinComponentVoxels: 40,
		MaxComponents:      2,
		ClosingRadius:      2,
		FillHoles:          true,
	}
}

// Lungs segments the lung fields of an HU volume and returns a D*H*W
// mask (true = lung).
func Lungs(v *volume.Volume, opt Options) []bool {
	n := len(v.Data)
	air := make([]bool, n)
	for i, hu := range v.Data {
		air[i] = float64(hu) < opt.AirThresholdHU
	}

	// Remove the air outside the body. A boundary flood fill is the
	// textbook method but leaks through chest walls thinner than one
	// voxel on coarse grids, so we instead clip candidate air to the
	// body hull: per slice, a voxel counts as inside when it lies within
	// both the row span and the column span of dense (non-air) tissue.
	inside := bodyHull(v.D, v.H, v.W, air)
	cand := make([]bool, n)
	for i := range cand {
		cand[i] = air[i] && inside[i]
	}

	// Keep the largest interior air components: the lungs.
	comps := components(v.D, v.H, v.W, cand)
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	mask := make([]bool, n)
	kept := 0
	for _, c := range comps {
		if len(c) < opt.MinComponentVoxels || kept >= opt.MaxComponents {
			break
		}
		for _, idx := range c {
			mask[idx] = true
		}
		kept++
	}

	if opt.ClosingRadius > 0 {
		mask = Close3D(mask, v.D, v.H, v.W, opt.ClosingRadius)
	}
	if opt.FillHoles {
		fillHolesPerSlice(mask, v.D, v.H, v.W)
	}
	return mask
}

// Apply segments v and returns the masked volume (non-lung voxels
// zeroed), the operation Figure 3's Analysis AI performs before
// classification.
func Apply(v *volume.Volume, opt Options) (*volume.Volume, []bool) {
	mask := Lungs(v, opt)
	return v.ApplyMask(mask), mask
}

// Dice returns the Dice–Sørensen overlap of two masks: 2|A∩B|/(|A|+|B|).
// Two empty masks have Dice 1.
func Dice(a, b []bool) float64 {
	if len(a) != len(b) {
		panic("segment: Dice mask length mismatch")
	}
	inter, sum := 0, 0
	for i := range a {
		if a[i] && b[i] {
			inter++
		}
		if a[i] {
			sum++
		}
		if b[i] {
			sum++
		}
	}
	if sum == 0 {
		return 1
	}
	return 2 * float64(inter) / float64(sum)
}

// bodyHull approximates the body interior per slice: a voxel is inside
// when dense tissue exists both above and below it in its column AND on
// both sides of it in its row. The hull is shrunk by one voxel so the
// body surface itself is excluded.
func bodyHull(d, h, w int, air []bool) []bool {
	inside := make([]bool, d*h*w)
	for z := 0; z < d; z++ {
		base := z * h * w
		// Column spans of dense tissue.
		colLo := make([]int, w)
		colHi := make([]int, w)
		for x := 0; x < w; x++ {
			colLo[x], colHi[x] = h, -1
			for y := 0; y < h; y++ {
				if !air[base+y*w+x] {
					if y < colLo[x] {
						colLo[x] = y
					}
					colHi[x] = y
				}
			}
		}
		for y := 0; y < h; y++ {
			// Row span of dense tissue.
			rowLo, rowHi := w, -1
			for x := 0; x < w; x++ {
				if !air[base+y*w+x] {
					if x < rowLo {
						rowLo = x
					}
					rowHi = x
				}
			}
			for x := 0; x < w; x++ {
				inside[base+y*w+x] = x > rowLo && x < rowHi &&
					y > colLo[x] && y < colHi[x]
			}
		}
	}
	return inside
}

// floodFromBoundary marks every voxel reachable from the lateral (x/y)
// volume boundary through `open` voxels (6-connectivity). The z faces
// are deliberately not seeded: chest scans routinely crop the lungs at
// the first and last slice, and seeding there would flood the lung
// fields themselves.
func floodFromBoundary(d, h, w int, open []bool) []bool {
	seen := make([]bool, d*h*w)
	var queue []int
	push := func(idx int) {
		if open[idx] && !seen[idx] {
			seen[idx] = true
			queue = append(queue, idx)
		}
	}
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if y == 0 || y == h-1 || x == 0 || x == w-1 {
					push((z*h+y)*w + x)
				}
			}
		}
	}
	bfs(d, h, w, open, seen, &queue)
	return seen
}

// components returns the 6-connected components of mask as voxel index
// lists.
func components(d, h, w int, mask []bool) [][]int {
	seen := make([]bool, d*h*w)
	var comps [][]int
	for start, m := range mask {
		if !m || seen[start] {
			continue
		}
		seen[start] = true
		queue := []int{start}
		var comp []int
		for len(queue) > 0 {
			idx := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			comp = append(comp, idx)
			forNeighbors(d, h, w, idx, func(n int) {
				if mask[n] && !seen[n] {
					seen[n] = true
					queue = append(queue, n)
				}
			})
		}
		comps = append(comps, comp)
	}
	return comps
}

func bfs(d, h, w int, open, seen []bool, queue *[]int) {
	q := *queue
	for len(q) > 0 {
		idx := q[len(q)-1]
		q = q[:len(q)-1]
		forNeighbors(d, h, w, idx, func(n int) {
			if open[n] && !seen[n] {
				seen[n] = true
				q = append(q, n)
			}
		})
	}
	*queue = q
}

func forNeighbors(d, h, w, idx int, visit func(n int)) {
	x := idx % w
	y := (idx / w) % h
	z := idx / (w * h)
	if x > 0 {
		visit(idx - 1)
	}
	if x < w-1 {
		visit(idx + 1)
	}
	if y > 0 {
		visit(idx - w)
	}
	if y < h-1 {
		visit(idx + w)
	}
	if z > 0 {
		visit(idx - w*h)
	}
	if z < d-1 {
		visit(idx + w*h)
	}
}

// Dilate3D grows mask by a box of the given radius (separable passes
// along x, y, z).
func Dilate3D(mask []bool, d, h, w, radius int) []bool {
	out := append([]bool(nil), mask...)
	for r := 0; r < radius; r++ {
		out = dilateOnce(out, d, h, w)
	}
	return out
}

// Erode3D shrinks mask by a box of the given radius.
func Erode3D(mask []bool, d, h, w, radius int) []bool {
	// Erosion is dilation of the complement.
	inv := make([]bool, len(mask))
	for i, m := range mask {
		inv[i] = !m
	}
	inv = Dilate3D(inv, d, h, w, radius)
	out := make([]bool, len(mask))
	for i, m := range inv {
		out[i] = !m
	}
	return out
}

// Close3D applies dilation followed by erosion, bridging small gaps
// (dense lesions inside lung).
func Close3D(mask []bool, d, h, w, radius int) []bool {
	return Erode3D(Dilate3D(mask, d, h, w, radius), d, h, w, radius)
}

func dilateOnce(mask []bool, d, h, w int) []bool {
	out := append([]bool(nil), mask...)
	for idx, m := range mask {
		if !m {
			continue
		}
		forNeighbors(d, h, w, idx, func(n int) { out[n] = true })
	}
	return out
}

// fillHolesPerSlice sets to true any false region of a slice that does
// not touch the slice border (e.g. consolidations fully surrounded by
// lung).
func fillHolesPerSlice(mask []bool, d, h, w int) {
	for z := 0; z < d; z++ {
		slice := mask[z*h*w : (z+1)*h*w]
		open := make([]bool, h*w)
		for i, m := range slice {
			open[i] = !m
		}
		reach := floodFromBoundary(1, h, w, open)
		for i := range slice {
			if !slice[i] && !reach[i] {
				slice[i] = true
			}
		}
	}
}
