package segment

import (
	"computecovid19/internal/memplan"
	"computecovid19/internal/volume"
)

// Scratch holds the segmenter's working memory so repeated
// segmentations of same-sized volumes allocate nothing: bool voxel maps
// come from a memplan arena (or plain make when mem is nil), and the
// integer stacks grow once to their high-water mark and are reused.
// A Scratch serves one segmentation at a time; give each worker its
// own or serialize access.
type Scratch struct {
	mem *memplan.Arena

	queue   []int // DFS stack for components and hole filling
	compIdx []int // component voxel indices, concatenated
	compOff []int // compIdx offsets; component c is [compOff[c], compOff[c+1])
	picked  []int // selection marks, one per component (0 = unpicked)
	colLo   []int // per-slice dense-tissue column spans (bodyHull)
	colHi   []int
}

// NewScratch builds a Scratch drawing bool buffers from mem. A nil mem
// falls back to plain allocation, which keeps Lungs and the pooled
// path running byte-identical code.
func NewScratch(mem *memplan.Arena) *Scratch { return &Scratch{mem: mem} }

func (s *Scratch) getBools(n int) []bool {
	if s.mem != nil {
		return s.mem.GetBools(n)
	}
	return make([]bool, n)
}

func (s *Scratch) putBools(b []bool) {
	if s.mem != nil {
		s.mem.PutBools(b)
	}
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// LungsInto segments the lung fields of v into the caller-provided
// mask (len D·H·W, fully overwritten). It computes exactly what Lungs
// computes — Lungs delegates here — with every intermediate drawn from
// the scratch memory.
func (s *Scratch) LungsInto(v *volume.Volume, opt Options, mask []bool) {
	n := len(v.Data)
	if len(mask) != n {
		panic("segment: LungsInto mask length must match the volume")
	}
	d, h, w := v.D, v.H, v.W

	// Candidate lung/air voxels.
	air := s.getBools(n)
	for i, hu := range v.Data {
		air[i] = float64(hu) < opt.AirThresholdHU
	}

	// Clip to the body hull (see Lungs for why not a boundary flood).
	inside := s.getBools(n)
	s.bodyHullInto(inside, d, h, w, air)
	for i := range air {
		air[i] = air[i] && inside[i] // air now holds the clipped candidates
	}

	// Connected components of the candidate air, then the largest few
	// become the lung mask. Selection is deterministic: size
	// descending, discovery order breaking ties (sort.Slice is
	// unstable, so the pre-pooled code could keep either of two
	// equal-sized components).
	seen := inside // the hull is no longer needed; reuse as the DFS seen set
	for i := range seen {
		seen[i] = false
	}
	s.componentsInto(d, h, w, air, seen)
	for i := range mask {
		mask[i] = false
	}
	nc := len(s.compOff) - 1
	s.picked = growInts(s.picked, nc)
	for c := range s.picked {
		s.picked[c] = 0
	}
	for kept := 0; kept < opt.MaxComponents; kept++ {
		best, bestSize := -1, 0
		for c := 0; c < nc; c++ {
			if s.picked[c] != 0 {
				continue
			}
			if size := s.compOff[c+1] - s.compOff[c]; size > bestSize {
				best, bestSize = c, size
			}
		}
		if best < 0 || bestSize < opt.MinComponentVoxels {
			break
		}
		s.picked[best] = 1
		for _, idx := range s.compIdx[s.compOff[best]:s.compOff[best+1]] {
			mask[idx] = true
		}
	}

	if opt.ClosingRadius > 0 {
		// air and inside are both free now; closing ping-pongs between
		// mask and one of them.
		s.closeInPlace(mask, air, d, h, w, opt.ClosingRadius)
	}
	if opt.FillHoles {
		s.fillHolesInPlace(mask, air[:h*w], inside[:h*w], d, h, w)
	}
	s.putBools(inside)
	s.putBools(air)
}

// bodyHullInto is bodyHull writing into a caller buffer.
func (s *Scratch) bodyHullInto(inside []bool, d, h, w int, air []bool) {
	s.colLo = growInts(s.colLo, w)
	s.colHi = growInts(s.colHi, w)
	colLo, colHi := s.colLo, s.colHi
	for z := 0; z < d; z++ {
		base := z * h * w
		for x := 0; x < w; x++ {
			colLo[x], colHi[x] = h, -1
			for y := 0; y < h; y++ {
				if !air[base+y*w+x] {
					if y < colLo[x] {
						colLo[x] = y
					}
					colHi[x] = y
				}
			}
		}
		for y := 0; y < h; y++ {
			rowLo, rowHi := w, -1
			for x := 0; x < w; x++ {
				if !air[base+y*w+x] {
					if x < rowLo {
						rowLo = x
					}
					rowHi = x
				}
			}
			for x := 0; x < w; x++ {
				inside[base+y*w+x] = x > rowLo && x < rowHi &&
					y > colLo[x] && y < colHi[x]
			}
		}
	}
}

// componentsInto records the 6-connected components of mask in
// s.compIdx/s.compOff. The neighbor walk is inlined rather than routed
// through forNeighbors: a visitor closure would capture the growing
// DFS stack and heap-allocate per component.
func (s *Scratch) componentsInto(d, h, w int, mask, seen []bool) {
	s.compIdx = s.compIdx[:0]
	s.compOff = append(s.compOff[:0], 0)
	q := s.queue[:0]
	for start, m := range mask {
		if !m || seen[start] {
			continue
		}
		seen[start] = true
		q = append(q, start)
		for len(q) > 0 {
			idx := q[len(q)-1]
			q = q[:len(q)-1]
			s.compIdx = append(s.compIdx, idx)
			x := idx % w
			y := (idx / w) % h
			z := idx / (w * h)
			if x > 0 {
				if nb := idx - 1; mask[nb] && !seen[nb] {
					seen[nb] = true
					q = append(q, nb)
				}
			}
			if x < w-1 {
				if nb := idx + 1; mask[nb] && !seen[nb] {
					seen[nb] = true
					q = append(q, nb)
				}
			}
			if y > 0 {
				if nb := idx - w; mask[nb] && !seen[nb] {
					seen[nb] = true
					q = append(q, nb)
				}
			}
			if y < h-1 {
				if nb := idx + w; mask[nb] && !seen[nb] {
					seen[nb] = true
					q = append(q, nb)
				}
			}
			if z > 0 {
				if nb := idx - w*h; mask[nb] && !seen[nb] {
					seen[nb] = true
					q = append(q, nb)
				}
			}
			if z < d-1 {
				if nb := idx + w*h; mask[nb] && !seen[nb] {
					seen[nb] = true
					q = append(q, nb)
				}
			}
		}
		s.compOff = append(s.compOff, len(s.compIdx))
	}
	s.queue = q[:0]
}

// dilateOnceInto writes one box-dilation step of src into dst
// (dst and src must not alias).
func dilateOnceInto(dst, src []bool, d, h, w int) {
	copy(dst, src)
	for idx, m := range src {
		if !m {
			continue
		}
		forNeighbors(d, h, w, idx, func(n int) { dst[n] = true })
	}
}

// closeInPlace is Close3D operating in place on mask with one
// same-sized ping-pong buffer. Morphology on booleans has a unique
// result, so this matches Close3D exactly.
func (s *Scratch) closeInPlace(mask, buf []bool, d, h, w, radius int) {
	cur, other := mask, buf
	for r := 0; r < radius; r++ { // dilate
		dilateOnceInto(other, cur, d, h, w)
		cur, other = other, cur
	}
	for i := range cur { // erode = dilate the complement
		cur[i] = !cur[i]
	}
	for r := 0; r < radius; r++ {
		dilateOnceInto(other, cur, d, h, w)
		cur, other = other, cur
	}
	if &cur[0] == &mask[0] {
		for i := range mask {
			mask[i] = !mask[i]
		}
	} else {
		for i := range mask {
			mask[i] = !cur[i]
		}
	}
}

// fillHolesInPlace is fillHolesPerSlice with the per-slice open map,
// reach map, and flood stack drawn from scratch memory. The flood is
// seeded from the slice border exactly as floodFromBoundary does for
// a single-slice volume.
func (s *Scratch) fillHolesInPlace(mask, open, reach []bool, d, h, w int) {
	for z := 0; z < d; z++ {
		slice := mask[z*h*w : (z+1)*h*w]
		for i, m := range slice {
			open[i] = !m
			reach[i] = false
		}
		q := s.queue[:0]
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if y == 0 || y == h-1 || x == 0 || x == w-1 {
					if idx := y*w + x; open[idx] && !reach[idx] {
						reach[idx] = true
						q = append(q, idx)
					}
				}
			}
		}
		for len(q) > 0 {
			idx := q[len(q)-1]
			q = q[:len(q)-1]
			x := idx % w
			y := idx / w
			if x > 0 {
				if nb := idx - 1; open[nb] && !reach[nb] {
					reach[nb] = true
					q = append(q, nb)
				}
			}
			if x < w-1 {
				if nb := idx + 1; open[nb] && !reach[nb] {
					reach[nb] = true
					q = append(q, nb)
				}
			}
			if y > 0 {
				if nb := idx - w; open[nb] && !reach[nb] {
					reach[nb] = true
					q = append(q, nb)
				}
			}
			if y < h-1 {
				if nb := idx + w; open[nb] && !reach[nb] {
					reach[nb] = true
					q = append(q, nb)
				}
			}
		}
		s.queue = q[:0]
		for i := range slice {
			if !slice[i] && !reach[i] {
				slice[i] = true
			}
		}
	}
}
