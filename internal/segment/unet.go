package segment

import (
	"math/rand"

	"computecovid19/internal/ag"
	"computecovid19/internal/nn"
	"computecovid19/internal/tensor"
	"computecovid19/internal/volume"
)

// UNet is a small 2D U-Net lung segmenter: the *learned* counterpart of
// the classical Lungs segmenter, closer in spirit to the AH-Net model
// the paper uses (AH-Net transfers 2D features into 3D volumes; we train
// per-slice and stack, which matches how our isotropic phantoms behave).
// It maps a normalized slice to per-pixel lung logits.
type UNet struct {
	Cfg UNetConfig

	encConv []*nn.Conv2D
	encBN   []*nn.BatchNorm
	decConv []*nn.Conv2D
	decBN   []*nn.BatchNorm
	head    *nn.Conv2D
}

// UNetConfig sizes the network.
type UNetConfig struct {
	// Channels is the width of the first level; deeper levels double it.
	Channels int
	// Levels is the number of down/up-sampling levels.
	Levels int
	// InitStd is the Gaussian weight-init std.
	InitStd float64
}

// DefaultUNet returns a two-level 8-channel network that trains in
// seconds on phantom slices.
func DefaultUNet() UNetConfig { return UNetConfig{Channels: 8, Levels: 2, InitStd: 0.05} }

// NewUNet constructs the segmenter.
func NewUNet(rng *rand.Rand, cfg UNetConfig) *UNet {
	u := &UNet{Cfg: cfg}
	in := 1
	ch := cfg.Channels
	for l := 0; l < cfg.Levels; l++ {
		u.encConv = append(u.encConv, nn.NewConv2D(rng, in, ch, 3, 1, 1, false, cfg.InitStd))
		u.encBN = append(u.encBN, nn.NewBatchNorm(ch))
		in = ch
		ch *= 2
	}
	// Bottleneck sits at the deepest level's channel width.
	bottleneck := in
	// Decoder: upsample, concat skip, conv.
	for l := cfg.Levels - 1; l >= 0; l-- {
		skipCh := cfg.Channels << l
		outCh := skipCh
		u.decConv = append(u.decConv, nn.NewConv2D(rng, bottleneck+skipCh, outCh, 3, 1, 1, false, cfg.InitStd))
		u.decBN = append(u.decBN, nn.NewBatchNorm(outCh))
		bottleneck = outCh
	}
	u.head = nn.NewConv2D(rng, cfg.Channels, 1, 1, 1, 0, true, cfg.InitStd)
	return u
}

// Forward maps (N, 1, H, W) normalized slices to (N, 1, H, W) logits.
// H and W must be divisible by 2^(Levels-1).
func (u *UNet) Forward(x *ag.Value) *ag.Value {
	var skips []*ag.Value
	h := x
	for l := 0; l < u.Cfg.Levels; l++ {
		h = ag.ReLU(u.encBN[l].Forward(u.encConv[l].Forward(h)))
		skips = append(skips, h)
		if l < u.Cfg.Levels-1 {
			h = ag.MaxPool2D(h, ag.Pool2DConfig{Kernel: 2, Stride: 2})
		}
	}
	for i, l := 0, u.Cfg.Levels-1; l >= 0; i, l = i+1, l-1 {
		if l < u.Cfg.Levels-1 {
			h = ag.UpsampleBilinear2D(h, 2)
		}
		h = ag.Concat(1, h, skips[l])
		h = ag.ReLU(u.decBN[i].Forward(u.decConv[i].Forward(h)))
	}
	return u.head.Forward(h)
}

// Params returns every trainable parameter.
func (u *UNet) Params() []*ag.Value {
	var ps []*ag.Value
	for i := range u.encConv {
		ps = append(ps, u.encConv[i].Params()...)
		ps = append(ps, u.encBN[i].Params()...)
	}
	for i := range u.decConv {
		ps = append(ps, u.decConv[i].Params()...)
		ps = append(ps, u.decBN[i].Params()...)
	}
	ps = append(ps, u.head.Params()...)
	return ps
}

// SetTraining toggles batch-norm behaviour.
func (u *UNet) SetTraining(train bool) {
	for i := range u.encBN {
		u.encBN[i].SetTraining(train)
	}
	for i := range u.decBN {
		u.decBN[i].SetTraining(train)
	}
}

// StateTensors exposes batch-norm statistics for serialization.
func (u *UNet) StateTensors() []*tensor.Tensor {
	var ts []*tensor.Tensor
	for i := range u.encBN {
		ts = append(ts, u.encBN[i].RunningMean, u.encBN[i].RunningVar)
	}
	for i := range u.decBN {
		ts = append(ts, u.decBN[i].RunningMean, u.decBN[i].RunningVar)
	}
	return ts
}

// UNetSample is one training slice: normalized image plus the binary
// lung target.
type UNetSample struct {
	Image *tensor.Tensor // (H, W) in [0, 1]
	Mask  []bool
}

// TrainUNet fits the segmenter with pixel-wise binary cross-entropy and
// returns the per-epoch loss curve.
func TrainUNet(u *UNet, samples []UNetSample, epochs int, lr float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	opt := nn.NewAdam(u.Params(), lr)
	u.SetTraining(true)
	size := samples[0].Image.Shape[0]

	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	var curve []float64
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total := 0.0
		for _, idx := range order {
			s := samples[idx]
			x := ag.Const(s.Image.Reshape(1, 1, size, size))
			target := tensor.New(1, 1, size, size)
			for i, m := range s.Mask {
				if m {
					target.Data[i] = 1
				}
			}
			opt.ZeroGrad()
			loss := ag.BCEWithLogitsLoss(u.Forward(x), ag.Const(target))
			loss.Backward()
			opt.Step()
			total += float64(loss.Scalar())
		}
		curve = append(curve, total/float64(len(samples)))
	}
	// Batch-norm recalibration, as in core.TrainClassifier.
	for pass := 0; pass < 4; pass++ {
		for _, s := range samples {
			u.Forward(ag.Const(s.Image.Reshape(1, 1, size, size)))
		}
	}
	u.SetTraining(false)
	return curve
}

// SegmentSlice returns the predicted lung mask of one normalized slice.
func (u *UNet) SegmentSlice(img *tensor.Tensor) []bool {
	u.SetTraining(false)
	h, w := img.Shape[0], img.Shape[1]
	logits := u.Forward(ag.Const(img.Reshape(1, 1, h, w)))
	mask := make([]bool, h*w)
	for i, v := range logits.T.Data {
		mask[i] = v > 0
	}
	return mask
}

// SegmentVolume applies the trained U-Net slice by slice to a normalized
// volume and returns the stacked 3D mask.
func (u *UNet) SegmentVolume(v *volume.Volume) []bool {
	mask := make([]bool, v.D*v.H*v.W)
	for z := 0; z < v.D; z++ {
		img := tensor.FromSlice(v.Slice(z), v.H, v.W)
		copy(mask[z*v.H*v.W:(z+1)*v.H*v.W], u.SegmentSlice(img))
	}
	return mask
}
