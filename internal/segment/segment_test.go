package segment

import (
	"math/rand"
	"testing"
	"testing/quick"

	"computecovid19/internal/phantom"
	"computecovid19/internal/volume"
)

// phantomVolume renders a chest phantom into a Volume plus its ground
// truth lung mask.
func phantomVolume(seed int64, size, depth, lesions int) (*volume.Volume, []bool) {
	rng := rand.New(rand.NewSource(seed))
	c := phantom.NewChest(rng, size, depth)
	if lesions > 0 {
		c.AddRandomLesions(rng, lesions, 0.7)
	}
	v := volume.New(depth, size, size)
	truth := make([]bool, depth*size*size)
	for z := 0; z < depth; z++ {
		copy(v.Slice(z), c.SliceHU(z))
		copy(truth[z*size*size:(z+1)*size*size], c.LungMask(z))
	}
	return v, truth
}

func TestLungsDiceOnHealthyPhantom(t *testing.T) {
	v, truth := phantomVolume(1, 64, 8, 0)
	mask := Lungs(v, DefaultOptions())
	if d := Dice(mask, truth); d < 0.88 {
		t.Fatalf("healthy phantom Dice = %v, want > 0.88", d)
	}
}

func TestLungsDiceWithLesions(t *testing.T) {
	v, truth := phantomVolume(2, 64, 8, 4)
	mask := Lungs(v, DefaultOptions())
	if d := Dice(mask, truth); d < 0.80 {
		t.Fatalf("diseased phantom Dice = %v, want > 0.80", d)
	}
}

func TestLungsExcludesOutsideAir(t *testing.T) {
	v, _ := phantomVolume(3, 64, 4, 0)
	mask := Lungs(v, DefaultOptions())
	// Corner voxels are outside-body air and must not be lung.
	if mask[0] || mask[len(mask)-1] {
		t.Fatal("outside-body air classified as lung")
	}
}

func TestApplyZeroesNonLung(t *testing.T) {
	v, _ := phantomVolume(4, 64, 4, 0)
	seg, mask := Apply(v, DefaultOptions())
	for i, keep := range mask {
		if !keep && seg.Data[i] != 0 {
			t.Fatalf("voxel %d not zeroed outside lung", i)
		}
		if keep && seg.Data[i] != v.Data[i] {
			t.Fatalf("voxel %d altered inside lung", i)
		}
	}
}

func TestDiceProperties(t *testing.T) {
	a := []bool{true, true, false, false}
	b := []bool{true, false, true, false}
	if d := Dice(a, b); d != 0.5 {
		t.Fatalf("Dice = %v, want 0.5", d)
	}
	if Dice(a, a) != 1 {
		t.Fatal("Dice(x,x) must be 1")
	}
	if Dice([]bool{false}, []bool{false}) != 1 {
		t.Fatal("Dice of empty masks must be 1")
	}
	if Dice([]bool{true}, []bool{false}) != 0 {
		t.Fatal("Dice of disjoint masks must be 0")
	}
}

func TestMorphologyClosingBridgesGaps(t *testing.T) {
	// A 1-voxel hole inside a solid block must survive closing.
	d, h, w := 1, 7, 7
	mask := make([]bool, d*h*w)
	for y := 1; y < 6; y++ {
		for x := 1; x < 6; x++ {
			mask[y*w+x] = true
		}
	}
	mask[3*w+3] = false // hole
	closed := Close3D(mask, d, h, w, 1)
	if !closed[3*w+3] {
		t.Fatal("closing did not fill a unit hole")
	}
}

func TestErodeShrinksDilateGrows(t *testing.T) {
	d, h, w := 3, 5, 5
	mask := make([]bool, d*h*w)
	mask[(1*h+2)*w+2] = true // single voxel
	grown := Dilate3D(mask, d, h, w, 1)
	count := 0
	for _, m := range grown {
		if m {
			count++
		}
	}
	if count != 7 { // voxel + 6 neighbors
		t.Fatalf("dilated single voxel to %d voxels, want 7", count)
	}
	back := Erode3D(grown, d, h, w, 1)
	backCount := 0
	for _, m := range back {
		if m {
			backCount++
		}
	}
	if backCount != 1 || !back[(1*h+2)*w+2] {
		t.Fatalf("erode(dilate(x)) = %d voxels, want the original 1", backCount)
	}
}

// Property: closing never removes voxels (extensive operator).
func TestClosingExtensiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, h, w := 2, 6, 6
		mask := make([]bool, d*h*w)
		for i := range mask {
			mask[i] = rng.Intn(3) == 0
		}
		closed := Close3D(mask, d, h, w, 1)
		for i, m := range mask {
			if m && !closed[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dice is symmetric and in [0, 1].
func TestDiceSymmetryProperty(t *testing.T) {
	f := func(av, bv []bool) bool {
		n := len(av)
		if len(bv) < n {
			n = len(bv)
		}
		a, b := av[:n], bv[:n]
		d1, d2 := Dice(a, b), Dice(b, a)
		return d1 == d2 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFillHolesConsolidation(t *testing.T) {
	// A phantom with a big consolidation: the dense lesion falls out of
	// the air threshold but hole filling must bring it back.
	rng := rand.New(rand.NewSource(5))
	c := phantom.NewChest(rng, 64, 6)
	c.Lesions = []phantom.Lesion{{
		Kind: phantom.Consolidation,
		CX:   72, CY: 5, CZ: 0, RX: 14, RY: 14, RZ: 10,
	}}
	v := volume.New(6, 64, 64)
	for z := 0; z < 6; z++ {
		copy(v.Slice(z), c.SliceHU(z))
	}
	truth := make([]bool, 6*64*64)
	for z := 0; z < 6; z++ {
		copy(truth[z*64*64:(z+1)*64*64], c.LungMask(z))
	}
	mask := Lungs(v, DefaultOptions())
	if d := Dice(mask, truth); d < 0.75 {
		t.Fatalf("consolidation case Dice = %v, want > 0.75", d)
	}
}
