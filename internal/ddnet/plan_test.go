package ddnet

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"computecovid19/internal/kernels"
	"computecovid19/internal/memplan"
	"computecovid19/internal/tensor"
)

// fusedBudget is the network-level accuracy contract of the compiled
// plan: BN folding rewrites (x−μ)·γ/√(σ²+ε)+β into scale·x+shift and
// the epilogue seeds the GEMM accumulator with the bias, each a legal
// reassociation worth a few float32 ULPs per layer. Accumulated through
// every layer of the tiny network and clamped to [0, 1], the drift
// stays far below 1e-3 absolute — while a wrong fold (dropped μ, bias
// applied twice, unflipped deconv panel) perturbs outputs by O(0.1).
const fusedBudget = 1e-3

func maxAbsDiff(t *testing.T, want, got []*tensor.Tensor) float64 {
	t.Helper()
	var worst float64
	for i := range want {
		for j := range want[i].Data {
			d := math.Abs(float64(want[i].Data[j]) - float64(got[i].Data[j]))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

func enhanceInto(m *DDnet, mem *memplan.Arena, imgs []*tensor.Tensor) []*tensor.Tensor {
	outs := make([]*tensor.Tensor, len(imgs))
	for i := range outs {
		outs[i] = tensor.New(imgs[i].Shape[0], imgs[i].Shape[1])
	}
	m.EnhanceBatchInto(context.Background(), mem, imgs, outs)
	return outs
}

// TestWarmFusedMatchesUnfused is the tentpole accuracy property: a
// warmed network (BN-folded weights, fused epilogues, pre-flipped
// deconv panels) enhances within the documented budget of the unwarmed
// layer-wise forward on the same weights.
func TestWarmFusedMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := New(rng, TinyConfig())
	imgs := evalTestImages(rng, 2, 32, 32)

	want := enhanceInto(m, memplan.New(), imgs) // plan not compiled yet
	if m.plan.Load() != nil {
		t.Fatal("plain inference must not compile a plan")
	}
	m.Warm()
	if m.plan.Load() == nil {
		t.Fatal("Warm must compile the fused plan")
	}
	got := enhanceInto(m, memplan.New(), imgs)
	if d := maxAbsDiff(t, want, got); d > fusedBudget {
		t.Fatalf("fused forward drifted %g from the layer-wise path (budget %g)", d, fusedBudget)
	}
}

// TestWarmFusedDeterministicAcrossWorkers pins bit-determinism of the
// warm path: changing the parallelism (GOMAXPROCS governs the default
// worker count and hence the chunking of every fused kernel) must not
// change a single output bit.
func TestWarmFusedDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := New(rng, TinyConfig())
	m.Warm()
	imgs := evalTestImages(rng, 2, 32, 32)

	old := runtime.GOMAXPROCS(1)
	want := enhanceInto(m, memplan.New(), imgs)
	runtime.GOMAXPROCS(4)
	got := enhanceInto(m, memplan.New(), imgs)
	runtime.GOMAXPROCS(old)
	requireSameBits(t, want, got, "fused workers=4 vs workers=1")
}

// TestWarmFallsBackOnNonEpilogueRung pins the rung-selection contract:
// a compiled plan only runs when the selected rung can execute
// epilogues; on any other rung the forward takes the layer-wise path
// and stays bit-identical to the graph twin.
func TestWarmFallsBackOnNonEpilogueRung(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := New(rng, TinyConfig())
	imgs := evalTestImages(rng, 1, 32, 32)
	want := graphEnhance(m, imgs)

	m.Warm()
	old := kernels.Default().Name
	defer func() {
		if err := kernels.SetDefault(old); err != nil {
			t.Fatal(err)
		}
	}()
	if err := kernels.SetDefault("gemm"); err != nil {
		t.Fatal(err)
	}
	got := enhanceInto(m, memplan.New(), imgs)
	requireSameBits(t, want, got, "warm model on non-epilogue rung")
}

// TestSetTrainingInvalidatesPlan pins the invalidation contract: going
// back to training drops the plan (its folded weights bake in BN
// statistics that are about to change), and the per-call
// SetTraining(false) on inference entry points does not resurrect or
// recompile it.
func TestSetTrainingInvalidatesPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m := New(rng, TinyConfig())
	m.Warm()
	m.SetTraining(true)
	if m.plan.Load() != nil {
		t.Fatal("SetTraining(true) must drop the compiled plan")
	}
	m.SetTraining(false)
	if m.plan.Load() != nil {
		t.Fatal("SetTraining(false) must not compile a plan (that is Warm's job)")
	}
	imgs := evalTestImages(rng, 1, 32, 32)
	want := graphEnhance(m, imgs)
	got := enhanceInto(m, memplan.New(), imgs)
	requireSameBits(t, want, got, "invalidated plan")
	m.Warm()
	if m.plan.Load() == nil {
		t.Fatal("re-Warm after invalidation must recompile")
	}
}

// TestAllocsWarmEnhanceFused pins the fused plan's performance
// invariant: the packed weights live in plan-compile-time buffers and
// every kernel draws scratch from the pools, so a warm fused
// EnhanceBatchInto performs zero steady-state heap allocations.
func TestAllocsWarmEnhanceFused(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	m := New(rng, TinyConfig())
	m.Warm()
	imgs := evalTestImages(rng, 1, 32, 32)
	outs := []*tensor.Tensor{tensor.New(32, 32)}
	mem := memplan.New()
	ctx := context.Background()
	warm := func() { m.EnhanceBatchInto(ctx, mem, imgs, outs) }
	warm()
	if m.plan.Load() == nil || kernels.Default().ConvEp == nil {
		t.Fatal("fused path not active")
	}
	if n := testing.AllocsPerRun(20, warm); n != 0 {
		t.Fatalf("warm fused EnhanceBatchInto allocates %v allocs/op, want 0", n)
	}
}
