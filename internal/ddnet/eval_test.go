package ddnet

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"computecovid19/internal/ag"
	"computecovid19/internal/memplan"
	"computecovid19/internal/tensor"
)

func evalTestImages(rng *rand.Rand, n, h, w int) []*tensor.Tensor {
	imgs := make([]*tensor.Tensor, n)
	for i := range imgs {
		imgs[i] = tensor.New(h, w)
		for j := range imgs[i].Data {
			imgs[i].Data[j] = rng.Float32()
		}
	}
	return imgs
}

// graphEnhance is the tape-building reference path EnhanceBatch used
// before the pooled forward existed.
func graphEnhance(m *DDnet, imgs []*tensor.Tensor) []*tensor.Tensor {
	h, w := imgs[0].Shape[0], imgs[0].Shape[1]
	m.SetTraining(false)
	x := tensor.New(len(imgs), 1, h, w)
	for i, img := range imgs {
		copy(x.Data[i*h*w:(i+1)*h*w], img.Data)
	}
	out := m.Forward(ag.Const(x))
	res := make([]*tensor.Tensor, len(imgs))
	for i := range imgs {
		t := tensor.New(h, w)
		copy(t.Data, out.T.Data[i*h*w:(i+1)*h*w])
		res[i] = t.Clamp(0, 1)
	}
	return res
}

func requireSameBits(t *testing.T, want, got []*tensor.Tensor, label string) {
	t.Helper()
	for i := range want {
		for j := range want[i].Data {
			wb := math.Float32bits(want[i].Data[j])
			gb := math.Float32bits(got[i].Data[j])
			if wb != gb {
				t.Fatalf("%s: image %d element %d: %08x != %08x",
					label, i, j, gb, wb)
			}
		}
	}
}

// TestEnhancePooledBitIdentical pins the tentpole correctness claim:
// the pooled, tape-free eval forward produces byte-for-byte the same
// enhanced images as the autograd graph forward — on a cold arena, a
// warm arena, and with release poisoning enabled.
func TestEnhancePooledBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := New(rng, TinyConfig())
	imgs := evalTestImages(rng, 3, 32, 32)
	want := graphEnhance(m, imgs)

	mem := memplan.New()
	outs := make([]*tensor.Tensor, len(imgs))
	for i := range outs {
		outs[i] = tensor.New(32, 32)
	}
	m.EnhanceBatchInto(context.Background(), mem, imgs, outs)
	requireSameBits(t, want, outs, "cold arena")

	for i := range outs {
		outs[i].Fill(-1)
	}
	m.EnhanceBatchInto(context.Background(), mem, imgs, outs)
	requireSameBits(t, want, outs, "warm arena")

	prev := tensor.SetMemDebug(true)
	defer tensor.SetMemDebug(prev)
	for i := range outs {
		outs[i].Fill(-1)
	}
	m.EnhanceBatchInto(context.Background(), memplan.New(), imgs, outs)
	requireSameBits(t, want, outs, "memdebug arena")

	got := m.EnhanceBatch(imgs) // global-arena convenience path
	requireSameBits(t, want, got, "EnhanceBatch")
}

// TestAllocsWarmEnhance pins the tentpole performance claim at the
// network level: a warm EnhanceBatchInto performs zero steady-state
// heap allocations per call.
func TestAllocsWarmEnhance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(rng, TinyConfig())
	imgs := evalTestImages(rng, 1, 32, 32)
	outs := []*tensor.Tensor{tensor.New(32, 32)}
	mem := memplan.New()
	ctx := context.Background()
	warm := func() { m.EnhanceBatchInto(ctx, mem, imgs, outs) }
	warm()
	if n := testing.AllocsPerRun(20, warm); n != 0 {
		t.Fatalf("warm EnhanceBatchInto allocates %v allocs/op, want 0", n)
	}
}
