// Package ddnet implements the paper's core contribution: DDnet, the
// DenseNet + Deconvolution image-enhancement network of §2.2 (originally
// Zhang et al., IEEE TMI 2018 — the paper's reference [45]).
//
// The architecture follows Table 2 of the paper: a convolution network
// of four dense blocks with transition 1×1 convolutions and 3×3/s2 max
// pools (37 convolution layers in the paper configuration), and a
// deconvolution network of four bilinear un-pooling stages each followed
// by a 5×5 and a 1×1 transposed convolution (8 deconvolution layers).
// Global shortcut connections concatenate each dense block's output onto
// the matching un-pooling output (§2.2.3).
//
// The network is size- and width-generic: PaperConfig reproduces
// Table 2 exactly, while smaller configs keep tests and demos fast on a
// laptop-class CPU. The layer counts scale as
//
//	convs   = 1 + stages·(2·denseLayers + 1)
//	deconvs = 2·stages
//
// which yields 37 and 8 for the paper configuration.
package ddnet

import (
	"context"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"

	"computecovid19/internal/ag"
	"computecovid19/internal/kernels"
	"computecovid19/internal/memplan"
	"computecovid19/internal/nn"
	"computecovid19/internal/obs"
	"computecovid19/internal/tensor"
)

// Config selects the DDnet architecture.
type Config struct {
	// BaseChannels is the trunk width F (paper: 16).
	BaseChannels int
	// Growth is the dense-block growth rate (paper: 16).
	Growth int
	// DenseLayers is the number of densely connected layers per block
	// (paper: 4).
	DenseLayers int
	// Kernel is the spatial kernel of dense-block growth convolutions
	// and 5×5 deconvolutions (paper: 5).
	Kernel int
	// Stages is the number of pooling levels / dense blocks (paper: 4).
	// Input height and width must be divisible by 2^Stages.
	Stages int
	// Residual makes the network predict a correction added to its
	// input instead of the image itself. Denoising residuals are
	// near-zero-mean, which converges far faster at the small training
	// scales this reproduction runs at; disable for the paper-literal
	// direct mapping.
	Residual bool
	// InitStd is the Gaussian weight-init standard deviation (§3.1.1:
	// 0.01).
	InitStd float64
	// Slope is the leaky-ReLU negative slope.
	Slope float32
}

// Arch converts the configuration to the dependency-free shape mirror
// the low-level kernel walkers (kernels.RunDDnetInference,
// kernels.DDnetCounts) take.
func (c Config) Arch() kernels.Arch {
	return kernels.Arch{
		BaseChannels: c.BaseChannels,
		Growth:       c.Growth,
		DenseLayers:  c.DenseLayers,
		Kernel:       c.Kernel,
		Stages:       c.Stages,
	}
}

// PaperConfig returns the Table 2 architecture (16 base channels,
// growth 16, four dense blocks of four layers, 5×5 kernels).
func PaperConfig() Config {
	return Config{
		BaseChannels: 16, Growth: 16, DenseLayers: 4, Kernel: 5,
		Stages: 4, Residual: true, InitStd: 0.01, Slope: 0.01,
	}
}

// TinyConfig returns a reduced DDnet for tests and demos: two stages,
// two dense layers, 3×3 kernels, 8 channels. The topology (dense blocks,
// transitions, global shortcuts) is identical to the paper network.
func TinyConfig() Config {
	return Config{
		BaseChannels: 8, Growth: 8, DenseLayers: 2, Kernel: 3,
		Stages: 2, Residual: true, InitStd: 0.05, Slope: 0.01,
	}
}

// DDnet is the enhancement network.
type DDnet struct {
	Cfg Config

	convIn *nn.Conv2D
	bnIn   *nn.BatchNorm

	blocks []*nn.DenseBlock2D
	transC []*nn.Conv2D // 1×1 transition after each dense block
	transB []*nn.BatchNorm

	// Decoder, one entry per stage (walked bottom-up).
	deconvA  []*nn.ConvTranspose2D // k×k
	deconvAB []*nn.BatchNorm
	deconvB  []*nn.ConvTranspose2D // 1×1
	deconvBB []*nn.BatchNorm       // nil for the final stage

	// Cached bilinear un-pooling tables for the pooled eval path,
	// keyed by input axis length (eval.go). Lazily built; the mutex
	// makes concurrent serve workers safe.
	evalMu   sync.Mutex
	evalTabs map[int]*ag.BilinearTable

	// Compiled fused execution plan (plan.go). Nil until Warm; dropped
	// on SetTraining(true). planMu serializes compilation only — readers
	// go through the atomic load.
	planMu sync.Mutex
	plan   atomic.Pointer[execPlan]
}

// New constructs a DDnet with Gaussian-initialized weights drawn from
// rng.
func New(rng *rand.Rand, cfg Config) *DDnet {
	f := cfg.BaseChannels
	m := &DDnet{Cfg: cfg}
	m.convIn = nn.NewConv2D(rng, 1, f, 7, 1, 3, false, cfg.InitStd)
	m.bnIn = nn.NewBatchNorm(f)

	blockOut := f + cfg.DenseLayers*cfg.Growth
	for s := 0; s < cfg.Stages; s++ {
		m.blocks = append(m.blocks, nn.NewDenseBlock2D(rng, f, cfg.Growth, cfg.DenseLayers, cfg.Kernel, cfg.InitStd))
		m.transC = append(m.transC, nn.NewConv2D(rng, blockOut, f, 1, 1, 0, false, cfg.InitStd))
		m.transB = append(m.transB, nn.NewBatchNorm(f))
	}

	// Decoder stage s (s = 0 is the deepest). Skip channels: dense-block
	// outputs for all but the shallowest stage, which reuses the stem.
	for s := 0; s < cfg.Stages; s++ {
		skipCh := blockOut
		if s == cfg.Stages-1 {
			skipCh = f // stem features at full resolution
		}
		inCh := f + skipCh
		m.deconvA = append(m.deconvA, nn.NewConvTranspose2D(rng, inCh, 2*f, cfg.Kernel, 1, cfg.Kernel/2, false, cfg.InitStd))
		m.deconvAB = append(m.deconvAB, nn.NewBatchNorm(2*f))
		outCh := f
		if s == cfg.Stages-1 {
			outCh = 1
		}
		m.deconvB = append(m.deconvB, nn.NewConvTranspose2D(rng, 2*f, outCh, 1, 1, 0, false, cfg.InitStd))
		if s == cfg.Stages-1 {
			m.deconvBB = append(m.deconvBB, nil)
		} else {
			m.deconvBB = append(m.deconvBB, nn.NewBatchNorm(outCh))
		}
	}
	return m
}

// NumConvLayers reports the convolution-layer count (37 for the paper
// configuration).
func (m *DDnet) NumConvLayers() int {
	return 1 + m.Cfg.Stages*(2*m.Cfg.DenseLayers+1)
}

// NumDeconvLayers reports the deconvolution-layer count (8 for the paper
// configuration).
func (m *DDnet) NumDeconvLayers() int { return 2 * m.Cfg.Stages }

// Forward enhances a batch of (N, 1, H, W) images in [0, 1]. H and W
// must be divisible by 2^Stages.
func (m *DDnet) Forward(x *ag.Value) *ag.Value {
	return m.ForwardCtx(context.Background(), x)
}

// ForwardCtx is Forward continuing the context's trace: the forward
// span nests under the caller's active span (the serving micro-batch,
// a training step), so a request trace reaches layer depth.
func (m *DDnet) ForwardCtx(ctx context.Context, x *ag.Value) *ag.Value {
	_, sp := obs.StartCtx(ctx, "ddnet/forward")
	defer sp.End()
	// Every convolution and deconvolution below runs on the selected
	// kernel rung; the rung span pins which ladder point produced the
	// timing, parenting the per-stage spans.
	ksp := sp.Child("kernels/rung")
	if ksp != nil {
		ksp.SetAttr("rung", kernels.Default().Name)
	}
	defer ksp.End()
	act := func(v *ag.Value) *ag.Value { return ag.LeakyReLU(v, m.Cfg.Slope) }

	stemSp := ksp.Child("ddnet/stem")
	stem := act(m.bnIn.Forward(m.convIn.Forward(x)))
	stemSp.End()

	// Encoder: pool, dense block, transition — collecting skips. Each
	// stage is a child span, so chrome://tracing shows the per-layer
	// split that Table 5 aggregates into conv/deconv/other.
	skips := make([]*ag.Value, 0, m.Cfg.Stages+1)
	skips = append(skips, stem)
	h := stem
	// Stage names are built only when tracing, so the disabled path
	// allocates nothing.
	stageSpan := func(kind string, s int) *obs.Span {
		if ksp == nil {
			return nil
		}
		return ksp.Child("ddnet/" + kind + strconv.Itoa(s))
	}
	for s := 0; s < m.Cfg.Stages; s++ {
		ssp := stageSpan("enc", s)
		h = ag.MaxPool2D(h, ag.Pool2DConfig{Kernel: 3, Stride: 2, Padding: 1})
		db := m.blocks[s].Forward(h)
		if s < m.Cfg.Stages-1 {
			skips = append(skips, db)
		}
		h = act(m.transB[s].Forward(m.transC[s].Forward(db)))
		ssp.End()
	}

	// Decoder: un-pool, global shortcut concat, two deconvolutions.
	for s := 0; s < m.Cfg.Stages; s++ {
		ssp := stageSpan("dec", s)
		h = ag.UpsampleBilinear2D(h, 2)
		skip := skips[len(skips)-1-s]
		h = ag.Concat(1, h, skip)
		h = act(m.deconvAB[s].Forward(m.deconvA[s].Forward(h)))
		h = m.deconvB[s].Forward(h)
		if m.deconvBB[s] != nil {
			h = act(m.deconvBB[s].Forward(h))
		}
		ssp.End()
	}

	if m.Cfg.Residual {
		h = ag.Add(h, x)
	}
	return h
}

// Params returns every trainable parameter.
func (m *DDnet) Params() []*ag.Value {
	ps := m.convIn.Params()
	ps = append(ps, m.bnIn.Params()...)
	for s := 0; s < m.Cfg.Stages; s++ {
		ps = append(ps, m.blocks[s].Params()...)
		ps = append(ps, m.transC[s].Params()...)
		ps = append(ps, m.transB[s].Params()...)
	}
	for s := 0; s < m.Cfg.Stages; s++ {
		ps = append(ps, m.deconvA[s].Params()...)
		ps = append(ps, m.deconvAB[s].Params()...)
		ps = append(ps, m.deconvB[s].Params()...)
		if m.deconvBB[s] != nil {
			ps = append(ps, m.deconvBB[s].Params()...)
		}
	}
	return ps
}

// SetTraining toggles batch-norm behaviour network-wide. Entering
// training mode drops any compiled fused plan: its folded weights bake
// in BN statistics that are about to change. (Entering eval mode does
// NOT compile one — that is Warm's job — so the per-call
// SetTraining(false) on the inference entry points stays cheap.)
func (m *DDnet) SetTraining(train bool) {
	if train {
		m.plan.Store(nil)
	}
	m.bnIn.SetTraining(train)
	for s := 0; s < m.Cfg.Stages; s++ {
		m.blocks[s].SetTraining(train)
		m.transB[s].SetTraining(train)
		m.deconvAB[s].SetTraining(train)
		if m.deconvBB[s] != nil {
			m.deconvBB[s].SetTraining(train)
		}
	}
}

// StateTensors exposes batch-norm running statistics for serialization.
func (m *DDnet) StateTensors() []*tensor.Tensor {
	var ts []*tensor.Tensor
	add := func(b *nn.BatchNorm) {
		ts = append(ts, b.RunningMean, b.RunningVar)
	}
	add(m.bnIn)
	for s := 0; s < m.Cfg.Stages; s++ {
		for _, l := range m.blocks[s].Layers {
			add(l.BN1)
			add(l.BN2)
		}
		add(m.transB[s])
	}
	for s := 0; s < m.Cfg.Stages; s++ {
		add(m.deconvAB[s])
		if m.deconvBB[s] != nil {
			add(m.deconvBB[s])
		}
	}
	return ts
}

// Enhance runs the network in eval mode on a single (H, W) image in
// [0, 1] and returns the enhanced image, clamped back to [0, 1].
func (m *DDnet) Enhance(img *tensor.Tensor) *tensor.Tensor {
	return m.EnhanceBatch([]*tensor.Tensor{img})[0]
}

// EnhanceBatch runs the network in eval mode on a batch of same-size
// (H, W) images in [0, 1] with a single (N, 1, H, W) forward pass and
// returns the enhanced images, clamped back to [0, 1]. Every op in the
// network treats batch samples independently with identical accumulation
// order, so the outputs are bit-identical to N single-image Enhance
// calls — the property that lets internal/serve micro-batch slices from
// different scans without changing results (pinned by a regression
// test). On a warm network (eval mode already set) concurrent callers
// must still serialize: one forward pass at a time per weight set.
func (m *DDnet) EnhanceBatch(imgs []*tensor.Tensor) []*tensor.Tensor {
	return m.EnhanceBatchCtx(context.Background(), imgs)
}

// EnhanceBatchCtx is EnhanceBatch continuing the context's trace into
// the forward pass. It runs the pooled tape-free eval forward against
// the process-wide arena; the returned tensors are freshly allocated
// and owned by the caller (they are never pooled back).
func (m *DDnet) EnhanceBatchCtx(ctx context.Context, imgs []*tensor.Tensor) []*tensor.Tensor {
	if len(imgs) == 0 {
		return nil
	}
	h, w := imgs[0].Shape[0], imgs[0].Shape[1]
	res := make([]*tensor.Tensor, len(imgs))
	for i := range imgs {
		res[i] = tensor.New(h, w)
	}
	m.EnhanceBatchInto(ctx, memplan.Global(), imgs, res)
	return res
}

// Loss is the paper's composite objective (Equation 1):
// MSE + 0.1·(1 − MS-SSIM).
func Loss(pred, target *ag.Value) *ag.Value {
	return ag.CompositeEnhancementLoss(pred, target, ag.DefaultSSIM())
}
