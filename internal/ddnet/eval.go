package ddnet

import (
	"context"
	"strconv"

	"computecovid19/internal/ag"
	"computecovid19/internal/kernels"
	"computecovid19/internal/memplan"
	"computecovid19/internal/obs"
	"computecovid19/internal/tensor"
)

// The pooled eval forward mirrors ForwardCtx op for op — same layer
// order, same kernel dispatch, same span tree — but draws every
// activation from a memplan.Scope and builds no autograd tape, so a
// warm forward performs zero steady-state heap allocations. Bit
// identity with the graph path is pinned by TestEnhancePooledBitIdentical.

// bilinearTab returns the cached ×2 un-pooling table for an axis of
// length n, building it on first use. Safe for concurrent forwards.
func (m *DDnet) bilinearTab(n int) *ag.BilinearTable {
	m.evalMu.Lock()
	t := m.evalTabs[n]
	if t == nil {
		if m.evalTabs == nil {
			m.evalTabs = make(map[int]*ag.BilinearTable)
		}
		t = ag.NewBilinearTable(n, 2*n)
		m.evalTabs[n] = t
	}
	m.evalMu.Unlock()
	return t
}

// forwardEval runs the eval-mode forward on plain tensors from sc.
// The input x is owned by the caller and is never freed here (the
// residual head reads it last); the returned tensor is scope-owned.
// Every intermediate is freed as soon as its last consumer has run,
// so peak arena footprint stays near the widest single stage.
func (m *DDnet) forwardEval(ctx context.Context, sc *memplan.Scope, x *tensor.Tensor) *tensor.Tensor {
	// A warmed network with an epilogue-capable rung selected runs the
	// compiled fused plan (plan.go); everything else — unwarmed models,
	// training-adjacent callers, non-fused rungs — keeps the layer-wise
	// path below, which stays bit-identical to the graph forward.
	if pl := m.plan.Load(); pl != nil {
		if convEp := kernels.Default().ConvEp; convEp != nil {
			return m.forwardEvalFused(ctx, sc, x, pl, convEp)
		}
	}
	_, sp := obs.StartCtx(ctx, "ddnet/forward")
	defer sp.End()
	ksp := sp.Child("kernels/rung")
	if ksp != nil {
		ksp.SetAttr("rung", kernels.Default().Name)
	}
	defer ksp.End()

	stemSp := ksp.Child("ddnet/stem")
	c0 := m.convIn.Infer(sc, x)
	stem := m.bnIn.Infer(sc, c0)
	sc.Free(c0)
	ag.EvalLeakyReLUInPlace(stem, m.Cfg.Slope)
	stemSp.End()

	var skipArr [8]*tensor.Tensor
	skips := append(skipArr[:0], stem)
	h := stem
	for s := 0; s < m.Cfg.Stages; s++ {
		var ssp *obs.Span
		if ksp != nil {
			ssp = ksp.Child("ddnet/enc" + strconv.Itoa(s))
		}
		hp := ag.EvalMaxPool2D(sc, h, ag.Pool2DConfig{Kernel: 3, Stride: 2, Padding: 1})
		if s > 0 { // at s == 0, h is the stem — kept as a skip
			sc.Free(h)
		}
		db := m.blocks[s].Infer(sc, hp)
		sc.Free(hp)
		keepDB := s < m.Cfg.Stages-1
		if keepDB {
			skips = append(skips, db)
		}
		tc := m.transC[s].Infer(sc, db)
		if !keepDB {
			sc.Free(db)
		}
		h = m.transB[s].Infer(sc, tc)
		sc.Free(tc)
		ag.EvalLeakyReLUInPlace(h, m.Cfg.Slope)
		ssp.End()
	}

	for s := 0; s < m.Cfg.Stages; s++ {
		var ssp *obs.Span
		if ksp != nil {
			ssp = ksp.Child("ddnet/dec" + strconv.Itoa(s))
		}
		ty := m.bilinearTab(h.Shape[2])
		tx := m.bilinearTab(h.Shape[3])
		up := ag.EvalUpsampleBilinear2D(sc, h, 2, ty, tx)
		sc.Free(h)
		skip := skips[len(skips)-1-s]
		pair := [2]*tensor.Tensor{up, skip}
		cat := ag.EvalConcat(sc, 1, pair[:])
		sc.Free(up)
		sc.Free(skip) // each skip has exactly one consumer
		da := m.deconvA[s].Infer(sc, cat)
		sc.Free(cat)
		ab := m.deconvAB[s].Infer(sc, da)
		sc.Free(da)
		ag.EvalLeakyReLUInPlace(ab, m.Cfg.Slope)
		h = m.deconvB[s].Infer(sc, ab)
		sc.Free(ab)
		if m.deconvBB[s] != nil {
			bb := m.deconvBB[s].Infer(sc, h)
			sc.Free(h)
			ag.EvalLeakyReLUInPlace(bb, m.Cfg.Slope)
			h = bb
		}
		ssp.End()
	}

	if m.Cfg.Residual {
		ag.EvalAddInPlace(h, x) // ag.Add with the fresh operand on the left
	}
	return h
}

// EnhanceBatchInto enhances a batch of same-size (H, W) images in
// [0, 1] into caller-provided output tensors, drawing all scratch from
// mem. A warm arena makes this the zero-allocation serving hot path:
// inputs and outputs may be long-lived caller buffers (they are never
// pooled), and everything in between is recycled through mem.
func (m *DDnet) EnhanceBatchInto(ctx context.Context, mem *memplan.Arena, imgs, outs []*tensor.Tensor) {
	if len(imgs) == 0 {
		return
	}
	if len(outs) != len(imgs) {
		panic("ddnet: EnhanceBatchInto wants one output per image")
	}
	h, w := imgs[0].Shape[0], imgs[0].Shape[1]
	for i, img := range imgs {
		if img.Rank() != 2 {
			panic("ddnet: EnhanceBatch wants rank-2 (H, W) images")
		}
		if img.Shape[0] != h || img.Shape[1] != w {
			panic("ddnet: EnhanceBatch images must share one size")
		}
		if outs[i].Rank() != 2 || outs[i].Shape[0] != h || outs[i].Shape[1] != w {
			panic("ddnet: EnhanceBatchInto output must match the image shape")
		}
	}
	m.SetTraining(false)
	sc := mem.NewScope()
	x := sc.Get(len(imgs), 1, h, w)
	for i, img := range imgs {
		copy(x.Data[i*h*w:(i+1)*h*w], img.Data)
	}
	y := m.forwardEval(ctx, sc, x)
	for i := range imgs {
		copy(outs[i].Data, y.Data[i*h*w:(i+1)*h*w])
		ag.EvalClampInPlace(outs[i], 0, 1)
	}
	sc.Close()
}
