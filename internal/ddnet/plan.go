package ddnet

import (
	"context"
	"strconv"

	"computecovid19/internal/ag"
	"computecovid19/internal/kernels"
	"computecovid19/internal/memplan"
	"computecovid19/internal/nn"
	"computecovid19/internal/obs"
	"computecovid19/internal/tensor"
)

// The fused execution plan is compiled once at Warm time and replaces
// the layer-by-layer eval forward with BN-folded, epilogue-fused
// kernel calls:
//
//   - every conv/deconv→BN→LeakyReLU triple (the stem, each dense
//     layer's 1×1 bottleneck with BN2, the transitions, and the
//     decoder's deconvolutions) collapses into ONE ConvEp call — the
//     BatchNorm folds into the packed weights/bias and the activation
//     runs in the epilogue while the output tile is cache-hot,
//     eliminating two full feature-map passes per layer;
//   - dense-layer BN1 (unfoldable: its input is the dense concat, and
//     the activation sits between it and the bottleneck) runs the
//     single-pass BNActInfer instead of separate BN and act passes;
//   - transposed-convolution weights are flipped into convolution
//     layout once here instead of on every call (deconvGEMM's per-call
//     flip remains as the cold-path fallback).
//
// The packed buffers come from memplan, so compiling a plan warms the
// same pool the forward draws from and the warm path stays at 0
// allocs/op. SetTraining(true) drops the plan (weights are about to
// change); the buffers are left to the garbage collector rather than
// recycled so a forward racing the invalidation can never see a reused
// buffer.

// densePlan is one dense layer: BN1+act single pass, the folded 1×1
// bottleneck (⊕BN2⊕act), and the raw k×k growth convolution.
type densePlan struct {
	bn1   *nn.FoldedBN
	conv1 *nn.FoldedConv
	conv2 *nn.FoldedConv
}

// execPlan is the whole network's compiled form, mirroring the field
// layout of DDnet itself.
type execPlan struct {
	stem    *nn.FoldedConv   // convIn ⊕ bnIn ⊕ act
	blocks  [][]densePlan    // per stage, per dense layer
	trans   []*nn.FoldedConv // transC ⊕ transB ⊕ act
	deconvA []*nn.FoldedConv // deconvA ⊕ deconvAB ⊕ act (pre-flipped)
	deconvB []*nn.FoldedConv // deconvB (⊕ deconvBB ⊕ act); last stage unfolded
}

// Warm switches the network to eval mode and compiles the fused
// execution plan. Idempotent; concurrent with other Warm calls but not
// with training (like all inference entry points). Serving replicas
// warm before going concurrent (core.Pipeline.Warm), so every hot-path
// forward runs the compiled plan.
func (m *DDnet) Warm() {
	m.SetTraining(false)
	m.planMu.Lock()
	defer m.planMu.Unlock()
	if m.plan.Load() == nil {
		m.plan.Store(m.compilePlan())
	}
}

func (m *DDnet) compilePlan() *execPlan {
	slope := m.Cfg.Slope
	pl := &execPlan{
		stem: nn.FoldConvBN(m.convIn, m.bnIn, true, slope),
	}
	for s := 0; s < m.Cfg.Stages; s++ {
		var layers []densePlan
		for _, l := range m.blocks[s].Layers {
			layers = append(layers, densePlan{
				bn1:   nn.FoldBNAct(l.BN1, l.Slope),
				conv1: nn.FoldConvBN(l.Conv1, l.BN2, true, l.Slope),
				conv2: nn.FoldConvBN(l.Conv2, nil, false, 0),
			})
		}
		pl.blocks = append(pl.blocks, layers)
		pl.trans = append(pl.trans, nn.FoldConvBN(m.transC[s], m.transB[s], true, slope))
	}
	for s := 0; s < m.Cfg.Stages; s++ {
		pl.deconvA = append(pl.deconvA, nn.FoldDeconvBN(m.deconvA[s], m.deconvAB[s], true, slope))
		// The last stage has no BB BatchNorm and no activation; the fold
		// still pre-flips the weights.
		act := m.deconvBB[s] != nil
		pl.deconvB = append(pl.deconvB, nn.FoldDeconvBN(m.deconvB[s], m.deconvBB[s], act, slope))
	}
	return pl
}

// evalFolded runs one packed convolution (or pre-flipped transposed
// convolution) with its fused epilogue, batch elements in series like
// ag.EvalConv2D.
func evalFolded(sc *memplan.Scope, x *tensor.Tensor, f *nn.FoldedConv,
	convEp func(x, w, out []float32, s kernels.ConvShape, workers int, ep kernels.Epilogue)) *tensor.Tensor {
	n, h, wd := x.Shape[0], x.Shape[2], x.Shape[3]
	out := sc.Get(n, f.OutC, h, wd)
	ks := kernels.ConvShape{InC: f.InC, H: h, W: wd, OutC: f.OutC, K: f.K}
	ep := f.Epilogue()
	plane := f.InC * h * wd
	oplane := f.OutC * h * wd
	for ni := 0; ni < n; ni++ {
		convEp(x.Data[ni*plane:(ni+1)*plane], f.W,
			out.Data[ni*oplane:(ni+1)*oplane], ks, 0, ep)
	}
	return out
}

// evalBNAct runs the single-pass folded BatchNorm+LeakyReLU
// out-of-place (the input is the dense concat, which other layers still
// read).
func evalBNAct(sc *memplan.Scope, x *tensor.Tensor, f *nn.FoldedBN) *tensor.Tensor {
	n, c := x.Shape[0], x.Shape[1]
	hw := x.Shape[2] * x.Shape[3]
	out := sc.Get(x.Shape...)
	chw := c * hw
	for ni := 0; ni < n; ni++ {
		kernels.BNActInfer(x.Data[ni*chw:(ni+1)*chw], out.Data[ni*chw:(ni+1)*chw],
			c, hw, f.Scale, f.Shift, f.Slope, 0)
	}
	return out
}

// forwardEvalFused is forwardEval running the compiled plan: identical
// dataflow and span tree, with each conv→BN→act triple fused into one
// kernel call. Numerics agree with the unfused path within the
// documented ULP budget (BN folding reassociates the per-channel
// affine); bit-identity across worker counts still holds.
func (m *DDnet) forwardEvalFused(ctx context.Context, sc *memplan.Scope, x *tensor.Tensor, pl *execPlan,
	convEp func(x, w, out []float32, s kernels.ConvShape, workers int, ep kernels.Epilogue)) *tensor.Tensor {
	_, sp := obs.StartCtx(ctx, "ddnet/forward")
	defer sp.End()
	ksp := sp.Child("kernels/rung")
	if ksp != nil {
		ksp.SetAttr("rung", kernels.Default().Name)
		ksp.SetAttr("plan", "fused")
	}
	defer ksp.End()

	stemSp := ksp.Child("ddnet/stem")
	stem := evalFolded(sc, x, pl.stem, convEp)
	stemSp.End()

	var skipArr [8]*tensor.Tensor
	skips := append(skipArr[:0], stem)
	h := stem
	for s := 0; s < m.Cfg.Stages; s++ {
		var ssp *obs.Span
		if ksp != nil {
			ssp = ksp.Child("ddnet/enc" + strconv.Itoa(s))
		}
		hp := ag.EvalMaxPool2D(sc, h, ag.Pool2DConfig{Kernel: 3, Stride: 2, Padding: 1})
		if s > 0 { // at s == 0, h is the stem — kept as a skip
			sc.Free(h)
		}
		db := m.inferBlockFused(sc, hp, pl.blocks[s], convEp)
		sc.Free(hp)
		keepDB := s < m.Cfg.Stages-1
		if keepDB {
			skips = append(skips, db)
		}
		h = evalFolded(sc, db, pl.trans[s], convEp)
		if !keepDB {
			sc.Free(db)
		}
		ssp.End()
	}

	for s := 0; s < m.Cfg.Stages; s++ {
		var ssp *obs.Span
		if ksp != nil {
			ssp = ksp.Child("ddnet/dec" + strconv.Itoa(s))
		}
		ty := m.bilinearTab(h.Shape[2])
		tx := m.bilinearTab(h.Shape[3])
		up := ag.EvalUpsampleBilinear2D(sc, h, 2, ty, tx)
		sc.Free(h)
		skip := skips[len(skips)-1-s]
		pair := [2]*tensor.Tensor{up, skip}
		cat := ag.EvalConcat(sc, 1, pair[:])
		sc.Free(up)
		sc.Free(skip) // each skip has exactly one consumer
		da := evalFolded(sc, cat, pl.deconvA[s], convEp)
		sc.Free(cat)
		h = evalFolded(sc, da, pl.deconvB[s], convEp)
		sc.Free(da)
		ssp.End()
	}

	if m.Cfg.Residual {
		ag.EvalAddInPlace(h, x)
	}
	return h
}

// inferBlockFused is DenseBlock2D.Infer on the plan: same dense
// connectivity and free schedule, folded layers.
func (m *DDnet) inferBlockFused(sc *memplan.Scope, x *tensor.Tensor, layers []densePlan,
	convEp func(x, w, out []float32, s kernels.ConvShape, workers int, ep kernels.Epilogue)) *tensor.Tensor {
	var featArr [8]*tensor.Tensor
	features := append(featArr[:0], x)
	for i := range layers {
		l := &layers[i]
		in := ag.EvalConcat(sc, 1, features)
		h := evalBNAct(sc, in, l.bn1)
		if in != x {
			sc.Free(in)
		}
		h2 := evalFolded(sc, h, l.conv1, convEp)
		sc.Free(h)
		y := evalFolded(sc, h2, l.conv2, convEp)
		sc.Free(h2)
		features = append(features, y)
	}
	out := ag.EvalConcat(sc, 1, features)
	for _, f := range features[1:] {
		sc.Free(f)
	}
	return out
}
