package ddnet

import "fmt"

// LayerKind tags a row of the architecture table.
type LayerKind int

// Layer kinds appearing in DDnet's Table 2 trace.
const (
	KindConv LayerKind = iota
	KindPool
	KindDenseBlock
	KindUnpool
	KindDeconv
)

// String names the layer kind as the paper's Table 2 does.
func (k LayerKind) String() string {
	switch k {
	case KindConv:
		return "Convolution"
	case KindPool:
		return "Pooling"
	case KindDenseBlock:
		return "Dense Block"
	case KindUnpool:
		return "Un-pooling"
	case KindDeconv:
		return "Deconvolution"
	default:
		return "Unknown"
	}
}

// LayerShape is one row of the DDnet architecture trace: the layer and
// its output extent, mirroring Table 2 of the paper.
type LayerShape struct {
	Kind     LayerKind
	Name     string
	OutC     int // output channels
	OutH     int
	OutW     int
	Kernel   int // filter size (0 where not applicable)
	Stride   int
	InC      int // input channels
	ScaleFac int // un-pooling scale factor (0 otherwise)
}

// Details renders the paper's "Details" column.
func (l LayerShape) Details() string {
	switch l.Kind {
	case KindUnpool:
		return fmt.Sprintf("scale factor=%d", l.ScaleFac)
	case KindDenseBlock:
		return fmt.Sprintf("filter size=[1x1; %dx%d] x layers, stride=%d", l.Kernel, l.Kernel, l.Stride)
	default:
		return fmt.Sprintf("filter size=%dx%d, stride=%d", l.Kernel, l.Kernel, l.Stride)
	}
}

// LayerShapes traces the network layer by layer for a square input of
// the given size, reproducing Table 2 for the paper configuration at
// size 512.
func (m *DDnet) LayerShapes(size int) []LayerShape {
	cfg := m.Cfg
	f := cfg.BaseChannels
	blockOut := f + cfg.DenseLayers*cfg.Growth
	var rows []LayerShape
	h := size

	rows = append(rows, LayerShape{Kind: KindConv, Name: "Convolution 1",
		OutC: f, OutH: h, OutW: h, Kernel: 7, Stride: 1, InC: 1})
	for s := 0; s < cfg.Stages; s++ {
		h /= 2
		rows = append(rows, LayerShape{Kind: KindPool, Name: fmt.Sprintf("Pooling %d", s+1),
			OutC: f, OutH: h, OutW: h, Kernel: 3, Stride: 2, InC: f})
		rows = append(rows, LayerShape{Kind: KindDenseBlock, Name: fmt.Sprintf("Dense Block %d", s+1),
			OutC: blockOut, OutH: h, OutW: h, Kernel: cfg.Kernel, Stride: 1, InC: f})
		rows = append(rows, LayerShape{Kind: KindConv, Name: fmt.Sprintf("Convolution %d", s+2),
			OutC: f, OutH: h, OutW: h, Kernel: 1, Stride: 1, InC: blockOut})
	}
	for s := 0; s < cfg.Stages; s++ {
		h *= 2
		rows = append(rows, LayerShape{Kind: KindUnpool, Name: fmt.Sprintf("Un-pooling %d", s+1),
			OutC: f, OutH: h, OutW: h, ScaleFac: 2, InC: f})
		skipCh := blockOut
		if s == cfg.Stages-1 {
			skipCh = f
		}
		rows = append(rows, LayerShape{Kind: KindDeconv, Name: fmt.Sprintf("Deconvolution %d", 2*s+1),
			OutC: 2 * f, OutH: h, OutW: h, Kernel: cfg.Kernel, Stride: 1, InC: f + skipCh})
		outCh := f
		if s == cfg.Stages-1 {
			outCh = 1
		}
		rows = append(rows, LayerShape{Kind: KindDeconv, Name: fmt.Sprintf("Deconvolution %d", 2*s+2),
			OutC: outCh, OutH: h, OutW: h, Kernel: 1, Stride: 1, InC: 2 * f})
	}
	return rows
}
