package ddnet

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"computecovid19/internal/ag"
	"computecovid19/internal/metrics"
	"computecovid19/internal/nn"
	"computecovid19/internal/tensor"
)

func TestPaperConfigLayerCounts(t *testing.T) {
	// §2.2: "37 convolution layers ... eight deconvolution layers".
	m := New(rand.New(rand.NewSource(1)), PaperConfig())
	if got := m.NumConvLayers(); got != 37 {
		t.Fatalf("paper DDnet has %d conv layers, want 37", got)
	}
	if got := m.NumDeconvLayers(); got != 8 {
		t.Fatalf("paper DDnet has %d deconv layers, want 8", got)
	}
}

func TestForwardPreservesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := New(rng, TinyConfig())
	x := ag.Const(tensor.New(1, 1, 32, 32).RandU(rng, 0, 1))
	y := m.Forward(x)
	want := []int{1, 1, 32, 32}
	for i, d := range want {
		if y.T.Shape[i] != d {
			t.Fatalf("output shape %v, want %v", y.T.Shape, want)
		}
	}
}

func TestForwardBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(rng, TinyConfig())
	x := ag.Const(tensor.New(3, 1, 16, 16).RandU(rng, 0, 1))
	y := m.Forward(x)
	if y.T.Shape[0] != 3 {
		t.Fatalf("batch dim = %d, want 3", y.T.Shape[0])
	}
}

func TestPaperShapesAtFullResolution(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution forward pass is slow")
	}
	// Verify the Table 2 bottleneck: 512 → 32 after four pools.
	cfg := PaperConfig()
	for s, want := 0, 512; s <= cfg.Stages; s, want = s+1, want/2 {
		_ = want
	}
	// Shape arithmetic only (cheap): 512/2^4 = 32.
	if 512>>cfg.Stages != 32 {
		t.Fatalf("paper config bottleneck = %d, want 32", 512>>cfg.Stages)
	}
}

func TestTrainingDenoisesImages(t *testing.T) {
	// The headline behaviour: after a few steps on clean/noisy pairs,
	// the enhanced image is closer to the clean one than the noisy
	// input was.
	rng := rand.New(rand.NewSource(4))
	m := New(rng, TinyConfig())
	opt := nn.NewAdam(m.Params(), 2e-3)

	const size = 16
	mkPair := func() (noisy, clean *tensor.Tensor) {
		clean = tensor.New(1, 1, size, size)
		// Smooth structure: soft disk.
		cx, cy := 4.0+8*rng.Float64(), 4.0+8*rng.Float64()
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				d := math.Hypot(float64(x)-cx, float64(y)-cy)
				clean.Set(float32(0.8*math.Exp(-d*d/16)+0.1), 0, 0, y, x)
			}
		}
		noisy = clean.Clone().AddInPlace(tensor.New(1, 1, size, size).RandN(rng, 0, 0.1))
		noisy.Clamp(0, 1)
		return noisy, clean
	}

	m.SetTraining(true)
	for step := 0; step < 60; step++ {
		noisy, clean := mkPair()
		opt.ZeroGrad()
		loss := Loss(m.Forward(ag.Const(noisy)), ag.Const(clean))
		loss.Backward()
		opt.Step()
	}

	m.SetTraining(false)
	var mseNoisy, mseEnh float64
	for trial := 0; trial < 5; trial++ {
		noisy, clean := mkPair()
		enhanced := m.Forward(ag.Const(noisy))
		mseNoisy += metrics.MSE(noisy, clean)
		mseEnh += metrics.MSE(enhanced.T, clean)
	}
	if mseEnh >= mseNoisy {
		t.Fatalf("enhancement did not help: MSE noisy %v, enhanced %v", mseNoisy/5, mseEnh/5)
	}
}

func TestEnhanceConvenience(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New(rng, TinyConfig())
	img := tensor.New(16, 16).RandU(rng, 0, 1)
	out := m.Enhance(img)
	if out.Rank() != 2 || out.Shape[0] != 16 {
		t.Fatalf("Enhance output shape %v", out.Shape)
	}
	if out.Min() < 0 || out.Max() > 1 {
		t.Fatalf("Enhance output out of [0,1]: [%v, %v]", out.Min(), out.Max())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := New(rng, TinyConfig())
	// Push some data through so running stats are non-trivial.
	src.SetTraining(true)
	x := ag.Const(tensor.New(1, 1, 16, 16).RandU(rng, 0, 1))
	src.Forward(x)

	var buf bytes.Buffer
	if err := nn.SaveModule(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := New(rand.New(rand.NewSource(7)), TinyConfig())
	if err := nn.LoadModule(&buf, dst); err != nil {
		t.Fatal(err)
	}
	src.SetTraining(false)
	dst.SetTraining(false)
	y1 := src.Forward(x)
	y2 := dst.Forward(x)
	if !y1.T.AllClose(y2.T, 1e-6) {
		t.Fatal("save/load changed DDnet output")
	}
}

func TestGradientsReachEveryParameter(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := New(rng, TinyConfig())
	m.SetTraining(true)
	x := ag.Const(tensor.New(1, 1, 16, 16).RandU(rng, 0, 1))
	target := ag.Const(tensor.New(1, 1, 16, 16).RandU(rng, 0, 1))
	loss := Loss(m.Forward(x), target)
	loss.Backward()
	for i, p := range m.Params() {
		if p.Grad == nil {
			t.Fatalf("param %d received no gradient", i)
		}
		nonzero := false
		for _, g := range p.Grad.Data {
			if g != 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			t.Errorf("param %d gradient is all zeros", i)
		}
	}
}

func TestResidualOffStillRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := TinyConfig()
	cfg.Residual = false
	m := New(rng, cfg)
	x := ag.Const(tensor.New(1, 1, 16, 16).RandU(rng, 0, 1))
	y := m.Forward(x)
	if y.T.Shape[2] != 16 {
		t.Fatalf("non-residual output shape %v", y.T.Shape)
	}
}

func TestParamCountsDifferByConfig(t *testing.T) {
	tiny := New(rand.New(rand.NewSource(10)), TinyConfig())
	paper := New(rand.New(rand.NewSource(10)), PaperConfig())
	nt := nn.NumParams(tiny.Params())
	np := nn.NumParams(paper.Params())
	if nt <= 0 || np <= nt {
		t.Fatalf("param counts: tiny %d, paper %d", nt, np)
	}
}

func TestEnhanceBatchBitIdenticalToSingle(t *testing.T) {
	// internal/serve micro-batches slices from different scans into one
	// forward pass; the results must not depend on batch composition.
	rng := rand.New(rand.NewSource(11))
	m := New(rng, TinyConfig())
	imgs := make([]*tensor.Tensor, 5)
	for i := range imgs {
		imgs[i] = tensor.New(16, 16).RandU(rng, 0, 1)
	}
	single := make([]*tensor.Tensor, len(imgs))
	for i, img := range imgs {
		single[i] = m.Enhance(img)
	}
	batched := m.EnhanceBatch(imgs)
	for i := range imgs {
		for j := range single[i].Data {
			if single[i].Data[j] != batched[i].Data[j] {
				t.Fatalf("image %d pixel %d: single %v != batched %v",
					i, j, single[i].Data[j], batched[i].Data[j])
			}
		}
	}
}

func TestEnhanceBatchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := New(rng, TinyConfig())
	if got := m.EnhanceBatch(nil); got != nil {
		t.Fatalf("empty batch should return nil, got %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mixed-size batch should panic")
		}
	}()
	m.EnhanceBatch([]*tensor.Tensor{tensor.New(16, 16), tensor.New(32, 32)})
}
