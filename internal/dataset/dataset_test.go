package dataset

import (
	"testing"

	"computecovid19/internal/metrics"
)

func TestBuildEnhancementPairs(t *testing.T) {
	cfg := DefaultEnhancementConfig()
	cfg.Count = 4
	cfg.Size = 32
	cfg.Views = 90
	cfg.Detectors = 64
	pairs := BuildEnhancement(cfg)
	if len(pairs) != 4 {
		t.Fatalf("got %d pairs, want 4", len(pairs))
	}
	for i, p := range pairs {
		if p.Clean.Rank() != 2 || p.Clean.Shape[0] != 32 {
			t.Fatalf("pair %d clean shape %v", i, p.Clean.Shape)
		}
		if p.Clean.Min() < 0 || p.Clean.Max() > 1 || p.LowDose.Min() < 0 || p.LowDose.Max() > 1 {
			t.Fatalf("pair %d not normalized to [0,1]", i)
		}
		// Low-dose must differ from clean (noise + reconstruction), but
		// still correlate strongly (same anatomy).
		mse := metrics.MSE(p.Clean, p.LowDose)
		if mse == 0 {
			t.Fatalf("pair %d low-dose identical to clean", i)
		}
		if mse > 0.05 {
			t.Fatalf("pair %d low-dose unrecognizable: MSE %v", i, mse)
		}
	}
}

func TestBuildEnhancementDeterministic(t *testing.T) {
	cfg := DefaultEnhancementConfig()
	cfg.Count = 2
	cfg.Size = 32
	cfg.Views = 60
	cfg.Detectors = 48
	a := BuildEnhancement(cfg)
	b := BuildEnhancement(cfg)
	for i := range a {
		if !a[i].Clean.AllClose(b[i].Clean, 0) || !a[i].LowDose.AllClose(b[i].LowDose, 0) {
			t.Fatalf("pair %d not deterministic", i)
		}
	}
}

func TestLowerDoseNoisier(t *testing.T) {
	cfg := DefaultEnhancementConfig()
	cfg.Count = 3
	cfg.Size = 32
	cfg.Views = 90
	cfg.Detectors = 64
	cfg.LesionFraction = 0
	cfg.DoseDivisor = 1
	high := BuildEnhancement(cfg)
	cfg.DoseDivisor = 64
	low := BuildEnhancement(cfg)
	var mseHigh, mseLow float64
	for i := range high {
		mseHigh += metrics.MSE(high[i].Clean, high[i].LowDose)
		mseLow += metrics.MSE(low[i].Clean, low[i].LowDose)
	}
	if mseLow <= mseHigh {
		t.Fatalf("1/64 dose should be noisier: high %v, low %v", mseHigh, mseLow)
	}
}

func TestBuildCohortLabels(t *testing.T) {
	cfg := DefaultCohortConfig()
	cfg.Count = 10
	cfg.Size = 32
	cfg.Depth = 4
	cases := BuildCohort(cfg)
	if len(cases) != 10 {
		t.Fatalf("got %d cases, want 10", len(cases))
	}
	pos := 0
	for _, c := range cases {
		if c.Label {
			pos++
		}
		if c.Volume.D != 4 || c.Volume.H != 32 {
			t.Fatalf("case volume shape %dx%dx%d", c.Volume.D, c.Volume.H, c.Volume.W)
		}
		if len(c.Truth) != 4*32*32 {
			t.Fatalf("truth mask length %d", len(c.Truth))
		}
	}
	if pos != 5 {
		t.Fatalf("positives = %d, want 5", pos)
	}
}

func TestCohortPositivesDenserLungs(t *testing.T) {
	cfg := DefaultCohortConfig()
	cfg.Count = 12
	cfg.Size = 48
	cfg.Depth = 6
	cfg.Severity = 1.0
	cases := BuildCohort(cfg)
	meanLung := func(c Case) float64 {
		var s float64
		var n int
		for i, in := range c.Truth {
			if in {
				s += float64(c.Volume.Data[i])
				n++
			}
		}
		return s / float64(n)
	}
	var posMean, negMean float64
	var nPos, nNeg int
	for _, c := range cases {
		if c.Label {
			posMean += meanLung(c)
			nPos++
		} else {
			negMean += meanLung(c)
			nNeg++
		}
	}
	posMean /= float64(nPos)
	negMean /= float64(nNeg)
	if posMean <= negMean+20 {
		t.Fatalf("positive lungs should be denser: pos %v HU, neg %v HU", posMean, negMean)
	}
}

func TestSplit(t *testing.T) {
	items := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	train, val, test := Split(items, 0.6, 0.2)
	if len(train) != 6 || len(val) != 2 || len(test) != 2 {
		t.Fatalf("split sizes %d/%d/%d", len(train), len(val), len(test))
	}
	if train[0] != 1 || test[1] != 10 {
		t.Fatal("split not order-preserving")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad fractions")
		}
	}()
	Split(items, 0.8, 0.5)
}

func TestPaperSources(t *testing.T) {
	srcs := PaperSources()
	if len(srcs) != 4 {
		t.Fatalf("Table 1 has 4 sources, got %d", len(srcs))
	}
	for _, s := range srcs {
		if s.Name == "" || s.Contents == "" || s.Substitute == "" {
			t.Fatalf("incomplete source entry: %+v", s)
		}
	}
}
