// Package dataset builds the synthetic training and evaluation corpora
// that substitute for the paper's clinical data sources (Table 1): pairs
// of clean/low-dose CT slices for Enhancement AI (the paper's simulated
// BIMCV low-dose set, §3.1.2) and labelled 3D cohorts for Segmentation +
// Classification AI (§3.3.2). Everything is deterministic in the seed.
package dataset

import (
	"fmt"
	"math/rand"

	"computecovid19/internal/ctsim"
	"computecovid19/internal/phantom"
	"computecovid19/internal/tensor"
	"computecovid19/internal/volume"
)

// EnhancementPair is one training sample for DDnet: the target image Y
// (normal-dose) and the degraded input X (low-dose FBP reconstruction),
// both normalized to [0, 1].
type EnhancementPair struct {
	Clean, LowDose *tensor.Tensor // rank-2 (H, W)
	// HasLesions records whether the underlying phantom was COVID-like.
	HasLesions bool
}

// EnhancementConfig parameterizes pair generation.
type EnhancementConfig struct {
	// Size is the square image size in pixels.
	Size int
	// Count is the number of pairs.
	Count int
	// Views and Detectors set the simulated acquisition resolution;
	// scale them with Size (the paper's full-scale values are 720/1024).
	Views, Detectors int
	// PhotonsPerRay is the blank-scan factor b_i (paper: 1e6); the
	// low-dose image additionally divides this by DoseDivisor.
	PhotonsPerRay float64
	// DoseDivisor is the dose reduction of the degraded image (4 =
	// quarter dose, as in the Mayo data).
	DoseDivisor float64
	// LesionFraction is the fraction of phantoms given COVID lesions.
	LesionFraction float64
	// Seed makes the dataset reproducible.
	Seed int64
}

// DefaultEnhancementConfig returns a laptop-scale configuration: 64 px
// slices with a correspondingly scaled fan-beam acquisition.
func DefaultEnhancementConfig() EnhancementConfig {
	return EnhancementConfig{
		Size: 64, Count: 16, Views: 180, Detectors: 128,
		PhotonsPerRay: 1e6, DoseDivisor: 16, LesionFraction: 0.5, Seed: 1,
	}
}

// BuildEnhancement generates Count clean/low-dose pairs: each clean
// slice is a chest phantom rendered in HU and normalized; the low-dose
// twin goes through the full physics chain — fan-beam Siddon projection,
// Beer's-law Poisson noise at the reduced dose, and FBP reconstruction —
// exactly the paper's §3.1.2 procedure.
func BuildEnhancement(cfg EnhancementConfig) []EnhancementPair {
	rng := rand.New(rand.NewSource(cfg.Seed))
	grid := ctsim.Grid{Size: cfg.Size, PixelSize: 360.0 / float64(cfg.Size)}
	fan := ctsim.PaperFanGeometry(grid.FOV())
	fan.NumViews = cfg.Views
	fan.NumDetectors = cfg.Detectors
	fan.DetectorSpacing = grid.FOV() * 1.5 * (fan.SDD / fan.SOD) / float64(cfg.Detectors)

	pairs := make([]EnhancementPair, 0, cfg.Count)
	for i := 0; i < cfg.Count; i++ {
		chest := phantom.NewChest(rng, cfg.Size, 1)
		lesioned := rng.Float64() < cfg.LesionFraction
		if lesioned {
			chest.AddRandomLesions(rng, 1+rng.Intn(3), 0.6+0.4*rng.Float64())
		}
		hu := chest.SliceHU(0)

		mu := ctsim.HUImageToMu(hu)
		sino := ctsim.ForwardProjectFan(grid, mu, fan)
		noisy := ctsim.ApplyPoissonNoise(sino, cfg.PhotonsPerRay/cfg.DoseDivisor, rng)
		recMu := ctsim.ReconstructFan(noisy, grid, fan, ctsim.RamLak)
		recHU := ctsim.MuImageToHU(recMu)

		clean := tensor.New(cfg.Size, cfg.Size)
		low := tensor.New(cfg.Size, cfg.Size)
		for j := range hu {
			clean.Data[j] = float32(ctsim.NormalizeHU(float64(hu[j]), ctsim.FullWindowLo, ctsim.FullWindowHi))
			low.Data[j] = float32(ctsim.NormalizeHU(float64(recHU[j]), ctsim.FullWindowLo, ctsim.FullWindowHi))
		}
		pairs = append(pairs, EnhancementPair{Clean: clean, LowDose: low, HasLesions: lesioned})
	}
	return pairs
}

// Case is one labelled 3D scan of a classification cohort.
type Case struct {
	Volume *volume.Volume // HU (degraded when the config says LowDose)
	// Clean is the pre-degradation HU volume (equal to Volume when no
	// degradation was applied); the accuracy experiments train the
	// classifier on clean scans and test on degraded ones.
	Clean *volume.Volume
	Label bool // true = COVID-positive
	// Truth is the generative lung mask, for segmentation scoring.
	Truth []bool
}

// CohortConfig parameterizes cohort generation.
type CohortConfig struct {
	Size, Depth int
	Count       int
	// PositiveFraction is the fraction of COVID-positive cases.
	PositiveFraction float64
	// Severity scales lesion size for positives.
	Severity float64
	// LowDose, when true, degrades every slice through the CT physics
	// chain (slow); false renders clean HU volumes.
	LowDose bool
	// Views/Detectors/PhotonsPerRay configure the degradation.
	Views, Detectors int
	PhotonsPerRay    float64
	Seed             int64
}

// DefaultCohortConfig returns a laptop-scale cohort configuration.
func DefaultCohortConfig() CohortConfig {
	return CohortConfig{
		Size: 32, Depth: 8, Count: 20, PositiveFraction: 0.5,
		Severity: 0.9, Views: 120, Detectors: 64, PhotonsPerRay: 5e4, Seed: 2,
	}
}

// BuildCohort generates Count labelled volumes with the configured
// positive fraction (positives carry 2–4 random lesions).
func BuildCohort(cfg CohortConfig) []Case {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var grid ctsim.Grid
	var fan ctsim.FanGeometry
	if cfg.LowDose {
		grid = ctsim.Grid{Size: cfg.Size, PixelSize: 360.0 / float64(cfg.Size)}
		fan = ctsim.PaperFanGeometry(grid.FOV())
		fan.NumViews = cfg.Views
		fan.NumDetectors = cfg.Detectors
		fan.DetectorSpacing = grid.FOV() * 1.5 * (fan.SDD / fan.SOD) / float64(cfg.Detectors)
	}

	nPos := int(float64(cfg.Count)*cfg.PositiveFraction + 0.5)
	cases := make([]Case, 0, cfg.Count)
	for i := 0; i < cfg.Count; i++ {
		positive := i < nPos
		chest := phantom.NewChest(rng, cfg.Size, cfg.Depth)
		if positive {
			chest.AddRandomLesions(rng, 2+rng.Intn(3), cfg.Severity)
		}
		v := volume.New(cfg.Depth, cfg.Size, cfg.Size)
		clean := volume.New(cfg.Depth, cfg.Size, cfg.Size)
		truth := make([]bool, cfg.Depth*cfg.Size*cfg.Size)
		for z := 0; z < cfg.Depth; z++ {
			hu := chest.SliceHU(z)
			copy(clean.Slice(z), hu)
			if cfg.LowDose {
				mu := ctsim.HUImageToMu(hu)
				sino := ctsim.ForwardProjectFan(grid, mu, fan)
				noisy := ctsim.ApplyPoissonNoise(sino, cfg.PhotonsPerRay, rng)
				hu = ctsim.MuImageToHU(ctsim.ReconstructFan(noisy, grid, fan, ctsim.RamLak))
			}
			copy(v.Slice(z), hu)
			copy(truth[z*cfg.Size*cfg.Size:(z+1)*cfg.Size*cfg.Size], chest.LungMask(z))
		}
		if !cfg.LowDose {
			clean = v
		}
		cases = append(cases, Case{Volume: v, Clean: clean, Label: positive, Truth: truth})
	}
	// Deterministic shuffle so positives are not front-loaded.
	rng.Shuffle(len(cases), func(i, j int) { cases[i], cases[j] = cases[j], cases[i] })
	return cases
}

// Split partitions items deterministically into train/val/test by the
// given fractions (which must sum to <= 1; the remainder goes to test).
func Split[T any](items []T, trainFrac, valFrac float64) (train, val, test []T) {
	if trainFrac < 0 || valFrac < 0 || trainFrac+valFrac > 1 {
		panic(fmt.Sprintf("dataset: bad split fractions %v/%v", trainFrac, valFrac))
	}
	nTrain := int(float64(len(items)) * trainFrac)
	nVal := int(float64(len(items)) * valFrac)
	return items[:nTrain], items[nTrain : nTrain+nVal], items[nTrain+nVal:]
}

// Source describes one radiological data source — Table 1 of the paper —
// and the synthetic substitute this repository uses in its place.
type Source struct {
	Name       string
	Contents   string
	Substitute string
}

// PaperSources returns the paper's Table 1 plus our substitution notes.
func PaperSources() []Source {
	return []Source{
		{
			Name:       "Mayo Clinic",
			Contents:   "Eight (8) healthy chest CT scans & assoc. projection data at full & quarter dosage",
			Substitute: "healthy phantoms + simulated full/quarter-dose fan-beam projections",
		},
		{
			Name:       "Medical Imaging Databank of the Valencia Region (BIMCV)",
			Contents:   "X-ray scans & CT scans of 34 COVID-19 patients",
			Substitute: "lesioned phantoms + simulated low-dose reconstructions",
		},
		{
			Name:       "Medical Imaging and Data Resource Center (MIDRC)",
			Contents:   "229 CT scans of COVID-19 patients",
			Substitute: "lesioned 3D phantom cohort (positive labels)",
		},
		{
			Name:       "Lung Image Database Consortium Image Collection (LIDC)",
			Contents:   "1301 healthy chest CT scans",
			Substitute: "healthy 3D phantom cohort (negative labels)",
		},
	}
}
