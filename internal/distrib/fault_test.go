package distrib

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"computecovid19/internal/obs"
	"computecovid19/internal/tensor"
)

// Fault-injection suite. Every test here is named TestFault* so the CI
// chaos job can select exactly this suite with `go test -run Fault
// -count=2 -race`.

func testRing(plan *FaultPlan) RingOptions {
	return RingOptions{
		Timeout: 200 * time.Millisecond,
		Retries: 4,
		Backoff: time.Millisecond,
		Faults:  plan,
	}
}

func randomVectors(seed int64, n, length int) (vecs [][]float32, want []float32) {
	rng := rand.New(rand.NewSource(seed))
	vecs = make([][]float32, n)
	want = make([]float32, length)
	for i := range vecs {
		vecs[i] = make([]float32, length)
		for j := range vecs[i] {
			vecs[i][j] = float32(rng.NormFloat64())
			want[j] += vecs[i][j] / float32(n)
		}
	}
	return vecs, want
}

func checkMean(t *testing.T, vecs [][]float32, want []float32) {
	t.Helper()
	for i := range vecs {
		for j := range want {
			diff := float64(vecs[i][j] - want[j])
			if diff < -1e-4 || diff > 1e-4 {
				t.Fatalf("node %d elem %d = %v, want %v", i, j, vecs[i][j], want[j])
			}
		}
	}
}

func TestFaultFreeResilientMatchesPlain(t *testing.T) {
	vecs, want := randomVectors(1, 5, 37)
	if err := ResilientAllReduceMean(vecs, testRing(nil)); err != nil {
		t.Fatal(err)
	}
	checkMean(t, vecs, want)
}

func TestFaultDropRecoversByRetry(t *testing.T) {
	plan := NewFaultPlan(2)
	plan.DropFirst = 1
	before := obs.GetCounter("distrib_collective_retries_total").Value()
	vecs, want := randomVectors(2, 4, 21)
	if err := ResilientAllReduceMean(vecs, testRing(plan)); err != nil {
		t.Fatal(err)
	}
	checkMean(t, vecs, want)
	if got := obs.GetCounter("distrib_collective_retries_total").Value(); got <= before {
		t.Fatal("a dropped message must cost at least one retry")
	}
}

func TestFaultCorruptPayloadDetected(t *testing.T) {
	plan := NewFaultPlan(3)
	plan.CorruptFirst = 1
	before := obs.GetCounter("distrib_corrupt_payloads_detected_total").Value()
	vecs, want := randomVectors(3, 3, 17)
	if err := ResilientAllReduceMean(vecs, testRing(plan)); err != nil {
		t.Fatal(err)
	}
	checkMean(t, vecs, want)
	if got := obs.GetCounter("distrib_corrupt_payloads_detected_total").Value(); got <= before {
		t.Fatal("the checksum must have caught the corrupted payload")
	}
}

func TestFaultDelayWithinTimeoutSucceeds(t *testing.T) {
	plan := NewFaultPlan(4)
	plan.DelayFirst = 2
	plan.Delay = 5 * time.Millisecond
	vecs, want := randomVectors(4, 3, 11)
	if err := ResilientAllReduceMean(vecs, testRing(plan)); err != nil {
		t.Fatal(err)
	}
	checkMean(t, vecs, want)
}

func TestFaultProbabilisticNoiseHeals(t *testing.T) {
	// Low-probability transient faults over many collectives: every one
	// must still converge to the correct mean within the retry budget.
	plan := NewFaultPlan(5)
	plan.DropProb = 0.01
	plan.CorruptProb = 0.01
	opt := testRing(plan)
	opt.Retries = 10
	for i := 0; i < 10; i++ {
		vecs, want := randomVectors(int64(100+i), 4, 29)
		if err := ResilientAllReduceMean(vecs, opt); err != nil {
			t.Fatal(err)
		}
		checkMean(t, vecs, want)
	}
}

func TestFaultExhaustedRetriesLeavesInputsUntouched(t *testing.T) {
	plan := NewFaultPlan(6)
	plan.DropProb = 1 // every message vanishes: unrecoverable
	opt := testRing(plan)
	opt.Timeout = 30 * time.Millisecond
	opt.Retries = 1
	vecs, _ := randomVectors(6, 3, 9)
	orig := make([][]float32, len(vecs))
	for i, v := range vecs {
		orig[i] = append([]float32(nil), v...)
	}
	err := ResilientAllReduceMean(vecs, opt)
	if err == nil {
		t.Fatal("an all-drop transport must exhaust the retry budget")
	}
	var dre *DeadRankError
	if errors.As(err, &dre) {
		t.Fatal("transient faults must not be misreported as a dead rank")
	}
	for i := range vecs {
		for j := range vecs[i] {
			if vecs[i][j] != orig[i][j] {
				t.Fatal("a failed collective must leave the input vectors untouched")
			}
		}
	}
}

func TestFaultCrashMidCollectiveTimesOut(t *testing.T) {
	plan := NewFaultPlan(7)
	plan.CrashRankAtStep(1, 0)
	plan.BeginStep(0)
	vecs, _ := randomVectors(7, 3, 13)
	opt := testRing(plan)
	opt.Timeout = 50 * time.Millisecond
	err := faultyRingOnce(vecs, opt.withDefaults())
	if err == nil {
		t.Fatal("a crashed rank must fail the collective")
	}
}

func TestFaultCrashConfirmedAsDeadRank(t *testing.T) {
	plan := NewFaultPlan(8)
	plan.CrashRankAtStep(2, 0)
	plan.BeginStep(0)
	vecs, _ := randomVectors(8, 4, 13)
	opt := testRing(plan)
	opt.Timeout = 50 * time.Millisecond
	err := ResilientAllReduceMean(vecs, opt)
	var dre *DeadRankError
	if !errors.As(err, &dre) {
		t.Fatalf("want DeadRankError, got %v", err)
	}
	if len(dre.Ranks) != 1 || dre.Ranks[0] != 2 {
		t.Fatalf("want dead rank [2], got %v", dre.Ranks)
	}
}

func TestFaultTryStepSurfacesDeadRank(t *testing.T) {
	plan := NewFaultPlan(9)
	plan.CrashRankAtStep(1, 2)
	tr := NewTrainer(newToyFactory(), 3, 0.01, toyLoss)
	opt := testRing(plan)
	opt.Timeout = 50 * time.Millisecond
	tr.EnableFaultTolerance(opt)
	rng := rand.New(rand.NewSource(10))
	xs, ys := toyData(rng, 6)
	for step := 0; step < 2; step++ {
		if _, err := tr.TryStep(xs, ys); err != nil {
			t.Fatalf("step %d before the crash must succeed: %v", step, err)
		}
	}
	_, err := tr.TryStep(xs, ys)
	var dre *DeadRankError
	if !errors.As(err, &dre) {
		t.Fatalf("want DeadRankError at the crash step, got %v", err)
	}
}

// toyElasticData builds a fixed dataset plus a MakeBatch that jitters
// inputs through the checkpointed RNG stream, so resume correctness
// covers augmentation draws, not just the shuffle.
func toyElasticData(n int) (func(indices []int, rng *rand.Rand) ([]*tensor.Tensor, []*tensor.Tensor), int) {
	base := rand.New(rand.NewSource(77))
	xs, ys := toyData(base, n)
	mk := func(indices []int, rng *rand.Rand) ([]*tensor.Tensor, []*tensor.Tensor) {
		bx := make([]*tensor.Tensor, 0, len(indices))
		by := make([]*tensor.Tensor, 0, len(indices))
		for _, i := range indices {
			x := xs[i].Clone()
			for j := range x.Data {
				x.Data[j] += float32(rng.NormFloat64()) * 0.01
			}
			bx = append(bx, x)
			by = append(by, ys[i])
		}
		return bx, by
	}
	return mk, n
}

// TestFaultElasticRecoveryBitIdentical is the end-to-end acceptance
// test: a 4-rank run with a rank crash injected at a random step must
// complete via elastic recovery (3 survivors re-form, re-shard, restore
// the last checkpoint) and, from the restored step on, match an
// unfaulted run continuing from the same checkpoint bit for bit.
func TestFaultElasticRecoveryBitIdentical(t *testing.T) {
	const (
		nodes      = 4
		epochs     = 5
		samples    = 16
		batch      = 4 // 4 steps per epoch, 20 total
		totalSteps = 20
		every      = 3 // deliberately misaligned with epoch boundaries
	)
	// A "random" crash step, reproducibly drawn.
	crashStep := uint64(2 + rand.New(rand.NewSource(99)).Intn(totalSteps-4))
	deadRank := 2

	mk, n := toyElasticData(samples)
	_ = n

	plan := NewFaultPlan(11)
	plan.CrashRankAtStep(deadRank, crashStep)

	dirA := t.TempDir()
	cmA := &CheckpointManager{Dir: dirA, Keep: -1}
	trA := NewTrainer(newToyFactory(), nodes, 0.01, toyLoss)
	cfg := ElasticConfig{
		Epochs: epochs, Samples: samples, BatchSize: batch, Shuffle: true, Seed: 13,
		MakeBatch: mk,
		Ckpt:      cmA, CheckpointEvery: every,
		Ring: RingOptions{Timeout: 100 * time.Millisecond, Retries: 2, Backoff: time.Millisecond, Faults: plan},
	}
	resA, err := trA.RunElastic(cfg)
	if err != nil {
		t.Fatalf("faulted run did not complete: %v", err)
	}
	if resA.Steps != totalSteps {
		t.Fatalf("faulted run ended at step %d, want %d", resA.Steps, totalSteps)
	}
	if len(resA.Recoveries) != 1 {
		t.Fatalf("want exactly one recovery, got %d", len(resA.Recoveries))
	}
	ev := resA.Recoveries[0]
	if ev.Nodes != nodes-1 || len(ev.DeadRanks) != 1 || ev.DeadRanks[0] != deadRank {
		t.Fatalf("unexpected recovery event: %+v", ev)
	}
	if ev.FailedStep != crashStep || ev.StepsLost != crashStep-ev.RestoredStep {
		t.Fatalf("recovery accounting wrong: %+v (crash at %d)", ev, crashStep)
	}
	if trA.Nodes != nodes-1 {
		t.Fatalf("group did not re-form: %d nodes", trA.Nodes)
	}

	// Reference: an unfaulted run continuing from the same checkpoint
	// with the same re-formed 3-rank group.
	src := cmA.pathFor(ev.RestoredStep)
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatalf("restored checkpoint missing: %v", err)
	}
	dirB := t.TempDir()
	if err := os.WriteFile(filepath.Join(dirB, filepath.Base(src)), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	trB := NewTrainer(newToyFactory(), nodes, 0.01, toyLoss)
	if err := trB.RemoveRanks([]int{deadRank}); err != nil {
		t.Fatal(err)
	}
	cfgB := cfg
	cfgB.Ckpt = &CheckpointManager{Dir: dirB, Keep: -1}
	cfgB.Resume = true
	cfgB.Ring = RingOptions{Timeout: 100 * time.Millisecond, Retries: 2, Backoff: time.Millisecond}
	resB, err := trB.RunElastic(cfgB)
	if err != nil {
		t.Fatalf("reference run failed: %v", err)
	}
	if resB.FirstStep != ev.RestoredStep {
		t.Fatalf("reference resumed at %d, want %d", resB.FirstStep, ev.RestoredStep)
	}

	// Bit-identical loss trajectory from the restored step on.
	for s := ev.RestoredStep; s < totalSteps; s++ {
		la, okA := resA.LossAt(s)
		lb, okB := resB.LossAt(s)
		if !okA || !okB {
			t.Fatalf("step %d missing from a loss record (okA=%v okB=%v)", s, okA, okB)
		}
		if la != lb {
			t.Fatalf("step %d: faulted-run loss %v != reference %v (not bit-identical)", s, la, lb)
		}
	}
	if !bitIdenticalParams(masterParams(trA), masterParams(trB)) {
		t.Fatal("final parameters after recovery are not bit-identical to the reference")
	}
}

func TestFaultElasticAllRanksDeadFails(t *testing.T) {
	plan := NewFaultPlan(12)
	plan.CrashRankAtStep(0, 1)
	plan.CrashRankAtStep(1, 1)
	mk, _ := toyElasticData(8)
	tr := NewTrainer(newToyFactory(), 2, 0.01, toyLoss)
	_, err := tr.RunElastic(ElasticConfig{
		Epochs: 2, Samples: 8, BatchSize: 4, Seed: 3,
		MakeBatch: mk,
		Ckpt:      &CheckpointManager{Dir: t.TempDir()}, CheckpointEvery: 2,
		Ring: RingOptions{Timeout: 50 * time.Millisecond, Retries: 1, Backoff: time.Millisecond, Faults: plan},
	})
	if err == nil {
		t.Fatal("losing every rank must be unrecoverable")
	}
}

func TestFaultStragglerRaisesWarning(t *testing.T) {
	plan := NewFaultPlan(13)
	tr := NewTrainer(newToyFactory(), 2, 0.01, toyLoss)
	tr.EnableFaultTolerance(testRing(plan))
	rng := rand.New(rand.NewSource(14))
	xs, ys := toyData(rng, 4)
	// Warm the pooled timing histogram past the detector's threshold.
	for i := 0; i < 20; i++ {
		if _, err := tr.TryStep(xs, ys); err != nil {
			t.Fatal(err)
		}
	}
	before := obs.GetCounter("distrib_straggler_warnings_total").Value()
	plan.SlowRank(1, 50*time.Millisecond)
	for i := 0; i < 3; i++ {
		if _, err := tr.TryStep(xs, ys); err != nil {
			t.Fatal(err)
		}
	}
	after := obs.GetCounter("distrib_straggler_warnings_total").Value()
	if after <= before {
		t.Fatal("an injected straggler must raise the warning metric")
	}
	if got := obs.GetGauge("distrib_straggler_rank").Value(); got != 1 {
		t.Fatalf("straggler gauge = %v, want rank 1", got)
	}
}
