package distrib

// Serializable PRNG for resumable training. math/rand's default source
// hides its state, so a checkpoint could not capture "where the shuffle
// and augmentation streams are" — which is exactly what bit-identical
// resume needs. RNG is xoshiro256++ (Blackman & Vigna) seeded through
// splitmix64; it implements rand.Source64, so rand.New(rng) provides
// the full math/rand API while State/SetState round-trip the generator
// through a Snapshot.
//
// Note rand.Rand itself holds no hidden state for the methods the
// trainer uses (Shuffle, Intn, Float64, NormFloat64 all draw straight
// from the source); only Read buffers, and nothing here calls Read.

// RNG is a serializable rand.Source64.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed.
func NewRNG(seed int64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Seed resets the state deterministically from seed.
func (r *RNG) Seed(seed int64) {
	x := uint64(seed)
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value of the xoshiro256++ sequence.
func (r *RNG) Uint64() uint64 {
	res := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return res
}

// Int63 satisfies rand.Source.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// State returns the four state words for checkpointing.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState restores a state captured with State.
func (r *RNG) SetState(s [4]uint64) { r.s = s }
