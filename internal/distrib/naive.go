package distrib

// Naive (parameter-server) all-reduce and communication-volume
// accounting — the ablation partner of the ring algorithm. gloo's ring
// moves 2·(n−1)/n of the vector per node regardless of n; the central
// server moves (n−1) full vectors in and out, so it stops scaling the
// moment the model is large — the reason DDP (and this package) rings.

// NaiveAllReduce sums the per-node vectors through a central node
// (gather to node 0, reduce, broadcast) and leaves the result in every
// vector.
func NaiveAllReduce(vectors [][]float32) {
	n := len(vectors)
	if n <= 1 {
		return
	}
	root := vectors[0]
	for _, v := range vectors[1:] {
		for i, x := range v {
			root[i] += x
		}
	}
	for _, v := range vectors[1:] {
		copy(v, root)
	}
}

// NaiveAllReduceMean averages the per-node vectors in place through the
// central node — the parameter-server counterpart of AllReduceMean,
// selectable on the trainer via SetReducer for ablations.
func NaiveAllReduceMean(vectors [][]float32) {
	NaiveAllReduce(vectors)
	n := float32(len(vectors))
	if n <= 1 {
		return
	}
	for _, v := range vectors {
		for i := range v {
			v[i] /= n
		}
	}
}

// RingBytesPerNode returns the bytes each node sends under the ring
// algorithm for a float32 vector of the given length:
// 2·(n−1)/n · 4·length (reduce-scatter + all-gather).
func RingBytesPerNode(nodes, length int) int {
	if nodes <= 1 {
		return 0
	}
	return 2 * (nodes - 1) * 4 * length / nodes
}

// ServerBytesAtRoot returns the bytes the central node moves under the
// parameter-server scheme: (n−1) vectors received plus (n−1) sent.
func ServerBytesAtRoot(nodes, length int) int {
	if nodes <= 1 {
		return 0
	}
	return 2 * (nodes - 1) * 4 * length
}

// RingStepSeconds models the wall time of one ring all-reduce over a
// link of the given bandwidth (bytes/s) with per-hop latency: the
// 2(n−1) pipeline steps each move length/n elements.
func RingStepSeconds(nodes, length int, bandwidthBps, hopLatency float64) float64 {
	if nodes <= 1 {
		return 0
	}
	chunkBytes := float64(4*length) / float64(nodes)
	steps := float64(2 * (nodes - 1))
	return steps * (hopLatency + chunkBytes/bandwidthBps)
}
