package distrib

import (
	"os"
	"testing"

	"computecovid19/internal/obs"
)

// TestMain wires the flight recorder into the chaos suite: when
// CC_FLIGHT_DIR is set (the CI chaos job sets it), span collection is
// enabled and a failing run dumps the retained traces there — the
// uploaded artifact then carries per-rank and all-reduce spans of the
// failing fault scenario instead of just the test log.
func TestMain(m *testing.M) {
	dir := os.Getenv("CC_FLIGHT_DIR")
	if dir != "" {
		obs.Enable()
	}
	code := m.Run()
	if dir != "" && code != 0 {
		if path, err := obs.DumpFlight(dir, "distrib test failure"); err != nil {
			obs.Log().Error("flight dump failed", "dir", dir, "err", err)
		} else {
			obs.Log().Info("flight recorder dumped", "path", path)
		}
	}
	os.Exit(code)
}
