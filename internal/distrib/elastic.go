package distrib

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"computecovid19/internal/obs"
	"computecovid19/internal/tensor"
)

// Elastic training loop: epochs of shuffled mini-batch steps with
// periodic checkpoints, and automatic recovery when a rank is confirmed
// dead — surviving ranks re-form the group, the dataset is re-sharded
// (sharding is derived from the live group size every step), and
// training resumes from the last consistent checkpoint. Everything that
// feeds randomness into a step (epoch shuffles, augmentation draws)
// flows through one serializable RNG captured in each snapshot, which
// is what makes resume bit-identical: replaying from a checkpoint
// produces exactly the batches — and therefore exactly the parameters —
// an uninterrupted run would have produced from that point.

var (
	recoveriesTotal  = obs.GetCounter("distrib_recoveries_total")
	recoverySecondsH = obs.GetHistogram("distrib_recovery_seconds", nil)
	stepsLostTotal   = obs.GetCounter("distrib_steps_lost_total")
)

// ElasticConfig drives Trainer.RunElastic.
type ElasticConfig struct {
	// Epochs, Samples, BatchSize define the step grid: every epoch
	// visits all Samples indices in (optionally shuffled) order,
	// BatchSize at a time.
	Epochs, Samples, BatchSize int
	// Shuffle re-permutes the sample order each epoch (paper training
	// recipe); the permutation is checkpointed with the cursor.
	Shuffle bool
	// Seed seeds the data/augmentation RNG.
	Seed int64
	// MakeBatch materializes the global batch for the given sample
	// indices. Any randomness (augmentation) must come from rng so it is
	// captured by checkpoints.
	MakeBatch func(indices []int, rng *rand.Rand) (xs, ys []*tensor.Tensor)

	// Ckpt enables checkpointing when non-nil; CheckpointEvery is the
	// snapshot period in steps (0 means every 50). An initial snapshot
	// is written before the first step so recovery is always possible.
	Ckpt            *CheckpointManager
	CheckpointEvery int
	// Resume restores from Ckpt's latest checkpoint when one exists.
	Resume bool

	// Ring configures the fault-tolerant collective (timeouts, retries,
	// injected faults).
	Ring RingOptions

	// OnStep, when set, observes every completed step.
	OnStep func(step uint64, loss float64)
}

// RecoveryEvent records one group re-formation.
type RecoveryEvent struct {
	// FailedStep is the global step whose collective confirmed the death.
	FailedStep uint64
	// RestoredStep is the checkpoint step training resumed from.
	RestoredStep uint64
	// DeadRanks are the removed ranks (pre-renumbering indices).
	DeadRanks []int
	// Nodes is the group size after re-forming.
	Nodes int
	// StepsLost = FailedStep − RestoredStep, the replay distance.
	StepsLost uint64
	// Seconds is the wall time from confirmation to resumed training.
	Seconds float64
}

// ElasticResult reports a RunElastic invocation.
type ElasticResult struct {
	// FirstStep is the global step the run started at (non-zero after
	// Resume).
	FirstStep uint64
	// Losses holds the mean loss of every step this run executed, index
	// i being global step FirstStep+i. Steps rolled back by a recovery
	// are truncated and re-recorded as they are replayed.
	Losses []float64
	// Curve is the per-epoch mean loss for epochs fully covered by this
	// run.
	Curve []float64
	// Steps is the global step count at exit.
	Steps uint64
	// Recoveries lists every group re-formation, oldest first.
	Recoveries []RecoveryEvent
}

// LossAt returns the recorded loss of global step s (ok=false when the
// step was not executed by this run).
func (r *ElasticResult) LossAt(s uint64) (float64, bool) {
	if s < r.FirstStep || s >= r.FirstStep+uint64(len(r.Losses)) {
		return 0, false
	}
	return r.Losses[s-r.FirstStep], true
}

// RunElastic trains for cfg.Epochs epochs with checkpointing and
// elastic fault recovery. It returns the per-step loss record and
// recovery events; on unrecoverable errors (no checkpoint to restore,
// all ranks dead, exhausted transient retries) it returns what was
// executed so far plus the error.
func (t *Trainer) RunElastic(cfg ElasticConfig) (*ElasticResult, error) {
	if cfg.Samples <= 0 || cfg.BatchSize <= 0 || cfg.Epochs <= 0 {
		return nil, fmt.Errorf("distrib: RunElastic needs positive Epochs, Samples, BatchSize")
	}
	if cfg.MakeBatch == nil {
		return nil, fmt.Errorf("distrib: RunElastic needs a MakeBatch function")
	}
	every := cfg.CheckpointEvery
	if every <= 0 {
		every = 50
	}
	stepsPerEpoch := (cfg.Samples + cfg.BatchSize - 1) / cfg.BatchSize
	t.EnableFaultTolerance(cfg.Ring)

	src := NewRNG(cfg.Seed)
	rng := rand.New(src)
	var epoch, cursor uint64
	var order []uint32

	res := &ElasticResult{}

	restore := func(s *Snapshot) error {
		if err := t.Restore(s); err != nil {
			return err
		}
		src.SetState(s.RNG)
		epoch, cursor = s.Epoch, s.Cursor
		order = append([]uint32(nil), s.Order...)
		if len(order) == 0 {
			order = nil
		}
		return nil
	}

	if cfg.Ckpt != nil {
		latest, err := cfg.Ckpt.Latest()
		if err != nil {
			return nil, err
		}
		if cfg.Resume && latest != "" {
			s, err := LoadSnapshot(latest)
			if err != nil {
				return nil, fmt.Errorf("distrib: resuming from %s: %w", latest, err)
			}
			if err := restore(s); err != nil {
				return nil, err
			}
			res.FirstStep = s.Step
		}
	}

	snap := func() error {
		if cfg.Ckpt == nil {
			return nil
		}
		s := t.Snapshot()
		s.Epoch, s.Cursor = epoch, cursor
		s.RNG = src.State()
		s.Order = order
		_, err := cfg.Ckpt.Save(s)
		return err
	}
	// Step-0 safety net: without it, a crash before the first periodic
	// snapshot would be unrecoverable.
	if cfg.Ckpt != nil && t.step == res.FirstStep && res.FirstStep == 0 {
		if err := snap(); err != nil {
			return res, err
		}
	}

	for epoch < uint64(cfg.Epochs) {
		if order == nil {
			order = make([]uint32, cfg.Samples)
			for i := range order {
				order[i] = uint32(i)
			}
			if cfg.Shuffle {
				rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			}
		}
		for cursor < uint64(stepsPerEpoch) {
			lo := int(cursor) * cfg.BatchSize
			hi := lo + cfg.BatchSize
			if hi > cfg.Samples {
				hi = cfg.Samples
			}
			idxs := make([]int, hi-lo)
			for i, o := range order[lo:hi] {
				idxs[i] = int(o)
			}
			xs, ys := cfg.MakeBatch(idxs, rng)

			loss, err := t.TryStep(xs, ys)
			if err != nil {
				var dre *DeadRankError
				if !errors.As(err, &dre) || cfg.Ckpt == nil {
					return res, err
				}
				t0 := time.Now()
				failedStep := t.step
				if rerr := t.RemoveRanks(dre.Ranks); rerr != nil {
					return res, rerr
				}
				latest, lerr := cfg.Ckpt.Latest()
				if lerr != nil || latest == "" {
					return res, fmt.Errorf("distrib: no checkpoint to recover from: %v", lerr)
				}
				s, lerr := LoadSnapshot(latest)
				if lerr != nil {
					return res, fmt.Errorf("distrib: recovering from %s: %w", latest, lerr)
				}
				if rerr := restore(s); rerr != nil {
					return res, rerr
				}
				// Roll the loss record back to the restored step; the
				// replayed steps re-record as they execute.
				if s.Step < res.FirstStep {
					// Restored to before this run began (an older retained
					// checkpoint): restart the record there.
					res.FirstStep = s.Step
					res.Losses = nil
				} else if s.Step-res.FirstStep <= uint64(len(res.Losses)) {
					res.Losses = res.Losses[:s.Step-res.FirstStep]
				}
				ev := RecoveryEvent{
					FailedStep:   failedStep,
					RestoredStep: s.Step,
					DeadRanks:    append([]int(nil), dre.Ranks...),
					Nodes:        t.Nodes,
					StepsLost:    failedStep - s.Step,
					Seconds:      time.Since(t0).Seconds(),
				}
				res.Recoveries = append(res.Recoveries, ev)
				recoveriesTotal.Inc()
				recoverySecondsH.Observe(ev.Seconds)
				stepsLostTotal.Add(ev.StepsLost)
				continue
			}

			res.Losses = append(res.Losses, loss)
			cursor++
			if cfg.OnStep != nil {
				cfg.OnStep(t.step-1, loss)
			}
			if cfg.Ckpt != nil && t.step%uint64(every) == 0 {
				if err := snap(); err != nil {
					return res, err
				}
			}
		}
		epoch++
		cursor = 0
		order = nil
	}

	res.Steps = t.step
	// Per-epoch curve for epochs fully covered by this run.
	for e := 0; e < cfg.Epochs; e++ {
		loS := uint64(e) * uint64(stepsPerEpoch)
		hiS := loS + uint64(stepsPerEpoch)
		if loS < res.FirstStep || hiS > res.FirstStep+uint64(len(res.Losses)) {
			continue
		}
		sum := 0.0
		for _, l := range res.Losses[loS-res.FirstStep : hiS-res.FirstStep] {
			sum += l
		}
		res.Curve = append(res.Curve, sum/float64(stepsPerEpoch))
	}
	return res, nil
}
