package distrib

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"computecovid19/internal/tensor"
)

func demoSnapshot() *Snapshot {
	rng := rand.New(rand.NewSource(9))
	mk := func(shape ...int) *tensor.Tensor { return tensor.New(shape...).RandN(rng, 0, 1) }
	return &Snapshot{
		Step:   17,
		Epoch:  2,
		Cursor: 3,
		Nodes:  4,
		LR:     0.0125,
		AdamT:  17,
		RNG:    [4]uint64{1, 2, 3, 4},
		Order:  []uint32{3, 1, 0, 2},
		Params: []*tensor.Tensor{mk(2, 3), mk(5)},
		State:  []*tensor.Tensor{mk(3)},
		AdamM:  []*tensor.Tensor{mk(2, 3), mk(5)},
		AdamV:  []*tensor.Tensor{mk(2, 3), mk(5)},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := demoSnapshot()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != s.Step || got.Epoch != s.Epoch || got.Cursor != s.Cursor ||
		got.Nodes != s.Nodes || got.LR != s.LR || got.AdamT != s.AdamT || got.RNG != s.RNG {
		t.Fatalf("scalar fields differ: %+v vs %+v", got, s)
	}
	if len(got.Order) != len(s.Order) {
		t.Fatalf("order length %d, want %d", len(got.Order), len(s.Order))
	}
	for i := range s.Order {
		if got.Order[i] != s.Order[i] {
			t.Fatalf("order[%d] = %d, want %d", i, got.Order[i], s.Order[i])
		}
	}
	groups := [][2][]*tensor.Tensor{
		{got.Params, s.Params}, {got.State, s.State}, {got.AdamM, s.AdamM}, {got.AdamV, s.AdamV},
	}
	for gi, g := range groups {
		if len(g[0]) != len(g[1]) {
			t.Fatalf("group %d has %d tensors, want %d", gi, len(g[0]), len(g[1]))
		}
		for ti := range g[1] {
			if !g[0][ti].SameShape(g[1][ti]) {
				t.Fatalf("group %d tensor %d shape differs", gi, ti)
			}
			for j := range g[1][ti].Data {
				if g[0][ti].Data[j] != g[1][ti].Data[j] {
					t.Fatalf("group %d tensor %d elem %d differs", gi, ti, j)
				}
			}
		}
	}
}

func TestCheckpointCRCDetectsCorruption(t *testing.T) {
	cm := &CheckpointManager{Dir: t.TempDir()}
	path, err := cm.Save(demoSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit (past the 20-byte magic+header).
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err == nil || !strings.Contains(err.Error(), "crc") {
		t.Fatalf("corrupted checkpoint must fail the crc check, got %v", err)
	}
}

func TestCheckpointTruncatedFails(t *testing.T) {
	cm := &CheckpointManager{Dir: t.TempDir()}
	path, err := cm.Save(demoSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err == nil {
		t.Fatal("truncated checkpoint must not load")
	}
}

func TestCheckpointRetentionAndAtomicity(t *testing.T) {
	dir := t.TempDir()
	cm := &CheckpointManager{Dir: dir, Keep: 2}
	for step := uint64(1); step <= 5; step++ {
		s := demoSnapshot()
		s.Step = step
		if _, err := cm.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := cm.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("retention kept %d checkpoints, want 2: %v", len(paths), paths)
	}
	latest, err := cm.Latest()
	if err != nil {
		t.Fatal(err)
	}
	s, err := LoadSnapshot(latest)
	if err != nil {
		t.Fatal(err)
	}
	if s.Step != 5 {
		t.Fatalf("latest checkpoint is step %d, want 5", s.Step)
	}
	// Atomic write-rename must leave no temp files behind.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("stale temp file %s left behind", e.Name())
		}
	}
}

func TestCheckpointLatestEmptyDir(t *testing.T) {
	cm := &CheckpointManager{Dir: filepath.Join(t.TempDir(), "missing")}
	latest, err := cm.Latest()
	if err != nil || latest != "" {
		t.Fatalf("empty manager: latest=%q err=%v, want empty and nil", latest, err)
	}
}

func TestTrainerRestoreValidatesShapes(t *testing.T) {
	tr := NewTrainer(newToyFactory(), 2, 0.01, toyLoss)
	s := tr.Snapshot()
	s.Params = s.Params[:1] // drop a tensor
	if err := tr.Restore(s); err == nil {
		t.Fatal("restore with missing parameter tensor must fail")
	}
}
