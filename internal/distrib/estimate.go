package distrib

// ClusterModel projects epoch and training runtimes for the paper's
// Table 3 setup: VT ARC "Infer" nodes with one Nvidia T4 each, gloo over
// the cluster interconnect, training DDnet on 5102 images of 512².
//
// The model is a linear per-step cost fitted to the paper's own
// measurements:
//
//	stepSeconds = alpha + beta·perNodeBatch + gamma·(nodes−1)
//
// beta is the T4's per-sample DDnet backprop time, alpha the fixed
// kernel-launch overhead, and the gamma term the gloo ring
// synchronization, whose cost grows with the ring length. Sub-linear
// speedup falls out of the gamma term, exactly the effect §5.1.2
// describes.
type ClusterModel struct {
	// SamplesPerEpoch is the training-set size (paper: 2286 Mayo + 2816
	// simulated = 5102).
	SamplesPerEpoch int
	// AlphaSeconds is the fixed per-step overhead.
	AlphaSeconds float64
	// BetaSecondsPerSample is the per-sample gradient computation time.
	BetaSecondsPerSample float64
	// GammaSecondsPerHop is the synchronization cost per additional ring
	// node.
	GammaSecondsPerHop float64
}

// PaperCluster returns the model fitted to Table 3 (T4 GPUs, 512×512
// DDnet, batch-1 single-node epoch ≈ 1098 s).
func PaperCluster() ClusterModel {
	return ClusterModel{
		SamplesPerEpoch:      5102,
		AlphaSeconds:         0.020,
		BetaSecondsPerSample: 0.195,
		GammaSecondsPerHop:   0.009,
	}
}

// StepSeconds returns the projected duration of one synchronous
// data-parallel step.
func (c ClusterModel) StepSeconds(nodes, globalBatch int) float64 {
	perNode := float64(globalBatch) / float64(nodes)
	return c.AlphaSeconds + c.BetaSecondsPerSample*perNode + c.GammaSecondsPerHop*float64(nodes-1)
}

// EpochSeconds returns the projected duration of one epoch.
func (c ClusterModel) EpochSeconds(nodes, globalBatch int) float64 {
	steps := float64(c.SamplesPerEpoch) / float64(globalBatch)
	return steps * c.StepSeconds(nodes, globalBatch)
}

// TrainingSeconds returns the projected duration of a full run.
func (c ClusterModel) TrainingSeconds(nodes, globalBatch, epochs int) float64 {
	return float64(epochs) * c.EpochSeconds(nodes, globalBatch)
}

// Speedup returns the projected speedup of (nodes, batch) over the
// single-node batch-1 baseline at equal epochs.
func (c ClusterModel) Speedup(nodes, globalBatch int) float64 {
	return c.EpochSeconds(1, 1) / c.EpochSeconds(nodes, globalBatch)
}
