package distrib

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Fault injection for the all-reduce transport and the trainer's compute
// phase. A FaultPlan is the single source of injected failures so tests
// (and the CI chaos job) can script exactly which rank fails, how, and
// when, while probabilistic modes exercise the retry machinery under
// -race. The plan also plays the role of the failure detector: a rank
// whose crash has triggered is reported by DeadRanks, the in-process
// stand-in for gloo's peer-liveness checks.

// FaultKind classifies one injected transport fault.
type FaultKind int

const (
	// FaultNone leaves the message untouched.
	FaultNone FaultKind = iota
	// FaultDrop silently discards the message; the receiver times out.
	FaultDrop
	// FaultDelay sleeps before sending — a straggling link.
	FaultDelay
	// FaultCorrupt flips a bit in the payload after the checksum is
	// computed, so the receiver detects it.
	FaultCorrupt
)

func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultCorrupt:
		return "corrupt"
	default:
		return "none"
	}
}

// DeadRankError reports ranks confirmed dead by the failure detector
// after a collective timed out. The group must be re-formed without
// them before training can continue.
type DeadRankError struct {
	Ranks []int
}

func (e *DeadRankError) Error() string {
	return fmt.Sprintf("distrib: rank(s) %v confirmed dead during collective", e.Ranks)
}

// FaultPlan scripts and tracks injected faults. The zero value injects
// nothing; NewFaultPlan seeds the probabilistic modes. All methods are
// safe for concurrent use (ring goroutines consult the plan in
// parallel).
type FaultPlan struct {
	mu  sync.Mutex
	rng *RNG

	// DropProb, DelayProb, CorruptProb are per-message probabilities.
	DropProb, DelayProb, CorruptProb float64
	// Delay is the sleep applied to FaultDelay messages.
	Delay time.Duration

	// DropFirst, CorruptFirst, DelayFirst deterministically fault that
	// many messages (counted across the plan's lifetime) before the
	// probabilistic modes apply — reproducible single-fault tests.
	DropFirst, CorruptFirst, DelayFirst int

	crashAtStep map[int]uint64        // rank -> global step at which it dies
	slow        map[int]time.Duration // rank -> extra compute time per step
	dead        map[int]bool
}

// NewFaultPlan returns a plan whose probabilistic draws are seeded.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{rng: NewRNG(seed)}
}

// CrashRankAtStep schedules rank to die permanently when the trainer
// reaches the given global step: its compute is skipped and its
// transport endpoints stop responding.
func (p *FaultPlan) CrashRankAtStep(rank int, step uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashAtStep == nil {
		p.crashAtStep = map[int]uint64{}
	}
	p.crashAtStep[rank] = step
}

// SlowRank makes rank's compute phase take extra time every step — the
// injected straggler the p99 detector must flag.
func (p *FaultPlan) SlowRank(rank int, extra time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.slow == nil {
		p.slow = map[int]time.Duration{}
	}
	p.slow[rank] = extra
}

// BeginStep triggers any crash scheduled at or before step. The trainer
// calls it at every step entry.
func (p *FaultPlan) BeginStep(step uint64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for rank, at := range p.crashAtStep {
		if step >= at {
			if p.dead == nil {
				p.dead = map[int]bool{}
			}
			p.dead[rank] = true
		}
	}
}

// Crashed reports whether rank's scheduled crash has triggered.
func (p *FaultPlan) Crashed(rank int) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dead[rank]
}

// DeadRanks returns the confirmed-dead ranks in ascending order.
func (p *FaultPlan) DeadRanks() []int {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []int
	for rank, d := range p.dead {
		if d {
			out = append(out, rank)
		}
	}
	sort.Ints(out)
	return out
}

// RemoveRanks rewrites the plan after the group re-forms without the
// given (ascending) ranks: the removed ranks' entries are dropped and
// higher ranks shift down to match their new indices.
func (p *FaultPlan) RemoveRanks(ranks []int) {
	if p == nil || len(ranks) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	remap := func(old int) (int, bool) {
		shift := 0
		for _, r := range ranks {
			if old == r {
				return 0, false
			}
			if old > r {
				shift++
			}
		}
		return old - shift, true
	}
	newCrash := map[int]uint64{}
	for rank, at := range p.crashAtStep {
		if nr, ok := remap(rank); ok {
			newCrash[nr] = at
		}
	}
	p.crashAtStep = newCrash
	newSlow := map[int]time.Duration{}
	for rank, d := range p.slow {
		if nr, ok := remap(rank); ok {
			newSlow[nr] = d
		}
	}
	p.slow = newSlow
	newDead := map[int]bool{}
	for rank, d := range p.dead {
		if nr, ok := remap(rank); ok && d {
			newDead[nr] = true
		}
	}
	p.dead = newDead
}

// computeDelay returns the injected extra compute time for rank.
func (p *FaultPlan) computeDelay(rank int) time.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.slow[rank]
}

// sendFault draws the fault (if any) to apply to one outgoing message.
func (p *FaultPlan) sendFault() FaultKind {
	if p == nil {
		return FaultNone
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	switch {
	case p.DropFirst > 0:
		p.DropFirst--
		return FaultDrop
	case p.CorruptFirst > 0:
		p.CorruptFirst--
		return FaultCorrupt
	case p.DelayFirst > 0:
		p.DelayFirst--
		return FaultDelay
	}
	if p.rng == nil || (p.DropProb == 0 && p.DelayProb == 0 && p.CorruptProb == 0) {
		return FaultNone
	}
	u := float64(p.rng.Uint64()>>11) / (1 << 53)
	switch {
	case u < p.DropProb:
		return FaultDrop
	case u < p.DropProb+p.CorruptProb:
		return FaultCorrupt
	case u < p.DropProb+p.CorruptProb+p.DelayProb:
		return FaultDelay
	default:
		return FaultNone
	}
}
