package distrib

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"computecovid19/internal/nn"
	"computecovid19/internal/obs"
	"computecovid19/internal/tensor"
)

// Checkpoint/restore for long training runs (the paper's Table 3 DDnet
// recipe is 50 epochs at batch 1 — exactly the horizon where a crash at
// epoch 49 loses the run). A Snapshot captures everything bit-identical
// resume needs: master parameters, batch-norm running statistics, Adam
// moment vectors and step count, the learning rate, the data-loader
// cursor (epoch, step-within-epoch, and the epoch's shuffled order) and
// the RNG stream. The on-disk format is a CRC-checked binary container
// written atomically (tmp file + rename), so a crash mid-write can
// never leave a checkpoint that restores silently wrong.
//
// File layout (little endian):
//
//	magic "CC19CKPT" | version u32 | payloadLen u64 | payload | crc32(payload) u32
//
// payload:
//
//	step u64 | epoch u64 | cursor u64 | nodes u32 | adamT u64 | lr f64 |
//	rng 4×u64 | orderLen u32, order []u32 |
//	4 tensor groups (params, state, adamM, adamV):
//	  count u32, per tensor: rank u32, dims []u32, data []f32

const (
	ckptMagic   = "CC19CKPT"
	ckptVersion = 1

	// DefaultKeep is the retention depth when CheckpointManager.Keep is 0.
	DefaultKeep = 3

	// maxCkptPayload guards the decoder against absurd length prefixes in
	// a corrupt or hostile file (8 GiB is far beyond any model here).
	maxCkptPayload = 8 << 30
)

var (
	ckptWrites = obs.GetCounter("distrib_checkpoint_writes_total")
	ckptBytes  = obs.GetCounter("distrib_checkpoint_bytes_total")
)

// Snapshot is one consistent training state.
type Snapshot struct {
	// Step is the global optimizer step count at capture time.
	Step uint64
	// Epoch and Cursor are the data-loader position: Cursor steps of
	// Epoch have been consumed.
	Epoch, Cursor uint64
	// Nodes records the group size at capture (informational; a snapshot
	// restores into any group size, since replicas are identical).
	Nodes int
	// LR is the current learning rate.
	LR float64
	// AdamT is Adam's bias-correction step counter.
	AdamT int
	// RNG is the data/augmentation stream state (see RNG).
	RNG [4]uint64
	// Order is the current epoch's sample permutation (nil before the
	// first epoch starts).
	Order []uint32
	// Params, State, AdamM, AdamV hold deep copies of the master
	// replica's parameters, batch-norm running statistics, and the
	// optimizer's first/second moments.
	Params, State, AdamM, AdamV []*tensor.Tensor
}

func cloneTensors(ts []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}

func stateTensorsOf(m Model) []*tensor.Tensor {
	if sp, ok := m.(nn.StateProvider); ok {
		return sp.StateTensors()
	}
	return nil
}

// Snapshot captures the trainer's current state (master replica +
// optimizer). The caller fills in the data-loader fields (Epoch,
// Cursor, Order, RNG) it owns; RunElastic does this automatically.
func (t *Trainer) Snapshot() *Snapshot {
	master := t.replicas[0]
	var params []*tensor.Tensor
	for _, p := range master.Params() {
		params = append(params, p.T.Clone())
	}
	m, v := t.opts[0].Moments()
	return &Snapshot{
		Step:   t.step,
		Nodes:  t.Nodes,
		LR:     t.opts[0].LR(),
		AdamT:  t.opts[0].StepCount(),
		Params: params,
		State:  cloneTensors(stateTensorsOf(master)),
		AdamM:  cloneTensors(m),
		AdamV:  cloneTensors(v),
	}
}

// Restore loads a snapshot into every replica and optimizer, returning
// an error when shapes disagree with the trainer's architecture. After
// Restore all replicas are bit-identical to the snapshot's master, so
// training continues exactly as if never interrupted. (Non-master
// batch-norm running statistics are overwritten with the master's; they
// influence nothing — training-mode forward uses batch statistics and
// only the master is ever evaluated.)
func (t *Trainer) Restore(s *Snapshot) error {
	copyInto := func(dst, src []*tensor.Tensor, what string) error {
		if len(dst) != len(src) {
			return fmt.Errorf("distrib: snapshot has %d %s tensors, trainer expects %d", len(src), what, len(dst))
		}
		for i := range dst {
			if dst[i].Numel() != src[i].Numel() {
				return fmt.Errorf("distrib: %s tensor %d has %d elements, trainer expects %d",
					what, i, src[i].Numel(), dst[i].Numel())
			}
		}
		for i := range dst {
			copy(dst[i].Data, src[i].Data)
		}
		return nil
	}
	for node, m := range t.replicas {
		var params []*tensor.Tensor
		for _, p := range m.Params() {
			params = append(params, p.T)
		}
		if err := copyInto(params, s.Params, "param"); err != nil {
			return err
		}
		if err := copyInto(stateTensorsOf(m), s.State, "state"); err != nil {
			return err
		}
		mm, vv := t.opts[node].Moments()
		if err := copyInto(mm, s.AdamM, "adam-m"); err != nil {
			return err
		}
		if err := copyInto(vv, s.AdamV, "adam-v"); err != nil {
			return err
		}
		t.opts[node].SetStepCount(s.AdamT)
		t.opts[node].SetLR(s.LR)
	}
	t.step = s.Step
	return nil
}

// WriteSnapshot encodes s to w in the checkpoint container format.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	var payload bytes.Buffer
	le := binary.LittleEndian
	var scratch [8]byte
	pu32 := func(v uint32) { le.PutUint32(scratch[:4], v); payload.Write(scratch[:4]) }
	pu64 := func(v uint64) { le.PutUint64(scratch[:8], v); payload.Write(scratch[:8]) }

	pu64(s.Step)
	pu64(s.Epoch)
	pu64(s.Cursor)
	pu32(uint32(s.Nodes))
	pu64(uint64(s.AdamT))
	pu64(math.Float64bits(s.LR))
	for _, word := range s.RNG {
		pu64(word)
	}
	pu32(uint32(len(s.Order)))
	for _, o := range s.Order {
		pu32(o)
	}
	for _, group := range [][]*tensor.Tensor{s.Params, s.State, s.AdamM, s.AdamV} {
		pu32(uint32(len(group)))
		for _, t := range group {
			pu32(uint32(t.Rank()))
			for _, d := range t.Shape {
				pu32(uint32(d))
			}
			for _, f := range t.Data {
				pu32(math.Float32bits(f))
			}
		}
	}

	if _, err := io.WriteString(w, ckptMagic); err != nil {
		return err
	}
	hdr := make([]byte, 12)
	le.PutUint32(hdr[:4], ckptVersion)
	le.PutUint64(hdr[4:], uint64(payload.Len()))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return err
	}
	le.PutUint32(scratch[:4], crc32.ChecksumIEEE(payload.Bytes()))
	_, err := w.Write(scratch[:4])
	return err
}

// ReadSnapshot decodes a checkpoint, verifying magic, version, and the
// payload CRC before interpreting a single field.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	magic := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("distrib: reading checkpoint magic: %w", err)
	}
	if string(magic) != ckptMagic {
		return nil, fmt.Errorf("distrib: bad checkpoint magic %q", magic)
	}
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("distrib: reading checkpoint header: %w", err)
	}
	le := binary.LittleEndian
	if v := le.Uint32(hdr[:4]); v != ckptVersion {
		return nil, fmt.Errorf("distrib: unsupported checkpoint version %d", v)
	}
	plen := le.Uint64(hdr[4:])
	if plen > maxCkptPayload {
		return nil, fmt.Errorf("distrib: checkpoint payload length %d exceeds limit", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("distrib: reading checkpoint payload: %w", err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("distrib: reading checkpoint crc: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), le.Uint32(crcBuf[:]); got != want {
		return nil, fmt.Errorf("distrib: checkpoint crc mismatch (got %08x, want %08x) — file is corrupt or truncated", got, want)
	}

	rd := bytes.NewReader(payload)
	var ferr error
	gu32 := func() uint32 {
		var b [4]byte
		if _, err := io.ReadFull(rd, b[:]); err != nil && ferr == nil {
			ferr = err
		}
		return le.Uint32(b[:])
	}
	gu64 := func() uint64 {
		var b [8]byte
		if _, err := io.ReadFull(rd, b[:]); err != nil && ferr == nil {
			ferr = err
		}
		return le.Uint64(b[:])
	}

	s := &Snapshot{}
	s.Step = gu64()
	s.Epoch = gu64()
	s.Cursor = gu64()
	s.Nodes = int(gu32())
	s.AdamT = int(gu64())
	s.LR = math.Float64frombits(gu64())
	for i := range s.RNG {
		s.RNG[i] = gu64()
	}
	if n := gu32(); n > 0 && ferr == nil {
		s.Order = make([]uint32, n)
		for i := range s.Order {
			s.Order[i] = gu32()
		}
	}
	groups := make([][]*tensor.Tensor, 4)
	for g := range groups {
		count := gu32()
		if ferr != nil {
			break
		}
		ts := make([]*tensor.Tensor, 0, count)
		for i := 0; i < int(count) && ferr == nil; i++ {
			rank := gu32()
			shape := make([]int, rank)
			numel := 1
			for d := range shape {
				shape[d] = int(gu32())
				numel *= shape[d]
			}
			if ferr != nil || numel < 0 || uint64(numel)*4 > plen {
				return nil, fmt.Errorf("distrib: checkpoint tensor %d/%d has implausible shape", g, i)
			}
			t := tensor.New(shape...)
			for j := range t.Data {
				t.Data[j] = math.Float32frombits(gu32())
			}
			ts = append(ts, t)
		}
		groups[g] = ts
	}
	if ferr != nil {
		return nil, fmt.Errorf("distrib: truncated checkpoint payload: %w", ferr)
	}
	s.Params, s.State, s.AdamM, s.AdamV = groups[0], groups[1], groups[2], groups[3]
	return s, nil
}

// CheckpointManager writes and retains snapshots in a directory.
// Filenames embed the zero-padded step so lexical order is step order.
type CheckpointManager struct {
	Dir string
	// Prefix defaults to "ckpt".
	Prefix string
	// Keep is how many most-recent checkpoints to retain; 0 means
	// DefaultKeep, negative keeps everything.
	Keep int
}

func (cm *CheckpointManager) prefix() string {
	if cm.Prefix == "" {
		return "ckpt"
	}
	return cm.Prefix
}

func (cm *CheckpointManager) pathFor(step uint64) string {
	return filepath.Join(cm.Dir, fmt.Sprintf("%s-%012d.ckpt", cm.prefix(), step))
}

// Save writes s atomically (tmp file, fsync, rename) and prunes old
// checkpoints beyond Keep. It returns the final path.
func (cm *CheckpointManager) Save(s *Snapshot) (string, error) {
	if err := os.MkdirAll(cm.Dir, 0o755); err != nil {
		return "", err
	}
	path := cm.pathFor(s.Step)
	tmp, err := os.CreateTemp(cm.Dir, cm.prefix()+"-*.tmp")
	if err != nil {
		return "", err
	}
	tmpName := tmp.Name()
	fail := func(err error) (string, error) {
		tmp.Close()
		os.Remove(tmpName)
		return "", err
	}
	if err := WriteSnapshot(tmp, s); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	info, _ := tmp.Stat()
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return "", err
	}
	ckptWrites.Inc()
	if info != nil {
		ckptBytes.Add(uint64(info.Size()))
	}
	cm.prune()
	return path, nil
}

// List returns the retained checkpoint paths, oldest first.
func (cm *CheckpointManager) List() ([]string, error) {
	entries, err := os.ReadDir(cm.Dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && filepath.Ext(name) == ".ckpt" &&
			len(name) > len(cm.prefix()) && name[:len(cm.prefix())+1] == cm.prefix()+"-" {
			paths = append(paths, filepath.Join(cm.Dir, name))
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// Latest returns the newest checkpoint path, or "" when none exists.
func (cm *CheckpointManager) Latest() (string, error) {
	paths, err := cm.List()
	if err != nil || len(paths) == 0 {
		return "", err
	}
	return paths[len(paths)-1], nil
}

func (cm *CheckpointManager) prune() {
	keep := cm.Keep
	if keep < 0 {
		return
	}
	if keep == 0 {
		keep = DefaultKeep
	}
	paths, err := cm.List()
	if err != nil {
		return
	}
	for len(paths) > keep {
		os.Remove(paths[0])
		paths = paths[1:]
	}
}

// LoadSnapshot reads and validates the checkpoint at path.
func LoadSnapshot(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}
