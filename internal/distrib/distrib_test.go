package distrib

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"computecovid19/internal/ag"
	"computecovid19/internal/nn"
	"computecovid19/internal/tensor"
)

func TestRingAllReduceSums(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8} {
		length := 13
		vecs := make([][]float32, n)
		want := make([]float32, length)
		for i := range vecs {
			vecs[i] = make([]float32, length)
			for j := range vecs[i] {
				vecs[i][j] = float32(i*100 + j)
				want[j] += vecs[i][j]
			}
		}
		RingAllReduce(vecs)
		for i := range vecs {
			for j := range want {
				if math.Abs(float64(vecs[i][j]-want[j])) > 1e-3 {
					t.Fatalf("n=%d node %d elem %d = %v, want %v", n, i, j, vecs[i][j], want[j])
				}
			}
		}
	}
}

func TestRingAllReduceSingleNodeNoop(t *testing.T) {
	v := [][]float32{{1, 2, 3}}
	RingAllReduce(v)
	if v[0][0] != 1 || v[0][2] != 3 {
		t.Fatal("single-node all-reduce must be a no-op")
	}
}

func TestRingAllReduceShortVector(t *testing.T) {
	// Vector shorter than the node count: some chunks are empty.
	vecs := [][]float32{{1}, {2}, {3}, {4}}
	RingAllReduce(vecs)
	for i := range vecs {
		if vecs[i][0] != 10 {
			t.Fatalf("node %d = %v, want 10", i, vecs[i][0])
		}
	}
}

func TestAllReduceMean(t *testing.T) {
	vecs := [][]float32{{2, 4}, {4, 8}}
	AllReduceMean(vecs)
	if vecs[0][0] != 3 || vecs[1][1] != 6 {
		t.Fatalf("mean wrong: %v", vecs)
	}
}

// Property: all nodes agree after all-reduce, for any sizes.
func TestRingAllReduceAgreementProperty(t *testing.T) {
	f := func(seed int64, nRaw, lenRaw uint8) bool {
		n := int(nRaw%7) + 2
		length := int(lenRaw%40) + 1
		rng := rand.New(rand.NewSource(seed))
		vecs := make([][]float32, n)
		for i := range vecs {
			vecs[i] = make([]float32, length)
			for j := range vecs[i] {
				vecs[i][j] = float32(rng.NormFloat64())
			}
		}
		RingAllReduce(vecs)
		for i := 1; i < n; i++ {
			for j := 0; j < length; j++ {
				if math.Abs(float64(vecs[i][j]-vecs[0][j])) > 1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// toyModel is a tiny regression network for trainer tests.
type toyModel struct{ *nn.Sequential }

func newToyFactory() func() Model {
	return func() Model {
		rng := rand.New(rand.NewSource(42)) // fixed: deterministic factory
		return &toyModel{nn.NewSequential(
			nn.NewLinear(rng, 2, 6, 0.5),
			&nn.Func{F: ag.Tanh},
			nn.NewLinear(rng, 6, 1, 0.5),
		)}
	}
}

func toyLoss(m Model, xs, ys []*tensor.Tensor) *ag.Value {
	mod := m.(*toyModel)
	n := len(xs)
	xb := tensor.New(n, 2)
	yb := tensor.New(n, 1)
	for i := range xs {
		copy(xb.Data[i*2:(i+1)*2], xs[i].Data)
		yb.Data[i] = ys[i].Data[0]
	}
	return ag.MSELoss(mod.Forward(ag.Const(xb)), ag.Const(yb))
}

func toyData(rng *rand.Rand, n int) (xs, ys []*tensor.Tensor) {
	for i := 0; i < n; i++ {
		x := tensor.New(2).RandN(rng, 0, 1)
		y := tensor.FromSlice([]float32{x.Data[0]*2 - x.Data[1]}, 1)
		xs = append(xs, x)
		ys = append(ys, y)
	}
	return
}

func TestTrainerKeepsReplicasInSync(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := NewTrainer(newToyFactory(), 4, 0.01, toyLoss)
	xs, ys := toyData(rng, 8)
	for i := 0; i < 5; i++ {
		tr.Step(xs, ys)
	}
	if !tr.InSync(1e-6) {
		t.Fatal("replicas drifted apart after synchronized steps")
	}
}

func TestTrainerMatchesSingleNode(t *testing.T) {
	// DDP invariant: N nodes on a global batch must produce the same
	// parameters as one node on the same batch (up to float reassociation).
	rng := rand.New(rand.NewSource(2))
	xs, ys := toyData(rng, 8)

	t1 := NewTrainer(newToyFactory(), 1, 0.01, toyLoss)
	t4 := NewTrainer(newToyFactory(), 4, 0.01, toyLoss)
	for i := 0; i < 10; i++ {
		t1.Step(xs, ys)
		t4.Step(xs, ys)
	}
	p1 := t1.Master().Params()
	p4 := t4.Master().Params()
	for i := range p1 {
		if !p1[i].T.AllClose(p4[i].T, 1e-3) {
			t.Fatalf("param %d differs between 1-node and 4-node training: max diff %v",
				i, p1[i].T.MaxAbsDiff(p4[i].T))
		}
	}
}

func TestTrainerLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := NewTrainer(newToyFactory(), 2, 0.02, toyLoss)
	xs, ys := toyData(rng, 16)
	first := tr.Step(xs, ys)
	var last float64
	for i := 0; i < 150; i++ {
		last = tr.Step(xs, ys)
	}
	if last > first/10 {
		t.Fatalf("distributed training did not converge: first %v, last %v", first, last)
	}
}

func TestTrainerSmallBatchManyNodes(t *testing.T) {
	// Global batch smaller than node count: idle nodes must not break
	// synchronization.
	rng := rand.New(rand.NewSource(4))
	tr := NewTrainer(newToyFactory(), 4, 0.01, toyLoss)
	xs, ys := toyData(rng, 2)
	tr.Step(xs, ys)
	if !tr.InSync(1e-6) {
		t.Fatal("idle nodes broke synchronization")
	}
}

func TestClusterModelMatchesTable3Shape(t *testing.T) {
	c := PaperCluster()
	// Single node, batch 1, 50 epochs: paper reports 15:14:46 ≈ 54886 s.
	got := c.TrainingSeconds(1, 1, 50)
	if got < 0.7*54886 || got > 1.3*54886 {
		t.Fatalf("1-node 50-epoch projection = %.0fs, paper 54886s", got)
	}
	// 4 nodes batch 8: 2:27:49 ≈ 8869 s.
	got = c.TrainingSeconds(4, 8, 50)
	if got < 0.5*8869 || got > 1.6*8869 {
		t.Fatalf("4-node batch-8 projection = %.0fs, paper 8869s", got)
	}
	// 8 nodes batch 64: 1:12:24 ≈ 4344 s.
	got = c.TrainingSeconds(8, 64, 50)
	if got < 0.5*4344 || got > 1.7*4344 {
		t.Fatalf("8-node batch-64 projection = %.0fs, paper 4344s", got)
	}
}

func TestClusterModelSublinearSpeedup(t *testing.T) {
	c := PaperCluster()
	// Fixed global batch 8: speedup grows with nodes but sub-linearly.
	s4 := c.Speedup(4, 8)
	s8 := c.Speedup(8, 8)
	if !(s4 > 1 && s8 > s4) {
		t.Fatalf("speedups not increasing: s4=%v s8=%v", s4, s8)
	}
	if s8 >= 8*8 { // global batch 8 gives at most 8× from batching + 8× nodes
		t.Fatalf("speedup implausibly superlinear: %v", s8)
	}
	// Doubling nodes at fixed per-node batch must not double throughput
	// (synchronization cost): epoch(8 nodes, batch 16) > epoch(4, 8)/2.
	if c.EpochSeconds(8, 16) <= c.EpochSeconds(4, 8)/2 {
		t.Fatal("model shows no synchronization penalty")
	}
	// 100 epochs take twice as long as 50.
	if math.Abs(c.TrainingSeconds(4, 8, 100)-2*c.TrainingSeconds(4, 8, 50)) > 1e-6 {
		t.Fatal("epochs must scale linearly")
	}
}

func TestNaiveAllReduceMatchesRing(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	n, length := 5, 33
	a := make([][]float32, n)
	b := make([][]float32, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float32, length)
		b[i] = make([]float32, length)
		for j := range a[i] {
			v := float32(rng.NormFloat64())
			a[i][j], b[i][j] = v, v
		}
	}
	RingAllReduce(a)
	NaiveAllReduce(b)
	for i := range a {
		for j := range a[i] {
			if math.Abs(float64(a[i][j]-b[i][j])) > 1e-4 {
				t.Fatalf("ring and naive disagree at node %d elem %d: %v vs %v",
					i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestCommunicationVolumes(t *testing.T) {
	// Ring per-node volume is bounded (< 2 full vectors) regardless of n;
	// the parameter server's root grows linearly with n.
	length := 1000
	prevRoot := 0
	for _, n := range []int{2, 4, 8, 16} {
		ring := RingBytesPerNode(n, length)
		root := ServerBytesAtRoot(n, length)
		if ring >= 2*4*length {
			t.Fatalf("ring volume %d exceeds 2 vectors at n=%d", ring, n)
		}
		if root <= prevRoot {
			t.Fatalf("server root volume should grow with n")
		}
		prevRoot = root
	}
	if RingBytesPerNode(1, length) != 0 || ServerBytesAtRoot(1, length) != 0 {
		t.Fatal("single-node volumes must be zero")
	}
}

func TestRingStepSecondsModel(t *testing.T) {
	// More nodes cost more latency terms but the bandwidth term stays
	// bounded; the function must be monotone in latency and length.
	base := RingStepSeconds(8, 1<<20, 10e9, 10e-6)
	if base <= 0 {
		t.Fatal("ring time must be positive")
	}
	if RingStepSeconds(8, 2<<20, 10e9, 10e-6) <= base {
		t.Fatal("bigger model must take longer")
	}
	if RingStepSeconds(8, 1<<20, 10e9, 100e-6) <= base {
		t.Fatal("higher latency must take longer")
	}
	if RingStepSeconds(1, 1<<20, 10e9, 10e-6) != 0 {
		t.Fatal("single node needs no communication")
	}
}
