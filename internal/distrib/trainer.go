package distrib

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"computecovid19/internal/ag"
	"computecovid19/internal/nn"
	"computecovid19/internal/obs"
	"computecovid19/internal/tensor"
)

// Per-step training telemetry: the loss and (post-all-reduce) gradient
// norm a training dashboard would plot, plus a step counter. The grad
// norm is O(parameters) to compute, so it is derived only while span
// collection is enabled.
var (
	stepsTotal   = obs.GetCounter("distrib_steps_total")
	stepLossG    = obs.GetGauge("distrib_step_loss")
	gradNormG    = obs.GetGauge("distrib_grad_norm")
	stepSecondsH = obs.GetHistogram("distrib_step_seconds", nil)

	// Straggler detection: rankSecondsH exports every rank's per-step
	// compute time; a rank whose current step exceeds StragglerFactor ×
	// the trainer's own pooled p99 raises the warning counter and gauge —
	// the operator sees the slow rank long before a timeout would force
	// recovery.
	rankSecondsH       = obs.GetHistogram("distrib_rank_step_seconds", nil)
	stragglerWarnings  = obs.GetCounter("distrib_straggler_warnings_total")
	stragglerRankG     = obs.GetGauge("distrib_straggler_rank")
	groupSizeG         = obs.GetGauge("distrib_group_size")
	rankRemovedCounter = obs.GetCounter("distrib_ranks_removed_total")
)

// stragglerWarmup is how many pooled rank timings must exist before the
// p99 comparison is meaningful.
const stragglerWarmup = 32

// Model is what the data-parallel trainer needs from a network.
type Model interface {
	Params() []*ag.Value
	SetTraining(train bool)
}

// LossFunc builds the scalar training loss of model m on a mini-batch.
// It must construct the graph through m's parameters so Backward reaches
// them.
type LossFunc func(m Model, xs, ys []*tensor.Tensor) *ag.Value

// Trainer runs synchronous data-parallel SGD in the DistributedDataParallel
// style: every node holds a full replica, gradients are ring-all-reduced
// each step, and identical optimizer states keep the replicas in
// lockstep (§4.1: "forward propagation is executed independently, while
// the gradients are synchronized during back propagation").
type Trainer struct {
	Nodes    int
	replicas []Model
	opts     []*nn.Adam
	loss     LossFunc

	// reduce averages the per-node gradient vectors in place; nil means
	// the ring (AllReduceMean). SetReducer switches implementations.
	reduce func([][]float32)
	// ft, when non-nil, routes collectives through the resilient
	// checksummed transport and enables fault handling in TryStep.
	ft *RingOptions
	// StragglerFactor scales the pooled p99 threshold; <= 0 means 2.
	StragglerFactor float64

	step     uint64
	perRankH []*obs.Histogram
	// pooled is this trainer's own timing baseline for straggler
	// detection; the registry-level distrib_rank_step_seconds histogram
	// still receives every observation for dashboards, but thresholding
	// on it would let unrelated trainers (or earlier runs in the same
	// process) skew the p99.
	pooled *obs.Histogram
}

// NewTrainer builds a trainer with `nodes` replicas. factory must be
// deterministic: every invocation returns a model with identical initial
// parameters (use a fixed seed inside).
func NewTrainer(factory func() Model, nodes int, lr float64, loss LossFunc) *Trainer {
	if nodes < 1 {
		panic("distrib: need at least one node")
	}
	t := &Trainer{Nodes: nodes, loss: loss, pooled: obs.NewHistogram(nil)}
	for i := 0; i < nodes; i++ {
		m := factory()
		m.SetTraining(true)
		t.replicas = append(t.replicas, m)
		t.opts = append(t.opts, nn.NewAdam(m.Params(), lr))
		t.perRankH = append(t.perRankH,
			obs.GetHistogram(fmt.Sprintf("distrib_rank_step_seconds{rank=%q}", fmt.Sprint(i)), nil))
	}
	groupSizeG.Set(float64(nodes))
	// Verify the factory is deterministic — silent divergence here would
	// invalidate every result built on the trainer.
	if nodes > 1 {
		p0, p1 := t.replicas[0].Params(), t.replicas[1].Params()
		for i := range p0 {
			if !p0[i].T.AllClose(p1[i].T, 0) {
				panic(fmt.Sprintf("distrib: factory is not deterministic (param %d differs)", i))
			}
		}
	}
	return t
}

// Master returns replica 0, whose parameters equal every other
// replica's.
func (t *Trainer) Master() Model { return t.replicas[0] }

// GlobalStep reports how many optimizer steps have been applied (it is
// restored by checkpoints).
func (t *Trainer) GlobalStep() uint64 { return t.step }

// SetReducer replaces the gradient-averaging collective (default: ring
// AllReduceMean; NaiveAllReduceMean is the parameter-server ablation).
// Ignored while fault tolerance is enabled — the resilient ring owns
// the collective there.
func (t *Trainer) SetReducer(reduce func([][]float32)) { t.reduce = reduce }

// EnableFaultTolerance routes gradient synchronization through the
// checksummed, timeout-guarded ring with the given options. TryStep
// then surfaces *DeadRankError instead of hanging on a crashed rank.
func (t *Trainer) EnableFaultTolerance(opt RingOptions) {
	o := opt.withDefaults()
	t.ft = &o
}

// FaultPlan returns the injected fault plan, if fault tolerance is
// enabled with one.
func (t *Trainer) FaultPlan() *FaultPlan {
	if t.ft == nil {
		return nil
	}
	return t.ft.Faults
}

// SetLR updates the learning rate on every node's optimizer.
func (t *Trainer) SetLR(lr float64) {
	for _, o := range t.opts {
		o.SetLR(lr)
	}
}

// LR reports the current learning rate.
func (t *Trainer) LR() float64 { return t.opts[0].LR() }

// Step performs one synchronous data-parallel step, panicking on
// transport failure (only possible with fault tolerance enabled — use
// TryStep there).
func (t *Trainer) Step(xs, ys []*tensor.Tensor) float64 {
	loss, err := t.TryStep(xs, ys)
	if err != nil {
		panic(fmt.Sprintf("distrib: Step failed (use TryStep with fault tolerance): %v", err))
	}
	return loss
}

// TryStep performs one synchronous data-parallel step on a global batch:
// shard across nodes, backward per node in parallel, all-reduce the
// gradients, identical optimizer step everywhere. Returns the global
// mean loss. Nodes with an empty shard (global batch smaller than the
// node count) contribute zero gradients, as DDP's join semantics do.
//
// With fault tolerance enabled, a confirmed-dead rank returns a
// *DeadRankError and the trainer's state must be considered
// inconsistent: re-form the group (RemoveRanks) and Restore the last
// checkpoint before stepping again. RunElastic automates that loop.
func (t *Trainer) TryStep(xs, ys []*tensor.Tensor) (float64, error) {
	return t.TryStepCtx(context.Background(), xs, ys)
}

// TryStepCtx is TryStep continuing the context's trace: the step span
// nests under the caller's active span, and per-rank compute plus the
// gradient all-reduce get child spans — stragglers show up in traces,
// not just in the rank-seconds histograms.
func (t *Trainer) TryStepCtx(ctx context.Context, xs, ys []*tensor.Tensor) (float64, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("distrib: Step needs equally many inputs and targets")
	}
	_, sp := obs.StartCtx(ctx, "distrib/step")
	defer sp.End()
	if sp != nil {
		sp.SetAttr("nodes", t.Nodes)
		sp.SetAttr("global_batch", len(xs))
	}
	var plan *FaultPlan
	if t.ft != nil {
		plan = t.ft.Faults
	}
	plan.BeginStep(t.step)

	stepStart := time.Now()
	global := len(xs)

	losses := make([]float64, t.Nodes)
	rankDur := make([]time.Duration, t.Nodes)
	var wg sync.WaitGroup
	for node := 0; node < t.Nodes; node++ {
		lo := node * global / t.Nodes
		hi := (node + 1) * global / t.Nodes
		wg.Add(1)
		go func(node, lo, hi int) {
			defer wg.Done()
			rsp := sp.Child("distrib/rank")
			if rsp != nil {
				rsp.SetAttr("rank", node)
				rsp.SetAttr("shard", hi-lo)
			}
			t0 := time.Now()
			defer func() {
				d := time.Since(t0)
				rankDur[node] = d
				rankSecondsH.Observe(d.Seconds())
				if node < len(t.perRankH) {
					t.perRankH[node].Observe(d.Seconds())
				}
				rsp.End()
			}()
			m := t.replicas[node]
			for _, p := range m.Params() {
				p.ZeroGrad()
			}
			if plan.Crashed(node) || lo == hi {
				// Dead rank or empty shard: keep gradients allocated so a
				// (possibly partial) all-reduce stays aligned.
				for _, p := range m.Params() {
					p.Grad = tensor.New(p.T.Shape...)
				}
				return
			}
			if d := plan.computeDelay(node); d > 0 {
				time.Sleep(d) // injected straggler
			}
			loss := t.loss(m, xs[lo:hi], ys[lo:hi])
			// Scale so the all-reduced mean over nodes equals the global
			// batch mean: shardMean · shardSize · nodes / global.
			scaled := ag.MulConst(loss, float32(hi-lo)*float32(t.Nodes)/float32(global))
			scaled.Backward()
			losses[node] = float64(loss.Scalar()) * float64(hi-lo)
		}(node, lo, hi)
	}
	wg.Wait()
	t.checkStragglers(rankDur)

	// Gradient synchronization: one all-reduce per parameter tensor, as
	// gloo buckets do. One collective span covers the whole sweep; its
	// byte count is the step's wire traffic.
	arSp := sp.Child("distrib/allreduce")
	params0 := t.replicas[0].Params()
	gradBytes := 0
	for pi := range params0 {
		vecs := make([][]float32, t.Nodes)
		for node := 0; node < t.Nodes; node++ {
			vecs[node] = t.replicas[node].Params()[pi].Grad.Data
		}
		gradBytes += 4 * len(vecs[0]) * t.Nodes
		if t.ft != nil {
			if err := ResilientAllReduceMean(vecs, *t.ft); err != nil {
				if arSp != nil {
					arSp.SetAttr("error", err.Error())
				}
				arSp.End()
				return 0, err
			}
		} else if t.reduce != nil {
			t.reduce(vecs)
		} else {
			AllReduceMean(vecs)
		}
	}
	if arSp != nil {
		arSp.SetAttr("params", len(params0))
		arSp.SetAttr("bytes", gradBytes)
	}
	arSp.End()

	for _, o := range t.opts {
		o.Step()
	}

	total := 0.0
	for _, l := range losses {
		total += l
	}
	mean := total / float64(global)

	stepsTotal.Inc()
	stepLossG.Set(mean)
	stepSecondsH.Observe(time.Since(stepStart).Seconds())
	if obs.Enabled() {
		// All replicas hold identical averaged gradients here, so the
		// master's norm is the global norm.
		var sq float64
		for _, p := range params0 {
			for _, g := range p.Grad.Data {
				sq += float64(g) * float64(g)
			}
		}
		gradNormG.Set(math.Sqrt(sq))
	}
	t.step++
	return mean, nil
}

// checkStragglers compares each rank's compute time against the
// trainer's historical pooled p99 and raises the warning metric for
// outliers — the early signal that precedes (and often predicts) a
// timeout-driven recovery. The current step's durations are folded into
// the baseline only after the comparison, so a single slow step cannot
// raise the threshold above itself.
func (t *Trainer) checkStragglers(rankDur []time.Duration) {
	defer func() {
		for _, d := range rankDur {
			t.pooled.Observe(d.Seconds())
		}
	}()
	if t.Nodes < 2 || t.pooled.Count() < stragglerWarmup {
		return
	}
	factor := t.StragglerFactor
	if factor <= 0 {
		factor = 2
	}
	threshold := factor * t.pooled.Quantile(0.99)
	if threshold <= 0 {
		return
	}
	for rank, d := range rankDur {
		if d.Seconds() > threshold {
			stragglerWarnings.Inc()
			stragglerRankG.Set(float64(rank))
		}
	}
}

// RemoveRanks re-forms the group without the given (ascending) ranks:
// their replicas and optimizer states are dropped, surviving ranks are
// renumbered densely, and subsequent steps re-shard the global batch
// over the smaller group. The fault plan (if any) is remapped to the
// new numbering.
func (t *Trainer) RemoveRanks(ranks []int) error {
	if len(ranks) == 0 {
		return nil
	}
	drop := map[int]bool{}
	for _, r := range ranks {
		if r < 0 || r >= t.Nodes {
			return fmt.Errorf("distrib: RemoveRanks: rank %d out of range (group size %d)", r, t.Nodes)
		}
		drop[r] = true
	}
	if len(drop) >= t.Nodes {
		return fmt.Errorf("distrib: RemoveRanks would leave an empty group")
	}
	var replicas []Model
	var opts []*nn.Adam
	for i := 0; i < t.Nodes; i++ {
		if drop[i] {
			continue
		}
		replicas = append(replicas, t.replicas[i])
		opts = append(opts, t.opts[i])
	}
	t.replicas, t.opts = replicas, opts
	t.Nodes = len(replicas)
	rankRemovedCounter.Add(uint64(len(drop)))
	groupSizeG.Set(float64(t.Nodes))
	if t.ft != nil {
		t.ft.Faults.RemoveRanks(ranks)
	}
	return nil
}

// InSync reports whether all replicas hold identical parameters (used by
// tests and assertions; any drift means broken synchronization).
func (t *Trainer) InSync(tol float64) bool {
	p0 := t.replicas[0].Params()
	for node := 1; node < t.Nodes; node++ {
		pn := t.replicas[node].Params()
		for i := range p0 {
			if !p0[i].T.AllClose(pn[i].T, tol) {
				return false
			}
		}
	}
	return true
}
