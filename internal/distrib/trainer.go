package distrib

import (
	"fmt"
	"math"
	"sync"
	"time"

	"computecovid19/internal/ag"
	"computecovid19/internal/nn"
	"computecovid19/internal/obs"
	"computecovid19/internal/tensor"
)

// Per-step training telemetry: the loss and (post-all-reduce) gradient
// norm a training dashboard would plot, plus a step counter. The grad
// norm is O(parameters) to compute, so it is derived only while span
// collection is enabled.
var (
	stepsTotal   = obs.GetCounter("distrib_steps_total")
	stepLossG    = obs.GetGauge("distrib_step_loss")
	gradNormG    = obs.GetGauge("distrib_grad_norm")
	stepSecondsH = obs.GetHistogram("distrib_step_seconds", nil)
)

// Model is what the data-parallel trainer needs from a network.
type Model interface {
	Params() []*ag.Value
	SetTraining(train bool)
}

// LossFunc builds the scalar training loss of model m on a mini-batch.
// It must construct the graph through m's parameters so Backward reaches
// them.
type LossFunc func(m Model, xs, ys []*tensor.Tensor) *ag.Value

// Trainer runs synchronous data-parallel SGD in the DistributedDataParallel
// style: every node holds a full replica, gradients are ring-all-reduced
// each step, and identical optimizer states keep the replicas in
// lockstep (§4.1: "forward propagation is executed independently, while
// the gradients are synchronized during back propagation").
type Trainer struct {
	Nodes    int
	replicas []Model
	opts     []*nn.Adam
	loss     LossFunc
}

// NewTrainer builds a trainer with `nodes` replicas. factory must be
// deterministic: every invocation returns a model with identical initial
// parameters (use a fixed seed inside).
func NewTrainer(factory func() Model, nodes int, lr float64, loss LossFunc) *Trainer {
	if nodes < 1 {
		panic("distrib: need at least one node")
	}
	t := &Trainer{Nodes: nodes, loss: loss}
	for i := 0; i < nodes; i++ {
		m := factory()
		m.SetTraining(true)
		t.replicas = append(t.replicas, m)
		t.opts = append(t.opts, nn.NewAdam(m.Params(), lr))
	}
	// Verify the factory is deterministic — silent divergence here would
	// invalidate every result built on the trainer.
	if nodes > 1 {
		p0, p1 := t.replicas[0].Params(), t.replicas[1].Params()
		for i := range p0 {
			if !p0[i].T.AllClose(p1[i].T, 0) {
				panic(fmt.Sprintf("distrib: factory is not deterministic (param %d differs)", i))
			}
		}
	}
	return t
}

// Master returns replica 0, whose parameters equal every other
// replica's.
func (t *Trainer) Master() Model { return t.replicas[0] }

// SetLR updates the learning rate on every node's optimizer.
func (t *Trainer) SetLR(lr float64) {
	for _, o := range t.opts {
		o.SetLR(lr)
	}
}

// LR reports the current learning rate.
func (t *Trainer) LR() float64 { return t.opts[0].LR() }

// Step performs one synchronous data-parallel step on a global batch:
// shard across nodes, backward per node in parallel, ring all-reduce the
// gradients, identical optimizer step everywhere. Returns the global
// mean loss. Nodes with an empty shard (global batch smaller than the
// node count) contribute zero gradients, as DDP's join semantics do.
func (t *Trainer) Step(xs, ys []*tensor.Tensor) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("distrib: Step needs equally many inputs and targets")
	}
	sp := obs.Start("distrib/step")
	defer sp.End()
	if sp != nil {
		sp.SetAttr("nodes", t.Nodes)
		sp.SetAttr("global_batch", len(xs))
	}
	stepStart := time.Now()
	global := len(xs)

	losses := make([]float64, t.Nodes)
	var wg sync.WaitGroup
	for node := 0; node < t.Nodes; node++ {
		lo := node * global / t.Nodes
		hi := (node + 1) * global / t.Nodes
		wg.Add(1)
		go func(node, lo, hi int) {
			defer wg.Done()
			m := t.replicas[node]
			for _, p := range m.Params() {
				p.ZeroGrad()
			}
			if lo == hi {
				// Ensure gradients exist so the all-reduce stays aligned.
				for _, p := range m.Params() {
					p.Grad = tensor.New(p.T.Shape...)
				}
				return
			}
			loss := t.loss(m, xs[lo:hi], ys[lo:hi])
			// Scale so the all-reduced mean over nodes equals the global
			// batch mean: shardMean · shardSize · nodes / global.
			scaled := ag.MulConst(loss, float32(hi-lo)*float32(t.Nodes)/float32(global))
			scaled.Backward()
			losses[node] = float64(loss.Scalar()) * float64(hi-lo)
		}(node, lo, hi)
	}
	wg.Wait()

	// Gradient synchronization: one ring all-reduce per parameter
	// tensor, as gloo buckets do.
	params0 := t.replicas[0].Params()
	for pi := range params0 {
		vecs := make([][]float32, t.Nodes)
		for node := 0; node < t.Nodes; node++ {
			vecs[node] = t.replicas[node].Params()[pi].Grad.Data
		}
		AllReduceMean(vecs)
	}

	for _, o := range t.opts {
		o.Step()
	}

	total := 0.0
	for _, l := range losses {
		total += l
	}
	mean := total / float64(global)

	stepsTotal.Inc()
	stepLossG.Set(mean)
	stepSecondsH.Observe(time.Since(stepStart).Seconds())
	if obs.Enabled() {
		// All replicas hold identical averaged gradients here, so the
		// master's norm is the global norm.
		var sq float64
		for _, p := range params0 {
			for _, g := range p.Grad.Data {
				sq += float64(g) * float64(g)
			}
		}
		gradNormG.Set(math.Sqrt(sq))
	}
	return mean
}

// InSync reports whether all replicas hold identical parameters (used by
// tests and assertions; any drift means broken synchronization).
func (t *Trainer) InSync(tol float64) bool {
	p0 := t.replicas[0].Params()
	for node := 1; node < t.Nodes; node++ {
		pn := t.replicas[node].Params()
		for i := range p0 {
			if !p0[i].T.AllClose(pn[i].T, tol) {
				return false
			}
		}
	}
	return true
}
