// Package distrib reproduces the paper's distributed training substrate
// (§4.1): synchronous data-parallel training in the style of PyTorch
// DistributedDataParallel over the gloo backend. N logical nodes
// (goroutines) each hold a model replica, compute gradients on their
// shard of the global batch, average them with a ring all-reduce, and
// step identical optimizers — keeping every replica bit-for-bit in sync,
// exactly as DDP does.
//
// The package also provides the interconnect cost model used to project
// the paper's Table 3 runtimes onto their 18-node T4 cluster.
package distrib

import (
	"sync"

	"computecovid19/internal/obs"
)

// allReduceBytes accumulates the total bytes moved on the ring across
// all nodes — the live counterpart of Table 3's communication volume
// (and of RingBytesPerNode's closed form). Registered at package init
// so it appears in every metrics export of a binary that links distrib,
// even before the first step runs.
var allReduceBytes = obs.GetCounter("distrib_allreduce_bytes_total")

// allReduceCalls counts ring all-reduce invocations (one per parameter
// tensor per step, as gloo buckets do).
var allReduceCalls = obs.GetCounter("distrib_allreduce_calls_total")

// RingAllReduce sums the per-node vectors element-wise and leaves the
// result in every node's vector, using the bandwidth-optimal ring
// algorithm: a reduce-scatter pass followed by an all-gather pass, each
// moving (n-1)/n of the data per node. All vectors must have equal
// length. It runs one goroutine per node communicating over channels,
// mirroring a gloo ring on a physical cluster.
func RingAllReduce(vectors [][]float32) {
	n := len(vectors)
	if n <= 1 {
		return
	}
	length := len(vectors[0])
	for _, v := range vectors {
		if len(v) != length {
			panic("distrib: RingAllReduce vectors must have equal length")
		}
	}
	if length == 0 {
		return
	}

	// Wire accounting: every one of the 2(n−1) ring steps moves each of
	// the n chunks once, i.e. 4·length bytes across the ring per step.
	allReduceCalls.Inc()
	allReduceBytes.Add(uint64(2*(n-1)) * uint64(4*length))

	// Chunk boundaries: chunk c covers [bounds[c], bounds[c+1]).
	chunks := n
	bounds := make([]int, chunks+1)
	for c := 0; c <= chunks; c++ {
		bounds[c] = c * length / chunks
	}

	// links[i] carries messages from node i to node (i+1)%n.
	links := make([]chan []float32, n)
	for i := range links {
		links[i] = make(chan []float32, 1)
	}

	var wg sync.WaitGroup
	for node := 0; node < n; node++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			prev := (me - 1 + n) % n
			v := vectors[me]

			// Reduce-scatter: after n-1 steps, node me owns the fully
			// reduced chunk (me+1)%n.
			for step := 0; step < n-1; step++ {
				sendChunk := (me - step + n) % n
				lo, hi := bounds[sendChunk], bounds[sendChunk+1]
				out := make([]float32, hi-lo)
				copy(out, v[lo:hi])
				links[me] <- out

				recvChunk := (me - step - 1 + n) % n
				in := <-links[prev]
				rlo := bounds[recvChunk]
				for i, x := range in {
					v[rlo+i] += x
				}
			}
			// All-gather: circulate the reduced chunks.
			for step := 0; step < n-1; step++ {
				sendChunk := (me - step + 1 + n) % n
				lo, hi := bounds[sendChunk], bounds[sendChunk+1]
				out := make([]float32, hi-lo)
				copy(out, v[lo:hi])
				links[me] <- out

				recvChunk := (me - step + n) % n
				in := <-links[prev]
				rlo := bounds[recvChunk]
				copy(v[rlo:rlo+len(in)], in)
			}
		}(node)
	}
	wg.Wait()
}

// AllReduceMean averages the per-node vectors in place (all-reduce sum
// followed by division by the node count).
func AllReduceMean(vectors [][]float32) {
	RingAllReduce(vectors)
	n := float32(len(vectors))
	if n <= 1 {
		return
	}
	for _, v := range vectors {
		for i := range v {
			v[i] /= n
		}
	}
}
