package distrib

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync"
	"time"

	"computecovid19/internal/obs"
)

// Fault-tolerant all-reduce path. The plain RingAllReduce assumes every
// rank is alive and every message arrives intact — true in-process,
// false on a cluster. This file wraps the same ring algorithm in the
// machinery a gloo deployment needs: per-message checksums (corruption
// is detected, not averaged into the gradients), per-collective
// timeouts (a dead or stalled rank cannot hang the job), and bounded
// retries with exponential backoff (transient drops and delays heal;
// confirmed-dead ranks surface as DeadRankError so the trainer can
// re-form the group).

var (
	collectiveRetries  = obs.GetCounter("distrib_collective_retries_total")
	collectiveTimeouts = obs.GetCounter("distrib_collective_timeouts_total")
	corruptDetected    = obs.GetCounter("distrib_corrupt_payloads_detected_total")
)

// RingOptions configures the resilient collective.
type RingOptions struct {
	// Timeout bounds one attempt of the collective; 0 means 2s.
	Timeout time.Duration
	// Retries is how many additional attempts follow a failed one; 0
	// means 3. Retries only help transient faults — a confirmed-dead
	// rank fails fast without burning the budget.
	Retries int
	// Backoff is the sleep before the first retry, doubling per attempt;
	// 0 means 1ms.
	Backoff time.Duration
	// Faults optionally injects failures (tests, chaos CI) and acts as
	// the failure detector for crashed ranks. Nil injects nothing.
	Faults *FaultPlan
}

func (o RingOptions) withDefaults() RingOptions {
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.Retries <= 0 {
		o.Retries = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = time.Millisecond
	}
	return o
}

// message is one ring hop's payload plus its integrity checksum.
type message struct {
	data []float32
	sum  uint32
}

func checksum(data []float32) uint32 {
	var buf [4]byte
	crc := crc32.NewIEEE()
	for _, f := range data {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(f))
		crc.Write(buf[:])
	}
	return crc.Sum32()
}

// transient transport errors (timeouts, corruption) — retried; only a
// failure-detector-confirmed crash escalates to DeadRankError.
type transportError struct {
	rank int // the peer blamed for the failure
	kind string
}

func (e *transportError) Error() string {
	return fmt.Sprintf("distrib: %s involving rank %d", e.kind, e.rank)
}

// ResilientAllReduceMean averages the per-node vectors in place like
// AllReduceMean, but over the checksummed, timeout-guarded ring. On
// success every vector holds the element-wise mean and the return is
// nil. On failure the input vectors are left untouched (each attempt
// works on a copy) and the error is either a *DeadRankError (re-form
// the group, restore a checkpoint) or the last transient error after
// the retry budget is exhausted.
func ResilientAllReduceMean(vectors [][]float32, opt RingOptions) error {
	n := len(vectors)
	if n == 0 {
		return nil
	}
	length := len(vectors[0])
	for _, v := range vectors {
		if len(v) != length {
			panic("distrib: ResilientAllReduceMean vectors must have equal length")
		}
	}
	if n == 1 || length == 0 {
		return nil
	}
	opt = opt.withDefaults()

	// A rank already confirmed dead makes every attempt pointless.
	if dead := opt.Faults.DeadRanks(); len(dead) > 0 {
		return &DeadRankError{Ranks: dead}
	}

	backoff := opt.Backoff
	var lastErr error
	for attempt := 0; attempt <= opt.Retries; attempt++ {
		if attempt > 0 {
			collectiveRetries.Inc()
			time.Sleep(backoff)
			backoff *= 2
		}
		work := make([][]float32, n)
		for i, v := range vectors {
			work[i] = append([]float32(nil), v...)
		}
		err := faultyRingOnce(work, opt)
		if err == nil {
			inv := 1 / float32(n)
			for i := range vectors {
				for j := range vectors[i] {
					vectors[i][j] = work[i][j] * inv
				}
			}
			return nil
		}
		lastErr = err
		// Consult the failure detector: a crash that triggered during
		// this attempt is permanent, so stop retrying.
		if dead := opt.Faults.DeadRanks(); len(dead) > 0 {
			return &DeadRankError{Ranks: dead}
		}
	}
	return fmt.Errorf("distrib: all-reduce failed after %d attempts: %w", opt.Retries+1, lastErr)
}

// faultyRingOnce runs one attempt of the ring all-reduce (sum) over the
// fault-injecting, checksummed links. Wire accounting reuses the same
// counters as the plain ring.
func faultyRingOnce(vectors [][]float32, opt RingOptions) error {
	n := len(vectors)
	length := len(vectors[0])
	allReduceCalls.Inc()
	allReduceBytes.Add(uint64(2*(n-1)) * uint64(4*length))

	bounds := make([]int, n+1)
	for c := 0; c <= n; c++ {
		bounds[c] = c * length / n
	}
	links := make([]chan message, n)
	for i := range links {
		links[i] = make(chan message, 1)
	}

	errs := make([]error, n)
	var wg sync.WaitGroup
	for node := 0; node < n; node++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			if opt.Faults.Crashed(me) {
				// A dead process sends nothing; its neighbour times out.
				errs[me] = &transportError{rank: me, kind: "rank crashed"}
				return
			}
			timer := time.NewTimer(opt.Timeout)
			defer timer.Stop()
			prev := (me - 1 + n) % n
			v := vectors[me]

			send := func(lo, hi int) error {
				out := make([]float32, hi-lo)
				copy(out, v[lo:hi])
				msg := message{data: out, sum: checksum(out)}
				switch opt.Faults.sendFault() {
				case FaultDrop:
					return nil // vanished on the wire
				case FaultDelay:
					time.Sleep(opt.Faults.Delay)
				case FaultCorrupt:
					if len(out) > 0 {
						out[0] = flipBit(out[0])
					}
				}
				select {
				case links[me] <- msg:
					return nil
				case <-timer.C:
					collectiveTimeouts.Inc()
					return &transportError{rank: (me + 1) % n, kind: "send timeout to"}
				}
			}
			recv := func() (message, error) {
				select {
				case m := <-links[prev]:
					if checksum(m.data) != m.sum {
						corruptDetected.Inc()
						return message{}, &transportError{rank: prev, kind: "corrupt payload from"}
					}
					return m, nil
				case <-timer.C:
					collectiveTimeouts.Inc()
					return message{}, &transportError{rank: prev, kind: "recv timeout from"}
				}
			}

			// Reduce-scatter.
			for step := 0; step < n-1; step++ {
				sendChunk := (me - step + n) % n
				if err := send(bounds[sendChunk], bounds[sendChunk+1]); err != nil {
					errs[me] = err
					return
				}
				recvChunk := (me - step - 1 + n) % n
				in, err := recv()
				if err != nil {
					errs[me] = err
					return
				}
				rlo := bounds[recvChunk]
				if len(in.data) != bounds[recvChunk+1]-rlo {
					errs[me] = &transportError{rank: prev, kind: "misframed payload from"}
					return
				}
				for i, x := range in.data {
					v[rlo+i] += x
				}
			}
			// All-gather.
			for step := 0; step < n-1; step++ {
				sendChunk := (me - step + 1 + n) % n
				if err := send(bounds[sendChunk], bounds[sendChunk+1]); err != nil {
					errs[me] = err
					return
				}
				recvChunk := (me - step + n) % n
				in, err := recv()
				if err != nil {
					errs[me] = err
					return
				}
				rlo := bounds[recvChunk]
				if len(in.data) != bounds[recvChunk+1]-rlo {
					errs[me] = &transportError{rank: prev, kind: "misframed payload from"}
					return
				}
				copy(v[rlo:rlo+len(in.data)], in.data)
			}
		}(node)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// flipBit corrupts a float payload in a way a checksum always catches.
func flipBit(f float32) float32 {
	return math.Float32frombits(math.Float32bits(f) ^ 1)
}
