package distrib

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"computecovid19/internal/tensor"
)

// Resume regression: checkpoint → restore → train(N steps) must be
// bit-identical to training N steps without the interruption, across
// group sizes and both all-reduce implementations. This is the property
// that makes `cctrain -resume` trustworthy — a resumed Table-3 run is
// the run, not an approximation of it.

type reducerCase struct {
	name string
	f    func([][]float32) // nil = default ring
}

var reducerCases = []reducerCase{
	{"ring", nil},
	{"naive", NaiveAllReduceMean},
}

// runSteps trains count steps drawing fresh batches from rng, returning
// each step's loss.
func runSteps(tr *Trainer, rng *rand.Rand, count int) []float64 {
	losses := make([]float64, 0, count)
	for i := 0; i < count; i++ {
		xs, ys := toyData(rng, 6)
		losses = append(losses, tr.Step(xs, ys))
	}
	return losses
}

func masterParams(tr *Trainer) []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, p := range tr.Master().Params() {
		out = append(out, p.T)
	}
	return out
}

func bitIdenticalParams(a, b []*tensor.Tensor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for j := range a[i].Data {
			if a[i].Data[j] != b[i].Data[j] {
				return false
			}
		}
	}
	return true
}

func checkResumeBitIdentical(t *testing.T, nodes int, red reducerCase, seed int64, split, extra int) {
	t.Helper()
	total := split + extra

	// Reference: uninterrupted run.
	ref := NewTrainer(newToyFactory(), nodes, 0.01, toyLoss)
	ref.SetReducer(red.f)
	refSrc := NewRNG(seed)
	refLosses := runSteps(ref, rand.New(refSrc), total)

	// Interrupted run: train to split, checkpoint through disk, restore
	// into a brand-new trainer, continue.
	first := NewTrainer(newToyFactory(), nodes, 0.01, toyLoss)
	first.SetReducer(red.f)
	firstSrc := NewRNG(seed)
	firstRng := rand.New(firstSrc)
	runSteps(first, firstRng, split)
	s := first.Snapshot()
	s.RNG = firstSrc.State()
	cm := &CheckpointManager{Dir: t.TempDir()}
	path, err := cm.Save(s)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}

	resumed := NewTrainer(newToyFactory(), nodes, 0.01, toyLoss)
	resumed.SetReducer(red.f)
	if err := resumed.Restore(loaded); err != nil {
		t.Fatal(err)
	}
	resumedSrc := NewRNG(0)
	resumedSrc.SetState(loaded.RNG)
	tailLosses := runSteps(resumed, rand.New(resumedSrc), extra)

	for i, l := range tailLosses {
		if l != refLosses[split+i] {
			t.Fatalf("nodes=%d reducer=%s: step %d loss %v differs from uninterrupted %v",
				nodes, red.name, split+i, l, refLosses[split+i])
		}
	}
	if !bitIdenticalParams(masterParams(ref), masterParams(resumed)) {
		t.Fatalf("nodes=%d reducer=%s: resumed parameters are not bit-identical", nodes, red.name)
	}
	if resumed.GlobalStep() != uint64(total) {
		t.Fatalf("resumed global step %d, want %d", resumed.GlobalStep(), total)
	}
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	for _, nodes := range []int{1, 2, 4} {
		for _, red := range reducerCases {
			t.Run(fmt.Sprintf("nodes=%d/%s", nodes, red.name), func(t *testing.T) {
				checkResumeBitIdentical(t, nodes, red, 42, 7, 9)
			})
		}
	}
}

// Property form: any seed and any split point preserve bit-identity.
func TestCheckpointResumeProperty(t *testing.T) {
	f := func(seed int64, splitRaw, extraRaw, nodeRaw uint8) bool {
		nodes := []int{1, 2, 4}[nodeRaw%3]
		red := reducerCases[splitRaw%2]
		split := int(splitRaw%6) + 1
		extra := int(extraRaw%5) + 1
		checkResumeBitIdentical(t, nodes, red, seed, split, extra)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
