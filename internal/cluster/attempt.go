package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"computecovid19/internal/obs"
	"computecovid19/internal/serve"
)

// handleScan is the gateway's synchronous scan endpoint: validate,
// route, hedge, retry, and answer with the terminal JobView. The
// request root span ("gateway/request") covers everything; each replica
// attempt gets a child span whose identity travels to the replica in
// the Traceparent header, so the replica's serve/request span becomes
// its child and the whole scan renders as one trace tree.
func (g *Gateway) handleScan(w http.ResponseWriter, r *http.Request) {
	g.gate.RLock()
	if g.draining {
		g.gate.RUnlock()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "gateway draining")
		return
	}
	g.inflight.Add(1)
	g.gate.RUnlock()
	defer g.inflight.Done()

	ctx := r.Context()
	if sc, ok := obs.ParseTraceparent(r.Header.Get("Traceparent")); ok {
		ctx = obs.ContextWithRemote(ctx, sc)
	}
	ctx, sp := obs.StartCtx(ctx, "gateway/request")
	defer sp.End()
	if tp := sp.Traceparent(); tp != "" {
		w.Header().Set("Traceparent", tp)
	}

	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var req serve.ScanRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	if req.D <= 0 || req.H <= 0 || req.W <= 0 || len(req.Data) != req.D*req.H*req.W {
		httpError(w, http.StatusBadRequest, "dimensions %dx%dx%d do not match %d data values",
			req.D, req.H, req.W, len(req.Data))
		return
	}
	key := contentKey(&req)
	if sp != nil {
		sp.SetAttr("key", key[:12])
	}

	deadline := g.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()

	requestsTotal.Inc()
	start := time.Now()
	var res attemptResult
	if g.shouldShard(&req) {
		res = g.doSharded(ctx, &req)
		if res.err != nil && ctx.Err() == nil {
			// Sharding is an optimization, never a new failure mode: any
			// scatter/gather or classify-leg error falls back to the plain
			// unsharded path before the client sees anything.
			shardFallbacksTotal.Inc()
			obs.Logger(ctx).Warn("sharded scan falling back to unsharded", "err", res.err)
			res = g.do(ctx, body, key)
		}
	} else {
		res = g.do(ctx, body, key)
	}
	requestSeconds.Observe(time.Since(start).Seconds())

	switch {
	case res.err != nil:
		errorsTotal.Inc()
		obs.Logger(ctx).Error("scan failed at gateway", "err", res.err, "replica", repName(res.rep))
		if res.retryAfter > 0 {
			// Every replica pushed back — propagate the backpressure.
			w.Header().Set("Retry-After", strconv.Itoa(int(res.retryAfter.Seconds()+1)))
			httpError(w, http.StatusTooManyRequests, "all replicas busy: %v", res.err)
			return
		}
		httpError(w, http.StatusBadGateway, "scan failed after retries: %v", res.err)
	case res.status != http.StatusOK:
		// Terminal replica verdict (4xx validation, 413 oversize):
		// passed through untouched — a retry cannot change it.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(res.status)
		w.Write(res.body)
	default:
		res.view.ID = res.view.ID + "@" + res.rep.name
		if res.xcache != "" {
			w.Header().Set("X-Cache", res.xcache)
		}
		w.Header().Set("X-Replica", res.rep.name)
		writeJSON(w, http.StatusOK, res.view)
	}
}

// handleGet re-fetches a scan by gateway id ("<replica id>@<replica>"):
// the owning replica keeps the job record, the gateway only routes.
func (g *Gateway) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	local, repName, ok := cutLast(id, "@")
	if !ok {
		httpError(w, http.StatusNotFound, "unknown scan %q (gateway ids end in @replica)", id)
		return
	}
	rep := g.replicaByName(repName)
	if rep == nil {
		httpError(w, http.StatusNotFound, "scan %q: replica %q is not in the set", id, repName)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, rep.url+"/v1/scan/"+local, nil)
	if err != nil {
		httpError(w, http.StatusBadGateway, "%v", err)
		return
	}
	resp, err := rep.client.Do(req)
	if err != nil {
		httpError(w, http.StatusBadGateway, "replica %s: %v", rep.name, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		w.Write(b)
		return
	}
	var view serve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		httpError(w, http.StatusBadGateway, "replica %s: %v", rep.name, err)
		return
	}
	view.ID = view.ID + "@" + rep.name
	writeJSON(w, http.StatusOK, view)
}

// attemptResult is one routing outcome: a finished view (scans) or
// enhanced chunk (sharded enhancement), a terminal pass-through status,
// or a retryable error.
type attemptResult struct {
	view       serve.JobView
	chunk      []float32 // enhanced voxels from a chunk-range call
	status     int       // HTTP status for the client when err is nil
	body       []byte    // terminal pass-through body (status != 200)
	xcache     string
	rep        *replica
	hedged     bool
	attempts   int // routing attempts consumed (hedges not counted)
	retryAfter time.Duration
	err        error
}

// replicaCall is one unit of replica work inside the routing machinery:
// a full scan (scanReplica) or a chunk-range enhancement
// (enhanceReplica). Abstracting the call lets the sharded scatter path
// reuse the exact same retry, exclusion, and hedging behavior scans get.
type replicaCall func(ctx context.Context, rep *replica, hedged bool) attemptResult

// do runs the retry loop for one whole scan (see doCall).
func (g *Gateway) do(ctx context.Context, body []byte, key string) attemptResult {
	return g.doCall(ctx, key, g.attemptLat, func(ctx context.Context, rep *replica, hedged bool) attemptResult {
		return g.scanReplica(ctx, rep, body, hedged)
	})
}

// doCall runs the retry loop: route (affinity first, then load-aware),
// attempt with hedging, and on retryable failure try elsewhere until
// the retry budget or the deadline runs out. Replicas that failed this
// call are excluded from re-selection until every replica has been
// tried, at which point the exclusion set resets — backpressure (429)
// from the whole set is retried against it after the advertised wait.
// lat is the latency profile driving the adaptive hedge delay — scans
// and chunks keep separate profiles, so millisecond chunks never trick
// the gateway into hedging multi-second scans early (or vice versa).
func (g *Gateway) doCall(ctx context.Context, key string, lat *obs.Histogram, call replicaCall) attemptResult {
	tried := make(map[*replica]bool)
	var last attemptResult
	for attempt := 0; ; attempt++ {
		affinityKey := key
		if attempt > 0 {
			affinityKey = "" // retries want a different placement, not cache warmth
		}
		rep, affine := g.pick(affinityKey, tried)
		if rep == nil && len(tried) > 0 {
			tried = make(map[*replica]bool)
			rep, affine = g.pick("", tried)
		}
		if rep == nil {
			last.err = fmt.Errorf("no replicas available")
			last.attempts = attempt + 1
			return last
		}
		if affine {
			affinityRouted.Inc()
		}

		res := g.attemptWithHedge(ctx, rep, tried, lat, call)
		res.attempts = attempt + 1
		if res.err == nil {
			if affine && res.rep == rep && res.xcache == "hit" {
				affinityHits.Inc()
			}
			return res
		}
		last = res
		tried[rep] = true
		if res.rep != nil {
			tried[res.rep] = true
		}

		if attempt >= g.cfg.MaxRetries || ctx.Err() != nil {
			return last
		}
		retriesTotal.Inc()
		if res.retryAfter > 0 {
			select {
			case <-ctx.Done():
				return last
			case <-time.After(res.retryAfter):
			}
		}
	}
}

// attemptWithHedge runs one attempt against primary and, if the
// adaptive p95 delay elapses first, fires a second attempt at the
// next-best replica. The first successful response wins; the loser is
// cancelled through the shared attempt context. When both attempts
// fail, the primary's failure is reported (its replica drives the
// exclusion set).
func (g *Gateway) attemptWithHedge(ctx context.Context, primary *replica, exclude map[*replica]bool, lat *obs.Histogram, call replicaCall) attemptResult {
	actx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the hedge loser (or both, on deadline)

	results := make(chan attemptResult, 2)
	go func() { results <- call(actx, primary, false) }()

	var timerC <-chan time.Time
	if delay := g.hedgeDelay(lat); delay > 0 {
		timer := time.NewTimer(delay)
		defer timer.Stop()
		timerC = timer.C
	}

	outstanding := 1
	var firstFail attemptResult
	failed := 0
	for {
		select {
		case res := <-results:
			outstanding--
			if res.err == nil {
				if res.hedged {
					hedgeWinsTotal.Inc()
				}
				return res
			}
			failed++
			if failed == 1 {
				firstFail = res
			}
			if outstanding == 0 {
				return firstFail
			}
			// The other attempt is still running; wait it out.
		case <-timerC:
			timerC = nil
			ex := map[*replica]bool{primary: true}
			for r := range exclude {
				ex[r] = true
			}
			h, _ := g.pick("", ex)
			if h == nil || !h.healthy() {
				continue // nobody sane to hedge to
			}
			hedgesTotal.Inc()
			outstanding++
			go func() { results <- call(actx, h, true) }()
		case <-ctx.Done():
			return attemptResult{rep: primary, err: ctx.Err()}
		}
	}
}

// hedgeDelay is the adaptive hedge trigger: the p95 of the given
// latency profile (scan attempts or chunk attempts), floored at
// HedgeDelayMin; before enough samples exist it stays at HedgeDelayMax
// (hedging into the unknown is how retry storms start). 0 means do not
// hedge: when the p95 itself exceeds HedgeDelayMax the tail is
// saturation, not stragglers — every replica is uniformly slow, and a
// second attempt would add load exactly when the cluster has none to
// spare.
func (g *Gateway) hedgeDelay(lat *obs.Histogram) time.Duration {
	if g.cfg.DisableHedging {
		return 0
	}
	if lat.Count() < uint64(g.cfg.HedgeMinSamples) {
		return g.cfg.HedgeDelayMax
	}
	d := time.Duration(lat.Quantile(0.95) * float64(time.Second))
	if d > g.cfg.HedgeDelayMax {
		return 0
	}
	if d < g.cfg.HedgeDelayMin {
		d = g.cfg.HedgeDelayMin
	}
	return d
}

// scanReplica performs one full attempt against one replica: submit,
// and on 202 poll to the terminal state. Transport failures (unless
// caused by our own cancellation) feed the replica's ejection state
// machine, so a dead replica stops receiving traffic ahead of the next
// health probe.
func (g *Gateway) scanReplica(ctx context.Context, rep *replica, body []byte, hedged bool) attemptResult {
	res := attemptResult{rep: rep, hedged: hedged}
	rep.acquire()
	defer rep.release()

	ctx, asp := obs.StartCtx(ctx, "gateway/attempt")
	defer asp.End()
	if asp != nil {
		asp.SetAttr("replica", rep.name)
		if hedged {
			asp.SetAttr("hedged", true)
		}
	}
	start := time.Now()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+"/v1/scan", bytes.NewReader(body))
	if err != nil {
		res.err = err
		return res
	}
	req.Header.Set("Content-Type", "application/json")
	if tp := asp.Traceparent(); tp != "" {
		req.Header.Set("Traceparent", tp)
	}
	resp, err := rep.client.Do(req)
	if err != nil {
		res.err = err
		if ctx.Err() == nil {
			g.noteObservation(rep, false)
		}
		return res
	}
	res.xcache = resp.Header.Get("X-Cache")

	switch {
	case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted:
		var view serve.JobView
		err := json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			res.err = fmt.Errorf("replica %s: decode: %w", rep.name, err)
			return res
		}
		if resp.StatusCode == http.StatusAccepted {
			if view, err = g.pollReplica(ctx, rep, view.ID); err != nil {
				res.err = err
				return res
			}
		}
		res.view = view
		res.status = http.StatusOK
		rep.served.Add(1)
		d := time.Since(start)
		rep.observeLatency(d)
		g.attemptLat.Observe(d.Seconds())
		g.noteObservation(rep, true)
		return res

	case resp.StatusCode == http.StatusTooManyRequests ||
		resp.StatusCode == http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		res.retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
		res.err = fmt.Errorf("replica %s: status %d", rep.name, resp.StatusCode)
		return res

	case resp.StatusCode >= 500:
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		res.err = fmt.Errorf("replica %s: status %d", rep.name, resp.StatusCode)
		g.noteObservation(rep, false)
		return res

	default:
		// 4xx: the replica judged the request itself invalid — terminal.
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		res.status = resp.StatusCode
		res.body = b
		return res
	}
}

// pollReplica polls one replica-local job id to its terminal state.
func (g *Gateway) pollReplica(ctx context.Context, rep *replica, id string) (serve.JobView, error) {
	ticker := time.NewTicker(g.cfg.PollInterval)
	defer ticker.Stop()
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/v1/scan/"+id, nil)
		if err != nil {
			return serve.JobView{}, err
		}
		resp, err := rep.client.Do(req)
		if err != nil {
			if ctx.Err() == nil {
				g.noteObservation(rep, false)
			}
			return serve.JobView{}, fmt.Errorf("replica %s: poll: %w", rep.name, err)
		}
		var view serve.JobView
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return serve.JobView{}, fmt.Errorf("replica %s: poll status %d", rep.name, resp.StatusCode)
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			return serve.JobView{}, fmt.Errorf("replica %s: poll decode: %w", rep.name, err)
		}
		if view.State == serve.StateDone || view.State == serve.StateFailed {
			return view, nil
		}
		select {
		case <-ctx.Done():
			return serve.JobView{}, ctx.Err()
		case <-ticker.C:
		}
	}
}

// parseRetryAfter reads a Retry-After header's delay-seconds form.
func parseRetryAfter(s string) time.Duration {
	if s == "" {
		return 0
	}
	secs, err := strconv.Atoi(s)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// cutLast splits s at the last occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

// repName renders a possibly-nil replica for logging.
func repName(r *replica) string {
	if r == nil {
		return "<none>"
	}
	return r.name
}
