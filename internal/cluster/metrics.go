package cluster

import "computecovid19/internal/obs"

// Cluster data-plane telemetry. Every routing, hedging, retry, and
// health decision reports here; the gateway's /metrics endpoint exposes
// the registry and ccbench folds the counters into BENCH_cluster.json.
// Per-replica inflight is a labelled gauge registered per replica (see
// newReplica).
var (
	requestsTotal  = obs.GetCounter("cluster_requests_total")
	errorsTotal    = obs.GetCounter("cluster_errors_total")
	retriesTotal   = obs.GetCounter("cluster_retries_total")
	hedgesTotal    = obs.GetCounter("cluster_hedges_total")
	hedgeWinsTotal = obs.GetCounter("cluster_hedge_wins_total")
	ejectionsTotal = obs.GetCounter("cluster_ejections_total")
	readmitsTotal  = obs.GetCounter("cluster_readmissions_total")
	reloadsTotal   = obs.GetCounter("cluster_replica_reloads_total")

	// Affinity accounting: how often the consistent-hash owner took the
	// request, and how often that landed on a warm replica cache
	// (measured end-to-end off the replica's X-Cache header).
	affinityRouted = obs.GetCounter("cluster_affinity_routed_total")
	affinityHits   = obs.GetCounter("cluster_affinity_cache_hits_total")

	// Gateway-side end-to-end scan latency (admission to terminal view).
	requestSeconds = obs.GetHistogram("cluster_request_seconds", nil)

	// Scatter/gather sharding: sharded scans, chunks completed, chunk
	// re-dispatches (retries + hedges beyond the first attempt), and
	// whole-scan fallbacks to the unsharded path. The histograms time one
	// chunk round trip and the full scatter→gather window.
	shardScansTotal      = obs.GetCounter("cluster_shard_scans_total")
	shardChunksTotal     = obs.GetCounter("cluster_shard_chunks_total")
	shardRedispatchTotal = obs.GetCounter("cluster_shard_redispatch_total")
	shardFallbacksTotal  = obs.GetCounter("cluster_shard_fallbacks_total")
	shardChunkSeconds    = obs.GetHistogram("cluster_shard_chunk_seconds", nil)
	shardScatterSeconds  = obs.GetHistogram("cluster_shard_scatter_seconds", nil)
)
