package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"computecovid19/internal/obs"
	"computecovid19/internal/serve"
)

// This file is the gateway's scatter/gather slice sharding — the
// paper's multi-node decomposition (DDnet enhancement is per-slice, so
// a scan's slices can be enhanced anywhere) applied inside the serving
// data plane. A sharded scan runs in two legs:
//
//  1. scatter: the scan's slices are split into contiguous chunks
//     (planChunks; the size comes from the workflow-predicted
//     throughput model when one is configured), each chunk is sent to a
//     healthy replica as a POST /v1/enhance call through the same
//     routing/retry/hedging machinery scans use (doCall), and the
//     enhanced chunks are gathered into one volume in slice order —
//     each chunk writes a disjoint range, so the gather buffer needs no
//     locks;
//  2. classify: the reassembled volume is submitted as a pre-enhanced
//     /v1/scan to one replica, which skips its enhancement stage and
//     runs segment+classify.
//
// Chunk failures re-dispatch to surviving replicas (bounded by
// MaxRetries per chunk) and stragglers are hedged off the chunk-latency
// p95, so a replica dying mid-scan costs one chunk of work, not the
// scan. If a chunk exhausts its budget anyway, handleScan falls back to
// the whole unsharded path — sharding never adds a client-visible
// failure mode. Per-slice forwards are independent and JSON float32
// round-trips are exact, so the sharded result is bit-identical to the
// single-replica one (regression-tested across chunk sizes).

// chunkRange is one scatter unit: slices [z0, z1) of the scan.
type chunkRange struct {
	z0, z1 int
}

// shouldShard gates the sharded path: sharding must be enabled, the
// scan deep enough to split, not already enhanced by the client, and
// there must be at least two healthy replicas to scatter across.
func (g *Gateway) shouldShard(req *serve.ScanRequest) bool {
	if g.cfg.ShardSlices <= 0 || req.D < g.cfg.ShardSlices || req.PreEnhanced {
		return false
	}
	return g.healthyCount() >= 2
}

func (g *Gateway) healthyCount() int {
	n := 0
	for _, r := range g.snapshotReplicas() {
		if r.healthy() {
			n++
		}
	}
	return n
}

// planChunks splits d slices into contiguous chunks. An explicit
// ShardChunkSlices wins; otherwise the ShardModel picks the
// makespan-optimal size from measured per-slice cost and per-chunk
// overhead, and with no model the fallback is an even split of two
// chunks per healthy replica — small enough to spread re-dispatch
// granularity, large enough to amortize the HTTP round trip.
func (g *Gateway) planChunks(d, healthy int) []chunkRange {
	size := g.cfg.ShardChunkSlices
	if size <= 0 {
		if m := g.cfg.ShardModel; m.Replica.EnhanceSlice > 0 {
			m.Replicas = healthy
			size = m.ShardChunkSlices(d)
		} else {
			size = (d + 2*healthy - 1) / (2 * healthy)
		}
	}
	if size < 1 {
		size = 1
	}
	if size > d {
		size = d
	}
	chunks := make([]chunkRange, 0, (d+size-1)/size)
	for z := 0; z < d; z += size {
		z1 := z + size
		if z1 > d {
			z1 = d
		}
		chunks = append(chunks, chunkRange{z0: z, z1: z1})
	}
	return chunks
}

// doSharded runs one scan through the sharded path: scatter/gather the
// enhancement, then submit the reassembled volume pre-enhanced for
// segment+classify through the ordinary scan machinery (so the classify
// leg gets the same retry/hedge protection, and affinity keys on the
// enhanced content).
func (g *Gateway) doSharded(ctx context.Context, req *serve.ScanRequest) attemptResult {
	enhanced, err := g.scatterEnhance(ctx, req)
	if err != nil {
		return attemptResult{err: err}
	}
	creq := serve.ScanRequest{
		D: req.D, H: req.H, W: req.W,
		Data:        enhanced,
		DeadlineMS:  req.DeadlineMS,
		PreEnhanced: true,
	}
	body, err := json.Marshal(&creq)
	if err != nil {
		return attemptResult{err: err}
	}
	return g.do(ctx, body, contentKey(&creq))
}

// scatterEnhance fans the scan's slices out across healthy replicas as
// chunk-range enhance calls and gathers the enhanced volume in slice
// order. The fan-out is a bounded worker pool (about two outstanding
// chunks per healthy replica — enough to keep every replica busy while
// letting the load-aware router balance), each worker writing its
// chunk's disjoint range of the shared gather buffer. The first chunk
// to exhaust its retry budget cancels the rest.
func (g *Gateway) scatterEnhance(ctx context.Context, req *serve.ScanRequest) ([]float32, error) {
	ctx, sp := obs.StartCtx(ctx, "gateway/scatter")
	defer sp.End()

	healthy := g.healthyCount()
	if healthy < 1 {
		healthy = 1
	}
	chunks := g.planChunks(req.D, healthy)
	if sp != nil {
		sp.SetAttr("slices", req.D)
		sp.SetAttr("chunks", len(chunks))
	}
	shardScansTotal.Inc()
	start := time.Now()
	defer func() { shardScatterSeconds.Observe(time.Since(start).Seconds()) }()

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	hw := req.H * req.W
	out := make([]float32, req.D*hw)
	workers := 2 * healthy
	if workers > len(chunks) {
		workers = len(chunks)
	}
	next := make(chan chunkRange)
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		fail    error
	)
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for c := range next {
				data, attempts, err := g.enhanceChunk(cctx, req, c)
				if attempts > 1 {
					shardRedispatchTotal.Add(uint64(attempts - 1))
				}
				if err != nil {
					errOnce.Do(func() {
						fail = fmt.Errorf("chunk [%d,%d): %w", c.z0, c.z1, err)
						cancel()
					})
					continue // keep draining next so the feeder never blocks
				}
				copy(out[c.z0*hw:c.z1*hw], data)
				shardChunksTotal.Inc()
			}
		}()
	}
	for _, c := range chunks {
		next <- c
	}
	close(next)
	wg.Wait()
	if fail != nil {
		return nil, fail
	}
	return out, nil
}

// enhanceChunk routes one chunk through the shared retry/hedge
// machinery and returns the enhanced voxels plus the number of routing
// attempts consumed (re-dispatch accounting).
func (g *Gateway) enhanceChunk(ctx context.Context, req *serve.ScanRequest, c chunkRange) ([]float32, int, error) {
	hw := req.H * req.W
	body, err := json.Marshal(&serve.ScanRequest{
		D: c.z1 - c.z0, H: req.H, W: req.W,
		Data: req.Data[c.z0*hw : c.z1*hw],
	})
	if err != nil {
		return nil, 1, err
	}
	res := g.doCall(ctx, "", g.chunkLat, func(ctx context.Context, rep *replica, hedged bool) attemptResult {
		return g.enhanceReplica(ctx, rep, body, c, hedged)
	})
	if res.err != nil {
		return nil, res.attempts, res.err
	}
	if res.status != http.StatusOK {
		return nil, res.attempts, fmt.Errorf("replica %s rejected chunk: status %d: %s",
			repName(res.rep), res.status, res.body)
	}
	return res.chunk, res.attempts, nil
}

// enhanceReplica performs one chunk-range enhance attempt against one
// replica — the chunk-sized sibling of scanReplica. Transport failures
// feed the same ejection state machine, backpressure (429/503) surfaces
// as a retryable error with the advertised wait, and latency feeds the
// chunk hedge profile.
func (g *Gateway) enhanceReplica(ctx context.Context, rep *replica, body []byte, c chunkRange, hedged bool) attemptResult {
	res := attemptResult{rep: rep, hedged: hedged}
	rep.acquire()
	defer rep.release()

	ctx, asp := obs.StartCtx(ctx, "gateway/chunk")
	defer asp.End()
	if asp != nil {
		asp.SetAttr("replica", rep.name)
		asp.SetAttr("z0", c.z0)
		asp.SetAttr("z1", c.z1)
		if hedged {
			asp.SetAttr("hedged", true)
		}
	}
	start := time.Now()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+"/v1/enhance", bytes.NewReader(body))
	if err != nil {
		res.err = err
		return res
	}
	req.Header.Set("Content-Type", "application/json")
	if tp := asp.Traceparent(); tp != "" {
		req.Header.Set("Traceparent", tp)
	}
	resp, err := rep.client.Do(req)
	if err != nil {
		res.err = err
		if ctx.Err() == nil {
			g.noteObservation(rep, false)
		}
		return res
	}

	switch {
	case resp.StatusCode == http.StatusOK:
		var er serve.EnhanceResponse
		err := json.NewDecoder(resp.Body).Decode(&er)
		resp.Body.Close()
		if err != nil {
			res.err = fmt.Errorf("replica %s: chunk decode: %w", rep.name, err)
			return res
		}
		if er.D != c.z1-c.z0 || len(er.Data) != er.D*er.H*er.W {
			res.err = fmt.Errorf("replica %s: chunk shape %dx%dx%d with %d values, want %d slices",
				rep.name, er.D, er.H, er.W, len(er.Data), c.z1-c.z0)
			return res
		}
		res.chunk = er.Data
		res.status = http.StatusOK
		rep.served.Add(1)
		d := time.Since(start)
		rep.observeLatency(d)
		g.chunkLat.Observe(d.Seconds())
		shardChunkSeconds.Observe(d.Seconds())
		g.noteObservation(rep, true)
		return res

	case resp.StatusCode == http.StatusTooManyRequests ||
		resp.StatusCode == http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		res.retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
		res.err = fmt.Errorf("replica %s: chunk status %d", rep.name, resp.StatusCode)
		return res

	case resp.StatusCode >= 500:
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		res.err = fmt.Errorf("replica %s: chunk status %d", rep.name, resp.StatusCode)
		g.noteObservation(rep, false)
		return res

	default:
		// 4xx: the replica judged the chunk itself invalid — terminal for
		// this chunk; the caller surfaces it and the scan falls back.
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		res.status = resp.StatusCode
		res.body = b
		return res
	}
}
