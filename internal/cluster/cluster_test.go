package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"computecovid19/internal/core"
	"computecovid19/internal/serve"
	"computecovid19/internal/volume"
)

// stubProcess is a pipeline stand-in: sleep, then diagnose.
func stubProcess(d time.Duration) func(*volume.Volume) core.Result {
	return func(*volume.Volume) core.Result {
		if d > 0 {
			time.Sleep(d)
		}
		return core.Result{Probability: 0.5}
	}
}

// startReplica runs a real serve.Server (stubbed pipeline) on an
// httptest listener and registers cleanup.
func startReplica(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = -1
	}
	if cfg.Process == nil && cfg.Pipeline == nil {
		cfg.Process = stubProcess(time.Millisecond)
	}
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
		ts.Close()
	})
	return s, ts
}

// startGateway builds, starts, and cleans up a Gateway plus its HTTP
// front end.
func startGateway(t *testing.T, cfg Config) (*Gateway, *httptest.Server) {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		g.Drain(ctx)
		ts.Close()
	})
	return g, ts
}

// uniqueVolumes builds n distinct 2×4×4 volumes.
func uniqueVolumes(n int) []*volume.Volume {
	vols := make([]*volume.Volume, n)
	for i := range vols {
		v := volume.New(2, 4, 4)
		for j := range v.Data {
			v.Data[j] = float32(i*len(v.Data) + j)
		}
		vols[i] = v
	}
	return vols
}

func scanBody(t *testing.T, v *volume.Volume) []byte {
	t.Helper()
	b, err := json.Marshal(serve.ScanRequest{D: v.D, H: v.H, W: v.W, Data: v.Data})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// postScan submits one scan to the gateway and decodes the response.
func postScan(t *testing.T, url string, body []byte) (*http.Response, serve.JobView) {
	t.Helper()
	resp, err := http.Post(url+"/v1/scan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view serve.JobView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
	}
	return resp, view
}

func TestRingAffinityStableAndFailsOver(t *testing.T) {
	reps := []*replica{
		newReplica("r0", "http://a"),
		newReplica("r1", "http://b"),
		newReplica("r2", "http://c"),
	}
	ring := buildRing(reps, 64)
	all := func(*replica) bool { return true }

	owner := ringOwner(ring, "some-content-key", all)
	if owner == nil {
		t.Fatal("no owner on a populated ring")
	}
	for i := 0; i < 10; i++ {
		if got := ringOwner(ring, "some-content-key", all); got != owner {
			t.Fatalf("owner flapped: %s then %s", owner.name, got.name)
		}
	}
	// With the owner ineligible the key fails over — deterministically —
	// and returns home once the owner is eligible again.
	fallback := ringOwner(ring, "some-content-key", func(r *replica) bool { return r != owner })
	if fallback == nil || fallback == owner {
		t.Fatalf("failover owner = %v", fallback)
	}
	if got := ringOwner(ring, "some-content-key", func(r *replica) bool { return r != owner }); got != fallback {
		t.Fatalf("failover owner flapped: %s then %s", fallback.name, got.name)
	}
	if got := ringOwner(ring, "some-content-key", all); got != owner {
		t.Fatalf("key did not return to its owner: %s", got.name)
	}
	if ringOwner(ring, "some-content-key", func(*replica) bool { return false }) != nil {
		t.Fatal("owner found with nothing eligible")
	}

	// Membership change only remaps the removed replica's keys.
	smaller := buildRing(reps[:2], 64)
	moved := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		was, is := ringOwner(ring, key, all), ringOwner(smaller, key, all)
		if was != reps[2] && was != is {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys owned by surviving replicas moved on membership change", moved)
	}
}

func TestPickPrefersLessLoadedReplica(t *testing.T) {
	g, err := New(Config{Replicas: []string{"http://a", "http://b"}})
	if err != nil {
		t.Fatal(err)
	}
	reps := g.snapshotReplicas()
	// Replica 0 is drowning; p2c must send load-aware picks to the other.
	reps[0].inflight.Store(100)
	reps[0].observeLatency(time.Second)
	reps[1].observeLatency(10 * time.Millisecond)
	for i := 0; i < 20; i++ {
		rep, affine := g.pick("", nil)
		if affine {
			t.Fatal("keyless pick reported affinity")
		}
		if rep != reps[1] {
			t.Fatalf("pick %d chose the loaded replica", i)
		}
	}
	// Exclusion forces the loaded one.
	if rep, _ := g.pick("", map[*replica]bool{reps[1]: true}); rep != reps[0] {
		t.Fatal("exclusion not honored")
	}
	// Everything excluded: nothing to pick.
	if rep, _ := g.pick("", map[*replica]bool{reps[0]: true, reps[1]: true}); rep != nil {
		t.Fatal("picked an excluded replica")
	}
}

func TestPickFallsBackToEjectedWhenNoneHealthy(t *testing.T) {
	g, err := New(Config{Replicas: []string{"http://a"}})
	if err != nil {
		t.Fatal(err)
	}
	rep := g.snapshotReplicas()[0]
	rep.state.Store(int32(stateEjected))
	if got, _ := g.pick("k", nil); got != rep {
		t.Fatal("an all-ejected set must still route (attempts double as probes)")
	}
}

func TestHealthStateMachine(t *testing.T) {
	r := newReplica("r0", "http://a")
	const ejectAfter, readmitAfter = 3, 2

	for i := 0; i < ejectAfter-1; i++ {
		if ej, _ := r.noteProbe(false, ejectAfter, readmitAfter); ej {
			t.Fatalf("ejected after %d failures, want %d", i+1, ejectAfter)
		}
	}
	// A success clears the streak.
	r.noteProbe(true, ejectAfter, readmitAfter)
	for i := 0; i < ejectAfter-1; i++ {
		r.noteProbe(false, ejectAfter, readmitAfter)
	}
	if !r.healthy() {
		t.Fatal("ejected below the failure threshold")
	}
	if ej, _ := r.noteProbe(false, ejectAfter, readmitAfter); !ej || r.healthy() {
		t.Fatal("not ejected at the failure threshold")
	}
	// Half-open: one success is not enough, a failure resets the streak.
	if _, re := r.noteProbe(true, ejectAfter, readmitAfter); re {
		t.Fatal("readmitted after one success")
	}
	r.noteProbe(false, ejectAfter, readmitAfter)
	r.noteProbe(true, ejectAfter, readmitAfter)
	if r.healthy() {
		t.Fatal("readmitted despite interrupted success streak")
	}
	if _, re := r.noteProbe(true, ejectAfter, readmitAfter); !re || !r.healthy() {
		t.Fatal("not readmitted after the success streak")
	}
}

func TestSetReplicasKeepsSurvivorIdentity(t *testing.T) {
	g, err := New(Config{Replicas: []string{"http://a", "http://b"}})
	if err != nil {
		t.Fatal(err)
	}
	keep := g.replicaByName("r0")
	keep.served.Add(7)

	if err := g.SetReplicas([]string{keep.url, "http://c"}); err != nil {
		t.Fatal(err)
	}
	if got := g.replicaByName("r0"); got != keep || got.served.Load() != 7 {
		t.Fatal("surviving replica lost its identity on reload")
	}
	names := map[string]bool{}
	for _, rs := range g.Snapshot() {
		names[rs.Name] = true
	}
	if !names["r0"] || names["r1"] || len(names) != 2 {
		t.Fatalf("replica set after reload: %v", names)
	}

	if err := g.SetReplicas(nil); err == nil {
		t.Fatal("empty reload accepted")
	}
	if err := g.SetReplicas([]string{"http://x", "http://x/"}); err == nil {
		t.Fatal("duplicate URLs accepted")
	}
}

// TestGatewayEndToEnd drives a 2-replica gateway through the whole
// synchronous surface: submit → 200 terminal view with @replica id,
// re-fetch by gateway id, cache-affinity on resubmission, and the ops
// endpoints.
func TestGatewayEndToEnd(t *testing.T) {
	_, r0 := startReplica(t, serve.Config{CacheSize: 8})
	_, r1 := startReplica(t, serve.Config{CacheSize: 8})
	g, gw := startGateway(t, Config{
		Replicas:       []string{r0.URL, r1.URL},
		DisableHedging: true,
	})

	affinityBefore := affinityHits.Value()
	body := scanBody(t, uniqueVolumes(1)[0])
	resp, view := postScan(t, gw.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if view.State != serve.StateDone {
		t.Fatalf("gateway answered non-terminal state %q", view.State)
	}
	local, repName, ok := cutLast(view.ID, "@")
	if !ok || local == "" || g.replicaByName(repName) == nil {
		t.Fatalf("gateway id %q does not name a replica", view.ID)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first submission X-Cache = %q, want miss", got)
	}

	// Re-fetch through the gateway by the composite id.
	resp2, err := http.Get(gw.URL + "/v1/scan/" + view.ID)
	if err != nil {
		t.Fatal(err)
	}
	var again serve.JobView
	if err := json.NewDecoder(resp2.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || again.ID != view.ID || again.State != serve.StateDone {
		t.Fatalf("re-fetch: status %d view %+v", resp2.StatusCode, again)
	}
	if resp3, err := http.Get(gw.URL + "/v1/scan/no-such-id"); err != nil {
		t.Fatal(err)
	} else {
		resp3.Body.Close()
		if resp3.StatusCode != http.StatusNotFound {
			t.Fatalf("bogus id status %d", resp3.StatusCode)
		}
	}

	// Same content again: affinity routes it to the same replica, whose
	// cache answers — and the gateway measures the hit.
	resp4, view4 := postScan(t, gw.URL, body)
	if resp4.StatusCode != http.StatusOK || view4.State != serve.StateDone {
		t.Fatalf("resubmit: status %d view %+v", resp4.StatusCode, view4)
	}
	if got := resp4.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("resubmission X-Cache = %q, want hit", got)
	}
	if !strings.HasSuffix(view4.ID, "@"+repName) {
		t.Fatalf("resubmission landed on %q, want affinity to %q", view4.ID, repName)
	}
	if affinityHits.Value() != affinityBefore+1 {
		t.Fatal("affinity cache hit not counted")
	}

	// Ops surface.
	var statuses []ReplicaStatus
	resp5, err := http.Get(gw.URL + "/v1/replicas")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp5.Body).Decode(&statuses); err != nil {
		t.Fatal(err)
	}
	resp5.Body.Close()
	if len(statuses) != 2 {
		t.Fatalf("%d replica statuses, want 2", len(statuses))
	}
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(gw.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
	}
	mresp, err := http.Get(gw.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"cluster_requests_total", "cluster_inflight{replica="} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// Bad submissions fail fast at the gateway.
	respBad, _ := postScan(t, gw.URL, []byte(`{"d":1,"h":2,"w":2,"data":[1]}`))
	if respBad.StatusCode != http.StatusBadRequest {
		t.Fatalf("dimension mismatch status %d", respBad.StatusCode)
	}
}

// fakeReplica serves the minimal replica protocol with a scripted
// submit handler; /readyz always answers ok.
func fakeReplica(t *testing.T, submit http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scan", submit)
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func doneView(id string) serve.JobView {
	return serve.JobView{ID: id, State: serve.StateDone}
}

func TestRetryAfterUpstreamFailure(t *testing.T) {
	retriesBefore := retriesTotal.Value()
	var calls atomic.Int64
	// First two submissions blow up server-side; the third succeeds.
	flaky := fakeReplica(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, doneView("job-1"))
	})
	_, gw := startGateway(t, Config{
		Replicas:       []string{flaky.URL},
		DisableHedging: true,
		MaxRetries:     3,
	})
	resp, view := postScan(t, gw.URL, scanBody(t, uniqueVolumes(1)[0]))
	if resp.StatusCode != http.StatusOK || view.State != serve.StateDone {
		t.Fatalf("status %d view %+v", resp.StatusCode, view)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("replica saw %d attempts, want 3", got)
	}
	if retriesTotal.Value() != retriesBefore+2 {
		t.Fatalf("counted %d retries, want 2", retriesTotal.Value()-retriesBefore)
	}
}

func TestRetryBudgetExhaustionIs502(t *testing.T) {
	always := fakeReplica(t, func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	_, gw := startGateway(t, Config{
		Replicas:       []string{always.URL},
		DisableHedging: true,
		MaxRetries:     2,
		EjectAfter:     100, // keep it routable; this test is about the budget
	})
	resp, _ := postScan(t, gw.URL, scanBody(t, uniqueVolumes(1)[0]))
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
}

func TestRetryHonorsRetryAfterBackpressure(t *testing.T) {
	var calls atomic.Int64
	var firstRetryGap atomic.Int64
	var lastReject atomic.Int64
	busy := fakeReplica(t, func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) == 1 {
			lastReject.Store(time.Now().UnixNano())
			w.Header().Set("Retry-After", "1")
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		firstRetryGap.Store(time.Now().UnixNano() - lastReject.Load())
		writeJSON(w, http.StatusOK, doneView("job-1"))
	})
	_, gw := startGateway(t, Config{
		Replicas:       []string{busy.URL},
		DisableHedging: true,
		MaxRetries:     2,
	})
	resp, _ := postScan(t, gw.URL, scanBody(t, uniqueVolumes(1)[0]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if gap := time.Duration(firstRetryGap.Load()); gap < time.Second {
		t.Fatalf("retry after %v, want the advertised 1s honored", gap)
	}
}

func TestTerminal4xxPassesThroughWithoutRetry(t *testing.T) {
	var calls atomic.Int64
	judgy := fakeReplica(t, func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		httpError(w, http.StatusRequestEntityTooLarge, "volume too large")
	})
	_, gw := startGateway(t, Config{
		Replicas:       []string{judgy.URL},
		DisableHedging: true,
	})
	resp, _ := postScan(t, gw.URL, scanBody(t, uniqueVolumes(1)[0]))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want the replica's 413", resp.StatusCode)
	}
	if calls.Load() != 1 {
		t.Fatalf("terminal 4xx was retried (%d attempts)", calls.Load())
	}
}

func TestDeadlineBoundsRetries(t *testing.T) {
	stuck := fakeReplica(t, func(w http.ResponseWriter, r *http.Request) {
		// Drain the body: the server only notices a vanished client (and
		// cancels our context) once nothing is left to read.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	})
	_, gw := startGateway(t, Config{
		Replicas:        []string{stuck.URL},
		DisableHedging:  true,
		MaxRetries:      100,
		DefaultDeadline: 150 * time.Millisecond,
	})
	start := time.Now()
	resp, _ := postScan(t, gw.URL, scanBody(t, uniqueVolumes(1)[0]))
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not bound the retry loop (%v)", elapsed)
	}
}

// TestHedgeWinsAgainstSlowReplica pins the hedging path: with one
// replica answering instantly and one stalling far past the hedge
// delay, scans routed to the slow one must be won by a hedge to the
// fast one — first response wins, client sees only fast answers.
func TestHedgeWinsAgainstSlowReplica(t *testing.T) {
	const stall = 400 * time.Millisecond
	var slowCalls, fastCalls atomic.Int64
	slow := fakeReplica(t, func(w http.ResponseWriter, r *http.Request) {
		slowCalls.Add(1)
		io.Copy(io.Discard, r.Body) // unread body defeats disconnect detection
		select {
		case <-time.After(stall):
		case <-r.Context().Done(): // hedge won; we were cancelled
			return
		}
		writeJSON(w, http.StatusOK, doneView("slow-job"))
	})
	fast := fakeReplica(t, func(w http.ResponseWriter, _ *http.Request) {
		fastCalls.Add(1)
		writeJSON(w, http.StatusOK, doneView("fast-job"))
	})

	winsBefore, hedgesBefore := hedgeWinsTotal.Value(), hedgesTotal.Value()
	_, gw := startGateway(t, Config{
		Replicas: []string{slow.URL, fast.URL},
		// Fixed 20 ms hedge trigger: min == max pins the adaptive clamp.
		HedgeDelayMin: 20 * time.Millisecond,
		HedgeDelayMax: 20 * time.Millisecond,
	})

	vols := uniqueVolumes(8)
	for i, v := range vols {
		start := time.Now()
		resp, view := postScan(t, gw.URL, scanBody(t, v))
		if resp.StatusCode != http.StatusOK || view.State != serve.StateDone {
			t.Fatalf("scan %d: status %d view %+v", i, resp.StatusCode, view)
		}
		if elapsed := time.Since(start); elapsed >= stall {
			t.Fatalf("scan %d took %v — a hedge should have beaten the %v stall", i, elapsed, stall)
		}
		if slowCalls.Load() > 0 && hedgeWinsTotal.Value() > winsBefore {
			break // the path under test has fired
		}
	}
	if slowCalls.Load() == 0 {
		t.Skip("routing never chose the slow replica (seed-dependent); nothing hedged")
	}
	if hedgesTotal.Value() == hedgesBefore || hedgeWinsTotal.Value() == winsBefore {
		t.Fatalf("slow replica saw %d scans but hedges=%d wins=%d",
			slowCalls.Load(), hedgesTotal.Value()-hedgesBefore, hedgeWinsTotal.Value()-winsBefore)
	}
}

// TestHedgeDelayAdaptive pins the trigger policy: maximum delay while
// cold, the observed p95 (floored) once warmed up, and a full pause
// when the p95 blows past the cap — a uniformly slow cluster is
// saturated and hedges would feed the overload.
func TestHedgeDelayAdaptive(t *testing.T) {
	g, err := New(Config{
		Replicas:        []string{"http://a"},
		HedgeDelayMin:   5 * time.Millisecond,
		HedgeDelayMax:   100 * time.Millisecond,
		HedgeMinSamples: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.hedgeDelay(g.attemptLat); got != 100*time.Millisecond {
		t.Fatalf("cold hedge delay %v, want the %v maximum", got, 100*time.Millisecond)
	}
	for i := 0; i < 16; i++ {
		g.attemptLat.Observe(0.001)
	}
	if got := g.hedgeDelay(g.attemptLat); got < 5*time.Millisecond || got > 100*time.Millisecond {
		t.Fatalf("warm hedge delay %v outside [5ms, 100ms]", got)
	}
	for i := 0; i < 200; i++ {
		g.attemptLat.Observe(2.0)
	}
	if got := g.hedgeDelay(g.attemptLat); got != 0 {
		t.Fatalf("saturated hedge delay %v, want 0 (paused)", got)
	}

	off, err := New(Config{Replicas: []string{"http://a"}, DisableHedging: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := off.hedgeDelay(off.attemptLat); got != 0 {
		t.Fatalf("disabled hedging delay %v, want 0", got)
	}
}

func TestGatewayDrainStopsAdmission(t *testing.T) {
	_, r0 := startReplica(t, serve.Config{})
	g, gw := startGateway(t, Config{Replicas: []string{r0.URL}, DisableHedging: true})

	if resp, _ := http.Get(gw.URL + "/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := g.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(gw.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", resp.StatusCode)
	}
	resp2, _ := postScan(t, gw.URL, scanBody(t, uniqueVolumes(1)[0]))
	if resp2.StatusCode != http.StatusServiceUnavailable || resp2.Header.Get("Retry-After") == "" {
		t.Fatalf("draining submit: status %d retry-after %q",
			resp2.StatusCode, resp2.Header.Get("Retry-After"))
	}
}

// TestHealthLoopEjectsAndReadmits exercises the active prober: a
// replica flipping its readyz to 503 is ejected and readyz reports the
// cluster unready; flipping back readmits it.
func TestHealthLoopEjectsAndReadmits(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !ready.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	rep := httptest.NewServer(mux)
	t.Cleanup(rep.Close)

	g, gw := startGateway(t, Config{
		Replicas:       []string{rep.URL},
		HealthInterval: 10 * time.Millisecond,
		EjectAfter:     2,
		ReadmitAfter:   2,
	})

	waitState := func(want string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if g.Snapshot()[0].State == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica never became %s: %+v", want, g.Snapshot()[0])
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	waitState("healthy")
	ready.Store(false)
	waitState("ejected")
	resp, err := http.Get(gw.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("gateway readyz with zero healthy replicas: %d, want 503", resp.StatusCode)
	}
	ready.Store(true)
	waitState("healthy")
}
