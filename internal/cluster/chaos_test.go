package cluster

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"computecovid19/internal/serve"
	"computecovid19/internal/volume"
)

// chaosReplica is a ccserve instance on a real loopback listener that
// can be killed abruptly and restarted on the same address — the
// restartable unit the chaos test yanks out from under the gateway.
type chaosReplica struct {
	addr string
	s    *serve.Server
	srv  *http.Server
	errc chan error
}

func startChaosReplica(t *testing.T, addr string) *chaosReplica {
	t.Helper()
	return startChaosReplicaCfg(t, addr, serve.Config{
		Workers: 2, QueueDepth: 64, CacheSize: -1,
		Process: stubProcess(5 * time.Millisecond),
	})
}

func startChaosReplicaCfg(t *testing.T, addr string, cfg serve.Config) *chaosReplica {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()

	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	// A just-killed replica's port can linger briefly; retry the bind.
	for deadline := time.Now().Add(5 * time.Second); ; {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("listen %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	r := &chaosReplica{
		addr: ln.Addr().String(),
		s:    s,
		srv:  &http.Server{Handler: s.Handler()},
		errc: make(chan error, 1),
	}
	go func() { r.errc <- r.srv.Serve(ln) }()
	return r
}

// kill closes the listener and every open connection — a crash, not a
// drain. In-flight scans at this replica die with it.
func (r *chaosReplica) kill(t *testing.T) {
	t.Helper()
	r.srv.Close()
	<-r.errc
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	r.s.Drain(ctx) // stop the orphaned worker pool
}

func (r *chaosReplica) url() string { return "http://" + r.addr }

// TestChaosReplicaKillMidLoad is the chaos acceptance test: three
// replicas behind the gateway, one killed abruptly mid-load and later
// restarted on the same address. The client side must see zero failed
// requests — the gateway absorbs the crash with retries/hedges and the
// health loop ejects the corpse — and the restarted replica must be
// readmitted and take traffic again.
func TestChaosReplicaKillMidLoad(t *testing.T) {
	reps := []*chaosReplica{
		startChaosReplica(t, ""),
		startChaosReplica(t, ""),
		startChaosReplica(t, ""),
	}
	urls := []string{reps[0].url(), reps[1].url(), reps[2].url()}
	ejectionsBefore := ejectionsTotal.Value()
	readmitsBefore := readmitsTotal.Value()

	g, err := New(Config{
		Replicas:       urls,
		HealthInterval: 20 * time.Millisecond,
		HealthTimeout:  500 * time.Millisecond,
		EjectAfter:     2,
		ReadmitAfter:   2,
		MaxRetries:     4,
		HedgeDelayMax:  250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	gwSrv := startChaosGateway(t, g)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := g.Drain(ctx); err != nil {
			t.Errorf("gateway drain: %v", err)
		}
		for _, r := range reps {
			r.s.Drain(ctx)
			r.srv.Close()
		}
	}()

	var victim ReplicaStatus
	for _, rs := range g.Snapshot() {
		if rs.URL == reps[1].url() {
			victim = rs
		}
	}
	if victim.Name == "" {
		t.Fatal("victim replica missing from the snapshot")
	}
	sumServed := func() uint64 {
		var n uint64
		for _, rs := range g.Snapshot() {
			n += rs.Served
		}
		return n
	}
	waitServed := func(min uint64) {
		t.Helper()
		for deadline := time.Now().Add(60 * time.Second); sumServed() < min; {
			if time.Now().After(deadline) {
				t.Fatalf("cluster stuck at %d served scans, want %d", sumServed(), min)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitVictimState := func(want string) {
		t.Helper()
		for deadline := time.Now().Add(15 * time.Second); ; {
			if st := g.replicaByName(victim.Name).status(); st.State == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %s never became %s: %+v",
					victim.Name, want, g.replicaByName(victim.Name).status())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	const requests = 400
	loadDone := make(chan serve.LoadReport, 1)
	go func() {
		rep, err := serve.RunLoadURLs([]string{gwSrv}, serve.LoadOptions{
			Requests:    requests,
			Concurrency: 8,
			Volumes:     chaosVolumes(4),
			Perturb:     true,
			Seed:        7,
		})
		if err != nil {
			t.Errorf("load: %v", err)
		}
		loadDone <- rep
	}()

	// Let traffic reach steady state, then yank a replica out.
	waitServed(50)
	reps[1].kill(t)
	waitVictimState("ejected")

	// Traffic keeps flowing on the survivors while the victim is down.
	killedAt := sumServed()
	waitServed(killedAt + 100)

	// Restart on the same address: the half-open prober readmits it.
	reps[1] = startChaosReplica(t, reps[1].addr)
	waitVictimState("healthy")

	rep := <-loadDone
	if rep.Failed != 0 {
		t.Fatalf("client saw %d failed scans through the crash, want 0 (report %+v)", rep.Failed, rep)
	}
	if rep.Completed != requests {
		t.Fatalf("completed %d of %d scans", rep.Completed, requests)
	}
	if got := ejectionsTotal.Value() - ejectionsBefore; got == 0 {
		t.Fatal("the crash never ejected the replica")
	}
	if got := readmitsTotal.Value() - readmitsBefore; got == 0 {
		t.Fatal("the restart never readmitted the replica")
	}

	// The readmitted replica takes traffic again.
	// Distinct volumes: affinity would pin one repeated body to a single
	// owner, never exercising the restarted replica.
	extra := uniqueVolumes(200)
	servedAtRestart := g.replicaByName(victim.Name).status().Served
	for i := 0; i < len(extra); i++ {
		resp, view := postScan(t, gwSrv, scanBody(t, extra[i]))
		if resp.StatusCode != http.StatusOK || view.State != serve.StateDone {
			t.Fatalf("post-restart scan %d: status %d view %+v", i, resp.StatusCode, view)
		}
		if g.replicaByName(victim.Name).status().Served > servedAtRestart {
			return
		}
	}
	t.Fatal("restarted replica never served a scan again")
}

// startChaosGateway serves a started Gateway on a real listener and
// returns its base URL (shutdown is the caller's drain + this cleanup).
func startChaosGateway(t *testing.T, g *Gateway) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: g.Handler()}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String()
}

// chaosVolumes builds n distinct small volumes sized so scans are quick
// but non-trivial.
func chaosVolumes(n int) []*volume.Volume {
	vols := make([]*volume.Volume, n)
	for i := range vols {
		v := volume.New(2, 8, 8)
		for j := range v.Data {
			v.Data[j] = float32((i + 1) * (j + 1) % 97)
		}
		vols[i] = v
	}
	return vols
}

// chaosDeepVolumes builds n distinct volumes deep enough to trip the
// sharded path (16 slices against a ShardSlices of 4).
func chaosDeepVolumes(n int) []*volume.Volume {
	vols := make([]*volume.Volume, n)
	for i := range vols {
		v := volume.New(16, 8, 8)
		for j := range v.Data {
			v.Data[j] = float32((i+3)*(j+1)%131 - 65)
		}
		vols[i] = v
	}
	return vols
}

// TestChaosShardedReplicaKillMidScan is the sharded chaos acceptance
// test: with scatter/gather sharding on, a replica killed abruptly
// while chunks are in flight must cost re-dispatched chunks (or at
// worst an unsharded fallback), never a client-visible failure — and
// every sharded result still matches the unsharded one bit-for-bit
// (covered by the property tests; here the invariant under fire is
// zero failures).
func TestChaosShardedReplicaKillMidScan(t *testing.T) {
	// A deliberately slow identity enhancer keeps chunks in flight long
	// enough for the kill to land mid-scatter.
	slowCfg := func() serve.Config {
		return serve.Config{
			Workers: 2, QueueDepth: 64, CacheSize: -1,
			Process: stubProcess(time.Millisecond),
			Enhance: func(v *volume.Volume) *volume.Volume {
				time.Sleep(3 * time.Millisecond)
				return v
			},
		}
	}
	reps := []*chaosReplica{
		startChaosReplicaCfg(t, "", slowCfg()),
		startChaosReplicaCfg(t, "", slowCfg()),
		startChaosReplicaCfg(t, "", slowCfg()),
	}
	urls := []string{reps[0].url(), reps[1].url(), reps[2].url()}
	ejectionsBefore := ejectionsTotal.Value()
	shardScansBefore := shardScansTotal.Value()
	shardChunksBefore := shardChunksTotal.Value()

	g, err := New(Config{
		Replicas:         urls,
		HealthInterval:   20 * time.Millisecond,
		HealthTimeout:    500 * time.Millisecond,
		EjectAfter:       2,
		ReadmitAfter:     2,
		MaxRetries:       4,
		HedgeDelayMax:    250 * time.Millisecond,
		ShardSlices:      4,
		ShardChunkSlices: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	gwSrv := startChaosGateway(t, g)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := g.Drain(ctx); err != nil {
			t.Errorf("gateway drain: %v", err)
		}
		for _, r := range reps {
			r.s.Drain(ctx)
			r.srv.Close()
		}
	}()

	var victim ReplicaStatus
	for _, rs := range g.Snapshot() {
		if rs.URL == reps[1].url() {
			victim = rs
		}
	}
	if victim.Name == "" {
		t.Fatal("victim replica missing from the snapshot")
	}
	sumServed := func() uint64 {
		var n uint64
		for _, rs := range g.Snapshot() {
			n += rs.Served
		}
		return n
	}
	waitServed := func(min uint64) {
		t.Helper()
		for deadline := time.Now().Add(60 * time.Second); sumServed() < min; {
			if time.Now().After(deadline) {
				t.Fatalf("cluster stuck at %d served, want %d", sumServed(), min)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitVictimState := func(want string) {
		t.Helper()
		for deadline := time.Now().Add(15 * time.Second); ; {
			if st := g.replicaByName(victim.Name).status(); st.State == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %s never became %s: %+v",
					victim.Name, want, g.replicaByName(victim.Name).status())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	const requests = 200
	loadDone := make(chan serve.LoadReport, 1)
	go func() {
		rep, err := serve.RunLoadURLs([]string{gwSrv}, serve.LoadOptions{
			Requests:    requests,
			Concurrency: 8,
			Volumes:     chaosDeepVolumes(4),
			Perturb:     true,
			Seed:        13,
		})
		if err != nil {
			t.Errorf("load: %v", err)
		}
		loadDone <- rep
	}()

	// Let sharded traffic reach steady state, then yank a replica out
	// while its chunks are in flight.
	waitServed(30)
	reps[1].kill(t)
	waitVictimState("ejected")

	killedAt := sumServed()
	waitServed(killedAt + 50)

	reps[1] = startChaosReplicaCfg(t, reps[1].addr, slowCfg())
	waitVictimState("healthy")

	rep := <-loadDone
	if rep.Failed != 0 {
		t.Fatalf("client saw %d failed scans through the crash, want 0 (report %+v)", rep.Failed, rep)
	}
	if rep.Completed != requests {
		t.Fatalf("completed %d of %d scans", rep.Completed, requests)
	}
	if got := ejectionsTotal.Value() - ejectionsBefore; got == 0 {
		t.Fatal("the crash never ejected the replica")
	}
	if got := shardScansTotal.Value() - shardScansBefore; got == 0 {
		t.Fatal("no scans took the sharded path")
	}
	if got := shardChunksTotal.Value() - shardChunksBefore; got == 0 {
		t.Fatal("no chunks were scattered")
	}
}
