package cluster

// Routing policy: cache affinity first, load-aware power-of-two-choices
// otherwise.
//
// Affinity: the scan's SHA-256 content key names a consistent-hash
// owner; if the owner is healthy and not overloaded, the scan goes
// there, because a repeat submission hits that replica's
// content-addressed LRU result cache and answers in O(1). The overload
// guard (AffinityMaxInflight) stops a hot key from melting its owner —
// past it, the scan falls through to load-aware placement.
//
// Power-of-two-choices: sample two distinct healthy replicas uniformly
// and take the one with the lower (inflight+1) × EWMA-latency score.
// Two random choices avoid both the herding of pick-least-loaded under
// stale data and the O(n) scan of the full set.

// pick selects the replica for one attempt. key == "" skips affinity
// (hedges and retries want placement, not cache warmth). exclude lists
// replicas already tried this request. The second return reports
// whether the choice was affinity-routed.
//
// When no healthy candidate exists the gateway does not give up: it
// falls back to excluded-then-unhealthy replicas, because an attempt
// against a half-dead replica doubles as a probe and the alternative is
// failing the scan outright.
func (g *Gateway) pick(key string, exclude map[*replica]bool) (*replica, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()

	if key != "" {
		owner := ringOwner(g.ring, key, func(r *replica) bool {
			return r.healthy() && !exclude[r] && r.inflight.Load() < g.cfg.AffinityMaxInflight
		})
		if owner != nil {
			return owner, true
		}
	}

	var healthy []*replica
	for _, r := range g.replicas {
		if r.healthy() && !exclude[r] {
			healthy = append(healthy, r)
		}
	}
	if len(healthy) == 0 {
		for _, r := range g.replicas {
			if !exclude[r] {
				healthy = append(healthy, r)
			}
		}
	}
	switch len(healthy) {
	case 0:
		return nil, false
	case 1:
		return healthy[0], false
	}
	i := g.rng.Intn(len(healthy))
	j := g.rng.Intn(len(healthy) - 1)
	if j >= i {
		j++
	}
	a, b := healthy[i], healthy[j]
	if routeScore(b) < routeScore(a) {
		a = b
	}
	return a, false
}

// routeScore is the load estimate p2c minimizes: queued work times how
// slowly this replica has been finishing it. The latency floor keeps a
// replica with no samples yet comparable instead of infinitely
// attractive.
func routeScore(r *replica) float64 {
	lat := r.ewma()
	if lat <= 0 {
		lat = 1e-3
	}
	return float64(r.inflight.Load()+1) * lat
}
