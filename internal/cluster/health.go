package cluster

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"

	"computecovid19/internal/obs"
)

// Active health checking: a single loop probes every replica's /readyz
// each HealthInterval. A replica answering anything but 200 — including
// the 503 a draining ccserve returns from the moment SIGTERM lands — is
// ejected after EjectAfter consecutive failures. Ejected replicas keep
// being probed (half-open): ReadmitAfter consecutive successes bring
// them back, so a restarted or drained-and-redeployed replica rejoins
// without operator action. Routed attempts feed the same state machine
// through noteObservation, so a replica that dies between probes is
// ejected at wire speed rather than waiting out the probe cycle.

func (g *Gateway) healthLoop() {
	t := time.NewTicker(g.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-g.stopc:
			return
		case <-t.C:
			g.checkAll()
		}
	}
}

// checkAll probes the replicas concurrently, so one hung backend cannot
// stall detection on the rest.
func (g *Gateway) checkAll() {
	var wg sync.WaitGroup
	for _, r := range g.snapshotReplicas() {
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			g.noteObservation(r, g.probe(r))
		}(r)
	}
	wg.Wait()
}

// probe performs one readiness check against a replica.
func (g *Gateway) probe(r *replica) bool {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// noteObservation advances a replica's health state machine and records
// and logs the transitions it causes.
func (g *Gateway) noteObservation(r *replica, ok bool) {
	ejected, readmitted := r.noteProbe(ok, g.cfg.EjectAfter, g.cfg.ReadmitAfter)
	if ejected {
		ejectionsTotal.Inc()
		obs.Log().Warn("cluster: replica ejected", "replica", r.name, "url", r.url)
	}
	if readmitted {
		readmitsTotal.Inc()
		obs.Log().Info("cluster: replica readmitted", "replica", r.name, "url", r.url)
	}
}
