package cluster

import (
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"computecovid19/internal/obs"
	"computecovid19/internal/serve"
)

// inboundSpanContext is a fixed remote identity playing the upstream
// caller (a client that already opened a trace before hitting the
// gateway).
func inboundSpanContext() obs.SpanContext {
	var sc obs.SpanContext
	for i := range sc.Trace {
		sc.Trace[i] = byte(0x20 + i)
	}
	for i := range sc.Span {
		sc.Span[i] = byte(0xc0 + i)
	}
	return sc
}

// TestClusterTraceEndToEnd is the cross-process golden trace test: one
// scan through gateway and replica must form a single trace tree —
// continued from the inbound traceparent — whose spine runs
// gateway/request → gateway/attempt → serve/request, with the
// replica-side handler, queue, and process spans hanging under the
// replica's request span. The gateway and replica only share the trace
// through the Traceparent header on the wire, so this pins the whole
// propagation chain.
func TestClusterTraceEndToEnd(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	obs.Enable()

	_, rep := startReplica(t, serve.Config{Workers: 1})
	_, gw := startGateway(t, Config{
		Replicas:       []string{rep.URL},
		DisableHedging: true,
		// Health probes stay span-free by design, but a long interval
		// keeps the run quiet regardless.
		HealthInterval: time.Hour,
	})

	inbound := inboundSpanContext()
	body := scanBody(t, uniqueVolumes(1)[0])
	req, err := http.NewRequest(http.MethodPost, gw.URL+"/v1/scan", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Traceparent", inbound.Traceparent())
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	// The gateway answers in the caller's trace with its own span id.
	echoed, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok {
		t.Fatalf("response traceparent unparseable: %q", resp.Header.Get("Traceparent"))
	}
	if echoed.Trace != inbound.Trace {
		t.Fatalf("gateway opened trace %s instead of continuing inbound %s", echoed.Trace, inbound.Trace)
	}
	if echoed.Span == inbound.Span {
		t.Fatal("gateway must mint its own span id, not echo the caller's")
	}

	recs, dropped := obs.TraceRecords()
	if dropped != 0 {
		t.Fatalf("span buffer dropped %d records", dropped)
	}
	byID := make(map[obs.SpanID]obs.SpanRecord, len(recs))
	for _, r := range recs {
		byID[r.ID] = r
	}

	// Golden span tree: both processes' spans, one trace, rooted at the
	// gateway, crossing to the replica through the attempt span.
	wantEdges := []string{
		"gateway/attempt<-gateway/request",
		"gateway/request<-inbound",
		"serve/http<-serve/request",
		"serve/process<-serve/request",
		"serve/queue<-serve/request",
		"serve/request<-gateway/attempt",
	}
	var gotEdges []string
	var request obs.SpanRecord
	for _, r := range recs {
		if r.Trace != inbound.Trace {
			continue
		}
		parent := "inbound"
		if r.Parent != inbound.Span {
			parent = byID[r.Parent].Name
		}
		gotEdges = append(gotEdges, r.Name+"<-"+parent)
		if r.Name == "gateway/request" {
			request = r
		}
	}
	sort.Strings(gotEdges)
	if strings.Join(gotEdges, "\n") != strings.Join(wantEdges, "\n") {
		t.Fatalf("cluster trace tree:\n%s\nwant:\n%s",
			strings.Join(gotEdges, "\n"), strings.Join(wantEdges, "\n"))
	}
	if request.ID != echoed.Span {
		t.Fatal("response traceparent must name the gateway/request span")
	}
}
