// Package cluster is the multi-replica serving data plane: a gateway
// that fronts N ccserve replicas and turns them into one service. The
// paper's premise is that DDnet-based CT enhancement must be fast
// enough for clinical workflows (§1); ROADMAP's north star is serving
// heavy traffic from millions of users — which no single replica
// survives alone. The gateway adds the layer internal/serve stops at:
//
//   - a replica set with active health checking — /readyz probes,
//     ejection on consecutive failures, half-open probing so restarted
//     or drained replicas rejoin on their own, and a reloadable static
//     replica list (cmd/ccgate rereads it on SIGHUP);
//   - load-aware routing: power-of-two-choices over per-replica
//     inflight count and EWMA latency, with consistent-hash affinity on
//     the scan's SHA-256 content key so repeat scans land on the
//     replica whose LRU result cache already holds them;
//   - hedged requests — after an adaptive p95 delay a second attempt
//     fires at the next-best replica, the first response wins and the
//     loser is cancelled — plus bounded retries that honor upstream
//     Retry-After and the request deadline, so a replica dying mid-scan
//     is invisible to the client;
//   - graceful drain on both sides: a draining replica's /readyz flips
//     503 and the gateway ejects it, and the gateway's own Drain stops
//     admission and waits out in-flight scans.
//
// The gateway speaks the same /v1/scan API as a replica but
// synchronously: it submits, polls the replica to the terminal state,
// and answers 200 with the finished JobView — that is what makes
// transparent retry and hedging possible. It roots a gateway/request
// span per scan and propagates Traceparent to the replica, so one trace
// tree spans gateway → replica, and it exports cluster_* metrics
// (per-replica inflight, ejections, hedge wins, affinity hit rate).
package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"computecovid19/internal/obs"
	"computecovid19/internal/serve"
	"computecovid19/internal/workflow"
)

// Config assembles a Gateway. The zero value of every tuning field
// picks a sensible default (see New).
type Config struct {
	// Replicas is the initial replica URL list (e.g. "http://host:8844").
	// At least one is required; SetReplicas swaps the set at runtime.
	Replicas []string
	// HealthInterval is the active /readyz probe period; HealthTimeout
	// bounds each probe.
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// EjectAfter ejects a replica after that many consecutive failed
	// observations; ReadmitAfter readmits an ejected replica after that
	// many consecutive successful probes (half-open recovery).
	EjectAfter   int
	ReadmitAfter int
	// MaxRetries bounds additional attempts after the first (hedges not
	// counted). Negative disables retries.
	MaxRetries int
	// Hedging: a second attempt fires after an adaptive delay — the p95
	// of observed attempt latencies, floored at HedgeDelayMin; until
	// HedgeMinSamples attempts have been observed the delay stays at
	// HedgeDelayMax. A p95 beyond HedgeDelayMax pauses hedging entirely:
	// a uniformly slow cluster is saturated, and hedges would feed the
	// overload they are reacting to. DisableHedging turns it off.
	DisableHedging  bool
	HedgeDelayMin   time.Duration
	HedgeDelayMax   time.Duration
	HedgeMinSamples int
	// AffinityMaxInflight is the overload guard on cache-affine routing:
	// when the consistent-hash owner already has this many scans in
	// flight, the scan falls through to power-of-two-choices.
	AffinityMaxInflight int64
	// VNodes is each replica's virtual-node count on the hash ring.
	VNodes int
	// PollInterval is the replica result-poll period.
	PollInterval time.Duration
	// DefaultDeadline bounds scans that carry no deadline_ms of their
	// own; the deadline caps retries, hedges, and polling combined.
	DefaultDeadline time.Duration
	// Seed derives the router's RNG (deterministic tests).
	Seed int64

	// ShardSlices enables scatter/gather slice sharding for scans at
	// least that many slices deep (0 disables sharding entirely). A
	// sharded scan's enhancement is split into chunk-range /v1/enhance
	// calls fanned out across healthy replicas, reassembled in slice
	// order, and then submitted pre-enhanced for segment+classify —
	// bit-identical to the unsharded path because per-slice forwards are
	// independent. Sharding needs ≥ 2 healthy replicas; below that scans
	// route whole.
	ShardSlices int
	// ShardChunkSlices fixes the chunk size in slices; 0 derives it from
	// ShardModel (workflow-predicted replica throughput) or, with no
	// model, an even split of two chunks per healthy replica.
	ShardChunkSlices int
	// ShardModel predicts the makespan-optimal chunk size from the
	// replica's measured per-slice enhancement time and the per-chunk
	// dispatch overhead (see workflow.ClusterModel.ShardChunkSlices).
	// The model's Replicas field is overridden by the live healthy count.
	ShardModel workflow.ClusterModel
}

// Gateway is a running (or startable) cluster front end.
type Gateway struct {
	cfg Config

	mu       sync.Mutex // guards replicas, ring, seq, rng
	replicas []*replica
	ring     []ringPoint
	seq      int
	rng      *rand.Rand

	// attemptLat feeds the adaptive hedge delay for whole-scan attempts;
	// chunkLat does the same for chunk-range enhance attempts. They are
	// separate because the two call classes live on different latency
	// scales, and free-standing so one gateway's profile never pools
	// with another's.
	attemptLat *obs.Histogram
	chunkLat   *obs.Histogram

	gate     sync.RWMutex // guards draining flips vs. admission
	draining bool
	inflight sync.WaitGroup

	stopOnce sync.Once
	stopc    chan struct{}
}

// New builds a Gateway from cfg, applying defaults. Call Start to begin
// health checking.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: Config needs at least one replica URL")
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 500 * time.Millisecond
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = 2 * time.Second
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = 3
	}
	if cfg.ReadmitAfter <= 0 {
		cfg.ReadmitAfter = 2
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.HedgeDelayMin <= 0 {
		cfg.HedgeDelayMin = 2 * time.Millisecond
	}
	if cfg.HedgeDelayMax <= 0 {
		cfg.HedgeDelayMax = time.Second
	}
	if cfg.HedgeMinSamples <= 0 {
		cfg.HedgeMinSamples = 16
	}
	if cfg.AffinityMaxInflight <= 0 {
		cfg.AffinityMaxInflight = 8
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 64
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * time.Millisecond
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = 2 * time.Minute
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	g := &Gateway{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		attemptLat: obs.NewHistogram(nil),
		chunkLat:   obs.NewHistogram(nil),
		stopc:      make(chan struct{}),
	}
	if err := g.SetReplicas(cfg.Replicas); err != nil {
		return nil, err
	}
	return g, nil
}

// Start launches the health-check loop.
func (g *Gateway) Start() {
	go g.healthLoop()
}

// SetReplicas swaps the replica set for the given URL list — the SIGHUP
// reload path. Replicas whose URL stays keep their identity, health
// state, and latency profile; new URLs join healthy (the health loop
// ejects them promptly if they are not); removed replicas finish their
// in-flight attempts and are forgotten.
func (g *Gateway) SetReplicas(urls []string) error {
	if len(urls) == 0 {
		return fmt.Errorf("cluster: replica list must not be empty")
	}
	seen := make(map[string]bool, len(urls))
	cleaned := make([]string, 0, len(urls))
	for _, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" || seen[u] {
			return fmt.Errorf("cluster: empty or duplicate replica URL in %v", urls)
		}
		seen[u] = true
		cleaned = append(cleaned, u)
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	byURL := make(map[string]*replica, len(g.replicas))
	for _, r := range g.replicas {
		byURL[r.url] = r
	}
	next := make([]*replica, 0, len(cleaned))
	for _, u := range cleaned {
		if r, ok := byURL[u]; ok {
			next = append(next, r)
			continue
		}
		r := newReplica(fmt.Sprintf("r%d", g.seq), u)
		g.seq++
		next = append(next, r)
	}
	g.replicas = next
	g.ring = buildRing(next, g.cfg.VNodes)
	reloadsTotal.Inc()
	return nil
}

// snapshotReplicas returns the current replica slice (the slice is
// replaced wholesale on reload, never mutated, so the snapshot is safe
// to iterate without the lock).
func (g *Gateway) snapshotReplicas() []*replica {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.replicas
}

func (g *Gateway) replicaByName(name string) *replica {
	for _, r := range g.snapshotReplicas() {
		if r.name == name {
			return r
		}
	}
	return nil
}

// Snapshot returns the ops view of every replica.
func (g *Gateway) Snapshot() []ReplicaStatus {
	reps := g.snapshotReplicas()
	out := make([]ReplicaStatus, len(reps))
	for i, r := range reps {
		out[i] = r.status()
	}
	return out
}

// Drain stops admission (readyz and new scans answer 503), waits for
// in-flight scans to finish, and stops the health loop. It returns
// ctx.Err when the context expires first.
func (g *Gateway) Drain(ctx context.Context) error {
	g.gate.Lock()
	g.draining = true
	g.gate.Unlock()
	g.stopOnce.Do(func() { close(g.stopc) })

	done := make(chan struct{})
	go func() {
		g.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has begun.
func (g *Gateway) Draining() bool {
	g.gate.RLock()
	defer g.gate.RUnlock()
	return g.draining
}

// Handler returns the gateway HTTP API:
//
//	POST /v1/scan      submit a volume; routed, hedged, retried; answers
//	                   200 with the terminal JobView (id is "<id>@<replica>")
//	GET  /v1/scan/{id} re-fetch a finished scan from its owning replica
//	GET  /v1/replicas  replica set with health, inflight, EWMA latency
//	GET  /healthz      liveness
//	GET  /readyz       readiness (503 while draining or with no healthy replica)
//	GET  /metrics      Prometheus exposition of the obs registry
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scan", g.handleScan)
	mux.HandleFunc("GET /v1/scan/{id}", g.handleGet)
	mux.HandleFunc("GET /v1/replicas", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, g.Snapshot())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if g.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		healthy := 0
		for _, r := range g.snapshotReplicas() {
			if r.healthy() {
				healthy++
			}
		}
		if healthy == 0 {
			http.Error(w, "no healthy replicas", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "ready (%d healthy replicas)\n", healthy)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obs.Default.WritePrometheus(w)
	})
	return mux
}

// contentKey is the scan's content address for affinity routing:
// SHA-256 over dimensions and raw voxel bits. Unlike the replica-side
// cache key it omits the model version — the cluster assumes one model
// across replicas, and the key only has to be stable, not collision-
// proof against redeploys.
func contentKey(req *serve.ScanRequest) string {
	h := sha256.New()
	var dims [12]byte
	binary.LittleEndian.PutUint32(dims[0:], uint32(req.D))
	binary.LittleEndian.PutUint32(dims[4:], uint32(req.H))
	binary.LittleEndian.PutUint32(dims[8:], uint32(req.W))
	h.Write(dims[:])
	buf := make([]byte, 4*len(req.Data))
	for i, x := range req.Data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(x))
	}
	h.Write(buf)
	return hex.EncodeToString(h.Sum(nil))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
