package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// The consistent-hash ring gives every scan's content key a stable
// owner replica, so repeat submissions of the same volume land where
// the LRU result cache already holds the answer. Each replica
// contributes VNodes points hashed from its URL, which keeps keys from
// moving when an unrelated replica joins or leaves: membership changes
// remap only the keys owned by the changed replica's arcs.

type ringPoint struct {
	hash uint64
	rep  *replica
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// buildRing lays every replica's virtual nodes onto the ring, sorted by
// hash. Ejected replicas stay on the ring — ownership is a property of
// membership, not health — and lookups walk past them, so a recovered
// replica gets its keys (and its warm cache) back unchanged.
func buildRing(reps []*replica, vnodes int) []ringPoint {
	ring := make([]ringPoint, 0, len(reps)*vnodes)
	for _, r := range reps {
		for v := 0; v < vnodes; v++ {
			ring = append(ring, ringPoint{hash: hash64(r.url + "#" + strconv.Itoa(v)), rep: r})
		}
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].hash < ring[j].hash })
	return ring
}

// ringOwner returns the first replica at or clockwise of key's hash for
// which eligible returns true, or nil when none qualifies. Walking the
// full ring (not just distinct replicas) keeps the fallback assignment
// for a down owner's keys consistent too.
func ringOwner(ring []ringPoint, key string, eligible func(*replica) bool) *replica {
	if len(ring) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= h })
	seen := make(map[*replica]bool)
	for i := 0; i < len(ring); i++ {
		p := ring[(start+i)%len(ring)]
		if seen[p.rep] {
			continue
		}
		seen[p.rep] = true
		if eligible(p.rep) {
			return p.rep
		}
	}
	return nil
}
