package cluster

import (
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"computecovid19/internal/obs"
)

// replicaState is a replica's position in the health state machine.
// Healthy replicas take traffic; ejected replicas take none but keep
// being probed (the half-open state), and return to healthy after
// ReadmitAfter consecutive successful probes.
type replicaState int32

const (
	stateHealthy replicaState = iota
	stateEjected
)

func (s replicaState) String() string {
	if s == stateEjected {
		return "ejected"
	}
	return "healthy"
}

// replica is one ccserve backend as the gateway sees it. Routing reads
// (inflight, EWMA latency, state) are lock-free atomics on the hot
// path; the ejection state machine counters are guarded by hmu because
// the health loop and attempt-failure reporting both feed them.
type replica struct {
	name   string // stable gateway-scoped id ("r0", "r1", ...)
	url    string
	client *http.Client

	inflight atomic.Int64
	served   atomic.Uint64
	state    atomic.Int32
	ewmaBits atomic.Uint64 // EWMA of successful attempt latency, float64 seconds

	hmu         sync.Mutex
	consecFails int
	consecOK    int

	inflightGauge *obs.Gauge
}

func newReplica(name, url string) *replica {
	return &replica{
		name:          name,
		url:           url,
		client:        &http.Client{},
		inflightGauge: obs.GetGauge(fmt.Sprintf("cluster_inflight{replica=%q}", name)),
	}
}

func (r *replica) healthy() bool {
	return replicaState(r.state.Load()) == stateHealthy
}

// acquire/release bracket one attempt; the inflight count is what
// power-of-two-choices and the affinity overload guard read.
func (r *replica) acquire() { r.inflightGauge.Set(float64(r.inflight.Add(1))) }
func (r *replica) release() { r.inflightGauge.Set(float64(r.inflight.Add(-1))) }

// ewma returns the smoothed attempt latency in seconds (0 = no data).
func (r *replica) ewma() float64 {
	return math.Float64frombits(r.ewmaBits.Load())
}

// observeLatency folds one successful attempt into the EWMA
// (alpha 0.2: a few recent scans dominate, one outlier does not).
func (r *replica) observeLatency(d time.Duration) {
	s := d.Seconds()
	for {
		old := r.ewmaBits.Load()
		next := s
		if cur := math.Float64frombits(old); cur > 0 {
			next = 0.8*cur + 0.2*s
		}
		if r.ewmaBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// noteProbe folds one health observation — an active /readyz probe or a
// routed attempt's transport outcome — into the ejection state machine
// and reports which transition, if any, it caused.
func (r *replica) noteProbe(ok bool, ejectAfter, readmitAfter int) (ejected, readmitted bool) {
	r.hmu.Lock()
	defer r.hmu.Unlock()
	st := replicaState(r.state.Load())
	if ok {
		r.consecFails = 0
		if st == stateEjected {
			r.consecOK++
			if r.consecOK >= readmitAfter {
				r.consecOK = 0
				r.state.Store(int32(stateHealthy))
				return false, true
			}
		}
		return false, false
	}
	r.consecOK = 0
	if st == stateHealthy {
		r.consecFails++
		if r.consecFails >= ejectAfter {
			r.consecFails = 0
			r.state.Store(int32(stateEjected))
			return true, false
		}
	}
	return false, false
}

// ReplicaStatus is the ops-facing view of one replica, served by
// GET /v1/replicas and returned by Gateway.Snapshot.
type ReplicaStatus struct {
	Name     string  `json:"name"`
	URL      string  `json:"url"`
	State    string  `json:"state"`
	Inflight int64   `json:"inflight"`
	Served   uint64  `json:"served"`
	EWMAMS   float64 `json:"ewma_ms"`
}

func (r *replica) status() ReplicaStatus {
	return ReplicaStatus{
		Name:     r.name,
		URL:      r.url,
		State:    replicaState(r.state.Load()).String(),
		Inflight: r.inflight.Load(),
		Served:   r.served.Load(),
		EWMAMS:   r.ewma() * 1e3,
	}
}
