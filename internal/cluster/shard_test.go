package cluster

import (
	"context"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"computecovid19/internal/classify"
	"computecovid19/internal/core"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/obs"
	"computecovid19/internal/serve"
	"computecovid19/internal/volume"
	"computecovid19/internal/workflow"
)

func TestPlanChunksCoversEveryUnit(t *testing.T) {
	g, err := New(Config{Replicas: []string{"http://stub"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		d, healthy, fixed int
		wantChunks        int
	}{
		{9, 3, 1, 9},   // chunk size 1
		{9, 3, 5, 2},   // prime chunk, uneven tail
		{9, 3, 9, 1},   // whole-scan chunk
		{9, 3, 100, 1}, // oversize clamps to D
		{12, 3, 0, 6},  // auto: two chunks per healthy replica
		{512, 2, 0, 4}, // auto at depth: still two chunks per replica
	} {
		g.cfg.ShardChunkSlices = tc.fixed
		chunks := g.planChunks(tc.d, tc.healthy)
		if len(chunks) != tc.wantChunks {
			t.Fatalf("planChunks(%d, healthy=%d, fixed=%d) made %d chunks, want %d",
				tc.d, tc.healthy, tc.fixed, len(chunks), tc.wantChunks)
		}
		// Contiguous cover of [0, d), in order, no gaps or overlaps.
		z := 0
		for _, c := range chunks {
			if c.z0 != z || c.z1 <= c.z0 {
				t.Fatalf("chunk %+v breaks the contiguous cover at z=%d", c, z)
			}
			z = c.z1
		}
		if z != tc.d {
			t.Fatalf("chunks end at %d, want %d", z, tc.d)
		}
	}

	// A workflow model takes over auto sizing when it has a slice time.
	g.cfg.ShardChunkSlices = 0
	g.cfg.ShardModel = workflow.ClusterModel{
		Replica:       workflow.ServeModel{EnhanceSlice: 10 * time.Millisecond},
		ChunkOverhead: 5 * time.Millisecond,
	}
	if chunks := g.planChunks(12, 3); len(chunks) != 3 {
		t.Fatalf("model-driven plan made %d chunks, want 3 (k=4)", len(chunks))
	}
}

// shardPipeline builds one real (tiny) enhancement+classification
// pipeline shared by every replica in a sharding test. It is warmed up
// front so locally computed references run the same compiled fused
// execution plan the serve replicas run (replicas warm on start, and
// the fused plan differs from the cold layer-wise path by design —
// within the documented ULP budget, but these tests compare bits).
func shardPipeline() *core.Pipeline {
	rng := rand.New(rand.NewSource(11))
	p := core.NewPipeline(ddnet.New(rng, ddnet.TinyConfig()), classify.New(rng, classify.SmallConfig()))
	p.Warm()
	return p
}

// shardVolume builds a deterministic D×16×16 HU volume.
func shardVolume(d int) *volume.Volume {
	v := volume.New(d, 16, 16)
	for i := range v.Data {
		v.Data[i] = float32((i*37)%1800 - 900)
	}
	return v
}

// bitIdentical compares volumes voxel-by-voxel at the bit level — the
// sharding guarantee is exactness, not tolerance.
func bitIdentical(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestShardedEnhanceBitIdentical is the property test from the issue:
// sharded enhancement across three replicas must be bit-identical to
// the single-pipeline Enhance for chunk sizes 1, a prime that divides
// nothing, and the whole scan in one chunk.
func TestShardedEnhanceBitIdentical(t *testing.T) {
	p := shardPipeline()
	v := shardVolume(9)
	want := p.Enhance(v)

	cfg := serve.Config{Pipeline: p, Workers: 1, BatchSize: 4}
	_, r0 := startReplica(t, cfg)
	_, r1 := startReplica(t, cfg)
	_, r2 := startReplica(t, cfg)
	urls := []string{r0.URL, r1.URL, r2.URL}

	for _, chunk := range []int{1, 5, 9} {
		g, _ := startGateway(t, Config{
			Replicas:         urls,
			ShardSlices:      1,
			ShardChunkSlices: chunk,
			Seed:             int64(chunk),
		})
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		got, err := g.scatterEnhance(ctx, &serve.ScanRequest{D: v.D, H: v.H, W: v.W, Data: v.Data})
		cancel()
		if err != nil {
			t.Fatalf("chunk=%d: scatter: %v", chunk, err)
		}
		if !bitIdentical(got, want.Data) {
			t.Fatalf("chunk=%d: sharded enhancement is not bit-identical to single-replica Enhance", chunk)
		}
	}
}

// TestShardedEnhanceBitIdenticalUnderRedispatch injects chunk failures:
// one of the three replicas sits behind a proxy that 500s every other
// /v1/enhance call, so chunks routinely die and re-dispatch to the
// survivors. The reassembled volume must still be bit-identical, and
// the re-dispatch counter must show the injections actually happened.
func TestShardedEnhanceBitIdenticalUnderRedispatch(t *testing.T) {
	p := shardPipeline()
	v := shardVolume(9)
	want := p.Enhance(v)

	cfg := serve.Config{Pipeline: p, Workers: 1, BatchSize: 4}
	_, r0 := startReplica(t, cfg)
	_, r1 := startReplica(t, cfg)
	_, r2 := startReplica(t, cfg)

	target, err := url.Parse(r2.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(target)
	var calls, injected atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/enhance" && calls.Add(1)%2 == 1 {
			injected.Add(1)
			http.Error(w, `{"error":"injected"}`, http.StatusInternalServerError)
			return
		}
		proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	redispatchBefore := shardRedispatchTotal.Value()
	g, _ := startGateway(t, Config{
		Replicas:         []string{r0.URL, r1.URL, flaky.URL},
		ShardSlices:      1,
		ShardChunkSlices: 1, // 9 chunks: plenty of dice rolls on the flaky replica
		Seed:             3,
	})
	for round := 0; round < 4; round++ {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		got, err := g.scatterEnhance(ctx, &serve.ScanRequest{D: v.D, H: v.H, W: v.W, Data: v.Data})
		cancel()
		if err != nil {
			t.Fatalf("round %d: scatter under injected failures: %v", round, err)
		}
		if !bitIdentical(got, want.Data) {
			t.Fatalf("round %d: re-dispatched sharding lost bit-identity", round)
		}
	}
	if injected.Load() == 0 {
		t.Fatal("the fault injector never fired; the test proved nothing")
	}
	if got := shardRedispatchTotal.Value() - redispatchBefore; got == 0 {
		t.Fatal("injected chunk failures never showed up in cluster_shard_redispatch_total")
	}
}

// TestShardedScanMatchesUnsharded runs the full sharded scan path —
// scatter, gather, pre-enhanced classify — through the gateway HTTP API
// and requires the terminal probability to equal the local
// enhance+classify result exactly (float64 JSON round-trips are exact,
// like float32 ones).
func TestShardedScanMatchesUnsharded(t *testing.T) {
	p := shardPipeline()
	v := shardVolume(8)
	want := p.Classify(p.Enhance(v))

	cfg := serve.Config{Pipeline: p, Workers: 1, BatchSize: 4}
	_, r0 := startReplica(t, cfg)
	_, r1 := startReplica(t, cfg)
	_, r2 := startReplica(t, cfg)

	scansBefore := shardScansTotal.Value()
	g, gw := startGateway(t, Config{
		Replicas:    []string{r0.URL, r1.URL, r2.URL},
		ShardSlices: 4,
		Seed:        5,
	})
	resp, view := postScan(t, gw.URL, scanBody(t, v))
	if resp.StatusCode != http.StatusOK || view.State != serve.StateDone {
		t.Fatalf("sharded scan: status %d view %+v", resp.StatusCode, view)
	}
	if view.Result == nil || view.Result.Probability != want.Probability {
		t.Fatalf("sharded probability %+v, want exactly %v", view.Result, want.Probability)
	}
	if shardScansTotal.Value() == scansBefore {
		t.Fatal("the scan did not take the sharded path")
	}

	// Below the slice threshold the scan routes whole.
	shallow := shardVolume(3)
	scansBefore = shardScansTotal.Value()
	resp2, view2 := postScan(t, gw.URL, scanBody(t, shallow))
	if resp2.StatusCode != http.StatusOK || view2.State != serve.StateDone {
		t.Fatalf("shallow scan: status %d view %+v", resp2.StatusCode, view2)
	}
	if shardScansTotal.Value() != scansBefore {
		t.Fatal("a 3-slice scan sharded despite ShardSlices=4")
	}
	_ = g
}

// TestReloadDuringScatterDoesNotOrphanChunks is the SIGHUP-race test:
// SetReplicas fires while scatters are mid-flight, removing a replica
// that holds outstanding chunks and adding a fresh one. Every scan must
// still complete with a bit-identical volume — inflight chunks on the
// removed replica either finish (the *replica object outlives the set)
// or re-dispatch to survivors; none may be orphaned.
func TestReloadDuringScatterDoesNotOrphanChunks(t *testing.T) {
	// Identity enhancement with a per-chunk stall keeps scatters open
	// long enough for the reload to land mid-flight.
	slowIdentity := func(v *volume.Volume) *volume.Volume {
		time.Sleep(5 * time.Millisecond)
		return v
	}
	cfg := serve.Config{
		Process: stubProcess(time.Millisecond),
		Enhance: slowIdentity,
		Workers: 2,
	}
	_, r0 := startReplica(t, cfg)
	_, r1 := startReplica(t, cfg)
	_, r2 := startReplica(t, cfg)
	_, r3 := startReplica(t, cfg) // joins at reload

	g, gw := startGateway(t, Config{
		Replicas:         []string{r0.URL, r1.URL, r2.URL},
		ShardSlices:      1,
		ShardChunkSlices: 1,
		HealthInterval:   10 * time.Millisecond,
		Seed:             9,
	})

	const scans = 8
	vols := make([]*volume.Volume, scans)
	for i := range vols {
		vols[i] = shardVolume(12)
		vols[i].Data[0] = float32(i) // distinct bodies: no affinity pinning
	}
	var wg sync.WaitGroup
	errs := make(chan string, scans)
	wg.Add(scans)
	for i := 0; i < scans; i++ {
		go func(v *volume.Volume) {
			defer wg.Done()
			resp, view := postScan(t, gw.URL, scanBody(t, v))
			if resp.StatusCode != http.StatusOK || view.State != serve.StateDone {
				errs <- view.Error
			}
		}(vols[i])
	}

	// Reload mid-scatter: drop r2 (which holds inflight chunks), add r3.
	time.Sleep(10 * time.Millisecond)
	if err := g.SetReplicas([]string{r0.URL, r1.URL, r3.URL}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("scan failed across the reload: %s", e)
	}

	// The new set is live: r3 present, r2 gone.
	var urls []string
	for _, rs := range g.Snapshot() {
		urls = append(urls, rs.URL)
	}
	sort.Strings(urls)
	want := []string{r0.URL, r1.URL, r3.URL}
	sort.Strings(want)
	if strings.Join(urls, ",") != strings.Join(want, ",") {
		t.Fatalf("replica set after reload: %v, want %v", urls, want)
	}
}

// TestShardedTraceTree pins the sharded span topology: the scatter span
// hangs under the request, every chunk under the scatter, the replica's
// enhance-chunk handler under its chunk (crossing the wire through
// Traceparent), and the classify leg keeps the ordinary attempt spine.
// Edges are deduplicated — the chunk count varies with routing, the
// shape must not.
func TestShardedTraceTree(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	obs.Enable()

	cfg := serve.Config{Process: stubProcess(0), Workers: 1}
	_, r0 := startReplica(t, cfg)
	_, r1 := startReplica(t, cfg)
	_, gw := startGateway(t, Config{
		Replicas:         []string{r0.URL, r1.URL},
		ShardSlices:      1,
		ShardChunkSlices: 1,
		DisableHedging:   true,
		HealthInterval:   time.Hour,
	})

	v := shardVolume(4)
	resp, view := postScan(t, gw.URL, scanBody(t, v))
	if resp.StatusCode != http.StatusOK || view.State != serve.StateDone {
		t.Fatalf("sharded scan: status %d view %+v", resp.StatusCode, view)
	}

	recs, dropped := obs.TraceRecords()
	if dropped != 0 {
		t.Fatalf("span buffer dropped %d records", dropped)
	}
	byID := make(map[obs.SpanID]obs.SpanRecord, len(recs))
	var root obs.SpanRecord
	for _, r := range recs {
		byID[r.ID] = r
		if r.Name == "gateway/request" {
			root = r
		}
	}
	if root.Name == "" {
		t.Fatal("no gateway/request span recorded")
	}
	edgeSet := make(map[string]bool)
	for _, r := range recs {
		if r.Trace != root.Trace {
			continue
		}
		parent := "root"
		if p, ok := byID[r.Parent]; ok {
			parent = p.Name
		}
		edgeSet[r.Name+"<-"+parent] = true
	}
	var gotEdges []string
	for e := range edgeSet {
		gotEdges = append(gotEdges, e)
	}
	sort.Strings(gotEdges)
	wantEdges := []string{
		"gateway/attempt<-gateway/request",
		"gateway/chunk<-gateway/scatter",
		"gateway/request<-root",
		"gateway/scatter<-gateway/request",
		"serve/enhance-chunk<-gateway/chunk",
		"serve/http<-serve/request",
		"serve/process<-serve/request",
		"serve/queue<-serve/request",
		"serve/request<-gateway/attempt",
	}
	if strings.Join(gotEdges, "\n") != strings.Join(wantEdges, "\n") {
		t.Fatalf("sharded trace tree:\n%s\nwant:\n%s",
			strings.Join(gotEdges, "\n"), strings.Join(wantEdges, "\n"))
	}
}
