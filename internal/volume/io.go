package volume

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// The .ccvol format is this repository's minimal volume container, so
// pipelines can be run on files rather than in-process phantoms:
//
//	magic "CCVL" | version u32 | D u32 | H u32 | W u32 |
//	voxels []float32 little-endian (Hounsfield units)

const (
	volMagic   = "CCVL"
	volVersion = 1
	// maxVolDim guards against allocating absurd volumes from corrupt
	// headers.
	maxVolDim = 1 << 14
)

// Save writes the volume to w in .ccvol format.
func (v *Volume) Save(w io.Writer) error {
	if _, err := io.WriteString(w, volMagic); err != nil {
		return err
	}
	hdr := []uint32{volVersion, uint32(v.D), uint32(v.H), uint32(v.W)}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, v.Data)
}

// Load reads a .ccvol volume from r.
func Load(r io.Reader) (*Volume, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("volume: reading magic: %w", err)
	}
	if string(magic) != volMagic {
		return nil, fmt.Errorf("volume: bad magic %q (not a .ccvol file)", magic)
	}
	var hdr [4]uint32
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	if hdr[0] != volVersion {
		return nil, fmt.Errorf("volume: unsupported version %d", hdr[0])
	}
	d, h, w := int(hdr[1]), int(hdr[2]), int(hdr[3])
	if d <= 0 || h <= 0 || w <= 0 || d > maxVolDim || h > maxVolDim || w > maxVolDim {
		return nil, fmt.Errorf("volume: implausible dimensions %dx%dx%d", d, h, w)
	}
	v := New(d, h, w)
	if err := binary.Read(r, binary.LittleEndian, v.Data); err != nil {
		return nil, fmt.Errorf("volume: reading %dx%dx%d voxels: %w", d, h, w, err)
	}
	return v, nil
}

// SaveFile writes the volume to path in .ccvol format.
func (v *Volume) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := v.Save(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a .ccvol volume from path.
func LoadFile(path string) (*Volume, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(bufio.NewReader(f))
}
