package volume

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestVolumeAccessors(t *testing.T) {
	v := New(2, 3, 4)
	v.Set(7, 1, 2, 3)
	if v.At(1, 2, 3) != 7 {
		t.Fatal("Set/At round trip failed")
	}
	s := v.Slice(1)
	if s[2*4+3] != 7 {
		t.Fatal("Slice does not alias storage")
	}
	c := v.Clone()
	c.Set(9, 0, 0, 0)
	if v.At(0, 0, 0) == 9 {
		t.Fatal("Clone shares storage")
	}
}

func TestFromSlices(t *testing.T) {
	s0 := []float32{1, 2, 3, 4}
	s1 := []float32{5, 6, 7, 8}
	v := FromSlices(2, 2, s0, s1)
	if v.D != 2 || v.At(1, 1, 1) != 8 {
		t.Fatalf("FromSlices wrong: %+v", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong slice size")
		}
	}()
	FromSlices(2, 2, []float32{1})
}

func TestTensorRoundTrip(t *testing.T) {
	v := New(2, 2, 2)
	v.Set(5, 1, 0, 1)
	tt := v.Tensor()
	if tt.At(1, 0, 1) != 5 {
		t.Fatal("Tensor view wrong")
	}
	back := FromTensor(tt)
	back.Set(6, 0, 0, 0)
	if v.At(0, 0, 0) != 6 {
		t.Fatal("FromTensor should share storage")
	}
}

func TestNormalizeRoundTrip(t *testing.T) {
	v := New(1, 2, 2)
	copy(v.Data, []float32{-1000, -500, 0, 1000})
	n := v.Normalized(-1000, 1000)
	if n.Data[0] != 0 || n.Data[3] != 1 {
		t.Fatalf("Normalized = %v", n.Data)
	}
	d := n.Denormalized(-1000, 1000)
	for i := range v.Data {
		if math.Abs(float64(d.Data[i]-v.Data[i])) > 0.5 {
			t.Fatalf("denormalize mismatch at %d: %v vs %v", i, d.Data[i], v.Data[i])
		}
	}
}

func TestApplyMask(t *testing.T) {
	v := New(1, 2, 2)
	copy(v.Data, []float32{1, 2, 3, 4})
	masked := v.ApplyMask([]bool{true, false, false, true})
	want := []float32{1, 0, 0, 4}
	for i := range want {
		if masked.Data[i] != want[i] {
			t.Fatalf("masked = %v, want %v", masked.Data, want)
		}
	}
	if v.Data[1] != 2 {
		t.Fatal("ApplyMask must not mutate the input")
	}
}

func TestMinMax(t *testing.T) {
	v := New(1, 1, 3)
	copy(v.Data, []float32{5, -2, 3})
	lo, hi := v.MinMax()
	if lo != -2 || hi != 5 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
}

func TestAbsDiff(t *testing.T) {
	a := New(1, 1, 2)
	b := New(1, 1, 2)
	copy(a.Data, []float32{3, -1})
	copy(b.Data, []float32{1, 2})
	d := a.AbsDiff(b)
	if d.Data[0] != 2 || d.Data[1] != 3 {
		t.Fatalf("AbsDiff = %v", d.Data)
	}
}

func TestSliceImageWindowing(t *testing.T) {
	v := New(1, 1, 3)
	copy(v.Data, []float32{-2000, 0, 2000})
	img := v.SliceImage(0, -1000, 1000)
	if img.GrayAt(0, 0).Y != 0 {
		t.Fatalf("below-window pixel = %d, want 0", img.GrayAt(0, 0).Y)
	}
	if img.GrayAt(2, 0).Y != 254 {
		t.Fatalf("above-window pixel = %d, want 254", img.GrayAt(2, 0).Y)
	}
	mid := img.GrayAt(1, 0).Y
	if mid < 120 || mid > 135 {
		t.Fatalf("mid-window pixel = %d, want ~127", mid)
	}
}

func TestSavePNG(t *testing.T) {
	v := New(1, 4, 4)
	for i := range v.Data {
		v.Data[i] = float32(i * 10)
	}
	path := filepath.Join(t.TempDir(), "slice.png")
	if err := v.SavePNG(path, 0, 0, 160); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil || info.Size() == 0 {
		t.Fatalf("PNG not written: %v", err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	v := New(2, 3, 4)
	for i := range v.Data {
		v.Data[i] = float32(i) - 500
	}
	path := filepath.Join(t.TempDir(), "scan.ccvol")
	if err := v.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.D != 2 || got.H != 3 || got.W != 4 {
		t.Fatalf("dims %dx%dx%d", got.D, got.H, got.W)
	}
	for i := range v.Data {
		if got.Data[i] != v.Data[i] {
			t.Fatalf("voxel %d = %v, want %v", i, got.Data[i], v.Data[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.ccvol")
	if err := os.WriteFile(path, []byte("not a volume at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("expected error for junk file")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	v := New(4, 8, 8)
	path := filepath.Join(t.TempDir(), "trunc.ccvol")
	if err := v.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("expected error for truncated file")
	}
}
