// Package volume provides the 3D CT volume container shared by the
// pipeline stages, plus Hounsfield windowing and image export (PNG/PGM)
// for visual inspection of slices, sinograms, and difference maps.
package volume

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"os"

	"computecovid19/internal/ctsim"
	"computecovid19/internal/tensor"
)

// Volume is a 3D scalar field in Hounsfield units (or any scalar unit),
// stored as D row-major slices of H×W.
type Volume struct {
	D, H, W int
	Data    []float32
}

// New allocates a zero volume.
func New(d, h, w int) *Volume {
	return &Volume{D: d, H: h, W: w, Data: make([]float32, d*h*w)}
}

// FromSlices builds a volume from per-slice data (each of length H*W).
func FromSlices(h, w int, slices ...[]float32) *Volume {
	v := New(len(slices), h, w)
	for z, s := range slices {
		if len(s) != h*w {
			panic(fmt.Sprintf("volume: slice %d has %d pixels, want %d", z, len(s), h*w))
		}
		copy(v.Slice(z), s)
	}
	return v
}

// Slice returns slice z as a live row-major view.
func (v *Volume) Slice(z int) []float32 {
	return v.Data[z*v.H*v.W : (z+1)*v.H*v.W]
}

// SliceRange returns slices [z0, z1) as a volume view sharing storage —
// the zero-copy extraction the cluster gateway's scatter planner uses to
// shard a scan across replicas. Writes through the view land in v.
func (v *Volume) SliceRange(z0, z1 int) *Volume {
	if z0 < 0 || z1 > v.D || z0 >= z1 {
		panic(fmt.Sprintf("volume: SliceRange [%d, %d) outside [0, %d)", z0, z1, v.D))
	}
	return &Volume{D: z1 - z0, H: v.H, W: v.W, Data: v.Data[z0*v.H*v.W : z1*v.H*v.W]}
}

// CopySliceRange copies slices [z0, z1) into dst (caller-owned, length
// (z1-z0)*H*W) — the gather-side counterpart of SliceRange for buffers
// that must outlive v.
func (v *Volume) CopySliceRange(dst []float32, z0, z1 int) {
	src := v.SliceRange(z0, z1).Data
	if len(dst) != len(src) {
		panic(fmt.Sprintf("volume: CopySliceRange dst has %d values, want %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// At returns the voxel at (z, y, x).
func (v *Volume) At(z, y, x int) float32 { return v.Data[(z*v.H+y)*v.W+x] }

// Set stores a voxel at (z, y, x).
func (v *Volume) Set(val float32, z, y, x int) { v.Data[(z*v.H+y)*v.W+x] = val }

// Clone returns a deep copy.
func (v *Volume) Clone() *Volume {
	c := New(v.D, v.H, v.W)
	copy(c.Data, v.Data)
	return c
}

// Tensor views the volume as a (D, H, W) tensor sharing storage.
func (v *Volume) Tensor() *tensor.Tensor {
	return tensor.FromSlice(v.Data, v.D, v.H, v.W)
}

// FromTensor wraps a rank-3 (D,H,W) tensor as a volume sharing storage.
func FromTensor(t *tensor.Tensor) *Volume {
	if t.Rank() != 3 {
		panic(fmt.Sprintf("volume: want rank-3 tensor, got %v", t.Shape))
	}
	return &Volume{D: t.Shape[0], H: t.Shape[1], W: t.Shape[2], Data: t.Data}
}

// Normalized returns a copy mapped from the HU window [lo, hi] to
// [0, 1], the network input convention (§3.1.1).
func (v *Volume) Normalized(lo, hi float64) *Volume {
	out := New(v.D, v.H, v.W)
	for i, x := range v.Data {
		out.Data[i] = float32(ctsim.NormalizeHU(float64(x), lo, hi))
	}
	return out
}

// Denormalized maps a [0,1] volume back to the HU window [lo, hi].
func (v *Volume) Denormalized(lo, hi float64) *Volume {
	out := New(v.D, v.H, v.W)
	for i, x := range v.Data {
		out.Data[i] = float32(ctsim.DenormalizeHU(float64(x), lo, hi))
	}
	return out
}

// ApplyMask zeroes voxels where mask is false (mask length D*H*W),
// producing the segmented volume the classifier consumes (§3.2).
func (v *Volume) ApplyMask(mask []bool) *Volume {
	if len(mask) != len(v.Data) {
		panic("volume: mask size mismatch")
	}
	out := v.Clone()
	for i, keep := range mask {
		if !keep {
			out.Data[i] = 0
		}
	}
	return out
}

// MinMax returns the smallest and largest voxel values.
func (v *Volume) MinMax() (float32, float32) {
	lo, hi := v.Data[0], v.Data[0]
	for _, x := range v.Data[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// SliceImage renders slice z as an 8-bit grayscale image over the value
// window [lo, hi].
func (v *Volume) SliceImage(z int, lo, hi float64) *image.Gray {
	img := image.NewGray(image.Rect(0, 0, v.W, v.H))
	s := v.Slice(z)
	for y := 0; y < v.H; y++ {
		for x := 0; x < v.W; x++ {
			val := (float64(s[y*v.W+x]) - lo) / (hi - lo)
			if val < 0 {
				val = 0
			} else if val > 1 {
				val = 1
			}
			img.SetGray(x, y, color.Gray{Y: uint8(val*254 + 0.5)})
		}
	}
	return img
}

// SavePNG writes slice z as a PNG over the value window [lo, hi].
func (v *Volume) SavePNG(path string, z int, lo, hi float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := png.Encode(f, v.SliceImage(z, lo, hi)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// AbsDiff returns |v - o| voxelwise — the paper's Figure 12 difference
// maps.
func (v *Volume) AbsDiff(o *Volume) *Volume {
	if v.D != o.D || v.H != o.H || v.W != o.W {
		panic("volume: AbsDiff shape mismatch")
	}
	out := New(v.D, v.H, v.W)
	for i := range v.Data {
		d := v.Data[i] - o.Data[i]
		if d < 0 {
			d = -d
		}
		out.Data[i] = d
	}
	return out
}
