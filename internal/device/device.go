// Package device models the heterogeneous platforms of the paper's
// evaluation (Table 4): four GPUs, a Xeon CPU, and an Arria 10 FPGA. We
// have none of this hardware, so runtimes are *projected* through a
// roofline model driven by the analytic operation counts of
// internal/kernels:
//
//	t_class = max( effectiveBytes / achievableBandwidth,
//	               flops / peakCompute )
//
// where effectiveBytes discounts the raw Table 6 load/store counts by a
// per-kind, per-kernel-class cache-reuse factor. The paper itself
// observes that DDnet inference "tracks with the memory bandwidth of the
// platforms" (§5.1.3), which is why a bandwidth-centric model reproduces
// its tables.
//
// Calibration: the reuse factors and per-platform bandwidth
// efficiencies are fitted once against three anchor rows of the paper's
// Table 5 — Nvidia V100, Xeon Gold 6128, and the Arria 10 with
// FPGA-specific optimizations — and then applied unchanged to every
// other platform, variant, and experiment. What the model must (and
// does) reproduce is the *shape* of Tables 4, 5 and 7: platform
// ordering, the dominance of the deconvolution kernel, the collapse of
// the baseline scatter deconvolution, and the marginal effect of
// prefetching/unrolling on memory-bound kernels. The FPGA's
// Table 7 column additionally models the "portable but not
// performance-portable" effect (§5.1.3) with a reduced pre-optimization
// bandwidth, the ×5 vectorization of the deconvolution, and the runtime
// reconfiguration overhead of §4.2.3.
package device

import (
	"fmt"

	"computecovid19/internal/kernels"
)

// Kind classifies a platform.
type Kind int

// Platform kinds.
const (
	CPU Kind = iota
	GPU
	FPGA
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	case FPGA:
		return "FPGA"
	default:
		return "?"
	}
}

// Platform is one row of the paper's Table 4 hardware catalog plus the
// fitted model parameters.
type Platform struct {
	Name      string
	Kind      Kind
	Cores     int
	CoreLabel string // "CUDA cores", "Stream Proc.", "CPU cores", "CUs"
	// BandwidthGBs is the peak memory bandwidth (Table 4).
	BandwidthGBs float64
	// FreqMHz is the maximum clock (Table 4).
	FreqMHz int
	// PeakGFLOPs is the theoretical FP32 peak.
	PeakGFLOPs float64

	// effBW is the fitted fraction of peak bandwidth the DDnet kernels
	// achieve on this platform.
	effBW float64
	// pytorchFactor is the measured PyTorch/OpenCL runtime ratio from
	// Table 4; zero means PyTorch is not portable to the platform.
	pytorchFactor float64
}

// Catalog returns the paper's six evaluation platforms.
func Catalog() []Platform {
	return []Platform{
		{Name: "Nvidia V100 GPU", Kind: GPU, Cores: 5120, CoreLabel: "CUDA cores",
			BandwidthGBs: 900, FreqMHz: 1380, PeakGFLOPs: 14131, effBW: 1.00, pytorchFactor: 2.2},
		{Name: "Nvidia P100 GPU", Kind: GPU, Cores: 3584, CoreLabel: "CUDA cores",
			BandwidthGBs: 732, FreqMHz: 1328, PeakGFLOPs: 9519, effBW: 0.49, pytorchFactor: 2.9},
		{Name: "AMD Radeon Vega Frontier GPU", Kind: GPU, Cores: 4096, CoreLabel: "Stream Proc.",
			BandwidthGBs: 480, FreqMHz: 1600, PeakGFLOPs: 13107, effBW: 0.75},
		{Name: "Nvidia T4 GPU", Kind: GPU, Cores: 2560, CoreLabel: "CUDA cores",
			BandwidthGBs: 320, FreqMHz: 1590, PeakGFLOPs: 8141, effBW: 0.96, pytorchFactor: 4.4},
		{Name: "Intel Xeon Gold 6128 CPU", Kind: CPU, Cores: 24, CoreLabel: "CPU cores",
			BandwidthGBs: 119, FreqMHz: 3400, PeakGFLOPs: 2611, effBW: 1.00, pytorchFactor: 3.4},
		{Name: "Intel Arria 10 GX 1150 FPGA", Kind: FPGA, Cores: 2, CoreLabel: "CUs",
			BandwidthGBs: 3, FreqMHz: 184, PeakGFLOPs: 1500, effBW: 0.83},
	}
}

// PlatformByName finds a catalog entry.
func PlatformByName(name string) (Platform, error) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("device: unknown platform %q", name)
}

// reuse factors: fraction of the raw Table 6 traffic that reaches DRAM,
// per kind and kernel class. Fitted to the V100, Xeon, and optimized-
// FPGA rows of Table 5. Values above 1 mean the class moves more real
// traffic than the idealized element counts (inter-kernel activation
// spills).
var reuse = map[Kind][3]float64{ // {conv, deconv, other}
	GPU:  {0.40, 0.50, 1.90},
	CPU:  {0.73, 1.20, 3.55},
	FPGA: {0.30, 0.33, 2.60},
}

// variantMult scales each class time by optimization variant, per kind.
// The dominant entry is the baseline scatter deconvolution: on GPUs its
// global-memory read-modify-writes serialize almost completely (the
// paper's V100 goes 63.82 s → 0.10 s with REF).
var variantMult = map[Kind]map[kernels.Variant][3]float64{
	GPU: {
		kernels.Baseline: {1.5, 1080, 1},
		kernels.REF:      {1, 1, 1},
		kernels.REFPF:    {0.97, 0.97, 1},
		kernels.REFPFLU:  {0.93, 0.93, 1},
	},
	CPU: {
		kernels.Baseline: {2.5, 5.0, 1},
		kernels.REF:      {1, 1, 1},
		kernels.REFPF:    {0.87, 0.87, 1},
		kernels.REFPFLU:  {0.84, 0.84, 1},
	},
	FPGA: { // portable (non-§4.2.3) kernels; see fpgaPortableBWFraction
		kernels.Baseline: {2.13, 2.13, 2.13},
		kernels.REF:      {1, 1, 1},
		kernels.REFPF:    {0.98, 0.98, 0.98},
		kernels.REFPFLU:  {0.50, 0.50, 0.50},
	},
}

const (
	// fpgaPortableBWFraction models the §5.1.3 observation that
	// GPU-shaped OpenCL kernels are functionally but not performance
	// portable to the FPGA: without vendor attributes the memory system
	// reaches only a fraction of its burst bandwidth.
	fpgaPortableBWFraction = 0.202
	// fpgaVectorization is the ×5 manual vectorization applied to the
	// deconvolution kernel in the FPGA-specific optimization set.
	fpgaVectorization = 5.0
	// fpgaReconfigSeconds is the runtime-reconfiguration overhead of
	// swapping the convolution and deconvolution bitstreams (§4.2.3).
	fpgaReconfigSeconds = 2.0
)

// ClassSeconds is a projected per-kernel-class runtime (Table 5 rows).
type ClassSeconds struct {
	Conv, Deconv, Other float64
}

// Total returns the end-to-end seconds.
func (c ClassSeconds) Total() float64 { return c.Conv + c.Deconv + c.Other }

// Project estimates one DDnet inference on p for the given operation
// counts and optimization variant. fpgaOptimized selects the §4.2.3
// vendor-specific kernel set (only meaningful for FPGA platforms); it
// corresponds to the Table 4/5 FPGA numbers, while fpgaOptimized=false
// corresponds to the Table 7 column.
func (p Platform) Project(cc kernels.ClassCounts, v kernels.Variant, fpgaOptimized bool) ClassSeconds {
	r := reuse[p.Kind]
	bw := p.BandwidthGBs * 1e9 * p.effBW
	if p.Kind == FPGA && !fpgaOptimized {
		bw *= fpgaPortableBWFraction
	}
	classTime := func(c kernels.Counters, reuseFrac float64) float64 {
		mem := float64(c.Bytes()) * reuseFrac / bw
		cmp := float64(c.Flops) / (p.PeakGFLOPs * 1e9)
		if cmp > mem {
			return cmp
		}
		return mem
	}
	out := ClassSeconds{
		Conv:   classTime(cc.Conv, r[0]),
		Deconv: classTime(cc.Deconv, r[1]),
		Other:  classTime(cc.Other, r[2]),
	}
	if p.Kind == FPGA && fpgaOptimized {
		out.Deconv /= fpgaVectorization
		out.Other += fpgaReconfigSeconds
		return out
	}
	m := variantMult[p.Kind][v]
	out.Conv *= m[0]
	out.Deconv *= m[1]
	out.Other *= m[2]
	return out
}

// PyTorchSeconds projects the PyTorch runtime of Table 4 (OpenCL time ×
// the measured framework overhead ratio). ok is false where the paper
// reports "–" (PyTorch not portable to the platform).
func (p Platform) PyTorchSeconds(cc kernels.ClassCounts) (sec float64, ok bool) {
	if p.pytorchFactor == 0 {
		return 0, false
	}
	best := p.Project(cc, kernels.REFPFLU, p.Kind == FPGA)
	return best.Total() * p.pytorchFactor, true
}
