package device

import (
	"math"
	"testing"

	"computecovid19/internal/ddnet"
	"computecovid19/internal/kernels"
)

func paperCounts() kernels.ClassCounts {
	return kernels.DDnetCounts(ddnet.PaperConfig().Arch(), 512)
}

func within(got, want, relTol float64) bool {
	return math.Abs(got-want) <= relTol*want
}

func TestCatalogMatchesTable4Hardware(t *testing.T) {
	cat := Catalog()
	if len(cat) != 6 {
		t.Fatalf("catalog has %d platforms, want 6", len(cat))
	}
	v100 := cat[0]
	if v100.Cores != 5120 || v100.BandwidthGBs != 900 || v100.FreqMHz != 1380 {
		t.Fatalf("V100 specs wrong: %+v", v100)
	}
	xeon := cat[4]
	if xeon.Kind != CPU || xeon.Cores != 24 || xeon.BandwidthGBs != 119 {
		t.Fatalf("Xeon specs wrong: %+v", xeon)
	}
	fpga := cat[5]
	if fpga.Kind != FPGA || fpga.Cores != 2 || fpga.BandwidthGBs != 3 {
		t.Fatalf("Arria specs wrong: %+v", fpga)
	}
}

func TestPlatformByName(t *testing.T) {
	if _, err := PlatformByName("Nvidia V100 GPU"); err != nil {
		t.Fatal(err)
	}
	if _, err := PlatformByName("TPU v9"); err == nil {
		t.Fatal("unknown platform should error")
	}
}

// Anchor rows: the model was calibrated on V100, Xeon, and optimized
// FPGA; those must land close to Table 5.
func TestModelReproducesAnchorRows(t *testing.T) {
	cc := paperCounts()
	v100, _ := PlatformByName("Nvidia V100 GPU")
	got := v100.Project(cc, kernels.REF, false)
	if !within(got.Conv, 0.036, 0.30) {
		t.Errorf("V100 conv = %.3fs, paper 0.036s", got.Conv)
	}
	if !within(got.Deconv, 0.059, 0.30) {
		t.Errorf("V100 deconv = %.3fs, paper 0.059s", got.Deconv)
	}
	if !within(got.Total(), 0.10, 0.35) {
		t.Errorf("V100 total = %.3fs, paper 0.10s", got.Total())
	}

	xeon, _ := PlatformByName("Intel Xeon Gold 6128 CPU")
	gotX := xeon.Project(cc, kernels.REF, false)
	if !within(gotX.Conv, 0.495, 0.35) {
		t.Errorf("Xeon conv = %.3fs, paper 0.495s", gotX.Conv)
	}
	if !within(gotX.Deconv, 1.078, 0.35) {
		t.Errorf("Xeon deconv = %.3fs, paper 1.078s", gotX.Deconv)
	}

	fpga, _ := PlatformByName("Intel Arria 10 GX 1150 FPGA")
	gotF := fpga.Project(cc, kernels.REFPFLU, true)
	if !within(gotF.Conv, 9.819, 0.40) {
		t.Errorf("FPGA conv = %.3fs, paper 9.819s", gotF.Conv)
	}
	if !within(gotF.Deconv, 2.839, 0.40) {
		t.Errorf("FPGA deconv = %.3fs, paper 2.839s", gotF.Deconv)
	}
	if !within(gotF.Total(), 16.74, 0.40) {
		t.Errorf("FPGA total = %.3fs, paper 16.74s", gotF.Total())
	}
}

// Table 4 shape: OpenCL runtime ordering V100 < {P100, Vega} < T4 < CPU
// < FPGA.
func TestTable4Ordering(t *testing.T) {
	cc := paperCounts()
	var totals []float64
	for _, p := range Catalog() {
		totals = append(totals, p.Project(cc, kernels.REFPFLU, p.Kind == FPGA).Total())
	}
	v100, p100, vega, t4, cpu, fpga := totals[0], totals[1], totals[2], totals[3], totals[4], totals[5]
	if !(v100 < p100 && v100 < vega && v100 < t4) {
		t.Fatalf("V100 must be fastest: %v", totals)
	}
	if !(p100 < cpu && vega < cpu && t4 < cpu) {
		t.Fatalf("every GPU must beat the CPU: %v", totals)
	}
	if !(cpu < fpga) {
		t.Fatalf("CPU must beat the FPGA: %v", totals)
	}
}

// Table 7 shape: the ladder is monotone per platform and the baseline
// scatter deconvolution collapses on GPUs by orders of magnitude.
func TestTable7LadderShape(t *testing.T) {
	cc := paperCounts()
	for _, p := range Catalog() {
		base := p.Project(cc, kernels.Baseline, false).Total()
		ref := p.Project(cc, kernels.REF, false).Total()
		pf := p.Project(cc, kernels.REFPF, false).Total()
		lu := p.Project(cc, kernels.REFPFLU, false).Total()
		if !(base > ref && ref >= pf && pf >= lu) {
			t.Fatalf("%s ladder not monotone: %v %v %v %v", p.Name, base, ref, pf, lu)
		}
		if p.Kind == GPU && base/ref < 100 {
			t.Fatalf("%s baseline/REF = %.0f×, paper shows orders of magnitude", p.Name, base/ref)
		}
		if p.Kind == CPU && (base/ref < 2 || base/ref > 6) {
			t.Fatalf("CPU baseline/REF = %.1f×, paper shows ≈3.3×", base/ref)
		}
		if p.Kind == GPU && (pf/ref < 0.90 || lu/ref < 0.85) {
			t.Fatalf("%s PF/LU should be marginal on memory-bound GPUs", p.Name)
		}
	}
}

// Table 4 shape: PyTorch is slower than OpenCL everywhere it runs, by
// 2–4.5×, and is unavailable on Vega and the FPGA.
func TestPyTorchProjection(t *testing.T) {
	cc := paperCounts()
	for _, p := range Catalog() {
		pt, ok := p.PyTorchSeconds(cc)
		switch p.Name {
		case "AMD Radeon Vega Frontier GPU", "Intel Arria 10 GX 1150 FPGA":
			if ok {
				t.Fatalf("%s should not have a PyTorch runtime", p.Name)
			}
		default:
			if !ok {
				t.Fatalf("%s should have a PyTorch runtime", p.Name)
			}
			ocl := p.Project(cc, kernels.REFPFLU, false).Total()
			ratio := pt / ocl
			if ratio < 2 || ratio > 4.5 {
				t.Fatalf("%s PyTorch/OpenCL = %.1f, paper shows 2.0–4.4", p.Name, ratio)
			}
		}
	}
}

// §5.1.3: performance tracks memory bandwidth — kernels must be
// memory-bound (memory term >= compute term) on every platform.
func TestKernelsAreMemoryBound(t *testing.T) {
	cc := paperCounts()
	for _, p := range Catalog() {
		if p.Kind == FPGA {
			continue // the FPGA's compute fabric is the exception
		}
		got := p.Project(cc, kernels.REF, false)
		cmpTime := float64(cc.Conv.Flops) / (p.PeakGFLOPs * 1e9)
		if cmpTime > got.Conv {
			t.Fatalf("%s conv compute-bound in model; paper says memory-bound", p.Name)
		}
	}
}

// The FPGA reconfiguration overhead must appear in the optimized mode's
// Other class (§4.2.3).
func TestFPGAReconfigOverhead(t *testing.T) {
	cc := paperCounts()
	fpga, _ := PlatformByName("Intel Arria 10 GX 1150 FPGA")
	opt := fpga.Project(cc, kernels.REFPFLU, true)
	if opt.Other < fpgaReconfigSeconds {
		t.Fatalf("optimized FPGA Other = %.2fs, must include %.1fs reconfiguration",
			opt.Other, fpgaReconfigSeconds)
	}
}

// Scaling property: halving the image halves (quadratically) every
// projected time; the model must be monotone in problem size.
func TestProjectionMonotoneInSize(t *testing.T) {
	small := kernels.DDnetCounts(ddnet.PaperConfig().Arch(), 256)
	big := kernels.DDnetCounts(ddnet.PaperConfig().Arch(), 512)
	for _, p := range Catalog() {
		ts := p.Project(small, kernels.REF, false).Total()
		tb := p.Project(big, kernels.REF, false).Total()
		if ts >= tb {
			t.Fatalf("%s: 256px (%.3fs) not faster than 512px (%.3fs)", p.Name, ts, tb)
		}
	}
}
