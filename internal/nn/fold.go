package nn

import (
	"math"

	"computecovid19/internal/kernels"
	"computecovid19/internal/memplan"
)

// Plan compilation: inference-mode BatchNorm is an affine map per
// channel — y = scale·x + shift with scale = γ/√(σ²+ε) and
// shift = β − μ·scale — so a conv→BN pair collapses into a single
// convolution with rescaled weights and a bias, and a BN that cannot
// fold into a neighbouring convolution still collapses its two passes
// (normalize, activate) into one precomputed scale/shift sweep. The
// folds below run once at Pipeline.Warm time (ddnet's plan compiler);
// the fused kernels consume the packed buffers every forward after
// that. Folding happens in float64 and narrows once, mirroring the
// float64 round-trip BatchNorm.Infer performs per call; agreement with
// the unfolded composition is property-tested against the ladder's
// documented ULP budget.

// FoldedConv is one plan-compiled convolution layer: packed weights in
// the (OutC, InC, K, K) layout the GEMM path consumes — BN-rescaled
// when a fold happened, spatially pre-flipped for transposed
// convolutions — plus the fused epilogue (bias and activation). Packed
// buffers are drawn from memplan at compile time and simply dropped on
// plan invalidation (never recycled, so an in-flight forward on a
// stale plan can never read a reused buffer).
type FoldedConv struct {
	W     []float32 // (OutC, InC, K, K), pre-flipped for deconvs
	Bias  []float32 // folded per-output-channel bias; nil when none
	Act   bool      // fused LeakyReLU
	Slope float32
	InC   int
	OutC  int
	K     int
}

// Epilogue returns the kernels-level epilogue of the folded layer.
func (f *FoldedConv) Epilogue() kernels.Epilogue {
	return kernels.Epilogue{Bias: f.Bias, Act: f.Act, Slope: f.Slope}
}

// FoldedBN is a plan-compiled BatchNorm(+LeakyReLU) for positions where
// no neighbouring convolution can absorb it: the per-channel affine is
// precomputed so the forward runs kernels.BNActInfer's single pass.
type FoldedBN struct {
	Scale, Shift []float32
	Slope        float32
}

// bnAffine returns channel ci's inference affine in float64.
func bnAffine(bn *BatchNorm, ci int) (scale, shift float64) {
	is := 1 / math.Sqrt(float64(bn.RunningVar.Data[ci])+float64(bn.Eps))
	g := float64(bn.Gamma.T.Data[ci]) * is
	return g, float64(bn.Beta.T.Data[ci]) - float64(bn.RunningMean.Data[ci])*g
}

func requireEval(bn *BatchNorm) {
	if bn != nil && bn.training {
		panic("nn: BN folding requires eval mode (call SetTraining(false) first)")
	}
}

// FoldConvBN compiles conv(→bn)(→LeakyReLU) into one FoldedConv.
// bn may be nil (no fold: the epilogue carries just the layer bias, if
// any, and the activation). When nothing needs rewriting the packed
// weights alias the layer's own, so unfolded layers cost no copy.
func FoldConvBN(conv *Conv2D, bn *BatchNorm, act bool, slope float32) *FoldedConv {
	requireEval(bn)
	outC, inC, k := conv.W.T.Shape[0], conv.W.T.Shape[1], conv.W.T.Shape[2]
	f := &FoldedConv{Act: act, Slope: slope, InC: inC, OutC: outC, K: k}
	src := conv.W.T.Data
	if bn == nil {
		f.W = src // nothing to rewrite; share the layer's weights
		if conv.B != nil {
			f.Bias = memplan.GetFloats(outC)
			copy(f.Bias, conv.B.T.Data)
		}
		return f
	}
	f.W = memplan.GetFloats(len(src))
	f.Bias = memplan.GetFloats(outC)
	row := inC * k * k
	for co := 0; co < outC; co++ {
		scale, shift := bnAffine(bn, co)
		if conv.B != nil {
			shift += float64(conv.B.T.Data[co]) * scale
		}
		f.Bias[co] = float32(shift)
		for i := co * row; i < (co+1)*row; i++ {
			f.W[i] = float32(float64(src[i]) * scale)
		}
	}
	return f
}

// FoldDeconvBN compiles deconv(→bn)(→LeakyReLU) into one FoldedConv:
// the (InC, OutC, K, K) weights are spatially flipped into the
// convolution layout once (the per-call flip deconvGEMM pays is the
// cold-path fallback) and then BN-rescaled like FoldConvBN.
func FoldDeconvBN(deconv *ConvTranspose2D, bn *BatchNorm, act bool, slope float32) *FoldedConv {
	requireEval(bn)
	inC, outC, k := deconv.W.T.Shape[0], deconv.W.T.Shape[1], deconv.W.T.Shape[2]
	f := &FoldedConv{Act: act, Slope: slope, InC: inC, OutC: outC, K: k}
	f.W = memplan.GetFloats(len(deconv.W.T.Data))
	kernels.FlipDeconvWeights(deconv.W.T.Data, f.W, kernels.ConvShape{InC: inC, OutC: outC, K: k})
	row := inC * k * k
	for co := 0; co < outC; co++ {
		var scale, shift float64 = 1, 0
		if bn != nil {
			scale, shift = bnAffine(bn, co)
		}
		if deconv.B != nil {
			shift += float64(deconv.B.T.Data[co]) * scale
		}
		if bn != nil {
			for i := co * row; i < (co+1)*row; i++ {
				f.W[i] = float32(float64(f.W[i]) * scale)
			}
		}
		if bn != nil || deconv.B != nil {
			if f.Bias == nil {
				f.Bias = memplan.GetFloats(outC)
			}
			f.Bias[co] = float32(shift)
		}
	}
	return f
}

// FoldBNAct compiles a standalone bn→LeakyReLU into the single-pass
// scale/shift form kernels.BNActInfer consumes.
func FoldBNAct(bn *BatchNorm, slope float32) *FoldedBN {
	requireEval(bn)
	c := len(bn.Gamma.T.Data)
	f := &FoldedBN{
		Scale: memplan.GetFloats(c),
		Shift: memplan.GetFloats(c),
		Slope: slope,
	}
	for ci := 0; ci < c; ci++ {
		scale, shift := bnAffine(bn, ci)
		f.Scale[ci] = float32(scale)
		f.Shift[ci] = float32(shift)
	}
	return f
}
