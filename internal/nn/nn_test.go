package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"computecovid19/internal/ag"
	"computecovid19/internal/tensor"
)

func TestConv2DLayerShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewConv2D(rng, 3, 8, 5, 1, 2, true, 0.01)
	x := ag.Const(tensor.New(2, 3, 12, 12))
	y := l.Forward(x)
	want := []int{2, 8, 12, 12}
	for i, d := range want {
		if y.T.Shape[i] != d {
			t.Fatalf("conv layer out shape %v, want %v", y.T.Shape, want)
		}
	}
	if len(l.Params()) != 2 {
		t.Fatalf("conv with bias has %d params, want 2", len(l.Params()))
	}
}

func TestSequentialComposes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewSequential(
		NewConv2D(rng, 1, 4, 3, 1, 1, true, 0.1),
		LeakyReLU(0.01),
		MaxPool2D(3, 2, 1),
		NewConv2D(rng, 4, 2, 1, 1, 0, true, 0.1),
	)
	x := ag.Const(tensor.New(1, 1, 8, 8).RandN(rng, 0, 1))
	y := net.Forward(x)
	want := []int{1, 2, 4, 4}
	for i, d := range want {
		if y.T.Shape[i] != d {
			t.Fatalf("sequential out shape %v, want %v", y.T.Shape, want)
		}
	}
	if got := len(net.Params()); got != 4 {
		t.Fatalf("sequential params = %d, want 4", got)
	}
}

func TestDenseBlock2DChannelGrowth(t *testing.T) {
	// Table 2: dense block maps 16 channels to 80 (4 layers × growth 16).
	rng := rand.New(rand.NewSource(3))
	b := NewDenseBlock2D(rng, 16, 16, 4, 5, 0.1)
	x := ag.Const(tensor.New(1, 16, 8, 8).RandN(rng, 0, 1))
	y := b.Forward(x)
	if y.T.Shape[1] != 80 {
		t.Fatalf("dense block output channels = %d, want 80", y.T.Shape[1])
	}
	if y.T.Shape[2] != 8 || y.T.Shape[3] != 8 {
		t.Fatalf("dense block must preserve spatial dims, got %v", y.T.Shape)
	}
	if b.OutChannels(16) != 80 {
		t.Fatalf("OutChannels(16) = %d, want 80", b.OutChannels(16))
	}
}

func TestDenseBlock3DChannelGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := NewDenseBlock3D(rng, 4, 2, 3, 3, 0.1)
	x := ag.Const(tensor.New(1, 4, 4, 4, 4).RandN(rng, 0, 1))
	y := b.Forward(x)
	if y.T.Shape[1] != 10 {
		t.Fatalf("3D dense block output channels = %d, want 10", y.T.Shape[1])
	}
}

func TestSGDReducesLoss(t *testing.T) {
	// Fit y = 2x with a single linear layer.
	rng := rand.New(rand.NewSource(5))
	l := NewLinear(rng, 1, 1, 0.1)
	opt := NewSGD(l.Params(), 0.1, 0.9)
	x := ag.Const(tensor.FromSlice([]float32{1, 2, 3, 4}, 4, 1))
	y := ag.Const(tensor.FromSlice([]float32{2, 4, 6, 8}, 4, 1))
	var first, last float64
	for i := 0; i < 200; i++ {
		opt.ZeroGrad()
		loss := ag.MSELoss(l.Forward(x), y)
		loss.Backward()
		opt.Step()
		if i == 0 {
			first = float64(loss.Scalar())
		}
		last = float64(loss.Scalar())
	}
	if last >= first/100 {
		t.Fatalf("SGD did not converge: first %v, last %v", first, last)
	}
	if math.Abs(float64(l.W.T.Data[0])-2) > 0.05 {
		t.Fatalf("fitted slope = %v, want ~2", l.W.T.Data[0])
	}
}

func TestAdamReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewSequential(
		NewLinear(rng, 2, 8, 0.5),
		&Func{F: ag.Tanh},
		NewLinear(rng, 8, 1, 0.5),
	)
	opt := NewAdam(net.Params(), 0.05)
	// XOR-ish regression task.
	x := ag.Const(tensor.FromSlice([]float32{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2))
	y := ag.Const(tensor.FromSlice([]float32{0, 1, 1, 0}, 4, 1))
	var first, last float64
	for i := 0; i < 300; i++ {
		opt.ZeroGrad()
		loss := ag.MSELoss(net.Forward(x), y)
		loss.Backward()
		opt.Step()
		if i == 0 {
			first = float64(loss.Scalar())
		}
		last = float64(loss.Scalar())
	}
	if last > first/10 || last > 0.05 {
		t.Fatalf("Adam did not fit XOR: first %v, last %v", first, last)
	}
}

func TestExponentialLRDecay(t *testing.T) {
	opt := NewSGD(nil, 1e-4, 0)
	sched := NewExponentialLR(opt, 0.8)
	for i := 0; i < 3; i++ {
		sched.StepEpoch()
	}
	want := 1e-4 * 0.8 * 0.8 * 0.8
	if math.Abs(opt.LR()-want) > 1e-12 {
		t.Fatalf("LR after 3 epochs = %v, want %v", opt.LR(), want)
	}
}

func TestGradNormAndClip(t *testing.T) {
	p := ag.Param(tensor.FromSlice([]float32{1, 1}, 2))
	ag.Sum(ag.MulConst(p, 3)).Backward()
	norm := GradNorm([]*ag.Value{p})
	want := math.Sqrt(18)
	if math.Abs(norm-want) > 1e-6 {
		t.Fatalf("GradNorm = %v, want %v", norm, want)
	}
	pre := ClipGradNorm([]*ag.Value{p}, 1.0)
	if math.Abs(pre-want) > 1e-6 {
		t.Fatalf("ClipGradNorm returned %v, want %v", pre, want)
	}
	if post := GradNorm([]*ag.Value{p}); math.Abs(post-1) > 1e-5 {
		t.Fatalf("post-clip norm = %v, want 1", post)
	}
}

func TestNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewConv2D(rng, 2, 4, 3, 1, 1, true, 0.1)
	if got := NumParams(l.Params()); got != 4*2*3*3+4 {
		t.Fatalf("NumParams = %d, want %d", got, 4*2*3*3+4)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	build := func() Module {
		r := rand.New(rand.NewSource(99))
		return NewSequential(
			NewConv2D(r, 1, 4, 3, 1, 1, true, 0.1),
			NewBatchNorm(4),
			LeakyReLU(0.01),
			NewConv2D(r, 4, 1, 3, 1, 1, true, 0.1),
		)
	}
	src := build()
	// Mutate parameters and batch-norm state so defaults don't mask bugs.
	for _, p := range src.Params() {
		p.T.RandN(rng, 0, 1)
	}
	x := ag.Const(tensor.New(2, 1, 6, 6).RandN(rng, 0, 1))
	src.Forward(x) // updates running stats in training mode

	var buf bytes.Buffer
	if err := SaveModule(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := build()
	if err := LoadModule(&buf, dst); err != nil {
		t.Fatal(err)
	}
	src.SetTraining(false)
	dst.SetTraining(false)
	y1 := src.Forward(x)
	y2 := dst.Forward(x)
	if !y1.T.AllClose(y2.T, 1e-6) {
		t.Fatal("save/load round trip changed the module output")
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := NewConv2D(rng, 1, 2, 3, 1, 1, true, 0.1)
	var buf bytes.Buffer
	if err := SaveModule(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := NewConv2D(rng, 1, 3, 3, 1, 1, true, 0.1) // different out channels
	if err := LoadModule(&buf, dst); err == nil {
		t.Fatal("expected error loading into mismatched architecture")
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	src := NewLinear(rng, 3, 2, 0.5)
	path := t.TempDir() + "/model.cc19"
	if err := SaveModuleFile(path, src); err != nil {
		t.Fatal(err)
	}
	dst := NewLinear(rand.New(rand.NewSource(11)), 3, 2, 0.5)
	if err := LoadModuleFile(path, dst); err != nil {
		t.Fatal(err)
	}
	if !src.W.T.AllClose(dst.W.T, 0) {
		t.Fatal("file round trip changed weights")
	}
}

func TestBatchNormLayerModes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	bn := NewBatchNorm(2)
	x := ag.Const(tensor.New(4, 2, 3, 3).RandN(rng, 10, 2))
	bn.SetTraining(true)
	yTrain := bn.Forward(x)
	if math.Abs(yTrain.T.Mean()) > 1e-3 {
		t.Fatalf("training-mode BN mean = %v, want ~0", yTrain.T.Mean())
	}
	bn.SetTraining(false)
	yEval := bn.Forward(x)
	// Eval uses running stats (after a single momentum-0.1 update they are
	// still far from batch stats), so outputs must differ.
	if yTrain.T.AllClose(yEval.T, 1e-3) {
		t.Fatal("eval output should differ from training output after one update")
	}
}

// TestAdamStateRoundTrip checks the checkpointing accessors: copying a
// trained optimizer's moments and step counter into a fresh optimizer
// makes the two produce identical updates thereafter.
func TestAdamStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mkParams := func() []*ag.Value {
		w := tensor.New(4, 3).RandN(rng, 0, 1)
		return []*ag.Value{ag.Param(w.Clone())}
	}
	grads := func(ps []*ag.Value, seed int64) {
		g := rand.New(rand.NewSource(seed))
		for _, p := range ps {
			p.Grad = tensor.New(p.T.Shape...).RandN(g, 0, 1)
		}
	}

	p1 := mkParams()
	a1 := NewAdam(p1, 0.01)
	for s := 0; s < 5; s++ {
		grads(p1, int64(s))
		a1.Step()
	}

	// Fresh params + optimizer, restored from a1's state.
	p2 := mkParams()
	for i := range p2 {
		copy(p2[i].T.Data, p1[i].T.Data)
	}
	a2 := NewAdam(p2, 0.01)
	m1, v1 := a1.Moments()
	m2, v2 := a2.Moments()
	for i := range m1 {
		copy(m2[i].Data, m1[i].Data)
		copy(v2[i].Data, v1[i].Data)
	}
	a2.SetStepCount(a1.StepCount())
	if a2.StepCount() != 5 {
		t.Fatalf("restored step count %d, want 5", a2.StepCount())
	}

	for s := 5; s < 10; s++ {
		grads(p1, int64(s))
		grads(p2, int64(s))
		a1.Step()
		a2.Step()
	}
	for i := range p1 {
		for j := range p1[i].T.Data {
			if p1[i].T.Data[j] != p2[i].T.Data[j] {
				t.Fatalf("param %d elem %d diverged after state restore: %v vs %v",
					i, j, p1[i].T.Data[j], p2[i].T.Data[j])
			}
		}
	}
}
