package nn

import (
	"math"

	"computecovid19/internal/ag"
	"computecovid19/internal/tensor"
)

// Optimizer updates a set of parameters from their accumulated
// gradients.
type Optimizer interface {
	// Step applies one update using the gradients currently stored on the
	// parameters.
	Step()
	// ZeroGrad clears the gradients of every managed parameter.
	ZeroGrad()
	// SetLR changes the learning rate (used by schedulers).
	SetLR(lr float64)
	// LR reports the current learning rate.
	LR() float64
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	params   []*ag.Value
	lr       float64
	momentum float64
	velocity []*tensor.Tensor
}

// NewSGD builds an SGD optimizer over params.
func NewSGD(params []*ag.Value, lr, momentum float64) *SGD {
	s := &SGD{params: params, lr: lr, momentum: momentum}
	if momentum != 0 {
		s.velocity = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.New(p.T.Shape...)
		}
	}
	return s
}

// Step applies p ← p − lr·g (with momentum when configured).
func (s *SGD) Step() {
	for i, p := range s.params {
		if p.Grad == nil {
			continue
		}
		if s.velocity != nil {
			v := s.velocity[i]
			for j := range v.Data {
				v.Data[j] = float32(s.momentum)*v.Data[j] + p.Grad.Data[j]
				p.T.Data[j] -= float32(s.lr) * v.Data[j]
			}
		} else {
			p.T.AxpyInPlace(float32(-s.lr), p.Grad)
		}
	}
}

// ZeroGrad clears every parameter gradient.
func (s *SGD) ZeroGrad() {
	for _, p := range s.params {
		p.ZeroGrad()
	}
}

// SetLR changes the learning rate.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR reports the current learning rate.
func (s *SGD) LR() float64 { return s.lr }

// Adam implements Kingma & Ba's optimizer, the one both DDnet and the
// classifier are trained with in the paper (§3.1.1, §3.3.1).
type Adam struct {
	params []*ag.Value
	lr     float64
	beta1  float64
	beta2  float64
	eps    float64
	t      int
	m, v   []*tensor.Tensor
}

// NewAdam builds an Adam optimizer with the standard β₁=0.9, β₂=0.999,
// ε=1e-8 defaults.
func NewAdam(params []*ag.Value, lr float64) *Adam {
	a := &Adam{params: params, lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
	a.m = make([]*tensor.Tensor, len(params))
	a.v = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		a.m[i] = tensor.New(p.T.Shape...)
		a.v[i] = tensor.New(p.T.Shape...)
	}
	return a
}

// Step applies one bias-corrected Adam update.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.beta2, float64(a.t))
	stepSize := a.lr * math.Sqrt(bc2) / bc1
	for i, p := range a.params {
		if p.Grad == nil {
			continue
		}
		m, v := a.m[i], a.v[i]
		for j, g := range p.Grad.Data {
			m.Data[j] = float32(a.beta1)*m.Data[j] + float32(1-a.beta1)*g
			v.Data[j] = float32(a.beta2)*v.Data[j] + float32(1-a.beta2)*g*g
			p.T.Data[j] -= float32(stepSize) * m.Data[j] /
				(float32(math.Sqrt(float64(v.Data[j]))) + float32(a.eps))
		}
	}
}

// ZeroGrad clears every parameter gradient.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// Moments exposes the live first- and second-moment tensors in parameter
// order. Checkpointing reads them to snapshot optimizer state and writes
// into them on restore; bias correction additionally needs StepCount.
func (a *Adam) Moments() (m, v []*tensor.Tensor) { return a.m, a.v }

// StepCount reports how many Step calls have been applied — the t in
// Adam's bias correction. A restored optimizer must continue from the
// saved count or the first post-restore steps are rescaled.
func (a *Adam) StepCount() int { return a.t }

// SetStepCount restores the bias-correction step counter.
func (a *Adam) SetStepCount(t int) { a.t = t }

// SetLR changes the learning rate.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// LR reports the current learning rate.
func (a *Adam) LR() float64 { return a.lr }

// ExponentialLR decays the optimizer's learning rate by a constant
// factor each epoch; the paper uses gamma = 0.8 for DDnet (§3.1.1).
type ExponentialLR struct {
	opt   Optimizer
	gamma float64
}

// NewExponentialLR wraps opt with exponential decay.
func NewExponentialLR(opt Optimizer, gamma float64) *ExponentialLR {
	return &ExponentialLR{opt: opt, gamma: gamma}
}

// StepEpoch multiplies the learning rate by gamma; call once per epoch.
func (e *ExponentialLR) StepEpoch() {
	e.opt.SetLR(e.opt.LR() * e.gamma)
}

// GradNorm returns the L2 norm of all gradients of params, a useful
// training diagnostic.
func GradNorm(params []*ag.Value) float64 {
	s := 0.0
	for _, p := range params {
		if p.Grad == nil {
			continue
		}
		for _, g := range p.Grad.Data {
			s += float64(g) * float64(g)
		}
	}
	return math.Sqrt(s)
}

// ClipGradNorm rescales gradients so their global L2 norm does not
// exceed maxNorm. Returns the pre-clip norm.
func ClipGradNorm(params []*ag.Value, maxNorm float64) float64 {
	norm := GradNorm(params)
	if norm > maxNorm && norm > 0 {
		scale := float32(maxNorm / norm)
		for _, p := range params {
			if p.Grad != nil {
				p.Grad.ScaleInPlace(scale)
			}
		}
	}
	return norm
}

// NumParams counts the total scalar parameters in params.
func NumParams(params []*ag.Value) int {
	n := 0
	for _, p := range params {
		n += p.T.Numel()
	}
	return n
}
