package nn

import (
	"math/rand"

	"computecovid19/internal/ag"
	"computecovid19/internal/tensor"
)

// DenseLayer2D is one densely connected layer of a DDnet dense block:
// BN → LeakyReLU → 1×1 conv (bottleneck) → BN → LeakyReLU → k×k conv
// producing `growth` feature maps. Its input is the channel-concatenation
// of the block input and every previous layer's output (the paper's
// "local shortcut connections", §2.2.1).
type DenseLayer2D struct {
	BN1   *BatchNorm
	Conv1 *Conv2D // 1x1 bottleneck
	BN2   *BatchNorm
	Conv2 *Conv2D // kxk growth conv
	Slope float32
}

// NewDenseLayer2D builds one dense layer taking inCh channels and
// emitting growth channels through a bottleneck of width bottleneck.
func NewDenseLayer2D(rng *rand.Rand, inCh, bottleneck, growth, kernel int, std float64) *DenseLayer2D {
	return &DenseLayer2D{
		BN1:   NewBatchNorm(inCh),
		Conv1: NewConv2D(rng, inCh, bottleneck, 1, 1, 0, false, std),
		BN2:   NewBatchNorm(bottleneck),
		Conv2: NewConv2D(rng, bottleneck, growth, kernel, 1, kernel/2, false, std),
		Slope: 0.01,
	}
}

// Forward applies BN→act→1×1→BN→act→k×k.
func (l *DenseLayer2D) Forward(x *ag.Value) *ag.Value {
	h := ag.LeakyReLU(l.BN1.Forward(x), l.Slope)
	h = l.Conv1.Forward(h)
	h = ag.LeakyReLU(l.BN2.Forward(h), l.Slope)
	return l.Conv2.Forward(h)
}

// Params returns the trainable parameters of all sublayers.
func (l *DenseLayer2D) Params() []*ag.Value {
	ps := l.BN1.Params()
	ps = append(ps, l.Conv1.Params()...)
	ps = append(ps, l.BN2.Params()...)
	ps = append(ps, l.Conv2.Params()...)
	return ps
}

// SetTraining propagates the mode to the batch norms.
func (l *DenseLayer2D) SetTraining(train bool) {
	l.BN1.SetTraining(train)
	l.BN2.SetTraining(train)
}

func (l *DenseLayer2D) stateTensors() []*tensor.Tensor {
	return append(l.BN1.stateTensors(), l.BN2.stateTensors()...)
}

// DenseBlock2D is the paper's dense block (Figure 7): `layers` densely
// connected DenseLayer2Ds. The output concatenates the block input with
// every layer output, so the channel count grows from inCh to
// inCh + layers·growth (16 → 80 in Table 2).
type DenseBlock2D struct {
	Layers []*DenseLayer2D
}

// NewDenseBlock2D builds a dense block. DDnet uses layers=4, growth=16,
// kernel=5 and a bottleneck equal to 4·growth.
func NewDenseBlock2D(rng *rand.Rand, inCh, growth, layers, kernel int, std float64) *DenseBlock2D {
	b := &DenseBlock2D{}
	ch := inCh
	for i := 0; i < layers; i++ {
		b.Layers = append(b.Layers, NewDenseLayer2D(rng, ch, 4*growth, growth, kernel, std))
		ch += growth
	}
	return b
}

// OutChannels reports the channel count of the block output given inCh
// input channels.
func (b *DenseBlock2D) OutChannels(inCh int) int {
	return inCh + len(b.Layers)*growthOf2D(b)
}

func growthOf2D(b *DenseBlock2D) int {
	if len(b.Layers) == 0 {
		return 0
	}
	return b.Layers[0].Conv2.W.T.Shape[0]
}

// Forward runs the dense connectivity pattern: each layer sees the
// concatenation of everything before it.
func (b *DenseBlock2D) Forward(x *ag.Value) *ag.Value {
	features := []*ag.Value{x}
	for _, l := range b.Layers {
		in := ag.Concat(1, features...)
		features = append(features, l.Forward(in))
	}
	return ag.Concat(1, features...)
}

// Params returns the parameters of every dense layer.
func (b *DenseBlock2D) Params() []*ag.Value {
	var ps []*ag.Value
	for _, l := range b.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// SetTraining propagates the mode to every dense layer.
func (b *DenseBlock2D) SetTraining(train bool) {
	for _, l := range b.Layers {
		l.SetTraining(train)
	}
}

func (b *DenseBlock2D) stateTensors() []*tensor.Tensor {
	var ts []*tensor.Tensor
	for _, l := range b.Layers {
		ts = append(ts, l.stateTensors()...)
	}
	return ts
}

// DenseLayer3D is the volumetric analogue of DenseLayer2D, used by the
// 3D DenseNet classifier (§2.3.2).
type DenseLayer3D struct {
	BN1   *BatchNorm
	Conv1 *Conv3D
	BN2   *BatchNorm
	Conv2 *Conv3D
}

// NewDenseLayer3D builds one 3D dense layer (1×1×1 bottleneck then k³
// growth conv).
func NewDenseLayer3D(rng *rand.Rand, inCh, bottleneck, growth, kernel int, std float64) *DenseLayer3D {
	return &DenseLayer3D{
		BN1:   NewBatchNorm(inCh),
		Conv1: NewConv3D(rng, inCh, bottleneck, 1, 1, 0, false, std),
		BN2:   NewBatchNorm(bottleneck),
		Conv2: NewConv3D(rng, bottleneck, growth, kernel, 1, kernel/2, false, std),
	}
}

// Forward applies BN→ReLU→1³→BN→ReLU→k³.
func (l *DenseLayer3D) Forward(x *ag.Value) *ag.Value {
	h := ag.ReLU(l.BN1.Forward(x))
	h = l.Conv1.Forward(h)
	h = ag.ReLU(l.BN2.Forward(h))
	return l.Conv2.Forward(h)
}

// Params returns the trainable parameters of all sublayers.
func (l *DenseLayer3D) Params() []*ag.Value {
	ps := l.BN1.Params()
	ps = append(ps, l.Conv1.Params()...)
	ps = append(ps, l.BN2.Params()...)
	ps = append(ps, l.Conv2.Params()...)
	return ps
}

// SetTraining propagates the mode to the batch norms.
func (l *DenseLayer3D) SetTraining(train bool) {
	l.BN1.SetTraining(train)
	l.BN2.SetTraining(train)
}

func (l *DenseLayer3D) stateTensors() []*tensor.Tensor {
	return append(l.BN1.stateTensors(), l.BN2.stateTensors()...)
}

// DenseBlock3D is a densely connected block over 3D feature volumes.
type DenseBlock3D struct {
	Layers []*DenseLayer3D
}

// NewDenseBlock3D builds a 3D dense block with the given growth rate.
func NewDenseBlock3D(rng *rand.Rand, inCh, growth, layers, kernel int, std float64) *DenseBlock3D {
	b := &DenseBlock3D{}
	ch := inCh
	for i := 0; i < layers; i++ {
		b.Layers = append(b.Layers, NewDenseLayer3D(rng, ch, 4*growth, growth, kernel, std))
		ch += growth
	}
	return b
}

// Forward runs the dense connectivity pattern in 3D.
func (b *DenseBlock3D) Forward(x *ag.Value) *ag.Value {
	features := []*ag.Value{x}
	for _, l := range b.Layers {
		in := ag.Concat(1, features...)
		features = append(features, l.Forward(in))
	}
	return ag.Concat(1, features...)
}

// Params returns the parameters of every dense layer.
func (b *DenseBlock3D) Params() []*ag.Value {
	var ps []*ag.Value
	for _, l := range b.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// SetTraining propagates the mode to every dense layer.
func (b *DenseBlock3D) SetTraining(train bool) {
	for _, l := range b.Layers {
		l.SetTraining(train)
	}
}

func (b *DenseBlock3D) stateTensors() []*tensor.Tensor {
	var ts []*tensor.Tensor
	for _, l := range b.Layers {
		ts = append(ts, l.stateTensors()...)
	}
	return ts
}
