package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"computecovid19/internal/tensor"
)

// The model file format is a minimal stdlib-only binary container:
//
//	magic "CC19" | version u32 | tensorCount u32 |
//	per tensor: rank u32, dims []u32, data []float32 (little endian)
//
// Parameters are stored in Module.Params order followed by batch-norm
// running statistics, so save/load round-trips exactly for a module
// built with the same architecture.

const (
	modelMagic   = "CC19"
	modelVersion = 1
)

// StateProvider lets modules defined outside this package expose extra
// non-parameter tensors (batch-norm running statistics) for
// serialization.
type StateProvider interface {
	StateTensors() []*tensor.Tensor
}

// allTensors returns parameters plus batch-norm state for m, in a stable
// order.
func allTensors(m Module) []*tensor.Tensor {
	var ts []*tensor.Tensor
	for _, p := range m.Params() {
		ts = append(ts, p.T)
	}
	switch st := m.(type) {
	case stateful:
		ts = append(ts, st.stateTensors()...)
	case StateProvider:
		ts = append(ts, st.StateTensors()...)
	}
	return ts
}

// SaveModule writes all parameters and state of m to w.
func SaveModule(w io.Writer, m Module) error {
	return saveTensors(w, allTensors(m))
}

// LoadModule reads parameters and state into m, which must have been
// constructed with the same architecture used at save time.
func LoadModule(r io.Reader, m Module) error {
	return loadTensors(r, allTensors(m))
}

// SaveModuleFile saves m to path.
func SaveModuleFile(path string, m Module) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := SaveModule(bw, m); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModuleFile loads parameters from path into m.
func LoadModuleFile(path string, m Module) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadModule(bufio.NewReader(f), m)
}

func saveTensors(w io.Writer, ts []*tensor.Tensor) error {
	if _, err := io.WriteString(w, modelMagic); err != nil {
		return err
	}
	hdr := []uint32{modelVersion, uint32(len(ts))}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	for _, t := range ts {
		if err := binary.Write(w, binary.LittleEndian, uint32(t.Rank())); err != nil {
			return err
		}
		for _, d := range t.Shape {
			if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		if err := binary.Write(w, binary.LittleEndian, t.Data); err != nil {
			return err
		}
	}
	return nil
}

func loadTensors(r io.Reader, ts []*tensor.Tensor) error {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("nn: reading model magic: %w", err)
	}
	if string(magic) != modelMagic {
		return fmt.Errorf("nn: bad model magic %q", magic)
	}
	var hdr [2]uint32
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return err
	}
	if hdr[0] != modelVersion {
		return fmt.Errorf("nn: unsupported model version %d", hdr[0])
	}
	if int(hdr[1]) != len(ts) {
		return fmt.Errorf("nn: model has %d tensors, module expects %d", hdr[1], len(ts))
	}
	for i, t := range ts {
		var rank uint32
		if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
			return err
		}
		if int(rank) != t.Rank() {
			return fmt.Errorf("nn: tensor %d rank %d, module expects %d", i, rank, t.Rank())
		}
		for d := 0; d < int(rank); d++ {
			var dim uint32
			if err := binary.Read(r, binary.LittleEndian, &dim); err != nil {
				return err
			}
			if int(dim) != t.Shape[d] {
				return fmt.Errorf("nn: tensor %d dim %d is %d, module expects %d",
					i, d, dim, t.Shape[d])
			}
		}
		if err := binary.Read(r, binary.LittleEndian, t.Data); err != nil {
			return err
		}
	}
	return nil
}
